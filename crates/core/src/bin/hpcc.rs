//! `hpcc` — command-line front end to the adaptive-containerization
//! testbed.
//!
//! ```text
//! hpcc select [strict|classic|cloud]      rank engines+registries for a site
//! hpcc deploy <engine> <repo:tag> [nodes] deploy a sample image to an allocation
//! hpcc scenarios [nodes] [jobs] [pods]    run the §6 integration comparison
//! hpcc workflow                           run the demo DAG on both backends
//! ```
//!
//! Argument parsing is deliberately dependency-free.

use hpcc_core::pipeline::deploy_to_allocation;
use hpcc_core::requirements::{
    select_engine, select_registry, RegistryRequirements, SiteRequirements,
};
use hpcc_core::scenarios::{self, common::ClusterConfig, common::MixedWorkload};
use hpcc_core::workflow::{run_on_wlm, Step, Workflow};
use hpcc_engine::engine::{Host, RunOptions};
use hpcc_engine::engines;
use hpcc_oci::builder::samples;
use hpcc_oci::cas::Cas;
use hpcc_registry::products;
use hpcc_registry::proxy::ProxyRegistry;
use hpcc_registry::registry::{Registry, RegistryCaps};
use hpcc_sim::{SimClock, SimSpan};
use hpcc_storage::local::NodeLocalDisk;
use hpcc_storage::shared_fs::SharedFs;
use hpcc_wlm::slurm::Slurm;
use hpcc_wlm::types::NodeSpec;
use std::sync::Arc;

fn sample_registry() -> Arc<Registry> {
    let reg = Registry::new("site", RegistryCaps::open());
    reg.create_namespace("hpc", None).unwrap();
    let cas = Cas::new();
    for (repo, img) in [
        ("hpc/base", samples::base_os(&cas)),
        ("hpc/pyapp", samples::python_app(&cas, 200)),
        ("hpc/solver", samples::mpi_solver(&cas)),
    ] {
        for d in std::iter::once(&img.manifest.config).chain(img.manifest.layers.iter()) {
            let data = cas.get(&d.digest).unwrap();
            if !reg.has_blob(&d.digest) {
                reg.push_blob(d.media_type, d.digest, data.as_ref().clone())
                    .unwrap();
            }
        }
        reg.push_manifest(repo, "v1", &img.manifest).unwrap();
    }
    Arc::new(reg)
}

fn cmd_select(site: &str) -> Result<(), String> {
    let req = match site {
        "strict" => SiteRequirements::strict_hpc(),
        "classic" => SiteRequirements::classic_hpc(),
        "cloud" => SiteRequirements::cloud_converged(),
        other => {
            return Err(format!(
                "unknown site profile {other:?} (strict|classic|cloud)"
            ))
        }
    };
    println!("engine ranking for the '{site}' profile:");
    for (i, s) in select_engine(&engines::all(), &req).iter().enumerate() {
        if s.qualified() {
            println!("  {:>2}. {:<14} score {}", i + 1, s.name, s.score);
        } else {
            println!("   -. {:<14} out: {}", s.name, s.violations.join("; "));
        }
    }
    println!("\nregistry ranking (HPC-centric criteria):");
    for s in select_registry(&products::all(), &RegistryRequirements::hpc_centric()) {
        if s.qualified() {
            println!("  {:<12} qualified, score {}", s.name, s.score);
        } else {
            println!("  {:<12} out: {}", s.name, s.violations.join("; "));
        }
    }
    Ok(())
}

fn cmd_deploy(engine_name: &str, image: &str, nodes: usize, gpu: bool) -> Result<(), String> {
    let engine = engines::all()
        .into_iter()
        .find(|e| e.info.name.eq_ignore_ascii_case(engine_name))
        .ok_or_else(|| {
            format!(
                "unknown engine {engine_name:?}; known: {}",
                engines::all()
                    .iter()
                    .map(|e| e.info.name)
                    .collect::<Vec<_>>()
                    .join(", ")
            )
        })?;
    let (repo, tag) = image
        .rsplit_once(':')
        .ok_or_else(|| format!("image must be repo:tag, got {image:?}"))?;

    let hub = sample_registry();
    let local = Registry::new("cache", RegistryCaps::open());
    local.create_namespace("hpc", None).unwrap();
    let proxy = ProxyRegistry::new(Arc::new(local), hub).map_err(|e| e.to_string())?;
    let shared = SharedFs::with_defaults();
    let disks: Vec<Arc<NodeLocalDisk>> =
        (0..nodes).map(|_| Arc::new(NodeLocalDisk::new())).collect();
    let host = if engine.caps.requires_daemon {
        Host::compute_node().with_daemon("dockerd")
    } else {
        Host::compute_node()
    };
    let clock = SimClock::new();
    let report = deploy_to_allocation(
        &engine,
        &proxy,
        repo,
        tag,
        1000,
        &host,
        &shared,
        &disks,
        RunOptions {
            gpu,
            ..RunOptions::default()
        },
        &clock,
    )
    .map_err(|e| e.to_string())?;
    println!(
        "deployed {image} with {} to {nodes} node(s):",
        engine.info.name
    );
    println!("  pull     {}", report.pull);
    println!(
        "  convert  {} ({})",
        report.convert,
        if report.cache_hit {
            "cache hit"
        } else {
            "cache miss"
        }
    );
    println!("  stage    {}", report.stage);
    println!("  launch   {}", report.launch);
    println!("  total    {}", report.total);
    Ok(())
}

fn cmd_scenarios(nodes: u32, jobs: usize, pods: usize, seed: u64) -> Result<(), String> {
    if nodes < 2 {
        return Err(format!(
            "scenarios need at least 2 nodes (the static-partition split), got {nodes}"
        ));
    }
    let cfg = ClusterConfig { nodes };
    let wl = MixedWorkload::generate(seed, jobs, pods, &cfg);
    println!(
        "running 6 integration scenarios on {} nodes ({} jobs, {} pods, seed {seed})...\n",
        nodes, jobs, pods
    );
    let outcomes = scenarios::run_all(&cfg, &wl);
    print!("{}", scenarios::render_outcomes(&outcomes));
    Ok(())
}

fn cmd_workflow() -> Result<(), String> {
    let wf = Workflow::new()
        .step(Step::new("fetch", "hpc/pyapp:v1", SimSpan::secs(45)))
        .step(Step::new("process", "hpc/solver:v1", SimSpan::secs(300)).after("fetch"))
        .step(Step::new("qc", "hpc/pyapp:v1", SimSpan::secs(90)).after("fetch"))
        .step(
            Step::new("report", "hpc/pyapp:v1", SimSpan::secs(20))
                .after("process")
                .after("qc"),
        );
    println!(
        "critical path: {}",
        wf.critical_path().map_err(|e| e.to_string())?
    );
    let mut slurm = Slurm::new();
    slurm.add_partition("batch", NodeSpec::cpu_node(), 2);
    let run = run_on_wlm(&wf, &mut slurm).map_err(|e| e.to_string())?;
    for r in &run.records {
        println!(
            "  {:<8} {} → {}",
            r.step,
            r.started.since(hpcc_sim::SimTime::ZERO),
            r.ended.since(hpcc_sim::SimTime::ZERO)
        );
    }
    println!("makespan: {}", run.makespan);
    Ok(())
}

fn usage() -> String {
    "usage:\n  \
     hpcc select [strict|classic|cloud]\n  \
     hpcc deploy <engine> <repo:tag> [nodes] [--gpu]\n  \
     hpcc scenarios [nodes] [jobs] [pods] [seed]\n  \
     hpcc workflow\n\n\
     sample images available: hpc/base:v1 hpc/pyapp:v1 hpc/solver:v1"
        .to_string()
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let result = match args.first().map(String::as_str) {
        Some("select") => cmd_select(args.get(1).map(String::as_str).unwrap_or("strict")),
        Some("deploy") => {
            let engine = args.get(1).cloned().unwrap_or_default();
            let image = args.get(2).cloned().unwrap_or_default();
            if engine.is_empty() || image.is_empty() {
                Err(usage())
            } else {
                let nodes = args.get(3).and_then(|s| s.parse().ok()).unwrap_or(4usize);
                let gpu = args.iter().any(|a| a == "--gpu");
                cmd_deploy(&engine, &image, nodes, gpu)
            }
        }
        Some("scenarios") => {
            let nodes = args.get(1).and_then(|s| s.parse().ok()).unwrap_or(16);
            let jobs = args.get(2).and_then(|s| s.parse().ok()).unwrap_or(6);
            let pods = args.get(3).and_then(|s| s.parse().ok()).unwrap_or(12);
            let seed = args.get(4).and_then(|s| s.parse().ok()).unwrap_or(2023);
            cmd_scenarios(nodes, jobs, pods, seed)
        }
        Some("workflow") => cmd_workflow(),
        _ => Err(usage()),
    };
    if let Err(msg) = result {
        eprintln!("{msg}");
        std::process::exit(2);
    }
}

//! Golden-trace corpus: canonical observability traces for the stack.
//!
//! Each golden is a deterministic trace builder — a fixed workload driven
//! through the instrumented stack with a [`Tracer`] attached — paired with
//! a checked-in TSV file under `tests/goldens/`. The integration harness
//! (`tests/integration_traces.rs`) diffs rebuilt traces against the files;
//! `cargo run -p hpcc-bench --bin trace_goldens -- --bless` regenerates
//! them after an intentional timing-model change.
//!
//! The corpus covers the paper's quantitative claims that have a temporal
//! structure worth pinning: the quickstart pull→convert→cache→run
//! pipeline (cold + warm), the same pipeline crashed mid-convert and
//! recovered, Q5's degraded pull through a site proxy during a hub
//! outage, Q10's peer-to-peer image broadcast, and the five §6
//! integration scenarios.

use crate::scenarios::{
    bridge_vk, k8s_in_wlm, kubelet_in_allocation, reallocation, static_partition, wlm_in_k8s,
    ClusterConfig, MixedWorkload,
};
use hpcc_engine::engine::{EngineError, Host, PullSources, RunOptions};
use hpcc_engine::engines;
use hpcc_oci::builder::ImageBuilder;
use hpcc_oci::cas::Cas;
use hpcc_registry::proxy::ProxyRegistry;
use hpcc_registry::registry::{Registry, RegistryCaps};
use hpcc_registry::tiered::{StormConfig, StormTopology, TierClient};
use hpcc_runtime::container::ProcessWork;
use hpcc_sim::net::{Fabric, NodeId};
use hpcc_sim::obs::{diff_traces, export_tsv, parse_tsv, SpanRecord, Tracer};
use hpcc_sim::{
    Bytes, CrashInjector, FaultInjector, FaultKind, FaultRule, MetricsRegistry, Recoverable,
    SimClock, SimSpan, SimTime,
};
use hpcc_storage::p2p::{broadcast_p2p_observed, broadcast_tree_observed, TreeSpec};
use hpcc_storage::shared_fs::SharedFs;
use hpcc_storage::{BlobStore, JournaledStore};
use hpcc_vfs::path::VPath;
use std::path::PathBuf;
use std::sync::Arc;

/// One golden trace: a stable name (also the TSV file stem) and the
/// deterministic builder that regenerates it from scratch.
pub struct Golden {
    pub name: &'static str,
    pub build: fn() -> Vec<SpanRecord>,
}

/// Directory holding the checked-in golden TSV files.
pub fn goldens_dir() -> PathBuf {
    PathBuf::from(concat!(env!("CARGO_MANIFEST_DIR"), "/../../tests/goldens"))
}

/// Path of one golden's TSV file.
pub fn golden_path(name: &str) -> PathBuf {
    goldens_dir().join(format!("{name}.tsv"))
}

/// The full corpus, in a fixed order.
pub fn all_goldens() -> Vec<Golden> {
    vec![
        Golden {
            name: "quickstart",
            build: quickstart_trace,
        },
        Golden {
            name: "quickstart_crash_recover",
            build: quickstart_crash_recover_trace,
        },
        Golden {
            name: "q5_degraded_pull",
            build: q5_degraded_pull_trace,
        },
        Golden {
            name: "q10_p2p_broadcast",
            build: q10_p2p_broadcast_trace,
        },
        Golden {
            name: "storm_64_tiered",
            build: storm_64_tiered_trace,
        },
        Golden {
            name: "build_plane",
            build: build_plane_trace,
        },
        Golden {
            name: "scenario_static_partition",
            build: || scenario_trace(static_partition::run_traced),
        },
        Golden {
            name: "scenario_reallocation",
            build: || scenario_trace(reallocation::run_traced),
        },
        Golden {
            name: "scenario_wlm_in_k8s",
            build: || scenario_trace(wlm_in_k8s::run_traced),
        },
        Golden {
            name: "scenario_k8s_in_wlm",
            build: || scenario_trace(k8s_in_wlm::run_traced),
        },
        Golden {
            name: "scenario_bridge_vk",
            build: || scenario_trace(bridge_vk::run_traced),
        },
        Golden {
            name: "scenario_kubelet_in_allocation",
            build: || {
                scenario_trace(|cfg, wl, tracer| {
                    kubelet_in_allocation::run_detailed_traced(cfg, wl, tracer).0
                })
            },
        },
    ]
}

/// Rebuild a golden and structurally diff it against its checked-in file.
/// `Ok(())` on a byte-for-byte structural match; `Err` carries a readable
/// diff (or the reason the file could not be read/parsed).
pub fn check_golden(golden: &Golden) -> Result<(), String> {
    let path = golden_path(golden.name);
    let text = std::fs::read_to_string(&path).map_err(|e| {
        format!(
            "{}: cannot read golden {} ({e}); run `cargo run -p hpcc-bench --bin trace_goldens -- --bless`",
            golden.name,
            path.display()
        )
    })?;
    let expected =
        parse_tsv(&text).map_err(|e| format!("{}: bad golden file: {e}", golden.name))?;
    let actual = (golden.build)();
    let diffs = diff_traces(&expected, &actual);
    if diffs.is_empty() {
        Ok(())
    } else {
        Err(format!(
            "{}: trace diverged from {} ({} difference(s)):\n{}\nif intentional, re-bless with `cargo run -p hpcc-bench --bin trace_goldens -- --bless`",
            golden.name,
            path.display(),
            diffs.len(),
            diffs.join("\n")
        ))
    }
}

/// Rebuild a golden and overwrite its checked-in file.
pub fn bless_golden(golden: &Golden) -> std::io::Result<()> {
    std::fs::create_dir_all(goldens_dir())?;
    std::fs::write(golden_path(golden.name), export_tsv(&(golden.build)()))
}

// --------------------------------------------------------- trace builders

/// The quickstart pipeline (examples/quickstart.rs) with a tracer attached:
/// build → push → cold deploy (pull, convert, cache miss, run) → warm
/// deploy (cache hit).
pub fn quickstart_trace() -> Vec<SpanRecord> {
    let cas = Cas::new();
    let image = ImageBuilder::from_scratch()
        .run("install-base", |fs| {
            fs.write_p(&VPath::parse("/usr/lib/libc.so.6"), vec![0xC1; 4096])
                .map_err(|e| e.to_string())
        })
        .run("install-app", |fs| {
            fs.write_p(&VPath::parse("/opt/app/run"), vec![0xAB; 8192])
                .map_err(|e| e.to_string())
        })
        .entrypoint(&["/opt/app/run"])
        .env("OMP_NUM_THREADS", "8")
        .build(&cas)
        .expect("image builds");

    let registry = Registry::new("site", RegistryCaps::open());
    registry.create_namespace("demo", None).unwrap();
    for d in std::iter::once(&image.manifest.config).chain(image.manifest.layers.iter()) {
        let data = cas.get(&d.digest).unwrap();
        registry
            .push_blob(d.media_type, d.digest, data.as_ref().clone())
            .unwrap();
    }
    registry
        .push_manifest("demo/app", "v1", &image.manifest)
        .unwrap();

    let tracer = Tracer::new();
    registry.set_tracer(Arc::clone(&tracer));
    let engine = engines::sarus();
    engine.set_tracer(Arc::clone(&tracer));
    // Overlapped pipeline against a node-local layer store: the cold
    // deploy pins the parallel fetch/convert schedule, the warm deploy
    // pins the blob-store + conversion-cache hits.
    engine.set_parallelism(4);
    engine.set_blob_store(BlobStore::node_local());
    let host = Host::compute_node();
    let clock = SimClock::new();
    engine
        .deploy(
            &registry,
            "demo/app",
            "v1",
            1000,
            &host,
            RunOptions {
                work: ProcessWork {
                    compute: SimSpan::secs(30),
                    writes: vec![("results/out.dat".into(), vec![42; 100])],
                },
                ..RunOptions::default()
            },
            &clock,
        )
        .expect("cold deploy succeeds");
    // Warm re-run on the same clock: the conversion cache hits.
    engine
        .deploy(
            &registry,
            "demo/app",
            "v1",
            1000,
            &host,
            RunOptions::default(),
            &clock,
        )
        .expect("warm deploy succeeds");
    tracer.finished()
}

/// The quickstart pipeline killed mid-convert and recovered: the cold
/// deploy dies at the squash-assembly step (after the pull intent has
/// committed), fsck recovery rolls the committed layers forward, and a
/// restarted engine finishes the deploy without re-fetching them. The
/// trace pins the crash span, the recovery span, and the resumed
/// pipeline's cache-hit timing.
pub fn quickstart_crash_recover_trace() -> Vec<SpanRecord> {
    let cas = Cas::new();
    let image = ImageBuilder::from_scratch()
        .run("install-base", |fs| {
            fs.write_p(&VPath::parse("/usr/lib/libc.so.6"), vec![0xC1; 4096])
                .map_err(|e| e.to_string())
        })
        .run("install-app", |fs| {
            fs.write_p(&VPath::parse("/opt/app/run"), vec![0xAB; 8192])
                .map_err(|e| e.to_string())
        })
        .entrypoint(&["/opt/app/run"])
        .env("OMP_NUM_THREADS", "8")
        .build(&cas)
        .expect("image builds");

    let registry = Registry::new("site", RegistryCaps::open());
    registry.create_namespace("demo", None).unwrap();
    for d in std::iter::once(&image.manifest.config).chain(image.manifest.layers.iter()) {
        let data = cas.get(&d.digest).unwrap();
        registry
            .push_blob(d.media_type, d.digest, data.as_ref().clone())
            .unwrap();
    }
    registry
        .push_manifest("demo/app", "v1", &image.manifest)
        .unwrap();

    let tracer = Tracer::new();
    registry.set_tracer(Arc::clone(&tracer));
    // Durable state shared across the crash: journalled blob store.
    let journal = JournaledStore::new(BlobStore::node_local());
    journal.set_tracer(Arc::clone(&tracer));
    let crash = CrashInjector::enabled();
    journal.set_crash_injector(Arc::clone(&crash));
    let attach = |e: &hpcc_engine::engine::Engine| {
        e.set_tracer(Arc::clone(&tracer));
        e.set_parallelism(4);
        e.set_journaled_store(Arc::clone(&journal));
        e.set_crash_injector(Arc::clone(&crash));
    };
    let host = Host::compute_node();
    let clock = SimClock::new();

    // Cold deploy dies assembling the squash image.
    crash.arm("convert.assemble.pre", 1);
    let engine = engines::sarus();
    attach(&engine);
    match engine.deploy(
        &registry,
        "demo/app",
        "v1",
        1000,
        &host,
        RunOptions::default(),
        &clock,
    ) {
        Err(EngineError::Crash(dead)) => assert_eq!(dead.point, "convert.assemble.pre"),
        Err(other) => panic!("expected a crash mid-convert, got {other}"),
        Ok(_) => panic!("deploy survived an armed crash point"),
    }

    // fsck over the journal, then a restarted engine finishes the job.
    journal
        .recover(clock.now())
        .expect("recovery after mid-convert crash");
    let engine = engines::sarus();
    attach(&engine);
    engine
        .deploy(
            &registry,
            "demo/app",
            "v1",
            1000,
            &host,
            RunOptions {
                work: ProcessWork {
                    compute: SimSpan::secs(30),
                    writes: vec![("results/out.dat".into(), vec![42; 100])],
                },
                ..RunOptions::default()
            },
            &clock,
        )
        .expect("recovered deploy succeeds");
    tracer.finished()
}

/// Q5's failure mode with the Q10-era degradation path: the hub goes down
/// permanently mid-experiment, the engine exhausts its retries against the
/// primary, and the warm site proxy serves the image. The trace pins the
/// retry/degrade timing of `deploy_resilient`.
pub fn q5_degraded_pull_trace() -> Vec<SpanRecord> {
    let hub = Registry::new("hub", RegistryCaps::open());
    hub.create_namespace("hpc", None).unwrap();
    let cas = Cas::new();
    let img = hpcc_oci::builder::samples::python_app(&cas, 16);
    for d in std::iter::once(&img.manifest.config).chain(img.manifest.layers.iter()) {
        let data = cas.get(&d.digest).unwrap();
        hub.push_blob(d.media_type, d.digest, data.as_ref().clone())
            .unwrap();
    }
    hub.push_manifest("hpc/pyapp", "v1", &img.manifest).unwrap();
    let hub = Arc::new(hub);

    let site = Arc::new(Registry::new("site-cache", RegistryCaps::open()));
    let proxy = ProxyRegistry::new(Arc::clone(&site), Arc::clone(&hub)).unwrap();
    // Warm the proxy while the hub is healthy, then lose the hub for good.
    proxy
        .pull_manifest("hpc/pyapp", "v1", SimTime::ZERO)
        .unwrap();
    let inj = Arc::new(FaultInjector::new(
        9,
        vec![FaultRule::sticky(
            FaultKind::RegistryUnavailable,
            SimTime::ZERO,
            SimTime(u64::MAX),
        )],
    ));
    hub.set_fault_injector(Arc::clone(&inj));

    let tracer = Tracer::new();
    hub.set_tracer(Arc::clone(&tracer));
    proxy.set_tracer(Arc::clone(&tracer));
    let engine = engines::apptainer();
    engine.set_fault_injector(Arc::clone(&inj));
    engine.set_tracer(Arc::clone(&tracer));
    engine.set_parallelism(4);

    let clock = SimClock::new();
    let sources = PullSources {
        primary: &hub,
        tier: None,
        proxy: Some(&proxy),
        mirror: None,
    };
    let (_, _, source) = engine
        .deploy_resilient(
            &sources,
            "hpc/pyapp",
            "v1",
            1000,
            &Host::compute_node(),
            RunOptions::default(),
            &clock,
        )
        .expect("degraded deploy succeeds via proxy");
    assert_eq!(source, "proxy");
    tracer.finished()
}

/// Q10's swarm on a small allocation: 16 nodes, 2 seeds, one 2 GiB image.
/// The trace pins the seed pulls from shared storage and the logarithmic
/// fan-out of peer transfers over the high-speed fabric.
pub fn q10_p2p_broadcast_trace() -> Vec<SpanRecord> {
    let tracer = Tracer::new();
    let shared = SharedFs::with_defaults();
    shared.set_tracer(Arc::clone(&tracer));
    let ids: Vec<NodeId> = (0..16).map(NodeId).collect();
    let fabric = Fabric::with_defaults(ids.iter().copied());
    broadcast_p2p_observed(
        &shared,
        &fabric,
        Bytes::gib(2),
        &ids,
        2,
        SimTime::ZERO,
        &FaultInjector::disabled(),
        &tracer,
    );
    tracer.finished()
}

/// A 64-node two-tier pull storm against a real origin registry, followed
/// by a tree broadcast of the pulled image across the allocation. The
/// trace pins the coalesced tier fills (one origin fetch per blob no
/// matter how many racks ask), the per-node rack-served pulls, and the
/// pipelined fan-out of the distribution tree.
pub fn storm_64_tiered_trace() -> Vec<SpanRecord> {
    let hub = Registry::new("hub", RegistryCaps::open());
    hub.create_namespace("hpc", None).unwrap();
    let cas = Cas::new();
    let img = hpcc_oci::builder::samples::python_app(&cas, 8);
    for d in std::iter::once(&img.manifest.config).chain(img.manifest.layers.iter()) {
        let data = cas.get(&d.digest).unwrap();
        hub.push_blob(d.media_type, d.digest, data.as_ref().clone())
            .unwrap();
    }
    hub.push_manifest("hpc/pyapp", "v1", &img.manifest).unwrap();
    let hub = Arc::new(hub);

    let tracer = Tracer::new();
    hub.set_tracer(Arc::clone(&tracer));
    let topo = StormTopology::with_origin(StormConfig::two_tier(64, 16), Arc::clone(&hub));
    topo.set_tracer(Arc::clone(&tracer));

    // Every node pulls the real image through its rack cache at t=0; the
    // racks coalesce onto the site tier and the site onto the origin.
    let mut storm_done = SimTime::ZERO;
    for node in 0..64 {
        let client = TierClient::new(Arc::clone(&topo), node);
        let (manifest, mdone) = client
            .pull_manifest("hpc/pyapp", "v1", SimTime::ZERO)
            .unwrap();
        let mut done = mdone;
        for d in std::iter::once(&manifest.config).chain(manifest.layers.iter()) {
            let (_, t) = client.pull_blob(&d.digest, mdone).unwrap();
            done = done.max(t);
        }
        storm_done = storm_done.max(done);
    }

    // Then the allocation fans the image out peer-to-peer for the next
    // (larger) artifact: a 2 GiB dataset seeded from shared storage.
    let shared = SharedFs::with_defaults();
    shared.set_tracer(Arc::clone(&tracer));
    let ids: Vec<NodeId> = (0..64).map(NodeId).collect();
    let fabric = Fabric::with_defaults(ids.iter().copied());
    broadcast_tree_observed(
        &shared,
        &fabric,
        Bytes::gib(2),
        &ids,
        TreeSpec::default(),
        storm_done,
        &FaultInjector::disabled(),
        &tracer,
        &MetricsRegistry::new(),
    );
    tracer.finished()
}

/// The build plane end to end, two tenants sharing a base: both specs
/// lower onto the fleet executor against one site-wide build cache (the
/// second tenant's base steps replay as cache hits), each image is
/// WOTS-signed, appended to the transparency log and pushed under its
/// namespace, then tenant one's image is pulled back with provenance
/// verification and run. The trace pins the `build.step` / `build.cache`
/// / `build.sign` / `build.push` span schedule and the verified pull's
/// engine timing.
pub fn build_plane_trace() -> Vec<SpanRecord> {
    use hpcc_build::{
        build_fleet, sign_and_push, verified_pull, BuildCache, BuildRequest, BuildSpec, MpiFamily,
    };

    let tracer = Tracer::new();
    let registry = Registry::new("site", RegistryCaps::open());
    registry.set_tracer(Arc::clone(&tracer));
    registry.create_namespace("acme", None).unwrap();
    registry.create_namespace("umbrella", None).unwrap();
    let engine = engines::podman_hpc();
    engine.set_tracer(Arc::clone(&tracer));
    let cache = BuildCache::node_local();
    let journal = JournaledStore::new(BlobStore::node_local());
    journal.set_tracer(Arc::clone(&tracer));
    let crash = CrashInjector::disabled();
    journal.set_crash_injector(Arc::clone(&crash));
    let cas = Cas::new();
    let mut key = hpcc_crypto::wots::Keypair::generate(b"build-plane-golden", 3);
    let mut log = hpcc_crypto::translog::TransparencyLog::new();
    let clock = SimClock::new();

    let spec = |tenant: &str| {
        BuildSpec::from_scratch("app")
            .run("base", &[("/usr/lib/libc.so", &[0xB0; 8192][..])])
            .mpi_base(MpiFamily::Mpich)
            .copy("/opt/app/run", format!("#!solver {tenant}").into_bytes())
            .env("OMP_NUM_THREADS", "8")
            .entrypoint(&["/opt/app/run"])
    };
    let reqs = vec![
        BuildRequest::new("acme", "solver", "v1", spec("acme")),
        BuildRequest::new("umbrella", "solver", "v1", spec("umbrella")),
    ];
    let outs = build_fleet(&reqs, 4, &cache, &cas, &tracer, &clock).expect("fleet builds");

    let mut proofs = Vec::new();
    for out in &outs {
        let signed = sign_and_push(
            &engine, &mut key, &mut log, &registry, out, &cas, &journal, &crash, &clock,
        )
        .expect("signed push succeeds");
        proofs.push(signed);
    }

    // Tenant one's image comes back verified and runs. The first proof
    // is stale by now (tenant two's publish moved the log), so re-mint.
    let fresh = log
        .prove_inclusion(proofs[0].log_index)
        .expect("entry still proves");
    let pulled = verified_pull(
        &engine,
        &registry,
        "acme/solver",
        "v1",
        &fresh,
        &log.head(),
        &clock,
    )
    .expect("verified pull succeeds");
    let host = Host::compute_node();
    let prepared = engine
        .prepare(&pulled, 1000, &host, true, &clock)
        .expect("prepare succeeds");
    engine
        .run(prepared, 1000, &host, RunOptions::default(), &clock)
        .expect("run succeeds");
    tracer.finished()
}

/// Drive one §6 scenario with a fresh tracer over the canonical small
/// workload (the same `(seed, jobs, pods)` triple the integration tests
/// use) and return the trace.
fn scenario_trace(
    runner: impl Fn(&ClusterConfig, &MixedWorkload, &Arc<Tracer>) -> crate::scenarios::ScenarioOutcome,
) -> Vec<SpanRecord> {
    let cfg = ClusterConfig { nodes: 16 };
    let wl = MixedWorkload::generate(42, 6, 12, &cfg);
    let tracer = Tracer::new();
    runner(&cfg, &wl, &tracer);
    tracer.finished()
}

//! # hpcc-core — Adaptive Containerization for HPC
//!
//! The paper's contribution layer, composing every substrate crate:
//!
//! * [`requirements`] — the executable decision document: site
//!   requirements scored against the engines (Tables 1–3) and registries
//!   (Tables 4–5), reproducing the survey's §4.2/§5.2 conclusions.
//! * [`pipeline`] — the adaptive deployment pipeline: site proxy →
//!   pull → convert/cache → stage to node-local storage → parallel launch.
//! * [`scenarios`] — the five §6 Kubernetes/WLM integration scenarios
//!   (plus a static-partition baseline) run against the same mixed
//!   workload, measuring startup overhead, makespan, utilization and
//!   accounting coverage; `kubelet_in_allocation` is the Figure 1 proof
//!   of concept.
//! * [`goldens`] — the golden-trace corpus: deterministic traces of the
//!   instrumented stack (quickstart pipeline, Q5 degraded pull, Q10 P2P
//!   broadcast, the five scenarios) diffed against checked-in TSV files.

pub mod goldens;
pub mod pipeline;
pub mod requirements;
pub mod scenarios;
pub mod workflow;

pub use pipeline::{deploy_to_allocation, DeploymentReport, PipelineError};
pub use requirements::{
    score_engine, score_registry, select_engine, select_registry, EngineScore,
    RegistryRequirements, RegistryScore, SiteRequirements,
};
pub use scenarios::{run_all, ClusterConfig, MixedWorkload, ScenarioOutcome};
pub use workflow::{run_on_k8s, run_on_wlm, Step, Workflow, WorkflowError, WorkflowRun};

//! Containerized workflows — the end-user capability adaptive
//! containerization promises: "the integration of HPC-centric and
//! specific container engines, registries, and orchestration tools, to
//! deliver full workflow capabilities to an end user" (§1), motivated by
//! the bioinformatics/data-science pipelines of §2.
//!
//! A [`Workflow`] is a DAG of container steps. It executes on either
//! backend the Section 6 analysis ends up recommending: WLM jobs
//! (bridge/KNoC style) or Kubernetes pods on an agent allocation — with
//! identical results, differing only in scheduling behaviour.

use hpcc_k8s::kubelet::Kubelet;
#[cfg(test)]
use hpcc_k8s::kubelet::KubeletMode;
use hpcc_k8s::objects::{ApiServer, PodPhase, PodSpec, Resources};
use hpcc_k8s::scheduler::Scheduler;
#[cfg(test)]
use hpcc_runtime::cgroup::CgroupTree;
use hpcc_sim::{SimClock, SimSpan, SimTime};
use hpcc_wlm::slurm::Slurm;
use hpcc_wlm::types::{JobId, JobRequest, JobState};
use std::collections::{BTreeMap, BTreeSet};

/// One step of a workflow.
#[derive(Debug, Clone)]
pub struct Step {
    pub name: String,
    /// `repo:tag` on the site registry.
    pub image: String,
    /// Names of steps that must complete first.
    pub deps: Vec<String>,
    pub duration: SimSpan,
    pub cores: u32,
}

impl Step {
    pub fn new(name: &str, image: &str, duration: SimSpan) -> Step {
        Step {
            name: name.to_string(),
            image: image.to_string(),
            deps: Vec::new(),
            duration,
            cores: 8,
        }
    }

    pub fn after(mut self, dep: &str) -> Step {
        self.deps.push(dep.to_string());
        self
    }

    pub fn with_cores(mut self, cores: u32) -> Step {
        self.cores = cores;
        self
    }
}

/// A DAG of steps.
#[derive(Debug, Clone, Default)]
pub struct Workflow {
    pub steps: Vec<Step>,
}

/// Errors from workflow validation/execution.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WorkflowError {
    DuplicateStep(String),
    UnknownDependency {
        step: String,
        dep: String,
    },
    Cycle(String),
    /// Execution exceeded the horizon without completing.
    Stalled,
    StepFailed {
        step: String,
        reason: String,
    },
}

impl std::fmt::Display for WorkflowError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WorkflowError::DuplicateStep(s) => write!(f, "duplicate step {s}"),
            WorkflowError::UnknownDependency { step, dep } => {
                write!(f, "step {step} depends on unknown {dep}")
            }
            WorkflowError::Cycle(s) => write!(f, "dependency cycle through {s}"),
            WorkflowError::Stalled => f.write_str("workflow did not complete"),
            WorkflowError::StepFailed { step, reason } => {
                write!(f, "step {step} failed: {reason}")
            }
        }
    }
}

impl std::error::Error for WorkflowError {}

impl Workflow {
    pub fn new() -> Workflow {
        Workflow::default()
    }

    pub fn step(mut self, step: Step) -> Workflow {
        self.steps.push(step);
        self
    }

    /// Validate: unique names, known deps, acyclic. Returns a topological
    /// order.
    pub fn validate(&self) -> Result<Vec<&Step>, WorkflowError> {
        let mut by_name: BTreeMap<&str, &Step> = BTreeMap::new();
        for s in &self.steps {
            if by_name.insert(&s.name, s).is_some() {
                return Err(WorkflowError::DuplicateStep(s.name.clone()));
            }
        }
        for s in &self.steps {
            for d in &s.deps {
                if !by_name.contains_key(d.as_str()) {
                    return Err(WorkflowError::UnknownDependency {
                        step: s.name.clone(),
                        dep: d.clone(),
                    });
                }
            }
        }
        // Kahn's algorithm.
        let mut indeg: BTreeMap<&str, usize> = self
            .steps
            .iter()
            .map(|s| (s.name.as_str(), s.deps.len()))
            .collect();
        let mut order = Vec::new();
        let mut ready: Vec<&str> = indeg
            .iter()
            .filter(|(_, d)| **d == 0)
            .map(|(n, _)| *n)
            .collect();
        while let Some(n) = ready.pop() {
            order.push(by_name[n]);
            for s in &self.steps {
                if s.deps.iter().any(|d| d == n) {
                    let e = indeg.get_mut(s.name.as_str()).expect("known step");
                    *e -= 1;
                    if *e == 0 {
                        ready.push(&s.name);
                    }
                }
            }
        }
        if order.len() != self.steps.len() {
            let stuck = indeg
                .iter()
                .find(|(_, d)| **d > 0)
                .map(|(n, _)| n.to_string())
                .unwrap_or_default();
            return Err(WorkflowError::Cycle(stuck));
        }
        Ok(order)
    }

    /// The DAG's critical path (lower bound on makespan with infinite
    /// resources).
    pub fn critical_path(&self) -> Result<SimSpan, WorkflowError> {
        let order = self.validate()?;
        let mut finish: BTreeMap<&str, SimSpan> = BTreeMap::new();
        for s in order {
            let start = s
                .deps
                .iter()
                .map(|d| finish[d.as_str()])
                .max()
                .unwrap_or(SimSpan::ZERO);
            finish.insert(&s.name, start + s.duration);
        }
        Ok(finish.values().copied().max().unwrap_or(SimSpan::ZERO))
    }
}

/// Per-step timing of a completed run.
#[derive(Debug, Clone)]
pub struct RunRecord {
    pub step: String,
    pub started: SimTime,
    pub ended: SimTime,
}

/// A completed workflow run.
#[derive(Debug, Clone)]
pub struct WorkflowRun {
    pub records: Vec<RunRecord>,
    pub makespan: SimSpan,
}

const HORIZON_TICKS: u64 = 6 * 3600;

/// Execute on a WLM backend: each ready step becomes a shared-allocation
/// job (the §6.4 bridge modality).
pub fn run_on_wlm(wf: &Workflow, slurm: &mut Slurm) -> Result<WorkflowRun, WorkflowError> {
    wf.validate()?;
    let mut done: BTreeMap<String, RunRecord> = BTreeMap::new();
    let mut running: BTreeMap<String, JobId> = BTreeMap::new();
    let mut t = SimTime::ZERO;
    for _ in 0..HORIZON_TICKS {
        slurm.advance_to(t);
        // Collect completions.
        let finished: Vec<(String, JobId)> = running
            .iter()
            .map(|(n, id)| (n.clone(), *id))
            .filter(|(_, id)| {
                matches!(
                    slurm.job(*id).map(|j| &j.state),
                    Ok(JobState::Completed { .. })
                )
            })
            .collect();
        for (name, id) in finished {
            let job = slurm.job(id).expect("completed job exists");
            if let JobState::Completed { started, ended, .. } = &job.state {
                done.insert(
                    name.clone(),
                    RunRecord {
                        step: name.clone(),
                        started: *started,
                        ended: *ended,
                    },
                );
            }
            running.remove(&name);
        }
        // Submit newly ready steps.
        for s in &wf.steps {
            if done.contains_key(&s.name) || running.contains_key(&s.name) {
                continue;
            }
            if s.deps.iter().all(|d| done.contains_key(d)) {
                let mut req = JobRequest::batch(&format!("wf-{}", s.name), 2000, 1, s.duration);
                req.exclusive = false;
                req.cores_per_node = s.cores;
                let id = slurm
                    .submit(req, t)
                    .map_err(|e| WorkflowError::StepFailed {
                        step: s.name.clone(),
                        reason: e.to_string(),
                    })?;
                running.insert(s.name.clone(), id);
            }
        }
        slurm.schedule(t);
        if done.len() == wf.steps.len() {
            let makespan = done
                .values()
                .map(|r| r.ended)
                .max()
                .unwrap_or(SimTime::ZERO)
                .since(SimTime::ZERO);
            let mut records: Vec<RunRecord> = done.into_values().collect();
            records.sort_by(|a, b| a.started.cmp(&b.started).then(a.step.cmp(&b.step)));
            return Ok(WorkflowRun { records, makespan });
        }
        t += SimSpan::secs(1);
    }
    Err(WorkflowError::Stalled)
}

/// Execute on a Kubernetes backend: each ready step becomes a pod on the
/// provided kubelet fleet (the §6.5 modality; kubelets typically live in
/// a WLM allocation).
pub fn run_on_k8s(
    wf: &Workflow,
    api: &ApiServer,
    sched: &mut Scheduler,
    kubelets: &mut [Kubelet],
    clock: &SimClock,
) -> Result<WorkflowRun, WorkflowError> {
    wf.validate()?;
    let mut submitted: BTreeSet<String> = BTreeSet::new();
    let mut done: BTreeMap<String, RunRecord> = BTreeMap::new();
    let mut t = clock.now();
    for _ in 0..HORIZON_TICKS {
        // Submit ready steps as pods.
        for s in &wf.steps {
            if submitted.contains(&s.name) {
                continue;
            }
            if s.deps.iter().all(|d| done.contains_key(d)) {
                let mut pod = PodSpec::simple(&format!("wf-{}", s.name), &s.image, s.duration);
                pod.resources = Resources {
                    cpu_millis: s.cores as u64 * 1000,
                    memory_mb: 2048,
                    gpus: 0,
                };
                pod.user = 2000;
                api.create_pod(pod).map_err(|e| WorkflowError::StepFailed {
                    step: s.name.clone(),
                    reason: e.to_string(),
                })?;
                submitted.insert(s.name.clone());
            }
        }
        sched.schedule(api);
        clock.advance_to(t);
        for kubelet in kubelets.iter_mut() {
            kubelet.sync(api, clock);
            for (pod_name, res, started, ended) in kubelet.advance_to(api, t) {
                sched.release(&kubelet.node_name, &res);
                let step = pod_name.trim_start_matches("wf-").to_string();
                done.insert(
                    step.clone(),
                    RunRecord {
                        step,
                        started,
                        ended,
                    },
                );
            }
        }
        // Surface pod failures.
        for pod in api.list_pods(|p| matches!(p.phase, PodPhase::Failed { .. })) {
            if let PodPhase::Failed { reason } = pod.phase {
                return Err(WorkflowError::StepFailed {
                    step: pod.spec.name,
                    reason,
                });
            }
        }
        if done.len() == wf.steps.len() {
            let makespan = done
                .values()
                .map(|r| r.ended)
                .max()
                .unwrap_or(SimTime::ZERO)
                .since(SimTime::ZERO);
            let mut records: Vec<RunRecord> = done.into_values().collect();
            records.sort_by(|a, b| a.started.cmp(&b.started).then(a.step.cmp(&b.step)));
            return Ok(WorkflowRun { records, makespan });
        }
        t += SimSpan::secs(1);
    }
    Err(WorkflowError::Stalled)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenarios::common::MeasuredCri;
    use hpcc_runtime::cgroup::CgroupVersion;
    use hpcc_wlm::types::NodeSpec;
    use std::sync::Arc;

    fn diamond() -> Workflow {
        Workflow::new()
            .step(Step::new("fetch", "bio/fetch:v1", SimSpan::secs(60)))
            .step(Step::new("align", "bio/align:v1", SimSpan::secs(300)).after("fetch"))
            .step(Step::new("qc", "bio/qc:v1", SimSpan::secs(120)).after("fetch"))
            .step(
                Step::new("report", "bio/report:v1", SimSpan::secs(30))
                    .after("align")
                    .after("qc"),
            )
    }

    #[test]
    fn validation_catches_structural_errors() {
        let dup = Workflow::new()
            .step(Step::new("a", "i:v", SimSpan::secs(1)))
            .step(Step::new("a", "i:v", SimSpan::secs(1)));
        assert!(matches!(
            dup.validate(),
            Err(WorkflowError::DuplicateStep(_))
        ));

        let unknown = Workflow::new().step(Step::new("a", "i:v", SimSpan::secs(1)).after("ghost"));
        assert!(matches!(
            unknown.validate(),
            Err(WorkflowError::UnknownDependency { .. })
        ));

        let cycle = Workflow::new()
            .step(Step::new("a", "i:v", SimSpan::secs(1)).after("b"))
            .step(Step::new("b", "i:v", SimSpan::secs(1)).after("a"));
        assert!(matches!(cycle.validate(), Err(WorkflowError::Cycle(_))));
    }

    #[test]
    fn critical_path_of_diamond() {
        // fetch(60) + align(300) + report(30) = 390s.
        assert_eq!(diamond().critical_path().unwrap(), SimSpan::secs(390));
    }

    #[test]
    fn wlm_backend_respects_dependencies() {
        let mut slurm = Slurm::new();
        slurm.add_partition("batch", NodeSpec::cpu_node(), 4);
        let run = run_on_wlm(&diamond(), &mut slurm).unwrap();
        assert_eq!(run.records.len(), 4);
        let by_name: BTreeMap<&str, &RunRecord> =
            run.records.iter().map(|r| (r.step.as_str(), r)).collect();
        assert!(by_name["align"].started >= by_name["fetch"].ended);
        assert!(by_name["qc"].started >= by_name["fetch"].ended);
        assert!(by_name["report"].started >= by_name["align"].ended);
        assert!(by_name["report"].started >= by_name["qc"].ended);
        // align and qc overlap (parallel branches).
        assert!(by_name["qc"].started < by_name["align"].ended);
        // Makespan ≥ critical path; close to it on an idle cluster.
        let cp = diamond().critical_path().unwrap();
        assert!(run.makespan >= cp);
        assert!(run.makespan < cp + SimSpan::secs(30), "{}", run.makespan);
    }

    #[test]
    fn k8s_backend_matches_wlm_semantics() {
        let api = ApiServer::new();
        let mut sched = Scheduler::new();
        let clock = SimClock::new();
        let cri = Arc::new(MeasuredCri);
        let mut kubelets: Vec<Kubelet> = (0..2)
            .map(|i| {
                let mut cg = CgroupTree::new(CgroupVersion::V2);
                Kubelet::start(
                    &format!("n{i}"),
                    KubeletMode::Rootful,
                    cri.clone(),
                    &mut cg,
                    Resources {
                        cpu_millis: 64_000,
                        memory_mb: 64 * 1024,
                        gpus: 0,
                    },
                    BTreeMap::new(),
                    &api,
                    &SimClock::new(),
                )
                .unwrap()
            })
            .collect();
        let run = run_on_k8s(&diamond(), &api, &mut sched, &mut kubelets, &clock).unwrap();
        assert_eq!(run.records.len(), 4);
        let by_name: BTreeMap<&str, &RunRecord> =
            run.records.iter().map(|r| (r.step.as_str(), r)).collect();
        assert!(by_name["report"].started >= by_name["align"].ended);
        let cp = diamond().critical_path().unwrap();
        assert!(run.makespan >= cp);
    }

    #[test]
    fn constrained_cluster_serializes_branches() {
        // One node, steps demanding most of it: align and qc cannot
        // overlap, stretching the makespan beyond the critical path.
        let wide = Workflow::new()
            .step(Step::new("a", "i:v", SimSpan::secs(100)).with_cores(100))
            .step(Step::new("b", "i:v", SimSpan::secs(100)).with_cores(100))
            .step(Step::new("c", "i:v", SimSpan::secs(100)).with_cores(100));
        let mut slurm = Slurm::new();
        slurm.add_partition("batch", NodeSpec::cpu_node(), 1);
        let run = run_on_wlm(&wide, &mut slurm).unwrap();
        // 3 independent 100s steps at 100/128 cores: strictly serial.
        assert!(run.makespan >= SimSpan::secs(300), "{}", run.makespan);
    }

    #[test]
    fn empty_workflow_completes_immediately() {
        let mut slurm = Slurm::new();
        slurm.add_partition("batch", NodeSpec::cpu_node(), 1);
        let run = run_on_wlm(&Workflow::new(), &mut slurm).unwrap();
        assert_eq!(run.makespan, SimSpan::ZERO);
        assert!(run.records.is_empty());
    }
}

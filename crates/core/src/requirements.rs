//! Site requirements and technology selection — the survey's "decision
//! document for supercomputer operation centers" (§7) made executable.
//!
//! A site states its constraints ([`SiteRequirements`]); the selector
//! scores every engine/registry against them, disqualifying candidates
//! that violate hard requirements and ranking the rest. The scoring reads
//! the same capability structures the Table 1–5 probes exercise.

use hpcc_engine::caps::{
    EncryptionSupport, GpuSupport, HookSupport, LibHookup, ModuleIntegration, MonitorModel,
    OciContainerSupport, RootlessFsMech, SignatureSupport, WlmIntegration,
};
use hpcc_engine::engine::Engine;
use hpcc_registry::products::RegistryProduct;
use hpcc_registry::registry::{MirrorMode, ProxyMode, Tenancy};
use serde::{Deserialize, Serialize};

/// What a site demands from its container stack.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SiteRequirements {
    /// Containers must start without root daemons (§3.2).
    pub no_root_daemons: bool,
    /// setuid-root helpers are acceptable (some sites forbid them).
    pub setuid_allowed: bool,
    /// Automatic GPU enablement needed.
    pub gpu: bool,
    /// Automatic host-MPI hookup needed.
    pub mpi: bool,
    /// Slurm integration (SPANK or hooks) needed.
    pub wlm_integration: bool,
    /// Signature verification needed.
    pub signing: bool,
    /// Encrypted containers needed.
    pub encryption: bool,
    /// Module-system integration desired.
    pub module_system: bool,
    /// Full (unmodified) OCI container compatibility needed.
    pub full_oci: bool,
    /// Sharing converted images between users desired (saves storage and
    /// conversion time; requires trusted service or setuid).
    pub shared_cache: bool,
}

impl SiteRequirements {
    /// A conservative HPC centre: rootless mandatory, no setuid, GPU+MPI.
    pub fn strict_hpc() -> SiteRequirements {
        SiteRequirements {
            no_root_daemons: true,
            setuid_allowed: false,
            gpu: true,
            mpi: true,
            wlm_integration: false,
            signing: false,
            encryption: false,
            module_system: true,
            full_oci: false,
            shared_cache: false,
        }
    }

    /// A centre that accepts setuid helpers and wants WLM integration.
    pub fn classic_hpc() -> SiteRequirements {
        SiteRequirements {
            no_root_daemons: true,
            setuid_allowed: true,
            gpu: true,
            mpi: true,
            wlm_integration: true,
            signing: false,
            encryption: false,
            module_system: false,
            full_oci: false,
            shared_cache: true,
        }
    }

    /// A cloud-converged site wanting unmodified OCI workloads + signing.
    pub fn cloud_converged() -> SiteRequirements {
        SiteRequirements {
            no_root_daemons: true,
            setuid_allowed: false,
            gpu: true,
            mpi: false,
            wlm_integration: false,
            signing: true,
            encryption: true,
            module_system: false,
            full_oci: true,
            shared_cache: false,
        }
    }
}

/// The verdict for one engine.
#[derive(Debug, Clone, Serialize)]
pub struct EngineScore {
    pub name: &'static str,
    /// Points for satisfied soft requirements.
    pub score: i32,
    /// Hard violations; non-empty = disqualified.
    pub violations: Vec<String>,
}

impl EngineScore {
    pub fn qualified(&self) -> bool {
        self.violations.is_empty()
    }
}

/// Score one engine against requirements.
pub fn score_engine(engine: &Engine, req: &SiteRequirements) -> EngineScore {
    let caps = &engine.caps;
    let mut violations = Vec::new();
    let mut score = 0;

    if req.no_root_daemons && caps.requires_daemon {
        violations.push("requires a per-machine root daemon".to_string());
    }
    if !req.setuid_allowed
        && caps.rootless_fs.contains(&RootlessFsMech::Suid)
        && !caps.rootless_fs.iter().any(|m| {
            matches!(
                m,
                RootlessFsMech::SquashFuse | RootlessFsMech::Dir | RootlessFsMech::FuseOverlayfs
            )
        })
    {
        violations.push("only setuid-based filesystem mounting available".to_string());
    }
    if req.gpu {
        match caps.gpu {
            GpuSupport::Builtin | GpuSupport::ViaOciHooks | GpuSupport::NvidiaOnly => score += 2,
            GpuSupport::Manual => score -= 1,
            GpuSupport::No => violations.push("no GPU enablement".to_string()),
        }
    }
    if req.mpi {
        match caps.lib_hookup {
            LibHookup::Builtin | LibHookup::ViaOciHooks | LibHookup::ViaCustomHooks => score += 2,
            LibHookup::MpichOnly => score += 1,
            LibHookup::Manual => score -= 1,
        }
    }
    if req.wlm_integration {
        match caps.wlm {
            WlmIntegration::SpankPlugin => score += 2,
            WlmIntegration::PartialViaHooks => score += 1,
            WlmIntegration::No | WlmIntegration::NoUnreleasedPlugin => {
                violations.push("no WLM integration".to_string())
            }
        }
    }
    if req.signing {
        match caps.signature {
            SignatureSupport::Notary | SignatureSupport::GpgSigstore => score += 2,
            SignatureSupport::GpgSifOnly => score += 1,
            SignatureSupport::None => violations.push("no signature support".to_string()),
        }
    }
    if req.encryption {
        match caps.encryption {
            EncryptionSupport::Yes => score += 2,
            EncryptionSupport::SifOnly => score += 1,
            EncryptionSupport::ViaExtensions => {}
            EncryptionSupport::No => violations.push("no encryption support".to_string()),
        }
    }
    if req.module_system {
        match caps.module_system {
            ModuleIntegration::ViaShpc => score += 2,
            ModuleIntegration::ShpcParenthesized => score += 1,
            ModuleIntegration::ShpcAnnounced | ModuleIntegration::No => {}
        }
    }
    if req.full_oci {
        match caps.oci_container {
            OciContainerSupport::Full => score += 2,
            OciContainerSupport::Partial => {
                violations.push("breaks OCI container expectations".to_string())
            }
        }
    }
    if req.shared_cache && caps.native_sharing {
        score += 2;
    }
    // General soft signals.
    if caps.transparent_conversion {
        score += 1;
    }
    if caps.native_caching {
        score += 1;
    }
    if matches!(caps.oci_hooks, HookSupport::Yes) {
        score += 1;
    }
    if matches!(caps.monitor, MonitorModel::None) {
        // No extra per-container processes: less jitter (§3.2).
        score += 1;
    }
    // Community size as a weak tie-breaker (survey §4.1.9).
    score += (engine.info.contributors / 100) as i32;

    EngineScore {
        name: engine.info.name,
        score,
        violations,
    }
}

/// Rank all engines for a site: qualified first by descending score, then
/// disqualified.
pub fn select_engine(engines: &[Engine], req: &SiteRequirements) -> Vec<EngineScore> {
    let mut scores: Vec<EngineScore> = engines.iter().map(|e| score_engine(e, req)).collect();
    scores.sort_by(|a, b| {
        b.qualified()
            .cmp(&a.qualified())
            .then(b.score.cmp(&a.score))
            .then(a.name.cmp(b.name))
    });
    scores
}

/// Registry requirements.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RegistryRequirements {
    /// Proxying/pull-through caching needed (§5.1.3).
    pub proxying: bool,
    pub mirroring: bool,
    /// User-defined OCI artifacts needed ("crucial for the Adaptive
    /// Containerization feature", §5.1.2).
    pub user_defined_artifacts: bool,
    pub multi_tenancy: bool,
    pub quotas: bool,
    pub signing: bool,
}

impl RegistryRequirements {
    /// The paper's §5.2 conclusion criteria.
    pub fn hpc_centric() -> RegistryRequirements {
        RegistryRequirements {
            proxying: true,
            mirroring: true,
            user_defined_artifacts: true,
            multi_tenancy: true,
            quotas: true,
            signing: true,
        }
    }
}

/// The verdict for one registry.
#[derive(Debug, Clone, Serialize)]
pub struct RegistryScore {
    pub name: &'static str,
    pub score: i32,
    pub violations: Vec<String>,
}

impl RegistryScore {
    pub fn qualified(&self) -> bool {
        self.violations.is_empty()
    }
}

/// Score one registry product.
pub fn score_registry(product: &RegistryProduct, req: &RegistryRequirements) -> RegistryScore {
    let caps = product.registry.caps();
    let mut violations = Vec::new();
    let mut score = 0;

    if req.proxying {
        match caps.proxying {
            ProxyMode::Auto => score += 2,
            ProxyMode::Manual => score += 1,
            ProxyMode::None => violations.push("no proxying".to_string()),
        }
    }
    if req.mirroring {
        match caps.mirroring {
            MirrorMode::PushAndPull => score += 2,
            MirrorMode::Pull | MirrorMode::Manual => score += 1,
            MirrorMode::None => violations.push("no mirroring".to_string()),
        }
    }
    if req.user_defined_artifacts
        && !caps
            .extra_artifacts
            .contains(&hpcc_oci::image::MediaType::UserDefined)
    {
        // Quay accepts many artifact kinds; only full user-defined support
        // scores the full points.
        if caps.extra_artifacts.is_empty() {
            violations.push("no OCI artifact support".to_string());
        }
    } else if req.user_defined_artifacts {
        score += 2;
    }
    if req.multi_tenancy {
        match caps.tenancy {
            Tenancy::Organization | Tenancy::Project => score += 2,
            Tenancy::None => violations.push("no multi-tenancy".to_string()),
        }
    }
    if req.quotas {
        if caps.quotas {
            score += 1;
        } else {
            violations.push("no quotas".to_string());
        }
    }
    if req.signing {
        if caps.signing {
            score += 1;
        } else {
            violations.push("no signature storage".to_string());
        }
    }

    RegistryScore {
        name: product.info.name,
        score,
        violations,
    }
}

/// Rank all registries for a site.
pub fn select_registry(
    products: &[RegistryProduct],
    req: &RegistryRequirements,
) -> Vec<RegistryScore> {
    let mut scores: Vec<RegistryScore> = products.iter().map(|p| score_registry(p, req)).collect();
    scores.sort_by(|a, b| {
        b.qualified()
            .cmp(&a.qualified())
            .then(b.score.cmp(&a.score))
            .then(a.name.cmp(b.name))
    });
    scores
}

#[cfg(test)]
mod tests {
    use super::*;
    use hpcc_engine::engines;
    use hpcc_registry::products;

    #[test]
    fn docker_disqualified_for_daemonless_sites() {
        let scores = select_engine(&engines::all(), &SiteRequirements::strict_hpc());
        let docker = scores.iter().find(|s| s.name == "Docker").unwrap();
        assert!(!docker.qualified());
        assert!(docker.violations[0].contains("daemon"));
    }

    #[test]
    fn strict_hpc_prefers_userns_fuse_engines() {
        let scores = select_engine(&engines::all(), &SiteRequirements::strict_hpc());
        let top = &scores[0];
        assert!(top.qualified());
        // Shifter (suid-only, no GPU) must not win a strict no-suid site.
        assert_ne!(top.name, "Shifter");
        assert_ne!(top.name, "Docker");
    }

    #[test]
    fn classic_hpc_rewards_wlm_integration() {
        let scores = select_engine(&engines::all(), &SiteRequirements::classic_hpc());
        let qualified: Vec<&str> = scores
            .iter()
            .filter(|s| s.qualified())
            .map(|s| s.name)
            .collect();
        // Only SPANK/hook-integrated engines survive the hard WLM
        // requirement.
        for name in &qualified {
            assert!(
                matches!(*name, "Shifter" | "Sarus" | "ENROOT"),
                "{name} should not qualify"
            );
        }
        assert!(!qualified.is_empty());
    }

    #[test]
    fn cloud_converged_drops_partial_oci_engines() {
        let scores = select_engine(&engines::all(), &SiteRequirements::cloud_converged());
        let qualified: Vec<&str> = scores
            .iter()
            .filter(|s| s.qualified())
            .map(|s| s.name)
            .collect();
        assert!(qualified.contains(&"Podman"), "{qualified:?}");
        assert!(!qualified.contains(&"Apptainer"), "partial OCI");
        assert!(!qualified.contains(&"Docker"), "daemon");
    }

    #[test]
    fn registry_selection_matches_paper_summary() {
        // §5.2: "the remaining candidates for an HPC-centric container
        // setup are Project Quay and Harbor."
        let scores = select_registry(&products::all(), &RegistryRequirements::hpc_centric());
        let qualified: Vec<&str> = scores
            .iter()
            .filter(|s| s.qualified())
            .map(|s| s.name)
            .collect();
        assert_eq!(qualified, vec!["Harbor", "Quay"], "{scores:#?}");
    }

    #[test]
    fn scores_are_deterministic() {
        let a = select_engine(&engines::all(), &SiteRequirements::strict_hpc());
        let b = select_engine(&engines::all(), &SiteRequirements::strict_hpc());
        let names_a: Vec<&str> = a.iter().map(|s| s.name).collect();
        let names_b: Vec<&str> = b.iter().map(|s| s.name).collect();
        assert_eq!(names_a, names_b);
    }
}

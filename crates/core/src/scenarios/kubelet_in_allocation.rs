//! §6.5 / Figure 1 — Kubernetes agents inside a WLM allocation.
//!
//! The paper's proposed integration: a continuously running control plane
//! (on service nodes), and a WLM job whose allocation boots *rootless*
//! kubelets — one per node, joining the standing cluster over the
//! high-speed network — so pods run transparently on compute nodes with
//! full Slurm accounting and a mainline Kubernetes environment.
//!
//! Requirements exercised (per §6.5): rootless kubelets demand cgroup v2
//! with delegation; the kubelet↔apiserver join rides the HSN fabric; the
//! allocation is cancelled when the pod queue drains.

use super::common::{
    job_stats, pod_stats, ClusterConfig, MeasuredCri, MixedWorkload, ScenarioOutcome, HORIZON, TICK,
};
use hpcc_k8s::kubelet::{Kubelet, KubeletMode};
use hpcc_k8s::objects::{ApiServer, PodPhase};
use hpcc_k8s::scheduler::Scheduler;
use hpcc_runtime::cgroup::{CgroupLimits, CgroupTree, CgroupVersion};
use hpcc_sim::net::{Fabric, LinkClass, NodeId as NetNode};
use hpcc_sim::sym;
use hpcc_sim::{Bytes, SimClock, SimTime, Stage, Tracer};
use hpcc_wlm::slurm::Slurm;
use hpcc_wlm::types::JobRequest;
use std::collections::BTreeMap;
use std::sync::Arc;

/// Run the kubelet-in-allocation scenario. Returns the outcome plus the
/// per-kubelet join latencies over the HSN (the Figure 1 detail).
pub fn run_detailed(
    cfg: &ClusterConfig,
    wl: &MixedWorkload,
) -> (ScenarioOutcome, Vec<hpcc_sim::SimSpan>) {
    run_detailed_traced(cfg, wl, &Tracer::disabled())
}

/// [`run_detailed`] with a tracer attached: the whole scenario becomes a
/// `scenario` span, with WLM and kubelet activity nested inside it.
pub fn run_detailed_traced(
    cfg: &ClusterConfig,
    wl: &MixedWorkload,
    tracer: &Arc<Tracer>,
) -> (ScenarioOutcome, Vec<hpcc_sim::SimSpan>) {
    let scenario = tracer.begin(sym!("scenario"), Stage::Other, SimTime::ZERO);
    tracer.attr(scenario, sym!("name"), "kubelet-in-allocation");

    let mut slurm = Slurm::new();
    slurm.add_partition("batch", cfg.spec(), cfg.nodes);
    slurm.set_tracer(Arc::clone(tracer));

    // Standing control plane on a service node (net node 0); compute
    // nodes are net nodes 1..=N.
    let api = ApiServer::new();
    let mut sched = Scheduler::new();
    let fabric = Fabric::with_defaults((0..=cfg.nodes).map(NetNode));
    let clock = SimClock::new();
    let cri = Arc::new(MeasuredCri);

    let job_ids: Vec<_> = wl
        .jobs
        .iter()
        .filter_map(|j| slurm.submit(j.clone(), SimTime::ZERO).ok())
        .collect();
    for pod in &wl.pods {
        api.create_pod(pod.clone()).unwrap();
    }

    // Size the agent allocation for pod demand.
    let node_millis = cfg.node_resources().cpu_millis;
    let demand: u64 = wl.pods.iter().map(|p| p.resources.cpu_millis).sum();
    let agent_nodes = (demand.div_ceil(node_millis).max(1) as u32)
        .min(cfg.nodes / 2)
        .max(1);
    let mut agent_job = JobRequest::batch("k8s-agents", 2000, agent_nodes, HORIZON);
    agent_job.walltime_limit = HORIZON * 2;
    let agent_job_id = slurm.submit(agent_job, SimTime::ZERO).ok();

    let mut kubelets: Vec<Kubelet> = Vec::new();
    let mut join_spans = Vec::new();
    let mut agents_booted = false;

    let mut t = SimTime::ZERO;
    let mut done_at = SimTime::ZERO;
    while t.since(SimTime::ZERO) < HORIZON {
        slurm.advance_to(t);

        // Allocation granted → boot rootless kubelets on its nodes, each
        // joining the standing control plane over the high-speed network.
        if !agents_booted {
            if let Some(id) = agent_job_id {
                if slurm.job(id).map(|j| j.is_running()).unwrap_or(false) {
                    let alloc = slurm.allocated_nodes(id);
                    for wlm_node in &alloc {
                        // Join handshake over the HSN: ~1 MiB of TLS +
                        // node-sync traffic to the apiserver.
                        let sent = fabric
                            .send(
                                NetNode(wlm_node.0 + 1),
                                NetNode(0),
                                LinkClass::HighSpeed,
                                Bytes::mib(1),
                                t,
                            )
                            .expect("HSN reachable");
                        join_spans.push(sent.since(t));

                        let boot_clock = SimClock::new();
                        let mut cg = CgroupTree::new(CgroupVersion::V2);
                        cg.create("alloc", 0, CgroupLimits::default()).unwrap();
                        cg.delegate("alloc", 0, 2000).unwrap();
                        cg.delegate("", 0, 2000).unwrap();
                        let mut kubelet = Kubelet::start(
                            &format!("agent-{}", wlm_node.0),
                            KubeletMode::Rootless { uid: 2000 },
                            cri.clone(),
                            &mut cg,
                            cfg.node_resources(),
                            BTreeMap::new(),
                            &api,
                            &boot_clock,
                        )
                        .expect("rootless kubelet with delegation boots");
                        kubelet.set_tracer(Arc::clone(tracer));
                        kubelets.push(kubelet);
                    }
                    agents_booted = true;
                }
            }
        }

        sched.schedule(&api);
        clock.advance_to(t);
        for kubelet in &mut kubelets {
            kubelet.sync(&api, &clock);
            for (_, res, _, _) in kubelet.advance_to(&api, t) {
                sched.release(&kubelet.node_name, &res);
            }
        }

        let (succ, fail, _, _, _) = pod_stats(&api);
        let pods_done = succ + fail == wl.pods.len()
            && api
                .list_pods(|p| matches!(p.phase, PodPhase::Pending | PodPhase::Scheduled { .. }))
                .is_empty();
        if pods_done {
            // Release the allocation.
            if let Some(id) = agent_job_id {
                if slurm.job(id).map(|j| j.is_running()).unwrap_or(false) {
                    for kubelet in &mut kubelets {
                        kubelet.shutdown(&api);
                    }
                    slurm.cancel(id, t).unwrap();
                }
            }
        }
        if pods_done && slurm.running_count() == 0 && slurm.pending_count() == 0 {
            done_at = t;
            break;
        }
        t += TICK;
    }

    let (pods_succeeded, pods_failed, first, mean, last_pod_end) = pod_stats(&api);
    let (jobs_completed, last_job_end) = job_stats(&slurm, &job_ids);
    let makespan = done_at
        .max(last_pod_end)
        .max(last_job_end)
        .since(SimTime::ZERO);
    tracer.end(scenario, SimTime::ZERO + makespan);

    let outcome = ScenarioOutcome {
        name: "kubelet-in-allocation",
        first_pod_start: first,
        mean_pod_start: mean,
        makespan,
        utilization: slurm.ledger().utilization(cfg.capacity_cores(), makespan),
        accounting_coverage: slurm.ledger().accounting_coverage(),
        pods_succeeded,
        pods_failed,
        jobs_completed,
        notes: "standing control plane + rootless agents in allocation: full accounting, mainline k8s env, no cluster boot",
    };
    (outcome, join_spans)
}

/// Run the scenario, discarding Figure 1 details.
pub fn run(cfg: &ClusterConfig, wl: &MixedWorkload) -> ScenarioOutcome {
    run_detailed(cfg, wl).0
}

//! §6.4 — Bridged Kubernetes and WLM via a virtual kubelet (KNoC).
//!
//! A standing control plane runs outside the cluster; a virtual kubelet
//! registers as a node and turns every pod bound to it into a WLM job —
//! transparently, with all accounting inside the WLM. The measured
//! container startup cost is folded into each pod's job runtime (the
//! container really is started by an engine inside the allocation).

use super::common::{
    job_stats, measured_container_startup, pod_stats, ClusterConfig, MixedWorkload,
    ScenarioOutcome, HORIZON, TICK,
};
use hpcc_k8s::bridge::VirtualKubelet;
use hpcc_k8s::objects::{ApiServer, Resources};
use hpcc_k8s::scheduler::Scheduler;
use hpcc_sim::sym;
use hpcc_sim::{SimTime, Stage, Tracer};
use hpcc_wlm::slurm::Slurm;
use std::sync::Arc;

/// Run the bridged (virtual-kubelet) scenario.
pub fn run(cfg: &ClusterConfig, wl: &MixedWorkload) -> ScenarioOutcome {
    run_traced(cfg, wl, &Tracer::disabled())
}

/// [`run`] with a tracer attached: the whole scenario becomes a `scenario`
/// span, with every pod→job translation visible as WLM spans inside it.
pub fn run_traced(
    cfg: &ClusterConfig,
    wl: &MixedWorkload,
    tracer: &Arc<Tracer>,
) -> ScenarioOutcome {
    let scenario = tracer.begin(sym!("scenario"), Stage::Other, SimTime::ZERO);
    tracer.attr(scenario, sym!("name"), "bridge-virtual-kubelet");

    let mut slurm = Slurm::new();
    slurm.add_partition("batch", cfg.spec(), cfg.nodes);
    slurm.set_tracer(Arc::clone(tracer));

    let api = ApiServer::new();
    let mut sched = Scheduler::new();
    let aggregate = Resources {
        cpu_millis: cfg.capacity_cores() * 1000,
        memory_mb: cfg.nodes as u64 * cfg.spec().memory_mb,
        gpus: cfg.nodes * cfg.spec().gpus,
    };
    let mut vk = VirtualKubelet::start("knoc", "batch", aggregate, &api).expect("vk registers");

    let job_ids: Vec<_> = wl
        .jobs
        .iter()
        .filter_map(|j| slurm.submit(j.clone(), SimTime::ZERO).ok())
        .collect();
    let startup = measured_container_startup();
    for pod in &wl.pods {
        let mut p = pod.clone();
        // The engine startup happens inside the WLM job.
        p.duration += startup;
        api.create_pod(p).unwrap();
    }

    let mut t = SimTime::ZERO;
    let mut done_at = SimTime::ZERO;
    while t.since(SimTime::ZERO) < HORIZON {
        slurm.advance_to(t);
        sched.schedule(&api);
        vk.reconcile(&api, &mut slurm, t);

        let (succ, fail, _, _, _) = pod_stats(&api);
        if succ + fail == wl.pods.len() && slurm.pending_count() == 0 && slurm.running_count() == 0
        {
            done_at = t;
            break;
        }
        t += TICK;
    }

    let (pods_succeeded, pods_failed, first, mean, last_pod_end) = pod_stats(&api);
    let (jobs_completed, last_job_end) = job_stats(&slurm, &job_ids);
    let makespan = done_at
        .max(last_pod_end)
        .max(last_job_end)
        .since(SimTime::ZERO);
    tracer.end(scenario, SimTime::ZERO + makespan);

    ScenarioOutcome {
        name: "bridge-virtual-kubelet",
        first_pod_start: first,
        mean_pod_start: mean,
        makespan,
        utilization: slurm.ledger().utilization(cfg.capacity_cores(), makespan),
        accounting_coverage: slurm.ledger().accounting_coverage(),
        pods_succeeded,
        pods_failed,
        jobs_completed,
        notes: "transparent pod→job translation; full WLM accounting; non-standard pod environment",
    }
}

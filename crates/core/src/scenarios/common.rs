//! Shared harness for the Section 6 integration scenarios: cluster
//! configuration, mixed workload generation, the measured container
//! startup cost, and outcome metrics.

use hpcc_engine::engine::{Host, RunOptions};
use hpcc_engine::engines;
use hpcc_k8s::kubelet::CriRuntime;
use hpcc_k8s::objects::{ApiServer, PodPhase, PodSpec, Resources};
use hpcc_oci::builder::samples;
use hpcc_oci::cas::Cas;
use hpcc_registry::registry::{Registry, RegistryCaps};
use hpcc_sim::rng::DetRng;
use hpcc_sim::{SimClock, SimSpan, SimTime};
use hpcc_storage::BlobStore;
use hpcc_wlm::slurm::Slurm;
use hpcc_wlm::types::{JobRequest, JobState, NodeSpec};
use std::sync::OnceLock;

/// Cluster shape shared by every scenario.
#[derive(Debug, Clone, Copy)]
pub struct ClusterConfig {
    pub nodes: u32,
}

impl ClusterConfig {
    pub fn spec(&self) -> NodeSpec {
        NodeSpec::cpu_node()
    }

    pub fn capacity_cores(&self) -> u64 {
        self.nodes as u64 * self.spec().cores as u64
    }

    /// Allocatable resources of one node as a k8s object.
    pub fn node_resources(&self) -> Resources {
        let spec = self.spec();
        Resources {
            cpu_millis: spec.cores as u64 * 1000,
            memory_mb: spec.memory_mb,
            gpus: spec.gpus,
        }
    }
}

/// The mixed HPC + cloud-native workload of the §6.6 comparison.
#[derive(Debug, Clone)]
pub struct MixedWorkload {
    pub jobs: Vec<JobRequest>,
    pub pods: Vec<PodSpec>,
}

impl MixedWorkload {
    /// Deterministically generate a workload: `n_jobs` multi-node batch
    /// jobs (1..nodes/4 nodes, exp-distributed runtimes around 10 min)
    /// and `n_pods` single-node pods (2–16 cores, exp runtimes ~2 min).
    pub fn generate(seed: u64, n_jobs: usize, n_pods: usize, cfg: &ClusterConfig) -> MixedWorkload {
        let mut rng = DetRng::seeded(seed);
        let max_job_nodes = (cfg.nodes / 4).max(1);
        let jobs = (0..n_jobs)
            .map(|i| {
                let nodes = rng.uniform(1, max_job_nodes as u64 + 1) as u32;
                let runtime = SimSpan::from_secs_f64(rng.exponential(600.0).clamp(60.0, 3600.0));
                let mut req = JobRequest::batch(
                    &format!("hpc-job-{i}"),
                    1000 + (i % 5) as u32,
                    nodes,
                    runtime,
                );
                req.walltime_limit = runtime * 2;
                req
            })
            .collect();
        let pods = (0..n_pods)
            .map(|i| {
                let mut pod = PodSpec::simple(
                    &format!("pod-{i}"),
                    "hpc/pyapp:v1",
                    SimSpan::from_secs_f64(rng.exponential(120.0).clamp(20.0, 900.0)),
                );
                pod.resources.cpu_millis = rng.uniform(2, 17) * 1000;
                pod.resources.memory_mb = 4096;
                pod.user = 2000 + (i % 5) as u32;
                pod
            })
            .collect();
        MixedWorkload { jobs, pods }
    }
}

/// Result of running one scenario.
#[derive(Debug, Clone)]
pub struct ScenarioOutcome {
    pub name: &'static str,
    /// Time from submission to the first pod actually running.
    pub first_pod_start: Option<SimSpan>,
    /// Mean pod queue+startup latency.
    pub mean_pod_start: Option<SimSpan>,
    /// Completion of the whole workload.
    pub makespan: SimSpan,
    /// Core-seconds used / capacity over the makespan.
    pub utilization: f64,
    /// Fraction of usage the WLM accounted (§6.6's central metric).
    pub accounting_coverage: f64,
    pub pods_succeeded: usize,
    pub pods_failed: usize,
    pub jobs_completed: usize,
    pub notes: &'static str,
}

/// Simulation step and horizon used by the scenario drivers.
pub const TICK: SimSpan = SimSpan(1_000_000_000);
pub const HORIZON: SimSpan = SimSpan(6 * 3600 * 1_000_000_000);

/// Pipeline worker count used by the scenario startup measurement: blob
/// fetches and per-layer conversions overlap four wide, the typical
/// containerd/`podman --max-parallel-downloads` default class.
pub const SCENARIO_PIPELINE_PARALLELISM: usize = 4;

/// The measured single-node container startup latency (pull through a
/// local registry + convert + launch, via the real Podman-HPC pipeline,
/// with the pipeline overlapping work [`SCENARIO_PIPELINE_PARALLELISM`]
/// wide against a node-local layer store).
/// Measured once and cached — every scenario charges the same real cost.
pub fn measured_container_startup() -> SimSpan {
    static STARTUP: OnceLock<SimSpan> = OnceLock::new();
    *STARTUP.get_or_init(|| {
        let registry = Registry::new("scenario-site", RegistryCaps::open());
        registry.create_namespace("hpc", None).unwrap();
        let cas = Cas::new();
        let img = samples::python_app(&cas, 120);
        for d in std::iter::once(&img.manifest.config).chain(img.manifest.layers.iter()) {
            let data = cas.get(&d.digest).unwrap();
            registry
                .push_blob(d.media_type, d.digest, data.as_ref().clone())
                .unwrap();
        }
        registry
            .push_manifest("hpc/pyapp", "v1", &img.manifest)
            .unwrap();
        let engine = engines::podman_hpc();
        engine.set_parallelism(SCENARIO_PIPELINE_PARALLELISM);
        engine.set_blob_store(BlobStore::node_local());
        let host = Host::compute_node();
        let clock = SimClock::new();
        let (_, span) = engine
            .deploy(
                &registry,
                "hpc/pyapp",
                "v1",
                1000,
                &host,
                RunOptions::default(),
                &clock,
            )
            .expect("startup measurement deploy succeeds");
        span
    })
}

/// A CRI charging the measured startup latency per pod. The measurement
/// comes from the real engine pipeline (above); scenarios use this so the
/// scheduling loops stay decoupled from the engine's internal clock.
pub struct MeasuredCri;

impl CriRuntime for MeasuredCri {
    fn start_pod(&self, _pod: &PodSpec) -> Result<SimSpan, String> {
        Ok(measured_container_startup())
    }
}

/// Collect pod statistics from an API server after a run.
pub fn pod_stats(api: &ApiServer) -> (usize, usize, Option<SimSpan>, Option<SimSpan>, SimTime) {
    let pods = api.list_pods(|_| true);
    let mut succeeded = 0;
    let mut failed = 0;
    let mut first: Option<SimTime> = None;
    let mut total_start_ns: u128 = 0;
    let mut started_count = 0u32;
    let mut last_end = SimTime::ZERO;
    for p in &pods {
        match &p.phase {
            PodPhase::Succeeded { started, ended, .. } => {
                succeeded += 1;
                first = Some(first.map_or(*started, |f| f.min(*started)));
                total_start_ns += started.as_nanos() as u128;
                started_count += 1;
                last_end = last_end.max(*ended);
            }
            PodPhase::Running { started, .. } => {
                first = Some(first.map_or(*started, |f| f.min(*started)));
                total_start_ns += started.as_nanos() as u128;
                started_count += 1;
            }
            PodPhase::Failed { .. } => failed += 1,
            _ => {}
        }
    }
    let mean = if started_count > 0 {
        Some(SimSpan((total_start_ns / started_count as u128) as u64))
    } else {
        None
    };
    (
        succeeded,
        failed,
        first.map(|t| t.since(SimTime::ZERO)),
        mean,
        last_end,
    )
}

/// Count completed WLM jobs and the latest job end time.
pub fn job_stats(slurm: &Slurm, job_ids: &[hpcc_wlm::types::JobId]) -> (usize, SimTime) {
    let mut completed = 0;
    let mut last_end = SimTime::ZERO;
    for id in job_ids {
        if let Ok(job) = slurm.job(*id) {
            if let JobState::Completed { ended, .. } = &job.state {
                completed += 1;
                last_end = last_end.max(*ended);
            }
        }
    }
    (completed, last_end)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn workload_generation_is_deterministic_and_bounded() {
        let cfg = ClusterConfig { nodes: 16 };
        let a = MixedWorkload::generate(7, 10, 20, &cfg);
        let b = MixedWorkload::generate(7, 10, 20, &cfg);
        assert_eq!(a.jobs.len(), 10);
        assert_eq!(a.pods.len(), 20);
        for (ja, jb) in a.jobs.iter().zip(&b.jobs) {
            assert_eq!(ja, jb);
        }
        for j in &a.jobs {
            assert!(j.nodes >= 1 && j.nodes <= 4);
            assert!(j.actual_runtime >= SimSpan::secs(60));
        }
        for p in &a.pods {
            assert!(p.resources.cpu_millis >= 2000 && p.resources.cpu_millis <= 16_000);
        }
    }

    #[test]
    fn measured_startup_is_positive_and_stable() {
        let a = measured_container_startup();
        let b = measured_container_startup();
        assert_eq!(a, b);
        assert!(a > SimSpan::millis(1), "startup {a} should be nontrivial");
        assert!(a < SimSpan::secs(300), "startup {a} should be bounded");
    }

    #[test]
    fn pod_stats_empty_api() {
        let api = ApiServer::new();
        let (s, f, first, mean, _) = pod_stats(&api);
        assert_eq!((s, f), (0, 0));
        assert!(first.is_none() && mean.is_none());
    }
}

//! §6.2 — Running the WLM inside Kubernetes.
//!
//! The whole cluster is Kubernetes; Slurm's daemons run as privileged
//! pods pinned to a subset of nodes and schedule classic HPC jobs there.
//! "This approach does not enable running containerized workloads within
//! the WLM" — user pods run beside it on the remaining nodes, their usage
//! never reaching the WLM's books — and "any possible performance
//! penalties incurred by the additional layer introduced must be
//! verified": HPC job runtimes stretch by the virtualization-layer factor.

use super::common::{
    job_stats, pod_stats, ClusterConfig, MeasuredCri, MixedWorkload, ScenarioOutcome, HORIZON, TICK,
};
use hpcc_k8s::kubelet::{Kubelet, KubeletMode};
use hpcc_k8s::objects::ApiServer;
use hpcc_k8s::scheduler::Scheduler;
use hpcc_runtime::cgroup::{CgroupTree, CgroupVersion};
use hpcc_sim::sym;
use hpcc_sim::{SimClock, SimTime, Stage, Tracer};
use hpcc_wlm::accounting::{UsageRecord, UsageSource};
use hpcc_wlm::slurm::Slurm;
use std::collections::BTreeMap;
use std::sync::Arc;

/// Runtime stretch from running slurmd inside pods on a shared substrate.
const WLM_IN_K8S_PENALTY: f64 = 1.05;

/// Run the WLM-in-Kubernetes scenario.
pub fn run(cfg: &ClusterConfig, wl: &MixedWorkload) -> ScenarioOutcome {
    run_traced(cfg, wl, &Tracer::disabled())
}

/// [`run`] with a tracer attached: the whole scenario becomes a `scenario`
/// span, with WLM and kubelet activity nested inside it.
pub fn run_traced(
    cfg: &ClusterConfig,
    wl: &MixedWorkload,
    tracer: &Arc<Tracer>,
) -> ScenarioOutcome {
    let scenario = tracer.begin(sym!("scenario"), Stage::Other, SimTime::ZERO);
    tracer.attr(scenario, sym!("name"), "wlm-in-k8s");

    // 3/4 of nodes carry pinned slurmd pods, the rest serve user pods.
    let wlm_nodes = (cfg.nodes * 3 / 4).max(1);
    let k8s_nodes = cfg.nodes - wlm_nodes;

    let mut slurm = Slurm::new();
    slurm.add_partition("batch", cfg.spec(), wlm_nodes);
    slurm.set_tracer(Arc::clone(tracer));

    let api = ApiServer::new();
    let mut sched = Scheduler::new();
    let clock = SimClock::new();
    let cri = Arc::new(MeasuredCri);
    let mut kubelets: Vec<Kubelet> = (0..k8s_nodes)
        .map(|i| {
            let mut cg = CgroupTree::new(CgroupVersion::V2);
            let mut kubelet = Kubelet::start(
                &format!("user-{i}"),
                KubeletMode::Rootful,
                cri.clone(),
                &mut cg,
                cfg.node_resources(),
                BTreeMap::new(),
                &api,
                &SimClock::new(),
            )
            .expect("kubelet starts");
            kubelet.set_tracer(Arc::clone(tracer));
            kubelet
        })
        .collect();

    // HPC jobs pay the layer penalty.
    let job_ids: Vec<_> = wl
        .jobs
        .iter()
        .filter_map(|j| {
            let mut req = j.clone();
            req.actual_runtime = req.actual_runtime.scale(WLM_IN_K8S_PENALTY);
            req.walltime_limit = req.walltime_limit.scale(WLM_IN_K8S_PENALTY);
            slurm.submit(req, SimTime::ZERO).ok()
        })
        .collect();
    for pod in &wl.pods {
        api.create_pod(pod.clone()).unwrap();
    }

    let mut t = SimTime::ZERO;
    let mut done_at = SimTime::ZERO;
    while t.since(SimTime::ZERO) < HORIZON {
        slurm.advance_to(t);
        sched.schedule(&api);
        clock.advance_to(t);
        for kubelet in &mut kubelets {
            kubelet.sync(&api, &clock);
            for (_, res, started, ended) in kubelet.advance_to(&api, t) {
                sched.release(&kubelet.node_name, &res);
                slurm.record_external_usage(UsageRecord {
                    job: None,
                    user: 2000,
                    cores: res.cpu_millis.div_ceil(1000),
                    gpus: res.gpus as u64,
                    start: started,
                    end: ended,
                    source: UsageSource::External,
                });
            }
        }

        let (succ, fail, _, _, _) = pod_stats(&api);
        if succ + fail == wl.pods.len() && slurm.pending_count() == 0 && slurm.running_count() == 0
        {
            done_at = t;
            break;
        }
        t += TICK;
    }

    let (pods_succeeded, pods_failed, first, mean, last_pod_end) = pod_stats(&api);
    let (jobs_completed, last_job_end) = job_stats(&slurm, &job_ids);
    let makespan = done_at
        .max(last_pod_end)
        .max(last_job_end)
        .since(SimTime::ZERO);
    tracer.end(scenario, SimTime::ZERO + makespan);

    ScenarioOutcome {
        name: "wlm-in-k8s",
        first_pod_start: first,
        mean_pod_start: mean,
        makespan,
        utilization: slurm.ledger().utilization(cfg.capacity_cores(), makespan),
        accounting_coverage: slurm.ledger().accounting_coverage(),
        pods_succeeded,
        pods_failed,
        jobs_completed,
        notes: "HPC jobs pay a layer penalty; pod usage not in WLM accounting",
    }
}

//! Baseline: static partitioning of the cluster between the WLM and
//! Kubernetes.
//!
//! §6.6: "Static partitioning leads to reduced utilisation and/or a load
//! imbalance." Half the nodes run Slurm, half run rootful kubelets on a
//! dedicated Kubernetes cluster; neither side can borrow the other's idle
//! capacity, and pod usage never reaches the WLM's accounting.
//!
//! The scenario is a preset of the generic `hpcc-adapt` controller: the
//! [`hpcc_adapt::StaticPolicy`] never moves a node, the half-cluster
//! carve-out boots as permanent kubelets, and pod usage lands as per-pod
//! external ledger records — exactly the loop this file used to
//! hand-roll.

use super::common::{ClusterConfig, MeasuredCri, MixedWorkload, ScenarioOutcome};
use hpcc_adapt::presets;
use hpcc_adapt::{RunSpec, TimedWorkload};
use hpcc_sim::{FaultInjector, Tracer};
use std::sync::Arc;

/// Run the static-partition baseline.
pub fn run(cfg: &ClusterConfig, wl: &MixedWorkload) -> ScenarioOutcome {
    run_traced(cfg, wl, &Tracer::disabled())
}

/// [`run`] with a tracer attached: the whole scenario becomes a `scenario`
/// span, with WLM and kubelet activity nested inside it.
pub fn run_traced(
    cfg: &ClusterConfig,
    wl: &MixedWorkload,
    tracer: &Arc<Tracer>,
) -> ScenarioOutcome {
    let (policy, mut ctl) = presets::static_partition(cfg.nodes);
    ctl.node_spec = cfg.spec();
    let workload = TimedWorkload::at_zero(wl.jobs.clone(), wl.pods.clone());
    let out = hpcc_adapt::run(RunSpec {
        workload: &workload,
        policy,
        config: ctl,
        cri: Arc::new(MeasuredCri),
        tracer: Arc::clone(tracer),
        faults: FaultInjector::disabled(),
        domains: None,
        scenario: "static-partition",
    });
    ScenarioOutcome {
        name: "static-partition",
        first_pod_start: out.first_pod_start,
        mean_pod_start: out.mean_pod_start,
        makespan: out.makespan,
        utilization: out.utilization,
        accounting_coverage: out.accounting_coverage,
        pods_succeeded: out.pods_succeeded,
        pods_failed: out.pods_failed,
        jobs_completed: out.jobs_completed,
        notes: "fixed split; idle capacity stranded on either side; pod usage unaccounted",
    }
}

//! Baseline: static partitioning of the cluster between the WLM and
//! Kubernetes.
//!
//! §6.6: "Static partitioning leads to reduced utilisation and/or a load
//! imbalance." Half the nodes run Slurm, half run rootful kubelets on a
//! dedicated Kubernetes cluster; neither side can borrow the other's idle
//! capacity, and pod usage never reaches the WLM's accounting.

use super::common::{
    job_stats, pod_stats, ClusterConfig, MeasuredCri, MixedWorkload, ScenarioOutcome, HORIZON, TICK,
};
use hpcc_k8s::kubelet::{Kubelet, KubeletMode};
use hpcc_k8s::objects::ApiServer;
use hpcc_k8s::scheduler::Scheduler;
use hpcc_runtime::cgroup::{CgroupTree, CgroupVersion};
use hpcc_sim::{SimClock, SimTime};
use hpcc_wlm::accounting::{UsageRecord, UsageSource};
use hpcc_wlm::slurm::Slurm;
use std::collections::BTreeMap;
use std::sync::Arc;

/// Run the static-partition baseline.
pub fn run(cfg: &ClusterConfig, wl: &MixedWorkload) -> ScenarioOutcome {
    let wlm_nodes = cfg.nodes / 2;
    let k8s_nodes = cfg.nodes - wlm_nodes;

    // WLM side.
    let mut slurm = Slurm::new();
    slurm.add_partition("batch", cfg.spec(), wlm_nodes);

    // K8s side: dedicated control plane + rootful kubelets.
    let api = ApiServer::new();
    let mut sched = Scheduler::new();
    let clock = SimClock::new();
    let cri = Arc::new(MeasuredCri);
    let mut kubelets: Vec<Kubelet> = (0..k8s_nodes)
        .map(|i| {
            let mut cg = CgroupTree::new(CgroupVersion::V2);
            Kubelet::start(
                &format!("k8s-{i}"),
                KubeletMode::Rootful,
                cri.clone(),
                &mut cg,
                cfg.node_resources(),
                BTreeMap::new(),
                &api,
                &SimClock::new(), // boots in parallel before t=0 workload
            )
            .expect("rootful kubelet starts")
        })
        .collect();

    // Submit everything at t=0.
    let job_ids: Vec<_> = wl
        .jobs
        .iter()
        .filter_map(|j| slurm.submit(j.clone(), SimTime::ZERO).ok())
        .collect();
    for pod in &wl.pods {
        api.create_pod(pod.clone()).unwrap();
    }

    // Drive.
    let mut t = SimTime::ZERO;
    let mut done_at = SimTime::ZERO;
    while t.since(SimTime::ZERO) < HORIZON {
        slurm.advance_to(t);
        sched.schedule(&api);
        clock.advance_to(t);
        for kubelet in &mut kubelets {
            kubelet.sync(&api, &clock);
            for (_, res, started, ended) in kubelet.advance_to(&api, t) {
                sched.release(&kubelet.node_name, &res);
                // Pod usage is invisible to the WLM: External.
                slurm.record_external_usage(UsageRecord {
                    job: None,
                    user: 2000,
                    cores: res.cpu_millis.div_ceil(1000),
                    gpus: res.gpus as u64,
                    start: started,
                    end: ended,
                    source: UsageSource::External,
                });
            }
        }

        let (succ, fail, _, _, _) = pod_stats(&api);
        let all_pods_done = succ + fail == wl.pods.len();
        let all_jobs_done = slurm.pending_count() == 0 && slurm.running_count() == 0;
        if all_pods_done && all_jobs_done {
            done_at = t;
            break;
        }
        t += TICK;
    }

    let (pods_succeeded, pods_failed, first, mean, last_pod_end) = pod_stats(&api);
    let (jobs_completed, last_job_end) = job_stats(&slurm, &job_ids);
    let makespan = done_at
        .max(last_pod_end)
        .max(last_job_end)
        .since(SimTime::ZERO);

    ScenarioOutcome {
        name: "static-partition",
        first_pod_start: first,
        mean_pod_start: mean,
        makespan,
        utilization: slurm.ledger().utilization(cfg.capacity_cores(), makespan),
        accounting_coverage: slurm.ledger().accounting_coverage(),
        pods_succeeded,
        pods_failed,
        jobs_completed,
        notes: "fixed split; idle capacity stranded on either side; pod usage unaccounted",
    }
}

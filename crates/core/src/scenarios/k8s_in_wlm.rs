//! §6.3 — Kubernetes inside a WLM allocation.
//!
//! The user's pod batch becomes one WLM job; when it starts, a K3s
//! control plane boots on the first allocated node and rootless kubelets
//! join from the rest. "While this approach permits perfect isolation
//! between Kubernetes clusters started by different users, it can
//! introduce considerable startup overhead. Until the Kubernetes cluster
//! is ready, scheduling Pods or running workflows is not possible."
//! Everything runs inside the allocation, so the WLM accounts 100%.

use super::common::{
    job_stats, pod_stats, ClusterConfig, MeasuredCri, MixedWorkload, ScenarioOutcome, HORIZON, TICK,
};
use hpcc_k8s::k3s::{control_plane_boot_span, ControlPlaneFlavor};
use hpcc_k8s::kubelet::{kubelet_startup_span, Kubelet, KubeletMode};
use hpcc_k8s::objects::ApiServer;
use hpcc_k8s::scheduler::Scheduler;
use hpcc_runtime::cgroup::{CgroupLimits, CgroupTree, CgroupVersion};
use hpcc_sim::sym;
use hpcc_sim::{SimClock, SimTime, Stage, Tracer};
use hpcc_wlm::slurm::Slurm;
use hpcc_wlm::types::{JobId, JobRequest};
use std::collections::BTreeMap;
use std::sync::Arc;

/// Run the Kubernetes-in-WLM scenario.
pub fn run(cfg: &ClusterConfig, wl: &MixedWorkload) -> ScenarioOutcome {
    run_traced(cfg, wl, &Tracer::disabled())
}

/// [`run`] with a tracer attached: the whole scenario becomes a `scenario`
/// span, with WLM and kubelet activity nested inside it.
pub fn run_traced(
    cfg: &ClusterConfig,
    wl: &MixedWorkload,
    tracer: &Arc<Tracer>,
) -> ScenarioOutcome {
    let scenario = tracer.begin(sym!("scenario"), Stage::Other, SimTime::ZERO);
    tracer.attr(scenario, sym!("name"), "k8s-in-wlm");

    let mut slurm = Slurm::new();
    slurm.add_partition("batch", cfg.spec(), cfg.nodes);
    slurm.set_tracer(Arc::clone(tracer));

    // HPC jobs go to the WLM directly.
    let job_ids: Vec<JobId> = wl
        .jobs
        .iter()
        .filter_map(|j| slurm.submit(j.clone(), SimTime::ZERO).ok())
        .collect();

    // The pod batch becomes one allocation sized for the pods' aggregate
    // demand (the user must guess a size — a §6.3 usability drawback).
    let node_millis = cfg.node_resources().cpu_millis;
    let demand: u64 = wl.pods.iter().map(|p| p.spec_cpu()).sum();
    let k8s_nodes = (demand.div_ceil(node_millis).max(1) as u32)
        .min(cfg.nodes / 2)
        .max(1);
    let mut k8s_job = JobRequest::batch("k8s-cluster@inside", 2000, k8s_nodes, HORIZON);
    k8s_job.walltime_limit = HORIZON * 2;
    let k8s_job_id = slurm.submit(k8s_job, SimTime::ZERO).ok();

    let api = ApiServer::new();
    let mut sched = Scheduler::new();
    let clock = SimClock::new();
    let cri = Arc::new(MeasuredCri);

    // Cluster-inside-the-allocation state.
    let mut cluster_ready_at: Option<SimTime> = None;
    let mut kubelets: Vec<Kubelet> = Vec::new();
    let mut pods_submitted = false;

    let mut t = SimTime::ZERO;
    let mut done_at = SimTime::ZERO;
    while t.since(SimTime::ZERO) < HORIZON {
        slurm.advance_to(t);

        // When the allocation starts, boot the control plane + kubelets.
        if cluster_ready_at.is_none() {
            if let Some(id) = k8s_job_id {
                if slurm.job(id).map(|j| j.is_running()).unwrap_or(false) {
                    // Server on node 0, kubelets join in parallel.
                    let boot = control_plane_boot_span(ControlPlaneFlavor::K3s)
                        + kubelet_startup_span(KubeletMode::Rootless { uid: 2000 });
                    cluster_ready_at = Some(t + boot);
                }
            }
        }
        if let Some(ready) = cluster_ready_at {
            if t >= ready && kubelets.is_empty() {
                clock.advance_to(t);
                for i in 0..k8s_nodes {
                    // Rootless kubelets need delegated cgroup v2 (§6.5
                    // requirements apply inside the allocation too).
                    let mut cg = CgroupTree::new(CgroupVersion::V2);
                    cg.create("alloc", 0, CgroupLimits::default()).unwrap();
                    cg.delegate("alloc", 0, 2000).unwrap();
                    cg.create("alloc/user", 2000, CgroupLimits::default())
                        .unwrap();
                    cg.delegate("alloc/user", 2000, 2000).unwrap();
                    // Kubelet creates its group at the top level in the
                    // model; delegate root for the in-allocation tree.
                    cg.delegate("", 0, 2000).unwrap();
                    let mut kubelet = Kubelet::start(
                        &format!("alloc-{i}"),
                        KubeletMode::Rootless { uid: 2000 },
                        cri.clone(),
                        &mut cg,
                        cfg.node_resources(),
                        BTreeMap::new(),
                        &api,
                        &SimClock::new(),
                    )
                    .expect("rootless kubelet with delegation boots");
                    kubelet.set_tracer(Arc::clone(tracer));
                    kubelets.push(kubelet);
                }
                // Only now can pods be submitted/scheduled.
                for pod in &wl.pods {
                    api.create_pod(pod.clone()).unwrap();
                }
                pods_submitted = true;
            }
        }

        if pods_submitted {
            sched.schedule(&api);
            clock.advance_to(t);
            for kubelet in &mut kubelets {
                kubelet.sync(&api, &clock);
                for (_, res, _, _) in kubelet.advance_to(&api, t) {
                    sched.release(&kubelet.node_name, &res);
                }
            }
        }

        let (succ, fail, _, _, _) = pod_stats(&api);
        let pods_done = pods_submitted && succ + fail == wl.pods.len();
        // Tear down the allocation once pods drain.
        if pods_done {
            if let Some(id) = k8s_job_id {
                if slurm.job(id).map(|j| j.is_running()).unwrap_or(false) {
                    slurm.cancel(id, t).unwrap();
                }
            }
        }
        let only_k8s_left = slurm.running_count() == 0 && slurm.pending_count() == 0;
        if pods_done && only_k8s_left {
            done_at = t;
            break;
        }
        t += TICK;
    }

    let (pods_succeeded, pods_failed, first, mean, last_pod_end) = pod_stats(&api);
    let (jobs_completed, last_job_end) = job_stats(&slurm, &job_ids);
    let makespan = done_at
        .max(last_pod_end)
        .max(last_job_end)
        .since(SimTime::ZERO);
    tracer.end(scenario, SimTime::ZERO + makespan);

    ScenarioOutcome {
        name: "k8s-in-wlm",
        first_pod_start: first,
        mean_pod_start: mean,
        makespan,
        utilization: slurm.ledger().utilization(cfg.capacity_cores(), makespan),
        accounting_coverage: slurm.ledger().accounting_coverage(),
        pods_succeeded,
        pods_failed,
        jobs_completed,
        notes:
            "full WLM accounting, but cluster boot delays every pod; allocation billed while idle",
    }
}

trait PodCpu {
    fn spec_cpu(&self) -> u64;
}

impl PodCpu for hpcc_k8s::objects::PodSpec {
    fn spec_cpu(&self) -> u64 {
        self.resources.cpu_millis
    }
}

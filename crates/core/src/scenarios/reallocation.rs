//! §6.1 — On-demand reallocation of compute nodes.
//!
//! A minimal dedicated Kubernetes control plane runs on separate hardware;
//! when pods queue, idle WLM nodes are drained, taken offline,
//! reprovisioned as Kubernetes agents (a slow operation), and handed to
//! the cluster. Idle agents are returned to the WLM. §6.1's verdict:
//! dynamic partitioning at this granularity is cumbersome, slow and
//! introduces disturbances.
//!
//! The scenario is a preset of the generic `hpcc-adapt` controller: the
//! [`hpcc_adapt::QueueThresholdPolicy`] with zero hysteresis reproduces
//! the original hard-coded trigger (`wanted = ceil(demand / node)` vs
//! supply in flight) decision-for-decision, and the controller's
//! drain → offline → reprovision → hand-over actuation matches the loop
//! this file used to hand-roll.

use super::common::{ClusterConfig, MeasuredCri, MixedWorkload, ScenarioOutcome};
use hpcc_adapt::presets;
use hpcc_adapt::{RunSpec, TimedWorkload};
use hpcc_sim::{FaultInjector, Tracer};
use std::sync::Arc;

/// Run the on-demand reallocation scenario.
pub fn run(cfg: &ClusterConfig, wl: &MixedWorkload) -> ScenarioOutcome {
    run_traced(cfg, wl, &Tracer::disabled())
}

/// [`run`] with a tracer attached: the whole scenario becomes a `scenario`
/// span, with WLM, kubelet and controller-decision activity nested inside.
pub fn run_traced(
    cfg: &ClusterConfig,
    wl: &MixedWorkload,
    tracer: &Arc<Tracer>,
) -> ScenarioOutcome {
    let (policy, mut ctl) = presets::on_demand_reallocation(cfg.nodes);
    ctl.node_spec = cfg.spec();
    let workload = TimedWorkload::at_zero(wl.jobs.clone(), wl.pods.clone());
    let out = hpcc_adapt::run(RunSpec {
        workload: &workload,
        policy,
        config: ctl,
        cri: Arc::new(MeasuredCri),
        tracer: Arc::clone(tracer),
        faults: FaultInjector::disabled(),
        domains: None,
        scenario: "on-demand-reallocation",
    });
    ScenarioOutcome {
        name: "on-demand-reallocation",
        first_pod_start: out.first_pod_start,
        mean_pod_start: out.mean_pod_start,
        makespan: out.makespan,
        utilization: out.utilization,
        accounting_coverage: out.accounting_coverage,
        pods_succeeded: out.pods_succeeded,
        pods_failed: out.pods_failed,
        jobs_completed: out.jobs_completed,
        notes: "slow drain/reprovision cycles; k8s usage invisible to WLM accounting",
    }
}

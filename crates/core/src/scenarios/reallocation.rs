//! §6.1 — On-demand reallocation of compute nodes.
//!
//! A minimal dedicated Kubernetes control plane runs on separate hardware;
//! when pods queue, idle WLM nodes are drained, taken offline,
//! reprovisioned as Kubernetes agents (a slow operation), and handed to
//! the cluster. Idle agents are returned to the WLM. §6.6: "dynamic
//! partitioning ... is cumbersome, slow and introduces disturbances."

use super::common::{
    job_stats, pod_stats, ClusterConfig, MeasuredCri, MixedWorkload, ScenarioOutcome, HORIZON, TICK,
};
use hpcc_k8s::kubelet::{Kubelet, KubeletMode};
use hpcc_k8s::objects::{ApiServer, PodPhase};
use hpcc_k8s::scheduler::Scheduler;
use hpcc_runtime::cgroup::{CgroupTree, CgroupVersion};
use hpcc_sim::{SimClock, SimSpan, SimTime, Stage, Tracer};
use hpcc_wlm::accounting::{UsageRecord, UsageSource};
use hpcc_wlm::slurm::Slurm;
use hpcc_wlm::types::NodeId;
use std::collections::BTreeMap;
use std::sync::Arc;

/// Time to reimage/reconfigure a node in either direction.
const REPROVISION: SimSpan = SimSpan(60 * 1_000_000_000);

struct AgentNode {
    wlm_id: NodeId,
    kubelet: Kubelet,
    /// Time the node became a k8s agent (for usage records on return).
    since: SimTime,
    idle_since: Option<SimTime>,
}

/// Run the on-demand reallocation scenario.
pub fn run(cfg: &ClusterConfig, wl: &MixedWorkload) -> ScenarioOutcome {
    run_traced(cfg, wl, &Tracer::disabled())
}

/// [`run`] with a tracer attached: the whole scenario becomes a `scenario`
/// span, with WLM and kubelet activity nested inside it.
pub fn run_traced(
    cfg: &ClusterConfig,
    wl: &MixedWorkload,
    tracer: &Arc<Tracer>,
) -> ScenarioOutcome {
    let scenario = tracer.begin("scenario", Stage::Other, SimTime::ZERO);
    tracer.attr(scenario, "name", "on-demand-reallocation");

    let mut slurm = Slurm::new();
    let node_ids = slurm.add_partition("batch", cfg.spec(), cfg.nodes);
    slurm.set_tracer(Arc::clone(tracer));

    let api = ApiServer::new();
    let mut sched = Scheduler::new();
    let clock = SimClock::new();
    let cri = Arc::new(MeasuredCri);

    let job_ids: Vec<_> = wl
        .jobs
        .iter()
        .filter_map(|j| slurm.submit(j.clone(), SimTime::ZERO).ok())
        .collect();
    for pod in &wl.pods {
        api.create_pod(pod.clone()).unwrap();
    }

    // Nodes mid-reprovision: (wlm id, ready time).
    let mut provisioning: Vec<(NodeId, SimTime)> = Vec::new();
    // Nodes being returned: (wlm id, ready time).
    let mut returning: Vec<(NodeId, SimTime)> = Vec::new();
    let mut agents: Vec<AgentNode> = Vec::new();

    let mut t = SimTime::ZERO;
    let mut done_at = SimTime::ZERO;
    while t.since(SimTime::ZERO) < HORIZON {
        slurm.advance_to(t);

        // Demand signal: pending pods needing capacity.
        let pending_pods = api.list_pods(|p| p.phase == PodPhase::Pending);
        let demand_millis: u64 = pending_pods
            .iter()
            .map(|p| p.spec.resources.cpu_millis)
            .sum();
        let node_millis = cfg.node_resources().cpu_millis;
        let wanted = demand_millis.div_ceil(node_millis.max(1)) as usize;
        let supplying = agents.len() + provisioning.len();
        if wanted > supplying {
            // Grab idle WLM nodes.
            let mut need = wanted - supplying;
            for id in &node_ids {
                if need == 0 {
                    break;
                }
                if slurm.drain_node(*id).is_ok() && slurm.offline_node(*id).is_ok() {
                    provisioning.push((*id, t + REPROVISION));
                    need -= 1;
                }
            }
        }

        // Finish provisioning → boot kubelets.
        let (ready, still): (Vec<_>, Vec<_>) =
            provisioning.into_iter().partition(|(_, rt)| *rt <= t);
        provisioning = still;
        for (wlm_id, _) in ready {
            clock.advance_to(t);
            let mut cg = CgroupTree::new(CgroupVersion::V2);
            let mut kubelet = Kubelet::start(
                &format!("realloc-{}", wlm_id.0),
                KubeletMode::Rootful,
                cri.clone(),
                &mut cg,
                cfg.node_resources(),
                BTreeMap::new(),
                &api,
                &clock,
            )
            .expect("rootful kubelet boots");
            kubelet.set_tracer(Arc::clone(tracer));
            agents.push(AgentNode {
                wlm_id,
                kubelet,
                since: t,
                idle_since: None,
            });
        }

        // Finish returns.
        let (back, still): (Vec<_>, Vec<_>) = returning.into_iter().partition(|(_, rt)| *rt <= t);
        returning = still;
        for (id, _) in back {
            slurm.return_node(id).expect("offline node returns");
        }

        // K8s control loop.
        sched.schedule(&api);
        clock.advance_to(t);
        for agent in &mut agents {
            agent.kubelet.sync(&api, &clock);
            for (_, res, _, _) in agent.kubelet.advance_to(&api, t) {
                sched.release(&agent.kubelet.node_name, &res);
            }
            agent.idle_since = if agent.kubelet.running_count() == 0 {
                agent.idle_since.or(Some(t))
            } else {
                None
            };
        }

        // Return agents idle for >2 min when no pods pend.
        if pending_pods.is_empty() {
            let mut keep = Vec::new();
            for mut agent in agents {
                let idle_long = agent
                    .idle_since
                    .is_some_and(|s| t.since(s) >= SimSpan::secs(120));
                if idle_long {
                    agent.kubelet.shutdown(&api);
                    // The node's whole k8s tenure is external usage.
                    slurm.record_external_usage(UsageRecord {
                        job: None,
                        user: 2000,
                        cores: cfg.spec().cores as u64,
                        gpus: 0,
                        start: agent.since,
                        end: t,
                        source: UsageSource::External,
                    });
                    returning.push((agent.wlm_id, t + REPROVISION));
                } else {
                    keep.push(agent);
                }
            }
            agents = keep;
        }

        let (succ, fail, _, _, _) = pod_stats(&api);
        let all_pods_done = succ + fail == wl.pods.len();
        let all_jobs_done = slurm.pending_count() == 0 && slurm.running_count() == 0;
        if all_pods_done && all_jobs_done && agents.is_empty() && returning.is_empty() {
            done_at = t;
            break;
        }
        t += TICK;
    }

    // Account any agents still out at horizon.
    for agent in &agents {
        slurm.record_external_usage(UsageRecord {
            job: None,
            user: 2000,
            cores: cfg.spec().cores as u64,
            gpus: 0,
            start: agent.since,
            end: t,
            source: UsageSource::External,
        });
    }

    let (pods_succeeded, pods_failed, first, mean, last_pod_end) = pod_stats(&api);
    let (jobs_completed, last_job_end) = job_stats(&slurm, &job_ids);
    let makespan = done_at
        .max(last_pod_end)
        .max(last_job_end)
        .since(SimTime::ZERO);
    tracer.end(scenario, SimTime::ZERO + makespan);

    ScenarioOutcome {
        name: "on-demand-reallocation",
        first_pod_start: first,
        mean_pod_start: mean,
        makespan,
        utilization: slurm.ledger().utilization(cfg.capacity_cores(), makespan),
        accounting_coverage: slurm.ledger().accounting_coverage(),
        pods_succeeded,
        pods_failed,
        jobs_completed,
        notes: "slow drain/reprovision cycles; k8s usage invisible to WLM accounting",
    }
}

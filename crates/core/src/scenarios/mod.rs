//! The Section 6 Kubernetes/WLM integration scenarios, executable.
//!
//! Five architectures (plus a static-partition baseline) run the same
//! mixed HPC + cloud-native workload on the same simulated cluster; the
//! outcomes quantify §6.6's qualitative comparison: startup overhead,
//! makespan, utilization and — centrally — how much of the consumed
//! compute the WLM accounted for.

pub mod bridge_vk;
pub mod common;
pub mod k8s_in_wlm;
pub mod kubelet_in_allocation;
pub mod reallocation;
pub mod static_partition;
pub mod wlm_in_k8s;

pub use common::{ClusterConfig, MixedWorkload, ScenarioOutcome};

/// Run every scenario on the same configuration + workload. The six
/// simulations are independent, so they run on parallel threads (scoped,
/// data-race-free — the guides' fork/join idiom without a pool).
pub fn run_all(cfg: &ClusterConfig, wl: &MixedWorkload) -> Vec<ScenarioOutcome> {
    // Prime the shared measured-startup cache once, outside the threads.
    common::measured_container_startup();
    type Runner = fn(&ClusterConfig, &MixedWorkload) -> ScenarioOutcome;
    let runners: [Runner; 6] = [
        static_partition::run,
        reallocation::run,
        wlm_in_k8s::run,
        k8s_in_wlm::run,
        bridge_vk::run,
        kubelet_in_allocation::run,
    ];
    let mut out: Vec<Option<ScenarioOutcome>> = (0..runners.len()).map(|_| None).collect();
    std::thread::scope(|scope| {
        for (slot, runner) in out.iter_mut().zip(runners) {
            scope.spawn(move || {
                *slot = Some(runner(cfg, wl));
            });
        }
    });
    out.into_iter().map(|o| o.expect("scenario ran")).collect()
}

/// Render outcomes as an aligned text table.
pub fn render_outcomes(outcomes: &[ScenarioOutcome]) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "{:<26} {:>12} {:>12} {:>10} {:>7} {:>9} {:>6} {:>6}\n",
        "scenario", "1st-pod", "makespan", "util", "acct", "pods-ok", "fail", "jobs"
    ));
    for o in outcomes {
        out.push_str(&format!(
            "{:<26} {:>12} {:>12} {:>9.1}% {:>6.0}% {:>9} {:>6} {:>6}\n",
            o.name,
            o.first_pod_start
                .map(|s| s.to_string())
                .unwrap_or_else(|| "-".into()),
            o.makespan.to_string(),
            o.utilization * 100.0,
            o.accounting_coverage * 100.0,
            o.pods_succeeded,
            o.pods_failed,
            o.jobs_completed,
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use hpcc_sim::SimSpan;

    fn small() -> (ClusterConfig, MixedWorkload) {
        let cfg = ClusterConfig { nodes: 16 };
        let wl = MixedWorkload::generate(42, 6, 12, &cfg);
        (cfg, wl)
    }

    #[test]
    fn all_scenarios_complete_the_workload() {
        let (cfg, wl) = small();
        for outcome in run_all(&cfg, &wl) {
            assert_eq!(
                outcome.pods_succeeded,
                wl.pods.len(),
                "{}: pods",
                outcome.name
            );
            assert_eq!(outcome.pods_failed, 0, "{}", outcome.name);
            assert_eq!(
                outcome.jobs_completed,
                wl.jobs.len(),
                "{}: jobs",
                outcome.name
            );
            assert!(outcome.makespan > SimSpan::ZERO);
        }
    }

    #[test]
    fn wlm_integrated_scenarios_account_fully() {
        // §6.6: only §6.4 (bridge) and §6.5 (kubelet-in-allocation) —
        // and §6.3 (whole cluster in a job) — keep accounting inside the
        // WLM.
        let (cfg, wl) = small();
        let outcomes = run_all(&cfg, &wl);
        for o in &outcomes {
            let full = o.accounting_coverage > 0.999;
            match o.name {
                "k8s-in-wlm" | "bridge-virtual-kubelet" | "kubelet-in-allocation" => {
                    assert!(
                        full,
                        "{} should fully account, got {}",
                        o.name, o.accounting_coverage
                    )
                }
                "static-partition" | "on-demand-reallocation" | "wlm-in-k8s" => {
                    assert!(
                        !full,
                        "{} leaks usage outside the WLM, got {}",
                        o.name, o.accounting_coverage
                    )
                }
                other => panic!("unknown scenario {other}"),
            }
        }
    }

    #[test]
    fn k8s_in_wlm_has_the_largest_pod_startup_overhead() {
        // §6.3: "it can introduce considerable startup overhead".
        let (cfg, wl) = small();
        let outcomes = run_all(&cfg, &wl);
        let get = |name: &str| {
            outcomes
                .iter()
                .find(|o| o.name == name)
                .and_then(|o| o.first_pod_start)
                .expect(name)
        };
        let k8s_in_wlm = get("k8s-in-wlm");
        let in_alloc = get("kubelet-in-allocation");
        let static_part = get("static-partition");
        assert!(
            k8s_in_wlm > in_alloc,
            "cluster boot ({k8s_in_wlm}) must exceed agent-only boot ({in_alloc})"
        );
        assert!(
            k8s_in_wlm > static_part,
            "cluster boot must exceed a standing cluster ({static_part})"
        );
    }

    #[test]
    fn figure1_join_happens_over_hsn() {
        let (cfg, wl) = small();
        let (outcome, joins) = kubelet_in_allocation::run_detailed(&cfg, &wl);
        assert!(!joins.is_empty(), "agents joined");
        for j in &joins {
            assert!(*j < SimSpan::millis(10), "HSN join {j} should be fast");
        }
        assert!(outcome.accounting_coverage > 0.999);
    }

    #[test]
    fn render_is_complete() {
        let (cfg, wl) = small();
        let outcomes = vec![static_partition::run(&cfg, &wl)];
        let text = render_outcomes(&outcomes);
        assert!(text.contains("static-partition"));
        assert!(text.contains("makespan"));
    }
}

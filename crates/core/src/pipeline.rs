//! The adaptive containerization deployment pipeline.
//!
//! "Adaptive containerization focuses on accelerating the deployment of
//! applications and workflows using containers" (§1). The pipeline wires
//! the whole stack: site proxy registry (shielding the public hub) →
//! engine pull → native-format conversion with caching → staging the
//! converted image to the allocation's node-local disks over the shared
//! filesystem → parallel launch on every node.

use hpcc_engine::engine::{Engine, EngineError, Host, RunOptions};
use hpcc_registry::proxy::{ProxyError, ProxyRegistry};
use hpcc_sim::{SimClock, SimSpan, SimTime};
use hpcc_storage::local::{stage_image_to_nodes, NodeLocalDisk};
use hpcc_storage::shared_fs::SharedFs;
use hpcc_vfs::path::VPath;
use hpcc_vfs::squash::SquashImage;
use std::sync::Arc;

/// Timing breakdown of one deployment.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DeploymentReport {
    /// Pulling manifest + blobs through the proxy.
    pub pull: SimSpan,
    /// Conversion to the engine's native format (0 on cache hit).
    pub convert: SimSpan,
    /// Staging the converted image to all nodes.
    pub stage: SimSpan,
    /// Container startup on the slowest node.
    pub launch: SimSpan,
    /// End-to-end.
    pub total: SimSpan,
    /// Whether conversion came from cache.
    pub cache_hit: bool,
    /// Nodes deployed to.
    pub nodes: usize,
}

/// Errors across the pipeline.
#[derive(Debug)]
pub enum PipelineError {
    Proxy(ProxyError),
    Engine(EngineError),
    Squash(hpcc_vfs::squash::SquashError),
}

impl From<ProxyError> for PipelineError {
    fn from(e: ProxyError) -> Self {
        PipelineError::Proxy(e)
    }
}
impl From<EngineError> for PipelineError {
    fn from(e: EngineError) -> Self {
        PipelineError::Engine(e)
    }
}
impl From<hpcc_vfs::squash::SquashError> for PipelineError {
    fn from(e: hpcc_vfs::squash::SquashError) -> Self {
        PipelineError::Squash(e)
    }
}

impl std::fmt::Display for PipelineError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PipelineError::Proxy(e) => write!(f, "proxy: {e}"),
            PipelineError::Engine(e) => write!(f, "engine: {e}"),
            PipelineError::Squash(e) => write!(f, "squash: {e}"),
        }
    }
}

impl std::error::Error for PipelineError {}

/// Deploy `repo:tag` through `engine` onto an allocation of nodes.
///
/// Steps: proxy pull (once, landing layers on the shared filesystem) →
/// engine conversion with caching → stage the converted single-file image
/// to each node's local disk → launch one container per node.
#[allow(clippy::too_many_arguments)]
pub fn deploy_to_allocation(
    engine: &Engine,
    proxy: &ProxyRegistry,
    repo: &str,
    tag: &str,
    user: u32,
    host: &Host,
    shared: &SharedFs,
    node_disks: &[Arc<NodeLocalDisk>],
    opts: RunOptions,
    clock: &SimClock,
) -> Result<DeploymentReport, PipelineError> {
    let t0 = clock.now();

    // 1. Pull through the site proxy (cache-aware).
    let (_, pull_done) = proxy.pull_manifest(repo, tag, clock.now())?;
    clock.advance_to(pull_done);
    let pulled = engine.pull(&proxy.local, repo, tag, clock)?;
    let t_pull = clock.now();

    // 2. Convert to native format (engine caches per its capability).
    let prepared = engine.prepare(&pulled, user, host, true, clock)?;
    let cache_hit = prepared.cache_hit;
    let t_convert = clock.now();

    // 3. Stage a single-file image to node-local disks (the §4.1.2
    // workaround for shared-filesystem small-file load). Engines whose
    // native root is already a single file stage that; directory engines
    // stage a squash of the flattened tree.
    let image = SquashImage::build(
        &prepared.rootfs,
        &VPath::root(),
        hpcc_codec::compress::Codec::Lz,
    )?;
    let report = stage_image_to_nodes(shared, &image, node_disks, clock.now())?;
    clock.advance_to(report.all_done);
    let t_stage = clock.now();

    // 4. Launch on every node (parallel: charge the max single-node
    // launch, not the sum).
    let mut max_launch = SimSpan::ZERO;
    for _ in node_disks {
        let node_clock = SimClock::new();
        let prepared_node = engine.prepare(&pulled, user, host, true, &node_clock)?;
        engine.run(prepared_node, user, host, opts.clone(), &node_clock)?;
        max_launch = max_launch.max(node_clock.now().since(SimTime::ZERO));
    }
    clock.advance(max_launch);
    let t_end = clock.now();

    Ok(DeploymentReport {
        pull: t_pull.since(t0),
        convert: t_convert.since(t_pull),
        stage: t_stage.since(t_convert),
        launch: t_end.since(t_stage),
        total: t_end.since(t0),
        cache_hit,
        nodes: node_disks.len(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use hpcc_engine::engines;
    use hpcc_oci::builder::samples;
    use hpcc_oci::cas::Cas;
    use hpcc_registry::registry::{Registry, RegistryCaps};

    fn hub() -> Arc<Registry> {
        let mut caps = RegistryCaps::open();
        caps.pull_rate_limit_per_hour = Some(7200.0);
        let hub = Registry::new("hub", caps);
        hub.create_namespace("hpc", None).unwrap();
        let cas = Cas::new();
        let img = samples::python_app(&cas, 150);
        for d in std::iter::once(&img.manifest.config).chain(img.manifest.layers.iter()) {
            let data = cas.get(&d.digest).unwrap();
            hub.push_blob(d.media_type, d.digest, data.as_ref().clone())
                .unwrap();
        }
        hub.push_manifest("hpc/pyapp", "v1", &img.manifest).unwrap();
        Arc::new(hub)
    }

    fn site_proxy() -> ProxyRegistry {
        let local = Registry::new("site", RegistryCaps::open());
        local.create_namespace("hpc", None).unwrap();
        ProxyRegistry::new(Arc::new(local), hub()).unwrap()
    }

    fn disks(n: usize) -> Vec<Arc<NodeLocalDisk>> {
        (0..n).map(|_| Arc::new(NodeLocalDisk::new())).collect()
    }

    #[test]
    fn full_pipeline_reports_phases() {
        let proxy = site_proxy();
        let shared = SharedFs::with_defaults();
        let engine = engines::sarus();
        let host = Host::compute_node();
        let clock = SimClock::new();
        let report = deploy_to_allocation(
            &engine,
            &proxy,
            "hpc/pyapp",
            "v1",
            1000,
            &host,
            &shared,
            &disks(8),
            RunOptions::default(),
            &clock,
        )
        .unwrap();
        assert!(report.pull > SimSpan::ZERO);
        assert!(report.convert > SimSpan::ZERO, "first deploy converts");
        assert!(report.stage > SimSpan::ZERO);
        assert!(report.launch > SimSpan::ZERO);
        assert!(!report.cache_hit);
        assert_eq!(report.nodes, 8);
        assert!(report.total >= report.pull + report.stage);
    }

    #[test]
    fn second_deploy_is_faster_via_caches() {
        let proxy = site_proxy();
        let shared = SharedFs::with_defaults();
        let engine = engines::sarus();
        let host = Host::compute_node();
        let c1 = SimClock::new();
        let first = deploy_to_allocation(
            &engine,
            &proxy,
            "hpc/pyapp",
            "v1",
            1000,
            &host,
            &shared,
            &disks(4),
            RunOptions::default(),
            &c1,
        )
        .unwrap();
        shared.reset_contention();
        let c2 = SimClock::new();
        let second = deploy_to_allocation(
            &engine,
            &proxy,
            "hpc/pyapp",
            "v1",
            1000,
            &host,
            &shared,
            &disks(4),
            RunOptions::default(),
            &c2,
        )
        .unwrap();
        assert!(second.cache_hit);
        assert!(
            second.total < first.total,
            "cached deploy {} should beat cold {}",
            second.total,
            first.total
        );
    }

    #[test]
    fn more_nodes_cost_more_staging() {
        let engine = engines::podman_hpc();
        let host = Host::compute_node();
        let small = {
            let proxy = site_proxy();
            let shared = SharedFs::with_defaults();
            let clock = SimClock::new();
            deploy_to_allocation(
                &engine,
                &proxy,
                "hpc/pyapp",
                "v1",
                1000,
                &host,
                &shared,
                &disks(2),
                RunOptions::default(),
                &clock,
            )
            .unwrap()
        };
        let big = {
            let proxy = site_proxy();
            let shared = SharedFs::with_defaults();
            let clock = SimClock::new();
            deploy_to_allocation(
                &engine,
                &proxy,
                "hpc/pyapp",
                "v1",
                1000,
                &host,
                &shared,
                &disks(64),
                RunOptions::default(),
                &clock,
            )
            .unwrap()
        };
        assert!(big.stage > small.stage);
    }

    #[test]
    fn unknown_image_fails_cleanly() {
        let proxy = site_proxy();
        let shared = SharedFs::with_defaults();
        let engine = engines::podman();
        let host = Host::compute_node();
        let clock = SimClock::new();
        assert!(deploy_to_allocation(
            &engine,
            &proxy,
            "hpc/ghost",
            "v1",
            1000,
            &host,
            &shared,
            &disks(1),
            RunOptions::default(),
            &clock,
        )
        .is_err());
    }
}

//! Wire primitives: little-endian integers, LEB128 varints, and
//! length-prefixed byte strings. Every serialized format in the testbed
//! (archives, squash images, SIF files, registry blobs) builds on these.

/// Errors from wire decoding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WireError {
    /// Input ended before the value was complete.
    Truncated,
    /// A varint ran longer than 10 bytes.
    VarintOverflow,
    /// A declared length exceeds the remaining input.
    BadLength(u64),
    /// A string field was not valid UTF-8.
    BadUtf8,
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WireError::Truncated => f.write_str("input truncated"),
            WireError::VarintOverflow => f.write_str("varint longer than 10 bytes"),
            WireError::BadLength(n) => write!(f, "declared length {n} exceeds input"),
            WireError::BadUtf8 => f.write_str("invalid UTF-8 in string field"),
        }
    }
}

impl std::error::Error for WireError {}

/// Append a LEB128 varint.
pub fn put_varint(buf: &mut Vec<u8>, mut v: u64) {
    loop {
        let byte = (v & 0x7f) as u8;
        v >>= 7;
        if v == 0 {
            buf.push(byte);
            return;
        }
        buf.push(byte | 0x80);
    }
}

/// Append a length-prefixed byte string.
pub fn put_bytes(buf: &mut Vec<u8>, data: &[u8]) {
    put_varint(buf, data.len() as u64);
    buf.extend_from_slice(data);
}

/// Append a length-prefixed UTF-8 string.
pub fn put_str(buf: &mut Vec<u8>, s: &str) {
    put_bytes(buf, s.as_bytes());
}

/// A cursor over a byte slice with typed reads.
#[derive(Debug, Clone)]
pub struct Reader<'a> {
    data: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    pub fn new(data: &'a [u8]) -> Reader<'a> {
        Reader { data, pos: 0 }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.data.len() - self.pos
    }

    /// True when all input has been consumed.
    pub fn is_empty(&self) -> bool {
        self.remaining() == 0
    }

    /// Read one byte.
    pub fn u8(&mut self) -> Result<u8, WireError> {
        let b = *self.data.get(self.pos).ok_or(WireError::Truncated)?;
        self.pos += 1;
        Ok(b)
    }

    /// Read a LEB128 varint.
    pub fn varint(&mut self) -> Result<u64, WireError> {
        let mut v: u64 = 0;
        let mut shift = 0u32;
        for _ in 0..10 {
            let byte = self.u8()?;
            v |= ((byte & 0x7f) as u64) << shift;
            if byte & 0x80 == 0 {
                return Ok(v);
            }
            shift += 7;
        }
        Err(WireError::VarintOverflow)
    }

    /// Read a length-prefixed byte string.
    pub fn bytes(&mut self) -> Result<&'a [u8], WireError> {
        let len = self.varint()?;
        if len > self.remaining() as u64 {
            return Err(WireError::BadLength(len));
        }
        let start = self.pos;
        self.pos += len as usize;
        Ok(&self.data[start..self.pos])
    }

    /// Read a length-prefixed UTF-8 string.
    pub fn str(&mut self) -> Result<&'a str, WireError> {
        std::str::from_utf8(self.bytes()?).map_err(|_| WireError::BadUtf8)
    }

    /// Read exactly `n` raw bytes.
    pub fn take(&mut self, n: usize) -> Result<&'a [u8], WireError> {
        if n > self.remaining() {
            return Err(WireError::Truncated);
        }
        let start = self.pos;
        self.pos += n;
        Ok(&self.data[start..self.pos])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn varint_boundaries() {
        for v in [0u64, 1, 127, 128, 16_383, 16_384, u64::MAX] {
            let mut buf = Vec::new();
            put_varint(&mut buf, v);
            let mut r = Reader::new(&buf);
            assert_eq!(r.varint().unwrap(), v);
            assert!(r.is_empty());
        }
    }

    #[test]
    fn varint_encoding_is_minimal() {
        let mut buf = Vec::new();
        put_varint(&mut buf, 127);
        assert_eq!(buf.len(), 1);
        buf.clear();
        put_varint(&mut buf, 128);
        assert_eq!(buf.len(), 2);
    }

    #[test]
    fn bytes_and_strings_roundtrip() {
        let mut buf = Vec::new();
        put_bytes(&mut buf, b"hello");
        put_str(&mut buf, "wörld");
        let mut r = Reader::new(&buf);
        assert_eq!(r.bytes().unwrap(), b"hello");
        assert_eq!(r.str().unwrap(), "wörld");
        assert!(r.is_empty());
    }

    #[test]
    fn truncated_input_is_an_error() {
        let mut buf = Vec::new();
        put_bytes(&mut buf, b"hello");
        let mut r = Reader::new(&buf[..3]);
        assert_eq!(r.bytes(), Err(WireError::BadLength(5)));
        let mut r2 = Reader::new(&[]);
        assert_eq!(r2.u8(), Err(WireError::Truncated));
    }

    #[test]
    fn overlong_varint_rejected() {
        let buf = [0x80u8; 11];
        let mut r = Reader::new(&buf);
        assert_eq!(r.varint(), Err(WireError::VarintOverflow));
    }

    #[test]
    fn bad_utf8_rejected() {
        let mut buf = Vec::new();
        put_bytes(&mut buf, &[0xff, 0xfe]);
        let mut r = Reader::new(&buf);
        assert_eq!(r.str(), Err(WireError::BadUtf8));
    }

    #[test]
    fn take_reads_exact() {
        let mut r = Reader::new(b"abcdef");
        assert_eq!(r.take(3).unwrap(), b"abc");
        assert_eq!(r.remaining(), 3);
        assert_eq!(r.take(4), Err(WireError::Truncated));
    }

    proptest! {
        #[test]
        fn varint_roundtrip(v in any::<u64>()) {
            let mut buf = Vec::new();
            put_varint(&mut buf, v);
            prop_assert_eq!(Reader::new(&buf).varint().unwrap(), v);
        }

        #[test]
        fn mixed_sequence_roundtrip(items in proptest::collection::vec(
            proptest::collection::vec(any::<u8>(), 0..64), 0..16)) {
            let mut buf = Vec::new();
            for item in &items {
                put_bytes(&mut buf, item);
            }
            let mut r = Reader::new(&buf);
            for item in &items {
                prop_assert_eq!(r.bytes().unwrap(), &item[..]);
            }
            prop_assert!(r.is_empty());
        }
    }
}

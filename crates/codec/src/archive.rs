//! Archive format: the testbed's tar analogue.
//!
//! OCI layers "contain a tarball of filesystem changes"; SIF and squash
//! images serialize whole trees. This module gives both a common format:
//! a sequence of entries with path, ownership, mode and payload, plus the
//! OCI whiteout conventions (`.wh.<name>` file deletion markers and
//! `.wh..wh..opq` opaque-directory markers) carried as first-class entry
//! kinds so layer application logic does not string-match paths.

use crate::wire::{put_str, put_varint, Reader, WireError};
use hpcc_crypto::sha256::{sha256, Digest};
use serde::{Deserialize, Serialize};

/// What an archive entry is.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum EntryKind {
    /// Regular file with contents.
    File(Vec<u8>),
    /// Directory.
    Dir,
    /// Symbolic link to `target`.
    Symlink(String),
    /// OCI whiteout: delete the entry at this path when applying.
    Whiteout,
    /// OCI opaque dir: the directory at this path hides lower layers.
    OpaqueDir,
}

impl EntryKind {
    fn tag(&self) -> u8 {
        match self {
            EntryKind::File(_) => 0,
            EntryKind::Dir => 1,
            EntryKind::Symlink(_) => 2,
            EntryKind::Whiteout => 3,
            EntryKind::OpaqueDir => 4,
        }
    }
}

/// One archive entry.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Entry {
    /// Slash-separated path relative to the archive root, no leading `/`.
    pub path: String,
    pub kind: EntryKind,
    /// POSIX permission bits (plus setuid bit 0o4000 where relevant).
    pub mode: u32,
    pub uid: u32,
    pub gid: u32,
}

impl Entry {
    /// A regular file with default ownership/mode.
    pub fn file(path: &str, data: impl Into<Vec<u8>>) -> Entry {
        Entry {
            path: path.to_string(),
            kind: EntryKind::File(data.into()),
            mode: 0o644,
            uid: 0,
            gid: 0,
        }
    }

    /// A directory with default ownership/mode.
    pub fn dir(path: &str) -> Entry {
        Entry {
            path: path.to_string(),
            kind: EntryKind::Dir,
            mode: 0o755,
            uid: 0,
            gid: 0,
        }
    }

    /// A symlink.
    pub fn symlink(path: &str, target: &str) -> Entry {
        Entry {
            path: path.to_string(),
            kind: EntryKind::Symlink(target.to_string()),
            mode: 0o777,
            uid: 0,
            gid: 0,
        }
    }

    /// A whiteout marker deleting `path` from lower layers.
    pub fn whiteout(path: &str) -> Entry {
        Entry {
            path: path.to_string(),
            kind: EntryKind::Whiteout,
            mode: 0,
            uid: 0,
            gid: 0,
        }
    }

    /// Payload size in bytes (0 for non-files).
    pub fn size(&self) -> u64 {
        match &self.kind {
            EntryKind::File(d) => d.len() as u64,
            _ => 0,
        }
    }

    /// Builder-style ownership override.
    pub fn owned_by(mut self, uid: u32, gid: u32) -> Entry {
        self.uid = uid;
        self.gid = gid;
        self
    }

    /// Builder-style mode override.
    pub fn with_mode(mut self, mode: u32) -> Entry {
        self.mode = mode;
        self
    }
}

/// Errors from archive parsing.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ArchiveError {
    Wire(WireError),
    /// Bad magic bytes.
    BadMagic,
    /// Unknown entry kind tag.
    BadKind(u8),
    /// Path is absolute, empty, or contains `..`.
    BadPath(String),
}

impl From<WireError> for ArchiveError {
    fn from(e: WireError) -> ArchiveError {
        ArchiveError::Wire(e)
    }
}

impl std::fmt::Display for ArchiveError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ArchiveError::Wire(e) => write!(f, "wire error: {e}"),
            ArchiveError::BadMagic => f.write_str("not an archive (bad magic)"),
            ArchiveError::BadKind(t) => write!(f, "unknown entry kind {t}"),
            ArchiveError::BadPath(p) => write!(f, "illegal path {p:?}"),
        }
    }
}

impl std::error::Error for ArchiveError {}

const MAGIC: &[u8; 4] = b"HARC";

/// Validate an archive-relative path: non-empty, relative, no `..` or empty
/// segments. Archives cross trust boundaries (registry → engine), so path
/// traversal must be rejected at parse time.
pub fn validate_path(path: &str) -> Result<(), ArchiveError> {
    if path.is_empty() || path.starts_with('/') || path.ends_with('/') {
        return Err(ArchiveError::BadPath(path.to_string()));
    }
    for seg in path.split('/') {
        if seg.is_empty() || seg == "." || seg == ".." {
            return Err(ArchiveError::BadPath(path.to_string()));
        }
    }
    Ok(())
}

/// An ordered sequence of entries.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct Archive {
    pub entries: Vec<Entry>,
}

impl Archive {
    pub fn new() -> Archive {
        Archive::default()
    }

    /// Add an entry (panics on illegal paths — construction is trusted
    /// code; parsing is where untrusted data is validated).
    pub fn push(&mut self, entry: Entry) -> &mut Self {
        validate_path(&entry.path).expect("archive construction with illegal path");
        self.entries.push(entry);
        self
    }

    /// Total payload bytes.
    pub fn total_size(&self) -> u64 {
        self.entries.iter().map(Entry::size).sum()
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Serialize to bytes.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(64 + self.total_size() as usize);
        out.extend_from_slice(MAGIC);
        put_varint(&mut out, self.entries.len() as u64);
        for e in &self.entries {
            put_str(&mut out, &e.path);
            out.push(e.kind.tag());
            put_varint(&mut out, e.mode as u64);
            put_varint(&mut out, e.uid as u64);
            put_varint(&mut out, e.gid as u64);
            match &e.kind {
                EntryKind::File(data) => {
                    put_varint(&mut out, data.len() as u64);
                    out.extend_from_slice(data);
                }
                EntryKind::Symlink(target) => put_str(&mut out, target),
                EntryKind::Dir | EntryKind::Whiteout | EntryKind::OpaqueDir => {}
            }
        }
        out
    }

    /// Parse from bytes, validating every path.
    pub fn from_bytes(data: &[u8]) -> Result<Archive, ArchiveError> {
        let mut r = Reader::new(data);
        if r.take(4)? != MAGIC {
            return Err(ArchiveError::BadMagic);
        }
        let n = r.varint()? as usize;
        let mut entries = Vec::with_capacity(n.min(4096));
        for _ in 0..n {
            let path = r.str()?.to_string();
            validate_path(&path)?;
            let tag = r.u8()?;
            let mode = r.varint()? as u32;
            let uid = r.varint()? as u32;
            let gid = r.varint()? as u32;
            let kind = match tag {
                0 => {
                    let len = r.varint()? as usize;
                    EntryKind::File(r.take(len)?.to_vec())
                }
                1 => EntryKind::Dir,
                2 => EntryKind::Symlink(r.str()?.to_string()),
                3 => EntryKind::Whiteout,
                4 => EntryKind::OpaqueDir,
                t => return Err(ArchiveError::BadKind(t)),
            };
            entries.push(Entry {
                path,
                kind,
                mode,
                uid,
                gid,
            });
        }
        Ok(Archive { entries })
    }

    /// Content digest of the serialized archive — this is what OCI layer
    /// descriptors reference.
    pub fn digest(&self) -> Digest {
        sha256(&self.to_bytes())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn sample() -> Archive {
        let mut a = Archive::new();
        a.push(Entry::dir("usr"))
            .push(Entry::dir("usr/lib"))
            .push(Entry::file("usr/lib/libm.so", b"ELF-math".to_vec()).with_mode(0o755))
            .push(Entry::symlink("usr/lib/libm.so.6", "libm.so"))
            .push(Entry::whiteout("etc/old.conf"))
            .push(Entry {
                path: "var/cache".into(),
                kind: EntryKind::OpaqueDir,
                mode: 0o755,
                uid: 0,
                gid: 0,
            });
        a
    }

    #[test]
    fn roundtrip_preserves_everything() {
        let a = sample();
        let parsed = Archive::from_bytes(&a.to_bytes()).unwrap();
        assert_eq!(parsed, a);
    }

    #[test]
    fn digest_is_content_addressed() {
        let a = sample();
        let mut b = sample();
        assert_eq!(a.digest(), b.digest());
        b.entries[2] = Entry::file("usr/lib/libm.so", b"ELF-math-v2".to_vec());
        assert_ne!(a.digest(), b.digest());
    }

    #[test]
    fn sizes_counted() {
        let a = sample();
        assert_eq!(a.total_size(), 8);
        assert_eq!(a.len(), 6);
        assert!(!a.is_empty());
    }

    #[test]
    fn bad_magic_rejected() {
        let mut bytes = sample().to_bytes();
        bytes[0] = b'X';
        assert_eq!(Archive::from_bytes(&bytes), Err(ArchiveError::BadMagic));
    }

    #[test]
    fn traversal_paths_rejected_at_parse() {
        for bad in ["/abs", "a/../b", "", "a//b", "a/./b", "trailing/"] {
            // Hand-craft bytes with the bad path.
            let mut out = Vec::new();
            out.extend_from_slice(MAGIC);
            put_varint(&mut out, 1);
            put_str(&mut out, bad);
            out.push(1); // Dir
            put_varint(&mut out, 0o755);
            put_varint(&mut out, 0);
            put_varint(&mut out, 0);
            match Archive::from_bytes(&out) {
                Err(ArchiveError::BadPath(p)) => assert_eq!(p, bad),
                other => panic!("path {bad:?} should be rejected, got {other:?}"),
            }
        }
    }

    #[test]
    #[should_panic(expected = "illegal path")]
    fn construction_panics_on_traversal() {
        Archive::new().push(Entry::file("../evil", vec![]));
    }

    #[test]
    fn unknown_kind_rejected() {
        let mut out = Vec::new();
        out.extend_from_slice(MAGIC);
        put_varint(&mut out, 1);
        put_str(&mut out, "x");
        out.push(9);
        put_varint(&mut out, 0);
        put_varint(&mut out, 0);
        put_varint(&mut out, 0);
        assert_eq!(Archive::from_bytes(&out), Err(ArchiveError::BadKind(9)));
    }

    #[test]
    fn setuid_bit_survives_roundtrip() {
        let mut a = Archive::new();
        a.push(Entry::file("bin/starter", vec![1]).with_mode(0o4755));
        let parsed = Archive::from_bytes(&a.to_bytes()).unwrap();
        assert_eq!(parsed.entries[0].mode, 0o4755);
    }

    #[test]
    fn ownership_builder() {
        let e = Entry::file("f", vec![]).owned_by(1000, 100);
        assert_eq!((e.uid, e.gid), (1000, 100));
    }

    fn arb_entry() -> impl Strategy<Value = Entry> {
        let path = "[a-z]{1,8}(/[a-z]{1,8}){0,3}";
        let kind = prop_oneof![
            proptest::collection::vec(any::<u8>(), 0..256).prop_map(EntryKind::File),
            Just(EntryKind::Dir),
            "[a-z]{1,12}".prop_map(EntryKind::Symlink),
            Just(EntryKind::Whiteout),
            Just(EntryKind::OpaqueDir),
        ];
        (path, kind, any::<u32>(), any::<u32>(), any::<u32>()).prop_map(
            |(path, kind, mode, uid, gid)| Entry {
                path,
                kind,
                mode: mode & 0o7777,
                uid,
                gid,
            },
        )
    }

    proptest! {
        #[test]
        fn roundtrip_random_archives(entries in proptest::collection::vec(arb_entry(), 0..24)) {
            let a = Archive { entries };
            prop_assert_eq!(Archive::from_bytes(&a.to_bytes()).unwrap(), a);
        }

        #[test]
        fn parse_never_panics(data in proptest::collection::vec(any::<u8>(), 0..512)) {
            let _ = Archive::from_bytes(&data);
        }
    }
}

//! # hpcc-codec
//!
//! Serialization substrate for container layers and single-file images:
//!
//! * [`wire`] — little-endian + varint primitives shared by every on-"disk"
//!   format in the testbed.
//! * [`mod@compress`] — self-describing compression container with three real
//!   codecs: store, run-length, and an LZ77-family codec. The single-file
//!   image experiments (SquashFS analogue) trade decompression CPU for I/O,
//!   so compression must actually happen, not be a flag.
//! * [`archive`] — a tar-analogue: ordered entries with path, mode,
//!   uid/gid, file data, symlinks, and the OCI layer whiteout markers.
//!   Layers and image exports serialize through this.

pub mod archive;
pub mod compress;
pub mod wire;

pub use archive::{Archive, Entry, EntryKind};
pub use compress::{compress, decompress, Codec, CodecError};

//! Self-describing compression container.
//!
//! Three real codecs:
//!
//! * [`Codec::Store`] — identity, for incompressible payloads.
//! * [`Codec::Rle`] — byte run-length encoding, cheap CPU.
//! * [`Codec::Lz`] — an LZ77-family codec with a 32 KiB window and hash
//!   chains, the workhorse for layer/squash-image payloads.
//!
//! The compressed container is `[codec-id u8][orig-len varint][payload]`,
//! so [`decompress`] is self-describing. The vfs driver cost models charge
//! decompression CPU proportional to output size — the "trade CPU for IO"
//! argument of Section 3.2 — so both directions are real transforms.

use crate::wire::{put_varint, Reader, WireError};

/// Compression codec identifiers.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Codec {
    /// No compression.
    Store,
    /// Run-length encoding.
    Rle,
    /// LZ77 with 32 KiB window.
    Lz,
}

impl Codec {
    fn id(self) -> u8 {
        match self {
            Codec::Store => 0,
            Codec::Rle => 1,
            Codec::Lz => 2,
        }
    }

    fn from_id(id: u8) -> Option<Codec> {
        match id {
            0 => Some(Codec::Store),
            1 => Some(Codec::Rle),
            2 => Some(Codec::Lz),
            _ => None,
        }
    }
}

/// Errors from decompression.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CodecError {
    /// Unknown codec id byte.
    UnknownCodec(u8),
    /// Container or payload truncated/corrupt.
    Corrupt(&'static str),
    /// Wire-format failure inside the container.
    Wire(WireError),
}

impl From<WireError> for CodecError {
    fn from(e: WireError) -> CodecError {
        CodecError::Wire(e)
    }
}

impl std::fmt::Display for CodecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CodecError::UnknownCodec(id) => write!(f, "unknown codec id {id}"),
            CodecError::Corrupt(what) => write!(f, "corrupt compressed data: {what}"),
            CodecError::Wire(e) => write!(f, "wire error: {e}"),
        }
    }
}

impl std::error::Error for CodecError {}

/// Compress `data` with `codec` into a self-describing container.
pub fn compress(codec: Codec, data: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(data.len() / 2 + 16);
    out.push(codec.id());
    put_varint(&mut out, data.len() as u64);
    match codec {
        Codec::Store => out.extend_from_slice(data),
        Codec::Rle => rle_compress(data, &mut out),
        Codec::Lz => lz_compress(data, &mut out),
    }
    out
}

/// Decompress a container produced by [`compress`].
pub fn decompress(container: &[u8]) -> Result<Vec<u8>, CodecError> {
    let mut r = Reader::new(container);
    let id = r.u8()?;
    let codec = Codec::from_id(id).ok_or(CodecError::UnknownCodec(id))?;
    let orig_len = r.varint()? as usize;
    let payload = r.take(r.remaining())?;
    let out = match codec {
        Codec::Store => payload.to_vec(),
        Codec::Rle => rle_decompress(payload, orig_len)?,
        Codec::Lz => lz_decompress(payload, orig_len)?,
    };
    if out.len() != orig_len {
        return Err(CodecError::Corrupt("length mismatch"));
    }
    Ok(out)
}

/// The codec recorded in a container, without decompressing.
pub fn sniff(container: &[u8]) -> Result<Codec, CodecError> {
    let id = *container.first().ok_or(CodecError::Corrupt("empty"))?;
    Codec::from_id(id).ok_or(CodecError::UnknownCodec(id))
}

// ---------------------------------------------------------------- RLE

fn rle_compress(data: &[u8], out: &mut Vec<u8>) {
    let mut i = 0;
    while i < data.len() {
        let b = data[i];
        let mut run = 1usize;
        while i + run < data.len() && data[i + run] == b && run < 255 {
            run += 1;
        }
        out.push(run as u8);
        out.push(b);
        i += run;
    }
}

fn rle_decompress(payload: &[u8], cap: usize) -> Result<Vec<u8>, CodecError> {
    if !payload.len().is_multiple_of(2) {
        return Err(CodecError::Corrupt("odd RLE payload"));
    }
    let mut out = Vec::with_capacity(cap);
    for pair in payload.chunks_exact(2) {
        let (run, b) = (pair[0] as usize, pair[1]);
        if run == 0 {
            return Err(CodecError::Corrupt("zero-length RLE run"));
        }
        if out.len() + run > cap {
            return Err(CodecError::Corrupt("RLE overrun"));
        }
        out.resize(out.len() + run, b);
    }
    Ok(out)
}

// ---------------------------------------------------------------- LZ77

const LZ_WINDOW: usize = 32 * 1024;
const LZ_MIN_MATCH: usize = 4;
const LZ_MAX_MATCH: usize = 258;
const HASH_BITS: u32 = 15;

#[inline]
fn lz_hash(data: &[u8], i: usize) -> usize {
    let v = u32::from_le_bytes([data[i], data[i + 1], data[i + 2], data[i + 3]]);
    (v.wrapping_mul(0x9E37_79B1) >> (32 - HASH_BITS)) as usize
}

/// Token stream: `0x00` literal-run (varint len, bytes); `0x01` match
/// (varint len, varint dist).
fn lz_compress(data: &[u8], out: &mut Vec<u8>) {
    let mut head = vec![usize::MAX; 1 << HASH_BITS];
    let mut prev = vec![usize::MAX; data.len()];
    let mut lit_start = 0usize;
    let mut i = 0usize;

    let flush_literals = |out: &mut Vec<u8>, from: usize, to: usize, data: &[u8]| {
        if to > from {
            out.push(0x00);
            put_varint(out, (to - from) as u64);
            out.extend_from_slice(&data[from..to]);
        }
    };

    while i < data.len() {
        if i + LZ_MIN_MATCH <= data.len() {
            let h = lz_hash(data, i);
            // Search the hash chain for the longest match in the window.
            let mut cand = head[h];
            let mut best_len = 0usize;
            let mut best_dist = 0usize;
            let mut probes = 0;
            while cand != usize::MAX && i - cand <= LZ_WINDOW && probes < 32 {
                let max = (data.len() - i).min(LZ_MAX_MATCH);
                let mut l = 0usize;
                while l < max && data[cand + l] == data[i + l] {
                    l += 1;
                }
                if l > best_len {
                    best_len = l;
                    best_dist = i - cand;
                }
                cand = prev[cand];
                probes += 1;
            }
            // Insert current position into the chain.
            prev[i] = head[h];
            head[h] = i;

            if best_len >= LZ_MIN_MATCH {
                flush_literals(out, lit_start, i, data);
                out.push(0x01);
                put_varint(out, best_len as u64);
                put_varint(out, best_dist as u64);
                // Index the skipped positions too (cheap, improves ratio).
                let end = (i + best_len).min(data.len().saturating_sub(LZ_MIN_MATCH - 1));
                #[allow(clippy::needless_range_loop)] // j indexes head and prev together
                for j in i + 1..end {
                    let h = lz_hash(data, j);
                    prev[j] = head[h];
                    head[h] = j;
                }
                i += best_len;
                lit_start = i;
                continue;
            }
        }
        i += 1;
    }
    flush_literals(out, lit_start, data.len(), data);
}

fn lz_decompress(payload: &[u8], cap: usize) -> Result<Vec<u8>, CodecError> {
    let mut r = Reader::new(payload);
    let mut out = Vec::with_capacity(cap);
    while !r.is_empty() {
        match r.u8()? {
            0x00 => {
                let len = r.varint()? as usize;
                let bytes = r.take(len).map_err(CodecError::from)?;
                if out.len() + len > cap {
                    return Err(CodecError::Corrupt("literal overrun"));
                }
                out.extend_from_slice(bytes);
            }
            0x01 => {
                let len = r.varint()? as usize;
                let dist = r.varint()? as usize;
                if dist == 0 || dist > out.len() {
                    return Err(CodecError::Corrupt("match distance out of range"));
                }
                if out.len() + len > cap {
                    return Err(CodecError::Corrupt("match overrun"));
                }
                // Overlapping copies are the point of LZ77 (e.g. dist=1
                // replicates the last byte), so copy byte-by-byte.
                let start = out.len() - dist;
                for k in 0..len {
                    let b = out[start + k];
                    out.push(b);
                }
            }
            t => {
                return Err(CodecError::Corrupt(if t > 1 {
                    "bad token"
                } else {
                    "unreachable"
                }))
            }
        }
    }
    Ok(out)
}

/// Pick a codec automatically: try LZ, fall back to Store when the payload
/// is incompressible (compressed would be larger).
pub fn compress_auto(data: &[u8]) -> Vec<u8> {
    let lz = compress(Codec::Lz, data);
    if lz.len() < data.len() + 10 {
        lz
    } else {
        compress(Codec::Store, data)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn text_like(n: usize) -> Vec<u8> {
        // Repetitive, library-directory-like content.
        let unit = b"lib/python3.11/site-packages/numpy/core/__init__.py\n";
        unit.iter().copied().cycle().take(n).collect()
    }

    #[test]
    fn store_roundtrip() {
        let data = b"anything at all".to_vec();
        assert_eq!(decompress(&compress(Codec::Store, &data)).unwrap(), data);
    }

    #[test]
    fn rle_roundtrip_and_shrinks_runs() {
        let data = vec![0u8; 10_000];
        let c = compress(Codec::Rle, &data);
        assert!(
            c.len() < 200,
            "RLE of zeros should be tiny, got {}",
            c.len()
        );
        assert_eq!(decompress(&c).unwrap(), data);
    }

    #[test]
    fn lz_roundtrip_and_shrinks_text() {
        let data = text_like(50_000);
        let c = compress(Codec::Lz, &data);
        assert!(
            c.len() < data.len() / 5,
            "LZ should compress repetitive text at least 5x, got {} of {}",
            c.len(),
            data.len()
        );
        assert_eq!(decompress(&c).unwrap(), data);
    }

    #[test]
    fn lz_handles_overlapping_matches() {
        // "aaaa..." forces dist=1 overlapping copies.
        let data = vec![b'a'; 1000];
        let c = compress(Codec::Lz, &data);
        assert_eq!(decompress(&c).unwrap(), data);
    }

    #[test]
    fn empty_input_all_codecs() {
        for codec in [Codec::Store, Codec::Rle, Codec::Lz] {
            assert_eq!(decompress(&compress(codec, &[])).unwrap(), Vec::<u8>::new());
        }
    }

    #[test]
    fn unknown_codec_rejected() {
        let mut c = compress(Codec::Store, b"x");
        c[0] = 99;
        assert_eq!(decompress(&c), Err(CodecError::UnknownCodec(99)));
    }

    #[test]
    fn corrupt_lz_rejected_not_panicking() {
        let mut c = compress(Codec::Lz, &text_like(1000));
        // Flip bytes throughout the payload; decompression must error or
        // produce a wrong-length result, never panic.
        for i in 2..c.len().min(64) {
            let mut bad = c.clone();
            bad[i] ^= 0xff;
            let _ = decompress(&bad);
        }
        c.truncate(c.len() / 2);
        let _ = decompress(&c);
    }

    #[test]
    fn sniff_reports_codec() {
        assert_eq!(sniff(&compress(Codec::Lz, b"abc")).unwrap(), Codec::Lz);
        assert_eq!(sniff(&compress(Codec::Rle, b"abc")).unwrap(), Codec::Rle);
        assert!(sniff(&[]).is_err());
    }

    #[test]
    fn auto_falls_back_to_store_on_random_data() {
        // Pseudo-random bytes: LZ cannot win.
        let data: Vec<u8> = (0..4096u32)
            .map(|i| (i.wrapping_mul(2654435761) >> 13) as u8)
            .collect();
        let c = compress_auto(&data);
        assert_eq!(decompress(&c).unwrap(), data);
    }

    #[test]
    fn auto_uses_lz_on_text() {
        let data = text_like(10_000);
        let c = compress_auto(&data);
        assert_eq!(sniff(&c).unwrap(), Codec::Lz);
        assert!(c.len() < data.len());
    }

    proptest! {
        #[test]
        fn roundtrip_any_payload(data in proptest::collection::vec(any::<u8>(), 0..8192)) {
            for codec in [Codec::Store, Codec::Rle, Codec::Lz] {
                prop_assert_eq!(&decompress(&compress(codec, &data)).unwrap(), &data);
            }
        }

        #[test]
        fn roundtrip_runs(runs in proptest::collection::vec((any::<u8>(), 1usize..600), 0..32)) {
            let mut data = Vec::new();
            for (b, n) in runs {
                data.resize(data.len() + n, b);
            }
            for codec in [Codec::Store, Codec::Rle, Codec::Lz] {
                prop_assert_eq!(&decompress(&compress(codec, &data)).unwrap(), &data);
            }
        }

        #[test]
        fn decompress_never_panics_on_garbage(data in proptest::collection::vec(any::<u8>(), 0..512)) {
            let _ = decompress(&data);
        }
    }
}

//! Normalized absolute paths for the virtual filesystem.
//!
//! `VPath` is always absolute and normalized: no `.`/`..` segments, no
//! empty segments. Relative traversal is resolved at parse time; `..`
//! clamps at the root like a real kernel path walk (so `/../etc` is
//! `/etc`), which matters for the chroot/pivot_root security arguments the
//! runtime layer makes.

use serde::{Deserialize, Serialize};
use std::fmt;

/// A normalized absolute path.
#[derive(Clone, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize, Default)]
pub struct VPath {
    segments: Vec<String>,
}

impl VPath {
    /// The root path `/`.
    pub fn root() -> VPath {
        VPath::default()
    }

    /// Parse from a string. Accepts absolute or relative input (relative is
    /// interpreted from the root). `.` is dropped, `..` pops (clamping at
    /// root), repeated slashes collapse.
    pub fn parse(s: &str) -> VPath {
        let mut segments = Vec::new();
        for seg in s.split('/') {
            match seg {
                "" | "." => {}
                ".." => {
                    segments.pop();
                }
                other => segments.push(other.to_string()),
            }
        }
        VPath { segments }
    }

    /// Path segments, root-first.
    pub fn segments(&self) -> &[String] {
        &self.segments
    }

    /// True for `/`.
    pub fn is_root(&self) -> bool {
        self.segments.is_empty()
    }

    /// Number of segments.
    pub fn depth(&self) -> usize {
        self.segments.len()
    }

    /// The final segment, if any.
    pub fn file_name(&self) -> Option<&str> {
        self.segments.last().map(String::as_str)
    }

    /// Parent path; `/` is its own parent's fixed point (`None`).
    pub fn parent(&self) -> Option<VPath> {
        if self.segments.is_empty() {
            return None;
        }
        Some(VPath {
            segments: self.segments[..self.segments.len() - 1].to_vec(),
        })
    }

    /// Append a relative string (which may itself contain `/`, `..`).
    pub fn join(&self, rel: &str) -> VPath {
        if rel.starts_with('/') {
            return VPath::parse(rel);
        }
        let mut segments = self.segments.clone();
        for seg in rel.split('/') {
            match seg {
                "" | "." => {}
                ".." => {
                    segments.pop();
                }
                other => segments.push(other.to_string()),
            }
        }
        VPath { segments }
    }

    /// Append a single literal segment (must not contain `/`).
    pub fn child(&self, name: &str) -> VPath {
        debug_assert!(!name.is_empty() && !name.contains('/'));
        let mut segments = self.segments.clone();
        segments.push(name.to_string());
        VPath { segments }
    }

    /// True if `self` is `prefix` or lies below it.
    pub fn starts_with(&self, prefix: &VPath) -> bool {
        self.segments.len() >= prefix.segments.len()
            && self.segments[..prefix.segments.len()] == prefix.segments[..]
    }

    /// Re-root: interpret `self` as relative to `old_root` and graft onto
    /// `new_root`. Returns `None` if `self` is not under `old_root`.
    pub fn rebase(&self, old_root: &VPath, new_root: &VPath) -> Option<VPath> {
        if !self.starts_with(old_root) {
            return None;
        }
        let mut segments = new_root.segments.clone();
        segments.extend_from_slice(&self.segments[old_root.segments.len()..]);
        Some(VPath { segments })
    }

    /// Iterate ancestor paths from root (exclusive) down to the parent.
    pub fn ancestors(&self) -> impl Iterator<Item = VPath> + '_ {
        (0..self.segments.len()).map(move |i| VPath {
            segments: self.segments[..i].to_vec(),
        })
    }
}

// Small macro so Debug and Display render identically.
macro_rules! fmt_impl {
    () => {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            if self.segments.is_empty() {
                return f.write_str("/");
            }
            for seg in &self.segments {
                write!(f, "/{seg}")?;
            }
            Ok(())
        }
    };
}

impl fmt::Display for VPath {
    fmt_impl!();
}

impl fmt::Debug for VPath {
    fmt_impl!();
}

impl From<&str> for VPath {
    fn from(s: &str) -> VPath {
        VPath::parse(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn parse_normalizes() {
        assert_eq!(VPath::parse("/a//b/./c").to_string(), "/a/b/c");
        assert_eq!(VPath::parse("a/b").to_string(), "/a/b");
        assert_eq!(VPath::parse("/").to_string(), "/");
        assert_eq!(VPath::parse("").to_string(), "/");
    }

    #[test]
    fn dotdot_clamps_at_root() {
        assert_eq!(VPath::parse("/../etc").to_string(), "/etc");
        assert_eq!(VPath::parse("/a/b/../c").to_string(), "/a/c");
        assert_eq!(VPath::parse("/a/../..").to_string(), "/");
    }

    #[test]
    fn join_handles_absolute_and_relative() {
        let base = VPath::parse("/usr/lib");
        assert_eq!(base.join("x/y").to_string(), "/usr/lib/x/y");
        assert_eq!(base.join("../bin").to_string(), "/usr/bin");
        assert_eq!(base.join("/etc").to_string(), "/etc");
    }

    #[test]
    fn parent_and_file_name() {
        let p = VPath::parse("/a/b/c");
        assert_eq!(p.file_name(), Some("c"));
        assert_eq!(p.parent().unwrap().to_string(), "/a/b");
        assert_eq!(VPath::root().parent(), None);
        assert_eq!(VPath::root().file_name(), None);
    }

    #[test]
    fn starts_with_and_rebase() {
        let p = VPath::parse("/data/set1/file");
        let old = VPath::parse("/data");
        let new = VPath::parse("/mnt/host");
        assert!(p.starts_with(&old));
        assert_eq!(
            p.rebase(&old, &new).unwrap().to_string(),
            "/mnt/host/set1/file"
        );
        assert_eq!(p.rebase(&VPath::parse("/other"), &new), None);
        // Everything starts with root.
        assert!(p.starts_with(&VPath::root()));
    }

    #[test]
    fn ancestors_walk_down() {
        let p = VPath::parse("/a/b/c");
        let anc: Vec<String> = p.ancestors().map(|a| a.to_string()).collect();
        assert_eq!(anc, vec!["/", "/a", "/a/b"]);
    }

    #[test]
    fn child_appends() {
        assert_eq!(VPath::root().child("etc").to_string(), "/etc");
    }

    proptest! {
        #[test]
        fn display_parse_roundtrip(segs in proptest::collection::vec("[a-z0-9_.-]{1,8}", 0..6)) {
            // Filter out "." and ".." which normalize away.
            let segs: Vec<String> = segs.into_iter().filter(|s| s != "." && s != "..").collect();
            let joined = format!("/{}", segs.join("/"));
            let p = VPath::parse(&joined);
            prop_assert_eq!(VPath::parse(&p.to_string()), p);
        }

        #[test]
        fn parse_is_idempotent(s in "[a-z/.]{0,32}") {
            let once = VPath::parse(&s);
            let twice = VPath::parse(&once.to_string());
            prop_assert_eq!(once, twice);
        }
    }
}

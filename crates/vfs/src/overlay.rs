//! OverlayFS: a union view over read-only lower layers and one writable
//! upper layer, with whiteouts, opaque directories and copy-up.
//!
//! This is the mechanism behind `overlayfs`/`fuse-overlayfs` in the survey:
//! OCI bundles mount their layers through it, and HPC engines either use it
//! (Podman, Podman-HPC) or avoid it by flattening (Shifter, Sarus,
//! Charliecloud, Singularity). Both paths exist in the testbed so the
//! trade-off is measurable.

use crate::fs::{FileType, FsError, MemFs, Meta, Stat};
use crate::path::VPath;
use std::collections::BTreeSet;
use std::sync::Arc;

/// A union filesystem: `upper` (writable) over `lowers` (read-only,
/// topmost first).
#[derive(Debug, Clone)]
pub struct OverlayFs {
    lowers: Vec<Arc<MemFs>>,
    upper: MemFs,
    whiteouts: BTreeSet<VPath>,
    opaque: BTreeSet<VPath>,
}

impl OverlayFs {
    /// Build an overlay; `lowers` are ordered topmost-first (the first
    /// element shadows the rest), mirroring `lowerdir=a:b:c` semantics.
    pub fn new(lowers: Vec<Arc<MemFs>>) -> OverlayFs {
        OverlayFs {
            lowers,
            upper: MemFs::new(),
            whiteouts: BTreeSet::new(),
            opaque: BTreeSet::new(),
        }
    }

    /// Number of lower layers.
    pub fn lower_count(&self) -> usize {
        self.lowers.len()
    }

    /// Read-only access to the upper layer (diff extraction).
    pub fn upper(&self) -> &MemFs {
        &self.upper
    }

    /// True if `path` or one of its ancestors is whited-out and not
    /// re-created in the upper.
    fn hidden(&self, path: &VPath) -> bool {
        if self.upper.exists(path) {
            return false;
        }
        // Direct or ancestor whiteout hides lower content.
        if self.whiteouts.contains(path) {
            return true;
        }
        for anc in path.ancestors() {
            if self.whiteouts.contains(&anc) && !self.upper.exists(&anc) {
                return true;
            }
            if self.opaque.contains(&anc) {
                return true;
            }
        }
        if self.opaque.contains(path) {
            // Opaque marks apply to the dir's *lower* contents, not the dir.
            return false;
        }
        false
    }

    /// The layer (upper = None, lower index = Some(i)) that wins for a path.
    fn winning_layer(&self, path: &VPath) -> Option<Option<usize>> {
        if self.upper.exists(path) {
            return Some(None);
        }
        if self.hidden(path) {
            return None;
        }
        for (i, lower) in self.lowers.iter().enumerate() {
            if lower.exists(path) {
                return Some(Some(i));
            }
        }
        None
    }

    /// True if the path exists in the union view.
    pub fn exists(&self, path: &VPath) -> bool {
        self.winning_layer(path).is_some()
    }

    /// Stat through the union.
    pub fn stat(&self, path: &VPath) -> Result<Stat, FsError> {
        match self.winning_layer(path) {
            Some(None) => self.upper.stat(path),
            Some(Some(i)) => self.lowers[i].stat(path),
            None => Err(FsError::NotFound(path.clone())),
        }
    }

    /// Read a file through the union.
    pub fn read(&self, path: &VPath) -> Result<Arc<Vec<u8>>, FsError> {
        match self.winning_layer(path) {
            Some(None) => self.upper.read(path),
            Some(Some(i)) => self.lowers[i].read(path),
            None => Err(FsError::NotFound(path.clone())),
        }
    }

    /// List a directory: merged view of all layers, whiteouts applied.
    pub fn list(&self, path: &VPath) -> Result<Vec<String>, FsError> {
        let mut names = BTreeSet::new();
        let mut found_dir = false;

        if let Ok(kids) = self.upper.list(path) {
            found_dir = true;
            names.extend(kids);
        } else if self.upper.exists(path) {
            return Err(FsError::NotADirectory(path.clone()));
        }

        let lowers_visible = !self.hidden(path) && !self.opaque.contains(path);
        if lowers_visible {
            for lower in &self.lowers {
                if let Ok(kids) = lower.list(path) {
                    found_dir = true;
                    names.extend(kids);
                }
            }
        }

        if !found_dir {
            return if self.exists(path) {
                Err(FsError::NotADirectory(path.clone()))
            } else {
                Err(FsError::NotFound(path.clone()))
            };
        }

        Ok(names
            .into_iter()
            .filter(|n| self.exists(&path.child(n)))
            .collect())
    }

    /// Copy-up: materialize ancestors of `path` in the upper layer so a
    /// write can land there.
    fn copy_up_parents(&mut self, path: &VPath) -> Result<(), FsError> {
        for anc in path.ancestors() {
            if self.upper.exists(&anc) {
                continue;
            }
            match self.stat(&anc) {
                Ok(s) if s.kind == FileType::Dir => {
                    self.upper.mkdir(&anc, s.meta)?;
                }
                Ok(_) => return Err(FsError::NotADirectory(anc)),
                Err(_) => return Err(FsError::NotFound(anc)),
            }
        }
        Ok(())
    }

    /// Write a file (copy-up then write to upper). Creates the file if it
    /// does not exist anywhere.
    pub fn write(
        &mut self,
        path: &VPath,
        data: impl Into<Vec<u8>>,
        meta: Meta,
    ) -> Result<(), FsError> {
        if let Ok(st) = self.stat(path) {
            if st.kind == FileType::Dir {
                return Err(FsError::IsADirectory(path.clone()));
            }
        }
        self.copy_up_parents(path)?;
        self.upper.write(path, data, meta)?;
        self.whiteouts.remove(path);
        Ok(())
    }

    /// Append-style modify: read the current contents (from whichever
    /// layer wins), apply `f`, write the result up.
    pub fn modify(
        &mut self,
        path: &VPath,
        f: impl FnOnce(&[u8]) -> Vec<u8>,
    ) -> Result<(), FsError> {
        let current = self.read(path)?;
        let meta = self.stat(path)?.meta;
        let new = f(&current);
        self.write(path, new, meta)
    }

    /// Make a directory (and missing parents) visible in the union,
    /// materializing existing union directories into the upper layer on
    /// the way down.
    pub fn mkdir_p(&mut self, path: &VPath) -> Result<(), FsError> {
        for anc in path.ancestors().skip(1).chain([path.clone()]) {
            if self.upper.exists(&anc) {
                continue;
            }
            match self.stat(&anc) {
                Ok(s) if s.kind == FileType::Dir => self.upper.mkdir(&anc, s.meta)?,
                Ok(_) => return Err(FsError::NotADirectory(anc)),
                Err(_) => self.upper.mkdir(&anc, Meta::dir())?,
            }
            self.whiteouts.remove(&anc);
        }
        Ok(())
    }

    /// Remove a path from the union view. If it only exists in lower
    /// layers this records a whiteout; upper content is deleted for real.
    pub fn remove(&mut self, path: &VPath) -> Result<(), FsError> {
        if !self.exists(path) {
            return Err(FsError::NotFound(path.clone()));
        }
        if self.upper.exists(path) {
            self.upper.remove_all(path)?;
        }
        let in_lower = self.lowers.iter().any(|l| l.exists(path));
        if in_lower {
            self.whiteouts.insert(path.clone());
        }
        Ok(())
    }

    /// Mark a directory opaque: lower contents disappear, upper contents
    /// remain (the `.wh..wh..opq` marker).
    pub fn set_opaque(&mut self, path: &VPath) -> Result<(), FsError> {
        self.mkdir_p(path)?;
        self.opaque.insert(path.clone());
        Ok(())
    }

    /// Flatten the union into a standalone filesystem (what Charliecloud's
    /// unpacked-directory approach and squash conversion do).
    pub fn flatten(&self) -> Result<MemFs, FsError> {
        let mut out = MemFs::new();
        self.flatten_into(&VPath::root(), &mut out)?;
        Ok(out)
    }

    fn flatten_into(&self, at: &VPath, out: &mut MemFs) -> Result<(), FsError> {
        for name in self.list(at)? {
            let p = at.child(&name);
            // lstat semantics: prefer the winning layer's lstat so symlinks
            // copy as symlinks.
            let winner = self.winning_layer(&p).expect("listed entries exist");
            let (st, readlink) = match winner {
                None => (self.upper.lstat(&p)?, self.upper.readlink(&p).ok()),
                Some(i) => (self.lowers[i].lstat(&p)?, self.lowers[i].readlink(&p).ok()),
            };
            match st.kind {
                FileType::Dir => {
                    out.mkdir(&p, st.meta)?;
                    self.flatten_into(&p, out)?;
                }
                FileType::File => {
                    let data = self.read(&p)?;
                    out.write(&p, data.as_ref().clone(), st.meta)?;
                }
                FileType::Symlink => {
                    out.symlink(&p, &readlink.expect("symlink has target"))?;
                }
            }
        }
        Ok(())
    }

    /// The whiteout set (diff extraction needs it).
    pub fn whiteout_paths(&self) -> impl Iterator<Item = &VPath> {
        self.whiteouts.iter()
    }

    /// The opaque-directory set.
    pub fn opaque_paths(&self) -> impl Iterator<Item = &VPath> {
        self.opaque.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(s: &str) -> VPath {
        VPath::parse(s)
    }

    fn base_layer() -> Arc<MemFs> {
        let mut fs = MemFs::new();
        fs.write_p(&p("/etc/os-release"), b"debian".to_vec())
            .unwrap();
        fs.write_p(&p("/usr/lib/libc.so"), b"libc".to_vec())
            .unwrap();
        fs.write_p(&p("/usr/share/doc/readme"), b"docs".to_vec())
            .unwrap();
        Arc::new(fs)
    }

    fn app_layer() -> Arc<MemFs> {
        let mut fs = MemFs::new();
        fs.write_p(&p("/opt/app/run"), b"app-v1".to_vec()).unwrap();
        fs.write_p(&p("/etc/os-release"), b"app-override".to_vec())
            .unwrap();
        Arc::new(fs)
    }

    fn overlay() -> OverlayFs {
        // app layer on top of base layer.
        OverlayFs::new(vec![app_layer(), base_layer()])
    }

    #[test]
    fn upper_lower_precedence() {
        let o = overlay();
        // App layer shadows base for the shared path.
        assert_eq!(&**o.read(&p("/etc/os-release")).unwrap(), b"app-override");
        // Unshadowed base content visible.
        assert_eq!(&**o.read(&p("/usr/lib/libc.so")).unwrap(), b"libc");
    }

    #[test]
    fn writes_go_to_upper_and_win() {
        let mut o = overlay();
        o.write(&p("/etc/os-release"), b"edited".to_vec(), Meta::file())
            .unwrap();
        assert_eq!(&**o.read(&p("/etc/os-release")).unwrap(), b"edited");
        // Lower layers untouched.
        assert_eq!(&**o.upper().read(&p("/etc/os-release")).unwrap(), b"edited");
    }

    #[test]
    fn copy_up_creates_parents() {
        let mut o = overlay();
        o.write(&p("/usr/lib/newlib.so"), b"new".to_vec(), Meta::file())
            .unwrap();
        assert!(o.upper().exists(&p("/usr/lib")));
        assert_eq!(&**o.read(&p("/usr/lib/newlib.so")).unwrap(), b"new");
        // Existing lower files in the same dir still visible.
        assert_eq!(&**o.read(&p("/usr/lib/libc.so")).unwrap(), b"libc");
    }

    #[test]
    fn whiteout_hides_lower() {
        let mut o = overlay();
        o.remove(&p("/usr/share/doc/readme")).unwrap();
        assert!(!o.exists(&p("/usr/share/doc/readme")));
        assert!(matches!(
            o.read(&p("/usr/share/doc/readme")),
            Err(FsError::NotFound(_))
        ));
        // Listing no longer shows it.
        assert_eq!(o.list(&p("/usr/share/doc")).unwrap(), Vec::<String>::new());
    }

    #[test]
    fn whiteout_dir_hides_subtree() {
        let mut o = overlay();
        o.remove(&p("/usr/share")).unwrap();
        assert!(!o.exists(&p("/usr/share/doc/readme")));
        assert!(o.exists(&p("/usr/lib/libc.so")));
    }

    #[test]
    fn recreate_after_whiteout() {
        let mut o = overlay();
        o.remove(&p("/etc/os-release")).unwrap();
        assert!(!o.exists(&p("/etc/os-release")));
        o.write(&p("/etc/os-release"), b"fresh".to_vec(), Meta::file())
            .unwrap();
        assert_eq!(&**o.read(&p("/etc/os-release")).unwrap(), b"fresh");
    }

    #[test]
    fn opaque_dir_hides_lower_contents_only() {
        let mut o = overlay();
        o.set_opaque(&p("/usr/share")).unwrap();
        assert!(o.exists(&p("/usr/share")), "dir itself visible");
        assert!(
            !o.exists(&p("/usr/share/doc/readme")),
            "lower contents hidden"
        );
        o.write(&p("/usr/share/new"), b"x".to_vec(), Meta::file())
            .unwrap();
        assert_eq!(o.list(&p("/usr/share")).unwrap(), vec!["new"]);
    }

    #[test]
    fn list_merges_layers() {
        let o = overlay();
        let names = o.list(&p("/")).unwrap();
        assert_eq!(names, vec!["etc", "opt", "usr"]);
    }

    #[test]
    fn modify_reads_lower_writes_upper() {
        let mut o = overlay();
        o.modify(&p("/usr/lib/libc.so"), |old| {
            let mut v = old.to_vec();
            v.extend_from_slice(b"-patched");
            v
        })
        .unwrap();
        assert_eq!(&**o.read(&p("/usr/lib/libc.so")).unwrap(), b"libc-patched");
    }

    #[test]
    fn flatten_materializes_union() {
        let mut o = overlay();
        o.remove(&p("/usr/share/doc/readme")).unwrap();
        o.write(&p("/opt/app/config"), b"cfg".to_vec(), Meta::file())
            .unwrap();
        let flat = o.flatten().unwrap();
        assert_eq!(
            &**flat.read(&p("/etc/os-release")).unwrap(),
            b"app-override"
        );
        assert_eq!(&**flat.read(&p("/opt/app/config")).unwrap(), b"cfg");
        assert!(!flat.exists(&p("/usr/share/doc/readme")));
        assert_eq!(&**flat.read(&p("/usr/lib/libc.so")).unwrap(), b"libc");
    }

    #[test]
    fn flatten_preserves_symlinks() {
        let mut base = MemFs::new();
        base.write_p(&p("/usr/bin/python3.11"), b"py".to_vec())
            .unwrap();
        base.symlink(&p("/usr/bin/python3"), "python3.11").unwrap();
        let o = OverlayFs::new(vec![Arc::new(base)]);
        let flat = o.flatten().unwrap();
        assert_eq!(flat.readlink(&p("/usr/bin/python3")).unwrap(), "python3.11");
    }

    #[test]
    fn remove_missing_is_error() {
        let mut o = overlay();
        assert!(matches!(o.remove(&p("/nope")), Err(FsError::NotFound(_))));
    }

    #[test]
    fn three_layer_stack_ordering() {
        let mut l3 = MemFs::new();
        l3.write_p(&p("/f"), b"bottom".to_vec()).unwrap();
        let mut l2 = MemFs::new();
        l2.write_p(&p("/f"), b"middle".to_vec()).unwrap();
        let mut l1 = MemFs::new();
        l1.write_p(&p("/f"), b"top".to_vec()).unwrap();
        let o = OverlayFs::new(vec![Arc::new(l1), Arc::new(l2), Arc::new(l3)]);
        assert_eq!(&**o.read(&p("/f")).unwrap(), b"top");
    }

    #[test]
    fn empty_overlay_is_just_the_upper() {
        let mut o = OverlayFs::new(vec![]);
        assert_eq!(o.list(&p("/")).unwrap(), Vec::<String>::new());
        o.write(&p("/only"), b"x".to_vec(), Meta::file()).unwrap();
        assert_eq!(o.list(&p("/")).unwrap(), vec!["only"]);
        assert_eq!(o.lower_count(), 0);
    }
}

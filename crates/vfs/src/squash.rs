//! Single-file filesystem images (the SquashFS analogue).
//!
//! Section 3.2: "Container filesystems are (re-)packaged as single-file
//! images to avoid small-file load and latency, potentially providing a
//! speedup ... by trading memory and CPU (decompression) for disk IO."
//!
//! The format stores a metadata index up front and one *independently
//! compressed block per file*, so random access decompresses only the file
//! touched — exactly the property the kernel-vs-FUSE driver experiments
//! need. Images are immutable and content-digested.

use crate::fs::{FileType, FsError, MemFs, Meta};
use crate::path::VPath;
use hpcc_codec::compress::{compress, decompress, Codec, CodecError};
use hpcc_codec::wire::{put_str, put_varint, Reader, WireError};
use hpcc_crypto::sha256::{sha256, Digest};
use std::collections::BTreeMap;
use std::sync::Arc;

const MAGIC: &[u8; 4] = b"HSQI";

/// Index record for one entry in the image.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SquashEntry {
    File {
        meta: Meta,
        /// Offset of the compressed block within the blob section.
        offset: u64,
        /// Stored (compressed) length.
        stored_len: u64,
        /// Original (uncompressed) length.
        orig_len: u64,
    },
    Dir {
        meta: Meta,
    },
    Symlink {
        meta: Meta,
        target: String,
    },
}

/// Errors from squash-image handling.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SquashError {
    Wire(WireError),
    Codec(CodecError),
    BadMagic,
    BadKind(u8),
    NotFound(String),
    NotAFile(String),
    SymlinkLoop(String),
    Fs(FsError),
}

impl From<WireError> for SquashError {
    fn from(e: WireError) -> SquashError {
        SquashError::Wire(e)
    }
}
impl From<CodecError> for SquashError {
    fn from(e: CodecError) -> SquashError {
        SquashError::Codec(e)
    }
}
impl From<FsError> for SquashError {
    fn from(e: FsError) -> SquashError {
        SquashError::Fs(e)
    }
}

impl std::fmt::Display for SquashError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SquashError::Wire(e) => write!(f, "wire: {e}"),
            SquashError::Codec(e) => write!(f, "codec: {e}"),
            SquashError::BadMagic => f.write_str("not a squash image"),
            SquashError::BadKind(t) => write!(f, "unknown entry kind {t}"),
            SquashError::NotFound(p) => write!(f, "{p}: not in image"),
            SquashError::NotAFile(p) => write!(f, "{p}: not a regular file"),
            SquashError::SymlinkLoop(p) => write!(f, "{p}: symlink loop in image"),
            SquashError::Fs(e) => write!(f, "fs: {e}"),
        }
    }
}

impl std::error::Error for SquashError {}

/// An immutable single-file image: parsed index plus the raw bytes.
#[derive(Debug, Clone)]
pub struct SquashImage {
    /// Paths are image-relative strings without a leading slash, sorted.
    index: BTreeMap<String, SquashEntry>,
    /// The full serialized image.
    bytes: Arc<Vec<u8>>,
    /// Offset of the blob section within `bytes`.
    blob_start: usize,
}

impl SquashImage {
    /// Pack the subtree of `fs` at `root` into an image using `codec`.
    pub fn build(fs: &MemFs, root: &VPath, codec: Codec) -> Result<SquashImage, SquashError> {
        // First pass: collect entries and compress file payloads.
        struct Pending {
            path: String,
            kind: u8,
            meta: Meta,
            payload: Option<(Vec<u8>, u64)>, // (compressed, orig_len)
            target: Option<String>,
        }
        let mut pending = Vec::new();
        for p in fs.walk(root)? {
            let rel = p
                .rebase(root, &VPath::root())
                .expect("walked path under root")
                .to_string()
                .trim_start_matches('/')
                .to_string();
            let st = fs.lstat(&p)?;
            match st.kind {
                FileType::File => {
                    let data = fs.read(&p)?;
                    let stored = compress(codec, &data);
                    pending.push(Pending {
                        path: rel,
                        kind: 0,
                        meta: st.meta,
                        payload: Some((stored, data.len() as u64)),
                        target: None,
                    });
                }
                FileType::Dir => pending.push(Pending {
                    path: rel,
                    kind: 1,
                    meta: st.meta,
                    payload: None,
                    target: None,
                }),
                FileType::Symlink => pending.push(Pending {
                    path: rel,
                    kind: 2,
                    meta: st.meta,
                    payload: None,
                    target: Some(fs.readlink(&p)?),
                }),
            }
        }

        // Assign blob offsets.
        let mut offset = 0u64;
        let mut offsets = Vec::with_capacity(pending.len());
        for p in &pending {
            if let Some((stored, _)) = &p.payload {
                offsets.push(offset);
                offset += stored.len() as u64;
            } else {
                offsets.push(0);
            }
        }

        // Serialize: header + index + blobs.
        let mut out = Vec::new();
        out.extend_from_slice(MAGIC);
        put_varint(&mut out, pending.len() as u64);
        for (p, off) in pending.iter().zip(&offsets) {
            put_str(&mut out, &p.path);
            out.push(p.kind);
            put_varint(&mut out, p.meta.mode as u64);
            put_varint(&mut out, p.meta.uid as u64);
            put_varint(&mut out, p.meta.gid as u64);
            match p.kind {
                0 => {
                    let (stored, orig) = p.payload.as_ref().expect("file has payload");
                    put_varint(&mut out, *off);
                    put_varint(&mut out, stored.len() as u64);
                    put_varint(&mut out, *orig);
                }
                1 => {}
                2 => put_str(&mut out, p.target.as_ref().expect("symlink has target")),
                _ => unreachable!(),
            }
        }
        for p in &pending {
            if let Some((stored, _)) = &p.payload {
                out.extend_from_slice(stored);
            }
        }
        SquashImage::from_bytes(out)
    }

    /// Parse an image from its serialized bytes.
    pub fn from_bytes(bytes: impl Into<Arc<Vec<u8>>>) -> Result<SquashImage, SquashError> {
        let bytes: Arc<Vec<u8>> = bytes.into();
        let mut r = Reader::new(&bytes);
        if r.take(4)? != MAGIC {
            return Err(SquashError::BadMagic);
        }
        let n = r.varint()? as usize;
        let mut index = BTreeMap::new();
        for _ in 0..n {
            let path = r.str()?.to_string();
            let kind = r.u8()?;
            let meta = Meta {
                mode: r.varint()? as u32,
                uid: r.varint()? as u32,
                gid: r.varint()? as u32,
            };
            let entry = match kind {
                0 => SquashEntry::File {
                    meta,
                    offset: r.varint()?,
                    stored_len: r.varint()?,
                    orig_len: r.varint()?,
                },
                1 => SquashEntry::Dir { meta },
                2 => SquashEntry::Symlink {
                    meta,
                    target: r.str()?.to_string(),
                },
                t => return Err(SquashError::BadKind(t)),
            };
            index.insert(path, entry);
        }
        let blob_start = bytes.len() - r.remaining();
        Ok(SquashImage {
            index,
            bytes,
            blob_start,
        })
    }

    /// The serialized image bytes.
    pub fn as_bytes(&self) -> &[u8] {
        &self.bytes
    }

    /// Size of the serialized image.
    pub fn len_bytes(&self) -> u64 {
        self.bytes.len() as u64
    }

    /// Sum of original (uncompressed) file sizes.
    pub fn original_bytes(&self) -> u64 {
        self.index
            .values()
            .map(|e| match e {
                SquashEntry::File { orig_len, .. } => *orig_len,
                _ => 0,
            })
            .sum()
    }

    /// Content digest of the image file.
    pub fn digest(&self) -> Digest {
        sha256(&self.bytes)
    }

    /// Number of index entries.
    pub fn entry_count(&self) -> usize {
        self.index.len()
    }

    /// All paths in the image, sorted.
    pub fn paths(&self) -> impl Iterator<Item = &str> {
        self.index.keys().map(String::as_str)
    }

    /// Look up an entry (no symlink following).
    pub fn entry(&self, path: &str) -> Option<&SquashEntry> {
        self.index.get(path)
    }

    /// Resolve symlinks within the image to a final entry path.
    fn resolve(&self, path: &str) -> Result<String, SquashError> {
        let mut current = path.to_string();
        for _ in 0..40 {
            match self.index.get(&current) {
                Some(SquashEntry::Symlink { target, .. }) => {
                    let dir = VPath::parse(&current).parent().unwrap_or_else(VPath::root);
                    current = dir
                        .join(target)
                        .to_string()
                        .trim_start_matches('/')
                        .to_string();
                }
                Some(_) => return Ok(current),
                None => return Err(SquashError::NotFound(path.to_string())),
            }
        }
        Err(SquashError::SymlinkLoop(path.to_string()))
    }

    /// Read (and decompress) one file. This is the random-access operation
    /// whose cost the kernel/FUSE drivers model.
    pub fn read_file(&self, path: &str) -> Result<Vec<u8>, SquashError> {
        let real = self.resolve(path)?;
        match self.index.get(&real) {
            Some(SquashEntry::File {
                offset, stored_len, ..
            }) => {
                let start = self.blob_start + *offset as usize;
                let end = start + *stored_len as usize;
                let block = self
                    .bytes
                    .get(start..end)
                    .ok_or(SquashError::Codec(CodecError::Corrupt("blob out of range")))?;
                Ok(decompress(block)?)
            }
            Some(_) => Err(SquashError::NotAFile(path.to_string())),
            None => Err(SquashError::NotFound(path.to_string())),
        }
    }

    /// The stored (compressed) length of one file, for IO accounting.
    pub fn stored_len(&self, path: &str) -> Result<(u64, u64), SquashError> {
        let real = self.resolve(path)?;
        match self.index.get(&real) {
            Some(SquashEntry::File {
                stored_len,
                orig_len,
                ..
            }) => Ok((*stored_len, *orig_len)),
            Some(_) => Err(SquashError::NotAFile(path.to_string())),
            None => Err(SquashError::NotFound(path.to_string())),
        }
    }

    /// Unpack the whole image into a fresh filesystem (what the
    /// extract-to-node-local-dir strategies do).
    pub fn unpack(&self) -> Result<MemFs, SquashError> {
        let mut fs = MemFs::new();
        // Dirs first (BTreeMap order already gives parents before children
        // because '/' sorts low, but create parents defensively).
        for (path, entry) in &self.index {
            let at = VPath::root().join(path);
            match entry {
                SquashEntry::Dir { meta } => {
                    if let Some(parent) = at.parent() {
                        fs.mkdir_p(&parent)?;
                    }
                    if !fs.exists(&at) {
                        fs.mkdir(&at, *meta)?;
                    }
                }
                SquashEntry::File { meta, .. } => {
                    if let Some(parent) = at.parent() {
                        fs.mkdir_p(&parent)?;
                    }
                    let data = self.read_file(path)?;
                    fs.write(&at, data, *meta)?;
                }
                SquashEntry::Symlink { target, .. } => {
                    if let Some(parent) = at.parent() {
                        fs.mkdir_p(&parent)?;
                    }
                    fs.symlink(&at, target)?;
                }
            }
        }
        Ok(fs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(s: &str) -> VPath {
        VPath::parse(s)
    }

    fn sample_fs() -> MemFs {
        let mut fs = MemFs::new();
        fs.write_p(&p("/usr/lib/libc.so"), vec![b'c'; 4096])
            .unwrap();
        fs.write_p(&p("/usr/bin/python3.11"), vec![b'p'; 2048])
            .unwrap();
        fs.symlink(&p("/usr/bin/python3"), "python3.11").unwrap();
        fs.write_p(&p("/etc/conf"), b"key=value\n".repeat(100))
            .unwrap();
        fs.chmod(&p("/usr/bin/python3.11"), 0o755).unwrap();
        fs
    }

    fn image() -> SquashImage {
        SquashImage::build(&sample_fs(), &VPath::root(), Codec::Lz).unwrap()
    }

    #[test]
    fn build_and_read_back() {
        let img = image();
        assert_eq!(img.read_file("usr/lib/libc.so").unwrap(), vec![b'c'; 4096]);
        assert_eq!(
            img.read_file("etc/conf").unwrap(),
            b"key=value\n".repeat(100)
        );
    }

    #[test]
    fn compression_shrinks_image() {
        let img = image();
        assert!(
            img.len_bytes() < img.original_bytes(),
            "stored {} >= original {}",
            img.len_bytes(),
            img.original_bytes()
        );
    }

    #[test]
    fn symlinks_resolve_inside_image() {
        let img = image();
        assert_eq!(img.read_file("usr/bin/python3").unwrap(), vec![b'p'; 2048]);
    }

    #[test]
    fn metadata_preserved() {
        let img = image();
        match img.entry("usr/bin/python3.11").unwrap() {
            SquashEntry::File { meta, orig_len, .. } => {
                assert_eq!(meta.mode, 0o755);
                assert_eq!(*orig_len, 2048);
            }
            other => panic!("expected file, got {other:?}"),
        }
    }

    #[test]
    fn serialization_roundtrip() {
        let img = image();
        let reparsed = SquashImage::from_bytes(img.as_bytes().to_vec()).unwrap();
        assert_eq!(reparsed.entry_count(), img.entry_count());
        assert_eq!(reparsed.digest(), img.digest());
        assert_eq!(
            reparsed.read_file("usr/lib/libc.so").unwrap(),
            vec![b'c'; 4096]
        );
    }

    #[test]
    fn unpack_restores_tree() {
        let fs = sample_fs();
        let img = SquashImage::build(&fs, &VPath::root(), Codec::Lz).unwrap();
        let restored = img.unpack().unwrap();
        assert_eq!(
            restored.tree_digest(&VPath::root()).unwrap(),
            fs.tree_digest(&VPath::root()).unwrap()
        );
    }

    #[test]
    fn subtree_images_are_relative() {
        let fs = sample_fs();
        let img = SquashImage::build(&fs, &p("/usr"), Codec::Store).unwrap();
        assert!(img.entry("bin/python3.11").is_some());
        assert!(img.entry("usr/bin/python3.11").is_none());
    }

    #[test]
    fn missing_files_error() {
        let img = image();
        assert!(matches!(
            img.read_file("nope"),
            Err(SquashError::NotFound(_))
        ));
        assert!(matches!(
            img.read_file("usr"),
            Err(SquashError::NotAFile(_))
        ));
    }

    #[test]
    fn corrupt_magic_rejected() {
        let img = image();
        let mut bytes = img.as_bytes().to_vec();
        bytes[0] = b'X';
        assert!(matches!(
            SquashImage::from_bytes(bytes),
            Err(SquashError::BadMagic)
        ));
    }

    #[test]
    fn digest_differs_across_contents() {
        let a = image();
        let mut fs = sample_fs();
        fs.write_p(&p("/etc/conf"), b"changed".to_vec()).unwrap();
        let b = SquashImage::build(&fs, &VPath::root(), Codec::Lz).unwrap();
        assert_ne!(a.digest(), b.digest());
    }

    #[test]
    fn stored_len_reports_both_sizes() {
        let img = image();
        let (stored, orig) = img.stored_len("etc/conf").unwrap();
        assert_eq!(orig, 1000);
        assert!(stored < orig, "repetitive file should compress");
    }

    #[test]
    fn store_codec_roundtrip() {
        let fs = sample_fs();
        let img = SquashImage::build(&fs, &VPath::root(), Codec::Store).unwrap();
        assert_eq!(img.read_file("usr/lib/libc.so").unwrap(), vec![b'c'; 4096]);
        assert!(img.len_bytes() >= img.original_bytes());
    }

    #[test]
    fn empty_tree_builds() {
        let fs = MemFs::new();
        let img = SquashImage::build(&fs, &VPath::root(), Codec::Lz).unwrap();
        assert_eq!(img.entry_count(), 0);
        assert_eq!(img.original_bytes(), 0);
        assert!(img
            .unpack()
            .unwrap()
            .list(&VPath::root())
            .unwrap()
            .is_empty());
    }
}

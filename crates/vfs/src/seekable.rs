//! Seekable, indexed single-file images — the lazy-pull variant of
//! [`crate::squash`] (eStargz/SOCI-style, the §7 outlook).
//!
//! The classic squash image is one opaque blob: the index and every
//! compressed file block travel together, so nothing is usable until the
//! whole blob has been transferred. This module splits that format into
//!
//! * a **manifest-first index** ([`SeekableIndex`]) — the complete
//!   metadata tree plus, per file, an ordered list of [`ChunkRef`]s; it
//!   parses standalone, so a container can launch as soon as this small
//!   blob is resident, and
//! * **content-addressed chunk ranges** — each file is split into
//!   fixed-size ranges of its *original* bytes and every range is
//!   compressed independently, so a reader can fault in exactly the
//!   ranges it touches. Chunks are addressed by the digest of their
//!   compressed bytes and dedup across files and images for free.
//!
//! The index carries both stored and original lengths per chunk, which is
//! what lets the FUSE cost model charge real IO/decompress costs for a
//! partial read without the bytes being local yet.

use crate::fs::{FileType, MemFs, Meta};
use crate::path::VPath;
use crate::squash::SquashError;
use hpcc_codec::compress::{compress, decompress, Codec, CodecError};
use hpcc_codec::wire::{put_str, put_varint, Reader};
use hpcc_crypto::sha256::{sha256, Digest};
use std::collections::BTreeMap;
use std::sync::Arc;

const MAGIC: &[u8; 4] = b"HSKI";

/// Chunk granularity used when callers have no reason to pick another:
/// large enough that the index stays small next to the data, small enough
/// that a first touch of a big file moves kilobytes, not the whole file.
pub const DEFAULT_CHUNK_SIZE: u64 = 256 * 1024;

/// One content-addressed range of a file's bytes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ChunkRef {
    /// Digest of the *compressed* chunk bytes (the fetchable blob).
    pub digest: Digest,
    /// Compressed (stored/transfer) length.
    pub stored_len: u64,
    /// Original length of the range this chunk decompresses to.
    pub orig_len: u64,
}

/// Index record for one entry in a seekable image.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SeekableEntry {
    File {
        meta: Meta,
        /// Original (uncompressed) file length — the sum of the chunks'
        /// `orig_len`s, kept explicit so metadata answers need no chunks.
        orig_len: u64,
        /// The file's ranges in offset order.
        chunks: Vec<ChunkRef>,
    },
    Dir {
        meta: Meta,
    },
    Symlink {
        meta: Meta,
        target: String,
    },
}

/// The manifest-first index of a seekable image: the full metadata tree
/// plus per-file chunk tables, serializable standalone.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SeekableIndex {
    /// The chunking granularity the image was built with (original bytes
    /// per chunk; the last chunk of a file may be shorter).
    pub chunk_size: u64,
    /// Paths are image-relative strings without a leading slash, sorted.
    entries: BTreeMap<String, SeekableEntry>,
}

/// One stored chunk ready for a registry or blob store: the digest of
/// the compressed bytes and the bytes themselves.
pub type ChunkBlob = (Digest, Arc<Vec<u8>>);

impl SeekableIndex {
    /// Chunk and compress the subtree of `fs` at `root`. Returns the
    /// index plus the deduplicated compressed chunks in first-appearance
    /// order (ready to be pushed to a registry or blob store).
    pub fn build(
        fs: &MemFs,
        root: &VPath,
        codec: Codec,
        chunk_size: u64,
    ) -> Result<(SeekableIndex, Vec<ChunkBlob>), SquashError> {
        let chunk_size = chunk_size.max(1);
        let mut entries = BTreeMap::new();
        let mut chunks: Vec<(Digest, Arc<Vec<u8>>)> = Vec::new();
        let mut seen: BTreeMap<Digest, ()> = BTreeMap::new();
        for p in fs.walk(root)? {
            let rel = p
                .rebase(root, &VPath::root())
                .expect("walked path under root")
                .to_string()
                .trim_start_matches('/')
                .to_string();
            let st = fs.lstat(&p)?;
            let entry = match st.kind {
                FileType::File => {
                    let data = fs.read(&p)?;
                    let mut refs = Vec::new();
                    for range in data.chunks(chunk_size as usize) {
                        let stored = compress(codec, range);
                        let digest = sha256(&stored);
                        if seen.insert(digest, ()).is_none() {
                            chunks.push((digest, Arc::new(stored.clone())));
                        }
                        refs.push(ChunkRef {
                            digest,
                            stored_len: stored.len() as u64,
                            orig_len: range.len() as u64,
                        });
                    }
                    SeekableEntry::File {
                        meta: st.meta,
                        orig_len: data.len() as u64,
                        chunks: refs,
                    }
                }
                FileType::Dir => SeekableEntry::Dir { meta: st.meta },
                FileType::Symlink => SeekableEntry::Symlink {
                    meta: st.meta,
                    target: fs.readlink(&p)?,
                },
            };
            entries.insert(rel, entry);
        }
        Ok((
            SeekableIndex {
                chunk_size,
                entries,
            },
            chunks,
        ))
    }

    /// Serialize the index (the manifest-first blob a lazy pull fetches
    /// eagerly).
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::new();
        out.extend_from_slice(MAGIC);
        put_varint(&mut out, self.chunk_size);
        put_varint(&mut out, self.entries.len() as u64);
        for (path, entry) in &self.entries {
            put_str(&mut out, path);
            match entry {
                SeekableEntry::File {
                    meta,
                    orig_len,
                    chunks,
                } => {
                    out.push(0);
                    put_meta(&mut out, meta);
                    put_varint(&mut out, *orig_len);
                    put_varint(&mut out, chunks.len() as u64);
                    for c in chunks {
                        out.extend_from_slice(&c.digest.0);
                        put_varint(&mut out, c.stored_len);
                        put_varint(&mut out, c.orig_len);
                    }
                }
                SeekableEntry::Dir { meta } => {
                    out.push(1);
                    put_meta(&mut out, meta);
                }
                SeekableEntry::Symlink { meta, target } => {
                    out.push(2);
                    put_meta(&mut out, meta);
                    put_str(&mut out, target);
                }
            }
        }
        out
    }

    /// Parse an index from its serialized bytes.
    pub fn from_bytes(data: &[u8]) -> Result<SeekableIndex, SquashError> {
        let mut r = Reader::new(data);
        if r.take(4)? != MAGIC {
            return Err(SquashError::BadMagic);
        }
        let chunk_size = r.varint()?;
        let n = r.varint()? as usize;
        let mut entries = BTreeMap::new();
        for _ in 0..n {
            let path = r.str()?.to_string();
            let kind = r.u8()?;
            let meta = read_meta(&mut r)?;
            let entry = match kind {
                0 => {
                    let orig_len = r.varint()?;
                    let count = r.varint()? as usize;
                    let mut chunks = Vec::with_capacity(count);
                    for _ in 0..count {
                        let mut digest = [0u8; 32];
                        digest.copy_from_slice(r.take(32)?);
                        chunks.push(ChunkRef {
                            digest: Digest(digest),
                            stored_len: r.varint()?,
                            orig_len: r.varint()?,
                        });
                    }
                    SeekableEntry::File {
                        meta,
                        orig_len,
                        chunks,
                    }
                }
                1 => SeekableEntry::Dir { meta },
                2 => SeekableEntry::Symlink {
                    meta,
                    target: r.str()?.to_string(),
                },
                t => return Err(SquashError::BadKind(t)),
            };
            entries.insert(path, entry);
        }
        Ok(SeekableIndex {
            chunk_size,
            entries,
        })
    }

    /// Content digest of the serialized index — the image reference a
    /// lazy pull starts from.
    pub fn digest(&self) -> Digest {
        sha256(&self.to_bytes())
    }

    /// Number of index entries.
    pub fn entry_count(&self) -> usize {
        self.entries.len()
    }

    /// All paths in the image, sorted.
    pub fn paths(&self) -> impl Iterator<Item = &str> {
        self.entries.keys().map(String::as_str)
    }

    /// All file paths (entries with content), sorted.
    pub fn file_paths(&self) -> impl Iterator<Item = &str> {
        self.entries.iter().filter_map(|(p, e)| match e {
            SeekableEntry::File { .. } => Some(p.as_str()),
            _ => None,
        })
    }

    /// Look up an entry (no symlink following).
    pub fn entry(&self, path: &str) -> Option<&SeekableEntry> {
        self.entries.get(path)
    }

    /// Sum of original (uncompressed) file sizes.
    pub fn total_orig_bytes(&self) -> u64 {
        self.entries
            .values()
            .map(|e| match e {
                SeekableEntry::File { orig_len, .. } => *orig_len,
                _ => 0,
            })
            .sum()
    }

    /// Sum of stored (compressed) chunk sizes, counting shared chunks
    /// once per reference (transfer cost of a full eager materialize
    /// with a cold chunk cache).
    pub fn total_stored_bytes(&self) -> u64 {
        self.entries
            .values()
            .map(|e| match e {
                SeekableEntry::File { chunks, .. } => {
                    chunks.iter().map(|c| c.stored_len).sum::<u64>()
                }
                _ => 0,
            })
            .sum()
    }

    /// The distinct chunk digests the image references, sorted.
    pub fn distinct_chunks(&self) -> Vec<Digest> {
        let mut set: BTreeMap<Digest, ()> = BTreeMap::new();
        for e in self.entries.values() {
            if let SeekableEntry::File { chunks, .. } = e {
                for c in chunks {
                    set.insert(c.digest, ());
                }
            }
        }
        set.into_keys().collect()
    }

    /// Resolve symlinks within the image to a final entry path.
    pub fn resolve(&self, path: &str) -> Result<String, SquashError> {
        let mut current = path.to_string();
        for _ in 0..40 {
            match self.entries.get(&current) {
                Some(SeekableEntry::Symlink { target, .. }) => {
                    let dir = VPath::parse(&current).parent().unwrap_or_else(VPath::root);
                    current = dir
                        .join(target)
                        .to_string()
                        .trim_start_matches('/')
                        .to_string();
                }
                Some(_) => return Ok(current),
                None => return Err(SquashError::NotFound(path.to_string())),
            }
        }
        Err(SquashError::SymlinkLoop(path.to_string()))
    }

    /// The chunk table of one file, following symlinks. Returns the
    /// resolved entry's `(orig_len, chunks)`.
    pub fn file_chunks(&self, path: &str) -> Result<(u64, &[ChunkRef]), SquashError> {
        let real = self.resolve(path)?;
        match self.entries.get(&real) {
            Some(SeekableEntry::File {
                orig_len, chunks, ..
            }) => Ok((*orig_len, chunks.as_slice())),
            Some(_) => Err(SquashError::NotAFile(path.to_string())),
            None => Err(SquashError::NotFound(path.to_string())),
        }
    }

    /// Reassemble one file from its fetched compressed chunks (in the
    /// index's range order).
    pub fn assemble_file(
        &self,
        path: &str,
        mut fetch: impl FnMut(&Digest) -> Option<Arc<Vec<u8>>>,
    ) -> Result<Vec<u8>, SquashError> {
        let (orig_len, chunks) = self.file_chunks(path)?;
        let mut out = Vec::with_capacity(orig_len as usize);
        for c in chunks {
            let stored = fetch(&c.digest).ok_or(SquashError::Codec(CodecError::Corrupt(
                "chunk not resident",
            )))?;
            out.extend_from_slice(&decompress(&stored)?);
        }
        if out.len() as u64 != orig_len {
            return Err(SquashError::Codec(CodecError::Corrupt(
                "reassembled length mismatch",
            )));
        }
        Ok(out)
    }

    /// Materialize the whole image into a fresh filesystem from a chunk
    /// source — the eager endpoint a fully-touched lazy image converges
    /// to (byte-identical to [`crate::squash::SquashImage::unpack`] of an
    /// image built from the same tree).
    pub fn materialize(
        &self,
        mut fetch: impl FnMut(&Digest) -> Option<Arc<Vec<u8>>>,
    ) -> Result<MemFs, SquashError> {
        let mut fs = MemFs::new();
        for (path, entry) in &self.entries {
            let at = VPath::root().join(path);
            if let Some(parent) = at.parent() {
                fs.mkdir_p(&parent)?;
            }
            match entry {
                SeekableEntry::Dir { meta } => {
                    if !fs.exists(&at) {
                        fs.mkdir(&at, *meta)?;
                    }
                }
                SeekableEntry::File { meta, .. } => {
                    let data = self.assemble_file(path, &mut fetch)?;
                    fs.write(&at, data, *meta)?;
                }
                SeekableEntry::Symlink { target, .. } => {
                    fs.symlink(&at, target)?;
                }
            }
        }
        Ok(fs)
    }
}

fn put_meta(out: &mut Vec<u8>, meta: &Meta) {
    put_varint(out, meta.mode as u64);
    put_varint(out, meta.uid as u64);
    put_varint(out, meta.gid as u64);
}

fn read_meta(r: &mut Reader<'_>) -> Result<Meta, SquashError> {
    Ok(Meta {
        mode: r.varint()? as u32,
        uid: r.varint()? as u32,
        gid: r.varint()? as u32,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap;

    fn p(s: &str) -> VPath {
        VPath::parse(s)
    }

    fn sample_fs() -> MemFs {
        let mut fs = MemFs::new();
        fs.write_p(&p("/usr/lib/libbig.so"), vec![b'L'; 700_000])
            .unwrap();
        fs.write_p(&p("/usr/bin/tool"), vec![b't'; 2048]).unwrap();
        fs.symlink(&p("/usr/bin/tool-latest"), "tool").unwrap();
        fs.write_p(&p("/etc/conf"), b"key=value\n".repeat(100))
            .unwrap();
        fs.write_p(&p("/etc/empty"), Vec::new()).unwrap();
        fs.chmod(&p("/usr/bin/tool"), 0o755).unwrap();
        fs
    }

    fn built() -> (SeekableIndex, HashMap<Digest, Arc<Vec<u8>>>) {
        let (index, chunks) =
            SeekableIndex::build(&sample_fs(), &VPath::root(), Codec::Lz, DEFAULT_CHUNK_SIZE)
                .unwrap();
        (index, chunks.into_iter().collect())
    }

    #[test]
    fn large_files_split_into_ranged_chunks() {
        let (index, _) = built();
        let (orig, chunks) = index.file_chunks("usr/lib/libbig.so").unwrap();
        assert_eq!(orig, 700_000);
        assert_eq!(chunks.len(), 3, "700000 B / 256 KiB chunks");
        assert_eq!(chunks[0].orig_len, DEFAULT_CHUNK_SIZE);
        assert_eq!(chunks[2].orig_len, 700_000 - 2 * DEFAULT_CHUNK_SIZE);
        assert_eq!(chunks.iter().map(|c| c.orig_len).sum::<u64>(), orig);
    }

    #[test]
    fn index_roundtrips_standalone() {
        let (index, _) = built();
        let parsed = SeekableIndex::from_bytes(&index.to_bytes()).unwrap();
        assert_eq!(parsed, index);
        assert_eq!(parsed.digest(), index.digest());
        assert_eq!(parsed.chunk_size, DEFAULT_CHUNK_SIZE);
    }

    #[test]
    fn assemble_restores_file_bytes() {
        let (index, chunks) = built();
        let data = index
            .assemble_file("usr/lib/libbig.so", |d| chunks.get(d).cloned())
            .unwrap();
        assert_eq!(data, vec![b'L'; 700_000]);
    }

    #[test]
    fn symlinks_resolve_to_chunks() {
        let (index, chunks) = built();
        let data = index
            .assemble_file("usr/bin/tool-latest", |d| chunks.get(d).cloned())
            .unwrap();
        assert_eq!(data, vec![b't'; 2048]);
    }

    #[test]
    fn materialize_matches_source_tree() {
        let fs = sample_fs();
        let (index, chunks) =
            SeekableIndex::build(&fs, &VPath::root(), Codec::Lz, DEFAULT_CHUNK_SIZE).unwrap();
        let by_digest: HashMap<Digest, Arc<Vec<u8>>> = chunks.into_iter().collect();
        let restored = index.materialize(|d| by_digest.get(d).cloned()).unwrap();
        assert_eq!(
            restored.tree_digest(&VPath::root()).unwrap(),
            fs.tree_digest(&VPath::root()).unwrap()
        );
    }

    #[test]
    fn identical_ranges_dedup_to_one_chunk() {
        let mut fs = MemFs::new();
        for i in 0..6 {
            fs.write_p(&p(&format!("/data/f{i}")), vec![9u8; 4096])
                .unwrap();
        }
        let (index, chunks) =
            SeekableIndex::build(&fs, &VPath::root(), Codec::Lz, DEFAULT_CHUNK_SIZE).unwrap();
        assert_eq!(chunks.len(), 1, "identical contents share one chunk");
        assert_eq!(index.distinct_chunks().len(), 1);
        assert!(index.total_stored_bytes() > chunks[0].1.len() as u64);
    }

    #[test]
    fn missing_chunk_is_an_error_not_garbage() {
        let (index, _) = built();
        assert!(matches!(
            index.assemble_file("etc/conf", |_| None),
            Err(SquashError::Codec(_))
        ));
    }

    #[test]
    fn missing_and_non_file_paths_error() {
        let (index, chunks) = built();
        assert!(matches!(
            index.file_chunks("nope"),
            Err(SquashError::NotFound(_))
        ));
        assert!(matches!(
            index.file_chunks("usr"),
            Err(SquashError::NotAFile(_))
        ));
        assert!(index
            .assemble_file("etc/empty", |d| chunks.get(d).cloned())
            .unwrap()
            .is_empty());
    }

    #[test]
    fn corrupt_magic_rejected() {
        let (index, _) = built();
        let mut bytes = index.to_bytes();
        bytes[0] = b'X';
        assert!(matches!(
            SeekableIndex::from_bytes(&bytes),
            Err(SquashError::BadMagic)
        ));
    }

    #[test]
    fn index_is_small_next_to_the_data() {
        let (index, _) = built();
        assert!(
            (index.to_bytes().len() as u64) < index.total_stored_bytes() / 4,
            "index {} B vs stored {} B",
            index.to_bytes().len(),
            index.total_stored_bytes()
        );
    }

    #[test]
    fn subtree_images_are_relative() {
        let fs = sample_fs();
        let (index, _) =
            SeekableIndex::build(&fs, &p("/usr"), Codec::Store, DEFAULT_CHUNK_SIZE).unwrap();
        assert!(index.entry("bin/tool").is_some());
        assert!(index.entry("usr/bin/tool").is_none());
    }
}

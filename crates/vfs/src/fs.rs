//! In-memory POSIX-like filesystem.
//!
//! Backs container root filesystems, unpacked image directories and host
//! filesystems throughout the testbed. Stores files, directories and
//! symlinks with mode/uid/gid metadata; symlink resolution follows links
//! with a loop bound like a real kernel path walk. Permission *checks* are
//! the runtime layer's job (they depend on namespace credentials); the
//! filesystem stores the metadata those checks read.

use crate::path::VPath;
use hpcc_codec::archive::{Archive, Entry, EntryKind};
use hpcc_crypto::sha256::{Digest, Sha256};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::sync::Arc;

/// Inode metadata.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Meta {
    pub mode: u32,
    pub uid: u32,
    pub gid: u32,
}

impl Meta {
    pub fn file() -> Meta {
        Meta {
            mode: 0o644,
            uid: 0,
            gid: 0,
        }
    }

    pub fn dir() -> Meta {
        Meta {
            mode: 0o755,
            uid: 0,
            gid: 0,
        }
    }

    /// True if the setuid bit is set (the suid-helper discussions of
    /// Sections 3.2/4.1.2 hinge on this bit).
    pub fn is_setuid(&self) -> bool {
        self.mode & 0o4000 != 0
    }
}

/// What an inode is.
#[derive(Debug, Clone)]
enum NodeKind {
    File { data: Arc<Vec<u8>> },
    Dir { children: BTreeMap<String, usize> },
    Symlink { target: String },
}

#[derive(Debug, Clone)]
struct Node {
    kind: NodeKind,
    meta: Meta,
}

/// Filesystem statistics returned by [`MemFs::stat`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Stat {
    pub meta: Meta,
    pub kind: FileType,
    pub size: u64,
}

/// Inode type.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FileType {
    File,
    Dir,
    Symlink,
}

/// Filesystem errors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FsError {
    NotFound(VPath),
    NotADirectory(VPath),
    IsADirectory(VPath),
    AlreadyExists(VPath),
    NotEmpty(VPath),
    SymlinkLoop(VPath),
    NotASymlink(VPath),
    /// The device backing the tree has no space left (injected disk-full
    /// faults surface as this).
    NoSpace(VPath),
}

impl std::fmt::Display for FsError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FsError::NotFound(p) => write!(f, "{p}: no such file or directory"),
            FsError::NotADirectory(p) => write!(f, "{p}: not a directory"),
            FsError::IsADirectory(p) => write!(f, "{p}: is a directory"),
            FsError::AlreadyExists(p) => write!(f, "{p}: file exists"),
            FsError::NotEmpty(p) => write!(f, "{p}: directory not empty"),
            FsError::SymlinkLoop(p) => write!(f, "{p}: too many levels of symbolic links"),
            FsError::NotASymlink(p) => write!(f, "{p}: not a symlink"),
            FsError::NoSpace(p) => write!(f, "{p}: no space left on device"),
        }
    }
}

impl std::error::Error for FsError {}

const MAX_SYMLINK_FOLLOWS: usize = 40;

/// The in-memory filesystem.
#[derive(Debug, Clone)]
pub struct MemFs {
    nodes: Vec<Node>,
}

impl Default for MemFs {
    fn default() -> Self {
        MemFs::new()
    }
}

impl MemFs {
    /// An empty filesystem with a root directory.
    pub fn new() -> MemFs {
        MemFs {
            nodes: vec![Node {
                kind: NodeKind::Dir {
                    children: BTreeMap::new(),
                },
                meta: Meta::dir(),
            }],
        }
    }

    // ------------------------------------------------------------ lookup

    /// Resolve a path to an inode index without following a final symlink.
    fn lookup_no_follow(&self, path: &VPath) -> Result<usize, FsError> {
        let mut cur = 0usize; // root
        let segs = path.segments();
        for (i, seg) in segs.iter().enumerate() {
            let children = match &self.nodes[cur].kind {
                NodeKind::Dir { children } => children,
                _ => return Err(FsError::NotADirectory(VPath::parse(&segs[..i].join("/")))),
            };
            cur = *children
                .get(seg)
                .ok_or_else(|| FsError::NotFound(path.clone()))?;
        }
        Ok(cur)
    }

    /// Resolve a path, following intermediate and final symlinks.
    fn resolve(&self, path: &VPath) -> Result<(usize, VPath), FsError> {
        let mut current = path.clone();
        for _ in 0..MAX_SYMLINK_FOLLOWS {
            // Walk from root, expanding the first symlink encountered.
            let mut cur = 0usize;
            let segs = current.segments().to_vec();
            let mut expanded = false;
            for (i, seg) in segs.iter().enumerate() {
                let children = match &self.nodes[cur].kind {
                    NodeKind::Dir { children } => children,
                    _ => return Err(FsError::NotADirectory(current.clone())),
                };
                let next = *children
                    .get(seg)
                    .ok_or_else(|| FsError::NotFound(current.clone()))?;
                if let NodeKind::Symlink { target } = &self.nodes[next].kind {
                    // Rebuild the path: prefix + target + suffix.
                    let prefix = VPath::parse(&segs[..i].join("/"));
                    let mut new_path = prefix.join(target);
                    for rest in &segs[i + 1..] {
                        new_path = new_path.child(rest);
                    }
                    current = new_path;
                    expanded = true;
                    break;
                }
                cur = next;
            }
            if !expanded {
                return Ok((cur, current));
            }
        }
        Err(FsError::SymlinkLoop(path.clone()))
    }

    fn parent_dir_mut(&mut self, path: &VPath) -> Result<(usize, String), FsError> {
        let name = path
            .file_name()
            .ok_or_else(|| FsError::AlreadyExists(VPath::root()))?
            .to_string();
        let parent = path.parent().expect("non-root has a parent");
        let (idx, _) = self.resolve(&parent)?;
        match &self.nodes[idx].kind {
            NodeKind::Dir { .. } => Ok((idx, name)),
            _ => Err(FsError::NotADirectory(parent)),
        }
    }

    // ------------------------------------------------------------ queries

    /// True if the path resolves to anything.
    pub fn exists(&self, path: &VPath) -> bool {
        self.resolve(path).is_ok()
    }

    /// Stat a path (follows symlinks).
    pub fn stat(&self, path: &VPath) -> Result<Stat, FsError> {
        let (idx, _) = self.resolve(path)?;
        Ok(self.stat_node(idx))
    }

    /// Stat without following a final symlink (lstat).
    pub fn lstat(&self, path: &VPath) -> Result<Stat, FsError> {
        let idx = self.lookup_no_follow(path)?;
        Ok(self.stat_node(idx))
    }

    fn stat_node(&self, idx: usize) -> Stat {
        let node = &self.nodes[idx];
        let (kind, size) = match &node.kind {
            NodeKind::File { data } => (FileType::File, data.len() as u64),
            NodeKind::Dir { .. } => (FileType::Dir, 0),
            NodeKind::Symlink { target } => (FileType::Symlink, target.len() as u64),
        };
        Stat {
            meta: node.meta,
            kind,
            size,
        }
    }

    /// Read a file's contents (follows symlinks).
    pub fn read(&self, path: &VPath) -> Result<Arc<Vec<u8>>, FsError> {
        let (idx, real) = self.resolve(path)?;
        match &self.nodes[idx].kind {
            NodeKind::File { data } => Ok(Arc::clone(data)),
            NodeKind::Dir { .. } => Err(FsError::IsADirectory(real)),
            NodeKind::Symlink { .. } => unreachable!("resolve follows symlinks"),
        }
    }

    /// Read a symlink's target.
    pub fn readlink(&self, path: &VPath) -> Result<String, FsError> {
        let idx = self.lookup_no_follow(path)?;
        match &self.nodes[idx].kind {
            NodeKind::Symlink { target } => Ok(target.clone()),
            _ => Err(FsError::NotASymlink(path.clone())),
        }
    }

    /// List a directory's entry names, sorted.
    pub fn list(&self, path: &VPath) -> Result<Vec<String>, FsError> {
        let (idx, real) = self.resolve(path)?;
        match &self.nodes[idx].kind {
            NodeKind::Dir { children } => Ok(children.keys().cloned().collect()),
            _ => Err(FsError::NotADirectory(real)),
        }
    }

    /// Depth-first walk of all paths below `root` (not including `root`),
    /// sorted, without following symlinks.
    pub fn walk(&self, root: &VPath) -> Result<Vec<VPath>, FsError> {
        let (idx, real) = self.resolve(root)?;
        let mut out = Vec::new();
        self.walk_node(idx, &real, &mut out)?;
        Ok(out)
    }

    fn walk_node(&self, idx: usize, at: &VPath, out: &mut Vec<VPath>) -> Result<(), FsError> {
        if let NodeKind::Dir { children } = &self.nodes[idx].kind {
            for (name, child) in children {
                let p = at.child(name);
                out.push(p.clone());
                self.walk_node(*child, &p, out)?;
            }
        }
        Ok(())
    }

    /// Total bytes of file data under `root`.
    pub fn total_file_bytes(&self, root: &VPath) -> u64 {
        self.walk(root)
            .map(|paths| {
                paths
                    .iter()
                    .filter_map(|p| self.lstat(p).ok())
                    .filter(|s| s.kind == FileType::File)
                    .map(|s| s.size)
                    .sum()
            })
            .unwrap_or(0)
    }

    /// Count of regular files under `root`.
    pub fn file_count(&self, root: &VPath) -> usize {
        self.walk(root)
            .map(|paths| {
                paths
                    .iter()
                    .filter_map(|p| self.lstat(p).ok())
                    .filter(|s| s.kind == FileType::File)
                    .count()
            })
            .unwrap_or(0)
    }

    // ------------------------------------------------------------ mutation

    /// Create a directory; parents must exist.
    pub fn mkdir(&mut self, path: &VPath, meta: Meta) -> Result<(), FsError> {
        let (parent, name) = self.parent_dir_mut(path)?;
        let new_idx = self.nodes.len();
        match &mut self.nodes[parent].kind {
            NodeKind::Dir { children } => {
                if children.contains_key(&name) {
                    return Err(FsError::AlreadyExists(path.clone()));
                }
                children.insert(name, new_idx);
            }
            _ => unreachable!("parent_dir_mut checked"),
        }
        self.nodes.push(Node {
            kind: NodeKind::Dir {
                children: BTreeMap::new(),
            },
            meta,
        });
        Ok(())
    }

    /// Create a directory and any missing parents.
    pub fn mkdir_p(&mut self, path: &VPath) -> Result<(), FsError> {
        for anc in path.ancestors().skip(1).chain([path.clone()]) {
            match self.stat(&anc) {
                Ok(s) if s.kind == FileType::Dir => {}
                Ok(_) => return Err(FsError::NotADirectory(anc)),
                Err(FsError::NotFound(_)) => self.mkdir(&anc, Meta::dir())?,
                Err(e) => return Err(e),
            }
        }
        Ok(())
    }

    /// Write a file, creating or truncating it. Parents must exist.
    pub fn write(
        &mut self,
        path: &VPath,
        data: impl Into<Vec<u8>>,
        meta: Meta,
    ) -> Result<(), FsError> {
        let data = Arc::new(data.into());
        // Overwrite through a final symlink like open(O_TRUNC) would.
        if let Ok((idx, real)) = self.resolve(path) {
            match &mut self.nodes[idx].kind {
                NodeKind::File { data: old } => {
                    *old = data;
                    self.nodes[idx].meta = meta;
                    return Ok(());
                }
                NodeKind::Dir { .. } => return Err(FsError::IsADirectory(real)),
                NodeKind::Symlink { .. } => unreachable!("resolve follows symlinks"),
            }
        }
        let (parent, name) = self.parent_dir_mut(path)?;
        let new_idx = self.nodes.len();
        match &mut self.nodes[parent].kind {
            NodeKind::Dir { children } => {
                children.insert(name, new_idx);
            }
            _ => unreachable!("parent_dir_mut checked"),
        }
        self.nodes.push(Node {
            kind: NodeKind::File { data },
            meta,
        });
        Ok(())
    }

    /// Convenience: `mkdir_p(parent)` then write with default metadata.
    pub fn write_p(&mut self, path: &VPath, data: impl Into<Vec<u8>>) -> Result<(), FsError> {
        if let Some(parent) = path.parent() {
            self.mkdir_p(&parent)?;
        }
        self.write(path, data, Meta::file())
    }

    /// Create a symlink at `path` pointing to `target`.
    pub fn symlink(&mut self, path: &VPath, target: &str) -> Result<(), FsError> {
        if self.lookup_no_follow(path).is_ok() {
            return Err(FsError::AlreadyExists(path.clone()));
        }
        let (parent, name) = self.parent_dir_mut(path)?;
        let new_idx = self.nodes.len();
        match &mut self.nodes[parent].kind {
            NodeKind::Dir { children } => {
                children.insert(name, new_idx);
            }
            _ => unreachable!("parent_dir_mut checked"),
        }
        self.nodes.push(Node {
            kind: NodeKind::Symlink {
                target: target.to_string(),
            },
            meta: Meta {
                mode: 0o777,
                uid: 0,
                gid: 0,
            },
        });
        Ok(())
    }

    /// Remove a file or symlink (not a directory).
    pub fn unlink(&mut self, path: &VPath) -> Result<(), FsError> {
        let idx = self.lookup_no_follow(path)?;
        if matches!(self.nodes[idx].kind, NodeKind::Dir { .. }) {
            return Err(FsError::IsADirectory(path.clone()));
        }
        let (parent, name) = self.parent_dir_mut(path)?;
        if let NodeKind::Dir { children } = &mut self.nodes[parent].kind {
            children.remove(&name);
        }
        Ok(())
    }

    /// Remove an entire subtree (like `rm -r`). Removing the root empties
    /// the filesystem.
    pub fn remove_all(&mut self, path: &VPath) -> Result<(), FsError> {
        if path.is_root() {
            *self = MemFs::new();
            return Ok(());
        }
        let _ = self.lookup_no_follow(path)?;
        let (parent, name) = self.parent_dir_mut(path)?;
        if let NodeKind::Dir { children } = &mut self.nodes[parent].kind {
            children.remove(&name);
        }
        // Orphaned nodes stay in the slab; MemFs is not long-lived enough
        // in experiments for that to matter, and ids stay stable.
        Ok(())
    }

    /// Change mode bits.
    pub fn chmod(&mut self, path: &VPath, mode: u32) -> Result<(), FsError> {
        let (idx, _) = self.resolve(path)?;
        self.nodes[idx].meta.mode = mode;
        Ok(())
    }

    /// Change ownership.
    pub fn chown(&mut self, path: &VPath, uid: u32, gid: u32) -> Result<(), FsError> {
        let (idx, _) = self.resolve(path)?;
        self.nodes[idx].meta.uid = uid;
        self.nodes[idx].meta.gid = gid;
        Ok(())
    }

    // ------------------------------------------------------------ archive

    /// Serialize the subtree at `root` into an [`Archive`] (sorted walk,
    /// deterministic bytes).
    pub fn to_archive(&self, root: &VPath) -> Result<Archive, FsError> {
        let mut archive = Archive::new();
        for p in self.walk(root)? {
            let rel = p
                .rebase(root, &VPath::root())
                .expect("walked paths are under root")
                .to_string();
            let rel = rel.trim_start_matches('/').to_string();
            let idx = self.lookup_no_follow(&p)?;
            let node = &self.nodes[idx];
            let kind = match &node.kind {
                NodeKind::File { data } => EntryKind::File(data.as_ref().clone()),
                NodeKind::Dir { .. } => EntryKind::Dir,
                NodeKind::Symlink { target } => EntryKind::Symlink(target.clone()),
            };
            archive.push(Entry {
                path: rel,
                kind,
                mode: node.meta.mode,
                uid: node.meta.uid,
                gid: node.meta.gid,
            });
        }
        Ok(archive)
    }

    /// Materialize an archive under `root` (plain extraction: whiteout
    /// entries are ignored here — layer semantics live in `hpcc-oci`).
    pub fn apply_archive(&mut self, root: &VPath, archive: &Archive) -> Result<(), FsError> {
        self.mkdir_p(root)?;
        for e in &archive.entries {
            let at = root.join(&e.path);
            let meta = Meta {
                mode: e.mode,
                uid: e.uid,
                gid: e.gid,
            };
            match &e.kind {
                EntryKind::Dir => {
                    if !self.exists(&at) {
                        if let Some(parent) = at.parent() {
                            self.mkdir_p(&parent)?;
                        }
                        self.mkdir(&at, meta)?;
                    } else {
                        self.chmod(&at, e.mode)?;
                        self.chown(&at, e.uid, e.gid)?;
                    }
                }
                EntryKind::File(data) => {
                    if let Some(parent) = at.parent() {
                        self.mkdir_p(&parent)?;
                    }
                    self.write(&at, data.clone(), meta)?;
                }
                EntryKind::Symlink(target) => {
                    if let Some(parent) = at.parent() {
                        self.mkdir_p(&parent)?;
                    }
                    if self.lookup_no_follow(&at).is_ok() {
                        self.unlink(&at)?;
                    }
                    self.symlink(&at, target)?;
                }
                EntryKind::Whiteout | EntryKind::OpaqueDir => {}
            }
        }
        Ok(())
    }

    /// Content digest of the subtree at `root` (digest of its archive).
    pub fn tree_digest(&self, root: &VPath) -> Result<Digest, FsError> {
        Ok(self.to_archive(root)?.digest())
    }

    /// Digest of a single file's contents.
    pub fn file_digest(&self, path: &VPath) -> Result<Digest, FsError> {
        let data = self.read(path)?;
        let mut h = Sha256::new();
        h.update(&data);
        Ok(h.finalize())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(s: &str) -> VPath {
        VPath::parse(s)
    }

    fn sample() -> MemFs {
        let mut fs = MemFs::new();
        fs.write_p(&p("/usr/lib/libm.so"), b"ELF".to_vec()).unwrap();
        fs.write_p(&p("/etc/hosts"), b"127.0.0.1 localhost".to_vec())
            .unwrap();
        fs.symlink(&p("/usr/lib/libm.so.6"), "libm.so").unwrap();
        fs
    }

    #[test]
    fn write_and_read() {
        let fs = sample();
        assert_eq!(&**fs.read(&p("/usr/lib/libm.so")).unwrap(), b"ELF");
    }

    #[test]
    fn read_follows_symlinks() {
        let fs = sample();
        assert_eq!(&**fs.read(&p("/usr/lib/libm.so.6")).unwrap(), b"ELF");
        assert_eq!(fs.readlink(&p("/usr/lib/libm.so.6")).unwrap(), "libm.so");
    }

    #[test]
    fn symlinked_directories_resolve() {
        let mut fs = sample();
        fs.symlink(&p("/lib"), "/usr/lib").unwrap();
        assert_eq!(&**fs.read(&p("/lib/libm.so")).unwrap(), b"ELF");
        // Intermediate + final symlink chains.
        assert_eq!(&**fs.read(&p("/lib/libm.so.6")).unwrap(), b"ELF");
    }

    #[test]
    fn symlink_loops_detected() {
        let mut fs = MemFs::new();
        fs.symlink(&p("/a"), "/b").unwrap();
        fs.symlink(&p("/b"), "/a").unwrap();
        assert!(matches!(fs.read(&p("/a")), Err(FsError::SymlinkLoop(_))));
    }

    #[test]
    fn relative_symlink_targets() {
        let mut fs = MemFs::new();
        fs.write_p(&p("/opt/app/bin/tool"), b"x".to_vec()).unwrap();
        fs.symlink(&p("/opt/app/current"), "bin").unwrap();
        assert_eq!(&**fs.read(&p("/opt/app/current/tool")).unwrap(), b"x");
    }

    #[test]
    fn missing_paths_error() {
        let fs = sample();
        assert!(matches!(fs.read(&p("/nope")), Err(FsError::NotFound(_))));
        assert!(matches!(
            fs.list(&p("/etc/hosts")),
            Err(FsError::NotADirectory(_))
        ));
        assert!(matches!(fs.read(&p("/usr")), Err(FsError::IsADirectory(_))));
    }

    #[test]
    fn mkdir_p_is_idempotent() {
        let mut fs = MemFs::new();
        fs.mkdir_p(&p("/a/b/c")).unwrap();
        fs.mkdir_p(&p("/a/b/c")).unwrap();
        assert_eq!(fs.list(&p("/a/b")).unwrap(), vec!["c"]);
    }

    #[test]
    fn mkdir_p_through_file_fails() {
        let mut fs = MemFs::new();
        fs.write_p(&p("/a"), b"file".to_vec()).unwrap();
        assert!(matches!(
            fs.mkdir_p(&p("/a/b")),
            Err(FsError::NotADirectory(_))
        ));
    }

    #[test]
    fn overwrite_updates_contents() {
        let mut fs = sample();
        fs.write_p(&p("/etc/hosts"), b"new".to_vec()).unwrap();
        assert_eq!(&**fs.read(&p("/etc/hosts")).unwrap(), b"new");
    }

    #[test]
    fn unlink_and_remove_all() {
        let mut fs = sample();
        fs.unlink(&p("/etc/hosts")).unwrap();
        assert!(!fs.exists(&p("/etc/hosts")));
        assert!(matches!(
            fs.unlink(&p("/usr")),
            Err(FsError::IsADirectory(_))
        ));
        fs.remove_all(&p("/usr")).unwrap();
        assert!(!fs.exists(&p("/usr/lib/libm.so")));
    }

    #[test]
    fn list_is_sorted() {
        let mut fs = MemFs::new();
        fs.write_p(&p("/d/zebra"), vec![]).unwrap();
        fs.write_p(&p("/d/apple"), vec![]).unwrap();
        assert_eq!(fs.list(&p("/d")).unwrap(), vec!["apple", "zebra"]);
    }

    #[test]
    fn walk_enumerates_everything() {
        let fs = sample();
        let paths: Vec<String> = fs
            .walk(&VPath::root())
            .unwrap()
            .iter()
            .map(|x| x.to_string())
            .collect();
        assert!(paths.contains(&"/usr/lib/libm.so".to_string()));
        assert!(paths.contains(&"/etc".to_string()));
        assert_eq!(fs.file_count(&VPath::root()), 2);
        assert_eq!(fs.total_file_bytes(&VPath::root()), 3 + 19);
    }

    #[test]
    fn chmod_chown_stat() {
        let mut fs = sample();
        fs.chmod(&p("/etc/hosts"), 0o600).unwrap();
        fs.chown(&p("/etc/hosts"), 1000, 100).unwrap();
        let st = fs.stat(&p("/etc/hosts")).unwrap();
        assert_eq!(st.meta.mode, 0o600);
        assert_eq!((st.meta.uid, st.meta.gid), (1000, 100));
        assert_eq!(st.kind, FileType::File);
        assert_eq!(st.size, 19);
    }

    #[test]
    fn lstat_sees_the_link_itself() {
        let fs = sample();
        let st = fs.lstat(&p("/usr/lib/libm.so.6")).unwrap();
        assert_eq!(st.kind, FileType::Symlink);
        let followed = fs.stat(&p("/usr/lib/libm.so.6")).unwrap();
        assert_eq!(followed.kind, FileType::File);
    }

    #[test]
    fn setuid_detection() {
        let mut fs = MemFs::new();
        fs.write_p(&p("/bin/starter"), vec![1]).unwrap();
        fs.chmod(&p("/bin/starter"), 0o4755).unwrap();
        assert!(fs.stat(&p("/bin/starter")).unwrap().meta.is_setuid());
    }

    #[test]
    fn archive_roundtrip_preserves_tree() {
        let fs = sample();
        let archive = fs.to_archive(&VPath::root()).unwrap();
        let mut restored = MemFs::new();
        restored.apply_archive(&VPath::root(), &archive).unwrap();
        assert_eq!(
            restored.tree_digest(&VPath::root()).unwrap(),
            fs.tree_digest(&VPath::root()).unwrap()
        );
        assert_eq!(&**restored.read(&p("/usr/lib/libm.so.6")).unwrap(), b"ELF");
    }

    #[test]
    fn subtree_archive_is_relative() {
        let fs = sample();
        let archive = fs.to_archive(&p("/usr")).unwrap();
        let paths: Vec<&str> = archive.entries.iter().map(|e| e.path.as_str()).collect();
        assert_eq!(paths, vec!["lib", "lib/libm.so", "lib/libm.so.6"]);
    }

    #[test]
    fn tree_digest_detects_changes() {
        let fs = sample();
        let d1 = fs.tree_digest(&VPath::root()).unwrap();
        let mut fs2 = sample();
        fs2.chmod(&p("/etc/hosts"), 0o600).unwrap();
        assert_ne!(d1, fs2.tree_digest(&VPath::root()).unwrap());
    }

    #[test]
    fn file_digest_matches_content_hash() {
        let fs = sample();
        assert_eq!(
            fs.file_digest(&p("/usr/lib/libm.so")).unwrap(),
            hpcc_crypto::sha256::sha256(b"ELF")
        );
    }

    #[test]
    fn symlink_over_existing_fails() {
        let mut fs = sample();
        assert!(matches!(
            fs.symlink(&p("/etc/hosts"), "elsewhere"),
            Err(FsError::AlreadyExists(_))
        ));
    }
}

//! # hpcc-vfs
//!
//! The filesystem substrate of the containerization testbed:
//!
//! * [`path`] — normalized absolute paths with kernel-style `..` clamping.
//! * [`fs`] — an in-memory POSIX-like filesystem (files, dirs, symlinks,
//!   mode/uid/gid, symlink resolution with loop detection, archive
//!   import/export, content digests).
//! * [`overlay`] — union mounts: ordered read-only lower layers under a
//!   writable upper, with whiteouts, opaque directories, copy-up and
//!   flattening. This is the overlayfs/fuse-overlayfs mechanism OCI
//!   bundles rely on and HPC engines often replace.
//! * [`squash`] — immutable single-file images with per-file compression
//!   and random access (the SquashFS/SIF-partition analogue).
//! * [`seekable`] — the lazy-pull variant: a manifest-first index plus
//!   content-addressed compressed chunk ranges, so engines can launch on
//!   the index alone and fault ranges in on first touch.
//! * [`driver`] — access drivers (in-kernel SquashFS, SquashFUSE, plain
//!   directory, kernel/FUSE overlay) that perform real reads and charge
//!   calibrated logical-time costs, reproducing the §4.1.2 IOPS/latency
//!   relationships.

pub mod driver;
pub mod fs;
pub mod overlay;
pub mod path;
pub mod seekable;
pub mod squash;

pub use driver::{DirDriver, DriverError, DriverProfile, FsDriver, OverlayDriver, SquashDriver};
pub use fs::{FileType, FsError, MemFs, Meta, Stat};
pub use overlay::OverlayFs;
pub use path::VPath;
pub use seekable::{ChunkRef, SeekableEntry, SeekableIndex, DEFAULT_CHUNK_SIZE};
pub use squash::{SquashEntry, SquashError, SquashImage};

//! Filesystem access drivers with logical-time cost models.
//!
//! Section 4.1.2 of the survey: "benchmarks comparing SquashFUSE and the
//! in-kernel SquashFS show a magnitude lower IOPS for random access and a
//! much higher latency" (citing CSCS's squashfs-mount measurements). The
//! engines differ exactly in *which driver* they use — Shifter/Sarus mount
//! via a setuid helper with the in-kernel driver, Podman-HPC/Charliecloud
//! use SquashFUSE, Charliecloud/ENROOT can use a plain unpacked directory.
//!
//! Every driver here performs the *real* work (decompression, overlay
//! resolution) and charges a calibrated logical-time cost to a
//! [`SimClock`]: a per-operation overhead (syscall vs FUSE round trips),
//! a bandwidth term, and a decompression-CPU term. The calibration
//! constants reproduce the ≈10× random-read IOPS gap.

use crate::fs::{FsError, MemFs};
use crate::overlay::OverlayFs;
use crate::path::VPath;
use crate::squash::{SquashError, SquashImage};
use hpcc_sim::{SimClock, SimSpan};
use std::sync::Arc;

/// Cost parameters of one access path.
#[derive(Debug, Clone, Copy)]
pub struct DriverProfile {
    /// Fixed overhead per operation (syscall path, FUSE round trips).
    pub per_op: SimSpan,
    /// Sequential read bandwidth of this path, bytes/second.
    pub read_bandwidth: f64,
    /// Decompression CPU cost per *output* byte, nanoseconds.
    pub decompress_ns_per_byte: f64,
}

impl DriverProfile {
    /// In-kernel SquashFS: cheap syscalls, fast page-cache-backed reads,
    /// kernel-side decompression.
    pub fn kernel_squash() -> DriverProfile {
        DriverProfile {
            per_op: SimSpan::micros(4),
            read_bandwidth: 2.0 * (1u64 << 30) as f64,
            decompress_ns_per_byte: 0.20,
        }
    }

    /// SquashFUSE: every operation crosses kernel↔userspace twice; lower
    /// effective bandwidth; userspace decompression.
    pub fn fuse_squash() -> DriverProfile {
        DriverProfile {
            per_op: SimSpan::micros(55),
            read_bandwidth: 0.8 * (1u64 << 30) as f64,
            decompress_ns_per_byte: 0.25,
        }
    }

    /// Unpacked directory on node-local storage: no decompression, plain
    /// VFS path.
    pub fn local_dir() -> DriverProfile {
        DriverProfile {
            per_op: SimSpan::micros(6),
            read_bandwidth: 3.0 * (1u64 << 30) as f64,
            decompress_ns_per_byte: 0.0,
        }
    }

    /// In-kernel OverlayFS: near-native with a small per-layer lookup tax
    /// folded into `per_op` by [`OverlayDriver`].
    pub fn kernel_overlay() -> DriverProfile {
        DriverProfile {
            per_op: SimSpan::micros(5),
            read_bandwidth: 2.5 * (1u64 << 30) as f64,
            decompress_ns_per_byte: 0.0,
        }
    }

    /// fuse-overlayfs: "heavy I/O must be absorbed by the CPU" (§4.1.2).
    pub fn fuse_overlay() -> DriverProfile {
        DriverProfile {
            per_op: SimSpan::micros(48),
            read_bandwidth: 0.9 * (1u64 << 30) as f64,
            decompress_ns_per_byte: 0.0,
        }
    }

    /// Cost of reading `stored` bytes producing `orig` output bytes.
    pub fn read_cost(&self, stored: u64, orig: u64) -> SimSpan {
        let io = SimSpan::from_secs_f64(stored as f64 / self.read_bandwidth);
        let cpu = SimSpan::from_secs_f64(orig as f64 * self.decompress_ns_per_byte / 1e9);
        self.per_op + io + cpu
    }
}

/// Driver errors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DriverError {
    Squash(SquashError),
    Fs(FsError),
}

impl From<SquashError> for DriverError {
    fn from(e: SquashError) -> DriverError {
        DriverError::Squash(e)
    }
}
impl From<FsError> for DriverError {
    fn from(e: FsError) -> DriverError {
        DriverError::Fs(e)
    }
}

impl std::fmt::Display for DriverError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DriverError::Squash(e) => write!(f, "{e}"),
            DriverError::Fs(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for DriverError {}

/// A read-only filesystem view with a cost model.
pub trait FsDriver: Send + Sync {
    /// Human-readable driver name (appears in experiment output).
    fn name(&self) -> &'static str;

    /// Read one file, charging the clock.
    fn read_file(&self, path: &str, clock: &SimClock) -> Result<Vec<u8>, DriverError>;

    /// Metadata-only operation (stat/open), charging the per-op cost.
    fn touch(&self, path: &str, clock: &SimClock) -> Result<u64, DriverError>;

    /// All file paths (no cost — used by workload generators).
    fn file_paths(&self) -> Vec<String>;
}

/// Squash image through a chosen profile (kernel or FUSE).
pub struct SquashDriver {
    image: Arc<SquashImage>,
    profile: DriverProfile,
    name: &'static str,
}

impl SquashDriver {
    pub fn kernel(image: Arc<SquashImage>) -> SquashDriver {
        SquashDriver {
            image,
            profile: DriverProfile::kernel_squash(),
            name: "squashfs-kernel",
        }
    }

    pub fn fuse(image: Arc<SquashImage>) -> SquashDriver {
        SquashDriver {
            image,
            profile: DriverProfile::fuse_squash(),
            name: "squashfuse",
        }
    }

    pub fn with_profile(
        image: Arc<SquashImage>,
        profile: DriverProfile,
        name: &'static str,
    ) -> SquashDriver {
        SquashDriver {
            image,
            profile,
            name,
        }
    }

    pub fn profile(&self) -> DriverProfile {
        self.profile
    }
}

impl FsDriver for SquashDriver {
    fn name(&self) -> &'static str {
        self.name
    }

    fn read_file(&self, path: &str, clock: &SimClock) -> Result<Vec<u8>, DriverError> {
        let (stored, orig) = self.image.stored_len(path)?;
        clock.advance(self.profile.read_cost(stored, orig));
        Ok(self.image.read_file(path)?)
    }

    fn touch(&self, path: &str, clock: &SimClock) -> Result<u64, DriverError> {
        clock.advance(self.profile.per_op);
        let (_, orig) = self.image.stored_len(path)?;
        Ok(orig)
    }

    fn file_paths(&self) -> Vec<String> {
        self.image
            .paths()
            .filter(|p| {
                matches!(
                    self.image.entry(p),
                    Some(crate::squash::SquashEntry::File { .. })
                )
            })
            .map(str::to_string)
            .collect()
    }
}

/// Unpacked directory tree (node-local or shared storage decides the
/// profile; the shared-filesystem contention model lives in
/// `hpcc-storage` and composes on top).
pub struct DirDriver {
    fs: Arc<MemFs>,
    root: VPath,
    profile: DriverProfile,
    name: &'static str,
}

impl DirDriver {
    pub fn local(fs: Arc<MemFs>, root: VPath) -> DirDriver {
        DirDriver {
            fs,
            root,
            profile: DriverProfile::local_dir(),
            name: "dir-local",
        }
    }

    pub fn with_profile(
        fs: Arc<MemFs>,
        root: VPath,
        profile: DriverProfile,
        name: &'static str,
    ) -> DirDriver {
        DirDriver {
            fs,
            root,
            profile,
            name,
        }
    }
}

impl FsDriver for DirDriver {
    fn name(&self) -> &'static str {
        self.name
    }

    fn read_file(&self, path: &str, clock: &SimClock) -> Result<Vec<u8>, DriverError> {
        let at = self.root.join(path);
        let data = self.fs.read(&at)?;
        clock.advance(self.profile.read_cost(data.len() as u64, data.len() as u64));
        Ok(data.as_ref().clone())
    }

    fn touch(&self, path: &str, clock: &SimClock) -> Result<u64, DriverError> {
        clock.advance(self.profile.per_op);
        let at = self.root.join(path);
        Ok(self.fs.stat(&at)?.size)
    }

    fn file_paths(&self) -> Vec<String> {
        self.fs
            .walk(&self.root)
            .map(|paths| {
                paths
                    .into_iter()
                    .filter(|p| {
                        self.fs
                            .lstat(p)
                            .map(|s| s.kind == crate::fs::FileType::File)
                            .unwrap_or(false)
                    })
                    .filter_map(|p| {
                        p.rebase(&self.root, &VPath::root())
                            .map(|r| r.to_string().trim_start_matches('/').to_string())
                    })
                    .collect()
            })
            .unwrap_or_default()
    }
}

/// Overlay (union) view through kernel or FUSE overlayfs. Each lookup
/// pays a per-layer tax on top of the base per-op cost.
pub struct OverlayDriver {
    overlay: Arc<OverlayFs>,
    profile: DriverProfile,
    per_layer: SimSpan,
    name: &'static str,
}

impl OverlayDriver {
    pub fn kernel(overlay: Arc<OverlayFs>) -> OverlayDriver {
        OverlayDriver {
            overlay,
            profile: DriverProfile::kernel_overlay(),
            per_layer: SimSpan::micros(1),
            name: "overlayfs-kernel",
        }
    }

    pub fn fuse(overlay: Arc<OverlayFs>) -> OverlayDriver {
        OverlayDriver {
            overlay,
            profile: DriverProfile::fuse_overlay(),
            per_layer: SimSpan::micros(8),
            name: "fuse-overlayfs",
        }
    }

    fn layer_tax(&self) -> SimSpan {
        self.per_layer * (self.overlay.lower_count() as u64 + 1)
    }
}

impl FsDriver for OverlayDriver {
    fn name(&self) -> &'static str {
        self.name
    }

    fn read_file(&self, path: &str, clock: &SimClock) -> Result<Vec<u8>, DriverError> {
        let at = VPath::root().join(path);
        let data = self.overlay.read(&at)?;
        clock.advance(
            self.profile.read_cost(data.len() as u64, data.len() as u64) + self.layer_tax(),
        );
        Ok(data.as_ref().clone())
    }

    fn touch(&self, path: &str, clock: &SimClock) -> Result<u64, DriverError> {
        clock.advance(self.profile.per_op + self.layer_tax());
        let at = VPath::root().join(path);
        Ok(self.overlay.stat(&at)?.size)
    }

    fn file_paths(&self) -> Vec<String> {
        fn collect(o: &OverlayFs, at: &VPath, out: &mut Vec<String>) {
            if let Ok(names) = o.list(at) {
                for n in names {
                    let p = at.child(&n);
                    match o.stat(&p) {
                        Ok(st) if st.kind == crate::fs::FileType::Dir => collect(o, &p, out),
                        Ok(st) if st.kind == crate::fs::FileType::File => {
                            out.push(p.to_string().trim_start_matches('/').to_string())
                        }
                        _ => {}
                    }
                }
            }
        }
        let mut out = Vec::new();
        collect(&self.overlay, &VPath::root(), &mut out);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hpcc_codec::compress::Codec;
    use hpcc_sim::SimTime;

    fn p(s: &str) -> VPath {
        VPath::parse(s)
    }

    /// A tree of `n` files of `size` bytes each.
    fn tree(n: usize, size: usize) -> MemFs {
        let mut fs = MemFs::new();
        for i in 0..n {
            let path = format!("/pkg/mod{}/file{}.py", i % 16, i);
            fs.write_p(&p(&path), vec![(i % 251) as u8; size]).unwrap();
        }
        fs
    }

    fn image(n: usize, size: usize) -> Arc<SquashImage> {
        Arc::new(SquashImage::build(&tree(n, size), &VPath::root(), Codec::Lz).unwrap())
    }

    #[test]
    fn drivers_return_identical_data() {
        let fs = Arc::new(tree(8, 512));
        let img = image(8, 512);
        let clock = SimClock::new();
        let kernel = SquashDriver::kernel(Arc::clone(&img));
        let fuse = SquashDriver::fuse(img);
        let dir = DirDriver::local(fs, VPath::root());
        for path in kernel.file_paths() {
            let a = kernel.read_file(&path, &clock).unwrap();
            let b = fuse.read_file(&path, &clock).unwrap();
            let c = dir.read_file(&path, &clock).unwrap();
            assert_eq!(a, b);
            assert_eq!(a, c);
        }
    }

    #[test]
    fn fuse_squash_is_an_order_of_magnitude_slower_on_random_4k_reads() {
        // The §4.1.2 claim, reproduced: random 4 KiB reads.
        let img = image(64, 4096);
        let kernel = SquashDriver::kernel(Arc::clone(&img));
        let fuse = SquashDriver::fuse(img);
        let paths = kernel.file_paths();

        let kc = SimClock::new();
        let fc = SimClock::new();
        for path in &paths {
            kernel.read_file(path, &kc).unwrap();
            fuse.read_file(path, &fc).unwrap();
        }
        let kt = kc.now().since(SimTime::ZERO).as_secs_f64();
        let ft = fc.now().since(SimTime::ZERO).as_secs_f64();
        let ratio = ft / kt;
        assert!(
            (6.0..20.0).contains(&ratio),
            "expected ~10x gap, got {ratio:.1}x (kernel {kt:.6}s fuse {ft:.6}s)"
        );
    }

    #[test]
    fn per_op_dominates_small_reads_bandwidth_dominates_large() {
        let profile = DriverProfile::kernel_squash();
        let small = profile.read_cost(512, 512);
        let large = profile.read_cost(64 << 20, 64 << 20);
        // Small read ≈ per_op; large read ≫ per_op.
        assert!(small < profile.per_op * 2);
        assert!(large > profile.per_op * 100);
    }

    #[test]
    fn touch_charges_per_op_only() {
        let img = image(4, 1024);
        let drv = SquashDriver::kernel(img);
        let clock = SimClock::new();
        let size = drv.touch("pkg/mod0/file0.py", &clock).unwrap();
        assert_eq!(size, 1024);
        assert_eq!(
            clock.now().since(SimTime::ZERO),
            DriverProfile::kernel_squash().per_op
        );
    }

    #[test]
    fn overlay_driver_reads_through_union() {
        let mut lower = MemFs::new();
        lower.write_p(&p("/base/lib.so"), vec![1, 2, 3]).unwrap();
        let mut ov = OverlayFs::new(vec![Arc::new(lower)]);
        ov.mkdir_p(&p("/app")).unwrap();
        ov.write(&p("/app/run"), vec![9], crate::fs::Meta::file())
            .unwrap();
        let ov = Arc::new(ov);
        let clock = SimClock::new();
        let drv = OverlayDriver::kernel(Arc::clone(&ov));
        assert_eq!(drv.read_file("base/lib.so", &clock).unwrap(), vec![1, 2, 3]);
        assert_eq!(drv.read_file("app/run", &clock).unwrap(), vec![9]);
        let mut files = drv.file_paths();
        files.sort();
        assert_eq!(files, vec!["app/run", "base/lib.so"]);
    }

    #[test]
    fn fuse_overlay_slower_than_kernel_overlay() {
        let mut lower = MemFs::new();
        for i in 0..32 {
            lower.write_p(&p(&format!("/f{i}")), vec![0; 1024]).unwrap();
        }
        let ov = Arc::new(OverlayFs::new(vec![Arc::new(lower)]));
        let k = OverlayDriver::kernel(Arc::clone(&ov));
        let f = OverlayDriver::fuse(ov);
        let kc = SimClock::new();
        let fc = SimClock::new();
        for path in k.file_paths() {
            k.read_file(&path, &kc).unwrap();
            f.read_file(&path, &fc).unwrap();
        }
        assert!(fc.now() > kc.now());
    }

    #[test]
    fn layer_count_taxes_overlay_lookups() {
        let layers: Vec<Arc<MemFs>> = (0..8)
            .map(|i| {
                let mut fs = MemFs::new();
                fs.write_p(&p(&format!("/layer{i}")), vec![0; 16]).unwrap();
                Arc::new(fs)
            })
            .collect();
        let mut shallow_fs = MemFs::new();
        shallow_fs.write_p(&p("/layer0"), vec![0; 16]).unwrap();
        let deep = OverlayDriver::kernel(Arc::new(OverlayFs::new(layers)));
        let shallow = OverlayDriver::kernel(Arc::new(OverlayFs::new(vec![Arc::new(shallow_fs)])));
        let dc = SimClock::new();
        let sc = SimClock::new();
        deep.touch("layer0", &dc).unwrap();
        shallow.touch("layer0", &sc).unwrap();
        assert!(dc.now() > sc.now(), "more layers, more lookup cost");
    }

    #[test]
    fn missing_file_costs_nothing_extra_but_errors() {
        let img = image(1, 64);
        let drv = SquashDriver::fuse(img);
        let clock = SimClock::new();
        assert!(drv.read_file("missing", &clock).is_err());
    }
}

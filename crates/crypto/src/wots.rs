//! Hash-based signatures: Winternitz one-time signatures (WOTS) under a
//! Merkle many-time public key (an XMSS-like construction).
//!
//! The survey compares engines and registries on *signature support* (GPG
//! for Singularity/SIF, sigstore/cosign for Podman and the registries).
//! What those rows need from the crypto layer is: keypairs with stable
//! public identities, detached signatures over digests, verification that
//! fails on any tamper, and statefulness managed safely. A hash-based
//! scheme provides all of that from SHA-256 alone, with no bignum
//! arithmetic — which is why it is the substitution of choice here (see
//! DESIGN.md).
//!
//! Parameters: Winternitz `w = 16` (4-bit digits), 64 message digits +
//! 3 checksum digits = 67 chains over 32-byte values.

#[cfg(test)]
use crate::sha256::sha256;
use crate::sha256::{Digest, Sha256};
use serde::{Deserialize, Serialize};

const DIGITS_MSG: usize = 64;
const DIGITS_CSUM: usize = 3;
const CHAINS: usize = DIGITS_MSG + DIGITS_CSUM;
const W: u32 = 16;

/// Domain-separated chain step: `F(chain, step, x)`.
fn chain_step(chain: usize, step: u32, x: &[u8; 32]) -> [u8; 32] {
    let mut h = Sha256::new();
    h.update(b"hpcc-wots-chain");
    h.update(&(chain as u32).to_be_bytes());
    h.update(&step.to_be_bytes());
    h.update(x);
    h.finalize().0
}

/// Apply `n` chain steps starting from `start` within chain `chain`.
fn chain_apply(chain: usize, start: u32, n: u32, mut x: [u8; 32]) -> [u8; 32] {
    for s in start..start + n {
        x = chain_step(chain, s, &x);
    }
    x
}

/// Map a 32-byte digest to 67 base-16 digits (message digits + checksum).
fn digits(msg: &Digest) -> [u8; CHAINS] {
    let mut out = [0u8; CHAINS];
    for (i, byte) in msg.0.iter().enumerate() {
        out[i * 2] = byte >> 4;
        out[i * 2 + 1] = byte & 0xf;
    }
    let csum: u32 = out[..DIGITS_MSG].iter().map(|d| (W - 1) - *d as u32).sum();
    // csum <= 64 * 15 = 960 < 16^3, three base-16 digits.
    out[DIGITS_MSG] = ((csum >> 8) & 0xf) as u8;
    out[DIGITS_MSG + 1] = ((csum >> 4) & 0xf) as u8;
    out[DIGITS_MSG + 2] = (csum & 0xf) as u8;
    out
}

/// A one-time secret key: 67 chain seeds, derived from a master seed and a
/// leaf index.
fn ots_secret(master: &[u8; 32], leaf: u32) -> Vec<[u8; 32]> {
    (0..CHAINS)
        .map(|c| {
            let mut h = Sha256::new();
            h.update(b"hpcc-wots-sk");
            h.update(master);
            h.update(&leaf.to_be_bytes());
            h.update(&(c as u32).to_be_bytes());
            h.finalize().0
        })
        .collect()
}

/// Compressed OTS public key for a leaf.
fn ots_public(master: &[u8; 32], leaf: u32) -> Digest {
    let sk = ots_secret(master, leaf);
    let mut h = Sha256::new();
    h.update(b"hpcc-wots-pk");
    for (c, s) in sk.iter().enumerate() {
        h.update(&chain_apply(c, 0, W - 1, *s));
    }
    h.finalize()
}

fn merkle_parent(l: &Digest, r: &Digest) -> Digest {
    let mut h = Sha256::new();
    h.update(b"hpcc-wots-node");
    h.update(&l.0);
    h.update(&r.0);
    h.finalize()
}

/// A many-time public key: the Merkle root over `2^height` OTS leaves.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct PublicKey {
    pub root: Digest,
    pub height: u8,
}

impl PublicKey {
    /// A short printable key identifier (like a GPG key id).
    pub fn key_id(&self) -> String {
        self.root.short()
    }
}

/// A detached signature: the leaf index, the WOTS chain values, and the
/// Merkle authentication path.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Signature {
    pub leaf: u32,
    chains: Vec<[u8; 32]>,
    auth_path: Vec<Digest>,
}

impl Signature {
    /// Serialized size in bytes (for the registry storage accounting).
    pub fn size_bytes(&self) -> usize {
        4 + self.chains.len() * 32 + self.auth_path.len() * 32
    }

    /// Serialize to bytes (fixed layout: leaf, chain count, chains, path
    /// count, path nodes).
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(self.size_bytes() + 8);
        out.extend_from_slice(&self.leaf.to_be_bytes());
        out.extend_from_slice(&(self.chains.len() as u32).to_be_bytes());
        for c in &self.chains {
            out.extend_from_slice(c);
        }
        out.extend_from_slice(&(self.auth_path.len() as u32).to_be_bytes());
        for d in &self.auth_path {
            out.extend_from_slice(&d.0);
        }
        out
    }

    /// Parse from bytes produced by [`Signature::to_bytes`].
    pub fn from_bytes(data: &[u8]) -> Option<Signature> {
        fn take<'a>(data: &mut &'a [u8], n: usize) -> Option<&'a [u8]> {
            if data.len() < n {
                return None;
            }
            let (head, rest) = data.split_at(n);
            *data = rest;
            Some(head)
        }
        let mut d = data;
        let leaf = u32::from_be_bytes(take(&mut d, 4)?.try_into().ok()?);
        let nc = u32::from_be_bytes(take(&mut d, 4)?.try_into().ok()?) as usize;
        if nc > 1024 {
            return None;
        }
        let mut chains = Vec::with_capacity(nc);
        for _ in 0..nc {
            chains.push(take(&mut d, 32)?.try_into().ok()?);
        }
        let np = u32::from_be_bytes(take(&mut d, 4)?.try_into().ok()?) as usize;
        if np > 64 {
            return None;
        }
        let mut auth_path = Vec::with_capacity(np);
        for _ in 0..np {
            let arr: [u8; 32] = take(&mut d, 32)?.try_into().ok()?;
            auth_path.push(Digest(arr));
        }
        if !d.is_empty() {
            return None;
        }
        Some(Signature {
            leaf,
            chains,
            auth_path,
        })
    }
}

impl PublicKey {
    /// Serialize to bytes.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(33);
        out.extend_from_slice(&self.root.0);
        out.push(self.height);
        out
    }

    /// Parse from bytes produced by [`PublicKey::to_bytes`].
    pub fn from_bytes(data: &[u8]) -> Option<PublicKey> {
        if data.len() != 33 {
            return None;
        }
        let mut root = [0u8; 32];
        root.copy_from_slice(&data[..32]);
        Some(PublicKey {
            root: Digest(root),
            height: data[32],
        })
    }
}

/// Errors from signing.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SignError {
    /// All one-time leaves have been used; the key must be rotated.
    KeyExhausted,
}

impl std::fmt::Display for SignError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("all one-time signature leaves used; rotate the key")
    }
}

impl std::error::Error for SignError {}

/// A stateful many-time signing key.
#[derive(Clone, Serialize, Deserialize)]
pub struct Keypair {
    master: [u8; 32],
    height: u8,
    next_leaf: u32,
    /// All levels of the Merkle tree, leaves first.
    tree: Vec<Vec<Digest>>,
}

impl std::fmt::Debug for Keypair {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "Keypair(key_id={}, used={}/{})",
            self.public().key_id(),
            self.next_leaf,
            1u32 << self.height
        )
    }
}

impl Keypair {
    /// Generate a keypair with `2^height` one-time leaves from a master
    /// seed. `height` up to 10 keeps generation fast for tests.
    pub fn generate(seed: &[u8], height: u8) -> Keypair {
        assert!(height <= 12, "keep key generation tractable");
        let master = {
            let mut h = Sha256::new();
            h.update(b"hpcc-wots-master");
            h.update(seed);
            h.finalize().0
        };
        let n = 1usize << height;
        let leaves: Vec<Digest> = (0..n as u32).map(|i| ots_public(&master, i)).collect();
        let mut tree = vec![leaves];
        while tree.last().expect("non-empty").len() > 1 {
            let prev = tree.last().expect("non-empty");
            let next: Vec<Digest> = prev
                .chunks(2)
                .map(|pair| merkle_parent(&pair[0], &pair[1]))
                .collect();
            tree.push(next);
        }
        Keypair {
            master,
            height,
            next_leaf: 0,
            tree,
        }
    }

    /// The verifying key.
    pub fn public(&self) -> PublicKey {
        PublicKey {
            root: self.tree.last().expect("non-empty")[0],
            height: self.height,
        }
    }

    /// Leaves remaining before the key is exhausted.
    pub fn remaining(&self) -> u32 {
        (1u32 << self.height) - self.next_leaf
    }

    /// Sign a message digest, consuming one leaf.
    pub fn sign(&mut self, message: &Digest) -> Result<Signature, SignError> {
        if self.next_leaf >= 1u32 << self.height {
            return Err(SignError::KeyExhausted);
        }
        let leaf = self.next_leaf;
        self.next_leaf += 1;

        let sk = ots_secret(&self.master, leaf);
        let d = digits(message);
        let chains: Vec<[u8; 32]> = (0..CHAINS)
            .map(|c| chain_apply(c, 0, d[c] as u32, sk[c]))
            .collect();

        // Merkle authentication path.
        let mut auth_path = Vec::with_capacity(self.height as usize);
        let mut idx = leaf as usize;
        for level in 0..self.height as usize {
            let sibling = idx ^ 1;
            auth_path.push(self.tree[level][sibling]);
            idx >>= 1;
        }

        Ok(Signature {
            leaf,
            chains,
            auth_path,
        })
    }
}

/// Verify a detached signature over `message` against `public`.
pub fn verify(public: &PublicKey, message: &Digest, sig: &Signature) -> bool {
    if sig.chains.len() != CHAINS || sig.auth_path.len() != public.height as usize {
        return false;
    }
    if sig.leaf >= 1u32 << public.height {
        return false;
    }
    // Recompute the candidate OTS public key by completing every chain.
    let d = digits(message);
    let mut h = Sha256::new();
    h.update(b"hpcc-wots-pk");
    #[allow(clippy::needless_range_loop)] // c indexes two arrays in lockstep
    for c in 0..CHAINS {
        let completed = chain_apply(c, d[c] as u32, (W - 1) - d[c] as u32, sig.chains[c]);
        h.update(&completed);
    }
    let mut node = h.finalize();

    // Walk the authentication path to the root.
    let mut idx = sig.leaf;
    for sibling in &sig.auth_path {
        node = if idx & 1 == 0 {
            merkle_parent(&node, sibling)
        } else {
            merkle_parent(sibling, &node)
        };
        idx >>= 1;
    }
    node == public.root
}

#[cfg(test)]
mod tests {
    use super::*;

    fn msg(s: &[u8]) -> Digest {
        sha256(s)
    }

    #[test]
    fn sign_verify_roundtrip() {
        let mut kp = Keypair::generate(b"seed", 2);
        let pk = kp.public();
        let m = msg(b"manifest");
        let sig = kp.sign(&m).unwrap();
        assert!(verify(&pk, &m, &sig));
    }

    #[test]
    fn wrong_message_rejected() {
        let mut kp = Keypair::generate(b"seed", 2);
        let pk = kp.public();
        let sig = kp.sign(&msg(b"a")).unwrap();
        assert!(!verify(&pk, &msg(b"b"), &sig));
    }

    #[test]
    fn wrong_key_rejected() {
        let mut kp = Keypair::generate(b"seed-1", 2);
        let other = Keypair::generate(b"seed-2", 2).public();
        let m = msg(b"m");
        let sig = kp.sign(&m).unwrap();
        assert!(!verify(&other, &m, &sig));
    }

    #[test]
    fn all_leaves_usable_then_exhausted() {
        let mut kp = Keypair::generate(b"seed", 2);
        let pk = kp.public();
        let m = msg(b"m");
        for i in 0..4 {
            let sig = kp.sign(&m).unwrap();
            assert_eq!(sig.leaf, i);
            assert!(verify(&pk, &m, &sig), "leaf {i}");
        }
        assert_eq!(kp.sign(&m), Err(SignError::KeyExhausted));
        assert_eq!(kp.remaining(), 0);
    }

    #[test]
    fn tampered_chain_value_rejected() {
        let mut kp = Keypair::generate(b"seed", 1);
        let pk = kp.public();
        let m = msg(b"m");
        let mut sig = kp.sign(&m).unwrap();
        sig.chains[0][0] ^= 1;
        assert!(!verify(&pk, &m, &sig));
    }

    #[test]
    fn tampered_auth_path_rejected() {
        let mut kp = Keypair::generate(b"seed", 2);
        let pk = kp.public();
        let m = msg(b"m");
        let mut sig = kp.sign(&m).unwrap();
        sig.auth_path[0].0[0] ^= 1;
        assert!(!verify(&pk, &m, &sig));
    }

    #[test]
    fn forged_leaf_index_rejected() {
        let mut kp = Keypair::generate(b"seed", 2);
        let pk = kp.public();
        let m = msg(b"m");
        let mut sig = kp.sign(&m).unwrap();
        sig.leaf = 3; // wrong position for this auth path
        assert!(!verify(&pk, &m, &sig));
        sig.leaf = 99; // out of range entirely
        assert!(!verify(&pk, &m, &sig));
    }

    #[test]
    fn deterministic_keygen() {
        let a = Keypair::generate(b"same", 2).public();
        let b = Keypair::generate(b"same", 2).public();
        assert_eq!(a, b);
    }

    #[test]
    fn key_id_is_short_and_stable() {
        let pk = Keypair::generate(b"seed", 1).public();
        assert_eq!(pk.key_id().len(), 12);
        assert_eq!(pk.key_id(), Keypair::generate(b"seed", 1).public().key_id());
    }

    #[test]
    fn signature_size_accounting() {
        let mut kp = Keypair::generate(b"seed", 3);
        let sig = kp.sign(&msg(b"m")).unwrap();
        assert_eq!(sig.size_bytes(), 4 + 67 * 32 + 3 * 32);
    }

    #[test]
    fn digits_checksum_within_range() {
        // The checksum must always fit in three base-16 digits.
        for input in [&b"a"[..], b"bb", b"ccc", b""] {
            let d = digits(&sha256(input));
            assert!(d.iter().all(|x| *x < 16));
        }
    }
}

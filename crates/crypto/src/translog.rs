//! Append-only Merkle transparency log (RFC 6962 construction).
//!
//! Models sigstore's Rekor: registries that support cosign-style signing
//! append signature entries to a public log, and clients verify *inclusion*
//! rather than trusting the registry. The log produces inclusion proofs
//! against a signed tree head and detects any attempt to rewrite history.

use crate::sha256::{Digest, Sha256};
use serde::{Deserialize, Serialize};

fn leaf_hash(entry: &[u8]) -> Digest {
    // RFC 6962 domain separation: 0x00 prefix for leaves.
    let mut h = Sha256::new();
    h.update(&[0x00]);
    h.update(entry);
    h.finalize()
}

fn node_hash(l: &Digest, r: &Digest) -> Digest {
    // 0x01 prefix for interior nodes.
    let mut h = Sha256::new();
    h.update(&[0x01]);
    h.update(&l.0);
    h.update(&r.0);
    h.finalize()
}

/// Root hash over `leaves[lo..hi)` (RFC 6962 Merkle Tree Hash).
fn mth(leaves: &[Digest]) -> Digest {
    match leaves.len() {
        0 => {
            // MTH of the empty tree: hash of the empty string with the leaf
            // prefix omitted per RFC 6962 (hash of empty input).
            Sha256::new().finalize()
        }
        1 => leaves[0],
        n => {
            let k = largest_power_of_two_lt(n);
            node_hash(&mth(&leaves[..k]), &mth(&leaves[k..]))
        }
    }
}

fn largest_power_of_two_lt(n: usize) -> usize {
    debug_assert!(n > 1);
    let mut k = 1;
    while k * 2 < n {
        k *= 2;
    }
    k
}

/// Inclusion proof for one leaf against a tree head.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct InclusionProof {
    pub leaf_index: u64,
    pub tree_size: u64,
    pub path: Vec<Digest>,
}

/// A signed-tree-head analogue (unsigned in the model; the signature over
/// it would come from [`crate::wots`] at the service layer).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct TreeHead {
    pub size: u64,
    pub root: Digest,
}

/// The append-only log.
#[derive(Debug, Default, Clone)]
pub struct TransparencyLog {
    leaves: Vec<Digest>,
    entries: Vec<Vec<u8>>,
}

impl TransparencyLog {
    pub fn new() -> TransparencyLog {
        TransparencyLog::default()
    }

    /// Append an entry, returning its index.
    pub fn append(&mut self, entry: &[u8]) -> u64 {
        self.leaves.push(leaf_hash(entry));
        self.entries.push(entry.to_vec());
        (self.leaves.len() - 1) as u64
    }

    /// Number of entries.
    pub fn size(&self) -> u64 {
        self.leaves.len() as u64
    }

    /// Current tree head.
    pub fn head(&self) -> TreeHead {
        TreeHead {
            size: self.size(),
            root: mth(&self.leaves),
        }
    }

    /// Entry bytes at an index.
    pub fn entry(&self, index: u64) -> Option<&[u8]> {
        self.entries.get(index as usize).map(|v| v.as_slice())
    }

    /// Inclusion proof for `index` in the current tree.
    pub fn prove_inclusion(&self, index: u64) -> Option<InclusionProof> {
        if index >= self.size() {
            return None;
        }
        let mut path = Vec::new();
        build_path(&self.leaves, index as usize, &mut path);
        Some(InclusionProof {
            leaf_index: index,
            tree_size: self.size(),
            path,
        })
    }
}

fn build_path(leaves: &[Digest], index: usize, path: &mut Vec<Digest>) {
    let n = leaves.len();
    if n <= 1 {
        return;
    }
    let k = largest_power_of_two_lt(n);
    if index < k {
        build_path(&leaves[..k], index, path);
        path.push(mth(&leaves[k..]));
    } else {
        build_path(&leaves[k..], index - k, path);
        path.push(mth(&leaves[..k]));
    }
}

/// Verify an inclusion proof for `entry` against `head`.
pub fn verify_inclusion(head: &TreeHead, entry: &[u8], proof: &InclusionProof) -> bool {
    if proof.tree_size != head.size || proof.leaf_index >= head.size {
        return false;
    }
    let computed = root_from_path(
        leaf_hash(entry),
        proof.leaf_index,
        proof.tree_size,
        &proof.path,
    );
    computed == Some(head.root)
}

/// Recompute the root from a leaf hash and an RFC 6962 path.
fn root_from_path(leaf: Digest, index: u64, size: u64, path: &[Digest]) -> Option<Digest> {
    fn go(leaf: Digest, index: u64, size: u64, path: &[Digest]) -> Option<(Digest, usize)> {
        if size == 1 {
            return Some((leaf, 0));
        }
        let k = {
            let mut k = 1u64;
            while k * 2 < size {
                k *= 2;
            }
            k
        };
        if index < k {
            let (sub, used) = go(leaf, index, k, path)?;
            let sibling = path.get(used)?;
            Some((node_hash(&sub, sibling), used + 1))
        } else {
            let (sub, used) = go(leaf, index - k, size - k, path)?;
            let sibling = path.get(used)?;
            Some((node_hash(sibling, &sub), used + 1))
        }
    }
    let (root, used) = go(leaf, index, size, path)?;
    if used == path.len() {
        Some(root)
    } else {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn empty_and_single_heads() {
        let mut log = TransparencyLog::new();
        let empty = log.head();
        assert_eq!(empty.size, 0);
        log.append(b"first");
        let one = log.head();
        assert_eq!(one.size, 1);
        assert_ne!(one.root, empty.root);
    }

    #[test]
    fn inclusion_verifies_for_all_entries() {
        let mut log = TransparencyLog::new();
        let entries: Vec<Vec<u8>> = (0..13u8).map(|i| vec![i; 5]).collect();
        for e in &entries {
            log.append(e);
        }
        let head = log.head();
        for (i, e) in entries.iter().enumerate() {
            let proof = log.prove_inclusion(i as u64).unwrap();
            assert!(verify_inclusion(&head, e, &proof), "entry {i}");
        }
    }

    #[test]
    fn wrong_entry_fails_inclusion() {
        let mut log = TransparencyLog::new();
        log.append(b"a");
        log.append(b"b");
        let head = log.head();
        let proof = log.prove_inclusion(0).unwrap();
        assert!(!verify_inclusion(&head, b"not-a", &proof));
    }

    #[test]
    fn stale_head_fails() {
        let mut log = TransparencyLog::new();
        log.append(b"a");
        let old_head = log.head();
        log.append(b"b");
        let proof = log.prove_inclusion(1).unwrap();
        assert!(!verify_inclusion(&old_head, b"b", &proof));
    }

    #[test]
    fn truncated_path_fails() {
        let mut log = TransparencyLog::new();
        for i in 0..8u8 {
            log.append(&[i]);
        }
        let head = log.head();
        let mut proof = log.prove_inclusion(3).unwrap();
        proof.path.pop();
        assert!(!verify_inclusion(&head, &[3], &proof));
    }

    #[test]
    fn appending_changes_root() {
        let mut log = TransparencyLog::new();
        let mut roots = Vec::new();
        for i in 0..10u8 {
            log.append(&[i]);
            roots.push(log.head().root);
        }
        for w in roots.windows(2) {
            assert_ne!(w[0], w[1]);
        }
    }

    #[test]
    fn out_of_range_proof_is_none() {
        let mut log = TransparencyLog::new();
        log.append(b"x");
        assert!(log.prove_inclusion(1).is_none());
    }

    #[test]
    fn entries_are_retrievable() {
        let mut log = TransparencyLog::new();
        let idx = log.append(b"payload");
        assert_eq!(log.entry(idx), Some(&b"payload"[..]));
        assert_eq!(log.entry(idx + 1), None);
    }

    /// The exact property pull-side verification (hpcc-build's
    /// `verified_pull`) relies on: under interleaved appends from many
    /// publishers, a proof minted at tree size n verifies against the
    /// size-n head — and against *only* that head. Once later appends
    /// land, the old proof must be rejected with the new root, and a
    /// freshly minted proof for the same entry must verify again.
    #[test]
    fn interleaved_appends_proofs_pin_their_tree_size() {
        let mut log = TransparencyLog::new();
        // Three publishers interleave appends; after each append, mint a
        // proof for the new entry and snapshot the head it binds to.
        let mut minted: Vec<(Vec<u8>, InclusionProof, TreeHead)> = Vec::new();
        for round in 0..5u64 {
            for publisher in ["alpha", "beta", "gamma"] {
                let entry = format!("{publisher}:{round}").into_bytes();
                let idx = log.append(&entry);
                let proof = log.prove_inclusion(idx).unwrap();
                let head = log.head();
                assert_eq!(proof.tree_size, head.size, "proof pins mint-time size");
                assert!(
                    verify_inclusion(&head, &entry, &proof),
                    "fresh proof verifies against its own head (size {})",
                    head.size
                );
                minted.push((entry, proof, head));
            }
        }

        let final_head = log.head();
        for (i, (entry, proof, mint_head)) in minted.iter().enumerate() {
            // Every historical proof still verifies against the head it
            // was minted under…
            assert!(
                verify_inclusion(mint_head, entry, proof),
                "entry {i}: proof stays valid against its mint-time head"
            );
            // …but is stale against any later head (the last proof is
            // the only one minted at the final size).
            if proof.tree_size != final_head.size {
                assert!(
                    !verify_inclusion(&final_head, entry, proof),
                    "entry {i}: stale proof (size {}) must fail against head size {}",
                    proof.tree_size,
                    final_head.size
                );
            }
            // A re-minted proof under the final tree verifies again.
            let fresh = log.prove_inclusion(i as u64).unwrap();
            assert!(
                verify_inclusion(&final_head, entry, &fresh),
                "entry {i}: re-minted proof verifies under the final head"
            );
        }
    }

    proptest! {
        #[test]
        fn inclusion_holds_for_random_logs(n in 1usize..40, probe in 0usize..40) {
            let mut log = TransparencyLog::new();
            for i in 0..n {
                log.append(format!("entry-{i}").as_bytes());
            }
            let head = log.head();
            let probe = probe % n;
            let proof = log.prove_inclusion(probe as u64).unwrap();
            let entry = format!("entry-{probe}");
            prop_assert!(verify_inclusion(&head, entry.as_bytes(), &proof));
        }
    }
}

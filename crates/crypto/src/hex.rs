//! Hexadecimal encoding/decoding for digest display and parsing.

/// Encode bytes as lowercase hex.
pub fn encode(bytes: &[u8]) -> String {
    let mut s = String::with_capacity(bytes.len() * 2);
    for b in bytes {
        s.push(char::from_digit((b >> 4) as u32, 16).expect("nibble"));
        s.push(char::from_digit((b & 0xf) as u32, 16).expect("nibble"));
    }
    s
}

/// Decode a hex string (case-insensitive). Returns `None` on odd length or
/// non-hex characters.
pub fn decode(s: &str) -> Option<Vec<u8>> {
    if !s.len().is_multiple_of(2) {
        return None;
    }
    let bytes = s.as_bytes();
    let mut out = Vec::with_capacity(s.len() / 2);
    for pair in bytes.chunks_exact(2) {
        let hi = (pair[0] as char).to_digit(16)?;
        let lo = (pair[1] as char).to_digit(16)?;
        out.push(((hi << 4) | lo) as u8);
    }
    Some(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn encodes_known_values() {
        assert_eq!(encode(&[]), "");
        assert_eq!(encode(&[0x00, 0xff, 0x1a]), "00ff1a");
    }

    #[test]
    fn decodes_mixed_case() {
        assert_eq!(decode("00FF1a"), Some(vec![0x00, 0xff, 0x1a]));
    }

    #[test]
    fn rejects_bad_input() {
        assert_eq!(decode("abc"), None, "odd length");
        assert_eq!(decode("zz"), None, "non-hex");
    }

    proptest! {
        #[test]
        fn roundtrip(bytes in proptest::collection::vec(any::<u8>(), 0..512)) {
            prop_assert_eq!(decode(&encode(&bytes)).unwrap(), bytes);
        }
    }
}

//! HMAC-SHA256 (RFC 2104).
//!
//! Used as the authentication tag in the encrypt-then-MAC AEAD and for
//! keyed cache-integrity checks in engines that share converted images
//! between users.

use crate::sha256::{Digest, Sha256};

const BLOCK: usize = 64;

/// Compute `HMAC-SHA256(key, message)`.
pub fn hmac_sha256(key: &[u8], message: &[u8]) -> Digest {
    // Keys longer than the block size are hashed first.
    let mut k = [0u8; BLOCK];
    if key.len() > BLOCK {
        let d = crate::sha256::sha256(key);
        k[..32].copy_from_slice(&d.0);
    } else {
        k[..key.len()].copy_from_slice(key);
    }

    let mut ipad = [0x36u8; BLOCK];
    let mut opad = [0x5cu8; BLOCK];
    for i in 0..BLOCK {
        ipad[i] ^= k[i];
        opad[i] ^= k[i];
    }

    let mut inner = Sha256::new();
    inner.update(&ipad).update(message);
    let inner_digest = inner.finalize();

    let mut outer = Sha256::new();
    outer.update(&opad).update(&inner_digest.0);
    outer.finalize()
}

/// Constant-time comparison of two MACs (avoids modelling timing leaks even
/// though the testbed is simulated — the comparison API is part of the
/// security surface the survey discusses).
pub fn verify_mac(expected: &Digest, actual: &Digest) -> bool {
    let mut diff = 0u8;
    for (a, b) in expected.0.iter().zip(actual.0.iter()) {
        diff |= a ^ b;
    }
    diff == 0
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn rfc4231_case_2() {
        // Key = "Jefe", Data = "what do ya want for nothing?"
        let mac = hmac_sha256(b"Jefe", b"what do ya want for nothing?");
        assert_eq!(
            crate::hex::encode(&mac.0),
            "5bdcc146bf60754e6a042426089575c75a003f089d2739839dec58b964ec3843"
        );
    }

    #[test]
    fn rfc4231_case_1() {
        // Key = 20 bytes of 0x0b, Data = "Hi There"
        let key = [0x0bu8; 20];
        let mac = hmac_sha256(&key, b"Hi There");
        assert_eq!(
            crate::hex::encode(&mac.0),
            "b0344c61d8db38535ca8afceaf0bf12b881dc200c9833da726e9376c2e32cff7"
        );
    }

    #[test]
    fn long_key_is_hashed_first() {
        let long_key = vec![0xaau8; 131];
        let short = crate::sha256::sha256(&long_key);
        let via_long = hmac_sha256(&long_key, b"msg");
        let via_short = hmac_sha256(&short.0, b"msg");
        assert_eq!(via_long, via_short);
    }

    #[test]
    fn verify_mac_detects_mismatch() {
        let a = hmac_sha256(b"k", b"m");
        let mut b = a;
        b.0[31] ^= 1;
        assert!(verify_mac(&a, &a));
        assert!(!verify_mac(&a, &b));
    }

    proptest! {
        #[test]
        fn key_sensitivity(k1 in proptest::collection::vec(any::<u8>(), 1..64),
                           k2 in proptest::collection::vec(any::<u8>(), 1..64),
                           msg in proptest::collection::vec(any::<u8>(), 0..256)) {
            prop_assume!(k1 != k2);
            prop_assert_ne!(hmac_sha256(&k1, &msg), hmac_sha256(&k2, &msg));
        }

        #[test]
        fn message_sensitivity(key in proptest::collection::vec(any::<u8>(), 1..64),
                               m1 in proptest::collection::vec(any::<u8>(), 0..256),
                               m2 in proptest::collection::vec(any::<u8>(), 0..256)) {
            prop_assume!(m1 != m2);
            prop_assert_ne!(hmac_sha256(&key, &m1), hmac_sha256(&key, &m2));
        }
    }
}

//! Authenticated encryption: ChaCha20 + HMAC-SHA256, encrypt-then-MAC.
//!
//! Models ocicrypt-style encrypted layers and SIF encrypted partitions.
//! The MAC covers `nonce || aad_len || aad || ciphertext` so truncation and
//! context-swap attacks are detected, which is what the "encrypted
//! container support" rows of Table 2 actually test.

use crate::chacha20::{self, KEY_LEN, NONCE_LEN};
use crate::hmac::{hmac_sha256, verify_mac};
use crate::sha256::Digest;
use serde::{Deserialize, Serialize};

/// A symmetric AEAD key: independent cipher and MAC subkeys derived from a
/// master key.
#[derive(Clone, Serialize, Deserialize)]
pub struct AeadKey {
    enc: [u8; KEY_LEN],
    mac: [u8; KEY_LEN],
}

impl std::fmt::Debug for AeadKey {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        // Never print key material.
        f.write_str("AeadKey(..)")
    }
}

impl AeadKey {
    /// Derive subkeys from a master secret (HKDF-like: HMAC with distinct
    /// info strings).
    pub fn derive(master: &[u8]) -> AeadKey {
        let enc = hmac_sha256(master, b"hpcc-aead-enc").0;
        let mac = hmac_sha256(master, b"hpcc-aead-mac").0;
        AeadKey { enc, mac }
    }

    /// A fingerprint identifying the key without revealing it.
    pub fn fingerprint(&self) -> Digest {
        hmac_sha256(&self.mac, b"hpcc-aead-fingerprint")
    }
}

/// A sealed (encrypted + authenticated) blob.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Sealed {
    pub nonce: [u8; NONCE_LEN],
    pub ciphertext: Vec<u8>,
    pub tag: [u8; 32],
}

impl Sealed {
    /// Serialize: nonce || tag || ciphertext.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(NONCE_LEN + 32 + self.ciphertext.len());
        out.extend_from_slice(&self.nonce);
        out.extend_from_slice(&self.tag);
        out.extend_from_slice(&self.ciphertext);
        out
    }

    /// Parse bytes produced by [`Sealed::to_bytes`].
    pub fn from_bytes(data: &[u8]) -> Option<Sealed> {
        if data.len() < NONCE_LEN + 32 {
            return None;
        }
        let mut nonce = [0u8; NONCE_LEN];
        nonce.copy_from_slice(&data[..NONCE_LEN]);
        let mut tag = [0u8; 32];
        tag.copy_from_slice(&data[NONCE_LEN..NONCE_LEN + 32]);
        Some(Sealed {
            nonce,
            tag,
            ciphertext: data[NONCE_LEN + 32..].to_vec(),
        })
    }
}

/// Errors from [`open`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AeadError {
    /// MAC verification failed: wrong key, tampered ciphertext, or wrong
    /// associated data.
    Unauthentic,
}

impl std::fmt::Display for AeadError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("ciphertext failed authentication")
    }
}

impl std::error::Error for AeadError {}

fn mac_input(nonce: &[u8; NONCE_LEN], aad: &[u8], ciphertext: &[u8]) -> Vec<u8> {
    let mut buf = Vec::with_capacity(NONCE_LEN + 8 + aad.len() + ciphertext.len());
    buf.extend_from_slice(nonce);
    buf.extend_from_slice(&(aad.len() as u64).to_be_bytes());
    buf.extend_from_slice(aad);
    buf.extend_from_slice(ciphertext);
    buf
}

/// Encrypt `plaintext` with associated data `aad` under `key`/`nonce`.
pub fn seal(key: &AeadKey, nonce: [u8; NONCE_LEN], aad: &[u8], plaintext: &[u8]) -> Sealed {
    let ciphertext = chacha20::apply(&key.enc, &nonce, 1, plaintext);
    let tag = hmac_sha256(&key.mac, &mac_input(&nonce, aad, &ciphertext)).0;
    Sealed {
        nonce,
        ciphertext,
        tag,
    }
}

/// Verify and decrypt a sealed blob.
pub fn open(key: &AeadKey, aad: &[u8], sealed: &Sealed) -> Result<Vec<u8>, AeadError> {
    let expected = hmac_sha256(&key.mac, &mac_input(&sealed.nonce, aad, &sealed.ciphertext));
    if !verify_mac(&expected, &Digest(sealed.tag)) {
        return Err(AeadError::Unauthentic);
    }
    Ok(chacha20::apply(
        &key.enc,
        &sealed.nonce,
        1,
        &sealed.ciphertext,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn key() -> AeadKey {
        AeadKey::derive(b"test master secret")
    }

    #[test]
    fn seal_open_roundtrip() {
        let k = key();
        let sealed = seal(&k, [1; 12], b"image-ref", b"layer bytes");
        assert_eq!(open(&k, b"image-ref", &sealed).unwrap(), b"layer bytes");
    }

    #[test]
    fn tampered_ciphertext_rejected() {
        let k = key();
        let mut sealed = seal(&k, [1; 12], b"", b"payload");
        sealed.ciphertext[0] ^= 0x80;
        assert_eq!(open(&k, b"", &sealed), Err(AeadError::Unauthentic));
    }

    #[test]
    fn tampered_tag_rejected() {
        let k = key();
        let mut sealed = seal(&k, [1; 12], b"", b"payload");
        sealed.tag[0] ^= 1;
        assert_eq!(open(&k, b"", &sealed), Err(AeadError::Unauthentic));
    }

    #[test]
    fn wrong_aad_rejected() {
        let k = key();
        let sealed = seal(&k, [1; 12], b"repo-a", b"payload");
        assert_eq!(open(&k, b"repo-b", &sealed), Err(AeadError::Unauthentic));
    }

    #[test]
    fn wrong_key_rejected() {
        let sealed = seal(&key(), [1; 12], b"", b"payload");
        let other = AeadKey::derive(b"other master");
        assert_eq!(open(&other, b"", &sealed), Err(AeadError::Unauthentic));
    }

    #[test]
    fn fingerprint_is_stable_and_keyed() {
        assert_eq!(key().fingerprint(), key().fingerprint());
        assert_ne!(key().fingerprint(), AeadKey::derive(b"other").fingerprint());
    }

    #[test]
    fn debug_hides_key_material() {
        assert_eq!(format!("{:?}", key()), "AeadKey(..)");
    }

    proptest! {
        #[test]
        fn roundtrip_any(data in proptest::collection::vec(any::<u8>(), 0..1024),
                         aad in proptest::collection::vec(any::<u8>(), 0..64),
                         nonce in any::<[u8; 12]>()) {
            let k = key();
            let sealed = seal(&k, nonce, &aad, &data);
            prop_assert_eq!(open(&k, &aad, &sealed).unwrap(), data);
        }
    }
}

//! ChaCha20 stream cipher (RFC 8439 construction).
//!
//! Encrypted-container support (Table 2's last column, SIF encrypted
//! partitions, ocicrypt-style layer encryption) needs a real cipher. The
//! keystream generator below follows RFC 8439: 32-byte key, 12-byte nonce,
//! 32-bit block counter.

/// Key size in bytes.
pub const KEY_LEN: usize = 32;
/// Nonce size in bytes.
pub const NONCE_LEN: usize = 12;

#[inline]
fn quarter_round(state: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize) {
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(16);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(12);
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(8);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(7);
}

/// Produce one 64-byte keystream block for (key, nonce, counter).
pub fn block(key: &[u8; KEY_LEN], nonce: &[u8; NONCE_LEN], counter: u32) -> [u8; 64] {
    let mut state = [0u32; 16];
    // "expand 32-byte k"
    state[0] = 0x6170_7865;
    state[1] = 0x3320_646e;
    state[2] = 0x7962_2d32;
    state[3] = 0x6b20_6574;
    for i in 0..8 {
        state[4 + i] = u32::from_le_bytes(key[i * 4..i * 4 + 4].try_into().expect("4 bytes"));
    }
    state[12] = counter;
    for i in 0..3 {
        state[13 + i] = u32::from_le_bytes(nonce[i * 4..i * 4 + 4].try_into().expect("4 bytes"));
    }

    let mut work = state;
    for _ in 0..10 {
        // Column rounds.
        quarter_round(&mut work, 0, 4, 8, 12);
        quarter_round(&mut work, 1, 5, 9, 13);
        quarter_round(&mut work, 2, 6, 10, 14);
        quarter_round(&mut work, 3, 7, 11, 15);
        // Diagonal rounds.
        quarter_round(&mut work, 0, 5, 10, 15);
        quarter_round(&mut work, 1, 6, 11, 12);
        quarter_round(&mut work, 2, 7, 8, 13);
        quarter_round(&mut work, 3, 4, 9, 14);
    }

    let mut out = [0u8; 64];
    for i in 0..16 {
        let word = work[i].wrapping_add(state[i]);
        out[i * 4..i * 4 + 4].copy_from_slice(&word.to_le_bytes());
    }
    out
}

/// XOR `data` in place with the ChaCha20 keystream starting at block
/// `initial_counter`. Encryption and decryption are the same operation.
pub fn xor_stream(
    key: &[u8; KEY_LEN],
    nonce: &[u8; NONCE_LEN],
    initial_counter: u32,
    data: &mut [u8],
) {
    let mut counter = initial_counter;
    for chunk in data.chunks_mut(64) {
        let ks = block(key, nonce, counter);
        for (b, k) in chunk.iter_mut().zip(ks.iter()) {
            *b ^= k;
        }
        counter = counter
            .checked_add(1)
            .expect("ChaCha20 counter overflow: message too long");
    }
}

/// Convenience: encrypt (or decrypt) into a new buffer.
pub fn apply(
    key: &[u8; KEY_LEN],
    nonce: &[u8; NONCE_LEN],
    initial_counter: u32,
    data: &[u8],
) -> Vec<u8> {
    let mut out = data.to_vec();
    xor_stream(key, nonce, initial_counter, &mut out);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn key() -> [u8; 32] {
        let mut k = [0u8; 32];
        for (i, b) in k.iter_mut().enumerate() {
            *b = i as u8;
        }
        k
    }

    fn nonce() -> [u8; 12] {
        [7u8; 12]
    }

    #[test]
    fn rfc8439_block_test_vector() {
        // RFC 8439 §2.3.2: key 00..1f, nonce 000000090000004a00000000, ctr 1.
        let k = key();
        let mut n = [0u8; 12];
        n[3] = 0x09;
        n[7] = 0x4a;
        let ks = block(&k, &n, 1);
        assert_eq!(
            crate::hex::encode(&ks),
            "10f1e7e4d13b5915500fdd1fa32071c4c7d1f4c733c068030422aa9ac3d46c4e\
             d2826446079faa0914c2d705d98b02a2b5129cd1de164eb9cbd083e8a2503c4e"
        );
    }

    #[test]
    fn encrypt_decrypt_roundtrip() {
        let msg = b"container layer payload".to_vec();
        let ct = apply(&key(), &nonce(), 0, &msg);
        assert_ne!(ct, msg);
        let pt = apply(&key(), &nonce(), 0, &ct);
        assert_eq!(pt, msg);
    }

    #[test]
    fn different_nonce_different_stream() {
        let msg = vec![0u8; 128];
        let a = apply(&key(), &[1u8; 12], 0, &msg);
        let b = apply(&key(), &[2u8; 12], 0, &msg);
        assert_ne!(a, b);
    }

    #[test]
    fn counter_offsets_are_consistent() {
        // Encrypting [block0 | block1] must equal encrypting block1 alone
        // with counter 1.
        let msg = vec![0xabu8; 128];
        let full = apply(&key(), &nonce(), 0, &msg);
        let tail = apply(&key(), &nonce(), 1, &msg[64..]);
        assert_eq!(&full[64..], &tail[..]);
    }

    #[test]
    fn empty_message_is_fine() {
        assert_eq!(apply(&key(), &nonce(), 0, &[]), Vec::<u8>::new());
    }

    proptest! {
        #[test]
        fn roundtrip_any_payload(data in proptest::collection::vec(any::<u8>(), 0..2048),
                                 kseed in any::<u8>(), nseed in any::<u8>()) {
            let k = [kseed; 32];
            let n = [nseed; 12];
            let ct = apply(&k, &n, 0, &data);
            prop_assert_eq!(apply(&k, &n, 0, &ct), data);
        }
    }
}

//! # hpcc-crypto
//!
//! The cryptographic substrate for the containerization testbed, built from
//! scratch so that the signing / verification / encryption feature rows of
//! the survey's Tables 2 and 5 exercise real code paths:
//!
//! * [`mod@sha256`] — SHA-256 (FIPS 180-4), validated against the standard
//!   `"abc"` / empty-string vectors. Used for layer digests and
//!   content-addressable storage throughout the stack.
//! * [`hmac`] — HMAC-SHA256 (RFC 2104), validated against an RFC 4231 test
//!   vector. Used as the MAC in the encrypt-then-MAC AEAD.
//! * [`chacha20`] — the ChaCha20 stream cipher (RFC 8439 construction).
//!   Used for encrypted containers (the SIF-style encrypted partition).
//! * [`aead`] — encrypt-then-MAC AEAD composed from ChaCha20 + HMAC-SHA256.
//! * [`wots`] — Winternitz one-time signatures plus a Merkle-tree many-time
//!   key ("GPG-like" detached signatures without bignum arithmetic; the
//!   survey's signing comparisons only need sign/verify semantics, key
//!   identity and tamper detection).
//! * [`translog`] — an append-only Merkle transparency log with inclusion
//!   proofs, modelling sigstore/Rekor for the cosign-style rows.
//! * [`hex`] — hexadecimal encoding/decoding for digest display.

pub mod aead;
pub mod chacha20;
pub mod hex;
pub mod hmac;
pub mod sha256;
pub mod translog;
pub mod wots;

pub use aead::{open, seal, AeadError, AeadKey};
pub use hmac::hmac_sha256;
pub use sha256::{sha256, Digest, Sha256};
pub use translog::TransparencyLog;
pub use wots::{Keypair, PublicKey, Signature};

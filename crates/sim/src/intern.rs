//! Global string interning for hot-path labels.
//!
//! The observability layer names things constantly: every span end used to
//! build `span.<name>.count` / `span.<name>.ns` strings and hash them into
//! the registry's `BTreeMap`s — two allocations plus two tree walks per
//! event. [`Symbol`] replaces the string in all hot structures with a `u32`
//! into a process-global, append-only, leaky table: comparisons and hashing
//! become integer ops, and the backing `&'static str` is resolved only on
//! the cold paths (exports, registry admission).
//!
//! Determinism note: symbol *ids* depend on interning order, which can vary
//! across processes (test threads race to intern first). Ids therefore must
//! never leak into exported bytes or sort keys — exporters always go
//! through [`Symbol::as_str`]. The golden-trace harness pins this: TSV and
//! Chrome exports are byte-identical across runs regardless of interning
//! order.
//!
//! Use the [`crate::sym!`] macro at call sites with literal names: it
//! caches the `Symbol` in a per-site `OnceLock` so the table lock is taken
//! once per site, not once per event.

use parking_lot::Mutex;
use std::collections::HashMap;
use std::fmt;
use std::sync::OnceLock;

/// An interned string: a copyable, integer-comparable handle to a name in
/// the process-global symbol table. Equality and hashing are on the id;
/// two `Symbol`s are equal iff their strings are equal.
#[derive(Clone, Copy, PartialEq, Eq, Hash)]
pub struct Symbol(u32);

struct Interner {
    map: HashMap<&'static str, u32>,
    strings: Vec<&'static str>,
}

fn interner() -> &'static Mutex<Interner> {
    static INTERNER: OnceLock<Mutex<Interner>> = OnceLock::new();
    INTERNER.get_or_init(|| {
        Mutex::new(Interner {
            map: HashMap::new(),
            strings: Vec::new(),
        })
    })
}

impl Symbol {
    /// Intern `s`, returning its stable handle. The first interning of a
    /// given string leaks one copy for the process lifetime; repeat calls
    /// are a hash lookup. Prefer [`crate::sym!`] for literals on hot paths.
    pub fn intern(s: &str) -> Symbol {
        let mut int = interner().lock();
        if let Some(&id) = int.map.get(s) {
            return Symbol(id);
        }
        let leaked: &'static str = Box::leak(s.to_string().into_boxed_str());
        let id = u32::try_from(int.strings.len()).expect("symbol table overflow");
        int.strings.push(leaked);
        int.map.insert(leaked, id);
        Symbol(id)
    }

    /// The interned string. `'static` because the table is leaky.
    pub fn as_str(self) -> &'static str {
        interner().lock().strings[self.0 as usize]
    }

    /// Raw table index — diagnostics only. Ids are interning-order
    /// dependent and must never reach exported bytes or sort keys.
    pub fn id(self) -> u32 {
        self.0
    }

    /// Number of distinct strings interned so far (diagnostics).
    pub fn table_len() -> usize {
        interner().lock().strings.len()
    }
}

impl fmt::Display for Symbol {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

impl fmt::Debug for Symbol {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:?}", self.as_str())
    }
}

impl From<&str> for Symbol {
    fn from(s: &str) -> Symbol {
        Symbol::intern(s)
    }
}

impl From<&String> for Symbol {
    fn from(s: &String) -> Symbol {
        Symbol::intern(s)
    }
}

impl From<String> for Symbol {
    fn from(s: String) -> Symbol {
        Symbol::intern(&s)
    }
}

impl PartialEq<&str> for Symbol {
    fn eq(&self, other: &&str) -> bool {
        self.as_str() == *other
    }
}

impl PartialEq<str> for Symbol {
    fn eq(&self, other: &str) -> bool {
        self.as_str() == other
    }
}

impl PartialEq<Symbol> for &str {
    fn eq(&self, other: &Symbol) -> bool {
        *self == other.as_str()
    }
}

impl PartialEq<Symbol> for str {
    fn eq(&self, other: &Symbol) -> bool {
        self == other.as_str()
    }
}

/// Intern a label once per call site. Expands to a `OnceLock<Symbol>`
/// static, so after the first hit the expression is a copy of a `u32`
/// wrapper — no table lock, no hashing.
///
/// ```
/// use hpcc_sim::sym;
/// let s = sym!("engine.pull");
/// assert_eq!(s.as_str(), "engine.pull");
/// ```
#[macro_export]
macro_rules! sym {
    ($s:expr) => {{
        static SITE: ::std::sync::OnceLock<$crate::intern::Symbol> = ::std::sync::OnceLock::new();
        *SITE.get_or_init(|| $crate::intern::Symbol::intern($s))
    }};
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interning_is_idempotent_and_equality_is_by_content() {
        let a = Symbol::intern("interntest.alpha");
        let b = Symbol::intern("interntest.alpha");
        let c = Symbol::intern("interntest.beta");
        assert_eq!(a, b);
        assert_eq!(a.id(), b.id());
        assert_ne!(a, c);
        assert_eq!(a.as_str(), "interntest.alpha");
    }

    #[test]
    fn symbols_compare_against_strs() {
        let s = Symbol::intern("interntest.cmp");
        assert_eq!(s, "interntest.cmp");
        assert!(s != "interntest.other");
        assert_eq!("interntest.cmp", s);
        let owned = String::from("interntest.cmp");
        assert_eq!(Symbol::from(&owned), s);
        assert_eq!(Symbol::from(owned), s);
    }

    #[test]
    fn display_and_debug_render_the_string() {
        let s = Symbol::intern("interntest.fmt");
        assert_eq!(format!("{s}"), "interntest.fmt");
        assert_eq!(format!("{s:?}"), "\"interntest.fmt\"");
    }

    #[test]
    fn sym_macro_caches_per_site() {
        let a = sym!("interntest.site");
        let b = sym!("interntest.site");
        assert_eq!(a, b);
        assert_eq!(a, Symbol::intern("interntest.site"));
    }

    #[test]
    fn concurrent_interning_agrees_on_ids() {
        let handles: Vec<_> = (0..8)
            .map(|_| std::thread::spawn(|| Symbol::intern("interntest.race").id()))
            .collect();
        let ids: Vec<u32> = handles.into_iter().map(|h| h.join().unwrap()).collect();
        assert!(ids.windows(2).all(|w| w[0] == w[1]), "{ids:?}");
    }
}

//! Metrics collection for experiments.
//!
//! Every experiment reports through a [`MetricsRegistry`]: counters for
//! event counts (cache hits, pulls, scheduling decisions), gauges for
//! levels (utilization, queue depth), and log-binned [`Histogram`]s for
//! latency distributions. Snapshots render as aligned text tables, which is
//! what the `table*`/`quant*` binaries print.

use parking_lot::Mutex;
use serde::Serialize;
use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::Arc;

/// Log-binned histogram over `u64` samples (typically nanoseconds).
///
/// Bins are powers of two scaled by 16 sub-buckets, giving ≤ ~6% relative
/// error on quantiles — plenty for simulator-scale comparisons.
#[derive(Debug, Default)]
pub struct Histogram {
    inner: Mutex<HistogramState>,
}

#[derive(Debug, Default, Clone)]
struct HistogramState {
    counts: BTreeMap<u64, u64>,
    count: u64,
    sum: u128,
    min: u64,
    max: u64,
}

/// Lower bound of the histogram bucket a sample lands in. Values below 16
/// are exact; above, the top 5 significant bits are kept (≤ ~6% relative
/// error). Public so tests and exporters can reason about bucket edges.
pub fn bucket_lower_bound(v: u64) -> u64 {
    if v < 16 {
        return v;
    }
    let shift = 63 - v.leading_zeros() as u64 - 4;
    // Keep the top 5 significant bits: bucket lower bound.
    (v >> shift) << shift
}

fn bucket_of(v: u64) -> u64 {
    bucket_lower_bound(v)
}

impl Histogram {
    pub fn new() -> Histogram {
        Histogram::default()
    }

    /// Record one sample.
    pub fn record(&self, v: u64) {
        self.record_batch(std::slice::from_ref(&v));
    }

    /// Record many samples under one lock acquisition. State-equivalent to
    /// calling [`Histogram::record`] per sample, in order — the batched
    /// observability path relies on that equivalence.
    pub fn record_batch(&self, samples: &[u64]) {
        if samples.is_empty() {
            return;
        }
        let mut st = self.inner.lock();
        for &v in samples {
            if st.count == 0 {
                st.min = v;
                st.max = v;
            } else {
                st.min = st.min.min(v);
                st.max = st.max.max(v);
            }
            st.count += 1;
            st.sum += v as u128;
            *st.counts.entry(bucket_of(v)).or_insert(0) += 1;
        }
    }

    /// Number of samples recorded.
    pub fn count(&self) -> u64 {
        self.inner.lock().count
    }

    /// Mean of samples (0 when empty).
    pub fn mean(&self) -> f64 {
        let st = self.inner.lock();
        if st.count == 0 {
            0.0
        } else {
            st.sum as f64 / st.count as f64
        }
    }

    pub fn min(&self) -> u64 {
        self.inner.lock().min
    }

    pub fn max(&self) -> u64 {
        self.inner.lock().max
    }

    /// Approximate quantile `q` in `[0, 1]` (bucket lower bound).
    pub fn quantile(&self, q: f64) -> u64 {
        let st = self.inner.lock();
        if st.count == 0 {
            return 0;
        }
        let target = ((st.count as f64) * q.clamp(0.0, 1.0)).ceil().max(1.0) as u64;
        let mut seen = 0;
        for (bucket, n) in &st.counts {
            seen += n;
            if seen >= target {
                return *bucket;
            }
        }
        st.max
    }

    /// A point-in-time copy of summary statistics.
    pub fn summary(&self) -> HistogramSummary {
        HistogramSummary {
            count: self.count(),
            mean: self.mean(),
            min: self.min(),
            p50: self.quantile(0.50),
            p95: self.quantile(0.95),
            p99: self.quantile(0.99),
            max: self.max(),
        }
    }
}

/// Summary statistics of a histogram.
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub struct HistogramSummary {
    pub count: u64,
    pub mean: f64,
    pub min: u64,
    pub p50: u64,
    pub p95: u64,
    pub p99: u64,
    pub max: u64,
}

/// Maximum distinct series per instrument kind. Dynamic names (per-op
/// retry counters, per-span histograms) are bounded in practice; the cap is
/// a backstop against an attribute leaking into a metric name and growing
/// the registry without bound.
pub const MAX_SERIES: usize = 4096;

/// Series that absorbs samples once [`MAX_SERIES`] is reached.
pub const OVERFLOW_SERIES: &str = "metrics.overflow";

/// Typed handle to one counter: cheap to clone, saturating on overflow.
#[derive(Debug, Clone)]
pub struct Counter(Arc<AtomicU64>);

impl Counter {
    pub fn incr(&self) {
        self.add(1);
    }

    /// Saturating increment: a counter pegged at `u64::MAX` stays there
    /// instead of wrapping back to small values mid-experiment.
    pub fn add(&self, n: u64) {
        let _ = self
            .0
            .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |v| {
                Some(v.saturating_add(n))
            });
    }

    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// Locally-accumulated increments for one [`Counter`], applied in a single
/// saturating add on [`CounterBatch::flush`].
///
/// Both the local accumulator and the final apply saturate, so a batch
/// whose sum overflows pegs the counter at `u64::MAX` — exactly the value
/// the same sequence of per-event [`Counter::incr`]/[`Counter::add`] calls
/// would have produced. The batched `Tracer` emission path depends on this
/// equivalence (see `counter_batch_saturates_like_per_event_bumps`).
#[derive(Debug)]
pub struct CounterBatch {
    counter: Counter,
    pending: u64,
}

impl CounterBatch {
    pub fn new(counter: Counter) -> CounterBatch {
        CounterBatch {
            counter,
            pending: 0,
        }
    }

    /// Buffer one increment.
    pub fn incr(&mut self) {
        self.add(1);
    }

    /// Buffer `n` increments, saturating locally at `u64::MAX`.
    pub fn add(&mut self, n: u64) {
        self.pending = self.pending.saturating_add(n);
    }

    /// Increments buffered but not yet applied.
    pub fn pending(&self) -> u64 {
        self.pending
    }

    /// Apply all buffered increments in one saturating add.
    pub fn flush(&mut self) {
        if self.pending > 0 {
            self.counter.add(std::mem::take(&mut self.pending));
        }
    }
}

impl Drop for CounterBatch {
    fn drop(&mut self) {
        self.flush();
    }
}

/// Typed handle to one gauge.
#[derive(Debug, Clone)]
pub struct Gauge(Arc<AtomicI64>);

impl Gauge {
    pub fn set(&self, v: i64) {
        self.0.store(v, Ordering::Relaxed);
    }

    pub fn add(&self, d: i64) {
        self.0.fetch_add(d, Ordering::Relaxed);
    }

    pub fn get(&self) -> i64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// Named counters, gauges and histograms for one experiment.
#[derive(Debug, Default)]
pub struct MetricsRegistry {
    counters: Mutex<BTreeMap<String, Arc<AtomicU64>>>,
    gauges: Mutex<BTreeMap<String, Arc<AtomicI64>>>,
    histograms: Mutex<BTreeMap<String, Arc<Histogram>>>,
    /// Series requests refused by the [`MAX_SERIES`] cap.
    dropped_series: AtomicU64,
}

impl MetricsRegistry {
    pub fn new() -> MetricsRegistry {
        MetricsRegistry::default()
    }

    /// Apply the cardinality cap: an unseen name beyond [`MAX_SERIES`]
    /// folds into [`OVERFLOW_SERIES`] and is counted as dropped.
    fn admit<'a>(&self, len: usize, present: bool, name: &'a str) -> &'a str {
        if present || len < MAX_SERIES || name == OVERFLOW_SERIES {
            name
        } else {
            self.dropped_series.fetch_add(1, Ordering::Relaxed);
            OVERFLOW_SERIES
        }
    }

    /// Get or create a counter.
    pub fn counter(&self, name: &str) -> Arc<AtomicU64> {
        let mut map = self.counters.lock();
        let name = self.admit(map.len(), map.contains_key(name), name);
        Arc::clone(
            map.entry(name.to_string())
                .or_insert_with(|| Arc::new(AtomicU64::new(0))),
        )
    }

    /// Typed handle to a counter (saturating arithmetic).
    pub fn typed_counter(&self, name: &str) -> Counter {
        Counter(self.counter(name))
    }

    /// Increment a counter by `n`, saturating at `u64::MAX`.
    pub fn add(&self, name: &str, n: u64) {
        Counter(self.counter(name)).add(n);
    }

    /// Increment a counter by one.
    pub fn incr(&self, name: &str) {
        self.add(name, 1);
    }

    /// Number of series requests refused by the cardinality cap.
    pub fn dropped_series(&self) -> u64 {
        self.dropped_series.load(Ordering::Relaxed)
    }

    /// Current counter value (0 if never touched).
    pub fn get(&self, name: &str) -> u64 {
        self.counters
            .lock()
            .get(name)
            .map(|c| c.load(Ordering::Relaxed))
            .unwrap_or(0)
    }

    /// Get or create a gauge.
    pub fn gauge(&self, name: &str) -> Arc<AtomicI64> {
        let mut map = self.gauges.lock();
        let name = self.admit(map.len(), map.contains_key(name), name);
        Arc::clone(
            map.entry(name.to_string())
                .or_insert_with(|| Arc::new(AtomicI64::new(0))),
        )
    }

    /// Typed handle to a gauge.
    pub fn typed_gauge(&self, name: &str) -> Gauge {
        Gauge(self.gauge(name))
    }

    /// Set a gauge to an absolute value.
    pub fn set_gauge(&self, name: &str, v: i64) {
        self.gauge(name).store(v, Ordering::Relaxed);
    }

    /// Get or create a histogram.
    pub fn histogram(&self, name: &str) -> Arc<Histogram> {
        let mut map = self.histograms.lock();
        let name = self.admit(map.len(), map.contains_key(name), name);
        Arc::clone(
            map.entry(name.to_string())
                .or_insert_with(|| Arc::new(Histogram::new())),
        )
    }

    /// Record one histogram sample.
    pub fn observe(&self, name: &str, v: u64) {
        self.histogram(name).record(v);
    }

    /// Render all metrics as an aligned text table (sorted by name).
    pub fn render(&self) -> String {
        let mut out = String::new();
        let counters = self.counters.lock();
        if !counters.is_empty() {
            out.push_str("counters:\n");
            for (k, v) in counters.iter() {
                let _ = writeln!(out, "  {:<48} {}", k, v.load(Ordering::Relaxed));
            }
        }
        let gauges = self.gauges.lock();
        if !gauges.is_empty() {
            out.push_str("gauges:\n");
            for (k, v) in gauges.iter() {
                let _ = writeln!(out, "  {:<48} {}", k, v.load(Ordering::Relaxed));
            }
        }
        let hists = self.histograms.lock();
        if !hists.is_empty() {
            out.push_str("histograms (ns):\n");
            for (k, h) in hists.iter() {
                let s = h.summary();
                let _ = writeln!(
                    out,
                    "  {:<48} n={} mean={:.0} p50={} p95={} p99={} max={}",
                    k, s.count, s.mean, s.p50, s.p95, s.p99, s.max
                );
            }
        }
        let dropped = self.dropped_series();
        if dropped > 0 {
            let _ = writeln!(out, "dropped series: {dropped}");
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate() {
        let m = MetricsRegistry::new();
        m.incr("pulls");
        m.add("pulls", 4);
        assert_eq!(m.get("pulls"), 5);
        assert_eq!(m.get("unknown"), 0);
    }

    #[test]
    fn gauges_hold_levels() {
        let m = MetricsRegistry::new();
        m.set_gauge("queue_depth", 7);
        assert_eq!(m.gauge("queue_depth").load(Ordering::Relaxed), 7);
        m.set_gauge("queue_depth", -2);
        assert_eq!(m.gauge("queue_depth").load(Ordering::Relaxed), -2);
    }

    #[test]
    fn histogram_summary_tracks_extremes() {
        let h = Histogram::new();
        for v in [10, 20, 30, 40, 1000] {
            h.record(v);
        }
        let s = h.summary();
        assert_eq!(s.count, 5);
        assert_eq!(s.min, 10);
        assert_eq!(s.max, 1000);
        assert!((s.mean - 220.0).abs() < 1e-9);
    }

    #[test]
    fn quantiles_are_monotone_and_bounded() {
        let h = Histogram::new();
        for v in 1..=10_000u64 {
            h.record(v);
        }
        let p50 = h.quantile(0.5);
        let p95 = h.quantile(0.95);
        let p99 = h.quantile(0.99);
        assert!(p50 <= p95 && p95 <= p99);
        // Log-binned: within ~7% relative error of the true quantile.
        assert!((p50 as f64 - 5000.0).abs() / 5000.0 < 0.07, "p50={p50}");
        assert!((p95 as f64 - 9500.0).abs() / 9500.0 < 0.07, "p95={p95}");
    }

    #[test]
    fn small_values_are_exact() {
        let h = Histogram::new();
        for v in 0..16u64 {
            h.record(v);
        }
        assert_eq!(h.quantile(0.0), 0);
        assert_eq!(h.min(), 0);
        assert_eq!(h.max(), 15);
    }

    #[test]
    fn empty_histogram_is_sane() {
        let h = Histogram::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.mean(), 0.0);
        assert_eq!(h.quantile(0.99), 0);
    }

    #[test]
    fn render_contains_all_kinds() {
        let m = MetricsRegistry::new();
        m.incr("c");
        m.set_gauge("g", 1);
        m.observe("h", 5);
        let text = m.render();
        assert!(text.contains("counters:"));
        assert!(text.contains("gauges:"));
        assert!(text.contains("histograms"));
        assert!(text.contains('c') && text.contains('g') && text.contains('h'));
    }

    #[test]
    fn same_name_returns_same_instrument() {
        let m = MetricsRegistry::new();
        let a = m.counter("x");
        let b = m.counter("x");
        a.fetch_add(1, Ordering::Relaxed);
        assert_eq!(b.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn bucket_boundaries_are_exact_below_16_and_top5_bits_above() {
        for v in 0..16u64 {
            assert_eq!(bucket_lower_bound(v), v);
        }
        assert_eq!(bucket_lower_bound(16), 16);
        assert_eq!(bucket_lower_bound(31), 31);
        assert_eq!(bucket_lower_bound(32), 32);
        assert_eq!(bucket_lower_bound(33), 32);
        assert_eq!(bucket_lower_bound(47), 46);
        assert_eq!(bucket_lower_bound(1000), 992);
        assert_eq!(bucket_lower_bound(1024), 1024);
        // A bucket's lower bound is a fixed point, and relative error is
        // bounded by one sub-bucket (~1/16).
        for v in [17u64, 100, 999, 12_345, u64::MAX / 3, u64::MAX] {
            let b = bucket_lower_bound(v);
            assert_eq!(bucket_lower_bound(b), b, "v={v}");
            assert!(b <= v && (v - b) as f64 <= v as f64 / 16.0, "v={v} b={b}");
        }
    }

    #[test]
    fn counter_add_saturates_instead_of_wrapping() {
        let m = MetricsRegistry::new();
        m.add("near_max", u64::MAX - 1);
        m.add("near_max", 5);
        assert_eq!(m.get("near_max"), u64::MAX);
        let c = m.typed_counter("near_max");
        c.add(u64::MAX);
        c.incr();
        assert_eq!(c.get(), u64::MAX);
    }

    #[test]
    fn record_batch_matches_per_sample_records() {
        let a = Histogram::new();
        let b = Histogram::new();
        let samples: Vec<u64> = (0..500u64)
            .map(|i| i.wrapping_mul(0x9e37_79b9) >> 3)
            .collect();
        for &v in &samples {
            a.record(v);
        }
        b.record_batch(&samples);
        assert_eq!(a.summary(), b.summary());
        for q in [0.0, 0.25, 0.5, 0.9, 0.99, 1.0] {
            assert_eq!(a.quantile(q), b.quantile(q), "q={q}");
        }
    }

    /// The batched-emission audit: a batch whose local sum overflows must
    /// leave the counter exactly where the same per-event bumps would —
    /// pegged at `u64::MAX`, never wrapped.
    #[test]
    fn counter_batch_saturates_like_per_event_bumps() {
        let m = MetricsRegistry::new();
        // Per-event reference path.
        let per_event = m.typed_counter("audit.per_event");
        per_event.add(u64::MAX - 3);
        for _ in 0..10 {
            per_event.incr();
        }
        // Batched path with the identical sequence.
        let mut batch = CounterBatch::new(m.typed_counter("audit.batched"));
        batch.add(u64::MAX - 3);
        for _ in 0..10 {
            batch.incr();
        }
        assert_eq!(batch.pending(), u64::MAX); // local accumulator saturated
        batch.flush();
        assert_eq!(m.get("audit.batched"), m.get("audit.per_event"));
        assert_eq!(m.get("audit.batched"), u64::MAX);
        // Flushing in the middle changes nothing either: saturating adds
        // compose the same way whether applied in one piece or two.
        let mut split = CounterBatch::new(m.typed_counter("audit.split"));
        split.add(u64::MAX - 3);
        split.flush();
        split.add(10);
        split.flush();
        assert_eq!(m.get("audit.split"), u64::MAX);
    }

    #[test]
    fn counter_batch_flushes_on_drop() {
        let m = MetricsRegistry::new();
        {
            let mut b = CounterBatch::new(m.typed_counter("audit.dropped"));
            b.add(7);
        }
        assert_eq!(m.get("audit.dropped"), 7);
    }

    #[test]
    fn series_cardinality_is_capped() {
        let m = MetricsRegistry::new();
        for i in 0..MAX_SERIES + 50 {
            m.incr(&format!("series.{i}"));
        }
        assert_eq!(m.dropped_series(), 50);
        // Overflow folded into the sentinel series, not silently lost.
        assert_eq!(m.get(OVERFLOW_SERIES), 50);
        // Existing series keep working at the cap.
        m.incr("series.0");
        assert_eq!(m.get("series.0"), 2);
        assert!(m.render().contains("dropped series: 50"));
    }

    #[test]
    fn typed_gauge_tracks_levels() {
        let m = MetricsRegistry::new();
        let g = m.typed_gauge("depth");
        g.set(3);
        g.add(-5);
        assert_eq!(g.get(), -2);
        assert_eq!(m.gauge("depth").load(Ordering::Relaxed), -2);
    }
}

//! Metrics collection for experiments.
//!
//! Every experiment reports through a [`MetricsRegistry`]: counters for
//! event counts (cache hits, pulls, scheduling decisions), gauges for
//! levels (utilization, queue depth), and log-binned [`Histogram`]s for
//! latency distributions. Snapshots render as aligned text tables, which is
//! what the `table*`/`quant*` binaries print.

use parking_lot::Mutex;
use serde::Serialize;
use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::Arc;

/// Log-binned histogram over `u64` samples (typically nanoseconds).
///
/// Bins are powers of two scaled by 16 sub-buckets, giving ≤ ~6% relative
/// error on quantiles — plenty for simulator-scale comparisons.
#[derive(Debug, Default)]
pub struct Histogram {
    inner: Mutex<HistogramState>,
}

#[derive(Debug, Default, Clone)]
struct HistogramState {
    counts: BTreeMap<u64, u64>,
    count: u64,
    sum: u128,
    min: u64,
    max: u64,
}

fn bucket_of(v: u64) -> u64 {
    if v < 16 {
        return v;
    }
    let shift = 63 - v.leading_zeros() as u64 - 4;
    // Keep the top 5 significant bits: bucket lower bound.
    (v >> shift) << shift
}

impl Histogram {
    pub fn new() -> Histogram {
        Histogram::default()
    }

    /// Record one sample.
    pub fn record(&self, v: u64) {
        let mut st = self.inner.lock();
        if st.count == 0 {
            st.min = v;
            st.max = v;
        } else {
            st.min = st.min.min(v);
            st.max = st.max.max(v);
        }
        st.count += 1;
        st.sum += v as u128;
        *st.counts.entry(bucket_of(v)).or_insert(0) += 1;
    }

    /// Number of samples recorded.
    pub fn count(&self) -> u64 {
        self.inner.lock().count
    }

    /// Mean of samples (0 when empty).
    pub fn mean(&self) -> f64 {
        let st = self.inner.lock();
        if st.count == 0 {
            0.0
        } else {
            st.sum as f64 / st.count as f64
        }
    }

    pub fn min(&self) -> u64 {
        self.inner.lock().min
    }

    pub fn max(&self) -> u64 {
        self.inner.lock().max
    }

    /// Approximate quantile `q` in `[0, 1]` (bucket lower bound).
    pub fn quantile(&self, q: f64) -> u64 {
        let st = self.inner.lock();
        if st.count == 0 {
            return 0;
        }
        let target = ((st.count as f64) * q.clamp(0.0, 1.0)).ceil().max(1.0) as u64;
        let mut seen = 0;
        for (bucket, n) in &st.counts {
            seen += n;
            if seen >= target {
                return *bucket;
            }
        }
        st.max
    }

    /// A point-in-time copy of summary statistics.
    pub fn summary(&self) -> HistogramSummary {
        HistogramSummary {
            count: self.count(),
            mean: self.mean(),
            min: self.min(),
            p50: self.quantile(0.50),
            p95: self.quantile(0.95),
            p99: self.quantile(0.99),
            max: self.max(),
        }
    }
}

/// Summary statistics of a histogram.
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub struct HistogramSummary {
    pub count: u64,
    pub mean: f64,
    pub min: u64,
    pub p50: u64,
    pub p95: u64,
    pub p99: u64,
    pub max: u64,
}

/// Named counters, gauges and histograms for one experiment.
#[derive(Debug, Default)]
pub struct MetricsRegistry {
    counters: Mutex<BTreeMap<String, Arc<AtomicU64>>>,
    gauges: Mutex<BTreeMap<String, Arc<AtomicI64>>>,
    histograms: Mutex<BTreeMap<String, Arc<Histogram>>>,
}

impl MetricsRegistry {
    pub fn new() -> MetricsRegistry {
        MetricsRegistry::default()
    }

    /// Get or create a counter.
    pub fn counter(&self, name: &str) -> Arc<AtomicU64> {
        Arc::clone(
            self.counters
                .lock()
                .entry(name.to_string())
                .or_insert_with(|| Arc::new(AtomicU64::new(0))),
        )
    }

    /// Increment a counter by `n`.
    pub fn add(&self, name: &str, n: u64) {
        self.counter(name).fetch_add(n, Ordering::Relaxed);
    }

    /// Increment a counter by one.
    pub fn incr(&self, name: &str) {
        self.add(name, 1);
    }

    /// Current counter value (0 if never touched).
    pub fn get(&self, name: &str) -> u64 {
        self.counters
            .lock()
            .get(name)
            .map(|c| c.load(Ordering::Relaxed))
            .unwrap_or(0)
    }

    /// Get or create a gauge.
    pub fn gauge(&self, name: &str) -> Arc<AtomicI64> {
        Arc::clone(
            self.gauges
                .lock()
                .entry(name.to_string())
                .or_insert_with(|| Arc::new(AtomicI64::new(0))),
        )
    }

    /// Set a gauge to an absolute value.
    pub fn set_gauge(&self, name: &str, v: i64) {
        self.gauge(name).store(v, Ordering::Relaxed);
    }

    /// Get or create a histogram.
    pub fn histogram(&self, name: &str) -> Arc<Histogram> {
        Arc::clone(
            self.histograms
                .lock()
                .entry(name.to_string())
                .or_insert_with(|| Arc::new(Histogram::new())),
        )
    }

    /// Record one histogram sample.
    pub fn observe(&self, name: &str, v: u64) {
        self.histogram(name).record(v);
    }

    /// Render all metrics as an aligned text table (sorted by name).
    pub fn render(&self) -> String {
        let mut out = String::new();
        let counters = self.counters.lock();
        if !counters.is_empty() {
            out.push_str("counters:\n");
            for (k, v) in counters.iter() {
                let _ = writeln!(out, "  {:<48} {}", k, v.load(Ordering::Relaxed));
            }
        }
        let gauges = self.gauges.lock();
        if !gauges.is_empty() {
            out.push_str("gauges:\n");
            for (k, v) in gauges.iter() {
                let _ = writeln!(out, "  {:<48} {}", k, v.load(Ordering::Relaxed));
            }
        }
        let hists = self.histograms.lock();
        if !hists.is_empty() {
            out.push_str("histograms (ns):\n");
            for (k, h) in hists.iter() {
                let s = h.summary();
                let _ = writeln!(
                    out,
                    "  {:<48} n={} mean={:.0} p50={} p95={} p99={} max={}",
                    k, s.count, s.mean, s.p50, s.p95, s.p99, s.max
                );
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate() {
        let m = MetricsRegistry::new();
        m.incr("pulls");
        m.add("pulls", 4);
        assert_eq!(m.get("pulls"), 5);
        assert_eq!(m.get("unknown"), 0);
    }

    #[test]
    fn gauges_hold_levels() {
        let m = MetricsRegistry::new();
        m.set_gauge("queue_depth", 7);
        assert_eq!(m.gauge("queue_depth").load(Ordering::Relaxed), 7);
        m.set_gauge("queue_depth", -2);
        assert_eq!(m.gauge("queue_depth").load(Ordering::Relaxed), -2);
    }

    #[test]
    fn histogram_summary_tracks_extremes() {
        let h = Histogram::new();
        for v in [10, 20, 30, 40, 1000] {
            h.record(v);
        }
        let s = h.summary();
        assert_eq!(s.count, 5);
        assert_eq!(s.min, 10);
        assert_eq!(s.max, 1000);
        assert!((s.mean - 220.0).abs() < 1e-9);
    }

    #[test]
    fn quantiles_are_monotone_and_bounded() {
        let h = Histogram::new();
        for v in 1..=10_000u64 {
            h.record(v);
        }
        let p50 = h.quantile(0.5);
        let p95 = h.quantile(0.95);
        let p99 = h.quantile(0.99);
        assert!(p50 <= p95 && p95 <= p99);
        // Log-binned: within ~7% relative error of the true quantile.
        assert!((p50 as f64 - 5000.0).abs() / 5000.0 < 0.07, "p50={p50}");
        assert!((p95 as f64 - 9500.0).abs() / 9500.0 < 0.07, "p95={p95}");
    }

    #[test]
    fn small_values_are_exact() {
        let h = Histogram::new();
        for v in 0..16u64 {
            h.record(v);
        }
        assert_eq!(h.quantile(0.0), 0);
        assert_eq!(h.min(), 0);
        assert_eq!(h.max(), 15);
    }

    #[test]
    fn empty_histogram_is_sane() {
        let h = Histogram::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.mean(), 0.0);
        assert_eq!(h.quantile(0.99), 0);
    }

    #[test]
    fn render_contains_all_kinds() {
        let m = MetricsRegistry::new();
        m.incr("c");
        m.set_gauge("g", 1);
        m.observe("h", 5);
        let text = m.render();
        assert!(text.contains("counters:"));
        assert!(text.contains("gauges:"));
        assert!(text.contains("histograms"));
        assert!(text.contains('c') && text.contains('g') && text.contains('h'));
    }

    #[test]
    fn same_name_returns_same_instrument() {
        let m = MetricsRegistry::new();
        let a = m.counter("x");
        let b = m.counter("x");
        a.fetch_add(1, Ordering::Relaxed);
        assert_eq!(b.load(Ordering::Relaxed), 1);
    }
}

//! Logical time for the simulation.
//!
//! All durations in the testbed are *logical*: models charge costs (disk
//! latency, decompression CPU, network transfer) to a [`crate::SimClock`]
//! instead of sleeping. `SimTime` is an absolute instant, `SimSpan` a
//! duration; both are nanosecond-resolution `u64`s so arithmetic is exact
//! and ordering is total.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

/// An absolute instant on the simulation timeline, in nanoseconds since the
/// start of the experiment.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize)]
pub struct SimTime(pub u64);

/// A span (duration) of simulated time, in nanoseconds.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize)]
pub struct SimSpan(pub u64);

impl SimTime {
    /// The experiment origin.
    pub const ZERO: SimTime = SimTime(0);

    /// Nanoseconds since the origin.
    #[inline]
    pub fn as_nanos(self) -> u64 {
        self.0
    }

    /// Seconds since the origin, as a float (for reporting only).
    #[inline]
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// The span from `earlier` to `self`. Saturates at zero rather than
    /// panicking so that racy metric reads never abort an experiment.
    #[inline]
    pub fn since(self, earlier: SimTime) -> SimSpan {
        SimSpan(self.0.saturating_sub(earlier.0))
    }
}

impl SimSpan {
    pub const ZERO: SimSpan = SimSpan(0);

    #[inline]
    pub fn nanos(n: u64) -> SimSpan {
        SimSpan(n)
    }
    #[inline]
    pub fn micros(us: u64) -> SimSpan {
        SimSpan(us * 1_000)
    }
    #[inline]
    pub fn millis(ms: u64) -> SimSpan {
        SimSpan(ms * 1_000_000)
    }
    #[inline]
    pub fn secs(s: u64) -> SimSpan {
        SimSpan(s * 1_000_000_000)
    }

    /// Build a span from a float number of seconds, rounding to nanoseconds.
    /// Negative or non-finite inputs clamp to zero (distribution samplers
    /// may produce tiny negative values through floating-point error).
    pub fn from_secs_f64(s: f64) -> SimSpan {
        if !s.is_finite() || s <= 0.0 {
            return SimSpan::ZERO;
        }
        SimSpan((s * 1e9).round() as u64)
    }

    #[inline]
    pub fn as_nanos(self) -> u64 {
        self.0
    }
    #[inline]
    pub fn as_micros_f64(self) -> f64 {
        self.0 as f64 / 1e3
    }
    #[inline]
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }
    #[inline]
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// True if the span is zero.
    #[inline]
    pub fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// Saturating subtraction.
    #[inline]
    pub fn saturating_sub(self, rhs: SimSpan) -> SimSpan {
        SimSpan(self.0.saturating_sub(rhs.0))
    }

    /// Scale the span by a float factor (used by cost models applying
    /// slowdown multipliers). Clamps at zero.
    pub fn scale(self, factor: f64) -> SimSpan {
        SimSpan::from_secs_f64(self.as_secs_f64() * factor)
    }
}

impl Add<SimSpan> for SimTime {
    type Output = SimTime;
    #[inline]
    fn add(self, rhs: SimSpan) -> SimTime {
        SimTime(self.0 + rhs.0)
    }
}

impl AddAssign<SimSpan> for SimTime {
    #[inline]
    fn add_assign(&mut self, rhs: SimSpan) {
        self.0 += rhs.0;
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimSpan;
    #[inline]
    fn sub(self, rhs: SimTime) -> SimSpan {
        SimSpan(self.0.saturating_sub(rhs.0))
    }
}

impl Add for SimSpan {
    type Output = SimSpan;
    #[inline]
    fn add(self, rhs: SimSpan) -> SimSpan {
        SimSpan(self.0 + rhs.0)
    }
}

impl AddAssign for SimSpan {
    #[inline]
    fn add_assign(&mut self, rhs: SimSpan) {
        self.0 += rhs.0;
    }
}

impl Sub for SimSpan {
    type Output = SimSpan;
    #[inline]
    fn sub(self, rhs: SimSpan) -> SimSpan {
        SimSpan(self.0.saturating_sub(rhs.0))
    }
}

impl SubAssign for SimSpan {
    #[inline]
    fn sub_assign(&mut self, rhs: SimSpan) {
        self.0 = self.0.saturating_sub(rhs.0);
    }
}

impl Mul<u64> for SimSpan {
    type Output = SimSpan;
    #[inline]
    fn mul(self, rhs: u64) -> SimSpan {
        SimSpan(self.0 * rhs)
    }
}

impl Div<u64> for SimSpan {
    type Output = SimSpan;
    #[inline]
    fn div(self, rhs: u64) -> SimSpan {
        SimSpan(self.0 / rhs)
    }
}

impl Sum for SimSpan {
    fn sum<I: Iterator<Item = SimSpan>>(iter: I) -> SimSpan {
        iter.fold(SimSpan::ZERO, |a, b| a + b)
    }
}

fn fmt_nanos(n: u64, f: &mut fmt::Formatter<'_>) -> fmt::Result {
    if n < 1_000 {
        write!(f, "{n}ns")
    } else if n < 1_000_000 {
        write!(f, "{:.2}us", n as f64 / 1e3)
    } else if n < 1_000_000_000 {
        write!(f, "{:.2}ms", n as f64 / 1e6)
    } else {
        write!(f, "{:.3}s", n as f64 / 1e9)
    }
}

impl fmt::Debug for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t+")?;
        fmt_nanos(self.0, f)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

impl fmt::Debug for SimSpan {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt_nanos(self.0, f)
    }
}

impl fmt::Display for SimSpan {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt_nanos(self.0, f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_units_agree() {
        assert_eq!(SimSpan::micros(1), SimSpan::nanos(1_000));
        assert_eq!(SimSpan::millis(1), SimSpan::micros(1_000));
        assert_eq!(SimSpan::secs(1), SimSpan::millis(1_000));
    }

    #[test]
    fn arithmetic_roundtrips() {
        let t = SimTime::ZERO + SimSpan::millis(5);
        assert_eq!(t.as_nanos(), 5_000_000);
        assert_eq!(t - SimTime::ZERO, SimSpan::millis(5));
        assert_eq!(t.since(SimTime::ZERO), SimSpan::millis(5));
        // Saturating: earlier.since(later) == 0
        assert_eq!(SimTime::ZERO.since(t), SimSpan::ZERO);
    }

    #[test]
    fn float_seconds_roundtrip() {
        let s = SimSpan::from_secs_f64(1.25);
        assert_eq!(s, SimSpan::millis(1250));
        assert!((s.as_secs_f64() - 1.25).abs() < 1e-12);
    }

    #[test]
    fn from_secs_clamps_bad_inputs() {
        assert_eq!(SimSpan::from_secs_f64(-1.0), SimSpan::ZERO);
        assert_eq!(SimSpan::from_secs_f64(f64::NAN), SimSpan::ZERO);
        assert_eq!(SimSpan::from_secs_f64(f64::INFINITY), SimSpan::ZERO);
    }

    #[test]
    fn scaling() {
        assert_eq!(SimSpan::millis(10).scale(2.0), SimSpan::millis(20));
        assert_eq!(SimSpan::millis(10).scale(0.5), SimSpan::millis(5));
        assert_eq!(SimSpan::millis(10) * 3, SimSpan::millis(30));
        assert_eq!(SimSpan::millis(10) / 2, SimSpan::millis(5));
    }

    #[test]
    fn display_picks_unit() {
        assert_eq!(format!("{}", SimSpan::nanos(12)), "12ns");
        assert_eq!(format!("{}", SimSpan::micros(12)), "12.00us");
        assert_eq!(format!("{}", SimSpan::millis(12)), "12.00ms");
        assert_eq!(format!("{}", SimSpan::secs(12)), "12.000s");
    }

    #[test]
    fn sum_of_spans() {
        let total: SimSpan = [SimSpan::millis(1), SimSpan::millis(2)].into_iter().sum();
        assert_eq!(total, SimSpan::millis(3));
    }
}

//! Observability over logical time: hierarchical spans and exporters.
//!
//! The survey's quantitative claims are where-does-the-time-go arguments:
//! §4.1.4 metadata pressure, §5.1.3 registry limits, §6 startup/utilization
//! trade-offs. This module lets every experiment answer them per stage. A
//! [`Tracer`] collects [`SpanRecord`]s keyed to the logical clock —
//! hierarchical (parent ids), stage-tagged, attributed — next to the
//! counters/gauges/histograms of a shared [`MetricsRegistry`].
//!
//! Two properties the rest of the testbed depends on:
//!
//! * **Zero cost when disabled.** Every component defaults to
//!   [`Tracer::disabled`]; all operations early-return without touching a
//!   lock, the clock, or the RNG, so instrumented code is bit-identical to
//!   uninstrumented code unless a tracer is installed (the same contract as
//!   [`crate::FaultInjector::disabled`]).
//! * **Byte determinism.** The clock is logical and the RNG seeded, so an
//!   exported trace is a pure function of (workload, seed). The golden-trace
//!   harness in `tests/integration_traces.rs` diffs exports byte-for-byte
//!   across runs and structurally against checked-in goldens.
//!
//! Exporters: Chrome-trace JSON (`chrome://tracing` / Perfetto) and a flat
//! TSV that round-trips through [`parse_tsv`] for golden storage.

use crate::intern::Symbol;
use crate::metrics::{CounterBatch, Histogram, MetricsRegistry};
use crate::time::{SimSpan, SimTime};
use parking_lot::Mutex;
use std::collections::HashMap;
use std::fmt;
use std::fmt::Write as _;
use std::sync::Arc;

/// Pipeline stage a span (or a fault-layer retry) belongs to. The same tag
/// is threaded through [`crate::RetryPolicy`] trace lines so obs spans and
/// fault traces join on it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Stage {
    /// Image pull from a registry (direct, proxy or mirror).
    Pull,
    /// Format conversion (OCI layers → squash/SIF/unpacked).
    Convert,
    /// Image cache lookup/population.
    Cache,
    /// Container create/start/stop.
    Run,
    /// Registry/proxy request handling.
    Request,
    /// Shared-FS and P2P data movement.
    Storage,
    /// WLM scheduling, prolog/epilog, job lifecycle.
    Schedule,
    /// Kubelet pod lifecycle.
    Pod,
    /// Adaptive partition control plane: controller decisions, node
    /// reprovision/return cycles (§6.1's dynamic partitioning, closed-loop).
    Adapt,
    /// Anything else (tests, harness plumbing).
    Other,
}

impl Stage {
    /// Stable lower-case label used in trace lines and exports.
    pub fn label(self) -> &'static str {
        match self {
            Stage::Pull => "pull",
            Stage::Convert => "convert",
            Stage::Cache => "cache",
            Stage::Run => "run",
            Stage::Request => "request",
            Stage::Storage => "storage",
            Stage::Schedule => "schedule",
            Stage::Pod => "pod",
            Stage::Adapt => "adapt",
            Stage::Other => "other",
        }
    }

    /// Parse a label produced by [`Stage::label`].
    pub fn from_label(s: &str) -> Option<Stage> {
        Some(match s {
            "pull" => Stage::Pull,
            "convert" => Stage::Convert,
            "cache" => Stage::Cache,
            "run" => Stage::Run,
            "request" => Stage::Request,
            "storage" => Stage::Storage,
            "schedule" => Stage::Schedule,
            "pod" => Stage::Pod,
            "adapt" => Stage::Adapt,
            "other" => Stage::Other,
            _ => return None,
        })
    }
}

impl fmt::Display for Stage {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// Identifier of a span within one tracer. `0` is the invalid id returned
/// by a disabled tracer; real ids start at 1 and increase in creation order.
pub type SpanId = u64;

/// One finished span: a named interval on the logical timeline.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpanRecord {
    pub id: SpanId,
    /// Enclosing span at the time this one was begun/recorded, if any.
    pub parent: Option<SpanId>,
    /// Interned name — hot-path copies and comparisons are integer ops;
    /// exporters resolve the string via [`Symbol::as_str`].
    pub name: Symbol,
    pub stage: Stage,
    pub start: SimTime,
    pub end: SimTime,
    /// Ordered key=value attributes (source, attempts, bytes, ...). Keys
    /// are interned (drawn from a small fixed vocabulary); values stay
    /// owned strings (they carry per-event data).
    pub attrs: Vec<(Symbol, String)>,
}

impl SpanRecord {
    pub fn duration(&self) -> SimSpan {
        self.end.since(self.start)
    }

    fn attr_string(&self) -> String {
        let mut out = String::new();
        for (i, (k, v)) in self.attrs.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(k.as_str());
            out.push('=');
            out.push_str(&sanitize(v));
        }
        out
    }
}

/// Attribute values may carry arbitrary error text; keep the flat formats
/// parseable.
fn sanitize(v: &str) -> String {
    v.replace(['\t', '\n'], " ").replace(',', ";")
}

#[derive(Debug)]
struct OpenSpan {
    id: SpanId,
    parent: Option<SpanId>,
    name: Symbol,
    stage: Stage,
    start: SimTime,
    attrs: Vec<(Symbol, String)>,
}

/// Cached per-span-name instruments: resolved from the registry once (one
/// `format!` + admission per name per tracer), then bumped through typed
/// handles. `samples` is scratch reused across flushes.
#[derive(Debug)]
struct SpanMetricHandles {
    count: CounterBatch,
    ns: Arc<Histogram>,
    samples: Vec<u64>,
}

/// Buffered metric emissions flush automatically once this many span ends
/// accumulate; explicit [`Tracer::flush`] calls mark sim barriers.
const METRIC_BATCH: usize = 256;

#[derive(Debug, Default)]
struct TracerState {
    next_id: SpanId,
    /// Innermost-last stack of spans begun but not yet ended.
    open: Vec<OpenSpan>,
    finished: Vec<SpanRecord>,
    /// Span (name, duration) pairs whose metric emission is buffered.
    pending_metrics: Vec<(Symbol, u64)>,
    /// Metric handles keyed by symbol id. Lookup only — iteration order is
    /// never observed, so the HashMap cannot leak nondeterminism.
    handles: HashMap<u32, SpanMetricHandles>,
}

/// Span collector over the logical clock.
///
/// Experiments are single-threaded over logical time (the scenario drive
/// loops), so a simple open-span stack resolves parenthood; concurrent
/// scenarios (e.g. `run_all`'s scoped threads) must each use their own
/// tracer.
#[derive(Debug)]
pub struct Tracer {
    enabled: bool,
    metrics: Arc<MetricsRegistry>,
    state: Mutex<TracerState>,
}

impl Tracer {
    /// A tracer that records nothing. This is the default every component
    /// starts with; all operations are cheap no-ops.
    pub fn disabled() -> Arc<Tracer> {
        Arc::new(Tracer {
            enabled: false,
            metrics: Arc::new(MetricsRegistry::new()),
            state: Mutex::new(TracerState::default()),
        })
    }

    /// A live tracer with a private metrics registry.
    pub fn new() -> Arc<Tracer> {
        Arc::new(Tracer {
            enabled: true,
            metrics: Arc::new(MetricsRegistry::new()),
            state: Mutex::new(TracerState::default()),
        })
    }

    /// A live tracer routing span metrics into an existing registry.
    pub fn with_metrics(metrics: Arc<MetricsRegistry>) -> Arc<Tracer> {
        Arc::new(Tracer {
            enabled: true,
            metrics,
            state: Mutex::new(TracerState::default()),
        })
    }

    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// The registry where per-span duration histograms and counters land.
    /// Flushes buffered emissions first, so the view is always consistent
    /// with every span ended so far.
    pub fn metrics(&self) -> &Arc<MetricsRegistry> {
        if self.enabled {
            let mut st = self.state.lock();
            self.flush_metrics_locked(&mut st);
        }
        &self.metrics
    }

    /// Open a span starting at `now`. Returns `0` when disabled.
    pub fn begin(&self, name: impl Into<Symbol>, stage: Stage, now: SimTime) -> SpanId {
        if !self.enabled {
            return 0;
        }
        let name = name.into();
        let mut st = self.state.lock();
        st.next_id += 1;
        let id = st.next_id;
        let parent = st.open.last().map(|s| s.id);
        st.open.push(OpenSpan {
            id,
            parent,
            name,
            stage,
            start: now,
            attrs: Vec::new(),
        });
        id
    }

    /// Attach an attribute to an open span.
    pub fn attr(&self, id: SpanId, key: impl Into<Symbol>, value: impl fmt::Display) {
        if !self.enabled || id == 0 {
            return;
        }
        let key = key.into();
        let mut st = self.state.lock();
        if let Some(s) = st.open.iter_mut().find(|s| s.id == id) {
            s.attrs.push((key, value.to_string()));
        }
    }

    /// Close a span at `now`. Any spans begun inside it and left open are
    /// force-closed at the same instant so nesting stays proper.
    pub fn end(&self, id: SpanId, now: SimTime) {
        if !self.enabled || id == 0 {
            return;
        }
        let mut st = self.state.lock();
        let Some(pos) = st.open.iter().position(|s| s.id == id) else {
            return;
        };
        // Innermost first: children land in `finished` before the parent.
        while st.open.len() > pos {
            let open = st.open.pop().expect("pos < len");
            let record = SpanRecord {
                id: open.id,
                parent: open.parent,
                name: open.name,
                stage: open.stage,
                start: open.start,
                end: now.max(open.start),
                attrs: open.attrs,
            };
            st.pending_metrics
                .push((record.name, record.duration().as_nanos()));
            st.finished.push(record);
        }
        if st.pending_metrics.len() >= METRIC_BATCH {
            self.flush_metrics_locked(&mut st);
        }
    }

    /// Record a complete span retrospectively (arrival→completion style
    /// operations that only know both endpoints at the end). The parent is
    /// the innermost span currently open.
    pub fn record(
        &self,
        name: impl Into<Symbol>,
        stage: Stage,
        start: SimTime,
        end: SimTime,
        attrs: &[(&str, String)],
    ) {
        if !self.enabled {
            return;
        }
        let name = name.into();
        let mut st = self.state.lock();
        st.next_id += 1;
        let id = st.next_id;
        let parent = st.open.last().map(|s| s.id);
        let record = SpanRecord {
            id,
            parent,
            name,
            stage,
            start,
            end: end.max(start),
            attrs: attrs
                .iter()
                .map(|(k, v)| (Symbol::intern(k), v.clone()))
                .collect(),
        };
        st.pending_metrics
            .push((record.name, record.duration().as_nanos()));
        st.finished.push(record);
        if st.pending_metrics.len() >= METRIC_BATCH {
            self.flush_metrics_locked(&mut st);
        }
    }

    /// Flush buffered metric emissions to the registry. Call at sim
    /// barriers (end of a drive loop, before reading the registry
    /// directly). Reads through the tracer ([`Tracer::metrics`],
    /// [`Tracer::finished`], …) flush implicitly, and dropping the tracer
    /// flushes too, so an explicit call is only needed when someone else
    /// holds the registry `Arc` and reads it mid-run.
    pub fn flush(&self) {
        if !self.enabled {
            return;
        }
        let mut st = self.state.lock();
        self.flush_metrics_locked(&mut st);
    }

    /// Apply every buffered (name, duration) pair: per distinct name, one
    /// saturating counter add and one histogram lock. Handle creation (the
    /// only remaining `format!` + registry admission) happens once per
    /// name per tracer; admission order is first-emission order, exactly
    /// as the old per-event path admitted series.
    fn flush_metrics_locked(&self, st: &mut TracerState) {
        if st.pending_metrics.is_empty() {
            return;
        }
        let mut pending = std::mem::take(&mut st.pending_metrics);
        let mut touched: Vec<Symbol> = Vec::new();
        for (sym, dur) in pending.drain(..) {
            let handle = st.handles.entry(sym.id()).or_insert_with(|| {
                let name = sym.as_str();
                SpanMetricHandles {
                    count: CounterBatch::new(
                        self.metrics.typed_counter(&format!("span.{name}.count")),
                    ),
                    ns: self.metrics.histogram(&format!("span.{name}.ns")),
                    samples: Vec::new(),
                }
            });
            if handle.samples.is_empty() {
                touched.push(sym);
            }
            handle.count.incr();
            handle.samples.push(dur);
        }
        st.pending_metrics = pending; // keep the allocation
        for sym in touched {
            let handle = st.handles.get_mut(&sym.id()).expect("touched handle");
            handle.count.flush();
            handle.ns.record_batch(&handle.samples);
            handle.samples.clear();
        }
    }

    /// All finished spans, in completion order. Flushes buffered metrics
    /// (this is the canonical end-of-run barrier).
    pub fn finished(&self) -> Vec<SpanRecord> {
        let mut st = self.state.lock();
        self.flush_metrics_locked(&mut st);
        st.finished.clone()
    }

    /// Number of finished spans.
    pub fn span_count(&self) -> usize {
        let mut st = self.state.lock();
        self.flush_metrics_locked(&mut st);
        st.finished.len()
    }

    /// Drop all span state (between benchmark iterations). Buffered
    /// metrics are flushed first — the registry outlives the reset, as it
    /// did when emission was per-event.
    pub fn reset(&self) {
        let mut st = self.state.lock();
        self.flush_metrics_locked(&mut st);
        st.open.clear();
        st.finished.clear();
        st.next_id = 0;
    }
}

impl Drop for Tracer {
    fn drop(&mut self) {
        // Don't lose buffered emissions when a tracer routing into a
        // shared registry (`with_metrics`) is dropped before a barrier.
        let mut st = self.state.lock();
        self.flush_metrics_locked(&mut st);
    }
}

fn sorted_for_export(spans: &[SpanRecord]) -> Vec<&SpanRecord> {
    let mut v: Vec<&SpanRecord> = spans.iter().collect();
    v.sort_by_key(|s| (s.start, s.id));
    v
}

/// Export spans as a flat TSV: one line per span, sorted by (start, id).
/// Round-trips through [`parse_tsv`]; this is the golden-file format.
pub fn export_tsv(spans: &[SpanRecord]) -> String {
    let mut out = String::from("id\tparent\tname\tstage\tstart_ns\tdur_ns\tattrs\n");
    for s in sorted_for_export(spans) {
        let parent = s.parent.map_or_else(|| "-".to_string(), |p| p.to_string());
        let _ = writeln!(
            out,
            "{}\t{}\t{}\t{}\t{}\t{}\t{}",
            s.id,
            parent,
            s.name,
            s.stage,
            s.start.as_nanos(),
            s.duration().as_nanos(),
            s.attr_string()
        );
    }
    out
}

/// Parse the output of [`export_tsv`].
pub fn parse_tsv(text: &str) -> Result<Vec<SpanRecord>, String> {
    let mut spans = Vec::new();
    for (i, line) in text.lines().enumerate() {
        if i == 0 {
            if !line.starts_with("id\t") {
                return Err(format!("line 1: missing TSV header, got {line:?}"));
            }
            continue;
        }
        if line.is_empty() {
            continue;
        }
        let fields: Vec<&str> = line.split('\t').collect();
        if fields.len() != 7 {
            return Err(format!(
                "line {}: expected 7 fields, got {}",
                i + 1,
                fields.len()
            ));
        }
        let bad = |what: &str| format!("line {}: bad {what}: {line:?}", i + 1);
        let id: SpanId = fields[0].parse().map_err(|_| bad("id"))?;
        let parent = match fields[1] {
            "-" => None,
            p => Some(p.parse().map_err(|_| bad("parent"))?),
        };
        let stage = Stage::from_label(fields[3]).ok_or_else(|| bad("stage"))?;
        let start_ns: u64 = fields[4].parse().map_err(|_| bad("start_ns"))?;
        let dur_ns: u64 = fields[5].parse().map_err(|_| bad("dur_ns"))?;
        let attrs = if fields[6].is_empty() {
            Vec::new()
        } else {
            fields[6]
                .split(',')
                .map(|kv| match kv.split_once('=') {
                    Some((k, v)) => Ok((Symbol::intern(k), v.to_string())),
                    None => Err(bad("attrs")),
                })
                .collect::<Result<Vec<_>, _>>()?
        };
        spans.push(SpanRecord {
            id,
            parent,
            name: Symbol::intern(fields[2]),
            stage,
            start: SimTime(start_ns),
            end: SimTime(start_ns + dur_ns),
            attrs,
        });
    }
    Ok(spans)
}

/// FNV-1a digest of the TSV export — a cheap fingerprint two runs compare.
pub fn trace_digest(spans: &[SpanRecord]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in export_tsv(spans).as_bytes() {
        h ^= *b as u64;
        h = h.wrapping_mul(0x1_0000_01b3);
    }
    h
}

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// Microseconds with fixed nanosecond decimals, as Chrome's `ts` expects.
fn micros(t: SimTime) -> String {
    format!("{}.{:03}", t.as_nanos() / 1_000, t.as_nanos() % 1_000)
}

/// Export spans as Chrome-trace JSON (load in `chrome://tracing` or
/// Perfetto). Every span becomes a matched `B`/`E` duration-event pair;
/// children are emitted inside their parent's pair.
pub fn export_chrome_trace(spans: &[SpanRecord]) -> String {
    let ordered = sorted_for_export(spans);
    let mut children: std::collections::BTreeMap<Option<SpanId>, Vec<&SpanRecord>> =
        std::collections::BTreeMap::new();
    let known: std::collections::BTreeSet<SpanId> = ordered.iter().map(|s| s.id).collect();
    for s in &ordered {
        // Orphans (parent never finished) render as roots.
        let key = s.parent.filter(|p| known.contains(p));
        children.entry(key).or_default().push(s);
    }

    let mut events: Vec<String> = Vec::new();
    fn emit(
        span: &SpanRecord,
        children: &std::collections::BTreeMap<Option<SpanId>, Vec<&SpanRecord>>,
        events: &mut Vec<String>,
    ) {
        let mut begin = format!(
            "{{\"name\":\"{}\",\"cat\":\"{}\",\"ph\":\"B\",\"ts\":{},\"pid\":1,\"tid\":1",
            json_escape(span.name.as_str()),
            span.stage,
            micros(span.start)
        );
        if !span.attrs.is_empty() {
            begin.push_str(",\"args\":{");
            for (i, (k, v)) in span.attrs.iter().enumerate() {
                if i > 0 {
                    begin.push(',');
                }
                let _ = write!(
                    begin,
                    "\"{}\":\"{}\"",
                    json_escape(k.as_str()),
                    json_escape(v)
                );
            }
            begin.push('}');
        }
        begin.push('}');
        events.push(begin);
        for child in children.get(&Some(span.id)).into_iter().flatten() {
            emit(child, children, events);
        }
        events.push(format!(
            "{{\"name\":\"{}\",\"cat\":\"{}\",\"ph\":\"E\",\"ts\":{},\"pid\":1,\"tid\":1}}",
            json_escape(span.name.as_str()),
            span.stage,
            micros(span.end)
        ));
    }
    for root in children.get(&None).cloned().unwrap_or_default() {
        emit(root, &children, &mut events);
    }

    let mut out = String::from("{\"traceEvents\":[\n");
    for (i, e) in events.iter().enumerate() {
        out.push_str(e);
        if i + 1 < events.len() {
            out.push(',');
        }
        out.push('\n');
    }
    out.push_str("],\"displayTimeUnit\":\"ms\"}\n");
    out
}

fn name_path(span: &SpanRecord, by_id: &std::collections::BTreeMap<SpanId, &SpanRecord>) -> String {
    let mut parts = vec![span.name.as_str().to_string()];
    let mut cur = span.parent;
    let mut hops = 0;
    while let Some(p) = cur {
        hops += 1;
        if hops > 64 {
            parts.push("<cycle>".to_string());
            break;
        }
        match by_id.get(&p) {
            Some(parent) => {
                parts.push(parent.name.as_str().to_string());
                cur = parent.parent;
            }
            None => {
                parts.push("<missing>".to_string());
                break;
            }
        }
    }
    parts.reverse();
    parts.join("/")
}

/// Canonical structural form of a trace: one line per span, sorted, with
/// the full ancestor path instead of raw ids (so id assignment can change
/// without a structural diff).
pub fn canonical_lines(spans: &[SpanRecord]) -> Vec<String> {
    let by_id: std::collections::BTreeMap<SpanId, &SpanRecord> =
        spans.iter().map(|s| (s.id, s)).collect();
    sorted_for_export(spans)
        .into_iter()
        .map(|s| {
            format!(
                "{} stage={} start={} dur={} attrs=[{}]",
                name_path(s, &by_id),
                s.stage,
                s.start.as_nanos(),
                s.duration().as_nanos(),
                s.attr_string()
            )
        })
        .collect()
}

/// Structurally diff two traces (span tree + durations + attributes).
/// Returns human-readable mismatch descriptions; empty means identical.
pub fn diff_traces(expected: &[SpanRecord], actual: &[SpanRecord]) -> Vec<String> {
    const MAX_REPORTED: usize = 20;
    let want = canonical_lines(expected);
    let got = canonical_lines(actual);
    let mut out = Vec::new();
    if want.len() != got.len() {
        out.push(format!(
            "span count differs: expected {}, got {}",
            want.len(),
            got.len()
        ));
    }
    for (i, (w, g)) in want.iter().zip(got.iter()).enumerate() {
        if w != g {
            out.push(format!("span {i}:\n  expected {w}\n  actual   {g}"));
            if out.len() >= MAX_REPORTED {
                out.push("... (further diffs suppressed)".to_string());
                return out;
            }
        }
    }
    for (i, w) in want.iter().enumerate().skip(got.len()) {
        out.push(format!("span {i}: missing (expected {w})"));
        if out.len() >= MAX_REPORTED {
            break;
        }
    }
    for (i, g) in got.iter().enumerate().skip(want.len()) {
        out.push(format!("span {i}: unexpected (actual {g})"));
        if out.len() >= MAX_REPORTED {
            break;
        }
    }
    out
}

/// Check the span invariants every trace must satisfy: unique nonzero ids,
/// parents finished before their children were assigned ids, monotone clock
/// within each span (`start <= end`), and child intervals contained in
/// their parent's. Returns violation descriptions; empty means sound.
pub fn check_invariants(spans: &[SpanRecord]) -> Vec<String> {
    let mut out = Vec::new();
    let mut by_id: std::collections::BTreeMap<SpanId, &SpanRecord> =
        std::collections::BTreeMap::new();
    for s in spans {
        if s.id == 0 {
            out.push(format!("span {}: id 0 is reserved", s.name));
        }
        if by_id.insert(s.id, s).is_some() {
            out.push(format!("span {}: duplicate id {}", s.name, s.id));
        }
    }
    for s in spans {
        if s.end < s.start {
            out.push(format!(
                "span {} #{}: clock not monotone: end {} < start {}",
                s.name, s.id, s.end, s.start
            ));
        }
        let Some(pid) = s.parent else { continue };
        if pid >= s.id {
            out.push(format!(
                "span {} #{}: parent id {pid} not older than child",
                s.name, s.id
            ));
        }
        match by_id.get(&pid) {
            None => out.push(format!("span {} #{}: parent {pid} missing", s.name, s.id)),
            Some(p) => {
                if s.start < p.start || s.end > p.end {
                    out.push(format!(
                        "span {} #{} [{}, {}] escapes parent {} #{} [{}, {}]",
                        s.name, s.id, s.start, s.end, p.name, p.id, p.start, p.end
                    ));
                }
            }
        }
    }
    out
}

/// Check time conservation for every span named `parent_name`: its direct
/// children must tile the parent interval exactly (contiguous, gap-free),
/// so the sum of stage times equals the end-to-end time.
pub fn check_conservation(spans: &[SpanRecord], parent_name: &str) -> Vec<String> {
    let mut out = Vec::new();
    for parent in spans.iter().filter(|s| s.name == parent_name) {
        let mut kids: Vec<&SpanRecord> = spans
            .iter()
            .filter(|s| s.parent == Some(parent.id))
            .collect();
        kids.sort_by_key(|s| (s.start, s.id));
        if kids.is_empty() {
            if !parent.duration().is_zero() {
                out.push(format!(
                    "{parent_name} #{}: nonzero duration but no stage children",
                    parent.id
                ));
            }
            continue;
        }
        let mut cursor = parent.start;
        for k in &kids {
            if k.start != cursor {
                out.push(format!(
                    "{parent_name} #{}: gap before {} #{} ({} != {})",
                    parent.id, k.name, k.id, k.start, cursor
                ));
            }
            cursor = cursor.max(k.end);
        }
        if cursor != parent.end {
            out.push(format!(
                "{parent_name} #{}: children end at {} but parent ends at {}",
                parent.id, cursor, parent.end
            ));
        }
        let stage_sum: SimSpan = kids.iter().map(|k| k.duration()).sum();
        if stage_sum != parent.duration() {
            out.push(format!(
                "{parent_name} #{}: stage sum {} != end-to-end {}",
                parent.id,
                stage_sum,
                parent.duration()
            ));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(ms: u64) -> SimTime {
        SimTime::ZERO + SimSpan::millis(ms)
    }

    /// Minimal JSON validity checker (the container has no serde_json):
    /// recursive descent over the grammar, rejecting trailing garbage.
    fn check_json(s: &str) -> Result<(), String> {
        let b = s.as_bytes();
        let mut i = 0usize;
        fn ws(b: &[u8], i: &mut usize) {
            while *i < b.len() && matches!(b[*i], b' ' | b'\t' | b'\n' | b'\r') {
                *i += 1;
            }
        }
        fn value(b: &[u8], i: &mut usize) -> Result<(), String> {
            ws(b, i);
            match b.get(*i) {
                Some(b'{') => {
                    *i += 1;
                    ws(b, i);
                    if b.get(*i) == Some(&b'}') {
                        *i += 1;
                        return Ok(());
                    }
                    loop {
                        ws(b, i);
                        string(b, i)?;
                        ws(b, i);
                        if b.get(*i) != Some(&b':') {
                            return Err(format!("expected ':' at {i}"));
                        }
                        *i += 1;
                        value(b, i)?;
                        ws(b, i);
                        match b.get(*i) {
                            Some(b',') => *i += 1,
                            Some(b'}') => {
                                *i += 1;
                                return Ok(());
                            }
                            _ => return Err(format!("expected ',' or '}}' at {i}")),
                        }
                    }
                }
                Some(b'[') => {
                    *i += 1;
                    ws(b, i);
                    if b.get(*i) == Some(&b']') {
                        *i += 1;
                        return Ok(());
                    }
                    loop {
                        value(b, i)?;
                        ws(b, i);
                        match b.get(*i) {
                            Some(b',') => *i += 1,
                            Some(b']') => {
                                *i += 1;
                                return Ok(());
                            }
                            _ => return Err(format!("expected ',' or ']' at {i}")),
                        }
                    }
                }
                Some(b'"') => string(b, i),
                Some(b't') => lit(b, i, "true"),
                Some(b'f') => lit(b, i, "false"),
                Some(b'n') => lit(b, i, "null"),
                Some(c) if c.is_ascii_digit() || *c == b'-' => {
                    *i += 1;
                    while *i < b.len()
                        && (b[*i].is_ascii_digit()
                            || matches!(b[*i], b'.' | b'e' | b'E' | b'+' | b'-'))
                    {
                        *i += 1;
                    }
                    Ok(())
                }
                other => Err(format!("unexpected {other:?} at {i}")),
            }
        }
        fn lit(b: &[u8], i: &mut usize, word: &str) -> Result<(), String> {
            if b[*i..].starts_with(word.as_bytes()) {
                *i += word.len();
                Ok(())
            } else {
                Err(format!("bad literal at {i}"))
            }
        }
        fn string(b: &[u8], i: &mut usize) -> Result<(), String> {
            if b.get(*i) != Some(&b'"') {
                return Err(format!("expected string at {i}"));
            }
            *i += 1;
            while let Some(&c) = b.get(*i) {
                match c {
                    b'"' => {
                        *i += 1;
                        return Ok(());
                    }
                    b'\\' => *i += 2,
                    _ => *i += 1,
                }
            }
            Err("unterminated string".to_string())
        }
        value(b, &mut i)?;
        ws(b, &mut i);
        if i != b.len() {
            return Err(format!("trailing garbage at {i}"));
        }
        Ok(())
    }

    fn sample_trace() -> Vec<SpanRecord> {
        let tr = Tracer::new();
        let root = tr.begin("engine.deploy", Stage::Other, t(0));
        let pull = tr.begin("engine.pull", Stage::Pull, t(0));
        tr.attr(pull, "repo", "library/pyapp");
        tr.end(pull, t(10));
        let prep = tr.begin("engine.prepare", Stage::Convert, t(10));
        tr.record(
            "engine.cache",
            Stage::Cache,
            t(10),
            t(12),
            &[("hit", "false".into())],
        );
        tr.end(prep, t(30));
        let run = tr.begin("engine.run", Stage::Run, t(30));
        tr.end(run, t(45));
        tr.end(root, t(45));
        tr.finished()
    }

    #[test]
    fn disabled_tracer_records_nothing() {
        let tr = Tracer::disabled();
        let id = tr.begin("x", Stage::Other, t(0));
        assert_eq!(id, 0);
        tr.attr(id, "k", "v");
        tr.end(id, t(5));
        tr.record("y", Stage::Other, t(0), t(1), &[]);
        assert_eq!(tr.span_count(), 0);
        assert_eq!(tr.metrics().render(), "");
    }

    #[test]
    fn nesting_and_parents_resolve_from_the_stack() {
        let spans = sample_trace();
        assert_eq!(spans.len(), 5);
        let root = spans.iter().find(|s| s.name == "engine.deploy").unwrap();
        for child in ["engine.pull", "engine.prepare", "engine.run"] {
            let c = spans.iter().find(|s| s.name == child).unwrap();
            assert_eq!(c.parent, Some(root.id), "{child}");
        }
        let cache = spans.iter().find(|s| s.name == "engine.cache").unwrap();
        let prep = spans.iter().find(|s| s.name == "engine.prepare").unwrap();
        assert_eq!(cache.parent, Some(prep.id));
        assert!(check_invariants(&spans).is_empty());
    }

    #[test]
    fn conservation_holds_for_contiguous_stages() {
        let spans = sample_trace();
        assert!(check_conservation(&spans, "engine.deploy").is_empty());
    }

    #[test]
    fn conservation_detects_gaps() {
        let mut spans = sample_trace();
        let pull = spans.iter_mut().find(|s| s.name == "engine.pull").unwrap();
        pull.end = t(8); // 2ms hole before prepare
        let errs = check_conservation(&spans, "engine.deploy");
        assert!(!errs.is_empty());
        assert!(errs.iter().any(|e| e.contains("gap")), "{errs:?}");
    }

    #[test]
    fn invariants_catch_escaping_children() {
        let mut spans = sample_trace();
        let run = spans.iter_mut().find(|s| s.name == "engine.run").unwrap();
        run.end = t(60); // past the parent's end
        let errs = check_invariants(&spans);
        assert!(
            errs.iter().any(|e| e.contains("escapes parent")),
            "{errs:?}"
        );
    }

    #[test]
    fn unclosed_children_are_force_closed_with_the_parent() {
        let tr = Tracer::new();
        let root = tr.begin("outer", Stage::Other, t(0));
        let _leak = tr.begin("inner", Stage::Other, t(1));
        tr.end(root, t(9));
        let spans = tr.finished();
        assert_eq!(spans.len(), 2);
        assert!(check_invariants(&spans).is_empty());
        assert!(spans.iter().all(|s| s.end == t(9)));
    }

    #[test]
    fn tsv_round_trips() {
        let spans = sample_trace();
        let tsv = export_tsv(&spans);
        let parsed = parse_tsv(&tsv).unwrap();
        let mut sorted: Vec<SpanRecord> = spans.clone();
        sorted.sort_by_key(|s| (s.start, s.id));
        assert_eq!(parsed, sorted);
        assert_eq!(export_tsv(&parsed), tsv);
    }

    #[test]
    fn tsv_rejects_malformed_input() {
        assert!(parse_tsv("nonsense").is_err());
        assert!(parse_tsv("id\tparent\tname\tstage\tstart_ns\tdur_ns\tattrs\n1\t-\tx\n").is_err());
        assert!(parse_tsv(
            "id\tparent\tname\tstage\tstart_ns\tdur_ns\tattrs\n1\t-\tx\tnostage\t0\t1\t\n"
        )
        .is_err());
    }

    #[test]
    fn chrome_export_is_valid_json() {
        let json = export_chrome_trace(&sample_trace());
        check_json(&json).unwrap();
    }

    #[test]
    fn chrome_export_has_matched_begin_end_events() {
        let spans = sample_trace();
        let json = export_chrome_trace(&spans);
        let begins = json.matches("\"ph\":\"B\"").count();
        let ends = json.matches("\"ph\":\"E\"").count();
        assert_eq!(begins, spans.len());
        assert_eq!(ends, spans.len());
        // Nesting: the root's E event comes after every other event.
        let last_e = json.rfind("\"ph\":\"E\"").unwrap();
        let tail = &json[last_e..];
        assert!(json[..last_e].rfind("engine.deploy").is_some());
        assert!(tail.starts_with("\"ph\":\"E\""));
        // Attribute values carry over, JSON-escaped.
        assert!(json.contains("\"repo\":\"library/pyapp\""));
        check_json(&json).unwrap();
    }

    #[test]
    fn chrome_export_escapes_hostile_attrs() {
        let tr = Tracer::new();
        let id = tr.begin("op", Stage::Other, t(0));
        tr.attr(id, "err", "a \"quoted\"\nline\\with junk");
        tr.end(id, t(1));
        let json = export_chrome_trace(&tr.finished());
        check_json(&json).unwrap();
    }

    #[test]
    fn diff_is_empty_for_identical_traces_and_reports_changes() {
        let a = sample_trace();
        let b = sample_trace();
        assert!(diff_traces(&a, &b).is_empty());
        let mut c = sample_trace();
        c.iter_mut().find(|s| s.name == "engine.run").unwrap().end = t(50);
        let diffs = diff_traces(&a, &c);
        assert!(!diffs.is_empty());
        assert!(diffs.iter().any(|d| d.contains("engine.run")), "{diffs:?}");
    }

    #[test]
    fn diff_ignores_id_assignment_but_not_structure() {
        let mut a = sample_trace();
        // Renumber ids (e.g. another run interleaved unrelated spans).
        for s in &mut a {
            s.id += 100;
            if let Some(p) = s.parent.as_mut() {
                *p += 100;
            }
        }
        assert!(diff_traces(&sample_trace(), &a).is_empty());
    }

    #[test]
    fn digest_is_stable_and_sensitive() {
        let a = sample_trace();
        assert_eq!(trace_digest(&a), trace_digest(&sample_trace()));
        let mut b = sample_trace();
        b[0].end = t(46);
        assert_ne!(trace_digest(&a), trace_digest(&b));
    }

    #[test]
    fn span_durations_land_in_metrics() {
        let tr = Tracer::new();
        let id = tr.begin("engine.pull", Stage::Pull, t(0));
        tr.end(id, t(10));
        assert_eq!(tr.metrics().get("span.engine.pull.count"), 1);
        assert_eq!(tr.metrics().histogram("span.engine.pull.ns").count(), 1);
    }

    #[test]
    fn explicit_flush_lands_buffered_metrics() {
        let tr = Tracer::new();
        tr.record("flushtest.op", Stage::Other, t(0), t(3), &[]);
        tr.flush();
        // Read the registry through its own Arc, bypassing the tracer:
        // the explicit barrier must have landed the emission.
        let m = Arc::clone(tr.metrics());
        assert_eq!(m.get("span.flushtest.op.count"), 1);
    }

    #[test]
    fn dropping_a_tracer_flushes_into_the_shared_registry() {
        let registry = Arc::new(MetricsRegistry::new());
        {
            let tr = Tracer::with_metrics(Arc::clone(&registry));
            tr.record("droptest.op", Stage::Other, t(0), t(2), &[]);
            // No barrier reached; the drop must not lose the emission.
        }
        assert_eq!(registry.get("span.droptest.op.count"), 1);
    }

    #[test]
    fn auto_flush_triggers_at_batch_capacity() {
        let tr = Tracer::new();
        for i in 0..super::METRIC_BATCH {
            tr.record("autoflush.op", Stage::Other, t(0), t(1), &[]);
            let _ = i;
        }
        // Registry read without going through the tracer: the batch
        // threshold alone must have flushed.
        let m = Arc::clone(&tr.metrics);
        assert_eq!(m.get("span.autoflush.op.count"), super::METRIC_BATCH as u64);
    }

    // ------------------------------------------------ batching equivalence

    use proptest::prelude::*;

    /// One step of a random span workload. Times advance by the embedded
    /// deltas so the program is a pure function of the op list.
    #[derive(Debug, Clone)]
    enum ObsOp {
        /// Begin a span named `NAMES[i]` after advancing `dt` ms.
        Begin(usize, u64),
        /// End the innermost open span after advancing `dt` ms.
        End(u64),
        /// Record a retrospective span of `dur` ms after advancing `dt`.
        Record(usize, u64, u64),
        /// Attach `KEYS[i]=v` to the innermost open span.
        Attr(usize, u64),
    }

    const NAMES: [&str; 5] = [
        "obsbatch.pull",
        "obsbatch.convert",
        "obsbatch.run",
        "obsbatch.cache",
        "obsbatch.deploy",
    ];
    const KEYS: [&str; 3] = ["attempts", "bytes", "source"];

    fn obs_op_strategy() -> impl Strategy<Value = ObsOp> {
        prop_oneof![
            (0usize..NAMES.len(), 0u64..50).prop_map(|(n, dt)| ObsOp::Begin(n, dt)),
            (0u64..50).prop_map(ObsOp::End),
            (0usize..NAMES.len(), 0u64..50, 0u64..80)
                .prop_map(|(n, dt, dur)| ObsOp::Record(n, dt, dur)),
            (0usize..KEYS.len(), 0u64..1000).prop_map(|(k, v)| ObsOp::Attr(k, v)),
        ]
    }

    /// Run the program. `flush_every_op` is the difference under test: the
    /// aggressive variant flushes after every op, the lazy one only at the
    /// implicit end-of-run barrier.
    fn apply_obs(ops: &[ObsOp], flush_every_op: bool) -> Arc<Tracer> {
        let tr = Tracer::new();
        let mut now = SimTime::ZERO;
        let mut open: Vec<SpanId> = Vec::new();
        for op in ops {
            match *op {
                ObsOp::Begin(n, dt) => {
                    now += SimSpan::millis(dt);
                    open.push(tr.begin(NAMES[n], Stage::Other, now));
                }
                ObsOp::End(dt) => {
                    now += SimSpan::millis(dt);
                    if let Some(id) = open.pop() {
                        tr.end(id, now);
                    }
                }
                ObsOp::Record(n, dt, dur) => {
                    now += SimSpan::millis(dt);
                    tr.record(
                        NAMES[n],
                        Stage::Other,
                        now,
                        now + SimSpan::millis(dur),
                        &[("kind", "retro".to_string())],
                    );
                }
                ObsOp::Attr(k, v) => {
                    if let Some(&id) = open.last() {
                        tr.attr(id, KEYS[k], v);
                    }
                }
            }
            if flush_every_op {
                tr.flush();
            }
        }
        while let Some(id) = open.pop() {
            tr.end(id, now);
        }
        tr
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(48))]

        /// Flush granularity is unobservable: per-event flushing and
        /// flush-at-barrier yield byte-identical TSV and Chrome exports
        /// and an identical registry (values, admission, drops).
        #[test]
        fn flush_granularity_does_not_change_observables(
            ops in proptest::collection::vec(obs_op_strategy(), 1..60)
        ) {
            let a = apply_obs(&ops, true);
            let b = apply_obs(&ops, false);
            let sa = a.finished();
            let sb = b.finished();
            prop_assert_eq!(export_tsv(&sa), export_tsv(&sb));
            prop_assert_eq!(export_chrome_trace(&sa), export_chrome_trace(&sb));
            prop_assert_eq!(a.metrics().render(), b.metrics().render());
            prop_assert_eq!(
                a.metrics().dropped_series(),
                b.metrics().dropped_series()
            );
        }
    }

    /// The cardinality cap trips at the same counts with interned keys,
    /// whether emission is flushed per event or batched: same number of
    /// refused series, same overflow-sentinel absorption.
    #[test]
    fn cardinality_cap_trips_identically_batched_and_unbatched() {
        use crate::metrics::{MAX_SERIES, OVERFLOW_SERIES};
        const EXTRA: usize = 25;
        let run = |flush_every: bool| {
            let tr = Tracer::new();
            for i in 0..MAX_SERIES + EXTRA {
                tr.record(format!("capsym.{i}"), Stage::Other, t(0), t(1), &[]);
                if flush_every {
                    tr.flush();
                }
            }
            tr.flush();
            (
                tr.metrics().dropped_series(),
                tr.metrics().get(OVERFLOW_SERIES),
                tr.metrics().histogram(OVERFLOW_SERIES).count(),
            )
        };
        let per_event = run(true);
        let batched = run(false);
        assert_eq!(per_event, batched);
        // Counter and histogram maps each refused EXTRA names...
        assert_eq!(batched.0, 2 * EXTRA as u64);
        // ...and the sentinel absorbed every refused bump on both sides.
        assert_eq!(batched.1, EXTRA as u64);
        assert_eq!(batched.2, EXTRA as u64);
    }
}

//! # hpcc-sim
//!
//! Simulation substrate for the HPC containerization testbed.
//!
//! The surveyed systems (container engines, registries, workload managers,
//! Kubernetes) are reproduced as executable models. Those models need a
//! common notion of *logical time*, *cost accounting*, *contention* and
//! *randomized workloads*. This crate provides:
//!
//! * [`time`] — logical time ([`SimTime`]) and spans ([`SimSpan`]) with
//!   nanosecond resolution.
//! * [`clock`] — a shareable, thread-safe logical clock that components
//!   charge costs to.
//! * [`crash`] — named crash points with a deterministic, armable
//!   [`CrashInjector`], plus the [`Recoverable`] checkpoint/recover
//!   contract behind the kill-at-every-step crash matrix.
//! * [`des`] — a classic discrete-event simulation engine (event queue with
//!   scheduled callbacks) used by the scheduling experiments.
//! * [`exec`] — a deterministic bounded-worker task executor (dependency
//!   DAGs, greedy list scheduling, task-id tie-breaking) that lets the
//!   pull→convert pipeline overlap work over logical time.
//! * [`domains`] — failure-domain topology (node → rack → row → site plus
//!   named links) and seeded correlated-outage schedules (rack power loss,
//!   row partitions, origin overload) with timed recovery, feeding both
//!   the fault injector and the adaptive control loop.
//! * [`resilience`] — self-healing primitives: per-endpoint circuit
//!   breakers, hedged requests with budget caps, deadline propagation and
//!   an admission-control/load-shedding queue, all over logical time.
//! * [`rng`] — deterministic random number generation plus workload
//!   distributions (exponential, Zipf, Pareto, log-normal).
//! * [`faults`] — seeded fault injection (registry 429/5xx/timeouts,
//!   metadata brownouts, disk-full, peer churn, CRI flaps) and the shared
//!   retry policy (exponential backoff + jitter, deadlines, stage timeouts)
//!   executed over logical time.
//! * [`metrics`] — counters, gauges and log-binned histograms collected into
//!   a registry, used by every experiment to report results.
//! * [`obs`] — zero-cost-when-disabled hierarchical span tracing over the
//!   logical clock, with Chrome-trace JSON and TSV exporters and the
//!   structural diff / invariant checks behind the golden-trace harness.
//! * [`resource`] — token buckets and queueing servers used to model rate
//!   limits (registry pulls, metadata IOPS) and contention.
//! * [`net`] — a two-class (management / high-speed) network fabric model,
//!   sufficient for the Figure 1 proof of concept.
//! * [`units`] — byte-size newtype with human-readable formatting.

pub mod clock;
pub mod crash;
pub mod des;
pub mod domains;
pub mod exec;
pub mod faults;
pub mod intern;
pub mod metrics;
pub mod net;
pub mod noise;
pub mod obs;
pub mod resilience;
pub mod resource;
pub mod rng;
pub mod time;
pub mod units;

pub use clock::SimClock;
pub use crash::{CrashInjector, Crashed, Recoverable, RecoveryReport, StateDigest};
pub use des::{DesBackend, Engine};
pub use domains::{DomainHealth, DomainSchedule, DomainTopology, OutageEvent, OutageKind};
pub use exec::{ExecError, ExecReport, Executor, TaskFinish, TaskGraph, TaskId};
pub use faults::{Fault, FaultInjector, FaultKind, FaultRule, RetryErr, RetryOk, RetryPolicy};
pub use intern::Symbol;
pub use metrics::{CounterBatch, Histogram, MetricsRegistry};
pub use net::{Fabric, LinkClass};
pub use noise::{bsp_run, BspOutcome, NoiseProfile};
pub use obs::{SpanId, SpanRecord, Stage, Tracer};
pub use resilience::{
    run_hedged, Admission, AdmissionConfig, AdmissionQueue, BreakerConfig, BreakerState,
    CircuitBreaker, Deadline, HedgeBudget, HedgePolicy,
};
pub use resource::{QueueServer, TokenBucket};
pub use rng::DetRng;
pub use time::{SimSpan, SimTime};
pub use units::Bytes;

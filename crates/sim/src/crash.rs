//! Deterministic crash-point injection and the recovery contract.
//!
//! The [`faults`](crate::faults) module models operations that *fail and
//! return* to their caller; a crash models a process that *dies
//! mid-operation* and must come back through its journal. Components
//! thread an [`Arc<CrashInjector>`] and call
//! [`CrashInjector::crash_point`] at every named crash point — in
//! particular every journal write site fires one point immediately before
//! and one immediately after the append, so the kill-at-every-step matrix
//! (`tests/integration_crash.rs`) can observe both "intent not yet
//! durable" and "intent durable, effect not yet applied".
//!
//! Determinism: a crash fires either because the injector is *armed* at an
//! exact `(point, nth visit)` coordinate — how the matrix harness kills a
//! workload at every registered point in turn — or because a
//! [`FaultKind::Crash`] rule on an attached seeded [`FaultInjector`]
//! rolls. The disabled injector (the default every component starts with)
//! registers nothing, consumes no randomness and never fires, so enabling
//! the subsystem leaves every existing experiment bit-identical.
//!
//! Components that own durable state implement [`Recoverable`]: an
//! fsck-style [`recover`](Recoverable::recover) pass that rolls forward
//! committed intents and discards orphaned staging, plus a
//! [`checkpoint`](Recoverable::checkpoint) digest of the durable state the
//! harness compares across crashed and uncrashed runs.

use crate::faults::{FaultInjector, FaultKind};
use crate::{SimSpan, SimTime};
use parking_lot::Mutex;
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// A crash the injector decided to fire: the component dies at `point`.
///
/// Propagated as an error so the whole in-flight operation unwinds — a
/// crash is never retried by a [`crate::RetryPolicy`] (it is not a
/// transient fault); the caller must run recovery and start over.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Crashed {
    /// The named crash point that fired.
    pub point: &'static str,
    /// Logical instant of death.
    pub at: SimTime,
    /// Position in the injector's global crash order (1-based).
    pub seq: u64,
}

impl fmt::Display for Crashed {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "crashed at point '{}' ({})", self.point, self.at)
    }
}

impl std::error::Error for Crashed {}

#[derive(Debug)]
struct Armed {
    point: String,
    /// Visits to `point` left before firing (1 = the next visit dies).
    remaining: u64,
}

/// Seeded, armable crash scheduler shared by every modelled component.
///
/// Call order over logical time is deterministic (the experiments are
/// single-threaded per logical step), so both firing modes — an armed
/// `(point, nth)` coordinate and `FaultKind::Crash` rolls on the attached
/// [`FaultInjector`] — reproduce exactly under a fixed seed.
#[derive(Debug)]
pub struct CrashInjector {
    enabled: bool,
    /// Registration order and visit count of every point ever hit.
    points: Mutex<Vec<(&'static str, u64)>>,
    armed: Mutex<Option<Armed>>,
    faults: Mutex<Option<Arc<FaultInjector>>>,
    seq: AtomicU64,
}

impl CrashInjector {
    /// The no-op injector every component starts with: registers nothing,
    /// never fires. `crash_point` is a cheap early return.
    pub fn disabled() -> Arc<CrashInjector> {
        Arc::new(CrashInjector {
            enabled: false,
            points: Mutex::new(Vec::new()),
            armed: Mutex::new(None),
            faults: Mutex::new(None),
            seq: AtomicU64::new(0),
        })
    }

    /// A live injector with nothing armed yet: crash points register and
    /// count visits (the matrix harness enumerates them from a reference
    /// run) but no crash fires until [`arm`](CrashInjector::arm) or an
    /// attached fault rule says so.
    pub fn enabled() -> Arc<CrashInjector> {
        Arc::new(CrashInjector {
            enabled: true,
            points: Mutex::new(Vec::new()),
            armed: Mutex::new(None),
            faults: Mutex::new(None),
            seq: AtomicU64::new(0),
        })
    }

    /// True when crash points register and may fire.
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Attach a seeded [`FaultInjector`]: its `FaultKind::Crash` rules are
    /// rolled at every crash point, and crash/arm decisions land in its
    /// metrics and ordered decision trace.
    pub fn set_fault_injector(&self, faults: Arc<FaultInjector>) {
        *self.faults.lock() = Some(faults);
    }

    /// Arm a one-shot crash: the `nth` visit (1-based) to `point` after
    /// this call dies. Firing disarms, so recovery and the re-run pass the
    /// same point unharmed.
    pub fn arm(&self, point: &str, nth: u64) {
        assert!(nth >= 1, "nth visit is 1-based");
        *self.armed.lock() = Some(Armed {
            point: point.to_string(),
            remaining: nth,
        });
    }

    /// Remove any armed crash without firing it.
    pub fn disarm(&self) {
        *self.armed.lock() = None;
    }

    /// True while an armed crash has not fired yet — a matrix cell whose
    /// armed point was never reached (e.g. a warm-cache path skipped it)
    /// can detect the miss.
    pub fn is_armed(&self) -> bool {
        self.armed.lock().is_some()
    }

    /// Every crash point hit so far, in first-visit order.
    pub fn points(&self) -> Vec<&'static str> {
        self.points.lock().iter().map(|(n, _)| *n).collect()
    }

    /// Visits recorded for one point.
    pub fn visits(&self, point: &str) -> u64 {
        self.points
            .lock()
            .iter()
            .find(|(n, _)| *n == point)
            .map_or(0, |(_, v)| *v)
    }

    /// Total crashes fired.
    pub fn crashes(&self) -> u64 {
        self.seq.load(Ordering::Relaxed)
    }

    /// Pass a named crash point: registers the point, counts the visit and
    /// decides whether the component dies here.
    pub fn crash_point(&self, point: &'static str, now: SimTime) -> Result<(), Crashed> {
        if !self.enabled {
            return Ok(());
        }
        {
            let mut pts = self.points.lock();
            match pts.iter_mut().find(|(n, _)| *n == point) {
                Some(entry) => entry.1 += 1,
                None => pts.push((point, 1)),
            }
        }
        let armed_fire = {
            let mut armed = self.armed.lock();
            match armed.as_mut() {
                Some(a) if a.point == point => {
                    a.remaining -= 1;
                    if a.remaining == 0 {
                        *armed = None;
                        true
                    } else {
                        false
                    }
                }
                _ => false,
            }
        };
        let faults = self.faults.lock().clone();
        let fired = if armed_fire {
            if let Some(f) = &faults {
                f.metrics()
                    .incr(&format!("faults.injected.{}", FaultKind::Crash.label()));
            }
            true
        } else {
            faults
                .as_ref()
                .is_some_and(|f| f.roll(FaultKind::Crash, now).is_some())
        };
        if !fired {
            return Ok(());
        }
        let seq = self.seq.fetch_add(1, Ordering::Relaxed) + 1;
        if let Some(f) = &faults {
            f.note(format!("#crash{seq} {now} die at {point}"));
        }
        Err(Crashed {
            point,
            at: now,
            seq,
        })
    }
}

/// What one fsck-style recovery pass did.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct RecoveryReport {
    /// Committed intents whose effect was verified / re-applied.
    pub rolled_forward: u64,
    /// Orphaned staged artifacts garbage-collected and open intents
    /// aborted.
    pub discarded: u64,
    /// Secondary structures rebuilt (refcounts, requeued jobs, re-adopted
    /// pods).
    pub rebuilt: u64,
    /// Logical time the pass charged.
    pub took: SimSpan,
}

impl RecoveryReport {
    /// Fold another pass (a different component, or a retried pass) into
    /// this report.
    pub fn absorb(&mut self, other: RecoveryReport) {
        self.rolled_forward += other.rolled_forward;
        self.discarded += other.discarded;
        self.rebuilt += other.rebuilt;
        self.took += other.took;
    }
}

impl fmt::Display for RecoveryReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "rolled_forward={} discarded={} rebuilt={} took={}",
            self.rolled_forward, self.discarded, self.rebuilt, self.took
        )
    }
}

/// Contract for components that own durable state and can come back from
/// a crash.
pub trait Recoverable {
    /// Digest of the component's *durable* state (what survives a crash).
    /// The matrix harness asserts the post-recovery checkpoint of a
    /// crashed run equals the uncrashed run's.
    fn checkpoint(&self, now: SimTime) -> u64;

    /// fsck-style pass over the durable state: roll forward committed
    /// intents, discard orphaned staging, rebuild derived structures.
    /// Must be idempotent (recovering twice ≡ once) and itself survivable
    /// — it passes crash points, hence the `Result`.
    fn recover(&self, now: SimTime) -> Result<RecoveryReport, Crashed>;
}

/// Tiny FNV-1a accumulator for [`Recoverable::checkpoint`] digests.
#[derive(Debug, Clone, Copy)]
pub struct StateDigest(u64);

impl StateDigest {
    pub fn new() -> StateDigest {
        StateDigest(0xcbf2_9ce4_8422_2325)
    }

    pub fn update(&mut self, bytes: &[u8]) {
        for b in bytes {
            self.0 ^= *b as u64;
            self.0 = self.0.wrapping_mul(0x1_0000_01b3);
        }
    }

    pub fn update_u64(&mut self, v: u64) {
        self.update(&v.to_le_bytes());
    }

    pub fn finish(self) -> u64 {
        self.0
    }
}

impl Default for StateDigest {
    fn default() -> StateDigest {
        StateDigest::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::faults::FaultRule;

    #[test]
    fn disabled_injector_registers_nothing_and_never_fires() {
        let c = CrashInjector::disabled();
        for i in 0..50 {
            assert!(c.crash_point("pull.blob.pre", SimTime(i)).is_ok());
        }
        assert!(c.points().is_empty());
        assert_eq!(c.crashes(), 0);
    }

    #[test]
    fn armed_crash_fires_on_exact_visit_then_disarms() {
        let c = CrashInjector::enabled();
        c.arm("journal.commit.pre", 3);
        assert!(c.crash_point("journal.commit.pre", SimTime(0)).is_ok());
        assert!(c.crash_point("journal.begin.pre", SimTime(1)).is_ok());
        assert!(c.crash_point("journal.commit.pre", SimTime(2)).is_ok());
        let err = c.crash_point("journal.commit.pre", SimTime(3)).unwrap_err();
        assert_eq!(err.point, "journal.commit.pre");
        assert_eq!(err.at, SimTime(3));
        assert_eq!(err.seq, 1);
        // Disarmed: the same point passes afterwards.
        assert!(!c.is_armed());
        assert!(c.crash_point("journal.commit.pre", SimTime(4)).is_ok());
        assert_eq!(c.crashes(), 1);
        assert_eq!(c.visits("journal.commit.pre"), 4);
    }

    #[test]
    fn points_keep_first_visit_order() {
        let c = CrashInjector::enabled();
        for p in ["b.pre", "a.pre", "b.pre", "c.post", "a.pre"] {
            c.crash_point(p, SimTime::ZERO).unwrap();
        }
        assert_eq!(c.points(), vec!["b.pre", "a.pre", "c.post"]);
        assert_eq!(c.visits("a.pre"), 2);
        assert_eq!(c.visits("unseen"), 0);
    }

    #[test]
    fn fault_rule_driven_crashes_are_seed_deterministic() {
        let run = |seed: u64| {
            let c = CrashInjector::enabled();
            let inj = Arc::new(FaultInjector::new(
                seed,
                vec![FaultRule::background(FaultKind::Crash, 0.2)],
            ));
            c.set_fault_injector(Arc::clone(&inj));
            let fired: Vec<bool> = (0..200)
                .map(|i| c.crash_point("op.pre", SimTime(i)).is_err())
                .collect();
            (fired, inj.trace_digest())
        };
        let (f1, d1) = run(11);
        let (f2, d2) = run(11);
        assert_eq!(f1, f2);
        assert_eq!(d1, d2);
        assert!(f1.iter().any(|f| *f) && f1.iter().any(|f| !*f));
        let (f3, _) = run(12);
        assert_ne!(f1, f3, "different seeds should differ somewhere");
    }

    #[test]
    fn crash_metrics_and_trace_land_in_the_fault_injector() {
        let c = CrashInjector::enabled();
        let inj = Arc::new(FaultInjector::new(0, Vec::new()));
        c.set_fault_injector(Arc::clone(&inj));
        c.arm("stage.copy.post", 1);
        let _ = c.crash_point("stage.copy.post", SimTime(5)).unwrap_err();
        assert_eq!(inj.metrics().get("faults.injected.crash"), 1);
        assert!(
            inj.trace()
                .iter()
                .any(|l| l.contains("die at stage.copy.post")),
            "{:?}",
            inj.trace()
        );
    }

    #[test]
    fn state_digest_is_order_sensitive() {
        let mut a = StateDigest::new();
        a.update(b"x");
        a.update(b"y");
        let mut b = StateDigest::new();
        b.update(b"y");
        b.update(b"x");
        assert_ne!(a.finish(), b.finish());
        assert_eq!(StateDigest::new().finish(), StateDigest::new().finish());
    }
}

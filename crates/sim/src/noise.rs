//! OS-noise amplification in bulk-synchronous programs.
//!
//! §3.2: "Spinning up a daemon on each compute node to control what is
//! most often a single container process is wasteful and may introduce
//! extra jitter." The classic mechanism: a bulk-synchronous (BSP) job
//! barriers every iteration, so *one* delayed rank delays all of them —
//! per-node noise is amplified by the max over ranks.
//!
//! The model: each rank's iteration lasts `compute` plus the noise that
//! lands in its window (Poisson arrivals of fixed-length detours); the
//! iteration completes at the max across ranks. This reproduces the
//! well-known noise-amplification curve and lets the engine monitor
//! models (dockerd per machine / conmon per container / none) be
//! compared quantitatively (`quant9`).

use crate::rng::DetRng;
use crate::time::SimSpan;

/// A per-node background-noise source.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NoiseProfile {
    /// Interruptions per second on one node.
    pub events_per_sec: f64,
    /// CPU time stolen per interruption.
    pub event_duration: SimSpan,
}

impl NoiseProfile {
    /// Baseline kernel housekeeping on a well-tuned compute node.
    pub fn quiet_node() -> NoiseProfile {
        NoiseProfile {
            events_per_sec: 10.0,
            event_duration: SimSpan::micros(5),
        }
    }

    /// Extra noise from a per-container monitor process (conmon-class).
    pub fn per_container_monitor() -> NoiseProfile {
        NoiseProfile {
            events_per_sec: 25.0,
            event_duration: SimSpan::micros(15),
        }
    }

    /// Extra noise from a per-machine root daemon (dockerd-class:
    /// containerd + dockerd + health checks).
    pub fn per_machine_daemon() -> NoiseProfile {
        NoiseProfile {
            events_per_sec: 120.0,
            event_duration: SimSpan::micros(40),
        }
    }

    /// Combine independent sources.
    pub fn plus(self, other: NoiseProfile) -> NoiseProfile {
        // Effective per-second stolen time adds; keep the larger event
        // size as representative (amplification is driven by the tail).
        let total_steal = self.events_per_sec * self.event_duration.as_secs_f64()
            + other.events_per_sec * other.event_duration.as_secs_f64();
        let duration = self.event_duration.max(other.event_duration);
        NoiseProfile {
            events_per_sec: total_steal / duration.as_secs_f64(),
            event_duration: duration,
        }
    }

    /// Fraction of one core this noise steals (the *serial* view).
    pub fn steal_fraction(&self) -> f64 {
        self.events_per_sec * self.event_duration.as_secs_f64()
    }
}

/// Result of a BSP run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BspOutcome {
    /// Total wall time across all iterations.
    pub makespan: SimSpan,
    /// Ideal (noise-free) time.
    pub ideal: SimSpan,
}

impl BspOutcome {
    /// Slowdown relative to noise-free execution.
    pub fn slowdown(&self) -> f64 {
        self.makespan.as_secs_f64() / self.ideal.as_secs_f64()
    }
}

/// Simulate a BSP job: `ranks` processes, `iterations` barriers,
/// `compute` work per iteration per rank, with per-node `noise`.
pub fn bsp_run(
    ranks: usize,
    iterations: usize,
    compute: SimSpan,
    noise: NoiseProfile,
    rng: &mut DetRng,
) -> BspOutcome {
    assert!(ranks > 0 && iterations > 0);
    let mut total = SimSpan::ZERO;
    let window = compute.as_secs_f64();
    let lambda = noise.events_per_sec * window;
    for _ in 0..iterations {
        let mut worst = SimSpan::ZERO;
        for _ in 0..ranks {
            // Number of noise events hitting this rank's window:
            // Poisson(lambda), sampled via inter-arrival summation (exact
            // and cheap for the small lambdas here).
            let mut events = 0u64;
            let mut t = rng.exponential(1.0 / noise.events_per_sec.max(1e-12));
            while t < window {
                events += 1;
                t += rng.exponential(1.0 / noise.events_per_sec.max(1e-12));
            }
            let _ = lambda;
            let delay = noise.event_duration * events;
            worst = worst.max(delay);
        }
        total += compute + worst;
    }
    BspOutcome {
        makespan: total,
        ideal: compute * iterations as u64,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn noise_free_is_ideal() {
        let mut rng = DetRng::seeded(1);
        let none = NoiseProfile {
            events_per_sec: 1e-9,
            event_duration: SimSpan::micros(1),
        };
        let out = bsp_run(64, 100, SimSpan::millis(10), none, &mut rng);
        assert!((out.slowdown() - 1.0).abs() < 0.01, "{}", out.slowdown());
    }

    #[test]
    fn slowdown_grows_with_rank_count() {
        // The amplification effect: the same per-node noise hurts more at
        // scale because max-over-ranks grows.
        let noise = NoiseProfile::per_machine_daemon();
        let mut s_small = 0.0;
        let mut s_big = 0.0;
        for seed in 0..5 {
            let mut rng = DetRng::seeded(seed);
            s_small += bsp_run(4, 50, SimSpan::millis(5), noise, &mut rng).slowdown();
            let mut rng = DetRng::seeded(seed);
            s_big += bsp_run(512, 50, SimSpan::millis(5), noise, &mut rng).slowdown();
        }
        assert!(
            s_big > s_small * 1.02,
            "512 ranks ({s_big}) should suffer more than 4 ({s_small})"
        );
    }

    #[test]
    fn daemon_noise_exceeds_monitor_noise_exceeds_quiet() {
        let mut results = Vec::new();
        for noise in [
            NoiseProfile::quiet_node(),
            NoiseProfile::quiet_node().plus(NoiseProfile::per_container_monitor()),
            NoiseProfile::quiet_node().plus(NoiseProfile::per_machine_daemon()),
        ] {
            let mut rng = DetRng::seeded(7);
            results.push(bsp_run(256, 50, SimSpan::millis(5), noise, &mut rng).slowdown());
        }
        assert!(results[0] < results[1], "{results:?}");
        assert!(results[1] < results[2], "{results:?}");
    }

    #[test]
    fn steal_fraction_composition() {
        let a = NoiseProfile::quiet_node();
        let b = NoiseProfile::per_machine_daemon();
        let combined = a.plus(b);
        let expect = a.steal_fraction() + b.steal_fraction();
        assert!((combined.steal_fraction() - expect).abs() < 1e-12);
    }

    #[test]
    fn deterministic_given_seed() {
        let noise = NoiseProfile::per_container_monitor();
        let mut r1 = DetRng::seeded(3);
        let mut r2 = DetRng::seeded(3);
        let a = bsp_run(32, 20, SimSpan::millis(2), noise, &mut r1);
        let b = bsp_run(32, 20, SimSpan::millis(2), noise, &mut r2);
        assert_eq!(a, b);
    }
}

//! Network fabric model.
//!
//! The Figure 1 proof of concept runs Kubernetes control traffic over a
//! compute cluster's *high-speed network* (Slingshot in the paper) while
//! login/management traffic rides a slower management Ethernet. The model
//! is intentionally coarse: each link class has a fixed per-message latency
//! and a bandwidth; transfers are latency + size/bandwidth, with an optional
//! per-node serialization through a [`QueueServer`] to model NIC contention.

use crate::resource::QueueServer;
use crate::time::{SimSpan, SimTime};
use crate::units::Bytes;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// The two link classes of a typical HPC system.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum LinkClass {
    /// Management / provisioning Ethernet: high latency, modest bandwidth.
    Management,
    /// High-speed interconnect (Slingshot/InfiniBand class).
    HighSpeed,
}

/// Latency/bandwidth parameters of one link class.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct LinkParams {
    pub latency: SimSpan,
    pub bandwidth_bytes_per_sec: f64,
}

impl LinkParams {
    /// Time to move `size` bytes across this link.
    pub fn transfer_time(&self, size: Bytes) -> SimSpan {
        self.latency + SimSpan::from_secs_f64(size.as_u64() as f64 / self.bandwidth_bytes_per_sec)
    }
}

/// Identifier of a node endpoint on the fabric.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct NodeId(pub u32);

/// A cluster fabric: a set of nodes reachable over both link classes, with
/// per-node NIC serialization.
#[derive(Debug)]
pub struct Fabric {
    params: HashMap<LinkClass, LinkParams>,
    nics: HashMap<NodeId, QueueServer>,
}

impl Fabric {
    /// A fabric with typical defaults: 50 µs / 1 GiB/s management Ethernet,
    /// 2 µs / 25 GiB/s high-speed network.
    pub fn with_defaults(nodes: impl IntoIterator<Item = NodeId>) -> Fabric {
        let mut params = HashMap::new();
        params.insert(
            LinkClass::Management,
            LinkParams {
                latency: SimSpan::micros(50),
                bandwidth_bytes_per_sec: 1.0 * (1u64 << 30) as f64,
            },
        );
        params.insert(
            LinkClass::HighSpeed,
            LinkParams {
                latency: SimSpan::micros(2),
                bandwidth_bytes_per_sec: 25.0 * (1u64 << 30) as f64,
            },
        );
        Fabric {
            params,
            nics: nodes
                .into_iter()
                .map(|n| (n, QueueServer::new(1)))
                .collect(),
        }
    }

    /// Override the parameters of a link class.
    pub fn set_params(&mut self, class: LinkClass, p: LinkParams) {
        self.params.insert(class, p);
    }

    /// Parameters of a link class.
    pub fn params(&self, class: LinkClass) -> LinkParams {
        self.params[&class]
    }

    /// Register a node (idempotent).
    pub fn add_node(&mut self, node: NodeId) {
        self.nics.entry(node).or_insert_with(|| QueueServer::new(1));
    }

    /// True if the node is on the fabric.
    pub fn has_node(&self, node: NodeId) -> bool {
        self.nics.contains_key(&node)
    }

    /// Send `size` bytes from `from` to `to` over `class`, the message
    /// leaving at `at`. Returns the delivery time. The sender's NIC
    /// serializes its outgoing transfers.
    pub fn send(
        &self,
        from: NodeId,
        to: NodeId,
        class: LinkClass,
        size: Bytes,
        at: SimTime,
    ) -> Result<SimTime, NetError> {
        if !self.nics.contains_key(&from) {
            return Err(NetError::UnknownNode(from));
        }
        if !self.nics.contains_key(&to) {
            return Err(NetError::UnknownNode(to));
        }
        let p = self.params[&class];
        // NIC occupies for the bandwidth term; latency overlaps in flight.
        let wire = SimSpan::from_secs_f64(size.as_u64() as f64 / p.bandwidth_bytes_per_sec);
        let (_, sent) = self.nics[&from].submit(at, wire);
        Ok(sent + p.latency)
    }
}

/// Errors from fabric operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum NetError {
    UnknownNode(NodeId),
}

impl std::fmt::Display for NetError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            NetError::UnknownNode(n) => write!(f, "node {} is not on the fabric", n.0),
        }
    }
}

impl std::error::Error for NetError {}

#[cfg(test)]
mod tests {
    use super::*;

    fn fabric() -> Fabric {
        Fabric::with_defaults((0..4).map(NodeId))
    }

    #[test]
    fn highspeed_beats_management() {
        let f = fabric();
        let size = Bytes::mib(64);
        let hs = f
            .send(
                NodeId(0),
                NodeId(1),
                LinkClass::HighSpeed,
                size,
                SimTime::ZERO,
            )
            .unwrap();
        let f2 = fabric();
        let mgmt = f2
            .send(
                NodeId(0),
                NodeId(1),
                LinkClass::Management,
                size,
                SimTime::ZERO,
            )
            .unwrap();
        assert!(hs < mgmt, "HSN {hs:?} should beat mgmt {mgmt:?}");
        // Roughly the 25x bandwidth ratio for a large transfer.
        let ratio = mgmt.since(SimTime::ZERO).as_secs_f64() / hs.since(SimTime::ZERO).as_secs_f64();
        assert!(ratio > 15.0, "ratio {ratio}");
    }

    #[test]
    fn latency_dominates_small_messages() {
        let f = fabric();
        let t = f
            .send(
                NodeId(0),
                NodeId(1),
                LinkClass::Management,
                Bytes::new(64),
                SimTime::ZERO,
            )
            .unwrap();
        let span = t.since(SimTime::ZERO);
        assert!(span >= SimSpan::micros(50));
        assert!(span < SimSpan::micros(51));
    }

    #[test]
    fn sender_nic_serializes() {
        let f = fabric();
        let size = Bytes::gib(1);
        let t1 = f
            .send(
                NodeId(0),
                NodeId(1),
                LinkClass::HighSpeed,
                size,
                SimTime::ZERO,
            )
            .unwrap();
        let t2 = f
            .send(
                NodeId(0),
                NodeId(2),
                LinkClass::HighSpeed,
                size,
                SimTime::ZERO,
            )
            .unwrap();
        assert!(t2 > t1, "second transfer from the same NIC queues");
    }

    #[test]
    fn different_senders_do_not_contend() {
        let f = fabric();
        let size = Bytes::gib(1);
        let t1 = f
            .send(
                NodeId(0),
                NodeId(2),
                LinkClass::HighSpeed,
                size,
                SimTime::ZERO,
            )
            .unwrap();
        let t2 = f
            .send(
                NodeId(1),
                NodeId(2),
                LinkClass::HighSpeed,
                size,
                SimTime::ZERO,
            )
            .unwrap();
        assert_eq!(t1, t2);
    }

    #[test]
    fn unknown_node_is_an_error() {
        let f = fabric();
        let err = f
            .send(
                NodeId(0),
                NodeId(99),
                LinkClass::HighSpeed,
                Bytes::new(1),
                SimTime::ZERO,
            )
            .unwrap_err();
        assert_eq!(err, NetError::UnknownNode(NodeId(99)));
    }

    #[test]
    fn add_node_is_idempotent() {
        let mut f = fabric();
        f.add_node(NodeId(1));
        f.add_node(NodeId(10));
        assert!(f.has_node(NodeId(10)));
    }
}

//! Byte-size newtype with binary-unit constructors and formatting.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Sub};

/// A count of bytes.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize)]
pub struct Bytes(u64);

impl Bytes {
    pub const ZERO: Bytes = Bytes(0);

    #[inline]
    pub const fn new(n: u64) -> Bytes {
        Bytes(n)
    }
    #[inline]
    pub const fn kib(n: u64) -> Bytes {
        Bytes(n << 10)
    }
    #[inline]
    pub const fn mib(n: u64) -> Bytes {
        Bytes(n << 20)
    }
    #[inline]
    pub const fn gib(n: u64) -> Bytes {
        Bytes(n << 30)
    }

    #[inline]
    pub const fn as_u64(self) -> u64 {
        self.0
    }

    /// Integer ceiling division into chunks of `chunk` bytes.
    pub fn chunks(self, chunk: Bytes) -> u64 {
        assert!(chunk.0 > 0);
        self.0.div_ceil(chunk.0)
    }

    /// Scale by a float (e.g. a compression ratio), rounding to bytes.
    pub fn scale(self, factor: f64) -> Bytes {
        assert!(factor.is_finite() && factor >= 0.0);
        Bytes((self.0 as f64 * factor).round() as u64)
    }

    #[inline]
    pub fn saturating_sub(self, rhs: Bytes) -> Bytes {
        Bytes(self.0.saturating_sub(rhs.0))
    }
}

impl Add for Bytes {
    type Output = Bytes;
    #[inline]
    fn add(self, rhs: Bytes) -> Bytes {
        Bytes(self.0 + rhs.0)
    }
}

impl AddAssign for Bytes {
    #[inline]
    fn add_assign(&mut self, rhs: Bytes) {
        self.0 += rhs.0;
    }
}

impl Sub for Bytes {
    type Output = Bytes;
    #[inline]
    fn sub(self, rhs: Bytes) -> Bytes {
        Bytes(self.0.checked_sub(rhs.0).expect("byte-size underflow"))
    }
}

impl Sum for Bytes {
    fn sum<I: Iterator<Item = Bytes>>(iter: I) -> Bytes {
        iter.fold(Bytes::ZERO, |a, b| a + b)
    }
}

impl fmt::Debug for Bytes {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(self, f)
    }
}

impl fmt::Display for Bytes {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let n = self.0;
        if n < 1 << 10 {
            write!(f, "{n}B")
        } else if n < 1 << 20 {
            write!(f, "{:.1}KiB", n as f64 / (1u64 << 10) as f64)
        } else if n < 1 << 30 {
            write!(f, "{:.1}MiB", n as f64 / (1u64 << 20) as f64)
        } else {
            write!(f, "{:.2}GiB", n as f64 / (1u64 << 30) as f64)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unit_constructors() {
        assert_eq!(Bytes::kib(1), Bytes::new(1024));
        assert_eq!(Bytes::mib(1), Bytes::kib(1024));
        assert_eq!(Bytes::gib(1), Bytes::mib(1024));
    }

    #[test]
    fn chunking_rounds_up() {
        assert_eq!(Bytes::new(100).chunks(Bytes::new(30)), 4);
        assert_eq!(Bytes::new(90).chunks(Bytes::new(30)), 3);
        assert_eq!(Bytes::ZERO.chunks(Bytes::new(30)), 0);
    }

    #[test]
    fn scaling_rounds() {
        assert_eq!(Bytes::new(100).scale(0.35), Bytes::new(35));
        assert_eq!(Bytes::new(3).scale(0.5), Bytes::new(2)); // round half up
    }

    #[test]
    fn display_picks_unit() {
        assert_eq!(format!("{}", Bytes::new(17)), "17B");
        assert_eq!(format!("{}", Bytes::kib(2)), "2.0KiB");
        assert_eq!(format!("{}", Bytes::mib(3)), "3.0MiB");
        assert_eq!(format!("{}", Bytes::gib(4)), "4.00GiB");
    }

    #[test]
    #[should_panic(expected = "underflow")]
    fn subtraction_checks_underflow() {
        let _ = Bytes::new(1) - Bytes::new(2);
    }

    #[test]
    fn sum_and_saturating() {
        let total: Bytes = [Bytes::new(1), Bytes::new(2)].into_iter().sum();
        assert_eq!(total, Bytes::new(3));
        assert_eq!(Bytes::new(1).saturating_sub(Bytes::new(5)), Bytes::ZERO);
    }
}

//! Correlated failure domains: node → rack → row → site topology plus a
//! seeded, timed outage schedule every fleet-scale workload can run under.
//!
//! PR 1's [`FaultInjector`](crate::FaultInjector) injects *independent*
//! per-operation faults. Real incidents are correlated: a rack loses
//! power and sixteen nodes vanish together; a row switch partitions every
//! rack below it from the origin registry while the rack/row caches keep
//! answering (split-brain); the origin registry itself saturates and
//! starts shedding. This module models those domain-scoped events:
//!
//! * [`DomainTopology`] — the containment hierarchy (node → rack → row →
//!   site) plus the named network links (`rack<r>.uplink`,
//!   `row<w>.uplink`, `site.origin-uplink`) an outage can sever.
//! * [`OutageKind`] / [`OutageEvent`] — what fails and over which time
//!   window; every event carries its own *timed recovery* (`until`).
//! * [`DomainSchedule`] — an ordered event list with point-in-time
//!   queries (`node_down`, `partitioned_from_origin`,
//!   `origin_overloaded`, `heal_time`) and a seeded game-day generator,
//!   so a chaos run is a pure function of (topology, seed).
//! * [`DomainHealth`] — the controller-facing snapshot `hpcc-adapt`
//!   consumes as a demand signal: how many nodes are dead or partitioned
//!   right now, so a policy stops provisioning into a dead rack.
//!
//! The schedule can also be lowered onto a [`FaultInjector`](crate::FaultInjector) rule set via
//! [`DomainSchedule::fault_rules`], so per-operation layers (retry loops,
//! brownout models) see the same windows the domain queries report.

use crate::faults::{FaultKind, FaultRule};
use crate::rng::DetRng;
use crate::time::{SimSpan, SimTime};

/// The containment hierarchy of one site: `nodes` leaf nodes grouped
/// into racks of `rack_size`, racks grouped into rows of
/// `racks_per_row`. Node ids are dense `0..nodes`, matching the node
/// indexing used by the tiered registry and the P2P fabric.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DomainTopology {
    /// Total leaf nodes at the site.
    pub nodes: usize,
    /// Nodes per rack (the blast radius of a rack power event).
    pub rack_size: usize,
    /// Racks per row (the blast radius of a row switch partition).
    pub racks_per_row: usize,
}

impl DomainTopology {
    /// A topology with explicit group sizes.
    pub fn new(nodes: usize, rack_size: usize, racks_per_row: usize) -> DomainTopology {
        DomainTopology {
            nodes,
            rack_size: rack_size.max(1),
            racks_per_row: racks_per_row.max(1),
        }
    }

    /// The default shape, aligned with the tiered registry's grouping:
    /// 16-node racks, 16 racks per row.
    pub fn default_for(nodes: usize) -> DomainTopology {
        DomainTopology::new(nodes, 16, 16)
    }

    /// Rack index of a node.
    pub fn rack_of(&self, node: usize) -> usize {
        node / self.rack_size
    }

    /// Row index of a node.
    pub fn row_of(&self, node: usize) -> usize {
        self.rack_of(node) / self.racks_per_row
    }

    /// Number of racks (last one may be partial).
    pub fn racks(&self) -> usize {
        self.nodes.div_ceil(self.rack_size)
    }

    /// Number of rows (last one may be partial).
    pub fn rows(&self) -> usize {
        self.racks().div_ceil(self.racks_per_row)
    }

    /// The dense node-id range of one rack, clamped to the fleet.
    pub fn rack_nodes(&self, rack: usize) -> std::ops::Range<usize> {
        let lo = rack * self.rack_size;
        lo.min(self.nodes)..((rack + 1) * self.rack_size).min(self.nodes)
    }

    /// The dense node-id range of one row, clamped to the fleet.
    pub fn row_nodes(&self, row: usize) -> std::ops::Range<usize> {
        let lo = row * self.racks_per_row * self.rack_size;
        let hi = (row + 1) * self.racks_per_row * self.rack_size;
        lo.min(self.nodes)..hi.min(self.nodes)
    }

    /// Every named network link in the topology: one uplink per rack,
    /// one per row, and the site's origin uplink. Severing a link is
    /// expressed as [`OutageKind::LinkDown`] on one of these names.
    pub fn link_names(&self) -> Vec<String> {
        let mut names: Vec<String> = (0..self.racks())
            .map(|r| format!("rack{r}.uplink"))
            .collect();
        names.extend((0..self.rows()).map(|w| format!("row{w}.uplink")));
        names.push("site.origin-uplink".to_string());
        names
    }
}

/// What a correlated outage strikes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum OutageKind {
    /// A rack loses power: every node in it is dead for the window
    /// (pulls from those nodes fail, P2P peers on them churn together).
    RackPower { rack: usize },
    /// A row switch partitions: nodes in the row still reach their rack
    /// and row caches (below the cut) but not the site tier or origin —
    /// the split-brain case where stale caches keep answering.
    RowPartition { row: usize },
    /// The origin registry saturates: its admission queue sheds load and
    /// service degrades for everyone until the window ends.
    OriginOverload,
    /// A named network link (see [`DomainTopology::link_names`]) is cut.
    /// `rack<r>.uplink` isolates one rack from everything above it;
    /// `row<w>.uplink` behaves like [`OutageKind::RowPartition`];
    /// `site.origin-uplink` cuts the whole site off the origin.
    LinkDown { link: String },
}

impl OutageKind {
    /// Stable label for metrics and trace lines.
    pub fn label(&self) -> &'static str {
        match self {
            OutageKind::RackPower { .. } => "rack_power",
            OutageKind::RowPartition { .. } => "row_partition",
            OutageKind::OriginOverload => "origin_overload",
            OutageKind::LinkDown { .. } => "link_down",
        }
    }
}

impl std::fmt::Display for OutageKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            OutageKind::RackPower { rack } => write!(f, "rack_power(rack{rack})"),
            OutageKind::RowPartition { row } => write!(f, "row_partition(row{row})"),
            OutageKind::OriginOverload => f.write_str("origin_overload"),
            OutageKind::LinkDown { link } => write!(f, "link_down({link})"),
        }
    }
}

/// One correlated outage with its timed recovery: active over
/// `[from, until)`, healed at `until`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OutageEvent {
    pub kind: OutageKind,
    pub from: SimTime,
    pub until: SimTime,
}

impl OutageEvent {
    /// True while the event is in force.
    pub fn active_at(&self, now: SimTime) -> bool {
        self.from <= now && now < self.until
    }
}

/// The controller-facing health snapshot: what fraction of the fleet a
/// partition policy can actually provision into right now.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DomainHealth {
    /// Fleet size the counts are against.
    pub nodes_total: usize,
    /// Nodes dead under an active rack-power (or rack-uplink) event.
    pub nodes_down: usize,
    /// Live nodes cut off from the origin by a partition. They still
    /// serve local work but cannot complete cold pulls.
    pub nodes_partitioned: usize,
    /// True while the origin registry is shedding under overload.
    pub origin_overloaded: bool,
}

impl DomainHealth {
    /// The no-outage snapshot every existing call site defaults to.
    pub fn all_healthy(nodes_total: usize) -> DomainHealth {
        DomainHealth {
            nodes_total,
            nodes_down: 0,
            nodes_partitioned: 0,
            origin_overloaded: false,
        }
    }

    /// Nodes that are neither dead nor partitioned.
    pub fn healthy_nodes(&self) -> usize {
        self.nodes_total
            .saturating_sub(self.nodes_down)
            .saturating_sub(self.nodes_partitioned)
    }

    /// True when nothing is impaired.
    pub fn is_all_healthy(&self) -> bool {
        self.nodes_down == 0 && self.nodes_partitioned == 0 && !self.origin_overloaded
    }
}

/// A topology plus its ordered outage schedule. All queries are pure
/// functions of `(topology, events, now)`, so two runs over the same
/// schedule are bit-identical.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DomainSchedule {
    topo: DomainTopology,
    events: Vec<OutageEvent>,
}

impl DomainSchedule {
    /// An empty schedule: every query reports healthy forever.
    pub fn quiet(topo: DomainTopology) -> DomainSchedule {
        DomainSchedule {
            topo,
            events: Vec::new(),
        }
    }

    /// A schedule with an explicit event list.
    pub fn new(topo: DomainTopology, mut events: Vec<OutageEvent>) -> DomainSchedule {
        events.sort_by_key(|e| (e.from, e.until));
        DomainSchedule { topo, events }
    }

    /// A seeded game-day schedule: one rack power loss, one row
    /// partition and one origin overload, placed deterministically from
    /// `seed` inside `[warmup, warmup + 3 * outage)` with staggered,
    /// non-overlapping windows — the standard `bench_chaos` storyline.
    pub fn game_day(
        topo: DomainTopology,
        seed: u64,
        warmup: SimSpan,
        outage: SimSpan,
    ) -> DomainSchedule {
        let mut rng = DetRng::seeded(seed ^ 0xd0_d0_0d);
        let rack = rng.uniform(0, topo.racks().max(1) as u64) as usize;
        let row = rng.uniform(0, topo.rows().max(1) as u64) as usize;
        let t0 = SimTime::ZERO + warmup;
        let events = vec![
            OutageEvent {
                kind: OutageKind::RackPower { rack },
                from: t0,
                until: t0 + outage,
            },
            OutageEvent {
                kind: OutageKind::RowPartition { row },
                from: t0 + outage,
                until: t0 + outage + outage,
            },
            OutageEvent {
                kind: OutageKind::OriginOverload,
                from: t0 + outage + outage,
                until: t0 + outage + outage + outage,
            },
        ];
        DomainSchedule::new(topo, events)
    }

    /// The topology the events are scoped to.
    pub fn topology(&self) -> &DomainTopology {
        &self.topo
    }

    /// The ordered event list.
    pub fn events(&self) -> &[OutageEvent] {
        &self.events
    }

    fn active(&self, now: SimTime) -> impl Iterator<Item = &OutageEvent> {
        self.events.iter().filter(move |e| e.active_at(now))
    }

    /// True when `node` is dead at `now` (rack power loss, or its rack
    /// uplink cut — an unreachable node is operationally down).
    pub fn node_down(&self, node: usize, now: SimTime) -> bool {
        let rack = self.topo.rack_of(node);
        self.active(now).any(|e| match &e.kind {
            OutageKind::RackPower { rack: r } => *r == rack,
            OutageKind::LinkDown { link } => link == &format!("rack{rack}.uplink"),
            _ => false,
        })
    }

    /// True when `node` is alive but cut off from the origin/site tier
    /// at `now` (row partition, row uplink or site origin-uplink down).
    pub fn partitioned_from_origin(&self, node: usize, now: SimTime) -> bool {
        let row = self.topo.row_of(node);
        self.active(now).any(|e| match &e.kind {
            OutageKind::RowPartition { row: w } => *w == row,
            OutageKind::LinkDown { link } => {
                link == "site.origin-uplink" || link == &format!("row{row}.uplink")
            }
            _ => false,
        })
    }

    /// True when a row-level cut severs `row` from the site tier at
    /// `now` — the query the tiered registry's recursion gates on.
    pub fn row_partitioned(&self, row: usize, now: SimTime) -> bool {
        self.active(now).any(|e| match &e.kind {
            OutageKind::RowPartition { row: w } => *w == row,
            OutageKind::LinkDown { link } => {
                link == "site.origin-uplink" || link == &format!("row{row}.uplink")
            }
            _ => false,
        })
    }

    /// True while the origin registry is saturated.
    pub fn origin_overloaded(&self, now: SimTime) -> bool {
        self.active(now)
            .any(|e| matches!(e.kind, OutageKind::OriginOverload))
    }

    /// True when the named link is cut at `now`.
    pub fn link_down(&self, link: &str, now: SimTime) -> bool {
        self.active(now)
            .any(|e| matches!(&e.kind, OutageKind::LinkDown { link: l } if l == link))
    }

    /// True while *any* event is in force.
    pub fn any_active(&self, now: SimTime) -> bool {
        self.active(now).next().is_some()
    }

    /// When every event active at `now` has healed (`None` when nothing
    /// is active). This is the timed-recovery instant a chaos gate
    /// measures recovery-to-baseline from.
    pub fn heal_time(&self, now: SimTime) -> Option<SimTime> {
        self.active(now).map(|e| e.until).max()
    }

    /// The nodes dead under any event active at `now`, dense-sorted.
    /// Feed this to the P2P repair fast path to re-parent around a dead
    /// rack in one sweep instead of one peer at a time.
    pub fn dead_nodes(&self, now: SimTime) -> Vec<usize> {
        let mut dead: Vec<usize> = Vec::new();
        for e in self.active(now) {
            match &e.kind {
                OutageKind::RackPower { rack } => dead.extend(self.topo.rack_nodes(*rack)),
                OutageKind::LinkDown { link } => {
                    if let Some(rest) = link.strip_prefix("rack") {
                        if let Some(r) = rest.strip_suffix(".uplink") {
                            if let Ok(r) = r.parse::<usize>() {
                                dead.extend(self.topo.rack_nodes(r));
                            }
                        }
                    }
                }
                _ => {}
            }
        }
        dead.sort_unstable();
        dead.dedup();
        dead
    }

    /// The controller-facing snapshot at `now`.
    pub fn health(&self, now: SimTime) -> DomainHealth {
        let mut down = vec![false; self.topo.nodes];
        for n in self.dead_nodes(now) {
            down[n] = true;
        }
        let nodes_down = down.iter().filter(|d| **d).count();
        let nodes_partitioned = (0..self.topo.nodes)
            .filter(|n| !down[*n] && self.partitioned_from_origin(*n, now))
            .count();
        DomainHealth {
            nodes_total: self.topo.nodes,
            nodes_down,
            nodes_partitioned,
            origin_overloaded: self.origin_overloaded(now),
        }
    }

    /// Lower the schedule onto per-operation fault rules so retry loops
    /// see the same windows: a partition or origin cut surfaces as
    /// sticky registry timeouts, an overload as sticky 5xx, and a rack
    /// power loss as peer churn for the broadcast sweep.
    pub fn fault_rules(&self) -> Vec<FaultRule> {
        self.events
            .iter()
            .map(|e| match &e.kind {
                OutageKind::RackPower { .. } => {
                    FaultRule::sticky(FaultKind::PeerChurn, e.from, e.until)
                }
                OutageKind::RowPartition { .. } | OutageKind::LinkDown { .. } => {
                    FaultRule::sticky(FaultKind::RegistryTimeout, e.from, e.until)
                }
                OutageKind::OriginOverload => {
                    FaultRule::sticky(FaultKind::RegistryUnavailable, e.from, e.until)
                }
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(s: u64) -> SimTime {
        SimTime::ZERO + SimSpan::secs(s)
    }

    #[test]
    fn containment_maps_nodes_to_racks_and_rows() {
        let topo = DomainTopology::new(100, 16, 2);
        assert_eq!(topo.rack_of(0), 0);
        assert_eq!(topo.rack_of(15), 0);
        assert_eq!(topo.rack_of(16), 1);
        assert_eq!(topo.row_of(31), 0);
        assert_eq!(topo.row_of(32), 1);
        assert_eq!(topo.racks(), 7);
        assert_eq!(topo.rows(), 4);
        assert_eq!(topo.rack_nodes(6), 96..100, "last rack is partial");
        assert_eq!(topo.row_nodes(3), 96..100);
        let links = topo.link_names();
        assert!(links.contains(&"rack0.uplink".to_string()));
        assert!(links.contains(&"row3.uplink".to_string()));
        assert!(links.contains(&"site.origin-uplink".to_string()));
        assert_eq!(links.len(), 7 + 4 + 1);
    }

    #[test]
    fn rack_power_kills_exactly_that_rack_for_the_window() {
        let topo = DomainTopology::new(64, 16, 2);
        let sched = DomainSchedule::new(
            topo,
            vec![OutageEvent {
                kind: OutageKind::RackPower { rack: 1 },
                from: t(10),
                until: t(20),
            }],
        );
        assert!(!sched.node_down(16, t(9)), "before the window");
        assert!(sched.node_down(16, t(10)));
        assert!(sched.node_down(31, t(19)));
        assert!(!sched.node_down(32, t(15)), "rack 2 unaffected");
        assert!(!sched.node_down(16, t(20)), "timed recovery");
        assert_eq!(sched.dead_nodes(t(15)), (16..32).collect::<Vec<_>>());
        assert_eq!(sched.heal_time(t(15)), Some(t(20)));
        assert_eq!(sched.heal_time(t(25)), None);
    }

    #[test]
    fn row_partition_splits_brain_but_keeps_nodes_alive() {
        let topo = DomainTopology::new(64, 16, 2);
        let sched = DomainSchedule::new(
            topo,
            vec![OutageEvent {
                kind: OutageKind::RowPartition { row: 0 },
                from: t(5),
                until: t(15),
            }],
        );
        assert!(!sched.node_down(0, t(10)), "partitioned nodes stay alive");
        assert!(sched.partitioned_from_origin(0, t(10)));
        assert!(sched.row_partitioned(0, t(10)));
        assert!(!sched.partitioned_from_origin(32, t(10)), "row 1 fine");
        assert!(!sched.partitioned_from_origin(0, t(15)), "healed");
        let h = sched.health(t(10));
        assert_eq!(h.nodes_down, 0);
        assert_eq!(h.nodes_partitioned, 32);
        assert_eq!(h.healthy_nodes(), 32);
        assert!(!h.is_all_healthy());
    }

    #[test]
    fn link_cuts_map_to_their_blast_radius() {
        let topo = DomainTopology::new(64, 16, 2);
        let sched = DomainSchedule::new(
            topo,
            vec![
                OutageEvent {
                    kind: OutageKind::LinkDown {
                        link: "rack0.uplink".to_string(),
                    },
                    from: t(0),
                    until: t(10),
                },
                OutageEvent {
                    kind: OutageKind::LinkDown {
                        link: "site.origin-uplink".to_string(),
                    },
                    from: t(20),
                    until: t(30),
                },
            ],
        );
        assert!(sched.node_down(3, t(5)), "rack uplink cut isolates rack 0");
        assert!(!sched.node_down(17, t(5)));
        assert!(sched.link_down("rack0.uplink", t(5)));
        assert!(!sched.link_down("rack0.uplink", t(15)));
        // Origin uplink: everyone partitioned, nobody dead.
        assert!(sched.partitioned_from_origin(50, t(25)));
        assert!(!sched.node_down(50, t(25)));
        assert_eq!(sched.dead_nodes(t(5)), (0..16).collect::<Vec<_>>());
    }

    #[test]
    fn origin_overload_is_global_and_timed() {
        let topo = DomainTopology::default_for(256);
        let sched = DomainSchedule::new(
            topo,
            vec![OutageEvent {
                kind: OutageKind::OriginOverload,
                from: t(100),
                until: t(160),
            }],
        );
        assert!(!sched.origin_overloaded(t(99)));
        assert!(sched.origin_overloaded(t(100)));
        assert!(sched.health(t(120)).origin_overloaded);
        assert!(!sched.origin_overloaded(t(160)));
        assert!(sched.health(t(200)).is_all_healthy());
    }

    #[test]
    fn game_day_is_deterministic_and_staggered() {
        let topo = DomainTopology::default_for(1024);
        let a = DomainSchedule::game_day(topo, 42, SimSpan::secs(10), SimSpan::secs(30));
        let b = DomainSchedule::game_day(topo, 42, SimSpan::secs(10), SimSpan::secs(30));
        assert_eq!(a, b, "same seed, same schedule");
        let c = DomainSchedule::game_day(topo, 43, SimSpan::secs(10), SimSpan::secs(30));
        assert_eq!(c.events().len(), 3);
        // Windows are disjoint and ordered.
        for w in a.events().windows(2) {
            assert!(w[0].until <= w[1].from);
        }
        // Struck domains are inside the topology.
        for e in a.events() {
            match &e.kind {
                OutageKind::RackPower { rack } => assert!(*rack < topo.racks()),
                OutageKind::RowPartition { row } => assert!(*row < topo.rows()),
                _ => {}
            }
        }
    }

    #[test]
    fn fault_rules_mirror_the_event_windows() {
        let topo = DomainTopology::default_for(64);
        let sched = DomainSchedule::game_day(topo, 7, SimSpan::secs(5), SimSpan::secs(10));
        let rules = sched.fault_rules();
        assert_eq!(rules.len(), 3);
        let kinds: Vec<FaultKind> = rules.iter().map(|r| r.kind).collect();
        assert!(kinds.contains(&FaultKind::PeerChurn));
        assert!(kinds.contains(&FaultKind::RegistryTimeout));
        assert!(kinds.contains(&FaultKind::RegistryUnavailable));
        for (rule, event) in rules.iter().zip(sched.events()) {
            assert_eq!(rule.from, event.from);
            assert_eq!(rule.until, event.until);
            assert!(rule.probability >= 1.0, "domain outages are sticky");
        }
    }
}

//! Deterministic randomness and workload distributions.
//!
//! Experiments must be reproducible run-to-run, so every stochastic model
//! takes a [`DetRng`] seeded explicitly. On top of the raw generator we
//! provide the distributions the workload generators need: exponential
//! inter-arrivals, Zipf-distributed image popularity (registry experiments),
//! Pareto/log-normal file sizes (small-file experiments).

/// Deterministic RNG: xoshiro256** seeded via splitmix64, plus the
/// sampling helpers used by the workload generators. Self-contained so the
/// stream is stable across toolchains and needs no external crates.
#[derive(Debug, Clone)]
pub struct DetRng {
    state: [u64; 4],
}

impl DetRng {
    /// Create a generator from an explicit seed. The same seed always
    /// produces the same stream.
    pub fn seeded(seed: u64) -> DetRng {
        // splitmix64 expansion of the seed into the xoshiro state; the
        // expander guarantees a non-zero state for every seed.
        let mut s = seed;
        let mut next = || {
            s = s.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = s;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        DetRng {
            state: [next(), next(), next(), next()],
        }
    }

    /// Next raw 64-bit output (xoshiro256**).
    pub fn next_u64(&mut self) -> u64 {
        let [s0, s1, s2, s3] = self.state;
        let result = s1.wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = s1 << 17;
        let mut s = [s0, s1, s2, s3];
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        self.state = s;
        result
    }

    /// Fork an independent child stream, e.g. one per simulated node, so
    /// adding nodes does not perturb the streams of existing nodes.
    pub fn fork(&mut self, stream: u64) -> DetRng {
        let base = self.next_u64();
        DetRng::seeded(base ^ stream.wrapping_mul(0x9E37_79B9_7F4A_7C15))
    }

    /// Uniform in `[0, 1)`.
    pub fn unit(&mut self) -> f64 {
        // 53 high bits → uniform double in [0, 1).
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform integer in `[lo, hi)`. Panics if `lo >= hi`.
    pub fn uniform(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo < hi, "empty uniform range {lo}..{hi}");
        let span = hi - lo;
        // Rejection sampling to avoid modulo bias on wide spans.
        let zone = u64::MAX - (u64::MAX % span);
        loop {
            let v = self.next_u64();
            if v < zone {
                return lo + v % span;
            }
        }
    }

    /// Bernoulli trial with probability `p`.
    pub fn chance(&mut self, p: f64) -> bool {
        self.unit() < p
    }

    /// Exponential variate with the given mean (inverse rate).
    pub fn exponential(&mut self, mean: f64) -> f64 {
        assert!(mean > 0.0);
        let u = 1.0 - self.unit(); // in (0, 1]
        -mean * u.ln()
    }

    /// Bounded Pareto variate (shape `alpha`, bounds `[lo, hi]`), used for
    /// heavy-tailed file sizes.
    pub fn pareto(&mut self, alpha: f64, lo: f64, hi: f64) -> f64 {
        assert!(alpha > 0.0 && lo > 0.0 && hi > lo);
        let u = self.unit();
        let la = lo.powf(alpha);
        let ha = hi.powf(alpha);
        // Inverse-CDF of the bounded Pareto distribution.
        (-(u * ha - u * la - ha) / (ha * la)).powf(-1.0 / alpha)
    }

    /// Log-normal variate with the given parameters of the underlying
    /// normal (`mu`, `sigma`).
    pub fn log_normal(&mut self, mu: f64, sigma: f64) -> f64 {
        (mu + sigma * self.std_normal()).exp()
    }

    /// Standard normal via Box–Muller.
    pub fn std_normal(&mut self) -> f64 {
        let u1 = (1.0 - self.unit()).max(f64::MIN_POSITIVE);
        let u2 = self.unit();
        (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
    }

    /// Choose an index from a slice of weights, proportionally.
    pub fn weighted_index(&mut self, weights: &[f64]) -> usize {
        let total: f64 = weights.iter().sum();
        assert!(total > 0.0, "weights must not all be zero");
        let mut x = self.unit() * total;
        for (i, w) in weights.iter().enumerate() {
            if x < *w {
                return i;
            }
            x -= w;
        }
        weights.len() - 1
    }

    /// Shuffle a slice in place (Fisher–Yates).
    pub fn shuffle<T>(&mut self, items: &mut [T]) {
        for i in (1..items.len()).rev() {
            let j = self.uniform(0, i as u64 + 1) as usize;
            items.swap(i, j);
        }
    }
}

/// Zipf sampler over ranks `0..n`, exponent `s`. Popular images in registry
/// experiments follow this ("a few base images dominate pulls").
#[derive(Debug, Clone)]
pub struct Zipf {
    cdf: Vec<f64>,
}

impl Zipf {
    pub fn new(n: usize, s: f64) -> Zipf {
        assert!(n > 0, "Zipf over an empty support");
        let mut weights: Vec<f64> = (1..=n).map(|k| 1.0 / (k as f64).powf(s)).collect();
        let total: f64 = weights.iter().sum();
        let mut acc = 0.0;
        for w in &mut weights {
            acc += *w / total;
            *w = acc;
        }
        Zipf { cdf: weights }
    }

    /// Sample a rank in `0..n`; rank 0 is the most popular.
    pub fn sample(&self, rng: &mut DetRng) -> usize {
        let u = rng.unit();
        match self.cdf.binary_search_by(|p| p.partial_cmp(&u).unwrap()) {
            Ok(i) | Err(i) => i.min(self.cdf.len() - 1),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = DetRng::seeded(42);
        let mut b = DetRng::seeded(42);
        for _ in 0..100 {
            assert_eq!(a.unit().to_bits(), b.unit().to_bits());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = DetRng::seeded(1);
        let mut b = DetRng::seeded(2);
        let same = (0..32).filter(|_| a.unit() == b.unit()).count();
        assert!(same < 4);
    }

    #[test]
    fn fork_streams_are_deterministic_and_independent() {
        let mut root1 = DetRng::seeded(7);
        let mut root2 = DetRng::seeded(7);
        let mut a1 = root1.fork(0);
        let mut a2 = root2.fork(0);
        assert_eq!(a1.uniform(0, 1 << 30), a2.uniform(0, 1 << 30));
    }

    #[test]
    fn exponential_mean_is_close() {
        let mut rng = DetRng::seeded(3);
        let n = 20_000;
        let mean = 5.0;
        let sum: f64 = (0..n).map(|_| rng.exponential(mean)).sum();
        let got = sum / n as f64;
        assert!((got - mean).abs() / mean < 0.05, "mean {got}");
    }

    #[test]
    fn pareto_respects_bounds() {
        let mut rng = DetRng::seeded(4);
        for _ in 0..5000 {
            let x = rng.pareto(1.2, 100.0, 1_000_000.0);
            assert!((100.0..=1_000_000.0).contains(&x), "{x} out of bounds");
        }
    }

    #[test]
    fn zipf_rank0_dominates() {
        let mut rng = DetRng::seeded(5);
        let z = Zipf::new(100, 1.1);
        let mut counts = [0usize; 100];
        for _ in 0..20_000 {
            counts[z.sample(&mut rng)] += 1;
        }
        assert!(counts[0] > counts[10] && counts[10] > counts[90]);
        // All mass within support.
        assert_eq!(counts.iter().sum::<usize>(), 20_000);
    }

    #[test]
    fn weighted_index_follows_weights() {
        let mut rng = DetRng::seeded(6);
        let w = [1.0, 0.0, 9.0];
        let mut counts = [0usize; 3];
        for _ in 0..10_000 {
            counts[rng.weighted_index(&w)] += 1;
        }
        assert_eq!(counts[1], 0);
        assert!(counts[2] > counts[0] * 5);
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = DetRng::seeded(8);
        let mut v: Vec<u32> = (0..50).collect();
        rng.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
    }

    #[test]
    fn std_normal_moments() {
        let mut rng = DetRng::seeded(9);
        let n = 20_000;
        let xs: Vec<f64> = (0..n).map(|_| rng.std_normal()).collect();
        let mean = xs.iter().sum::<f64>() / n as f64;
        let var = xs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.05, "mean {mean}");
        assert!((var - 1.0).abs() < 0.1, "var {var}");
    }
}

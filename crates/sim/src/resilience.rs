//! Reusable self-healing primitives: circuit breakers, hedged requests,
//! deadline propagation and admission-control load shedding.
//!
//! [`crate::faults::RetryPolicy`] handles *per-request* failure; this
//! module adds the *per-endpoint* layer the survey's multi-domain
//! deployments survive on. All state advances over logical time and all
//! jitter is drawn from the shared [`FaultInjector`] RNG, so every
//! decision is a pure function of (seed, call order):
//!
//! * [`CircuitBreaker`] — closed → open → half-open per endpoint. After
//!   [`BreakerConfig::failure_threshold`] consecutive failures the
//!   breaker opens and short-circuits callers (they fail over instead of
//!   burning retry budget against a dead endpoint); after a seeded
//!   cooldown a single half-open probe decides whether to close.
//! * [`run_hedged`] — a retry loop whose slow attempts are raced against
//!   a hedge to a replica, capped by a shared [`HedgeBudget`]. The loser
//!   is cancelled: it consumes no retry attempts and emits no `degrade.*`
//!   metrics — hedging is *latency* insurance, not a degradation event.
//! * [`Deadline`] — a propagatable completion bound; callers clamp their
//!   [`RetryPolicy`] to the remaining budget so a chain of fallbacks
//!   shares one deadline instead of stacking its own.
//! * [`AdmissionQueue`] — bounded-wait admission control for the origin
//!   registry: a request whose projected queue wait exceeds the bound is
//!   shed immediately (with a retry-after hint) instead of timing out
//!   after holding a slot — the queue-saturation half of a brownout.
//!
//! Both the half-open probe and the shed decision pass named crash
//! points (`resilience.breaker.probe.pre`, `resilience.admission.shed.pre`)
//! so the crash matrix can kill a process mid-probe and mid-shed and
//! prove the state machines recover.

use crate::crash::{CrashInjector, Crashed};
use crate::faults::{FaultInjector, RetryCause, RetryErr, RetryOk, RetryPolicy};
use crate::obs::Stage;
use crate::time::{SimSpan, SimTime};
use parking_lot::Mutex;
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};

/// Crash point passed immediately before a half-open probe is granted.
pub const BREAKER_PROBE_CRASH_POINT: &str = "resilience.breaker.probe.pre";
/// Crash point passed immediately before a shed decision is returned.
pub const ADMISSION_SHED_CRASH_POINT: &str = "resilience.admission.shed.pre";

// ------------------------------------------------------------- breakers

/// Circuit-breaker tuning.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BreakerConfig {
    /// Consecutive failures that trip the breaker open.
    pub failure_threshold: u32,
    /// Minimum open time before a half-open probe is allowed.
    pub cooldown: SimSpan,
    /// The probe instant is `cooldown * (1 + probe_jitter * u)` with `u`
    /// drawn from the injector RNG in `[0, 1)` — jitter only *delays*
    /// the probe, so co-tripped breakers de-synchronize their probes
    /// without ever probing before the cooldown.
    pub probe_jitter: f64,
    /// Successful half-open probes required to close again.
    pub success_to_close: u32,
}

impl Default for BreakerConfig {
    fn default() -> BreakerConfig {
        BreakerConfig {
            failure_threshold: 3,
            cooldown: SimSpan::secs(5),
            probe_jitter: 0.2,
            success_to_close: 1,
        }
    }
}

/// Observable breaker state (the classic three-state machine).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BreakerState {
    /// Requests flow; consecutive failures are counted.
    Closed,
    /// Requests are short-circuited until `probe_at`.
    Open {
        /// Earliest instant a half-open probe will be granted.
        probe_at: SimTime,
    },
    /// One probe is in flight; its outcome closes or re-opens.
    HalfOpen,
}

#[derive(Debug)]
struct BreakerInner {
    state: BreakerState,
    consecutive_failures: u32,
    half_open_successes: u32,
}

/// A per-endpoint circuit breaker over logical time.
///
/// Callers ask [`allow`](CircuitBreaker::allow) before each request and
/// report the outcome with [`on_success`](CircuitBreaker::on_success) /
/// [`on_failure`](CircuitBreaker::on_failure). Every transition lands in
/// the injector's metrics (`breaker.<name>.*`) and ordered trace.
#[derive(Debug)]
pub struct CircuitBreaker {
    name: String,
    cfg: BreakerConfig,
    inner: Mutex<BreakerInner>,
}

impl CircuitBreaker {
    /// A closed breaker for one named endpoint.
    pub fn new(name: impl Into<String>, cfg: BreakerConfig) -> CircuitBreaker {
        CircuitBreaker {
            name: name.into(),
            cfg,
            inner: Mutex::new(BreakerInner {
                state: BreakerState::Closed,
                consecutive_failures: 0,
                half_open_successes: 0,
            }),
        }
    }

    /// The endpoint name transitions are tagged with.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Current state snapshot.
    pub fn state(&self) -> BreakerState {
        self.inner.lock().state
    }

    /// May a request proceed at `now`? `Ok(false)` is a short-circuit:
    /// the caller should fail over immediately without attempting the
    /// endpoint. When the cooldown has elapsed this grants exactly one
    /// half-open probe (passing [`BREAKER_PROBE_CRASH_POINT`] first, so
    /// a crash mid-probe leaves the breaker open — re-probed, not
    /// wedged, after recovery).
    pub fn allow(
        &self,
        injector: &FaultInjector,
        crash: &CrashInjector,
        now: SimTime,
    ) -> Result<bool, Crashed> {
        let mut inner = self.inner.lock();
        match inner.state {
            BreakerState::Closed => Ok(true),
            BreakerState::HalfOpen => {
                // One probe at a time; everyone else keeps failing over.
                injector
                    .metrics()
                    .incr(&format!("breaker.{}.short_circuit", self.name));
                Ok(false)
            }
            BreakerState::Open { probe_at } => {
                if now < probe_at {
                    injector
                        .metrics()
                        .incr(&format!("breaker.{}.short_circuit", self.name));
                    return Ok(false);
                }
                // The crash point fires *before* the transition: a
                // process that dies mid-probe comes back with the
                // breaker still open and simply probes again.
                crash.crash_point(BREAKER_PROBE_CRASH_POINT, now)?;
                inner.state = BreakerState::HalfOpen;
                inner.half_open_successes = 0;
                injector
                    .metrics()
                    .incr(&format!("breaker.{}.half_open", self.name));
                injector.note(format!("- {now} breaker {} half-open (probe)", self.name));
                Ok(true)
            }
        }
    }

    /// Report a successful request at `now`.
    pub fn on_success(&self, injector: &FaultInjector, now: SimTime) {
        let mut inner = self.inner.lock();
        match inner.state {
            BreakerState::Closed => inner.consecutive_failures = 0,
            BreakerState::HalfOpen => {
                inner.half_open_successes += 1;
                if inner.half_open_successes >= self.cfg.success_to_close {
                    inner.state = BreakerState::Closed;
                    inner.consecutive_failures = 0;
                    injector
                        .metrics()
                        .incr(&format!("breaker.{}.close", self.name));
                    injector.note(format!("- {now} breaker {} closed", self.name));
                }
            }
            // A success against an open breaker means the caller raced a
            // request that was admitted before the trip; ignore it.
            BreakerState::Open { .. } => {}
        }
    }

    /// Report a failed request at `now`. Trips the breaker after
    /// [`BreakerConfig::failure_threshold`] consecutive failures; a
    /// failed half-open probe re-opens immediately with a fresh seeded
    /// cooldown.
    pub fn on_failure(&self, injector: &FaultInjector, now: SimTime) {
        let mut inner = self.inner.lock();
        match inner.state {
            BreakerState::Closed => {
                inner.consecutive_failures += 1;
                if inner.consecutive_failures >= self.cfg.failure_threshold {
                    self.trip(&mut inner, injector, now, "open");
                }
            }
            BreakerState::HalfOpen => self.trip(&mut inner, injector, now, "reopen"),
            BreakerState::Open { .. } => {}
        }
    }

    fn trip(&self, inner: &mut BreakerInner, injector: &FaultInjector, now: SimTime, what: &str) {
        let jitter = if self.cfg.probe_jitter > 0.0 {
            1.0 + self.cfg.probe_jitter * injector.with_rng(|rng| rng.unit())
        } else {
            1.0
        };
        let probe_at = now + self.cfg.cooldown.scale(jitter);
        inner.state = BreakerState::Open { probe_at };
        inner.consecutive_failures = 0;
        injector
            .metrics()
            .incr(&format!("breaker.{}.{what}", self.name));
        injector.note(format!(
            "- {now} breaker {} {what} (probe at {probe_at})",
            self.name
        ));
    }
}

// ------------------------------------------------------------- deadline

/// A propagatable completion bound: "this whole operation — every retry,
/// every fallback — must finish by `at`".
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub struct Deadline {
    /// Absolute completion bound.
    pub at: SimTime,
}

impl Deadline {
    /// A deadline `budget` after `start`.
    pub fn after(start: SimTime, budget: SimSpan) -> Deadline {
        Deadline { at: start + budget }
    }

    /// Remaining budget at `now`; `None` once expired.
    pub fn remaining(&self, now: SimTime) -> Option<SimSpan> {
        (now < self.at).then(|| self.at.since(now))
    }

    /// True once the bound has passed.
    pub fn expired(&self, now: SimTime) -> bool {
        now >= self.at
    }

    /// Clamp a retry policy's own deadline to this bound's remainder:
    /// the propagation step each hop of a degradation chain applies
    /// before retrying, so fallbacks share the caller's budget instead
    /// of stacking fresh 60-second deadlines. An expired deadline yields
    /// a zero-budget policy (the first backoff gives up immediately).
    /// (Named `clamp_policy` because `Ord::clamp` shadows an inherent
    /// `clamp` on a by-value receiver.)
    pub fn clamp_policy(&self, policy: RetryPolicy, now: SimTime) -> RetryPolicy {
        let remaining = self.remaining(now).unwrap_or(SimSpan(0));
        RetryPolicy {
            deadline: policy.deadline.min(remaining),
            ..policy
        }
    }
}

impl fmt::Display for Deadline {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "deadline@{}", self.at)
    }
}

// -------------------------------------------------------------- hedging

/// Hedged-request tuning.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HedgePolicy {
    /// A primary attempt slower than this triggers a hedge to the
    /// replica (launched at `start + hedge_after`).
    pub hedge_after: SimSpan,
}

impl Default for HedgePolicy {
    fn default() -> HedgePolicy {
        HedgePolicy {
            hedge_after: SimSpan::millis(50),
        }
    }
}

/// A shared cap on hedges issued across a whole run, so tail-latency
/// insurance cannot double the load on the replica during an incident.
#[derive(Debug)]
pub struct HedgeBudget {
    remaining: AtomicU64,
}

impl HedgeBudget {
    /// A budget of `cap` hedges.
    pub fn new(cap: u64) -> HedgeBudget {
        HedgeBudget {
            remaining: AtomicU64::new(cap),
        }
    }

    /// Take one hedge from the budget; false once exhausted.
    pub fn try_take(&self) -> bool {
        self.remaining
            .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |r| r.checked_sub(1))
            .is_ok()
    }

    /// Hedges left.
    pub fn remaining(&self) -> u64 {
        self.remaining.load(Ordering::Relaxed)
    }
}

/// [`RetryPolicy::run_timed`] with hedging: each attempt races the
/// primary against a replica hedge launched [`HedgePolicy::hedge_after`]
/// into the attempt, and the earlier completion wins.
///
/// The deadline-under-hedging contract, pinned by regression tests:
///
/// * the hedged pair is **one** attempt — `retry.<op>.attempts` counts
///   the pair once, and a hedge win never consumes extra retry budget;
/// * the **loser is cancelled** — its result is dropped, it emits no
///   `degrade.*` metrics and no retry/give-up accounting of its own;
/// * a failed hedge never surfaces: the primary's outcome stands.
///
/// The winner's completion then flows through the policy's normal
/// stage-timeout / deadline handling, so a hedge that beats the stage
/// timeout genuinely rescues the attempt.
#[allow(clippy::too_many_arguments)]
pub fn run_hedged<T, E: fmt::Display>(
    policy: &RetryPolicy,
    hedge: &HedgePolicy,
    budget: &HedgeBudget,
    injector: &FaultInjector,
    op: &str,
    stage: Stage,
    start: SimTime,
    mut transient: impl FnMut(&E) -> bool,
    mut primary_fn: impl FnMut(u32, SimTime) -> Result<(T, SimTime), E>,
    mut hedge_fn: impl FnMut(u32, SimTime) -> Result<(T, SimTime), E>,
) -> Result<RetryOk<T>, RetryErr<E>> {
    let m = injector.metrics();
    let hard_deadline = start + policy.deadline;
    let mut now = start;
    let mut attempts = 0;
    loop {
        attempts += 1;
        m.incr(&format!("retry.{op}.attempts"));
        let outcome = match primary_fn(attempts, now) {
            Ok((value, done)) if done.since(now) > hedge.hedge_after && budget.try_take() => {
                // Slow primary: race a hedge from `now + hedge_after`.
                m.incr(&format!("hedge.{op}.launched"));
                let hedge_start = now + hedge.hedge_after;
                match hedge_fn(attempts, hedge_start) {
                    Ok((hv, hdone)) if hdone < done => {
                        // Hedge wins; the primary is cancelled at the
                        // winner's completion — no attempt consumed, no
                        // degrade recorded.
                        m.incr(&format!("hedge.{op}.win"));
                        m.incr(&format!("hedge.{op}.cancelled"));
                        injector.note(format!(
                            "- {hdone} {op} [{stage}] hedge won (primary would finish {done})"
                        ));
                        Ok((hv, hdone))
                    }
                    Ok(_) => {
                        // Primary wins; the hedge is cancelled.
                        m.incr(&format!("hedge.{op}.cancelled"));
                        Ok((value, done))
                    }
                    Err(_) => {
                        // A failed hedge never surfaces.
                        m.incr(&format!("hedge.{op}.hedge_failed"));
                        Ok((value, done))
                    }
                }
            }
            other => other,
        };
        let cause = match outcome {
            Ok((value, done)) => {
                let took = done.since(now);
                match policy.attempt_timeout {
                    Some(limit) if took > limit => {
                        now += limit;
                        m.incr(&format!("retry.{op}.stage_timeout"));
                        injector.note(format!(
                            "- {now} {op} [{stage}] attempt {attempts} hit stage timeout {limit} (op needed {took})"
                        ));
                        RetryCause::StageTimeout { limit, took }
                    }
                    _ => {
                        if attempts > 1 {
                            m.incr(&format!("retry.{op}.recovered"));
                            m.observe(
                                &format!("retry.{op}.recovery_ns"),
                                done.since(start).as_nanos(),
                            );
                            injector.note(format!(
                                "- {done} {op} [{stage}] recovered on attempt {attempts}"
                            ));
                        }
                        return Ok(RetryOk {
                            value,
                            done,
                            attempts,
                        });
                    }
                }
            }
            Err(e) => {
                if !transient(&e) {
                    m.incr(&format!("retry.{op}.fatal"));
                    return Err(RetryErr {
                        cause: RetryCause::Op(e),
                        at: now,
                        attempts,
                        gave_up: false,
                    });
                }
                RetryCause::Op(e)
            }
        };
        if attempts >= policy.max_attempts {
            m.incr(&format!("retry.{op}.giveup"));
            injector.note(format!(
                "- {now} {op} [{stage}] gave up after {attempts} attempts: {cause}"
            ));
            return Err(RetryErr {
                cause,
                at: now,
                attempts,
                gave_up: true,
            });
        }
        let pause = injector.with_rng(|rng| policy.backoff(attempts, rng));
        if now + pause > hard_deadline {
            m.incr(&format!("retry.{op}.giveup"));
            injector.note(format!(
                "- {now} {op} [{stage}] gave up: deadline {} exhausted after {attempts} attempts: {cause}",
                policy.deadline
            ));
            return Err(RetryErr {
                cause,
                at: now,
                attempts,
                gave_up: true,
            });
        }
        now += pause;
        m.incr(&format!("retry.{op}.backoff"));
    }
}

// ------------------------------------------------------------ admission

/// Admission-control tuning for a shedding queue.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AdmissionConfig {
    /// Service slots (the origin's egress concurrency).
    pub slots: usize,
    /// Shed any request whose projected queue wait exceeds this.
    pub max_wait: SimSpan,
}

impl Default for AdmissionConfig {
    fn default() -> AdmissionConfig {
        AdmissionConfig {
            slots: 8,
            max_wait: SimSpan::secs(2),
        }
    }
}

/// Outcome of one admission decision.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Admission {
    /// The request was admitted: service starts at `start`, completes at
    /// `done`.
    Admitted { start: SimTime, done: SimTime },
    /// The request was shed: the projected wait exceeded the bound. The
    /// caller should retry no sooner than `retry_after` or fail over.
    Shed { retry_after: SimSpan },
}

/// A bounded-wait admission queue: the load-shedding front door of the
/// origin registry. Unlike a raw [`QueueServer`](crate::QueueServer),
/// which queues unboundedly and converts overload into unbounded latency,
/// this sheds early — overload shows up as fast, explicit rejections the
/// resilience layer can fail over on, not as timeouts that hold slots.
#[derive(Debug)]
pub struct AdmissionQueue {
    name: String,
    cfg: AdmissionConfig,
    next_free: Mutex<Vec<SimTime>>,
}

impl AdmissionQueue {
    /// A new queue named for its metrics (`admission.<name>.*`).
    pub fn new(name: impl Into<String>, cfg: AdmissionConfig) -> AdmissionQueue {
        AdmissionQueue {
            name: name.into(),
            cfg,
            next_free: Mutex::new(vec![SimTime::ZERO; cfg.slots.max(1)]),
        }
    }

    /// The configured (healthy) slot count.
    pub fn slots(&self) -> usize {
        self.cfg.slots.max(1)
    }

    /// Admit-or-shed one request arriving at `now` needing `service`.
    /// `slots_now` is the capacity currently live (≤ configured slots;
    /// an overloaded origin runs degraded). The shed decision passes
    /// [`ADMISSION_SHED_CRASH_POINT`] before returning, so the crash
    /// matrix can kill a process mid-shed — a shed holds no slot, so
    /// recovery sees an unchanged queue.
    pub fn admit(
        &self,
        injector: &FaultInjector,
        crash: &CrashInjector,
        now: SimTime,
        service: SimSpan,
        slots_now: usize,
    ) -> Result<Admission, Crashed> {
        let mut next_free = self.next_free.lock();
        let live = slots_now.clamp(1, next_free.len());
        let (slot, free_at) = next_free[..live]
            .iter()
            .copied()
            .enumerate()
            .min_by_key(|(i, t)| (*t, *i))
            .expect("at least one slot");
        let start = free_at.max(now);
        let wait = start.since(now);
        if wait > self.cfg.max_wait {
            crash.crash_point(ADMISSION_SHED_CRASH_POINT, now)?;
            injector
                .metrics()
                .incr(&format!("admission.{}.shed", self.name));
            injector.note(format!(
                "- {now} admission {} shed (projected wait {wait} > {})",
                self.name, self.cfg.max_wait
            ));
            return Ok(Admission::Shed { retry_after: wait });
        }
        let done = start + service;
        next_free[slot] = done;
        let m = injector.metrics();
        m.incr(&format!("admission.{}.admitted", self.name));
        m.add(&format!("admission.{}.wait_ns", self.name), wait.as_nanos());
        Ok(Admission::Admitted { start, done })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::faults::FaultInjector;

    fn t(ms: u64) -> SimTime {
        SimTime::ZERO + SimSpan::millis(ms)
    }

    #[test]
    fn breaker_trips_after_threshold_and_short_circuits() {
        let crash = CrashInjector::disabled();
        let inj = FaultInjector::new(1, Vec::new());
        let b = CircuitBreaker::new("origin", BreakerConfig::default());
        for i in 0..3 {
            assert!(b.allow(&inj, &crash, t(i)).unwrap());
            b.on_failure(&inj, t(i));
        }
        let BreakerState::Open { probe_at } = b.state() else {
            panic!("breaker should be open, got {:?}", b.state());
        };
        assert!(probe_at >= t(2) + SimSpan::secs(5), "cooldown respected");
        assert!(!b.allow(&inj, &crash, t(3)).unwrap(), "short-circuited");
        assert_eq!(inj.metrics().get("breaker.origin.open"), 1);
        assert_eq!(inj.metrics().get("breaker.origin.short_circuit"), 1);
    }

    #[test]
    fn breaker_probe_closes_on_success_and_reopens_on_failure() {
        let crash = CrashInjector::disabled();
        let inj = FaultInjector::new(2, Vec::new());
        let b = CircuitBreaker::new(
            "tier",
            BreakerConfig {
                probe_jitter: 0.0,
                ..BreakerConfig::default()
            },
        );
        for i in 0..3 {
            b.on_failure(&inj, t(i));
        }
        let BreakerState::Open { probe_at } = b.state() else {
            panic!()
        };
        // Probe granted exactly at probe_at; siblings still blocked.
        assert!(b.allow(&inj, &crash, probe_at).unwrap());
        assert_eq!(b.state(), BreakerState::HalfOpen);
        assert!(!b.allow(&inj, &crash, probe_at).unwrap(), "one probe only");
        // Failed probe re-opens with a fresh cooldown.
        b.on_failure(&inj, probe_at + SimSpan::millis(1));
        let BreakerState::Open { probe_at: again } = b.state() else {
            panic!()
        };
        assert!(again > probe_at);
        assert_eq!(inj.metrics().get("breaker.tier.reopen"), 1);
        // Second probe succeeds and closes.
        assert!(b.allow(&inj, &crash, again).unwrap());
        b.on_success(&inj, again + SimSpan::millis(1));
        assert_eq!(b.state(), BreakerState::Closed);
        assert_eq!(inj.metrics().get("breaker.tier.close"), 1);
        // Closed again: successes reset the failure streak.
        b.on_failure(&inj, t(10_000));
        b.on_success(&inj, t(10_001));
        b.on_failure(&inj, t(10_002));
        b.on_failure(&inj, t(10_003));
        assert_eq!(b.state(), BreakerState::Closed, "streak was reset");
    }

    #[test]
    fn breaker_crash_mid_probe_stays_open() {
        let inj = FaultInjector::new(3, Vec::new());
        let crash = CrashInjector::enabled();
        let b = CircuitBreaker::new("origin", BreakerConfig::default());
        for i in 0..3 {
            b.on_failure(&inj, t(i));
        }
        let BreakerState::Open { probe_at } = b.state() else {
            panic!()
        };
        crash.arm(BREAKER_PROBE_CRASH_POINT, 1);
        let err = b.allow(&inj, &crash, probe_at).unwrap_err();
        assert_eq!(err.point, BREAKER_PROBE_CRASH_POINT);
        // The transition never happened: still open, probe still due.
        assert_eq!(b.state(), BreakerState::Open { probe_at });
        // Recovery (same process state) probes again cleanly.
        assert!(b.allow(&inj, &crash, probe_at).unwrap());
        assert_eq!(b.state(), BreakerState::HalfOpen);
    }

    #[test]
    fn deadline_propagates_and_clamps_policies() {
        let d = Deadline::after(SimTime::ZERO, SimSpan::secs(10));
        assert_eq!(d.remaining(t(4_000)), Some(SimSpan::secs(6)));
        assert!(!d.expired(t(9_999)));
        assert!(d.expired(t(10_000)));
        assert_eq!(d.remaining(t(10_000)), None);
        let policy = RetryPolicy::default(); // 60s own deadline
        let clamped = d.clamp_policy(policy, t(4_000));
        assert_eq!(clamped.deadline, SimSpan::secs(6));
        let expired = d.clamp_policy(policy, t(11_000));
        assert_eq!(expired.deadline, SimSpan(0));
        // A short own deadline is kept (clamping never extends).
        let short = RetryPolicy::default().with_deadline(SimSpan::secs(1));
        assert_eq!(d.clamp_policy(short, t(4_000)).deadline, SimSpan::secs(1));
    }

    #[test]
    fn hedge_budget_caps_and_exhausts() {
        let b = HedgeBudget::new(2);
        assert!(b.try_take());
        assert!(b.try_take());
        assert!(!b.try_take());
        assert_eq!(b.remaining(), 0);
    }

    #[test]
    fn hedged_win_is_one_attempt_with_no_degrade_metrics() {
        let inj = FaultInjector::new(4, Vec::new());
        let policy = RetryPolicy::default().with_attempt_timeout(SimSpan::millis(200));
        let hedge = HedgePolicy {
            hedge_after: SimSpan::millis(50),
        };
        let budget = HedgeBudget::new(10);
        let out = run_hedged(
            &policy,
            &hedge,
            &budget,
            &inj,
            "pull",
            Stage::Pull,
            SimTime::ZERO,
            |_e: &String| true,
            // Browned-out primary: 500 ms (past the 200 ms stage timeout).
            |_, at| Ok(("primary", at + SimSpan::millis(500))),
            // Healthy replica: 30 ms from hedge launch.
            |_, at| Ok(("mirror", at + SimSpan::millis(30))),
        )
        .unwrap();
        assert_eq!(out.value, "mirror");
        assert_eq!(out.attempts, 1, "the hedged pair is one attempt");
        assert_eq!(out.done, SimTime::ZERO + SimSpan::millis(80));
        let m = inj.metrics();
        assert_eq!(m.get("retry.pull.attempts"), 1);
        assert_eq!(m.get("retry.pull.stage_timeout"), 0, "hedge rescued it");
        assert_eq!(m.get("hedge.pull.launched"), 1);
        assert_eq!(m.get("hedge.pull.win"), 1);
        assert_eq!(m.get("hedge.pull.cancelled"), 1);
        assert!(
            !m.render().contains("degrade."),
            "a cancelled loser is not a degradation: {}",
            m.render()
        );
    }

    #[test]
    fn fast_primary_never_hedges_and_budget_is_untouched() {
        let inj = FaultInjector::new(5, Vec::new());
        let budget = HedgeBudget::new(3);
        let out = run_hedged(
            &RetryPolicy::default(),
            &HedgePolicy::default(),
            &budget,
            &inj,
            "pull",
            Stage::Pull,
            SimTime::ZERO,
            |_e: &String| true,
            |_, at| Ok((1u32, at + SimSpan::millis(10))),
            |_, _| -> Result<(u32, SimTime), String> { panic!("hedge must not launch") },
        )
        .unwrap();
        assert_eq!(out.value, 1);
        assert_eq!(budget.remaining(), 3);
        assert_eq!(inj.metrics().get("hedge.pull.launched"), 0);
    }

    #[test]
    fn failed_hedge_never_surfaces_and_slow_hedge_is_cancelled() {
        let inj = FaultInjector::new(6, Vec::new());
        let budget = HedgeBudget::new(10);
        // Hedge errors: primary result stands.
        let out = run_hedged(
            &RetryPolicy::default(),
            &HedgePolicy::default(),
            &budget,
            &inj,
            "a",
            Stage::Pull,
            SimTime::ZERO,
            |_e: &String| true,
            |_, at| Ok(("primary", at + SimSpan::millis(300))),
            |_, _| Err("replica down".to_string()),
        )
        .unwrap();
        assert_eq!(out.value, "primary");
        assert_eq!(inj.metrics().get("hedge.a.hedge_failed"), 1);
        // Hedge slower than the primary: cancelled, primary wins.
        let out = run_hedged(
            &RetryPolicy::default(),
            &HedgePolicy::default(),
            &budget,
            &inj,
            "b",
            Stage::Pull,
            SimTime::ZERO,
            |_e: &String| true,
            |_, at| Ok(("primary", at + SimSpan::millis(300))),
            |_, at| Ok(("mirror", at + SimSpan::secs(5))),
        )
        .unwrap();
        assert_eq!(out.value, "primary");
        assert_eq!(inj.metrics().get("hedge.b.win"), 0);
        assert_eq!(inj.metrics().get("hedge.b.cancelled"), 1);
    }

    #[test]
    fn exhausted_budget_disables_hedging() {
        let inj = FaultInjector::new(7, Vec::new());
        let budget = HedgeBudget::new(0);
        let out = run_hedged(
            &RetryPolicy::default(),
            &HedgePolicy::default(),
            &budget,
            &inj,
            "pull",
            Stage::Pull,
            SimTime::ZERO,
            |_e: &String| true,
            |_, at| Ok(("primary", at + SimSpan::secs(1))),
            |_, _| -> Result<(&str, SimTime), String> { panic!("budget is empty") },
        )
        .unwrap();
        assert_eq!(out.value, "primary");
        assert_eq!(inj.metrics().get("hedge.pull.launched"), 0);
    }

    #[test]
    fn admission_queue_sheds_past_the_wait_bound() {
        let crash = CrashInjector::disabled();
        let inj = FaultInjector::new(8, Vec::new());
        let q = AdmissionQueue::new(
            "origin",
            AdmissionConfig {
                slots: 2,
                max_wait: SimSpan::millis(100),
            },
        );
        let service = SimSpan::millis(300);
        // Two slots fill instantly; the third projects a 300 ms wait.
        for _ in 0..2 {
            let a = q.admit(&inj, &crash, SimTime::ZERO, service, 2).unwrap();
            assert!(matches!(a, Admission::Admitted { start, .. } if start == SimTime::ZERO));
        }
        match q.admit(&inj, &crash, SimTime::ZERO, service, 2).unwrap() {
            Admission::Shed { retry_after } => assert_eq!(retry_after, SimSpan::millis(300)),
            other => panic!("expected shed, got {other:?}"),
        }
        assert_eq!(inj.metrics().get("admission.origin.admitted"), 2);
        assert_eq!(inj.metrics().get("admission.origin.shed"), 1);
        // After the backlog drains, admission resumes.
        let later = SimTime::ZERO + SimSpan::millis(250);
        let a = q.admit(&inj, &crash, later, service, 2).unwrap();
        assert!(matches!(a, Admission::Admitted { .. }));
    }

    #[test]
    fn degraded_slots_shed_earlier_and_crash_mid_shed_holds_no_slot() {
        let inj = FaultInjector::new(9, Vec::new());
        let crash = CrashInjector::enabled();
        let q = AdmissionQueue::new(
            "origin",
            AdmissionConfig {
                slots: 4,
                max_wait: SimSpan::millis(50),
            },
        );
        let service = SimSpan::millis(200);
        // Degraded to one live slot: the second request is shed even
        // though three healthy slots exist.
        let a = q.admit(&inj, &crash, SimTime::ZERO, service, 1).unwrap();
        assert!(matches!(a, Admission::Admitted { .. }));
        crash.arm(ADMISSION_SHED_CRASH_POINT, 1);
        let err = q
            .admit(&inj, &crash, SimTime::ZERO, service, 1)
            .unwrap_err();
        assert_eq!(err.point, ADMISSION_SHED_CRASH_POINT);
        // The crashed shed held nothing: after "recovery" the queue
        // state is exactly one busy slot, and the retried decision is
        // the same shed.
        match q.admit(&inj, &crash, SimTime::ZERO, service, 1).unwrap() {
            Admission::Shed { retry_after } => assert_eq!(retry_after, SimSpan::millis(200)),
            other => panic!("expected shed, got {other:?}"),
        }
        // Full capacity admits in parallel.
        let a = q.admit(&inj, &crash, SimTime::ZERO, service, 4).unwrap();
        assert!(matches!(a, Admission::Admitted { start, .. } if start == SimTime::ZERO));
    }

    mod props {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            #![proptest_config(ProptestConfig::with_cases(64))]

            /// A breaker can never wedge permanently open while probes
            /// succeed: under any seed and any interleaving of failures,
            /// once the endpoint heals, one granted probe plus its
            /// success closes the breaker again.
            #[test]
            fn breaker_never_wedges_open_while_probes_succeed(
                seed in 0u64..10_000,
                threshold in 1u32..6,
                cooldown_ms in 1u64..5_000,
                jitter_pct in (0u64..90).prop_map(|j| j as f64 / 100.0),
                failures in 1usize..40,
            ) {
                let inj = FaultInjector::new(seed, Vec::new());
                let crash = CrashInjector::disabled();
                let b = CircuitBreaker::new("e", BreakerConfig {
                    failure_threshold: threshold,
                    cooldown: SimSpan::millis(cooldown_ms),
                    probe_jitter: jitter_pct,
                    success_to_close: 1,
                });
                let mut now = SimTime::ZERO;
                for _ in 0..failures {
                    if b.allow(&inj, &crash, now).unwrap() {
                        b.on_failure(&inj, now);
                    }
                    now += SimSpan::millis(1);
                }
                // Endpoint heals. Drive time forward; every granted
                // probe succeeds. The breaker must close in at most a
                // few probe cycles, never staying open forever.
                let mut closed = b.state() == BreakerState::Closed;
                for _ in 0..(failures + 2) {
                    if closed { break; }
                    match b.state() {
                        BreakerState::Closed => closed = true,
                        BreakerState::Open { probe_at } => {
                            now = probe_at;
                            prop_assert!(b.allow(&inj, &crash, now).unwrap(),
                                "probe due at {probe_at} must be granted");
                            b.on_success(&inj, now);
                        }
                        BreakerState::HalfOpen => {
                            b.on_success(&inj, now);
                        }
                    }
                }
                prop_assert!(closed || b.state() == BreakerState::Closed,
                    "breaker wedged in {:?}", b.state());
            }

            /// Under any seed, a tripped breaker never half-opens before
            /// its configured cooldown: jitter may only delay the probe.
            #[test]
            fn breaker_never_half_opens_before_cooldown(
                seed in 0u64..10_000,
                cooldown_ms in 1u64..10_000,
                jitter_pct in (0u64..90).prop_map(|j| j as f64 / 100.0),
                trip_ms in 0u64..1_000,
            ) {
                let inj = FaultInjector::new(seed, Vec::new());
                let crash = CrashInjector::disabled();
                let b = CircuitBreaker::new("e", BreakerConfig {
                    failure_threshold: 1,
                    cooldown: SimSpan::millis(cooldown_ms),
                    probe_jitter: jitter_pct,
                    success_to_close: 1,
                });
                let trip_at = SimTime::ZERO + SimSpan::millis(trip_ms);
                b.on_failure(&inj, trip_at);
                let BreakerState::Open { probe_at } = b.state() else {
                    panic!("must be open");
                };
                let earliest = trip_at + SimSpan::millis(cooldown_ms);
                prop_assert!(probe_at >= earliest,
                    "probe at {probe_at} before cooldown end {earliest}");
                // One tick before the cooldown ends, the probe must be
                // refused and the breaker must still be fully open.
                let before = SimTime::ZERO
                    + SimSpan::millis(trip_ms + cooldown_ms - 1);
                prop_assert!(!b.allow(&inj, &crash, before).unwrap());
                prop_assert!(matches!(b.state(), BreakerState::Open { .. }));
                // At the seeded probe instant it must be granted.
                prop_assert!(b.allow(&inj, &crash, probe_at).unwrap());
            }
        }
    }
}

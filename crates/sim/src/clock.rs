//! A shareable logical clock.
//!
//! Components that model costs (filesystem drivers, network transfers,
//! decompression) advance the clock instead of sleeping. The clock is an
//! atomic so that models can share it behind an `Arc` without locking; the
//! discrete-event [`crate::des::Engine`] drives its own clock instead.

use crate::time::{SimSpan, SimTime};
use std::sync::atomic::{AtomicU64, Ordering};

/// Thread-safe logical clock. Monotonically non-decreasing.
#[derive(Debug, Default)]
pub struct SimClock {
    nanos: AtomicU64,
}

impl SimClock {
    /// A clock at the experiment origin.
    pub fn new() -> SimClock {
        SimClock::default()
    }

    /// Current logical time.
    #[inline]
    pub fn now(&self) -> SimTime {
        SimTime(self.nanos.load(Ordering::Relaxed))
    }

    /// Charge `span` of logical time to the clock and return the new time.
    ///
    /// This models a *serial* cost: callers that want concurrent costs
    /// should track per-actor completion times and use [`advance_to`].
    ///
    /// [`advance_to`]: SimClock::advance_to
    #[inline]
    pub fn advance(&self, span: SimSpan) -> SimTime {
        SimTime(self.nanos.fetch_add(span.as_nanos(), Ordering::Relaxed) + span.as_nanos())
    }

    /// Move the clock forward to `t` if `t` is in the future; otherwise
    /// leave it unchanged. Returns the (possibly unchanged) current time.
    pub fn advance_to(&self, t: SimTime) -> SimTime {
        let mut cur = self.nanos.load(Ordering::Relaxed);
        loop {
            if t.as_nanos() <= cur {
                return SimTime(cur);
            }
            match self.nanos.compare_exchange_weak(
                cur,
                t.as_nanos(),
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => return t,
                Err(actual) => cur = actual,
            }
        }
    }

    /// Reset to the origin. Only used between benchmark iterations.
    pub fn reset(&self) {
        self.nanos.store(0, Ordering::Relaxed);
    }
}

/// A per-actor stopwatch measuring elapsed logical time on a clock.
#[derive(Debug, Clone, Copy)]
pub struct Stopwatch {
    start: SimTime,
}

impl Stopwatch {
    /// Start measuring at the clock's current time.
    pub fn start(clock: &SimClock) -> Stopwatch {
        Stopwatch { start: clock.now() }
    }

    /// Elapsed logical time since `start`.
    pub fn elapsed(&self, clock: &SimClock) -> SimSpan {
        clock.now().since(self.start)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn advance_accumulates() {
        let c = SimClock::new();
        assert_eq!(c.now(), SimTime::ZERO);
        c.advance(SimSpan::millis(3));
        c.advance(SimSpan::millis(4));
        assert_eq!(c.now(), SimTime::ZERO + SimSpan::millis(7));
    }

    #[test]
    fn advance_to_never_goes_backwards() {
        let c = SimClock::new();
        c.advance(SimSpan::secs(1));
        let before = c.now();
        c.advance_to(SimTime::ZERO + SimSpan::millis(1));
        assert_eq!(c.now(), before);
        c.advance_to(SimTime::ZERO + SimSpan::secs(2));
        assert_eq!(c.now(), SimTime::ZERO + SimSpan::secs(2));
    }

    #[test]
    fn stopwatch_measures_span() {
        let c = SimClock::new();
        let sw = Stopwatch::start(&c);
        c.advance(SimSpan::micros(250));
        assert_eq!(sw.elapsed(&c), SimSpan::micros(250));
    }

    #[test]
    fn concurrent_advances_are_all_counted() {
        let c = Arc::new(SimClock::new());
        let threads: Vec<_> = (0..8)
            .map(|_| {
                let c = Arc::clone(&c);
                std::thread::spawn(move || {
                    for _ in 0..1000 {
                        c.advance(SimSpan::nanos(1));
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        assert_eq!(c.now().as_nanos(), 8000);
    }

    #[test]
    fn reset_returns_to_origin() {
        let c = SimClock::new();
        c.advance(SimSpan::secs(5));
        c.reset();
        assert_eq!(c.now(), SimTime::ZERO);
    }
}

//! Deterministic parallel task execution over logical time.
//!
//! The image-distribution hot path (pull → convert → cache → run) is a DAG
//! of arrival→completion operations: blob fetches, per-layer conversions,
//! seed pulls, stage-ins. The surveyed engines win startup time by running
//! those tasks concurrently (Sarus-style parallel layer distribution,
//! SquashFS conversion pipelines), so the testbed needs a way to *overlap*
//! simulated work without giving up determinism.
//!
//! [`Executor`] is a greedy list scheduler over a bounded worker pool:
//!
//! * Tasks are added to a [`TaskGraph`] in program order and receive dense
//!   [`TaskId`]s. Dependency edges only point backwards (a task may depend
//!   only on already-added tasks), so the graph is a DAG by construction.
//! * Scheduling is fully deterministic: at every step the earliest-free
//!   worker (ties broken by lowest worker index) is paired with the ready
//!   task that can start earliest (ties broken by lowest task id).
//! * A task body is an arrival→completion closure: it receives its start
//!   time and returns its completion time (plus optional span attributes).
//!   Bodies run sequentially on the caller's thread in schedule order —
//!   the *parallelism is logical*, which keeps fault-injector RNG draws
//!   and metrics updates in a reproducible order.
//! * With `workers == 1` the schedule degenerates to running the tasks in
//!   id order, each starting at the previous completion — byte-identical
//!   to the sequential fold the pipeline used before this module existed.
//!
//! Every executed task is recorded as a span on the provided [`Tracer`]
//! (name, stage, worker index, caller attributes), so golden traces keep
//! pinning the overlap structure.

use crate::intern::Symbol;
use crate::obs::{Stage, Tracer};
use crate::time::SimTime;

/// Identifier of a task within one [`TaskGraph`] (dense, creation order).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct TaskId(pub usize);

/// What a finished task body reports back: its completion instant and any
/// attributes to attach to the task's trace span.
#[derive(Debug, Clone)]
pub struct TaskFinish {
    pub done: SimTime,
    pub attrs: Vec<(String, String)>,
}

impl TaskFinish {
    /// A completion with no extra span attributes.
    pub fn at(done: SimTime) -> TaskFinish {
        TaskFinish {
            done,
            attrs: Vec::new(),
        }
    }

    /// Attach a span attribute.
    pub fn attr(mut self, key: &str, value: impl std::fmt::Display) -> TaskFinish {
        self.attrs.push((key.to_string(), value.to_string()));
        self
    }
}

type TaskBody<'a, E> = Box<dyn FnOnce(SimTime) -> Result<TaskFinish, E> + 'a>;

struct Task<'a, E> {
    name: Symbol,
    stage: Stage,
    deps: Vec<TaskId>,
    body: TaskBody<'a, E>,
}

/// A DAG of arrival→completion tasks, built in program order.
pub struct TaskGraph<'a, E> {
    tasks: Vec<Task<'a, E>>,
}

impl<'a, E> Default for TaskGraph<'a, E> {
    fn default() -> Self {
        TaskGraph::new()
    }
}

impl<'a, E> TaskGraph<'a, E> {
    pub fn new() -> TaskGraph<'a, E> {
        TaskGraph { tasks: Vec::new() }
    }

    /// Add a task. `deps` must reference previously-added tasks (the only
    /// kind of [`TaskId`] obtainable), which makes cycles unrepresentable.
    pub fn add(
        &mut self,
        name: impl Into<Symbol>,
        stage: Stage,
        deps: &[TaskId],
        body: impl FnOnce(SimTime) -> Result<TaskFinish, E> + 'a,
    ) -> TaskId {
        let id = TaskId(self.tasks.len());
        debug_assert!(
            deps.iter().all(|d| d.0 < id.0),
            "deps must be earlier tasks"
        );
        self.tasks.push(Task {
            name: name.into(),
            stage,
            deps: deps.to_vec(),
            body: Box::new(body),
        });
        id
    }

    pub fn len(&self) -> usize {
        self.tasks.len()
    }

    pub fn is_empty(&self) -> bool {
        self.tasks.is_empty()
    }
}

/// A task body failed; scheduling stops at the first failure (which is
/// deterministic, because the schedule is).
#[derive(Debug)]
pub struct ExecError<E> {
    pub task: TaskId,
    pub name: Symbol,
    pub error: E,
    /// Latest instant the schedule reached before stopping: the failed
    /// task's start or the finish of any already-recorded task,
    /// whichever is later. Callers closing enclosing spans on failure
    /// must use this (not their pre-executor clock) so recorded task
    /// spans stay nested.
    pub stopped_at: SimTime,
}

impl<E: std::fmt::Display> std::fmt::Display for ExecError<E> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "task #{} ({}): {}", self.task.0, self.name, self.error)
    }
}

impl<E: std::fmt::Display + std::fmt::Debug> std::error::Error for ExecError<E> {}

/// Per-task timing of a completed schedule.
#[derive(Debug, Clone)]
pub struct ExecReport {
    /// Start instant per task (task-id order).
    pub started: Vec<SimTime>,
    /// Completion instant per task (task-id order).
    pub finished: Vec<SimTime>,
    /// Completion of the whole graph: max finish, or the start time for an
    /// empty graph.
    pub end: SimTime,
}

impl ExecReport {
    /// The maximum number of tasks in flight at any instant (a schedule
    /// with `workers = p` never exceeds `p`).
    pub fn peak_concurrency(&self) -> usize {
        let mut events: Vec<(SimTime, i32)> = Vec::with_capacity(self.started.len() * 2);
        for (s, f) in self.started.iter().zip(&self.finished) {
            events.push((*s, 1));
            events.push((*f, -1));
        }
        // Ends sort before starts at the same instant (-1 < 1), so a task
        // starting exactly when another finishes does not double-count.
        events.sort();
        let mut cur = 0i32;
        let mut peak = 0i32;
        for (_, d) in events {
            cur += d;
            peak = peak.max(cur);
        }
        peak.max(0) as usize
    }
}

/// Bounded-worker greedy list scheduler over logical time.
#[derive(Debug, Clone, Copy)]
pub struct Executor {
    workers: usize,
}

impl Executor {
    /// An executor with `workers` slots (clamped to at least 1).
    pub fn new(workers: usize) -> Executor {
        Executor {
            workers: workers.max(1),
        }
    }

    pub fn workers(&self) -> usize {
        self.workers
    }

    /// Run the graph to completion starting at `start`. Each executed task
    /// is recorded as a span on `tracer`. Returns per-task timing, or the
    /// first task failure in schedule order.
    pub fn run<'a, E>(
        &self,
        graph: TaskGraph<'a, E>,
        start: SimTime,
        tracer: &Tracer,
    ) -> Result<ExecReport, ExecError<E>> {
        let n = graph.tasks.len();
        let mut indegree = vec![0usize; n];
        let mut successors: Vec<Vec<usize>> = vec![Vec::new(); n];
        for (i, t) in graph.tasks.iter().enumerate() {
            indegree[i] = t.deps.len();
            for d in &t.deps {
                successors[d.0].push(i);
            }
        }

        // `ready_at[i]` is meaningful once indegree[i] == 0: the earliest
        // instant the task's dependencies allow it to start.
        let mut ready_at = vec![start; n];
        let mut ready: std::collections::BTreeSet<usize> = indegree
            .iter()
            .enumerate()
            .filter_map(|(i, d)| (*d == 0).then_some(i))
            .collect();

        let mut workers = vec![start; self.workers];
        let mut started = vec![start; n];
        let mut finished = vec![start; n];
        let mut bodies: Vec<Option<TaskBody<'a, E>>> = graph.tasks.iter().map(|_| None).collect();
        let mut names = Vec::with_capacity(n);
        let mut stages = Vec::with_capacity(n);
        for (slot, t) in bodies.iter_mut().zip(graph.tasks) {
            names.push(t.name);
            stages.push(t.stage);
            *slot = Some(t.body);
        }

        let mut scheduled = 0usize;
        while scheduled < n {
            // Earliest-free worker; ties broken by lowest index.
            let (widx, wfree) = workers
                .iter()
                .copied()
                .enumerate()
                .min_by_key(|(i, t)| (*t, *i))
                .expect("worker pool is non-empty");
            // Ready task that can start earliest; ties broken by task id.
            let (tid, est) = ready
                .iter()
                .map(|&t| (t, ready_at[t].max(wfree)))
                .min_by_key(|&(t, est)| (est, t))
                .expect("a DAG always has a ready task while unscheduled remain");
            ready.remove(&tid);

            let body = bodies[tid].take().expect("each task runs once");
            let fin = body(est).map_err(|error| ExecError {
                task: TaskId(tid),
                name: names[tid],
                error,
                stopped_at: finished.iter().copied().max().unwrap_or(start).max(est),
            })?;
            let done = fin.done.max(est);
            tracer.record(names[tid], stages[tid], est, done, &{
                let mut attrs: Vec<(&str, String)> =
                    vec![("task", tid.to_string()), ("worker", widx.to_string())];
                attrs.extend(fin.attrs.iter().map(|(k, v)| (k.as_str(), v.clone())));
                attrs
            });
            started[tid] = est;
            finished[tid] = done;
            workers[widx] = done;
            scheduled += 1;

            for &s in &successors[tid] {
                ready_at[s] = ready_at[s].max(done);
                indegree[s] -= 1;
                if indegree[s] == 0 {
                    ready.insert(s);
                }
            }
        }

        // Sim barrier: the schedule is complete, land buffered span metrics.
        tracer.flush();

        let end = finished.iter().copied().max().unwrap_or(start);
        Ok(ExecReport {
            started,
            finished,
            end,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::SimSpan;
    use std::convert::Infallible;

    fn t(ms: u64) -> SimTime {
        SimTime::ZERO + SimSpan::millis(ms)
    }

    /// A fixed-duration task body.
    fn cost(ms: u64) -> impl FnOnce(SimTime) -> Result<TaskFinish, Infallible> {
        move |at| Ok(TaskFinish::at(at + SimSpan::millis(ms)))
    }

    #[test]
    fn single_worker_runs_in_id_order_sequentially() {
        let tracer = Tracer::disabled();
        let mut g: TaskGraph<'_, Infallible> = TaskGraph::new();
        for ms in [5, 3, 7] {
            g.add("t", Stage::Other, &[], cost(ms));
        }
        let report = Executor::new(1).run(g, t(0), &tracer).unwrap();
        assert_eq!(report.started, vec![t(0), t(5), t(8)]);
        assert_eq!(report.finished, vec![t(5), t(8), t(15)]);
        assert_eq!(report.end, t(15));
        assert_eq!(report.peak_concurrency(), 1);
    }

    #[test]
    fn parallel_workers_overlap_independent_tasks() {
        let tracer = Tracer::disabled();
        let mut g: TaskGraph<'_, Infallible> = TaskGraph::new();
        for _ in 0..4 {
            g.add("t", Stage::Other, &[], cost(10));
        }
        let report = Executor::new(4).run(g, t(0), &tracer).unwrap();
        assert_eq!(report.end, t(10));
        assert_eq!(report.peak_concurrency(), 4);
        let two = {
            let mut g: TaskGraph<'_, Infallible> = TaskGraph::new();
            for _ in 0..4 {
                g.add("t", Stage::Other, &[], cost(10));
            }
            Executor::new(2).run(g, t(0), &tracer).unwrap()
        };
        assert_eq!(two.end, t(20));
        assert_eq!(two.peak_concurrency(), 2);
    }

    #[test]
    fn dependencies_serialize_chains() {
        let tracer = Tracer::disabled();
        let mut g: TaskGraph<'_, Infallible> = TaskGraph::new();
        let a = g.add("a", Stage::Other, &[], cost(10));
        let b = g.add("b", Stage::Other, &[a], cost(10));
        g.add("c", Stage::Other, &[b], cost(10));
        g.add("d", Stage::Other, &[], cost(5));
        let report = Executor::new(8).run(g, t(0), &tracer).unwrap();
        // Chain a→b→c takes 30ms regardless of workers; d overlaps.
        assert_eq!(report.end, t(30));
        assert_eq!(report.started[3], t(0));
        assert_eq!(report.finished[3], t(5));
    }

    #[test]
    fn tie_break_is_by_task_id() {
        let tracer = Tracer::new();
        let mut g: TaskGraph<'_, Infallible> = TaskGraph::new();
        g.add("late", Stage::Other, &[], cost(1));
        g.add("early", Stage::Other, &[], cost(1));
        let report = Executor::new(1).run(g, t(0), &tracer).unwrap();
        // Equal estimated starts: lower id (added first) wins the worker.
        assert!(report.started[0] < report.started[1]);
        let spans = tracer.finished();
        assert_eq!(spans[0].name, "late");
        assert_eq!(spans[1].name, "early");
    }

    #[test]
    fn errors_abort_in_schedule_order() {
        let tracer = Tracer::disabled();
        let mut g: TaskGraph<'_, String> = TaskGraph::new();
        g.add("ok", Stage::Other, &[], |at| {
            Ok(TaskFinish::at(at + SimSpan::millis(1)))
        });
        g.add("boom", Stage::Other, &[], |_| Err("exploded".to_string()));
        g.add("never", Stage::Other, &[], |_| {
            panic!("must not run after a failure")
        });
        let err = Executor::new(1).run(g, t(0), &tracer).unwrap_err();
        assert_eq!(err.task, TaskId(1));
        assert_eq!(err.name, "boom");
        assert_eq!(err.error, "exploded");
    }

    #[test]
    fn spans_carry_worker_and_custom_attrs() {
        let tracer = Tracer::new();
        let mut g: TaskGraph<'_, Infallible> = TaskGraph::new();
        g.add("fetch", Stage::Pull, &[], |at| {
            Ok(TaskFinish::at(at + SimSpan::millis(2)).attr("bytes", 512))
        });
        Executor::new(3).run(g, t(0), &tracer).unwrap();
        let spans = tracer.finished();
        assert_eq!(spans.len(), 1);
        assert_eq!(spans[0].name, "fetch");
        assert_eq!(spans[0].stage, Stage::Pull);
        let attrs: std::collections::BTreeMap<_, _> = spans[0]
            .attrs
            .iter()
            .map(|(k, v)| (k.as_str(), v.as_str()))
            .collect();
        assert_eq!(attrs["worker"], "0");
        assert_eq!(attrs["task"], "0");
        assert_eq!(attrs["bytes"], "512");
    }

    #[test]
    fn empty_graph_ends_at_start() {
        let tracer = Tracer::disabled();
        let g: TaskGraph<'_, Infallible> = TaskGraph::new();
        let report = Executor::new(4).run(g, t(7), &tracer).unwrap();
        assert_eq!(report.end, t(7));
        assert_eq!(report.peak_concurrency(), 0);
    }

    #[test]
    fn makespan_never_increases_with_more_workers() {
        let durations: Vec<u64> = (0..20).map(|i| (i * 7) % 13 + 1).collect();
        let run = |workers: usize| {
            let tracer = Tracer::disabled();
            let mut g: TaskGraph<'_, Infallible> = TaskGraph::new();
            let mut prev: Option<TaskId> = None;
            for (i, ms) in durations.iter().enumerate() {
                // Every third task chains on the previous one.
                let deps: Vec<TaskId> = match prev {
                    Some(p) if i % 3 == 0 => vec![p],
                    _ => vec![],
                };
                prev = Some(g.add("t", Stage::Other, &deps, cost(*ms)));
            }
            Executor::new(workers).run(g, t(0), &tracer).unwrap().end
        };
        let mut last = run(1);
        for w in [2, 4, 8, 16] {
            let now = run(w);
            assert!(now <= last, "{w} workers regressed: {now} > {last}");
            last = now;
        }
    }
}

//! Discrete-event simulation engine.
//!
//! The scheduling experiments (WLM backfill, Kubernetes pod placement, the
//! Section 6 integration scenarios) are classic discrete-event simulations:
//! events fire at logical instants, handlers mutate world state and schedule
//! further events. The engine owns the event queue and the clock; world
//! state lives outside and is threaded through handlers as `&mut W`.

use crate::time::{SimSpan, SimTime};
use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashSet};

/// Identifier of a scheduled event, usable for cancellation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct EventId(u64);

type Handler<W> = Box<dyn FnOnce(&mut Engine<W>, &mut W)>;

struct Scheduled<W> {
    at: SimTime,
    seq: u64,
    id: EventId,
    run: Handler<W>,
}

impl<W> PartialEq for Scheduled<W> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl<W> Eq for Scheduled<W> {}
impl<W> PartialOrd for Scheduled<W> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl<W> Ord for Scheduled<W> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // Earliest time first; FIFO among equal times via the sequence
        // number, which makes runs deterministic.
        (self.at, self.seq).cmp(&(other.at, other.seq))
    }
}

/// Discrete-event engine over a world type `W`.
pub struct Engine<W> {
    now: SimTime,
    seq: u64,
    next_id: u64,
    queue: BinaryHeap<Reverse<Scheduled<W>>>,
    cancelled: HashSet<EventId>,
    processed: u64,
}

impl<W> Default for Engine<W> {
    fn default() -> Self {
        Engine::new()
    }
}

impl<W> Engine<W> {
    pub fn new() -> Engine<W> {
        Engine {
            now: SimTime::ZERO,
            seq: 0,
            next_id: 0,
            queue: BinaryHeap::new(),
            cancelled: HashSet::new(),
            processed: 0,
        }
    }

    /// Current logical time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Number of events executed so far.
    pub fn processed(&self) -> u64 {
        self.processed
    }

    /// Schedule `f` to run at absolute time `at`. Events scheduled in the
    /// past run "now" (the engine never rewinds its clock).
    pub fn at(&mut self, at: SimTime, f: impl FnOnce(&mut Engine<W>, &mut W) + 'static) -> EventId {
        let id = EventId(self.next_id);
        self.next_id += 1;
        let seq = self.seq;
        self.seq += 1;
        self.queue.push(Reverse(Scheduled {
            at: at.max(self.now),
            seq,
            id,
            run: Box::new(f),
        }));
        id
    }

    /// Schedule `f` to run `delay` after the current time.
    pub fn after(
        &mut self,
        delay: SimSpan,
        f: impl FnOnce(&mut Engine<W>, &mut W) + 'static,
    ) -> EventId {
        let at = self.now + delay;
        self.at(at, f)
    }

    /// Cancel a previously scheduled event. Cancelling an already-run or
    /// unknown event is a no-op.
    pub fn cancel(&mut self, id: EventId) {
        self.cancelled.insert(id);
    }

    /// Run all events up to and including `deadline`. Returns the number of
    /// events executed.
    pub fn run_until(&mut self, world: &mut W, deadline: SimTime) -> u64 {
        let mut ran = 0;
        while let Some(Reverse(head)) = self.queue.peek() {
            if head.at > deadline {
                break;
            }
            let Reverse(ev) = self.queue.pop().expect("peeked");
            if self.cancelled.remove(&ev.id) {
                continue;
            }
            self.now = ev.at;
            (ev.run)(self, world);
            self.processed += 1;
            ran += 1;
        }
        // Even if no event landed exactly on the deadline, time passes.
        if self.now < deadline {
            self.now = deadline;
        }
        ran
    }

    /// Run until the event queue drains. Returns the number of events
    /// executed. A `max_events` guard protects against runaway loops in
    /// model bugs.
    pub fn run_to_completion(&mut self, world: &mut W, max_events: u64) -> u64 {
        let mut ran = 0;
        while let Some(Reverse(head)) = self.queue.peek() {
            if ran >= max_events {
                panic!(
                    "discrete-event engine exceeded {max_events} events at {:?}; \
                     likely a self-rescheduling loop",
                    head.at
                );
            }
            let Reverse(ev) = self.queue.pop().expect("peeked");
            if self.cancelled.remove(&ev.id) {
                continue;
            }
            self.now = ev.at;
            (ev.run)(self, world);
            self.processed += 1;
            ran += 1;
        }
        ran
    }

    /// True if no runnable events remain.
    pub fn is_idle(&self) -> bool {
        self.queue
            .iter()
            .all(|Reverse(e)| self.cancelled.contains(&e.id))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[derive(Default)]
    struct World {
        log: Vec<(u64, &'static str)>,
    }

    #[test]
    fn events_run_in_time_order() {
        let mut eng = Engine::<World>::new();
        let mut w = World::default();
        eng.at(SimTime(30), |e, w| w.log.push((e.now().0, "c")));
        eng.at(SimTime(10), |e, w| w.log.push((e.now().0, "a")));
        eng.at(SimTime(20), |e, w| w.log.push((e.now().0, "b")));
        eng.run_to_completion(&mut w, 100);
        assert_eq!(w.log, vec![(10, "a"), (20, "b"), (30, "c")]);
    }

    #[test]
    fn ties_run_fifo() {
        let mut eng = Engine::<World>::new();
        let mut w = World::default();
        eng.at(SimTime(5), |_, w| w.log.push((5, "first")));
        eng.at(SimTime(5), |_, w| w.log.push((5, "second")));
        eng.run_to_completion(&mut w, 10);
        assert_eq!(w.log, vec![(5, "first"), (5, "second")]);
    }

    #[test]
    fn handlers_can_schedule_more_events() {
        let mut eng = Engine::<World>::new();
        let mut w = World::default();
        eng.at(SimTime(1), |e, _| {
            e.after(SimSpan::nanos(9), |e, w: &mut World| {
                w.log.push((e.now().0, "chained"));
            });
        });
        eng.run_to_completion(&mut w, 10);
        assert_eq!(w.log, vec![(10, "chained")]);
    }

    #[test]
    fn cancellation_skips_event() {
        let mut eng = Engine::<World>::new();
        let mut w = World::default();
        let id = eng.at(SimTime(10), |_, w| w.log.push((10, "cancelled")));
        eng.at(SimTime(20), |_, w| w.log.push((20, "kept")));
        eng.cancel(id);
        eng.run_to_completion(&mut w, 10);
        assert_eq!(w.log, vec![(20, "kept")]);
    }

    #[test]
    fn run_until_respects_deadline_and_advances_clock() {
        let mut eng = Engine::<World>::new();
        let mut w = World::default();
        eng.at(SimTime(10), |_, w| w.log.push((10, "in")));
        eng.at(SimTime(100), |_, w| w.log.push((100, "out")));
        let ran = eng.run_until(&mut w, SimTime(50));
        assert_eq!(ran, 1);
        assert_eq!(eng.now(), SimTime(50));
        assert_eq!(w.log, vec![(10, "in")]);
        eng.run_to_completion(&mut w, 10);
        assert_eq!(w.log.len(), 2);
    }

    #[test]
    fn past_events_run_at_current_time() {
        let mut eng = Engine::<World>::new();
        let mut w = World::default();
        eng.at(SimTime(50), |e, _| {
            // Scheduling "at 10" from t=50 must not rewind the clock.
            e.at(SimTime(10), |e, w: &mut World| {
                w.log.push((e.now().0, "late"))
            });
        });
        eng.run_to_completion(&mut w, 10);
        assert_eq!(w.log, vec![(50, "late")]);
    }

    #[test]
    fn cancel_of_already_fired_event_is_a_noop() {
        let mut eng = Engine::<World>::new();
        let mut w = World::default();
        let id = eng.at(SimTime(10), |_, w| w.log.push((10, "fired")));
        eng.at(SimTime(20), |_, w| w.log.push((20, "later")));
        eng.run_to_completion(&mut w, 10);
        assert_eq!(w.log, vec![(10, "fired"), (20, "later")]);
        // Cancelling after the fact must not disturb anything.
        eng.cancel(id);
        assert!(eng.is_idle());
        eng.at(SimTime(30), |_, w| w.log.push((30, "after-cancel")));
        eng.run_to_completion(&mut w, 10);
        assert_eq!(w.log.len(), 3, "stale cancellation must not eat events");
    }

    #[test]
    fn cancel_then_reschedule_runs_only_the_replacement() {
        let mut eng = Engine::<World>::new();
        let mut w = World::default();
        let id = eng.at(SimTime(10), |_, w| w.log.push((10, "original")));
        eng.cancel(id);
        eng.at(SimTime(10), |e, w| w.log.push((e.now().0, "replacement")));
        eng.run_to_completion(&mut w, 10);
        assert_eq!(w.log, vec![(10, "replacement")]);
    }

    #[test]
    fn three_way_ties_run_in_scheduling_order() {
        let mut eng = Engine::<World>::new();
        let mut w = World::default();
        eng.at(SimTime(7), |_, w| w.log.push((7, "a")));
        eng.at(SimTime(7), |_, w| w.log.push((7, "b")));
        eng.at(SimTime(7), |_, w| w.log.push((7, "c")));
        eng.run_to_completion(&mut w, 10);
        assert_eq!(w.log, vec![(7, "a"), (7, "b"), (7, "c")]);
    }

    #[test]
    #[should_panic(expected = "exceeded")]
    fn runaway_loop_is_detected() {
        fn respawn(e: &mut Engine<World>, _w: &mut World) {
            e.after(SimSpan::nanos(1), respawn);
        }
        let mut eng = Engine::<World>::new();
        let mut w = World::default();
        eng.at(SimTime(0), respawn);
        eng.run_to_completion(&mut w, 100);
    }

    #[test]
    fn is_idle_accounts_for_cancellations() {
        let mut eng = Engine::<World>::new();
        let id = eng.at(SimTime(10), |_, _| {});
        assert!(!eng.is_idle());
        eng.cancel(id);
        assert!(eng.is_idle());
    }
}

//! Discrete-event simulation engine.
//!
//! The scheduling experiments (WLM backfill, Kubernetes pod placement, the
//! Section 6 integration scenarios) are classic discrete-event simulations:
//! events fire at logical instants, handlers mutate world state and schedule
//! further events. The engine owns the event queue and the clock; world
//! state lives outside and is threaded through handlers as `&mut W`.
//!
//! # Queue backends
//!
//! The event queue has two interchangeable implementations behind the same
//! [`Engine`] API, selectable via [`DesBackend`]:
//!
//! * [`DesBackend::TimingWheel`] (the default) — a hierarchical timing
//!   wheel: [`LEVELS`] levels of [`SLOTS`] slots each, every level covering
//!   64× the span of the one below, with per-level occupancy bitmaps so the
//!   engine jumps straight to the next occupied instant instead of ticking.
//!   Schedule and cancel are O(1); dispatch is O(1) amortized (each event
//!   cascades down at most [`LEVELS`] times). Events that land at or before
//!   the wheel's current position go to a small overflow heap, which also
//!   keeps the rare past-scheduling path exactly ordered.
//! * [`DesBackend::ReferenceHeap`] — the original `BinaryHeap` queue, kept
//!   as the executable specification. The equivalence property suite drives
//!   random schedule/cancel/fire workloads through both backends and
//!   asserts identical fire order; `bench_core` measures the speedup of the
//!   wheel over this reference.
//!
//! Both backends fire events in ascending `(time, EventId)` order — FIFO
//! among equal times via the monotonically assigned event id — so runs are
//! deterministic and backend choice is unobservable except in speed. The
//! `HPCC_DES_BACKEND=heap` environment variable forces the reference
//! backend process-wide (used by the cross-process equivalence gate in
//! `tests/integration_traces.rs`).

use crate::time::{SimSpan, SimTime};
use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashSet};

/// Identifier of a scheduled event, usable for cancellation. Ids are
/// assigned in schedule order and double as the FIFO tie-break among
/// events at the same instant.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct EventId(u64);

/// Which event-queue implementation an [`Engine`] uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DesBackend {
    /// Hierarchical timing wheel (default; fast path).
    TimingWheel,
    /// Pre-refactor `BinaryHeap` queue (reference implementation for
    /// equivalence tests and benchmark comparisons).
    ReferenceHeap,
}

impl DesBackend {
    /// Backend selected by the environment: `HPCC_DES_BACKEND=heap` forces
    /// the reference heap, anything else (or unset) picks the wheel.
    pub fn from_env() -> DesBackend {
        static FROM_ENV: std::sync::OnceLock<DesBackend> = std::sync::OnceLock::new();
        *FROM_ENV.get_or_init(|| match std::env::var("HPCC_DES_BACKEND") {
            Ok(v) if v.eq_ignore_ascii_case("heap") => DesBackend::ReferenceHeap,
            _ => DesBackend::TimingWheel,
        })
    }
}

type Handler<W> = Box<dyn FnOnce(&mut Engine<W>, &mut W)>;

/// One pending event. Ordered by `(at, id)`: earliest time first, FIFO
/// among equal times via the schedule-order id.
struct Scheduled<W> {
    at: u64,
    id: u64,
    run: Handler<W>,
}

impl<W> PartialEq for Scheduled<W> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.id == other.id
    }
}
impl<W> Eq for Scheduled<W> {}
impl<W> PartialOrd for Scheduled<W> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl<W> Ord for Scheduled<W> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.at, self.id).cmp(&(other.at, other.id))
    }
}

/// Bits per wheel level: each level has `2^SLOT_BITS` slots.
const SLOT_BITS: u32 = 6;
/// Slots per wheel level.
pub const SLOTS: usize = 1 << SLOT_BITS;
/// Wheel levels. `LEVELS * SLOT_BITS = 66 >= 64`, so every `u64` instant
/// maps to a slot and no unbounded overflow list is needed.
pub const LEVELS: usize = 11;

/// Hierarchical timing wheel. Level `k` slot `s` holds events whose time,
/// relative to the wheel's current position `elapsed`, first differs from
/// it in bit range `[6k, 6k+6)` and whose level-`k` digit is `s`. This
/// keeps two invariants the dispatch loop relies on:
///
/// * every stored event satisfies `at > elapsed`, and
/// * a level-0 slot holds events of exactly one instant, so draining one
///   slot and sorting it by id reproduces global `(at, id)` order.
struct Wheel<W> {
    /// Current wheel position (ns). Lags the next pending event, never
    /// ahead of it; may run ahead of the engine's public clock when a
    /// deadline cuts a run short of the next event.
    elapsed: u64,
    /// `LEVELS * SLOTS` buckets, flattened.
    slots: Vec<Vec<Scheduled<W>>>,
    /// Per-level bitmask of non-empty slots.
    occupied: [u64; LEVELS],
    /// Events at or before `elapsed` (scheduled "now" or into the past of
    /// the wheel position). Tiny in practice; a heap keeps exact order.
    due: BinaryHeap<Reverse<Scheduled<W>>>,
    /// Current slot being dispatched, sorted by descending id so events
    /// pop in FIFO order.
    stash: Vec<Scheduled<W>>,
    /// Reusable buffer for [`Wheel::cascade`] so re-filing a slot never
    /// allocates in steady state.
    scratch: Vec<Scheduled<W>>,
    /// Wheel position at the last cascade pass. Inserts can never land in
    /// the current slot of their level (their first differing bit picks
    /// the level), so a pass is only needed after the position crosses a
    /// level-1+ boundary — one XOR decides.
    last_scan: u64,
    /// Live entries across `slots`, `due` and `stash`.
    len: usize,
}

impl<W> Wheel<W> {
    fn new() -> Wheel<W> {
        Wheel {
            elapsed: 0,
            slots: (0..LEVELS * SLOTS).map(|_| Vec::new()).collect(),
            occupied: [0; LEVELS],
            due: BinaryHeap::new(),
            stash: Vec::new(),
            scratch: Vec::new(),
            last_scan: 0,
            len: 0,
        }
    }

    /// Level and slot for `when`, relative to the current position.
    /// Caller guarantees `when > self.elapsed`.
    fn position(&self, when: u64) -> (usize, usize) {
        let diff = when ^ self.elapsed;
        debug_assert!(diff != 0);
        let level = ((63 - diff.leading_zeros()) / SLOT_BITS) as usize;
        let slot = ((when >> (SLOT_BITS * level as u32)) & (SLOTS as u64 - 1)) as usize;
        (level, slot)
    }

    fn insert(&mut self, ev: Scheduled<W>) {
        self.len += 1;
        if ev.at <= self.elapsed {
            self.due.push(Reverse(ev));
            return;
        }
        let (level, slot) = self.position(ev.at);
        self.slots[level * SLOTS + slot].push(ev);
        self.occupied[level] |= 1 << slot;
    }

    /// Move every event out of `(level, slot)` and re-file it relative to
    /// the current position (all land at strictly lower levels or in
    /// `due`).
    fn cascade(&mut self, level: usize, slot: usize) {
        self.occupied[level] &= !(1 << slot);
        // Swap buffers instead of taking: the slot keeps the scratch
        // buffer's capacity and vice versa, so cascades stop allocating
        // once the wheel is warm.
        let mut scratch = std::mem::take(&mut self.scratch);
        std::mem::swap(&mut scratch, &mut self.slots[level * SLOTS + slot]);
        for ev in scratch.drain(..) {
            self.len -= 1; // insert() re-counts it
            self.insert(ev);
        }
        self.scratch = scratch;
    }

    /// Advance/cascade until the earliest pending instant is known.
    /// Returns `None` when the wheel holds no events outside `due`/`stash`.
    fn next_tick(&mut self) -> Option<u64> {
        loop {
            // Re-file events whose slot the wheel position has entered:
            // they belong at a lower level now (or in `due`). One ascending
            // pass suffices — cascaded events never land in the current
            // slot of a lower level. Skipped entirely while the position
            // moves within one level-0 rotation (the dense-event fast
            // path: no level-1+ digit changed, so no slot became current).
            if (self.elapsed ^ self.last_scan) >= SLOTS as u64 {
                for level in 1..LEVELS {
                    let cur = ((self.elapsed >> (SLOT_BITS * level as u32)) & (SLOTS as u64 - 1))
                        as usize;
                    if self.occupied[level] & (1 << cur) != 0 {
                        self.cascade(level, cur);
                    }
                }
            }
            self.last_scan = self.elapsed;
            if let Some(Reverse(head)) = self.due.peek() {
                return Some(head.at);
            }
            // Nearest occupied level-0 slot in the current rotation.
            let cur0 = (self.elapsed & (SLOTS as u64 - 1)) as usize;
            let mask0 = self.occupied[0] & (!0u64 << cur0);
            if mask0 != 0 {
                let slot = mask0.trailing_zeros() as u64;
                return Some((self.elapsed & !(SLOTS as u64 - 1)) | slot);
            }
            // Jump to the start of the next occupied window of the lowest
            // level that has one; its events cascade on the next pass.
            let mut jumped = false;
            for level in 1..LEVELS {
                let shift = SLOT_BITS * level as u32;
                let cur = ((self.elapsed >> shift) & (SLOTS as u64 - 1)) as usize;
                let beyond = if cur + 1 >= SLOTS {
                    0
                } else {
                    self.occupied[level] & (!0u64 << (cur + 1))
                };
                if beyond != 0 {
                    let slot = beyond.trailing_zeros() as u64;
                    let upper_shift = shift + SLOT_BITS;
                    let upper = if upper_shift >= 64 {
                        0
                    } else {
                        self.elapsed & (!0u64 << upper_shift)
                    };
                    self.elapsed = upper | (slot << shift);
                    jumped = true;
                    break;
                }
            }
            if !jumped {
                return None;
            }
        }
    }

    /// Remove and return the next event in `(at, id)` order, if its time is
    /// at or before `deadline`.
    fn pop_next(&mut self, deadline: u64) -> Option<Scheduled<W>> {
        loop {
            // Current-slot stash and the due heap are the only sources of
            // already-located events; pick the earlier of their heads.
            let stash_key = self.stash.last().map(|e| (e.at, e.id));
            let due_key = self.due.peek().map(|Reverse(e)| (e.at, e.id));
            let pick = match (stash_key, due_key) {
                (None, None) => None,
                (Some(s), d) if d.is_none_or(|d| s <= d) => Some((s, true)),
                (_, Some(d)) => Some((d, false)),
                (Some(_), None) => unreachable!("covered by the second arm"),
            };
            if let Some(((at, _), from_stash)) = pick {
                if at > deadline {
                    return None;
                }
                self.len -= 1;
                return Some(if from_stash {
                    self.stash.pop().expect("stash head")
                } else {
                    self.due.pop().expect("due head").0
                });
            }
            let tick = self.next_tick()?;
            if tick > deadline {
                return None;
            }
            if tick > self.elapsed {
                self.elapsed = tick;
                let slot = (tick & (SLOTS as u64 - 1)) as usize;
                self.occupied[0] &= !(1 << slot);
                // The stash is empty here (pick above found nothing), so a
                // swap hands its spare capacity to the drained slot.
                debug_assert!(self.stash.is_empty());
                std::mem::swap(&mut self.stash, &mut self.slots[slot]);
                // One slot = one instant; descending id so pop() is FIFO.
                self.stash.sort_unstable_by_key(|s| std::cmp::Reverse(s.id));
            }
            // `tick == elapsed` means next_tick surfaced `due` entries;
            // the next loop iteration pops them.
        }
    }

    /// Earliest pending instant without removing anything (cascades as a
    /// side effect, which preserves the event set).
    fn peek_at(&mut self) -> Option<u64> {
        let located = self
            .stash
            .last()
            .map(|e| (e.at, e.id))
            .into_iter()
            .chain(self.due.peek().map(|Reverse(e)| (e.at, e.id)))
            .min();
        if let Some((at, _)) = located {
            return Some(at);
        }
        self.next_tick()
    }

    fn iter_ids(&self) -> impl Iterator<Item = EventId> + '_ {
        self.slots
            .iter()
            .flatten()
            .map(|e| EventId(e.id))
            .chain(self.due.iter().map(|Reverse(e)| EventId(e.id)))
            .chain(self.stash.iter().map(|e| EventId(e.id)))
    }
}

/// The two queue implementations behind one engine API.
enum Queue<W> {
    Wheel(Wheel<W>),
    Heap(BinaryHeap<Reverse<Scheduled<W>>>),
}

impl<W> Queue<W> {
    fn insert(&mut self, ev: Scheduled<W>) {
        match self {
            Queue::Wheel(w) => w.insert(ev),
            Queue::Heap(h) => h.push(Reverse(ev)),
        }
    }

    fn pop_next(&mut self, deadline: u64) -> Option<Scheduled<W>> {
        match self {
            Queue::Wheel(w) => w.pop_next(deadline),
            Queue::Heap(h) => {
                if h.peek().is_some_and(|Reverse(e)| e.at <= deadline) {
                    h.pop().map(|Reverse(e)| e)
                } else {
                    None
                }
            }
        }
    }

    fn peek_at(&mut self) -> Option<u64> {
        match self {
            Queue::Wheel(w) => w.peek_at(),
            Queue::Heap(h) => h.peek().map(|Reverse(e)| e.at),
        }
    }
}

/// Discrete-event engine over a world type `W`.
pub struct Engine<W> {
    now: SimTime,
    next_id: u64,
    queue: Queue<W>,
    cancelled: HashSet<EventId>,
    processed: u64,
}

impl<W> Default for Engine<W> {
    fn default() -> Self {
        Engine::new()
    }
}

impl<W> Engine<W> {
    /// An engine on the environment-selected backend (the timing wheel
    /// unless `HPCC_DES_BACKEND=heap`).
    pub fn new() -> Engine<W> {
        Engine::with_backend(DesBackend::from_env())
    }

    /// An engine on an explicit queue backend.
    pub fn with_backend(backend: DesBackend) -> Engine<W> {
        Engine {
            now: SimTime::ZERO,
            next_id: 0,
            queue: match backend {
                DesBackend::TimingWheel => Queue::Wheel(Wheel::new()),
                DesBackend::ReferenceHeap => Queue::Heap(BinaryHeap::new()),
            },
            cancelled: HashSet::new(),
            processed: 0,
        }
    }

    /// Which queue backend this engine runs on.
    pub fn backend(&self) -> DesBackend {
        match self.queue {
            Queue::Wheel(_) => DesBackend::TimingWheel,
            Queue::Heap(_) => DesBackend::ReferenceHeap,
        }
    }

    /// Current logical time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Number of events executed so far.
    pub fn processed(&self) -> u64 {
        self.processed
    }

    /// Schedule `f` to run at absolute time `at`. Events scheduled in the
    /// past run "now" (the engine never rewinds its clock).
    pub fn at(&mut self, at: SimTime, f: impl FnOnce(&mut Engine<W>, &mut W) + 'static) -> EventId {
        let id = self.next_id;
        self.next_id += 1;
        self.queue.insert(Scheduled {
            at: at.max(self.now).0,
            id,
            run: Box::new(f),
        });
        EventId(id)
    }

    /// Schedule `f` to run `delay` after the current time.
    pub fn after(
        &mut self,
        delay: SimSpan,
        f: impl FnOnce(&mut Engine<W>, &mut W) + 'static,
    ) -> EventId {
        let at = self.now + delay;
        self.at(at, f)
    }

    /// Cancel a previously scheduled event. Cancelling an already-run or
    /// unknown event is a no-op.
    pub fn cancel(&mut self, id: EventId) {
        self.cancelled.insert(id);
    }

    /// True if `id` was popped as cancelled (and consume the mark).
    /// The empty-set fast path keeps the per-event cost of the common
    /// cancel-free case to a single branch.
    fn take_cancelled(&mut self, id: u64) -> bool {
        !self.cancelled.is_empty() && self.cancelled.remove(&EventId(id))
    }

    /// Run all events up to and including `deadline`. Returns the number of
    /// events executed.
    pub fn run_until(&mut self, world: &mut W, deadline: SimTime) -> u64 {
        let mut ran = 0;
        while let Some(ev) = self.queue.pop_next(deadline.0) {
            if self.take_cancelled(ev.id) {
                continue;
            }
            self.now = SimTime(ev.at);
            (ev.run)(self, world);
            self.processed += 1;
            ran += 1;
        }
        // Even if no event landed exactly on the deadline, time passes.
        if self.now < deadline {
            self.now = deadline;
        }
        ran
    }

    /// Run until the event queue drains. Returns the number of events
    /// executed. A `max_events` guard protects against runaway loops in
    /// model bugs.
    pub fn run_to_completion(&mut self, world: &mut W, max_events: u64) -> u64 {
        let mut ran = 0;
        while let Some(ev) = self.queue.pop_next(u64::MAX) {
            if ran >= max_events {
                panic!(
                    "discrete-event engine exceeded {max_events} events at {:?}; \
                     likely a self-rescheduling loop",
                    SimTime(ev.at)
                );
            }
            if self.take_cancelled(ev.id) {
                continue;
            }
            self.now = SimTime(ev.at);
            (ev.run)(self, world);
            self.processed += 1;
            ran += 1;
        }
        ran
    }

    /// Time of the next runnable event, cancelled or not (`None` when the
    /// queue is empty). Cascading inside the wheel makes this `&mut`.
    pub fn peek_next_at(&mut self) -> Option<SimTime> {
        self.queue.peek_at().map(SimTime)
    }

    /// True if no runnable events remain.
    pub fn is_idle(&self) -> bool {
        match &self.queue {
            Queue::Wheel(w) => w.iter_ids().all(|id| self.cancelled.contains(&id)),
            Queue::Heap(h) => h
                .iter()
                .all(|Reverse(e)| self.cancelled.contains(&EventId(e.id))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const BACKENDS: [DesBackend; 2] = [DesBackend::TimingWheel, DesBackend::ReferenceHeap];

    #[derive(Default)]
    struct World {
        log: Vec<(u64, &'static str)>,
    }

    /// Every edge-semantics test runs against both backends: the wheel must
    /// be indistinguishable from the reference heap.
    fn on_both(test: impl Fn(&mut Engine<World>, &mut World)) {
        for backend in BACKENDS {
            let mut eng = Engine::<World>::with_backend(backend);
            let mut w = World::default();
            test(&mut eng, &mut w);
        }
    }

    #[test]
    fn events_run_in_time_order() {
        on_both(|eng, w| {
            eng.at(SimTime(30), |e, w| w.log.push((e.now().0, "c")));
            eng.at(SimTime(10), |e, w| w.log.push((e.now().0, "a")));
            eng.at(SimTime(20), |e, w| w.log.push((e.now().0, "b")));
            eng.run_to_completion(w, 100);
            assert_eq!(w.log, vec![(10, "a"), (20, "b"), (30, "c")]);
        });
    }

    #[test]
    fn ties_run_fifo() {
        on_both(|eng, w| {
            eng.at(SimTime(5), |_, w| w.log.push((5, "first")));
            eng.at(SimTime(5), |_, w| w.log.push((5, "second")));
            eng.run_to_completion(w, 10);
            assert_eq!(w.log, vec![(5, "first"), (5, "second")]);
        });
    }

    #[test]
    fn handlers_can_schedule_more_events() {
        on_both(|eng, w| {
            eng.at(SimTime(1), |e, _| {
                e.after(SimSpan::nanos(9), |e, w: &mut World| {
                    w.log.push((e.now().0, "chained"));
                });
            });
            eng.run_to_completion(w, 10);
            assert_eq!(w.log, vec![(10, "chained")]);
        });
    }

    #[test]
    fn cancellation_skips_event() {
        on_both(|eng, w| {
            let id = eng.at(SimTime(10), |_, w| w.log.push((10, "cancelled")));
            eng.at(SimTime(20), |_, w| w.log.push((20, "kept")));
            eng.cancel(id);
            eng.run_to_completion(w, 10);
            assert_eq!(w.log, vec![(20, "kept")]);
        });
    }

    #[test]
    fn run_until_respects_deadline_and_advances_clock() {
        on_both(|eng, w| {
            eng.at(SimTime(10), |_, w| w.log.push((10, "in")));
            eng.at(SimTime(100), |_, w| w.log.push((100, "out")));
            let ran = eng.run_until(w, SimTime(50));
            assert_eq!(ran, 1);
            assert_eq!(eng.now(), SimTime(50));
            assert_eq!(w.log, vec![(10, "in")]);
            eng.run_to_completion(w, 10);
            assert_eq!(w.log.len(), 2);
        });
    }

    #[test]
    fn past_events_run_at_current_time() {
        on_both(|eng, w| {
            eng.at(SimTime(50), |e, _| {
                // Scheduling "at 10" from t=50 must not rewind the clock.
                e.at(SimTime(10), |e, w: &mut World| {
                    w.log.push((e.now().0, "late"))
                });
            });
            eng.run_to_completion(w, 10);
            assert_eq!(w.log, vec![(50, "late")]);
        });
    }

    #[test]
    fn cancel_of_already_fired_event_is_a_noop() {
        on_both(|eng, w| {
            let id = eng.at(SimTime(10), |_, w| w.log.push((10, "fired")));
            eng.at(SimTime(20), |_, w| w.log.push((20, "later")));
            eng.run_to_completion(w, 10);
            assert_eq!(w.log, vec![(10, "fired"), (20, "later")]);
            // Cancelling after the fact must not disturb anything.
            eng.cancel(id);
            assert!(eng.is_idle());
            eng.at(SimTime(30), |_, w| w.log.push((30, "after-cancel")));
            eng.run_to_completion(w, 10);
            assert_eq!(w.log.len(), 3, "stale cancellation must not eat events");
        });
    }

    #[test]
    fn cancel_then_reschedule_runs_only_the_replacement() {
        on_both(|eng, w| {
            let id = eng.at(SimTime(10), |_, w| w.log.push((10, "original")));
            eng.cancel(id);
            eng.at(SimTime(10), |e, w| w.log.push((e.now().0, "replacement")));
            eng.run_to_completion(w, 10);
            assert_eq!(w.log, vec![(10, "replacement")]);
        });
    }

    #[test]
    fn three_way_ties_run_in_scheduling_order() {
        on_both(|eng, w| {
            eng.at(SimTime(7), |_, w| w.log.push((7, "a")));
            eng.at(SimTime(7), |_, w| w.log.push((7, "b")));
            eng.at(SimTime(7), |_, w| w.log.push((7, "c")));
            eng.run_to_completion(w, 10);
            assert_eq!(w.log, vec![(7, "a"), (7, "b"), (7, "c")]);
        });
    }

    #[test]
    #[should_panic(expected = "exceeded")]
    fn runaway_loop_is_detected() {
        fn respawn(e: &mut Engine<World>, _w: &mut World) {
            e.after(SimSpan::nanos(1), respawn);
        }
        let mut eng = Engine::<World>::new();
        let mut w = World::default();
        eng.at(SimTime(0), respawn);
        eng.run_to_completion(&mut w, 100);
    }

    #[test]
    fn is_idle_accounts_for_cancellations() {
        on_both(|eng, _| {
            let id = eng.at(SimTime(10), |_, _| {});
            assert!(!eng.is_idle());
            eng.cancel(id);
            assert!(eng.is_idle());
        });
    }

    #[test]
    fn far_future_events_cross_every_wheel_level() {
        on_both(|eng, w| {
            // One event per wheel level, including the topmost bits.
            let times = [
                1u64,
                63,
                64,
                4 << 6,
                (5 << 12) + 17,
                (3 << 18) + 1,
                (9 << 24) + 1234,
                (2 << 30) + 5,
                (7u64 << 36) + 99,
                (1u64 << 42) + 1,
                (1u64 << 48) + 1,
                (1u64 << 54) + 1,
                (1u64 << 60) + 1,
                u64::MAX - 1,
            ];
            for t in times {
                eng.at(SimTime(t), move |e, w| w.log.push((e.now().0, "hit")));
            }
            eng.run_to_completion(w, 100);
            let fired: Vec<u64> = w.log.iter().map(|(t, _)| *t).collect();
            let mut want = times.to_vec();
            want.sort_unstable();
            assert_eq!(fired, want);
        });
    }

    #[test]
    fn deadline_stop_then_schedule_before_parked_event() {
        // A deadline can park the wheel position past the public clock;
        // events scheduled into that gap must still fire in time order.
        on_both(|eng, w| {
            eng.at(SimTime(1000), |e, w| w.log.push((e.now().0, "far")));
            eng.run_until(w, SimTime(100));
            assert_eq!(eng.now(), SimTime(100));
            eng.at(SimTime(700), |e, w| w.log.push((e.now().0, "mid")));
            eng.at(SimTime(300), |e, w| w.log.push((e.now().0, "near")));
            eng.run_to_completion(w, 10);
            assert_eq!(w.log, vec![(300, "near"), (700, "mid"), (1000, "far")]);
        });
    }

    #[test]
    fn run_until_with_receded_deadline_fires_nothing() {
        on_both(|eng, w| {
            eng.at(SimTime(100), |e, w| w.log.push((e.now().0, "ev")));
            eng.run_until(w, SimTime(50));
            assert_eq!(eng.now(), SimTime(50));
            // Earlier deadline than the clock: nothing fires, no rewind.
            let ran = eng.run_until(w, SimTime(10));
            assert_eq!(ran, 0);
            assert_eq!(eng.now(), SimTime(50));
            eng.run_to_completion(w, 10);
            assert_eq!(w.log, vec![(100, "ev")]);
        });
    }

    #[test]
    fn peek_next_at_reports_earliest_event() {
        on_both(|eng, _| {
            assert_eq!(eng.peek_next_at(), None);
            eng.at(SimTime(90), |_, _| {});
            eng.at(SimTime(40), |_, _| {});
            assert_eq!(eng.peek_next_at(), Some(SimTime(40)));
        });
    }

    #[test]
    fn backend_selection_is_visible() {
        assert_eq!(
            Engine::<World>::with_backend(DesBackend::TimingWheel).backend(),
            DesBackend::TimingWheel
        );
        assert_eq!(
            Engine::<World>::with_backend(DesBackend::ReferenceHeap).backend(),
            DesBackend::ReferenceHeap
        );
    }
}

#[cfg(test)]
mod equivalence {
    //! Differential property suite: identical op streams through the wheel
    //! and the reference heap must produce identical fire logs, clocks and
    //! event counts. Handlers chain further schedules and cancels derived
    //! deterministically from the event key, so divergence anywhere in the
    //! fire order snowballs into a log mismatch.

    use super::*;
    use proptest::prelude::*;

    #[derive(Default)]
    struct RecWorld {
        log: Vec<(u64, u64)>,
        ids: Vec<EventId>,
    }

    /// Handler for event `key`: logs, then (depending on the key) chains a
    /// child, schedules a same-tick sibling, or cancels a recorded id.
    fn handler(key: u64) -> impl FnOnce(&mut Engine<RecWorld>, &mut RecWorld) + 'static {
        move |e, w| {
            w.log.push((e.now().0, key));
            if key.is_multiple_of(3) {
                let id = e.after(SimSpan::nanos(key % 97 + 1), handler(key / 2 + 101));
                w.ids.push(id);
            }
            if key % 5 == 1 {
                // Same-tick sibling: must fire later this instant, FIFO.
                // `key + 7001` shifts the residue so the chain terminates.
                let id = e.at(e.now(), handler(key + 7001));
                w.ids.push(id);
            }
            if key % 7 == 2 && !w.ids.is_empty() {
                let victim = w.ids[(key as usize) % w.ids.len()];
                e.cancel(victim);
            }
        }
    }

    #[derive(Debug, Clone)]
    enum Op {
        Schedule { at: u64, key: u64 },
        CancelNth(usize),
        RunUntil(u64),
    }

    fn op_strategy() -> impl Strategy<Value = Op> {
        prop_oneof![
            // Mix near times (tie-heavy), mid and far (cross wheel levels).
            (0u64..200u64, 0u64..10_000u64).prop_map(|(at, key)| Op::Schedule { at, key }),
            (0u64..1_000_000u64, 0u64..10_000u64).prop_map(|(at, key)| Op::Schedule { at, key }),
            (0u64..(1u64 << 40), 0u64..10_000u64).prop_map(|(at, key)| Op::Schedule { at, key }),
            (0usize..64usize).prop_map(Op::CancelNth),
            (0u64..2_000_000u64).prop_map(Op::RunUntil),
        ]
    }

    fn apply(ops: &[Op], backend: DesBackend) -> (Vec<(u64, u64)>, u64, u64, bool) {
        let mut eng = Engine::<RecWorld>::with_backend(backend);
        let mut w = RecWorld::default();
        let mut scheduled: Vec<EventId> = Vec::new();
        for op in ops {
            match op {
                Op::Schedule { at, key } => {
                    let id = eng.at(SimTime(*at), handler(*key));
                    scheduled.push(id);
                }
                Op::CancelNth(n) => {
                    if !scheduled.is_empty() {
                        eng.cancel(scheduled[n % scheduled.len()]);
                    }
                }
                Op::RunUntil(t) => {
                    eng.run_until(&mut w, SimTime(*t));
                }
            }
        }
        eng.run_to_completion(&mut w, 100_000);
        (w.log, eng.now().0, eng.processed(), eng.is_idle())
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        /// Random schedule/cancel/run workloads: wheel ≡ reference heap.
        #[test]
        fn wheel_matches_reference_heap(ops in proptest::collection::vec(op_strategy(), 1..40)) {
            let wheel = apply(&ops, DesBackend::TimingWheel);
            let heap = apply(&ops, DesBackend::ReferenceHeap);
            prop_assert_eq!(&wheel.0, &heap.0, "fire logs diverge");
            prop_assert_eq!(wheel.1, heap.1, "clocks diverge");
            prop_assert_eq!(wheel.2, heap.2, "processed counts diverge");
            prop_assert_eq!(wheel.3, heap.3, "idleness diverges");
        }

        /// Satellite regression: cancels interleaved with same-tick
        /// schedules — cancel-after-fire and cancel-then-reschedule must be
        /// byte-identical across backends.
        #[test]
        fn same_tick_cancel_interleavings_match(
            tick in 0u64..64u64,
            plan in proptest::collection::vec((0u8..4u8, 0usize..8usize), 1..24),
        ) {
            let run = |backend: DesBackend| {
                let mut eng = Engine::<RecWorld>::with_backend(backend);
                let mut w = RecWorld::default();
                let mut ids: Vec<EventId> = Vec::new();
                for (i, (op, n)) in plan.iter().enumerate() {
                    match op {
                        // Schedule on the shared tick.
                        0 | 1 => {
                            let key = i as u64;
                            ids.push(eng.at(SimTime(tick), move |e, w| {
                                w.log.push((e.now().0, key));
                            }));
                        }
                        // Cancel an earlier schedule (maybe repeatedly).
                        2 => {
                            if !ids.is_empty() {
                                eng.cancel(ids[n % ids.len()]);
                            }
                        }
                        // Cancel then immediately reschedule the same tick.
                        _ => {
                            if !ids.is_empty() {
                                eng.cancel(ids[n % ids.len()]);
                            }
                            let key = 1000 + i as u64;
                            ids.push(eng.at(SimTime(tick), move |e, w| {
                                w.log.push((e.now().0, key));
                            }));
                        }
                    }
                }
                eng.run_to_completion(&mut w, 10_000);
                // Post-run cancels of fired events must stay no-ops.
                for id in &ids {
                    eng.cancel(*id);
                }
                assert!(eng.is_idle());
                (w.log, eng.processed())
            };
            let wheel = run(DesBackend::TimingWheel);
            let heap = run(DesBackend::ReferenceHeap);
            prop_assert_eq!(wheel, heap);
        }
    }
}

//! Deterministic fault injection and retry policy.
//!
//! The survey's operational sections (registry rate limits, shared-FS
//! contention, node churn) describe *failure handling* as much as steady
//! state. This module supplies the two halves every layer shares:
//!
//! * [`FaultInjector`] — a seeded, rule-driven injector that components
//!   consult before each modelled operation. Rules are time windows with a
//!   firing probability, so both *sticky* outages (probability 1.0 over a
//!   window: a registry down for a minute, a disk that stays full) and
//!   *transient* blips (a 2% 503 rate, peer churn) are expressible. The
//!   injector draws from a [`DetRng`], so a fixed seed yields the same fault
//!   schedule on every run — the chaos suites diff two runs byte-for-byte.
//! * [`RetryPolicy`] — exponential backoff with deterministic jitter, an
//!   overall deadline and an optional per-attempt (stage) timeout, executed
//!   over *logical* time. Retries never sleep; they advance `SimTime`.
//!
//! Every decision — injected fault, retry, stage timeout, recovery, give-up,
//! degrade — is recorded in the injector's [`MetricsRegistry`] and appended
//! to an ordered trace, which is what the determinism contract is asserted
//! against: same seed ⇒ identical trace ⇒ identical metrics.

use crate::obs::Stage;
use crate::{DetRng, MetricsRegistry, SimClock, SimSpan, SimTime};
use parking_lot::Mutex;
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// The failure classes the testbed models, one per choke point in the
/// pull → convert → cache → run pipeline.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum FaultKind {
    /// Registry answers 429 Too Many Requests (over and above the token
    /// bucket's modelled delay — this is the hard reject).
    RegistryRateLimit,
    /// Registry answers a transient 5xx.
    RegistryUnavailable,
    /// Registry connection times out.
    RegistryTimeout,
    /// Shared-FS metadata servers brown out: metadata ops still complete
    /// but at a large service-time multiple.
    MdsBrownout,
    /// Node-local scratch disk is full; writes fail until the window ends.
    DiskFull,
    /// A P2P peer leaves the swarm mid-broadcast.
    PeerChurn,
    /// Kubelet/CRI flap: the container runtime rejects a start transiently.
    CriFlap,
    /// SPANK prolog fails on an allocated node (bad mount, stale cache).
    PrologFailure,
    /// A node flaps during a partition reprovision (reimage fails, BMC
    /// reset, boot loop): the drain→reprovision cycle must restart.
    NodeFlap,
    /// A process crash: the component dies at a named crash point
    /// ([`crate::crash::CrashInjector`]) and must come back through its
    /// journal / recovery path rather than a retry loop.
    Crash,
}

impl FaultKind {
    /// Stable lower-case label used in metric names and trace lines.
    pub fn label(self) -> &'static str {
        match self {
            FaultKind::RegistryRateLimit => "registry_rate_limit",
            FaultKind::RegistryUnavailable => "registry_unavailable",
            FaultKind::RegistryTimeout => "registry_timeout",
            FaultKind::MdsBrownout => "mds_brownout",
            FaultKind::DiskFull => "disk_full",
            FaultKind::PeerChurn => "peer_churn",
            FaultKind::CriFlap => "cri_flap",
            FaultKind::PrologFailure => "prolog_failure",
            FaultKind::NodeFlap => "node_flap",
            FaultKind::Crash => "crash",
        }
    }
}

impl fmt::Display for FaultKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// One injection rule: while `from <= now < until`, operations of `kind`
/// fail with `probability`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultRule {
    pub kind: FaultKind,
    pub from: SimTime,
    pub until: SimTime,
    /// Firing probability per consultation. `>= 1.0` is sticky: every
    /// operation in the window fails, and no randomness is consumed.
    pub probability: f64,
}

impl FaultRule {
    /// A sticky outage over `[from, until)`.
    pub fn sticky(kind: FaultKind, from: SimTime, until: SimTime) -> FaultRule {
        FaultRule {
            kind,
            from,
            until,
            probability: 1.0,
        }
    }

    /// A transient failure rate over `[from, until)`.
    pub fn transient(
        kind: FaultKind,
        from: SimTime,
        until: SimTime,
        probability: f64,
    ) -> FaultRule {
        FaultRule {
            kind,
            from,
            until,
            probability,
        }
    }

    /// A transient failure rate active for the whole experiment.
    pub fn background(kind: FaultKind, probability: f64) -> FaultRule {
        FaultRule::transient(kind, SimTime::ZERO, SimTime(u64::MAX), probability)
    }

    fn active_at(&self, now: SimTime) -> bool {
        self.from <= now && now < self.until
    }
}

/// A fault the injector decided to fire.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Fault {
    pub kind: FaultKind,
    /// When the affected operation was attempted.
    pub at: SimTime,
    /// Position in the injector's global fire order (1-based).
    pub seq: u64,
}

/// Seeded fault scheduler shared by every modelled component.
///
/// Components call [`FaultInjector::roll`] at each operation they want to be
/// injectable; outside any active rule window the call is free and consumes
/// no randomness, so enabling the subsystem with an empty rule set leaves
/// every existing experiment bit-identical.
#[derive(Debug)]
pub struct FaultInjector {
    rules: Vec<FaultRule>,
    rng: Mutex<DetRng>,
    metrics: Arc<MetricsRegistry>,
    trace: Mutex<Vec<String>>,
    seq: AtomicU64,
    enabled: bool,
}

impl FaultInjector {
    /// An injector with no rules that never fires. This is the default every
    /// component starts with; `roll` is a cheap no-op.
    pub fn disabled() -> Arc<FaultInjector> {
        Arc::new(FaultInjector {
            rules: Vec::new(),
            rng: Mutex::new(DetRng::seeded(0)),
            metrics: Arc::new(MetricsRegistry::new()),
            trace: Mutex::new(Vec::new()),
            seq: AtomicU64::new(0),
            enabled: false,
        })
    }

    /// A live injector with the given seed and rule set.
    pub fn new(seed: u64, rules: Vec<FaultRule>) -> FaultInjector {
        FaultInjector {
            rules,
            rng: Mutex::new(DetRng::seeded(seed)),
            metrics: Arc::new(MetricsRegistry::new()),
            trace: Mutex::new(Vec::new()),
            seq: AtomicU64::new(0),
            enabled: true,
        }
    }

    /// Route fault/retry metrics into an experiment's registry instead of a
    /// private one.
    pub fn with_metrics(mut self, metrics: Arc<MetricsRegistry>) -> FaultInjector {
        self.metrics = metrics;
        self
    }

    /// The registry where every injection/retry/degrade decision lands.
    pub fn metrics(&self) -> &MetricsRegistry {
        &self.metrics
    }

    /// True when at least one rule can ever fire.
    pub fn is_enabled(&self) -> bool {
        self.enabled && !self.rules.is_empty()
    }

    /// Consult the schedule: does an operation of `kind` at `now` fail?
    ///
    /// Deterministic: with a fixed seed and a fixed call order (the
    /// experiments are single-threaded over logical time) the same calls
    /// return the same answers.
    pub fn roll(&self, kind: FaultKind, now: SimTime) -> Option<Fault> {
        if !self.enabled {
            return None;
        }
        let rule = self
            .rules
            .iter()
            .find(|r| r.kind == kind && r.active_at(now))?;
        let fire = rule.probability >= 1.0 || self.rng.lock().chance(rule.probability);
        if !fire {
            return None;
        }
        let seq = self.seq.fetch_add(1, Ordering::Relaxed) + 1;
        self.metrics
            .incr(&format!("faults.injected.{}", kind.label()));
        self.note(format!("#{seq} {now} inject {kind}"));
        Some(Fault { kind, at: now, seq })
    }

    /// Run a closure against the injector's RNG (deterministic jitter,
    /// peer selection under churn, ...).
    pub fn with_rng<R>(&self, f: impl FnOnce(&mut DetRng) -> R) -> R {
        f(&mut self.rng.lock())
    }

    /// Append a line to the ordered decision trace.
    pub fn note(&self, line: String) {
        self.trace.lock().push(line);
    }

    /// Record a degrade decision (fallback to a secondary source) so
    /// experiments can report how often each path saved a request.
    pub fn note_degrade(&self, op: &str, from: &str, to: &str, now: SimTime) {
        self.metrics.incr(&format!("degrade.{op}.{from}_to_{to}"));
        self.note(format!("- {now} degrade {op}: {from} -> {to}"));
    }

    /// The full decision trace, in order.
    pub fn trace(&self) -> Vec<String> {
        self.trace.lock().clone()
    }

    /// FNV-1a digest of the trace — a cheap fingerprint two runs can compare.
    pub fn trace_digest(&self) -> u64 {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for line in self.trace.lock().iter() {
            for b in line.as_bytes() {
                h ^= *b as u64;
                h = h.wrapping_mul(0x1_0000_01b3);
            }
            h ^= b'\n' as u64;
            h = h.wrapping_mul(0x1_0000_01b3);
        }
        h
    }
}

/// Exponential-backoff retry policy executed over logical time.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RetryPolicy {
    /// Total attempts including the first (1 = no retries).
    pub max_attempts: u32,
    /// Backoff before the first retry.
    pub base_backoff: SimSpan,
    /// Backoff growth cap.
    pub max_backoff: SimSpan,
    /// Growth factor per retry.
    pub multiplier: f64,
    /// Symmetric jitter fraction: the pause is scaled by a deterministic
    /// draw from `[1 - jitter, 1 + jitter]`.
    pub jitter: f64,
    /// Overall budget from the first attempt's start; once `now + backoff`
    /// would cross it, the policy gives up.
    pub deadline: SimSpan,
    /// Per-attempt (stage) timeout: an attempt whose modelled completion
    /// exceeds this is abandoned at the limit and treated as transient.
    pub attempt_timeout: Option<SimSpan>,
}

impl Default for RetryPolicy {
    fn default() -> RetryPolicy {
        RetryPolicy {
            max_attempts: 5,
            base_backoff: SimSpan::millis(100),
            max_backoff: SimSpan::secs(10),
            multiplier: 2.0,
            jitter: 0.1,
            deadline: SimSpan::secs(60),
            attempt_timeout: None,
        }
    }
}

impl RetryPolicy {
    /// A policy that fails fast: one attempt, no backoff.
    pub fn no_retries() -> RetryPolicy {
        RetryPolicy {
            max_attempts: 1,
            ..RetryPolicy::default()
        }
    }

    /// Builder: set the per-attempt timeout.
    pub fn with_attempt_timeout(mut self, t: SimSpan) -> RetryPolicy {
        self.attempt_timeout = Some(t);
        self
    }

    /// Builder: set the overall deadline.
    pub fn with_deadline(mut self, d: SimSpan) -> RetryPolicy {
        self.deadline = d;
        self
    }

    /// The pause after `failures` failed attempts (1-based), with jitter
    /// drawn deterministically from `rng`. Saturates at `max_backoff` for
    /// arbitrarily large failure counts: `powi` takes an `i32`, so a raw
    /// `as i32` cast of a huge count would wrap negative (shrinking the
    /// pause), and an exponent past ~1000 overflows `f64` to `+inf`, which
    /// [`SimSpan::scale`] clamps to zero — both would turn a retry storm
    /// into a zero-pause spin.
    pub fn backoff(&self, failures: u32, rng: &mut DetRng) -> SimSpan {
        let exp = failures.saturating_sub(1).min(i32::MAX as u32) as i32;
        let factor = self.multiplier.powi(exp);
        let capped = if factor.is_finite() {
            self.base_backoff.scale(factor).min(self.max_backoff)
        } else {
            self.max_backoff
        };
        if self.jitter <= 0.0 {
            return capped;
        }
        let factor = 1.0 + self.jitter * (2.0 * rng.unit() - 1.0);
        capped.scale(factor)
    }

    /// Retry an arrival→completion operation over logical time.
    ///
    /// `attempt_fn(attempt, arrival)` models one try: it returns the value
    /// plus the completion instant, or a typed error. `transient` decides
    /// whether an error is worth retrying; fatal errors propagate
    /// immediately with `gave_up == false`. `stage` tags every trace line
    /// (`[pull]`, `[request]`, ...) so retry traces and obs spans join on
    /// the same pipeline stage; metric names stay keyed by `op` alone.
    #[allow(clippy::too_many_arguments)]
    pub fn run_timed<T, E: fmt::Display>(
        &self,
        injector: &FaultInjector,
        op: &str,
        stage: Stage,
        start: SimTime,
        mut transient: impl FnMut(&E) -> bool,
        mut attempt_fn: impl FnMut(u32, SimTime) -> Result<(T, SimTime), E>,
    ) -> Result<RetryOk<T>, RetryErr<E>> {
        let m = injector.metrics();
        let hard_deadline = start + self.deadline;
        let mut now = start;
        let mut attempts = 0;
        loop {
            attempts += 1;
            m.incr(&format!("retry.{op}.attempts"));
            let cause = match attempt_fn(attempts, now) {
                Ok((value, done)) => {
                    let took = done.since(now);
                    match self.attempt_timeout {
                        Some(limit) if took > limit => {
                            // The client aborts at the timeout: charge the
                            // limit, not the full (browned-out) completion.
                            now += limit;
                            m.incr(&format!("retry.{op}.stage_timeout"));
                            injector.note(format!(
                                "- {now} {op} [{stage}] attempt {attempts} hit stage timeout {limit} (op needed {took})"
                            ));
                            RetryCause::StageTimeout { limit, took }
                        }
                        _ => {
                            if attempts > 1 {
                                m.incr(&format!("retry.{op}.recovered"));
                                m.observe(
                                    &format!("retry.{op}.recovery_ns"),
                                    done.since(start).as_nanos(),
                                );
                                injector.note(format!(
                                    "- {done} {op} [{stage}] recovered on attempt {attempts}"
                                ));
                            }
                            return Ok(RetryOk {
                                value,
                                done,
                                attempts,
                            });
                        }
                    }
                }
                Err(e) => {
                    if !transient(&e) {
                        m.incr(&format!("retry.{op}.fatal"));
                        return Err(RetryErr {
                            cause: RetryCause::Op(e),
                            at: now,
                            attempts,
                            gave_up: false,
                        });
                    }
                    RetryCause::Op(e)
                }
            };
            // Transient failure: back off or give up.
            if attempts >= self.max_attempts {
                m.incr(&format!("retry.{op}.giveup"));
                injector.note(format!(
                    "- {now} {op} [{stage}] gave up after {attempts} attempts: {cause}"
                ));
                return Err(RetryErr {
                    cause,
                    at: now,
                    attempts,
                    gave_up: true,
                });
            }
            let pause = injector.with_rng(|rng| self.backoff(attempts, rng));
            if now + pause > hard_deadline {
                m.incr(&format!("retry.{op}.giveup"));
                injector.note(format!(
                    "- {now} {op} [{stage}] gave up: deadline {} exhausted after {attempts} attempts: {cause}",
                    self.deadline
                ));
                return Err(RetryErr {
                    cause,
                    at: now,
                    attempts,
                    gave_up: true,
                });
            }
            now += pause;
            m.incr(&format!("retry.{op}.backoff"));
        }
    }

    /// Retry an operation that charges its own costs to a [`SimClock`].
    ///
    /// Backoff pauses advance the clock. The clock cannot rewind, so an
    /// attempt that overruns `attempt_timeout` stays fully charged — the
    /// timeout only governs the retry decision.
    pub fn run_clocked<T, E: fmt::Display>(
        &self,
        injector: &FaultInjector,
        op: &str,
        stage: Stage,
        clock: &SimClock,
        mut transient: impl FnMut(&E) -> bool,
        mut attempt_fn: impl FnMut(u32) -> Result<T, E>,
    ) -> Result<RetryOk<T>, RetryErr<E>> {
        let m = injector.metrics();
        let start = clock.now();
        let hard_deadline = start + self.deadline;
        let mut attempts = 0;
        loop {
            attempts += 1;
            m.incr(&format!("retry.{op}.attempts"));
            let t0 = clock.now();
            let cause = match attempt_fn(attempts) {
                Ok(value) => {
                    let took = clock.now().since(t0);
                    match self.attempt_timeout {
                        Some(limit) if took > limit => {
                            m.incr(&format!("retry.{op}.stage_timeout"));
                            injector.note(format!(
                                "- {} {op} [{stage}] attempt {attempts} hit stage timeout {limit} (op needed {took})",
                                clock.now()
                            ));
                            RetryCause::StageTimeout { limit, took }
                        }
                        _ => {
                            if attempts > 1 {
                                m.incr(&format!("retry.{op}.recovered"));
                                m.observe(
                                    &format!("retry.{op}.recovery_ns"),
                                    clock.now().since(start).as_nanos(),
                                );
                                injector.note(format!(
                                    "- {} {op} [{stage}] recovered on attempt {attempts}",
                                    clock.now()
                                ));
                            }
                            return Ok(RetryOk {
                                value,
                                done: clock.now(),
                                attempts,
                            });
                        }
                    }
                }
                Err(e) => {
                    if !transient(&e) {
                        m.incr(&format!("retry.{op}.fatal"));
                        return Err(RetryErr {
                            cause: RetryCause::Op(e),
                            at: clock.now(),
                            attempts,
                            gave_up: false,
                        });
                    }
                    RetryCause::Op(e)
                }
            };
            if attempts >= self.max_attempts {
                m.incr(&format!("retry.{op}.giveup"));
                injector.note(format!(
                    "- {} {op} [{stage}] gave up after {attempts} attempts: {cause}",
                    clock.now()
                ));
                return Err(RetryErr {
                    cause,
                    at: clock.now(),
                    attempts,
                    gave_up: true,
                });
            }
            let pause = injector.with_rng(|rng| self.backoff(attempts, rng));
            if clock.now() + pause > hard_deadline {
                m.incr(&format!("retry.{op}.giveup"));
                injector.note(format!(
                    "- {} {op} [{stage}] gave up: deadline {} exhausted after {attempts} attempts: {cause}",
                    clock.now(),
                    self.deadline
                ));
                return Err(RetryErr {
                    cause,
                    at: clock.now(),
                    attempts,
                    gave_up: true,
                });
            }
            clock.advance(pause);
            m.incr(&format!("retry.{op}.backoff"));
        }
    }
}

/// Successful retry-loop result.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryOk<T> {
    pub value: T,
    /// Completion instant of the successful attempt.
    pub done: SimTime,
    /// Attempts used, including the successful one.
    pub attempts: u32,
}

/// Why an individual attempt failed.
#[derive(Debug, Clone, PartialEq)]
pub enum RetryCause<E> {
    /// The operation itself returned an error.
    Op(E),
    /// The attempt overran the policy's per-stage timeout.
    StageTimeout { limit: SimSpan, took: SimSpan },
}

impl<E: fmt::Display> fmt::Display for RetryCause<E> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RetryCause::Op(e) => e.fmt(f),
            RetryCause::StageTimeout { limit, took } => {
                write!(f, "stage timeout after {limit} (needed {took})")
            }
        }
    }
}

/// Failed retry-loop result: either retries were exhausted (`gave_up`) or
/// the last error was fatal and never retried.
#[derive(Debug, Clone, PartialEq)]
pub struct RetryErr<E> {
    pub cause: RetryCause<E>,
    /// Logical time at which the loop stopped.
    pub at: SimTime,
    pub attempts: u32,
    /// True when the policy exhausted attempts or its deadline; false when
    /// the error was non-transient.
    pub gave_up: bool,
}

impl<E: fmt::Display> fmt::Display for RetryErr<E> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.gave_up {
            write!(
                f,
                "gave up after {} attempts: {}",
                self.attempts, self.cause
            )
        } else {
            write!(f, "fatal on attempt {}: {}", self.attempts, self.cause)
        }
    }
}

impl<E: fmt::Display + fmt::Debug> std::error::Error for RetryErr<E> {}

#[cfg(test)]
mod tests {
    use super::*;

    fn outage(kind: FaultKind, from_s: u64, until_s: u64) -> FaultRule {
        FaultRule::sticky(
            kind,
            SimTime::ZERO + SimSpan::secs(from_s),
            SimTime::ZERO + SimSpan::secs(until_s),
        )
    }

    #[test]
    fn disabled_injector_never_fires() {
        let inj = FaultInjector::disabled();
        for s in 0..100 {
            assert!(inj
                .roll(FaultKind::RegistryUnavailable, SimTime(s * 1_000_000_000))
                .is_none());
        }
        assert!(inj.trace().is_empty());
    }

    #[test]
    fn sticky_rule_fires_only_inside_window() {
        let inj = FaultInjector::new(7, vec![outage(FaultKind::DiskFull, 10, 20)]);
        assert!(inj
            .roll(FaultKind::DiskFull, SimTime::ZERO + SimSpan::secs(9))
            .is_none());
        assert!(inj
            .roll(FaultKind::DiskFull, SimTime::ZERO + SimSpan::secs(10))
            .is_some());
        assert!(inj
            .roll(FaultKind::DiskFull, SimTime::ZERO + SimSpan::secs(19))
            .is_some());
        assert!(inj
            .roll(FaultKind::DiskFull, SimTime::ZERO + SimSpan::secs(20))
            .is_none());
        // A different kind in the same window is unaffected.
        assert!(inj
            .roll(FaultKind::PeerChurn, SimTime::ZERO + SimSpan::secs(15))
            .is_none());
    }

    #[test]
    fn same_seed_same_schedule() {
        let rules = vec![FaultRule::background(FaultKind::RegistryUnavailable, 0.3)];
        let a = FaultInjector::new(99, rules.clone());
        let b = FaultInjector::new(99, rules);
        let fires_a: Vec<bool> = (0..500)
            .map(|i| a.roll(FaultKind::RegistryUnavailable, SimTime(i)).is_some())
            .collect();
        let fires_b: Vec<bool> = (0..500)
            .map(|i| b.roll(FaultKind::RegistryUnavailable, SimTime(i)).is_some())
            .collect();
        assert_eq!(fires_a, fires_b);
        assert_eq!(a.trace(), b.trace());
        assert_eq!(a.trace_digest(), b.trace_digest());
        assert!(fires_a.iter().any(|f| *f) && fires_a.iter().any(|f| !*f));
    }

    #[test]
    fn injection_counts_land_in_metrics() {
        let inj = FaultInjector::new(1, vec![outage(FaultKind::CriFlap, 0, 1)]);
        inj.roll(FaultKind::CriFlap, SimTime::ZERO);
        inj.roll(FaultKind::CriFlap, SimTime::ZERO);
        assert_eq!(inj.metrics().get("faults.injected.cri_flap"), 2);
    }

    #[test]
    fn backoff_grows_and_caps() {
        let policy = RetryPolicy {
            jitter: 0.0,
            ..RetryPolicy::default()
        };
        let mut rng = DetRng::seeded(0);
        let b1 = policy.backoff(1, &mut rng);
        let b2 = policy.backoff(2, &mut rng);
        let b3 = policy.backoff(3, &mut rng);
        assert_eq!(b1, SimSpan::millis(100));
        assert_eq!(b2, SimSpan::millis(200));
        assert_eq!(b3, SimSpan::millis(400));
        // Far beyond the cap.
        assert_eq!(policy.backoff(30, &mut rng), policy.max_backoff);
    }

    #[test]
    fn backoff_saturates_at_huge_failure_counts() {
        let policy = RetryPolicy {
            jitter: 0.0,
            ..RetryPolicy::default()
        };
        let mut rng = DetRng::seeded(0);
        // failures == 0 behaves like the first retry (exponent clamps at 0).
        assert_eq!(policy.backoff(0, &mut rng), policy.base_backoff);
        // Every count past the cap crossover pins to max_backoff — in
        // particular the ones whose raw `as i32` cast used to wrap negative
        // (2^31..) or whose exponent overflows f64 to +inf (~1100 for 2.0).
        for failures in [
            64,
            1_100,
            i32::MAX as u32,
            i32::MAX as u32 + 1,
            u32::MAX - 1,
            u32::MAX,
        ] {
            assert_eq!(
                policy.backoff(failures, &mut rng),
                policy.max_backoff,
                "failures={failures}"
            );
        }
        // With jitter on, huge counts stay within the band around the cap
        // instead of collapsing to zero.
        let jittered = RetryPolicy::default();
        for failures in [i32::MAX as u32 + 7, u32::MAX] {
            let b = jittered.backoff(failures, &mut rng);
            assert!(
                b >= jittered.max_backoff.scale(0.9) && b <= jittered.max_backoff.scale(1.1),
                "failures={failures}: {b}"
            );
        }
    }

    #[test]
    fn jitter_stays_within_band() {
        let policy = RetryPolicy::default();
        let mut rng = DetRng::seeded(3);
        for failures in 1..6 {
            let nominal = policy
                .base_backoff
                .scale(policy.multiplier.powi(failures as i32 - 1))
                .min(policy.max_backoff);
            let b = policy.backoff(failures, &mut rng);
            assert!(
                b >= nominal.scale(0.9) && b <= nominal.scale(1.1),
                "{b} vs {nominal}"
            );
        }
    }

    #[test]
    fn run_timed_recovers_after_transient_failures() {
        let inj = FaultInjector::new(5, Vec::new());
        let policy = RetryPolicy::default();
        let out = policy
            .run_timed(
                &inj,
                "pull",
                Stage::Pull,
                SimTime::ZERO,
                |_e: &String| true,
                |attempt, arrival| {
                    if attempt < 3 {
                        Err("503".to_string())
                    } else {
                        Ok((42u32, arrival + SimSpan::millis(10)))
                    }
                },
            )
            .unwrap();
        assert_eq!(out.value, 42);
        assert_eq!(out.attempts, 3);
        // Completion includes two backoffs (~100ms + ~200ms) plus the op.
        assert!(
            out.done > SimTime::ZERO + SimSpan::millis(250),
            "{}",
            out.done
        );
        assert_eq!(inj.metrics().get("retry.pull.attempts"), 3);
        assert_eq!(inj.metrics().get("retry.pull.recovered"), 1);
        assert_eq!(inj.metrics().get("retry.pull.giveup"), 0);
    }

    #[test]
    fn run_timed_gives_up_after_max_attempts() {
        let inj = FaultInjector::new(5, Vec::new());
        let policy = RetryPolicy::default();
        let err = policy
            .run_timed(
                &inj,
                "pull",
                Stage::Pull,
                SimTime::ZERO,
                |_e: &String| true,
                |_, _| Err::<((), SimTime), String>("503".to_string()),
            )
            .unwrap_err();
        assert!(err.gave_up);
        assert_eq!(err.attempts, 5);
        assert_eq!(inj.metrics().get("retry.pull.giveup"), 1);
        assert_eq!(inj.metrics().get("retry.pull.attempts"), 5);
    }

    #[test]
    fn run_timed_respects_deadline() {
        let inj = FaultInjector::new(5, Vec::new());
        let policy = RetryPolicy {
            max_attempts: 100,
            deadline: SimSpan::millis(350),
            jitter: 0.0,
            ..RetryPolicy::default()
        };
        let err = policy
            .run_timed(
                &inj,
                "pull",
                Stage::Pull,
                SimTime::ZERO,
                |_e: &String| true,
                |_, _| Err::<((), SimTime), String>("503".to_string()),
            )
            .unwrap_err();
        assert!(err.gave_up);
        // 100ms + 200ms fit in 350ms; the third backoff (400ms) does not.
        assert_eq!(err.attempts, 3);
        assert!(err.at <= SimTime::ZERO + SimSpan::millis(350));
    }

    #[test]
    fn run_timed_fatal_errors_skip_retry() {
        let inj = FaultInjector::new(5, Vec::new());
        let err = RetryPolicy::default()
            .run_timed(
                &inj,
                "pull",
                Stage::Pull,
                SimTime::ZERO,
                |e: &String| e != "not found",
                |_, _| Err::<((), SimTime), String>("not found".to_string()),
            )
            .unwrap_err();
        assert!(!err.gave_up);
        assert_eq!(err.attempts, 1);
        assert_eq!(inj.metrics().get("retry.pull.fatal"), 1);
    }

    #[test]
    fn run_timed_stage_timeout_abandons_slow_attempts() {
        let inj = FaultInjector::new(5, Vec::new());
        let policy = RetryPolicy::default().with_attempt_timeout(SimSpan::millis(50));
        let out = policy
            .run_timed(
                &inj,
                "read",
                Stage::Storage,
                SimTime::ZERO,
                |_e: &String| true,
                |attempt, arrival| {
                    // First attempt is browned out (10× the timeout); the
                    // retry is healthy.
                    let cost = if attempt == 1 {
                        SimSpan::millis(500)
                    } else {
                        SimSpan::millis(5)
                    };
                    Ok((attempt, arrival + cost))
                },
            )
            .unwrap();
        assert_eq!(out.value, 2);
        // Charged the 50ms timeout, not the 500ms brownout.
        assert!(
            out.done < SimTime::ZERO + SimSpan::millis(200),
            "{}",
            out.done
        );
        assert_eq!(inj.metrics().get("retry.read.stage_timeout"), 1);
    }

    #[test]
    fn run_clocked_charges_backoff_to_the_clock() {
        let inj = FaultInjector::new(5, Vec::new());
        let clock = SimClock::new();
        let policy = RetryPolicy {
            jitter: 0.0,
            ..RetryPolicy::default()
        };
        let out = policy
            .run_clocked(
                &inj,
                "start",
                Stage::Pod,
                &clock,
                |_e: &String| true,
                |attempt| {
                    clock.advance(SimSpan::millis(1));
                    if attempt < 2 {
                        Err("flap".to_string())
                    } else {
                        Ok(attempt)
                    }
                },
            )
            .unwrap();
        assert_eq!(out.value, 2);
        // 1ms + 100ms backoff + 1ms.
        assert_eq!(clock.now(), SimTime::ZERO + SimSpan::millis(102));
    }

    #[test]
    fn retry_trace_lines_carry_the_stage_tag() {
        let inj = FaultInjector::new(5, Vec::new());
        let _ = RetryPolicy::default().run_timed(
            &inj,
            "engine.pull",
            Stage::Pull,
            SimTime::ZERO,
            |_e: &String| true,
            |_, _| Err::<((), SimTime), String>("503".to_string()),
        );
        let trace = inj.trace();
        assert!(
            trace
                .iter()
                .any(|l| l.contains("engine.pull [pull] gave up")),
            "{trace:?}"
        );
    }

    #[test]
    fn retry_trace_is_deterministic() {
        let run = || {
            let inj = FaultInjector::new(21, vec![FaultRule::background(FaultKind::CriFlap, 0.5)]);
            let policy = RetryPolicy::default();
            let clock = SimClock::new();
            for _ in 0..20 {
                let _ = policy.run_clocked(
                    &inj,
                    "start",
                    Stage::Pod,
                    &clock,
                    |_e: &String| true,
                    |a| {
                        clock.advance(SimSpan::millis(3));
                        match inj.roll(FaultKind::CriFlap, clock.now()) {
                            Some(f) => Err(format!("flap #{}", f.seq)),
                            None if a > 0 => Ok(()),
                            None => Ok(()),
                        }
                    },
                );
            }
            (inj.trace(), inj.metrics().render(), inj.trace_digest())
        };
        let (t1, m1, d1) = run();
        let (t2, m2, d2) = run();
        assert_eq!(t1, t2);
        assert_eq!(m1, m2);
        assert_eq!(d1, d2);
        assert!(!t1.is_empty());
    }
}

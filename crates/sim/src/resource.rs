//! Contention models: token buckets and queueing servers.
//!
//! These express the two bottlenecks the survey keeps returning to:
//! rate-limited services (DockerHub pull limits, metadata-server IOPS) and
//! serial service points where concurrent clients queue (a cluster
//! filesystem's metadata server under a many-small-files load).
//!
//! Both operate purely on logical time: callers present an arrival time and
//! get back the time at which service completes.

use crate::time::{SimSpan, SimTime};
use parking_lot::Mutex;

/// A token bucket refilling at `rate_per_sec`, holding at most `burst`
/// tokens. Used to model request-rate limits.
#[derive(Debug)]
pub struct TokenBucket {
    inner: Mutex<BucketState>,
    rate_per_sec: f64,
    burst: f64,
}

#[derive(Debug)]
struct BucketState {
    tokens: f64,
    last: SimTime,
}

/// Outcome of asking a [`TokenBucket`] for a token.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Admission {
    /// Token granted immediately.
    Granted,
    /// Caller must wait this long for a token (the token is reserved).
    Delayed(SimSpan),
}

impl TokenBucket {
    pub fn new(rate_per_sec: f64, burst: u64) -> TokenBucket {
        assert!(rate_per_sec > 0.0);
        assert!(burst > 0);
        TokenBucket {
            inner: Mutex::new(BucketState {
                tokens: burst as f64,
                last: SimTime::ZERO,
            }),
            rate_per_sec,
            burst: burst as f64,
        }
    }

    /// Request one token at logical time `now`. Either granted immediately
    /// or the caller learns how long it must wait (the bucket reserves the
    /// token, going temporarily negative, so queued callers are serialized
    /// fairly in arrival order).
    pub fn acquire(&self, now: SimTime) -> Admission {
        let mut st = self.inner.lock();
        // Refill for elapsed time.
        let dt = now.since(st.last).as_secs_f64();
        st.tokens = (st.tokens + dt * self.rate_per_sec).min(self.burst);
        st.last = now;
        st.tokens -= 1.0;
        if st.tokens >= 0.0 {
            Admission::Granted
        } else {
            let wait = -st.tokens / self.rate_per_sec;
            Admission::Delayed(SimSpan::from_secs_f64(wait))
        }
    }

    /// Convenience: the absolute time at which a request arriving at `now`
    /// is admitted.
    pub fn admit_at(&self, now: SimTime) -> SimTime {
        match self.acquire(now) {
            Admission::Granted => now,
            Admission::Delayed(wait) => now + wait,
        }
    }
}

/// A FIFO queueing server with `servers` parallel service slots.
///
/// `submit(arrival, service)` returns `(start, finish)`: the request begins
/// service at the earliest of the `servers` next-free times (but not before
/// `arrival`) and completes `service` later. This is an event-free G/G/c
/// queue sufficient for modelling metadata servers and registry frontends.
#[derive(Debug)]
pub struct QueueServer {
    free_at: Mutex<Vec<SimTime>>,
}

impl QueueServer {
    pub fn new(servers: usize) -> QueueServer {
        assert!(servers > 0);
        QueueServer {
            free_at: Mutex::new(vec![SimTime::ZERO; servers]),
        }
    }

    /// Enqueue a request. Returns (service start, service finish).
    pub fn submit(&self, arrival: SimTime, service: SimSpan) -> (SimTime, SimTime) {
        let mut free = self.free_at.lock();
        // Pick the slot that frees earliest.
        let (idx, _) = free
            .iter()
            .enumerate()
            .min_by_key(|(_, t)| **t)
            .expect("at least one server");
        let start = free[idx].max(arrival);
        let finish = start + service;
        free[idx] = finish;
        (start, finish)
    }

    /// Earliest time any server becomes free (for reporting).
    pub fn earliest_free(&self) -> SimTime {
        *self.free_at.lock().iter().min().expect("non-empty")
    }

    /// Reset all servers to idle at t=0 (between benchmark iterations).
    pub fn reset(&self) {
        for t in self.free_at.lock().iter_mut() {
            *t = SimTime::ZERO;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_grants_within_burst() {
        let b = TokenBucket::new(10.0, 5);
        for _ in 0..5 {
            assert_eq!(b.acquire(SimTime::ZERO), Admission::Granted);
        }
        // Sixth request at t=0 must wait 1/rate.
        match b.acquire(SimTime::ZERO) {
            Admission::Delayed(w) => assert_eq!(w, SimSpan::millis(100)),
            other => panic!("expected delay, got {other:?}"),
        }
    }

    #[test]
    fn bucket_refills_over_time() {
        let b = TokenBucket::new(10.0, 1);
        assert_eq!(b.acquire(SimTime::ZERO), Admission::Granted);
        // After 100ms one token has refilled.
        let t = SimTime::ZERO + SimSpan::millis(100);
        assert_eq!(b.acquire(t), Admission::Granted);
    }

    #[test]
    fn bucket_serializes_queued_callers() {
        let b = TokenBucket::new(1.0, 1);
        assert_eq!(b.admit_at(SimTime::ZERO), SimTime::ZERO);
        let second = b.admit_at(SimTime::ZERO);
        let third = b.admit_at(SimTime::ZERO);
        assert_eq!(second, SimTime::ZERO + SimSpan::secs(1));
        assert_eq!(third, SimTime::ZERO + SimSpan::secs(2));
    }

    #[test]
    fn bucket_never_exceeds_burst() {
        let b = TokenBucket::new(1000.0, 2);
        // Long idle period...
        let t = SimTime::ZERO + SimSpan::secs(100);
        assert_eq!(b.acquire(t), Admission::Granted);
        assert_eq!(b.acquire(t), Admission::Granted);
        // ...still only `burst` immediate grants.
        assert!(matches!(b.acquire(t), Admission::Delayed(_)));
    }

    #[test]
    fn single_server_fifo() {
        let q = QueueServer::new(1);
        let (s1, f1) = q.submit(SimTime::ZERO, SimSpan::millis(10));
        let (s2, f2) = q.submit(SimTime::ZERO, SimSpan::millis(10));
        assert_eq!(s1, SimTime::ZERO);
        assert_eq!(f1, SimTime::ZERO + SimSpan::millis(10));
        assert_eq!(s2, f1, "second request queues behind the first");
        assert_eq!(f2, SimTime::ZERO + SimSpan::millis(20));
    }

    #[test]
    fn idle_server_starts_at_arrival() {
        let q = QueueServer::new(1);
        let arrival = SimTime::ZERO + SimSpan::secs(5);
        let (s, f) = q.submit(arrival, SimSpan::millis(1));
        assert_eq!(s, arrival);
        assert_eq!(f, arrival + SimSpan::millis(1));
    }

    #[test]
    fn multiple_servers_run_in_parallel() {
        let q = QueueServer::new(4);
        let finishes: Vec<SimTime> = (0..4)
            .map(|_| q.submit(SimTime::ZERO, SimSpan::millis(10)).1)
            .collect();
        assert!(finishes
            .iter()
            .all(|f| *f == SimTime::ZERO + SimSpan::millis(10)));
        // Fifth queues.
        let (_, f5) = q.submit(SimTime::ZERO, SimSpan::millis(10));
        assert_eq!(f5, SimTime::ZERO + SimSpan::millis(20));
    }

    #[test]
    fn reset_clears_backlog() {
        let q = QueueServer::new(1);
        q.submit(SimTime::ZERO, SimSpan::secs(100));
        q.reset();
        let (s, _) = q.submit(SimTime::ZERO, SimSpan::millis(1));
        assert_eq!(s, SimTime::ZERO);
    }
}

//! Shared (parallel cluster) filesystem model.
//!
//! §3.2: "A container image contains many small files which may be loaded
//! from shared storage from many compute nodes and that put strain on the
//! cluster filesystem, slowing down startup time or even execution."
//! §4.1.4: "HPC cluster filesystems ... are known for not scaling well in
//! cases of random access with many small files."
//!
//! The model is a Lustre-like split: a metadata service (bounded ops/s,
//! shared by every client — the choke point for small-file workloads) and
//! data servers (bandwidth-bound, reasonably parallel). Operations take an
//! arrival time and return a completion time, so many simulated nodes can
//! hammer the filesystem concurrently and observe queueing.

use hpcc_sim::resource::QueueServer;
use hpcc_sim::sym;
use hpcc_sim::{Bytes, FaultInjector, FaultKind, SimSpan, SimTime, Stage, Tracer};
use hpcc_vfs::fs::{FsError, MemFs};
use hpcc_vfs::path::VPath;
use parking_lot::RwLock;
use std::sync::Arc;

/// Tuning of the shared filesystem.
#[derive(Debug, Clone, Copy)]
pub struct SharedFsConfig {
    /// Service time of one metadata operation (lookup/open/stat).
    pub mds_service: SimSpan,
    /// Parallel metadata service threads.
    pub mds_servers: usize,
    /// Aggregate data servers.
    pub ost_servers: usize,
    /// Per-OST bandwidth, bytes/second.
    pub ost_bandwidth: f64,
    /// Client-observed network round trip to the filesystem.
    pub client_latency: SimSpan,
    /// Metadata service-time multiplier while a
    /// [`FaultKind::MdsBrownout`] fault is active.
    pub brownout_factor: f64,
}

impl Default for SharedFsConfig {
    fn default() -> Self {
        SharedFsConfig {
            mds_service: SimSpan::micros(120),
            mds_servers: 4,
            ost_servers: 8,
            ost_bandwidth: 2.0 * (1u64 << 30) as f64,
            client_latency: SimSpan::micros(30),
            brownout_factor: 40.0,
        }
    }
}

/// The shared filesystem: a tree plus contention models.
pub struct SharedFs {
    fs: RwLock<MemFs>,
    mds: QueueServer,
    ost: QueueServer,
    cfg: SharedFsConfig,
    faults: RwLock<Arc<FaultInjector>>,
    tracer: RwLock<Arc<Tracer>>,
}

impl SharedFs {
    pub fn new(cfg: SharedFsConfig) -> SharedFs {
        SharedFs {
            fs: RwLock::new(MemFs::new()),
            mds: QueueServer::new(cfg.mds_servers),
            ost: QueueServer::new(cfg.ost_servers),
            cfg,
            faults: RwLock::new(FaultInjector::disabled()),
            tracer: RwLock::new(Tracer::disabled()),
        }
    }

    /// Install a fault schedule; metadata ops consult it from now on.
    pub fn set_fault_injector(&self, injector: Arc<FaultInjector>) {
        *self.faults.write() = injector;
    }

    /// Attach a tracer: metadata ops feed `storage.mds.*` metrics and bulk
    /// transfers become `storage.read_bulk` spans.
    pub fn set_tracer(&self, tracer: Arc<Tracer>) {
        *self.tracer.write() = tracer;
    }

    pub fn with_defaults() -> SharedFs {
        SharedFs::new(SharedFsConfig::default())
    }

    pub fn config(&self) -> SharedFsConfig {
        self.cfg
    }

    /// Populate without cost accounting (experiment setup).
    pub fn populate(
        &self,
        f: impl FnOnce(&mut MemFs) -> Result<(), FsError>,
    ) -> Result<(), FsError> {
        f(&mut self.fs.write())
    }

    /// Read-only snapshot view (setup/verification).
    pub fn with_tree<R>(&self, f: impl FnOnce(&MemFs) -> R) -> R {
        f(&self.fs.read())
    }

    /// One metadata operation (stat/open/lookup) arriving at `arrival`.
    /// Returns its completion time.
    pub fn metadata_op(&self, arrival: SimTime) -> SimTime {
        // A browned-out metadata service still answers, just very slowly —
        // that is what distinguishes a brownout from an outage. Callers
        // with per-stage timeouts see these ops overrun and degrade.
        let service = if self
            .faults
            .read()
            .roll(FaultKind::MdsBrownout, arrival)
            .is_some()
        {
            self.cfg.mds_service.scale(self.cfg.brownout_factor)
        } else {
            self.cfg.mds_service
        };
        let (_, done) = self.mds.submit(arrival, service);
        let done = done + self.cfg.client_latency;
        let tracer = self.tracer.read();
        if tracer.is_enabled() {
            let m = tracer.metrics();
            m.incr("storage.mds.ops");
            m.observe("storage.mds.wait_ns", done.since(arrival).0);
        }
        done
    }

    /// Open+read a whole file. A small-file read costs one metadata op
    /// plus a data transfer; this is where the many-small-files pain
    /// comes from.
    pub fn read_file(
        &self,
        path: &VPath,
        arrival: SimTime,
    ) -> Result<(Arc<Vec<u8>>, SimTime), FsError> {
        let data = self.fs.read().read(path)?;
        let after_meta = self.metadata_op(arrival);
        let xfer = SimSpan::from_secs_f64(data.len() as f64 / self.cfg.ost_bandwidth);
        let (_, done) = self.ost.submit(after_meta, xfer);
        Ok((data, done + self.cfg.client_latency))
    }

    /// Stream a large object (e.g. a squash image) of `size` bytes
    /// starting at `arrival`: one metadata op, then a bandwidth-bound
    /// transfer.
    pub fn read_bulk(&self, size: Bytes, arrival: SimTime) -> SimTime {
        let after_meta = self.metadata_op(arrival);
        let xfer = SimSpan::from_secs_f64(size.as_u64() as f64 / self.cfg.ost_bandwidth);
        let (_, done) = self.ost.submit(after_meta, xfer);
        let done = done + self.cfg.client_latency;
        self.tracer.read().record(
            sym!("storage.read_bulk"),
            Stage::Storage,
            arrival,
            done,
            &[("bytes", size.as_u64().to_string())],
        );
        done
    }

    /// Write a file, charging metadata + data costs.
    pub fn write_file(
        &self,
        path: &VPath,
        data: Vec<u8>,
        arrival: SimTime,
    ) -> Result<SimTime, FsError> {
        let size = data.len();
        self.fs.write().write_p(path, data)?;
        let after_meta = self.metadata_op(arrival);
        let xfer = SimSpan::from_secs_f64(size as f64 / self.cfg.ost_bandwidth);
        let (_, done) = self.ost.submit(after_meta, xfer);
        Ok(done + self.cfg.client_latency)
    }

    /// Reset contention state (between benchmark iterations). The tree is
    /// kept.
    pub fn reset_contention(&self) {
        self.mds.reset();
        self.ost.reset();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(s: &str) -> VPath {
        VPath::parse(s)
    }

    fn small_file_fs(n: usize) -> SharedFs {
        let fs = SharedFs::with_defaults();
        fs.populate(|t| {
            for i in 0..n {
                t.write_p(
                    &p(&format!("/img/pkg{}/m{}.py", i % 10, i)),
                    vec![7u8; 2048],
                )?;
            }
            Ok(())
        })
        .unwrap();
        fs
    }

    #[test]
    fn read_returns_data_and_time() {
        let fs = small_file_fs(4);
        let (data, done) = fs.read_file(&p("/img/pkg0/m0.py"), SimTime::ZERO).unwrap();
        assert_eq!(data.len(), 2048);
        assert!(done > SimTime::ZERO);
    }

    #[test]
    fn metadata_server_queues_under_load() {
        let fs = small_file_fs(1);
        // 1000 concurrent metadata ops from many nodes at t=0.
        let mut last = SimTime::ZERO;
        for _ in 0..1000 {
            last = last.max(fs.metadata_op(SimTime::ZERO));
        }
        // 4 servers x 120us service: 1000 ops ≈ 30ms, far above a single
        // op's latency.
        let single = SharedFs::with_defaults().metadata_op(SimTime::ZERO);
        assert!(
            last.since(SimTime::ZERO).as_secs_f64()
                > 50.0 * single.since(SimTime::ZERO).as_secs_f64(),
            "contention must dominate: last={last:?} single={single:?}"
        );
    }

    #[test]
    fn bulk_read_scales_with_size_not_file_count() {
        let fs = SharedFs::with_defaults();
        let t_small = fs.read_bulk(Bytes::mib(1), SimTime::ZERO);
        fs.reset_contention();
        let t_big = fs.read_bulk(Bytes::mib(64), SimTime::ZERO);
        let ratio =
            t_big.since(SimTime::ZERO).as_secs_f64() / t_small.since(SimTime::ZERO).as_secs_f64();
        assert!(ratio > 20.0, "64x data should be ≫ latency-bound: {ratio}");
    }

    #[test]
    fn one_bulk_read_beats_many_small_reads_of_same_volume() {
        // The §3.2 argument in miniature: same bytes, one object vs 1000
        // files, one client.
        let n = 1000;
        let fs = small_file_fs(n);
        let mut done_small = SimTime::ZERO;
        let mut t = SimTime::ZERO;
        for i in 0..n {
            let (_, d) = fs
                .read_file(&p(&format!("/img/pkg{}/m{}.py", i % 10, i)), t)
                .unwrap();
            t = d; // sequential client
            done_small = d;
        }
        fs.reset_contention();
        let done_bulk = fs.read_bulk(Bytes::new(2048 * n as u64), SimTime::ZERO);
        let speedup = done_small.since(SimTime::ZERO).as_secs_f64()
            / done_bulk.since(SimTime::ZERO).as_secs_f64();
        assert!(
            speedup > 10.0,
            "single-file image must win big: speedup {speedup:.1}"
        );
    }

    #[test]
    fn write_then_read_roundtrip() {
        let fs = SharedFs::with_defaults();
        let done = fs
            .write_file(&p("/out/res.dat"), vec![1, 2, 3], SimTime::ZERO)
            .unwrap();
        assert!(done > SimTime::ZERO);
        let (data, _) = fs.read_file(&p("/out/res.dat"), done).unwrap();
        assert_eq!(&**data, &[1, 2, 3]);
    }

    #[test]
    fn missing_file_is_fs_error() {
        let fs = SharedFs::with_defaults();
        assert!(fs.read_file(&p("/nope"), SimTime::ZERO).is_err());
    }

    #[test]
    fn brownout_slows_metadata_inside_window_only() {
        use hpcc_sim::{FaultInjector, FaultKind, FaultRule};
        let fs = SharedFs::with_defaults();
        let cfg = fs.config();
        let w0 = SimTime::ZERO + SimSpan::secs(10);
        let w1 = SimTime::ZERO + SimSpan::secs(20);
        fs.set_fault_injector(Arc::new(FaultInjector::new(
            1,
            vec![FaultRule::sticky(FaultKind::MdsBrownout, w0, w1)],
        )));
        let healthy = fs.metadata_op(SimTime::ZERO).since(SimTime::ZERO);
        fs.reset_contention();
        let browned = fs.metadata_op(w0).since(w0);
        fs.reset_contention();
        let after = fs.metadata_op(w1).since(w1);
        assert_eq!(healthy, cfg.mds_service + cfg.client_latency);
        assert_eq!(
            browned,
            cfg.mds_service.scale(cfg.brownout_factor) + cfg.client_latency
        );
        assert_eq!(after, healthy);
    }

    #[test]
    fn reset_clears_backlog() {
        let fs = small_file_fs(1);
        for _ in 0..100 {
            fs.metadata_op(SimTime::ZERO);
        }
        fs.reset_contention();
        let single = fs.metadata_op(SimTime::ZERO);
        let cfg = SharedFsConfig::default();
        assert_eq!(
            single.since(SimTime::ZERO),
            cfg.mds_service + cfg.client_latency
        );
    }
}

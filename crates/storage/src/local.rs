//! Node-local storage and image staging.
//!
//! §4.1.2: "One approach that works around the limitations imposed by a
//! shared cluster filesystem is extracting an image to a temporary,
//! node-local storage location." This module provides the per-node disk
//! (fast, uncontended) and the staging operation that pulls a single-file
//! image off the shared filesystem onto N nodes.

use crate::shared_fs::SharedFs;
use hpcc_sim::sym;
use hpcc_sim::{
    Bytes, Executor, FaultInjector, FaultKind, SimSpan, SimTime, Stage, TaskFinish, TaskGraph,
    Tracer,
};
use hpcc_vfs::fs::{FsError, MemFs};
use hpcc_vfs::path::VPath;
use hpcc_vfs::squash::{SquashError, SquashImage};
use parking_lot::RwLock;
use std::cell::RefCell;
use std::collections::HashMap;
use std::sync::Arc;

/// A node's local scratch disk (NVMe-class).
pub struct NodeLocalDisk {
    fs: RwLock<MemFs>,
    /// Sequential bandwidth, bytes/sec.
    pub bandwidth: f64,
    /// Per-operation latency.
    pub op_latency: SimSpan,
    faults: RwLock<Arc<FaultInjector>>,
}

impl Default for NodeLocalDisk {
    fn default() -> Self {
        NodeLocalDisk {
            fs: RwLock::new(MemFs::new()),
            bandwidth: 3.0 * (1u64 << 30) as f64,
            op_latency: SimSpan::micros(15),
            faults: RwLock::new(FaultInjector::disabled()),
        }
    }
}

impl NodeLocalDisk {
    pub fn new() -> NodeLocalDisk {
        NodeLocalDisk::default()
    }

    /// Install a fault schedule; writes consult it from now on.
    pub fn set_fault_injector(&self, injector: Arc<FaultInjector>) {
        *self.faults.write() = injector;
    }

    /// Write bytes, returning completion relative to `arrival`. While a
    /// [`FaultKind::DiskFull`] fault is active the scratch disk rejects
    /// writes with [`FsError::NoSpace`]; reads of already-landed data keep
    /// working.
    pub fn write(&self, path: &VPath, data: Vec<u8>, arrival: SimTime) -> Result<SimTime, FsError> {
        if self
            .faults
            .read()
            .roll(FaultKind::DiskFull, arrival)
            .is_some()
        {
            return Err(FsError::NoSpace(path.clone()));
        }
        let span = SimSpan::from_secs_f64(data.len() as f64 / self.bandwidth);
        self.fs.write().write_p(path, data)?;
        Ok(arrival + self.op_latency + span)
    }

    /// Read bytes back.
    pub fn read(&self, path: &VPath, arrival: SimTime) -> Result<(Arc<Vec<u8>>, SimTime), FsError> {
        let data = self.fs.read().read(path)?;
        let span = SimSpan::from_secs_f64(data.len() as f64 / self.bandwidth);
        Ok((data, arrival + self.op_latency + span))
    }

    /// Access the underlying tree (driver construction).
    pub fn with_tree<R>(&self, f: impl FnOnce(&MemFs) -> R) -> R {
        f(&self.fs.read())
    }

    /// Mutate the underlying tree (unpacking images).
    pub fn with_tree_mut<R>(&self, f: impl FnOnce(&mut MemFs) -> R) -> R {
        f(&mut self.fs.write())
    }
}

/// Where a staged image ended up on each node.
#[derive(Debug, Clone)]
pub struct StagingReport {
    /// Completion time per node index.
    pub per_node_done: Vec<SimTime>,
    /// The slowest node (job start gate).
    pub all_done: SimTime,
    /// Bytes moved per node.
    pub bytes_per_node: Bytes,
}

/// Stage a single-file image from the shared filesystem onto every node's
/// local disk. All nodes start pulling at `arrival` and contend on the
/// shared filesystem's data servers.
pub fn stage_image_to_nodes(
    shared: &SharedFs,
    image: &SquashImage,
    nodes: &[Arc<NodeLocalDisk>],
    arrival: SimTime,
) -> Result<StagingReport, SquashError> {
    // An unbounded pool (one worker per node) reproduces the historical
    // everyone-pulls-at-once behaviour.
    let tracer = Tracer::disabled();
    stage_image_to_nodes_bounded(shared, image, nodes, arrival, nodes.len().max(1), &tracer)
}

/// [`stage_image_to_nodes`] on a bounded worker pool: at most `workers`
/// nodes pull from the shared filesystem concurrently (an admission window
/// sites use to keep staging from flattening the metadata servers). Each
/// node's fetch+write is one executor task, recorded as a `stage.node`
/// span on `tracer`.
pub fn stage_image_to_nodes_bounded(
    shared: &SharedFs,
    image: &SquashImage,
    nodes: &[Arc<NodeLocalDisk>],
    arrival: SimTime,
    workers: usize,
    tracer: &Tracer,
) -> Result<StagingReport, SquashError> {
    let size = Bytes::new(image.len_bytes());
    let done: RefCell<Vec<Option<SimTime>>> = RefCell::new(vec![None; nodes.len()]);
    let mut graph: TaskGraph<'_, SquashError> = TaskGraph::new();
    for (i, disk) in nodes.iter().enumerate() {
        let done = &done;
        graph.add(sym!("stage.node"), Stage::Storage, &[], move |at| {
            let fetched = shared.read_bulk(size, at);
            // Land the bytes on the local disk.
            let t = disk
                .write(
                    &VPath::parse("/scratch/image.sqsh"),
                    image.as_bytes().to_vec(),
                    fetched,
                )
                .map_err(SquashError::Fs)?;
            done.borrow_mut()[i] = Some(t);
            Ok(TaskFinish::at(t)
                .attr("node", i)
                .attr("bytes", size.as_u64()))
        });
    }
    Executor::new(workers)
        .run(graph, arrival, tracer)
        .map_err(|e| e.error)?;
    let per_node_done: Vec<SimTime> = done
        .into_inner()
        .into_iter()
        .map(|t| t.expect("every node staged"))
        .collect();
    let all_done = per_node_done.iter().copied().max().unwrap_or(arrival);
    Ok(StagingReport {
        per_node_done,
        all_done,
        bytes_per_node: size,
    })
}

/// Cache key: (artifact digest, Some(uid) when the cache is per-user).
type CacheKey = (String, Option<u32>);

/// A conversion cache: digest → converted artifact, with hit/miss
/// accounting and the per-user vs shared distinction of Table 2's
/// "Native Format Sharing" column.
pub struct ConversionCache {
    /// None = shared across users; Some(uid) keys include the user.
    shared_across_users: bool,
    entries: RwLock<HashMap<CacheKey, Arc<Vec<u8>>>>,
    hits: RwLock<u64>,
    misses: RwLock<u64>,
}

impl ConversionCache {
    /// A cache shared by all users (needs a trusted service or setuid
    /// management — see §4.1.4).
    pub fn shared() -> ConversionCache {
        ConversionCache {
            shared_across_users: true,
            entries: RwLock::new(HashMap::new()),
            hits: RwLock::new(0),
            misses: RwLock::new(0),
        }
    }

    /// Per-user caches (the rootless default).
    pub fn per_user() -> ConversionCache {
        ConversionCache {
            shared_across_users: false,
            entries: RwLock::new(HashMap::new()),
            hits: RwLock::new(0),
            misses: RwLock::new(0),
        }
    }

    pub fn is_shared(&self) -> bool {
        self.shared_across_users
    }

    fn full_key(&self, key: &str, uid: u32) -> CacheKey {
        let user_key = if self.shared_across_users {
            None
        } else {
            Some(uid)
        };
        (key.to_string(), user_key)
    }

    /// Look up `key` for `uid`, counting a hit or a miss exactly like
    /// [`ConversionCache::get_or_convert`]. The crash-aware convert path
    /// uses the split lookup/insert API so the artifact only becomes
    /// durable *after* the conversion work — and its crash points — have
    /// completed; an artifact must never survive a crash that interrupted
    /// the conversion producing it.
    pub fn lookup(&self, key: &str, uid: u32) -> Option<Arc<Vec<u8>>> {
        let full_key = self.full_key(key, uid);
        match self.entries.read().get(&full_key) {
            Some(hit) => {
                *self.hits.write() += 1;
                Some(Arc::clone(hit))
            }
            None => {
                *self.misses.write() += 1;
                None
            }
        }
    }

    /// Make a converted artifact durable under `key`. Counts nothing; the
    /// preceding [`ConversionCache::lookup`] already recorded the miss.
    pub fn insert(&self, key: &str, uid: u32, artifact: Arc<Vec<u8>>) {
        let full_key = self.full_key(key, uid);
        self.entries.write().insert(full_key, artifact);
    }

    /// Look up `key` for `uid`; on miss, run `convert` (paying its cost at
    /// the caller) and insert. Returns (artifact, was_hit).
    pub fn get_or_convert(
        &self,
        key: &str,
        uid: u32,
        convert: impl FnOnce() -> Vec<u8>,
    ) -> (Arc<Vec<u8>>, bool) {
        if let Some(hit) = self.lookup(key, uid) {
            return (hit, true);
        }
        let artifact = Arc::new(convert());
        self.insert(key, uid, Arc::clone(&artifact));
        (artifact, false)
    }

    pub fn hit_count(&self) -> u64 {
        *self.hits.read()
    }

    pub fn miss_count(&self) -> u64 {
        *self.misses.read()
    }

    /// Number of stored artifacts (shared caches store each once).
    pub fn stored(&self) -> usize {
        self.entries.read().len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hpcc_codec::compress::Codec;

    fn p(s: &str) -> VPath {
        VPath::parse(s)
    }

    fn sample_image() -> SquashImage {
        let mut fs = MemFs::new();
        fs.write_p(&p("/bin/app"), vec![3u8; 1 << 20]).unwrap();
        SquashImage::build(&fs, &VPath::root(), Codec::Lz).unwrap()
    }

    #[test]
    fn local_disk_roundtrip() {
        let disk = NodeLocalDisk::new();
        let done = disk
            .write(&p("/scratch/x"), vec![1, 2, 3], SimTime::ZERO)
            .unwrap();
        let (data, done2) = disk.read(&p("/scratch/x"), done).unwrap();
        assert_eq!(&**data, &[1, 2, 3]);
        assert!(done2 > done);
    }

    #[test]
    fn full_disk_rejects_writes_until_window_ends() {
        use hpcc_sim::{FaultInjector, FaultKind, FaultRule, SimSpan};
        let disk = NodeLocalDisk::new();
        let w0 = SimTime::ZERO;
        let w1 = SimTime::ZERO + SimSpan::secs(5);
        disk.set_fault_injector(Arc::new(FaultInjector::new(
            1,
            vec![FaultRule::sticky(FaultKind::DiskFull, w0, w1)],
        )));
        let err = disk.write(&p("/scratch/x"), vec![1], w0).unwrap_err();
        assert_eq!(err, FsError::NoSpace(p("/scratch/x")));
        // The window ends (scrubber freed space): writes succeed again.
        assert!(disk.write(&p("/scratch/x"), vec![1], w1).is_ok());
        let (data, _) = disk.read(&p("/scratch/x"), w1).unwrap();
        assert_eq!(&**data, &[1]);
    }

    #[test]
    fn staging_fans_out_to_all_nodes() {
        let shared = SharedFs::with_defaults();
        let img = sample_image();
        let nodes: Vec<Arc<NodeLocalDisk>> =
            (0..16).map(|_| Arc::new(NodeLocalDisk::new())).collect();
        let report = stage_image_to_nodes(&shared, &img, &nodes, SimTime::ZERO).unwrap();
        assert_eq!(report.per_node_done.len(), 16);
        assert!(report.all_done >= *report.per_node_done.iter().max().unwrap());
        for disk in &nodes {
            let (data, _) = disk.read(&p("/scratch/image.sqsh"), SimTime::ZERO).unwrap();
            assert_eq!(data.len() as u64, img.len_bytes());
        }
    }

    #[test]
    fn more_nodes_take_longer_due_to_contention() {
        let img = sample_image();
        let shared_a = SharedFs::with_defaults();
        let few: Vec<Arc<NodeLocalDisk>> = (0..2).map(|_| Arc::new(NodeLocalDisk::new())).collect();
        let t_few = stage_image_to_nodes(&shared_a, &img, &few, SimTime::ZERO)
            .unwrap()
            .all_done;
        let shared_b = SharedFs::with_defaults();
        let many: Vec<Arc<NodeLocalDisk>> =
            (0..64).map(|_| Arc::new(NodeLocalDisk::new())).collect();
        let t_many = stage_image_to_nodes(&shared_b, &img, &many, SimTime::ZERO)
            .unwrap()
            .all_done;
        assert!(t_many > t_few);
    }

    #[test]
    fn shared_cache_converts_once_for_all_users() {
        let cache = ConversionCache::shared();
        let mut conversions = 0;
        for uid in [1000, 2000, 3000] {
            let (_, hit) = cache.get_or_convert("sha256:abc", uid, || {
                conversions += 1;
                vec![1]
            });
            assert_eq!(hit, uid != 1000);
        }
        assert_eq!(conversions, 1);
        assert_eq!(cache.stored(), 1);
        assert_eq!(cache.hit_count(), 2);
        assert_eq!(cache.miss_count(), 1);
    }

    #[test]
    fn per_user_cache_converts_per_user() {
        let cache = ConversionCache::per_user();
        let mut conversions = 0;
        for uid in [1000, 2000] {
            for _ in 0..2 {
                cache.get_or_convert("sha256:abc", uid, || {
                    conversions += 1;
                    vec![1]
                });
            }
        }
        assert_eq!(conversions, 2, "one conversion per user");
        assert_eq!(cache.stored(), 2);
        assert_eq!(cache.hit_count(), 2);
        assert!(!cache.is_shared());
    }

    #[test]
    fn different_digests_do_not_collide() {
        let cache = ConversionCache::shared();
        cache.get_or_convert("a", 0, || vec![1]);
        let (v, hit) = cache.get_or_convert("b", 0, || vec![2]);
        assert!(!hit);
        assert_eq!(*v, vec![2]);
    }
}

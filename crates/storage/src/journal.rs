//! Write-ahead intent journal over the content-addressed blob store.
//!
//! Crash-consistency layer for the pull→convert→cache pipeline. Every
//! multi-step mutation of the store runs as an *intent*:
//!
//! 1. `begin` appends a [`JournalRecord::Begin`] naming the operation;
//! 2. each durable effect is *staged* — a [`JournalRecord::Stage`] is
//!    appended **before** the blob lands in the store (record before
//!    effect, the WAL invariant), and the insert's refcount pin is held
//!    by the intent;
//! 3. `commit` appends [`JournalRecord::Commit`] and only then drops the
//!    staged pins — committed blobs stay resident as unpinned cache.
//!
//! An intent that never commits (its owner crashed or erred) is rolled
//! back: by `abort` at runtime, or by the fsck-style
//! [`recover`](Recoverable::recover) pass after a crash, which
//!
//! * rolls forward committed intents (verifies their staged blobs),
//! * garbage-collects staged blobs of open intents — unless a committed
//!   intent also references the digest (content-addressed sharing),
//! * rebuilds refcounts from a clean slate (pins died with their owners),
//! * appends the missing `Abort` records so a second pass is a no-op.
//!
//! Recovery itself passes crash points, and the GC-before-abort-record
//! ordering makes a crash *during* recovery survivable: the next pass
//! still sees the intent as open and simply redoes the (idempotent) GC.
//!
//! Every journal write site is registered in [`JOURNAL_SITES`] and fires
//! a `<site>.pre` crash point immediately before and a `<site>.post`
//! point immediately after the append; an append through an unregistered
//! site trips a debug assertion (the `crash-matrix` CI stage runs the
//! debug profile precisely to catch new write sites that forgot to
//! register).

use crate::blobstore::BlobStore;
use hpcc_crypto::sha256::Digest;
use hpcc_sim::sym;
use hpcc_sim::{
    CrashInjector, Crashed, Recoverable, RecoveryReport, SimSpan, SimTime, Stage, StateDigest,
    Tracer,
};
use parking_lot::Mutex;
use std::collections::BTreeSet;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// One append-only journal entry.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum JournalRecord {
    /// An operation opened an intent.
    Begin {
        intent: u64,
        /// Operation kind, e.g. `engine.pull` or `engine.convert`.
        op: String,
        /// Operation key (image reference, conversion cache key).
        key: String,
    },
    /// The intent staged a blob into the store (pin held until commit).
    Stage {
        intent: u64,
        digest: Digest,
        bytes: u64,
    },
    /// The intent's effects are fully durable.
    Commit { intent: u64 },
    /// The intent was rolled back (runtime abort or recovery fsck).
    Abort { intent: u64 },
}

/// Every site that appends to the journal. The crash matrix asserts each
/// site's `.pre`/`.post` points were exercised; a debug assertion
/// rejects appends from sites missing here.
pub const JOURNAL_SITES: [&str; 5] = [
    "journal.begin",
    "journal.stage",
    "journal.commit",
    "journal.abort",
    "journal.recover.abort",
];

/// The `(pre, post)` crash points of a registered journal write site.
/// Debug builds refuse unregistered sites — adding a write site without
/// registering it here (and thereby in the crash matrix) is a bug.
fn site_points(site: &str) -> (&'static str, &'static str) {
    match site {
        "journal.begin" => ("journal.begin.pre", "journal.begin.post"),
        "journal.stage" => ("journal.stage.pre", "journal.stage.post"),
        "journal.commit" => ("journal.commit.pre", "journal.commit.post"),
        "journal.abort" => ("journal.abort.pre", "journal.abort.post"),
        "journal.recover.abort" => ("journal.recover.abort.pre", "journal.recover.abort.post"),
        other => {
            debug_assert!(false, "unregistered journal write site: {other}");
            ("journal.unregistered.pre", "journal.unregistered.post")
        }
    }
}

/// Deterministic recovery cost model: scanning the journal is cheap,
/// garbage-collecting a staged blob pays a small per-blob cost.
const SCAN_NANOS_PER_RECORD: u64 = 200;
const GC_NANOS_PER_BLOB: u64 = 2_000;

/// A [`BlobStore`] wrapped in a write-ahead intent journal.
pub struct JournaledStore {
    store: Arc<BlobStore>,
    journal: Mutex<Vec<JournalRecord>>,
    crash: Mutex<Arc<CrashInjector>>,
    tracer: Mutex<Arc<Tracer>>,
    next_intent: AtomicU64,
}

impl JournaledStore {
    pub fn new(store: Arc<BlobStore>) -> Arc<JournaledStore> {
        Arc::new(JournaledStore {
            store,
            journal: Mutex::new(Vec::new()),
            crash: Mutex::new(CrashInjector::disabled()),
            tracer: Mutex::new(Tracer::disabled()),
            next_intent: AtomicU64::new(0),
        })
    }

    /// The underlying blob store (shared with non-journaled readers).
    pub fn store(&self) -> Arc<BlobStore> {
        Arc::clone(&self.store)
    }

    /// Route every journal write site through `crash` points.
    pub fn set_crash_injector(&self, crash: Arc<CrashInjector>) {
        *self.crash.lock() = crash;
    }

    fn crash_injector(&self) -> Arc<CrashInjector> {
        Arc::clone(&self.crash.lock())
    }

    /// Attach a tracer; recovery passes emit a `recover.fsck` span.
    pub fn set_tracer(&self, tracer: Arc<Tracer>) {
        *self.tracer.lock() = tracer;
    }

    /// Append through a registered write site: `<site>.pre` crash point,
    /// push the record, `<site>.post` crash point.
    fn append(&self, site: &str, record: JournalRecord, now: SimTime) -> Result<(), Crashed> {
        let (pre, post) = site_points(site);
        let crash = self.crash_injector();
        crash.crash_point(pre, now)?;
        self.journal.lock().push(record);
        crash.crash_point(post, now)
    }

    /// Open an intent for `op` on `key`. Returns the intent id.
    pub fn begin(&self, op: &str, key: &str, now: SimTime) -> Result<u64, Crashed> {
        let intent = self.next_intent.fetch_add(1, Ordering::Relaxed) + 1;
        self.append(
            "journal.begin",
            JournalRecord::Begin {
                intent,
                op: op.to_string(),
                key: key.to_string(),
            },
            now,
        )?;
        Ok(intent)
    }

    /// Stage a blob under `intent`: journal record first (WAL), then the
    /// store insert, whose refcount pin the intent holds until commit or
    /// abort. Returns `true` if the bytes were newly stored (dedup miss).
    pub fn stage(
        &self,
        intent: u64,
        digest: Digest,
        data: Arc<Vec<u8>>,
        now: SimTime,
    ) -> Result<bool, Crashed> {
        self.append(
            "journal.stage",
            JournalRecord::Stage {
                intent,
                digest,
                bytes: data.len() as u64,
            },
            now,
        )?;
        Ok(self.store.insert(digest, data))
    }

    /// Commit `intent`: once the Commit record is durable, drop the staged
    /// pins — the blobs stay resident as unpinned, evictable cache.
    pub fn commit(&self, intent: u64, now: SimTime) -> Result<(), Crashed> {
        self.append("journal.commit", JournalRecord::Commit { intent }, now)?;
        for digest in self.staged_of(intent) {
            self.store.release(&digest);
        }
        Ok(())
    }

    /// Roll back `intent` at runtime (its owner hit a non-crash error):
    /// garbage-collect its staged blobs, then append the Abort record.
    /// Returns how many blobs were removed.
    pub fn abort(&self, intent: u64, now: SimTime) -> Result<u64, Crashed> {
        let discarded = self.gc_intent(intent, true);
        self.append("journal.abort", JournalRecord::Abort { intent }, now)?;
        Ok(discarded)
    }

    /// Release (optionally) and remove the staged blobs of `intent`, unless
    /// a committed intent also references the digest. Effect-before-record:
    /// callers append the Abort record *after* this, so a crash in between
    /// leaves the intent open and the next recovery redoes the (idempotent)
    /// GC.
    fn gc_intent(&self, intent: u64, release_pins: bool) -> u64 {
        let committed = self.committed_digests();
        let mut discarded = 0;
        for digest in self.staged_of(intent) {
            if release_pins {
                self.store.release(&digest);
            }
            if !committed.contains(&digest) && self.store.remove_unpinned(&digest) {
                discarded += 1;
            }
        }
        discarded
    }

    fn staged_of(&self, intent: u64) -> Vec<Digest> {
        self.journal
            .lock()
            .iter()
            .filter_map(|r| match r {
                JournalRecord::Stage {
                    intent: i, digest, ..
                } if *i == intent => Some(*digest),
                _ => None,
            })
            .collect()
    }

    fn committed_digests(&self) -> BTreeSet<Digest> {
        let journal = self.journal.lock();
        let committed: BTreeSet<u64> = journal
            .iter()
            .filter_map(|r| match r {
                JournalRecord::Commit { intent } => Some(*intent),
                _ => None,
            })
            .collect();
        journal
            .iter()
            .filter_map(|r| match r {
                JournalRecord::Stage { intent, digest, .. } if committed.contains(intent) => {
                    Some(*digest)
                }
                _ => None,
            })
            .collect()
    }

    /// Snapshot of the journal.
    pub fn records(&self) -> Vec<JournalRecord> {
        self.journal.lock().clone()
    }

    /// Journal length (appends so far).
    pub fn len(&self) -> usize {
        self.journal.lock().len()
    }

    pub fn is_empty(&self) -> bool {
        self.journal.lock().is_empty()
    }

    /// Intents begun but neither committed nor aborted, in begin order.
    pub fn open_intents(&self) -> Vec<u64> {
        let journal = self.journal.lock();
        let closed: BTreeSet<u64> = journal
            .iter()
            .filter_map(|r| match r {
                JournalRecord::Commit { intent } | JournalRecord::Abort { intent } => Some(*intent),
                _ => None,
            })
            .collect();
        journal
            .iter()
            .filter_map(|r| match r {
                JournalRecord::Begin { intent, .. } if !closed.contains(intent) => Some(*intent),
                _ => None,
            })
            .collect()
    }

    /// Blobs staged under still-open intents and resident in the store —
    /// garbage a crash left behind. Empty after a successful recovery.
    pub fn orphaned_staged(&self) -> Vec<Digest> {
        let open: BTreeSet<u64> = self.open_intents().into_iter().collect();
        let committed = self.committed_digests();
        let mut out: BTreeSet<Digest> = BTreeSet::new();
        for record in self.journal.lock().iter() {
            if let JournalRecord::Stage { intent, digest, .. } = record {
                if open.contains(intent)
                    && !committed.contains(digest)
                    && self.store.contains(digest)
                {
                    out.insert(*digest);
                }
            }
        }
        out.into_iter().collect()
    }
}

impl Recoverable for JournaledStore {
    /// Digest of durable state: resident blobs and their refcounts, in
    /// digest order. Byte-identical stores (and quiesced pins) collide.
    fn checkpoint(&self, _now: SimTime) -> u64 {
        let mut digest = StateDigest::new();
        for d in self.store.digests() {
            digest.update(&d.0);
            digest.update_u64(self.store.refcount(&d).unwrap_or(0));
        }
        digest.finish()
    }

    /// fsck after a crash: rebuild refcounts from zero (in-flight pins died
    /// with their owners), verify committed intents' blobs, GC the staged
    /// blobs of open intents and append their missing Abort records.
    /// Idempotent — a second pass finds no open intents and changes
    /// nothing — and itself survivable through crash points.
    fn recover(&self, now: SimTime) -> Result<RecoveryReport, Crashed> {
        let crash = self.crash_injector();
        crash.crash_point("recover.scan.pre", now)?;

        let records = self.records();
        let committed: BTreeSet<u64> = records
            .iter()
            .filter_map(|r| match r {
                JournalRecord::Commit { intent } => Some(*intent),
                _ => None,
            })
            .collect();

        let rebuilt = self.store.reset_refs();

        // Roll forward: a committed intent is intact when every blob it
        // staged is resident (content-addressed, so byte equality is
        // digest equality).
        let mut rolled_forward = 0;
        for intent in &committed {
            let staged = self.staged_of(*intent);
            if !staged.is_empty() && staged.iter().all(|d| self.store.contains(d)) {
                rolled_forward += 1;
            }
        }

        // Roll back: GC open intents' staging, then write their Abort
        // records (effect before record — see `gc_intent`).
        let mut discarded = 0;
        for intent in self.open_intents() {
            discarded += self.gc_intent(intent, false);
            self.append(
                "journal.recover.abort",
                JournalRecord::Abort { intent },
                now,
            )?;
        }

        let took = SimSpan::nanos(
            SCAN_NANOS_PER_RECORD * records.len() as u64 + GC_NANOS_PER_BLOB * discarded,
        );
        self.tracer.lock().record(
            sym!("recover.fsck"),
            Stage::Cache,
            now,
            now + took,
            &[
                ("records", records.len().to_string()),
                ("rolled_forward", rolled_forward.to_string()),
                ("discarded", discarded.to_string()),
                ("rebuilt", rebuilt.to_string()),
            ],
        );
        Ok(RecoveryReport {
            rolled_forward,
            discarded,
            rebuilt,
            took,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hpcc_crypto::sha256::sha256;

    fn blob(tag: u8, len: usize) -> (Digest, Arc<Vec<u8>>) {
        let data = vec![tag; len];
        (sha256(&data), Arc::new(data))
    }

    fn journaled() -> Arc<JournaledStore> {
        JournaledStore::new(BlobStore::new(4, 1 << 20))
    }

    #[test]
    fn commit_releases_pins_and_keeps_blobs() {
        let j = journaled();
        let t = SimTime::ZERO;
        let intent = j.begin("engine.pull", "app:v1", t).unwrap();
        let (d, data) = blob(1, 100);
        assert!(j.stage(intent, d, data, t).unwrap());
        assert_eq!(j.store().refcount(&d), Some(1), "staged blob is pinned");
        j.commit(intent, t).unwrap();
        assert_eq!(j.store().refcount(&d), Some(0), "commit drops the pin");
        assert!(j.store().contains(&d));
        assert!(j.open_intents().is_empty());
        assert!(j.orphaned_staged().is_empty());
    }

    #[test]
    fn abort_gcs_staging_unless_committed_elsewhere() {
        let j = journaled();
        let t = SimTime::ZERO;
        let (shared, shared_data) = blob(1, 50);
        let (own, own_data) = blob(2, 50);

        let keeper = j.begin("engine.pull", "a:v1", t).unwrap();
        j.stage(keeper, shared, Arc::clone(&shared_data), t)
            .unwrap();
        j.commit(keeper, t).unwrap();

        let doomed = j.begin("engine.pull", "b:v1", t).unwrap();
        j.stage(doomed, shared, shared_data, t).unwrap();
        j.stage(doomed, own, own_data, t).unwrap();
        let discarded = j.abort(doomed, t).unwrap();
        assert_eq!(discarded, 1, "only the un-shared blob goes");
        assert!(j.store().contains(&shared), "committed elsewhere: kept");
        assert!(!j.store().contains(&own));
        assert!(j.store().pinned().is_empty());
        assert!(j.open_intents().is_empty());
    }

    #[test]
    fn recovery_rolls_forward_committed_and_discards_open() {
        let j = journaled();
        let t = SimTime::ZERO;
        let (dc, committed_data) = blob(1, 100);
        let done = j.begin("engine.pull", "a:v1", t).unwrap();
        j.stage(done, dc, committed_data, t).unwrap();
        j.commit(done, t).unwrap();

        // Simulate a crash mid-pull: intent open, blob staged & pinned.
        let (dx, orphan_data) = blob(2, 100);
        let open = j.begin("engine.pull", "b:v1", t).unwrap();
        j.stage(open, dx, orphan_data, t).unwrap();
        assert_eq!(j.orphaned_staged(), vec![dx]);

        let report = j.recover(t).unwrap();
        assert_eq!(report.rolled_forward, 1);
        assert_eq!(report.discarded, 1);
        assert_eq!(report.rebuilt, 1, "the orphan's pin was rebuilt away");
        assert!(report.took > SimSpan::ZERO);
        assert!(j.store().contains(&dc));
        assert!(!j.store().contains(&dx));
        assert!(j.store().pinned().is_empty());
        assert!(j.open_intents().is_empty());
        assert!(j.orphaned_staged().is_empty());
    }

    #[test]
    fn recovery_is_idempotent() {
        let j = journaled();
        let t = SimTime::ZERO;
        let (d, data) = blob(3, 64);
        let open = j.begin("engine.pull", "x:v1", t).unwrap();
        j.stage(open, d, data, t).unwrap();

        j.recover(t).unwrap();
        let after_first = (j.checkpoint(t), j.len());
        let second = j.recover(t).unwrap();
        assert_eq!(second.discarded, 0);
        assert_eq!((j.checkpoint(t), j.len()), after_first);
    }

    #[test]
    fn crash_during_recovery_is_survivable() {
        let j = journaled();
        let crash = CrashInjector::enabled();
        j.set_crash_injector(Arc::clone(&crash));
        let t = SimTime::ZERO;
        let (d, data) = blob(4, 64);
        let open = j.begin("engine.pull", "y:v1", t).unwrap();
        j.stage(open, d, data, t).unwrap();

        // Die after the GC but before the Abort record lands.
        crash.arm("journal.recover.abort.pre", 1);
        assert!(j.recover(t).is_err());
        assert_eq!(j.open_intents(), vec![open], "abort record never landed");

        // The next pass finishes the job.
        let report = j.recover(t).unwrap();
        assert!(j.open_intents().is_empty());
        assert!(j.store().pinned().is_empty());
        assert!(!j.store().contains(&d));
        // The blob was already GC'd by the crashed pass — idempotent redo.
        assert_eq!(report.discarded, 0);
    }

    #[test]
    fn journal_sites_fire_pre_and_post_points() {
        let j = journaled();
        let crash = CrashInjector::enabled();
        j.set_crash_injector(Arc::clone(&crash));
        let t = SimTime::ZERO;
        let (d, data) = blob(5, 10);
        let a = j.begin("op", "k", t).unwrap();
        j.stage(a, d, data, t).unwrap();
        j.commit(a, t).unwrap();
        let b = j.begin("op", "k2", t).unwrap();
        j.abort(b, t).unwrap();
        let pts = crash.points();
        for site in [
            "journal.begin",
            "journal.stage",
            "journal.commit",
            "journal.abort",
        ] {
            for suffix in [".pre", ".post"] {
                let want = format!("{site}{suffix}");
                assert!(pts.iter().any(|p| *p == want), "missing {want} in {pts:?}");
            }
        }
    }

    #[test]
    fn checkpoint_tracks_contents_and_pins() {
        let j1 = journaled();
        let j2 = journaled();
        let t = SimTime::ZERO;
        let (d, data) = blob(6, 32);
        let i1 = j1.begin("op", "k", t).unwrap();
        j1.stage(i1, d, Arc::clone(&data), t).unwrap();
        let i2 = j2.begin("op", "k", t).unwrap();
        j2.stage(i2, d, data, t).unwrap();
        assert_eq!(j1.checkpoint(t), j2.checkpoint(t));
        j1.commit(i1, t).unwrap();
        assert_ne!(j1.checkpoint(t), j2.checkpoint(t), "pin state differs");
        j2.commit(i2, t).unwrap();
        assert_eq!(j1.checkpoint(t), j2.checkpoint(t));
    }
}

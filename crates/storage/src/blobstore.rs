//! Sharded content-addressed blob store with refcounted dedup and LRU
//! eviction.
//!
//! Section 3.1 of the survey: "layer deduplication can be employed in
//! registries and locally based on equal hashes (content-addressable
//! storage)". Engines that share a node-local layer store (Sarus, enroot
//! caches, containerd snapshotters) avoid re-fetching and re-converting
//! layers that another image — or another engine on the same node —
//! already brought in. [`BlobStore`] is that shared store:
//!
//! * **Content-addressed**: blobs are keyed by their SHA-256 [`Digest`];
//!   inserting bytes that are already present bumps a refcount instead of
//!   storing a second copy, and the bytes saved are accounted as
//!   `dedup_bytes`.
//! * **Sharded**: the digest's first byte picks one of N independently
//!   locked shards, so concurrent pull pipelines do not serialize on one
//!   lock. Shard choice is a pure function of the digest — layout is
//!   deterministic and identical across runs.
//! * **Bounded with LRU eviction**: each shard holds `capacity / shards`
//!   bytes; when an insert overflows a shard, unreferenced entries are
//!   evicted least-recently-used first. Recency is a per-shard logical
//!   tick (not wall clock), so eviction order is reproducible.
//! * **Observable**: hits, misses, dedup hits/bytes, evictions and
//!   resident bytes are exposed via [`BlobStoreStats`] for the benchmark
//!   suite and the registry proxy.

use hpcc_crypto::sha256::Digest;
use parking_lot::Mutex;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Aggregated counters across all shards.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct BlobStoreStats {
    /// `get` calls that found the blob.
    pub hits: u64,
    /// Bytes served from the store by hitting `get` calls — bytes that did
    /// not have to be re-fetched from a registry.
    pub hit_bytes: u64,
    /// `get` calls that missed.
    pub misses: u64,
    /// `insert` calls that found the blob already stored (refcount bump).
    pub dedup_hits: u64,
    /// Bytes that did **not** have to be stored again thanks to dedup.
    pub dedup_bytes: u64,
    /// Entries evicted by the LRU policy.
    pub evictions: u64,
    /// Distinct blobs currently resident.
    pub resident_blobs: u64,
    /// Bytes currently resident.
    pub resident_bytes: u64,
}

impl BlobStoreStats {
    /// Fraction of lookups that hit, in `[0, 1]`.
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

struct Entry {
    data: Arc<Vec<u8>>,
    refs: u64,
    last_used: u64,
}

#[derive(Default)]
struct Shard {
    entries: HashMap<Digest, Entry>,
    used_bytes: u64,
    tick: u64,
    evictions: u64,
}

impl Shard {
    fn touch(&mut self, digest: &Digest) {
        self.tick += 1;
        let tick = self.tick;
        if let Some(e) = self.entries.get_mut(digest) {
            e.last_used = tick;
        }
    }

    /// Evict unreferenced entries, least-recently-used first, until the
    /// shard fits in `capacity`. Pinned (refs > 0) entries are never
    /// evicted, so a shard may legitimately exceed capacity while its
    /// contents are all in use.
    fn evict_to(&mut self, capacity: u64) {
        while self.used_bytes > capacity {
            let victim = self
                .entries
                .iter()
                .filter(|(_, e)| e.refs == 0)
                .min_by_key(|(d, e)| (e.last_used, **d))
                .map(|(d, _)| *d);
            match victim {
                Some(d) => {
                    if let Some(e) = self.entries.remove(&d) {
                        self.used_bytes -= e.data.len() as u64;
                        self.evictions += 1;
                    }
                }
                None => break,
            }
        }
    }
}

/// Sharded, refcounted, LRU-bounded content-addressed blob store.
pub struct BlobStore {
    shards: Vec<Mutex<Shard>>,
    shard_capacity: u64,
    hits: AtomicU64,
    hit_bytes: AtomicU64,
    misses: AtomicU64,
    dedup_hits: AtomicU64,
    dedup_bytes: AtomicU64,
}

impl BlobStore {
    /// A store with `shards` independently locked shards sharing
    /// `capacity_bytes` evenly. `shards` is clamped to at least 1.
    pub fn new(shards: usize, capacity_bytes: u64) -> Arc<BlobStore> {
        let shards = shards.max(1);
        Arc::new(BlobStore {
            shard_capacity: capacity_bytes / shards as u64,
            shards: (0..shards).map(|_| Mutex::new(Shard::default())).collect(),
            hits: AtomicU64::new(0),
            hit_bytes: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            dedup_hits: AtomicU64::new(0),
            dedup_bytes: AtomicU64::new(0),
        })
    }

    /// A store sized for node-local layer caches: 16 shards, 8 GiB.
    pub fn node_local() -> Arc<BlobStore> {
        BlobStore::new(16, 8 << 30)
    }

    fn shard(&self, digest: &Digest) -> &Mutex<Shard> {
        &self.shards[digest.0[0] as usize % self.shards.len()]
    }

    /// Look up a blob. Counts a hit or miss and refreshes LRU recency.
    pub fn get(&self, digest: &Digest) -> Option<Arc<Vec<u8>>> {
        let mut shard = self.shard(digest).lock();
        shard.touch(digest);
        match shard.entries.get(digest) {
            Some(e) => {
                self.hits.fetch_add(1, Ordering::Relaxed);
                self.hit_bytes
                    .fetch_add(e.data.len() as u64, Ordering::Relaxed);
                Some(Arc::clone(&e.data))
            }
            None => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    /// True if the blob is resident. Does not count as a hit/miss and does
    /// not refresh recency (registry HEAD-style probe).
    pub fn contains(&self, digest: &Digest) -> bool {
        self.shard(digest).lock().entries.contains_key(digest)
    }

    /// Insert a blob under its digest, taking one reference. If the blob
    /// is already resident this is a dedup hit: the refcount is bumped and
    /// no bytes are stored. Returns `true` if the bytes were newly stored.
    pub fn insert(&self, digest: Digest, data: Arc<Vec<u8>>) -> bool {
        let mut shard = self.shard(&digest).lock();
        shard.tick += 1;
        let tick = shard.tick;
        if let Some(e) = shard.entries.get_mut(&digest) {
            e.refs += 1;
            e.last_used = tick;
            self.dedup_hits.fetch_add(1, Ordering::Relaxed);
            self.dedup_bytes
                .fetch_add(data.len() as u64, Ordering::Relaxed);
            return false;
        }
        let size = data.len() as u64;
        shard.entries.insert(
            digest,
            Entry {
                data,
                refs: 1,
                last_used: tick,
            },
        );
        shard.used_bytes += size;
        let cap = self.shard_capacity;
        shard.evict_to(cap);
        true
    }

    /// Drop one reference to a blob. Unreferenced blobs stay resident (as
    /// cache) until LRU eviction needs their space. Unknown digests are a
    /// no-op (the blob may already have been evicted after its last
    /// release).
    pub fn release(&self, digest: &Digest) {
        let mut shard = self.shard(digest).lock();
        if let Some(e) = shard.entries.get_mut(digest) {
            e.refs = e.refs.saturating_sub(1);
        }
    }

    /// Current refcount of a resident blob (`None` if absent). Inspection
    /// hook for the crash-recovery fsck and the eviction/pin tests.
    pub fn refcount(&self, digest: &Digest) -> Option<u64> {
        self.shard(digest)
            .lock()
            .entries
            .get(digest)
            .map(|e| e.refs)
    }

    /// Digests currently pinned (refs > 0), sorted. A quiesced store — no
    /// pull or conversion in flight — must report none: every pin taken by
    /// an operation must be released when the operation ends.
    pub fn pinned(&self) -> Vec<Digest> {
        let mut out: Vec<Digest> = Vec::new();
        for shard in &self.shards {
            out.extend(
                shard
                    .lock()
                    .entries
                    .iter()
                    .filter(|(_, e)| e.refs > 0)
                    .map(|(d, _)| *d),
            );
        }
        out.sort();
        out
    }

    /// Remove a blob outright if it is unpinned. Returns `true` if removed;
    /// a pinned or absent blob is left alone. Used by the recovery fsck to
    /// garbage-collect staged blobs whose intent never committed — never by
    /// steady-state code, which relies on LRU eviction.
    pub fn remove_unpinned(&self, digest: &Digest) -> bool {
        let mut shard = self.shard(digest).lock();
        let removable = matches!(shard.entries.get(digest), Some(e) if e.refs == 0);
        if removable {
            if let Some(e) = shard.entries.remove(digest) {
                shard.used_bytes -= e.data.len() as u64;
            }
        }
        removable
    }

    /// Zero every refcount, returning how many entries were pinned. After
    /// a crash nothing is legitimately in flight, so the recovery fsck
    /// rebuilds refcounts from this clean slate (pins died with their
    /// owners; the journal knows which blobs are wanted).
    pub fn reset_refs(&self) -> u64 {
        let mut cleared = 0;
        for shard in &self.shards {
            for e in shard.lock().entries.values_mut() {
                if e.refs > 0 {
                    cleared += 1;
                    e.refs = 0;
                }
            }
        }
        cleared
    }

    /// All resident digests, sorted (for determinism checks: two runs at
    /// different parallelism must converge to identical contents).
    pub fn digests(&self) -> Vec<Digest> {
        let mut out: Vec<Digest> = Vec::new();
        for shard in &self.shards {
            out.extend(shard.lock().entries.keys().copied());
        }
        out.sort();
        out
    }

    /// Aggregated statistics snapshot.
    pub fn stats(&self) -> BlobStoreStats {
        let mut resident_blobs = 0;
        let mut resident_bytes = 0;
        let mut evictions = 0;
        for shard in &self.shards {
            let s = shard.lock();
            resident_blobs += s.entries.len() as u64;
            resident_bytes += s.used_bytes;
            evictions += s.evictions;
        }
        BlobStoreStats {
            hits: self.hits.load(Ordering::Relaxed),
            hit_bytes: self.hit_bytes.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            dedup_hits: self.dedup_hits.load(Ordering::Relaxed),
            dedup_bytes: self.dedup_bytes.load(Ordering::Relaxed),
            evictions,
            resident_blobs,
            resident_bytes,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hpcc_crypto::sha256::sha256;

    fn blob(tag: u8, len: usize) -> (Digest, Arc<Vec<u8>>) {
        let data = vec![tag; len];
        (sha256(&data), Arc::new(data))
    }

    #[test]
    fn miss_then_insert_then_hit() {
        let store = BlobStore::new(4, 1 << 20);
        let (d, data) = blob(1, 100);
        assert!(store.get(&d).is_none());
        assert!(store.insert(d, Arc::clone(&data)));
        assert_eq!(store.get(&d).as_deref(), Some(&*data));
        let s = store.stats();
        assert_eq!((s.hits, s.misses), (1, 1));
        assert_eq!(s.hit_bytes, 100);
        assert!((s.hit_rate() - 0.5).abs() < 1e-9);
        assert_eq!(s.resident_blobs, 1);
        assert_eq!(s.resident_bytes, 100);
    }

    #[test]
    fn duplicate_insert_is_dedup_not_storage() {
        let store = BlobStore::new(4, 1 << 20);
        let (d, data) = blob(2, 500);
        assert!(store.insert(d, Arc::clone(&data)));
        assert!(!store.insert(d, Arc::clone(&data)));
        let s = store.stats();
        assert_eq!(s.dedup_hits, 1);
        assert_eq!(s.dedup_bytes, 500);
        assert_eq!(s.resident_bytes, 500, "bytes stored once");
    }

    #[test]
    fn lru_evicts_unreferenced_oldest_first() {
        // One shard, capacity for two 100-byte blobs.
        let store = BlobStore::new(1, 200);
        let (da, a) = blob(1, 100);
        let (db, b) = blob(2, 100);
        let (dc, c) = blob(3, 100);
        store.insert(da, a);
        store.insert(db, b);
        store.release(&da);
        store.release(&db);
        store.get(&da); // refresh a: b is now least recently used
        store.insert(dc, c); // overflows: b must go
        assert!(store.contains(&da));
        assert!(!store.contains(&db));
        assert!(store.contains(&dc));
        assert_eq!(store.stats().evictions, 1);
    }

    #[test]
    fn pinned_blobs_survive_overflow() {
        let store = BlobStore::new(1, 100);
        let (da, a) = blob(1, 80);
        let (db, b) = blob(2, 80);
        store.insert(da, a); // pinned (refs = 1)
        store.insert(db, b); // overflow, but nothing evictable
        assert!(store.contains(&da));
        assert!(store.contains(&db));
        assert_eq!(store.stats().evictions, 0);
        store.release(&da);
        let (dc, c) = blob(3, 80);
        store.insert(dc, c); // now `a` is evictable
        assert!(!store.contains(&da));
    }

    #[test]
    fn refcount_pin_inspection_and_reset() {
        let store = BlobStore::new(2, 1 << 20);
        let (da, a) = blob(1, 10);
        let (db, b) = blob(2, 10);
        store.insert(da, Arc::clone(&a));
        store.insert(da, a); // second pin
        store.insert(db, b);
        store.release(&db);
        assert_eq!(store.refcount(&da), Some(2));
        assert_eq!(store.refcount(&db), Some(0));
        assert_eq!(store.pinned(), vec![da]);
        assert_eq!(store.reset_refs(), 1);
        assert!(store.pinned().is_empty());
        assert_eq!(store.refcount(&da), Some(0));
    }

    #[test]
    fn remove_unpinned_refuses_pinned_blobs() {
        let store = BlobStore::new(1, 1 << 20);
        let (d, data) = blob(7, 40);
        store.insert(d, data);
        assert!(!store.remove_unpinned(&d), "pinned: must refuse");
        assert!(store.contains(&d));
        store.release(&d);
        assert!(store.remove_unpinned(&d));
        assert!(!store.contains(&d));
        assert_eq!(store.stats().resident_bytes, 0);
        assert!(!store.remove_unpinned(&d), "absent: no-op");
    }

    #[test]
    fn release_of_unknown_digest_is_noop() {
        let store = BlobStore::new(2, 1 << 10);
        let (d, _) = blob(9, 10);
        store.release(&d);
        assert_eq!(store.stats().resident_blobs, 0);
    }

    #[test]
    fn digests_are_sorted_and_complete() {
        let store = BlobStore::new(8, 1 << 20);
        let mut expected = Vec::new();
        for tag in 0..20u8 {
            let (d, data) = blob(tag, 32);
            store.insert(d, data);
            expected.push(d);
        }
        expected.sort();
        assert_eq!(store.digests(), expected);
    }

    #[test]
    fn sharding_is_deterministic() {
        let store1 = BlobStore::new(16, 1 << 20);
        let store2 = BlobStore::new(16, 1 << 20);
        for tag in 0..50u8 {
            let (d, data) = blob(tag, 64);
            store1.insert(d, Arc::clone(&data));
            store2.insert(d, data);
        }
        assert_eq!(store1.digests(), store2.digests());
        assert_eq!(store1.stats(), store2.stats());
    }
}

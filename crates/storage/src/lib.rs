//! # hpcc-storage
//!
//! Cluster-storage models:
//!
//! * [`shared_fs`] — a Lustre-class shared filesystem with a bounded
//!   metadata service and bandwidth-bound data servers; the substrate for
//!   the many-small-files vs single-file-image experiments (§3.2, §4.1.4).
//! * [`local`] — node-local scratch disks, the image-staging fan-out, and
//!   the conversion cache with the per-user vs shared distinction of
//!   Table 2.
//! * [`blobstore`] — a sharded content-addressed blob store (digest →
//!   refcount dedup, LRU eviction, hit/miss accounting) shared by engines
//!   and the registry proxy (§3.1 layer dedup).
//! * [`journal`] — a write-ahead intent journal over the blob store
//!   (begin → stage → commit) with an fsck-style recovery pass; the
//!   crash-consistency substrate behind the kill-at-every-step matrix.

pub mod blobstore;
pub mod journal;
pub mod local;
pub mod p2p;
pub mod shared_fs;

pub use blobstore::{BlobStore, BlobStoreStats};
pub use journal::{JournalRecord, JournaledStore, JOURNAL_SITES};
pub use local::{
    stage_image_to_nodes, stage_image_to_nodes_bounded, ConversionCache, NodeLocalDisk,
    StagingReport,
};
pub use p2p::{
    broadcast_p2p, broadcast_tree, broadcast_tree_from_seeds, broadcast_tree_observed,
    broadcast_via_shared_fs, replicate_to_stores, BroadcastReport, DistributionTree,
    TreeBroadcastReport, TreeSpec,
};
pub use shared_fs::{SharedFs, SharedFsConfig};

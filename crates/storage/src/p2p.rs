//! Peer-to-peer image distribution — the Dragonfly direction of §7.
//!
//! Section 7 points at "registries like Quay or Dragonfly" as the
//! cloud-side answer to image distribution. For an HPC allocation, the
//! alternative to every node pulling from shared storage is a
//! Dragonfly-style swarm: a few seed nodes fetch the image, then every
//! completed node serves peers over the high-speed network — turning a
//! bandwidth bottleneck into a logarithmic-depth broadcast.
//!
//! The model: time-stepped rounds; in each round every completed node can
//! upload to one peer (full-image granularity, the conservative variant;
//! chunked swarms are strictly faster). Compared against the baseline of
//! all nodes pulling from the shared filesystem (`quant10`).

use crate::shared_fs::SharedFs;
use hpcc_sim::net::{Fabric, LinkClass, NodeId};
use hpcc_sim::sym;
use hpcc_sim::{
    Bytes, Executor, FaultInjector, FaultKind, SimTime, Stage, TaskFinish, TaskGraph, Tracer,
};
use std::cell::RefCell;
use std::convert::Infallible;

/// Outcome of a distribution strategy.
#[derive(Debug, Clone)]
pub struct BroadcastReport {
    /// Completion time per node (node order = input order).
    pub per_node_done: Vec<SimTime>,
    /// When the slowest node finished (job start gate).
    pub all_done: SimTime,
    /// Total bytes served by the shared filesystem.
    pub shared_fs_bytes: Bytes,
    /// Total bytes moved peer-to-peer.
    pub p2p_bytes: Bytes,
}

/// Baseline: every node pulls the full image from the shared filesystem
/// (what `stage_image_to_nodes` does, summarized here for comparison).
pub fn broadcast_via_shared_fs(
    shared: &SharedFs,
    image_size: Bytes,
    nodes: usize,
    start: SimTime,
) -> BroadcastReport {
    let mut per_node_done = Vec::with_capacity(nodes);
    for _ in 0..nodes {
        per_node_done.push(shared.read_bulk(image_size, start));
    }
    let all_done = per_node_done.iter().copied().max().unwrap_or(start);
    BroadcastReport {
        per_node_done,
        all_done,
        shared_fs_bytes: Bytes::new(image_size.as_u64() * nodes as u64),
        p2p_bytes: Bytes::ZERO,
    }
}

/// Dragonfly-style swarm: `seeds` nodes pull from the shared filesystem;
/// afterwards every node holding the image serves one peer at a time over
/// the high-speed fabric.
pub fn broadcast_p2p(
    shared: &SharedFs,
    fabric: &Fabric,
    image_size: Bytes,
    node_ids: &[NodeId],
    seeds: usize,
    start: SimTime,
) -> BroadcastReport {
    broadcast_p2p_with_faults(
        shared,
        fabric,
        image_size,
        node_ids,
        seeds,
        start,
        &FaultInjector::disabled(),
    )
}

/// [`broadcast_p2p`] under a fault schedule: each time a holder is picked
/// to serve, a [`FaultKind::PeerChurn`] fault makes it leave the swarm
/// instead (node reclaimed by its job, daemon restarted). Departed holders
/// stop serving but keep their copy; the broadcast completes as long as at
/// least one holder remains, which the seed set guarantees — the last
/// holder is never allowed to depart.
pub fn broadcast_p2p_with_faults(
    shared: &SharedFs,
    fabric: &Fabric,
    image_size: Bytes,
    node_ids: &[NodeId],
    seeds: usize,
    start: SimTime,
    faults: &FaultInjector,
) -> BroadcastReport {
    let disabled = Tracer::disabled();
    broadcast_p2p_observed(
        shared, fabric, image_size, node_ids, seeds, start, faults, &disabled,
    )
}

/// [`broadcast_p2p_with_faults`] with a tracer: the whole broadcast becomes
/// a `p2p.broadcast` span with one `p2p.seed_pull` child per seed fetch and
/// one `p2p.send` child per peer transfer.
#[allow(clippy::too_many_arguments)]
pub fn broadcast_p2p_observed(
    shared: &SharedFs,
    fabric: &Fabric,
    image_size: Bytes,
    node_ids: &[NodeId],
    seeds: usize,
    start: SimTime,
    faults: &FaultInjector,
    tracer: &Tracer,
) -> BroadcastReport {
    assert!(seeds >= 1 && !node_ids.is_empty());
    let seeds = seeds.min(node_ids.len());
    let root = tracer.begin(sym!("p2p.broadcast"), Stage::Storage, start);
    tracer.attr(root, sym!("nodes"), node_ids.len());
    tracer.attr(root, sym!("seeds"), seeds);
    tracer.attr(root, sym!("bytes"), image_size.as_u64());

    // Seeds fetch from shared storage (contending with each other): one
    // executor task per seed on a pool as wide as the seed set, so every
    // seed pull starts together and the schedule is pinned by task id.
    let mut done: Vec<Option<SimTime>> = vec![None; node_ids.len()];
    {
        let seed_done: RefCell<Vec<Option<SimTime>>> = RefCell::new(vec![None; seeds]);
        let mut graph: TaskGraph<'_, Infallible> = TaskGraph::new();
        for (i, node) in node_ids.iter().take(seeds).enumerate() {
            let seed_done = &seed_done;
            graph.add(sym!("p2p.seed_pull"), Stage::Storage, &[], move |at| {
                let t = shared.read_bulk(image_size, at);
                seed_done.borrow_mut()[i] = Some(t);
                Ok(TaskFinish::at(t).attr("node", node.0))
            });
        }
        Executor::new(seeds)
            .run(graph, start, tracer)
            .expect("seed pulls are infallible");
        for (d, t) in done.iter_mut().zip(seed_done.into_inner()) {
            *d = Some(t.expect("every seed pulled"));
        }
    }

    // Swarm rounds: earliest-finished holder serves the next waiting node.
    // Holders become available again after each upload completes.
    let mut holder_free: Vec<(SimTime, usize)> = done
        .iter()
        .enumerate()
        .filter_map(|(i, t)| t.map(|t| (t, i)))
        .collect();
    let mut p2p_bytes = 0u64;
    for i in 0..node_ids.len() {
        if done[i].is_some() {
            continue;
        }
        // Earliest-available holder, skipping any that churn away when
        // called on to serve.
        holder_free.sort();
        while holder_free.len() > 1
            && faults
                .roll(FaultKind::PeerChurn, holder_free[0].0)
                .is_some()
        {
            let (_, departed) = holder_free.remove(0);
            faults.note(format!(
                "- {} p2p holder {} left the swarm",
                done[departed].unwrap_or(start),
                node_ids[departed].0
            ));
        }
        let (free_at, holder) = holder_free[0];
        let arrival = fabric
            .send(
                node_ids[holder],
                node_ids[i],
                LinkClass::HighSpeed,
                image_size,
                free_at,
            )
            .expect("nodes on fabric");
        tracer.record(
            sym!("p2p.send"),
            Stage::Storage,
            free_at,
            arrival,
            &[
                ("from", node_ids[holder].0.to_string()),
                ("to", node_ids[i].0.to_string()),
            ],
        );
        done[i] = Some(arrival);
        p2p_bytes += image_size.as_u64();
        // The holder frees when its NIC is done (≈ arrival minus latency,
        // approximated as arrival); the receiver becomes a holder too.
        holder_free[0] = (arrival, holder);
        holder_free.push((arrival, i));
    }

    let per_node_done: Vec<SimTime> = done.into_iter().map(|t| t.expect("all served")).collect();
    let all_done = per_node_done.iter().copied().max().unwrap_or(start);
    tracer.end(root, all_done);
    BroadcastReport {
        per_node_done,
        all_done,
        shared_fs_bytes: Bytes::new(image_size.as_u64() * seeds as u64),
        p2p_bytes: Bytes::new(p2p_bytes),
    }
}

/// A rough analytic check: binary-tree broadcast depth.
pub fn ideal_p2p_rounds(nodes: usize, seeds: usize) -> u32 {
    let mut have = seeds.max(1);
    let mut rounds = 0;
    while have < nodes {
        have *= 2;
        rounds += 1;
    }
    rounds
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::shared_fs::SharedFs;

    fn setup(nodes: usize) -> (SharedFs, Fabric, Vec<NodeId>) {
        let ids: Vec<NodeId> = (0..nodes as u32).map(NodeId).collect();
        (
            SharedFs::with_defaults(),
            Fabric::with_defaults(ids.iter().copied()),
            ids,
        )
    }

    #[test]
    fn p2p_beats_shared_fs_at_scale() {
        let image = Bytes::gib(2);
        let (shared_a, _, _) = setup(0);
        let base = broadcast_via_shared_fs(&shared_a, image, 256, SimTime::ZERO);
        let (shared_b, fabric, ids) = setup(256);
        let p2p = broadcast_p2p(&shared_b, &fabric, image, &ids, 4, SimTime::ZERO);
        assert!(
            p2p.all_done < base.all_done,
            "p2p {:?} should beat shared-fs {:?} at 256 nodes",
            p2p.all_done,
            base.all_done
        );
        // And it offloads the shared filesystem dramatically.
        assert_eq!(p2p.shared_fs_bytes, Bytes::gib(8));
        assert_eq!(base.shared_fs_bytes, Bytes::gib(512));
    }

    #[test]
    fn all_nodes_receive_the_image() {
        let image = Bytes::mib(512);
        let (shared, fabric, ids) = setup(33);
        let report = broadcast_p2p(&shared, &fabric, image, &ids, 2, SimTime::ZERO);
        assert_eq!(report.per_node_done.len(), 33);
        assert!(report.per_node_done.iter().all(|t| *t > SimTime::ZERO));
        // 31 non-seed nodes each moved one image copy over p2p.
        assert_eq!(report.p2p_bytes, Bytes::new(512 * (1 << 20) * 31));
    }

    #[test]
    fn completion_grows_logarithmically() {
        let image = Bytes::gib(1);
        let t64 = {
            let (shared, fabric, ids) = setup(64);
            broadcast_p2p(&shared, &fabric, image, &ids, 1, SimTime::ZERO).all_done
        };
        let t512 = {
            let (shared, fabric, ids) = setup(512);
            broadcast_p2p(&shared, &fabric, image, &ids, 1, SimTime::ZERO).all_done
        };
        let ratio =
            t512.since(SimTime::ZERO).as_secs_f64() / t64.since(SimTime::ZERO).as_secs_f64();
        // 8x the nodes should cost ~log2(8)=3 extra doubling rounds, far
        // below linear 8x.
        assert!(ratio < 2.5, "expected sub-linear growth, got {ratio}");
        assert_eq!(ideal_p2p_rounds(64, 1), 6);
        assert_eq!(ideal_p2p_rounds(512, 1), 9);
    }

    #[test]
    fn broadcast_completes_despite_seed_churn() {
        use hpcc_sim::{FaultRule, SimSpan};
        let image = Bytes::mib(256);
        let (shared, fabric, ids) = setup(64);
        // Aggressive churn: every holder asked to serve in the first 10
        // minutes departs (unless it is the last one standing).
        let inj = FaultInjector::new(
            17,
            vec![FaultRule::sticky(
                FaultKind::PeerChurn,
                SimTime::ZERO,
                SimTime::ZERO + SimSpan::secs(600),
            )],
        );
        let report =
            broadcast_p2p_with_faults(&shared, &fabric, image, &ids, 4, SimTime::ZERO, &inj);
        assert_eq!(report.per_node_done.len(), 64);
        assert!(report.per_node_done.iter().all(|t| *t > SimTime::ZERO));
        assert!(inj.metrics().get("faults.injected.peer_churn") > 0);
        // Churn costs time against the fault-free swarm.
        let (shared2, fabric2, ids2) = setup(64);
        let clean = broadcast_p2p(&shared2, &fabric2, image, &ids2, 4, SimTime::ZERO);
        assert!(report.all_done >= clean.all_done);
    }

    #[test]
    fn more_seeds_speed_up_the_swarm() {
        let image = Bytes::gib(1);
        let t1 = {
            let (shared, fabric, ids) = setup(128);
            broadcast_p2p(&shared, &fabric, image, &ids, 1, SimTime::ZERO).all_done
        };
        let t8 = {
            let (shared, fabric, ids) = setup(128);
            broadcast_p2p(&shared, &fabric, image, &ids, 8, SimTime::ZERO).all_done
        };
        assert!(t8 <= t1);
    }

    #[test]
    fn single_node_is_just_a_seed_pull() {
        let image = Bytes::mib(64);
        let (shared, fabric, ids) = setup(1);
        let report = broadcast_p2p(&shared, &fabric, image, &ids, 1, SimTime::ZERO);
        assert_eq!(report.p2p_bytes, Bytes::ZERO);
        assert_eq!(report.per_node_done.len(), 1);
    }
}

//! Peer-to-peer image distribution — the Dragonfly direction of §7.
//!
//! Section 7 points at "registries like Quay or Dragonfly" as the
//! cloud-side answer to image distribution. For an HPC allocation, the
//! alternative to every node pulling from shared storage is a
//! Dragonfly-style swarm: a few seed nodes fetch the image, then every
//! completed node serves peers over the high-speed network — turning a
//! bandwidth bottleneck into a logarithmic-depth broadcast.
//!
//! The model: time-stepped rounds; in each round every completed node can
//! upload to one peer (full-image granularity, the conservative variant;
//! chunked swarms are strictly faster). Compared against the baseline of
//! all nodes pulling from the shared filesystem (`quant10`).

use crate::blobstore::BlobStore;
use crate::shared_fs::SharedFs;
use hpcc_crypto::sha256::Digest;
use hpcc_sim::net::{Fabric, LinkClass, NodeId};
use hpcc_sim::sym;
use hpcc_sim::{
    Bytes, DetRng, Executor, FaultInjector, FaultKind, MetricsRegistry, SimSpan, SimTime, Stage,
    TaskFinish, TaskGraph, Tracer,
};
use std::cell::RefCell;
use std::convert::Infallible;
use std::sync::Arc;

/// Outcome of a distribution strategy.
#[derive(Debug, Clone)]
pub struct BroadcastReport {
    /// Completion time per node (node order = input order).
    pub per_node_done: Vec<SimTime>,
    /// When the slowest node finished (job start gate).
    pub all_done: SimTime,
    /// Total bytes served by the shared filesystem.
    pub shared_fs_bytes: Bytes,
    /// Total bytes moved peer-to-peer.
    pub p2p_bytes: Bytes,
}

/// Baseline: every node pulls the full image from the shared filesystem
/// (what `stage_image_to_nodes` does, summarized here for comparison).
pub fn broadcast_via_shared_fs(
    shared: &SharedFs,
    image_size: Bytes,
    nodes: usize,
    start: SimTime,
) -> BroadcastReport {
    let mut per_node_done = Vec::with_capacity(nodes);
    for _ in 0..nodes {
        per_node_done.push(shared.read_bulk(image_size, start));
    }
    let all_done = per_node_done.iter().copied().max().unwrap_or(start);
    BroadcastReport {
        per_node_done,
        all_done,
        shared_fs_bytes: Bytes::new(image_size.as_u64() * nodes as u64),
        p2p_bytes: Bytes::ZERO,
    }
}

/// Dragonfly-style swarm: `seeds` nodes pull from the shared filesystem;
/// afterwards every node holding the image serves one peer at a time over
/// the high-speed fabric.
pub fn broadcast_p2p(
    shared: &SharedFs,
    fabric: &Fabric,
    image_size: Bytes,
    node_ids: &[NodeId],
    seeds: usize,
    start: SimTime,
) -> BroadcastReport {
    broadcast_p2p_with_faults(
        shared,
        fabric,
        image_size,
        node_ids,
        seeds,
        start,
        &FaultInjector::disabled(),
    )
}

/// [`broadcast_p2p`] under a fault schedule: each time a holder is picked
/// to serve, a [`FaultKind::PeerChurn`] fault makes it leave the swarm
/// instead (node reclaimed by its job, daemon restarted). Departed holders
/// stop serving but keep their copy; the broadcast completes as long as at
/// least one holder remains, which the seed set guarantees — the last
/// holder is never allowed to depart.
pub fn broadcast_p2p_with_faults(
    shared: &SharedFs,
    fabric: &Fabric,
    image_size: Bytes,
    node_ids: &[NodeId],
    seeds: usize,
    start: SimTime,
    faults: &FaultInjector,
) -> BroadcastReport {
    let disabled = Tracer::disabled();
    broadcast_p2p_observed(
        shared, fabric, image_size, node_ids, seeds, start, faults, &disabled,
    )
}

/// [`broadcast_p2p_with_faults`] with a tracer: the whole broadcast becomes
/// a `p2p.broadcast` span with one `p2p.seed_pull` child per seed fetch and
/// one `p2p.send` child per peer transfer.
#[allow(clippy::too_many_arguments)]
pub fn broadcast_p2p_observed(
    shared: &SharedFs,
    fabric: &Fabric,
    image_size: Bytes,
    node_ids: &[NodeId],
    seeds: usize,
    start: SimTime,
    faults: &FaultInjector,
    tracer: &Tracer,
) -> BroadcastReport {
    assert!(seeds >= 1 && !node_ids.is_empty());
    let seeds = seeds.min(node_ids.len());
    let root = tracer.begin(sym!("p2p.broadcast"), Stage::Storage, start);
    tracer.attr(root, sym!("nodes"), node_ids.len());
    tracer.attr(root, sym!("seeds"), seeds);
    tracer.attr(root, sym!("bytes"), image_size.as_u64());

    // Seeds fetch from shared storage (contending with each other): one
    // executor task per seed on a pool as wide as the seed set, so every
    // seed pull starts together and the schedule is pinned by task id.
    let mut done: Vec<Option<SimTime>> = vec![None; node_ids.len()];
    {
        let seed_done: RefCell<Vec<Option<SimTime>>> = RefCell::new(vec![None; seeds]);
        let mut graph: TaskGraph<'_, Infallible> = TaskGraph::new();
        for (i, node) in node_ids.iter().take(seeds).enumerate() {
            let seed_done = &seed_done;
            graph.add(sym!("p2p.seed_pull"), Stage::Storage, &[], move |at| {
                let t = shared.read_bulk(image_size, at);
                seed_done.borrow_mut()[i] = Some(t);
                Ok(TaskFinish::at(t).attr("node", node.0))
            });
        }
        Executor::new(seeds)
            .run(graph, start, tracer)
            .expect("seed pulls are infallible");
        for (d, t) in done.iter_mut().zip(seed_done.into_inner()) {
            *d = Some(t.expect("every seed pulled"));
        }
    }

    // Swarm rounds: earliest-finished holder serves the next waiting node.
    // Holders become available again after each upload completes.
    let mut holder_free: Vec<(SimTime, usize)> = done
        .iter()
        .enumerate()
        .filter_map(|(i, t)| t.map(|t| (t, i)))
        .collect();
    let mut p2p_bytes = 0u64;
    for i in 0..node_ids.len() {
        if done[i].is_some() {
            continue;
        }
        // Earliest-available holder, skipping any that churn away when
        // called on to serve.
        holder_free.sort();
        while holder_free.len() > 1
            && faults
                .roll(FaultKind::PeerChurn, holder_free[0].0)
                .is_some()
        {
            let (_, departed) = holder_free.remove(0);
            faults.note(format!(
                "- {} p2p holder {} left the swarm",
                done[departed].unwrap_or(start),
                node_ids[departed].0
            ));
        }
        let (free_at, holder) = holder_free[0];
        let arrival = fabric
            .send(
                node_ids[holder],
                node_ids[i],
                LinkClass::HighSpeed,
                image_size,
                free_at,
            )
            .expect("nodes on fabric");
        tracer.record(
            sym!("p2p.send"),
            Stage::Storage,
            free_at,
            arrival,
            &[
                ("from", node_ids[holder].0.to_string()),
                ("to", node_ids[i].0.to_string()),
            ],
        );
        done[i] = Some(arrival);
        p2p_bytes += image_size.as_u64();
        // The holder frees when its NIC is done (≈ arrival minus latency,
        // approximated as arrival); the receiver becomes a holder too.
        holder_free[0] = (arrival, holder);
        holder_free.push((arrival, i));
    }

    let per_node_done: Vec<SimTime> = done.into_iter().map(|t| t.expect("all served")).collect();
    let all_done = per_node_done.iter().copied().max().unwrap_or(start);
    tracer.end(root, all_done);
    BroadcastReport {
        per_node_done,
        all_done,
        shared_fs_bytes: Bytes::new(image_size.as_u64() * seeds as u64),
        p2p_bytes: Bytes::new(p2p_bytes),
    }
}

// ---------------------------------------------------------------------------
// Deterministic distribution trees (fleet-scale storms)
// ---------------------------------------------------------------------------

/// Time a churned interior node (or its orphaned children) spends
/// re-registering with the nearest live ancestor before transfers resume.
pub const TREE_REPAIR_LATENCY: SimSpan = SimSpan(50 * 1_000_000);

/// Shape of a [`DistributionTree`]: a forest of `seeds` fan-out-`fanout`
/// trees over a seeded placement permutation, moving the image in `chunk`
/// sized pieces so interior nodes forward while still receiving.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TreeSpec {
    /// Children per interior node (≥ 2).
    pub fanout: usize,
    /// Roots of the forest; each seed fetches the image upstream.
    pub seeds: usize,
    /// Pipelining granularity: interior nodes forward chunk `c` while
    /// chunk `c + 1` is still in flight to them.
    pub chunk: Bytes,
    /// Seed for the placement permutation (which node lands at which tree
    /// position). Same seed → same tree, run to run.
    pub placement_seed: u64,
}

impl Default for TreeSpec {
    fn default() -> TreeSpec {
        TreeSpec {
            fanout: 4,
            seeds: 2,
            chunk: Bytes::mib(64),
            placement_seed: 0x5eed,
        }
    }
}

/// A deterministic fan-out forest over an allocation's nodes.
///
/// Positions are laid out heap-style within each seed's contiguous
/// segment: position `p`'s children are `p·f + 1 ..= p·f + f` (segment
/// local), so the structure is fully determined by `(nodes, spec)` and
/// every parent index is strictly smaller than its children's — one
/// index-order sweep per chunk is a BFS of the whole forest.
///
/// Invariants (property-tested in `tests/integration_storm.rs`):
/// * the placement is a permutation — every node appears exactly once;
/// * depth ≤ ⌈log_fanout(segment size)⌉ in every segment.
#[derive(Debug, Clone)]
pub struct DistributionTree {
    spec: TreeSpec,
    /// `order[position] = index into the node slice` (a permutation).
    order: Vec<usize>,
    /// Segment boundaries, one per seed: `seg[s] .. seg[s + 1]`.
    seg: Vec<usize>,
}

impl DistributionTree {
    /// Build the forest for `nodes` participants. `spec.seeds` is clamped
    /// to the node count; `spec.fanout` must be ≥ 2.
    pub fn build(nodes: usize, spec: TreeSpec) -> DistributionTree {
        assert!(nodes >= 1, "a tree needs at least one node");
        assert!(spec.fanout >= 2, "fanout must be at least 2");
        assert!(spec.seeds >= 1, "at least one seed");
        assert!(spec.chunk.as_u64() > 0, "chunk size must be positive");
        let spec = TreeSpec {
            seeds: spec.seeds.min(nodes),
            ..spec
        };
        let mut order: Vec<usize> = (0..nodes).collect();
        DetRng::seeded(spec.placement_seed).shuffle(&mut order);
        // Segments as even as possible; earlier seeds take the remainder.
        let (base, rem) = (nodes / spec.seeds, nodes % spec.seeds);
        let mut seg = Vec::with_capacity(spec.seeds + 1);
        let mut at = 0;
        seg.push(0);
        for s in 0..spec.seeds {
            at += base + usize::from(s < rem);
            seg.push(at);
        }
        DistributionTree { spec, order, seg }
    }

    /// The spec the tree was built from (with `seeds` clamped).
    pub fn spec(&self) -> TreeSpec {
        self.spec
    }

    /// Number of participating nodes.
    pub fn node_count(&self) -> usize {
        self.order.len()
    }

    /// Placement permutation: `assignments()[position]` is the index of
    /// the node occupying that tree position.
    pub fn assignments(&self) -> &[usize] {
        &self.order
    }

    /// Root position of segment `s` — the slot its seed occupies.
    pub fn seed_root(&self, s: usize) -> usize {
        assert!(s < self.spec.seeds);
        self.seg[s]
    }

    /// Segment (= seed tree) containing `pos`.
    pub fn segment_of(&self, pos: usize) -> usize {
        debug_assert!(pos < self.order.len());
        // seg is sorted; find the last boundary ≤ pos.
        match self.seg.binary_search(&pos) {
            Ok(s) if s < self.spec.seeds => s,
            Ok(s) => s - 1,
            Err(s) => s - 1,
        }
    }

    /// Parent position, or `None` for a segment root.
    pub fn parent(&self, pos: usize) -> Option<usize> {
        let s = self.segment_of(pos);
        let local = pos - self.seg[s];
        (local > 0).then(|| self.seg[s] + (local - 1) / self.spec.fanout)
    }

    /// Child positions of `pos` (empty for leaves).
    pub fn children(&self, pos: usize) -> Vec<usize> {
        let s = self.segment_of(pos);
        let (lo, hi) = (self.seg[s], self.seg[s + 1]);
        let local = pos - lo;
        let first = local * self.spec.fanout + 1;
        (first..first + self.spec.fanout)
            .map(|l| lo + l)
            .filter(|p| *p < hi)
            .collect()
    }

    /// Hops from `pos` up to its segment root.
    pub fn depth_of(&self, pos: usize) -> u32 {
        let mut d = 0;
        let mut at = pos;
        while let Some(p) = self.parent(at) {
            at = p;
            d += 1;
        }
        d
    }

    /// Deepest position in the forest.
    pub fn max_depth(&self) -> u32 {
        (0..self.spec.seeds)
            .filter(|s| self.seg[*s + 1] > self.seg[*s])
            .map(|s| self.depth_of(self.seg[s + 1] - 1))
            .max()
            .unwrap_or(0)
    }
}

/// Smallest `d` with `fanout^d ≥ n` — the ⌈log_f(n)⌉ depth bound a
/// heap-layout fan-out tree satisfies.
pub fn tree_depth_bound(nodes: usize, fanout: usize) -> u32 {
    assert!(fanout >= 2);
    let mut d = 0;
    let mut cap = 1u128;
    while cap < nodes as u128 {
        cap *= fanout as u128;
        d += 1;
    }
    d
}

/// Outcome of a tree broadcast.
#[derive(Debug, Clone)]
pub struct TreeBroadcastReport {
    /// Completion time per node (node order = input order).
    pub per_node_done: Vec<SimTime>,
    /// When the slowest node finished.
    pub all_done: SimTime,
    /// Bytes the seeds pulled upstream (shared fs or registry tier).
    pub shared_fs_bytes: Bytes,
    /// Bytes moved over the fabric, including churn catch-up resends.
    pub p2p_bytes: Bytes,
    /// Depth of the (pre-churn) forest.
    pub depth: u32,
    /// Interior nodes that churned away and were repaired around.
    pub repairs: u64,
    /// Chunk transfers performed.
    pub chunks_sent: u64,
}

/// Tree broadcast with faults and observability disabled — the common
/// test entry point.
pub fn broadcast_tree(
    shared: &SharedFs,
    fabric: &Fabric,
    image_size: Bytes,
    node_ids: &[NodeId],
    spec: TreeSpec,
    start: SimTime,
) -> TreeBroadcastReport {
    let disabled = Tracer::disabled();
    broadcast_tree_observed(
        shared,
        fabric,
        image_size,
        node_ids,
        spec,
        start,
        &FaultInjector::disabled(),
        &disabled,
        &MetricsRegistry::new(),
    )
}

/// Full tree broadcast: seeds fetch the image from the shared filesystem
/// in chunks (executor tasks, so the schedule rides the DES), then each
/// seed's segment receives it down a fan-out tree with chunk pipelining.
/// A [`FaultKind::PeerChurn`] fault fired against an interior node kills
/// it mid-broadcast; its children (and the node itself, once its daemon
/// restarts) re-attach to the nearest live ancestor and catch up.
#[allow(clippy::too_many_arguments)]
pub fn broadcast_tree_observed(
    shared: &SharedFs,
    fabric: &Fabric,
    image_size: Bytes,
    node_ids: &[NodeId],
    spec: TreeSpec,
    start: SimTime,
    faults: &FaultInjector,
    tracer: &Tracer,
    metrics: &MetricsRegistry,
) -> TreeBroadcastReport {
    assert!(!node_ids.is_empty());
    let tree = DistributionTree::build(node_ids.len(), spec);
    let chunks = chunk_count(image_size, tree.spec().chunk);

    // Seeds fetch from shared storage chunk by chunk, contending with each
    // other: one executor task per seed on a pool as wide as the seed set.
    let seeds = tree.spec().seeds;
    // One task per (seed, chunk), chained per seed, so reads from
    // different seeds hit the filesystem interleaved in simulated-time
    // order instead of one seed's whole sequence monopolizing the queue.
    let seed_chunk_done: Vec<Vec<SimTime>> = {
        let done: RefCell<Vec<Vec<SimTime>>> = RefCell::new(vec![Vec::new(); seeds]);
        let mut graph: TaskGraph<'_, Infallible> = TaskGraph::new();
        let mut prev = vec![None; seeds];
        let chunk = tree.spec().chunk;
        for c in 0..chunks {
            for (s, prev) in prev.iter_mut().enumerate() {
                let done = &done;
                let node = node_ids[tree.assignments()[tree.seg[s]]];
                let deps: Vec<_> = prev.iter().copied().collect();
                let id = graph.add(sym!("tree.seed_pull"), Stage::Storage, &deps, move |at| {
                    let t = shared.read_bulk(chunk_size(image_size, chunk, c), at);
                    done.borrow_mut()[s].push(t);
                    Ok(TaskFinish::at(t).attr("node", node.0).attr("chunk", c))
                });
                *prev = Some(id);
            }
        }
        Executor::new(seeds)
            .run(graph, start, tracer)
            .expect("seed pulls are infallible");
        done.into_inner()
    };

    let mut report = broadcast_tree_from_seeds(
        fabric,
        image_size,
        node_ids,
        &tree,
        &seed_chunk_done,
        start,
        faults,
        tracer,
        metrics,
    );
    report.shared_fs_bytes = Bytes::new(image_size.as_u64() * seeds as u64);
    report
}

/// Result of one whole-subtree forest repair.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RepairStats {
    /// Dead positions disconnected (requested minus protected roots).
    pub dead: usize,
    /// Parent pointers rewritten: one per orphaned live subtree root.
    pub rewired_edges: usize,
}

/// Whole-subtree re-parent fast path: disconnect every position in `dead`
/// from the forest at once and re-attach each *orphaned live subtree
/// root* (a live node whose parent died) to its nearest live ancestor.
///
/// This is the correlated-failure counterpart of the broadcast's inline
/// one-at-a-time churn repair: when a whole rack dies, the one-peer path
/// would rewire every lost position individually, while this touches only
/// the dead set and its boundary — cost is O(lost subtree), independent
/// of fleet size (pinned by a property test). Subtrees hanging under a
/// dead node move as a unit: their internal edges are untouched.
///
/// Forest roots (positions with no parent) are never disconnected — the
/// seed set must survive — so a `dead` entry naming a root is skipped.
/// Callers decide separately whether (and when) dead positions rejoin.
pub fn repair_forest(
    parent: &mut [Option<usize>],
    children: &mut [Vec<usize>],
    alive: &mut [bool],
    dead: &[usize],
) -> RepairStats {
    let mut marked = 0usize;
    for &d in dead {
        if parent[d].is_some() && alive[d] {
            alive[d] = false;
            marked += 1;
        }
    }
    let mut rewired = 0usize;
    for &d in dead {
        if alive[d] {
            continue; // root, or duplicate entry already processed
        }
        // Detach from the (possibly live) parent; a dead parent's list
        // is drained below anyway.
        let p = parent[d].expect("non-root");
        if alive[p] {
            children[p].retain(|&c| c != d);
        }
    }
    for &d in dead {
        if alive[d] {
            continue;
        }
        let orphans: Vec<usize> = children[d].drain(..).filter(|&c| alive[c]).collect();
        if orphans.is_empty() {
            continue;
        }
        // Nearest live ancestor adopts the whole orphaned subtrees.
        let mut anc = parent[d].expect("non-root");
        while !alive[anc] {
            anc = parent[anc].expect("roots stay alive");
        }
        for o in orphans {
            parent[o] = Some(anc);
            children[anc].push(o);
            rewired += 1;
        }
    }
    RepairStats {
        dead: marked,
        rewired_edges: rewired,
    }
}

/// The fan-out phase of a tree broadcast, starting from per-seed chunk
/// availability times (`seed_chunk_done[s][c]` = when seed `s` holds chunk
/// `c`). Lets callers feed the seeds from any upstream — shared fs here,
/// the tiered registry in `bench_storm`.
#[allow(clippy::too_many_arguments)]
pub fn broadcast_tree_from_seeds(
    fabric: &Fabric,
    image_size: Bytes,
    node_ids: &[NodeId],
    tree: &DistributionTree,
    seed_chunk_done: &[Vec<SimTime>],
    start: SimTime,
    faults: &FaultInjector,
    tracer: &Tracer,
    metrics: &MetricsRegistry,
) -> TreeBroadcastReport {
    broadcast_tree_from_seeds_gated(
        fabric,
        image_size,
        node_ids,
        tree,
        seed_chunk_done,
        start,
        faults,
        tracer,
        metrics,
        None,
    )
}

/// [`broadcast_tree_from_seeds`] under a correlated outage: `outage =
/// (dead_positions, heal_at)` kills the named tree positions before the
/// first chunk moves. Their live subtrees are re-parented around the
/// hole in one [`repair_forest`] pass (rack-scale repair, not
/// peer-at-a-time), and the dead nodes themselves rejoin as leaves of
/// their nearest live ancestor, gated so no chunk reaches them before
/// `heal_at` + the re-registration latency. With `None` this is exactly
/// [`broadcast_tree_from_seeds`].
#[allow(clippy::too_many_arguments)]
pub fn broadcast_tree_from_seeds_gated(
    fabric: &Fabric,
    image_size: Bytes,
    node_ids: &[NodeId],
    tree: &DistributionTree,
    seed_chunk_done: &[Vec<SimTime>],
    start: SimTime,
    faults: &FaultInjector,
    tracer: &Tracer,
    metrics: &MetricsRegistry,
    outage: Option<(&[usize], SimTime)>,
) -> TreeBroadcastReport {
    let n = node_ids.len();
    assert_eq!(tree.node_count(), n, "tree built for a different fleet");
    let spec = tree.spec();
    assert_eq!(
        seed_chunk_done.len(),
        spec.seeds,
        "one chunk clock per seed"
    );
    let chunks = chunk_count(image_size, spec.chunk);

    let root_span = tracer.begin(sym!("tree.broadcast"), Stage::Storage, start);
    tracer.attr(root_span, sym!("nodes"), n);
    tracer.attr(root_span, sym!("seeds"), spec.seeds);
    tracer.attr(root_span, sym!("fanout"), spec.fanout);
    tracer.attr(root_span, sym!("chunks"), chunks);
    tracer.attr(root_span, sym!("bytes"), image_size.as_u64());
    tracer.attr(root_span, sym!("depth"), tree.max_depth());

    // Mutable forest state (repair rewires it around churned nodes).
    let mut parent: Vec<Option<usize>> = (0..n).map(|p| tree.parent(p)).collect();
    let mut children: Vec<Vec<usize>> = (0..n).map(|p| tree.children(p)).collect();
    let mut alive = vec![true; n];
    // Next chunk index each position still needs (roots need none).
    let mut next_needed = vec![0usize; n];
    // Transfers to a re-attached node cannot start before its repair ends.
    let mut ready_floor = vec![SimTime::ZERO; n];
    let mut rx: Vec<Vec<SimTime>> = vec![vec![SimTime::ZERO; chunks]; n];
    for (s, seed_done) in seed_chunk_done.iter().enumerate() {
        let root = tree.seg[s];
        assert_eq!(seed_done.len(), chunks, "seed {s} chunk clock");
        rx[root].copy_from_slice(seed_done);
        next_needed[root] = chunks;
    }

    let mut p2p_bytes = 0u64;
    let mut chunks_sent = 0u64;
    let mut repairs = 0u64;

    // Correlated outage: kill the named positions up front, rewire their
    // live subtrees around the hole in one whole-subtree pass, then
    // re-attach the dead nodes as leaves of their nearest live ancestor,
    // gated so no chunk reaches them before the domain heals.
    if let Some((dead_positions, heal_at)) = outage {
        let stats = repair_forest(&mut parent, &mut children, &mut alive, dead_positions);
        repairs += stats.dead as u64;
        for &d in dead_positions {
            if alive[d] {
                continue; // protected forest root
            }
            let mut anc = parent[d].expect("non-root");
            while !alive[anc] {
                anc = parent[anc].expect("roots stay alive");
            }
            parent[d] = Some(anc);
            children[anc].push(d);
            alive[d] = true;
            ready_floor[d] = ready_floor[d].max(heal_at + TREE_REPAIR_LATENCY);
        }
        faults.note(format!(
            "- {heal_at} tree outage repair: {} dead, {} subtree edges rewired",
            stats.dead, stats.rewired_edges,
        ));
        metrics.add("p2p.tree.outage_rewired", stats.rewired_edges as u64);
    }

    // One index-order sweep per chunk is a BFS of the forest (parents sit
    // at strictly smaller indices, and repair only moves nodes to
    // ancestors, which preserves that order). The catch-up `while` brings
    // re-attached nodes back level, so a final drain loop below is enough
    // to guarantee convergence under arbitrary churn.
    let mut sweep = |c: usize,
                     parent: &mut Vec<Option<usize>>,
                     children: &mut Vec<Vec<usize>>,
                     alive: &mut Vec<bool>,
                     next_needed: &mut Vec<usize>,
                     ready_floor: &mut Vec<SimTime>,
                     rx: &mut Vec<Vec<SimTime>>,
                     roll_churn: bool|
     -> bool {
        let mut progressed = false;
        for p in 0..n {
            if !alive[p] || children[p].is_empty() {
                continue;
            }
            let is_root = parent[p].is_none();
            let have = if is_root { chunks } else { next_needed[p] };
            if have == 0 {
                continue; // re-attached and not caught up yet
            }
            // Interior, non-root nodes may churn away the moment they are
            // called on to forward a chunk they just received.
            if roll_churn
                && !is_root
                && c < have
                && faults.roll(FaultKind::PeerChurn, rx[p][c]).is_some()
            {
                let at = rx[p][c];
                repairs += 1;
                alive[p] = false;
                // Nearest live ancestor adopts the orphans — and the
                // churned node itself, which rejoins as a leaf after its
                // daemon restarts.
                let mut anc = parent[p].expect("non-root has a parent");
                while !alive[anc] {
                    anc = parent[anc].expect("roots never churn");
                }
                let orphans: Vec<usize> = children[p].drain(..).collect();
                for o in &orphans {
                    parent[*o] = Some(anc);
                    ready_floor[*o] = ready_floor[*o].max(at + TREE_REPAIR_LATENCY);
                }
                children[anc].extend(orphans.iter().copied());
                parent[p] = Some(anc);
                children[anc].push(p);
                ready_floor[p] = ready_floor[p].max(at + TREE_REPAIR_LATENCY);
                faults.note(format!(
                    "- {at} tree node {} churned; {} orphans re-attached",
                    node_ids[tree.assignments()[p]].0,
                    orphans.len(),
                ));
                tracer.record(
                    sym!("tree.repair"),
                    Stage::Storage,
                    at,
                    at + TREE_REPAIR_LATENCY,
                    &[
                        ("node", node_ids[tree.assignments()[p]].0.to_string()),
                        ("orphans", orphans.len().to_string()),
                    ],
                );
                continue;
            }
            // Serve every child up through the current chunk (catch-up for
            // re-attached children included), bounded by what we hold.
            let kids: Vec<usize> = children[p].clone();
            for child in kids {
                while next_needed[child] <= c && next_needed[child] < have {
                    let cc = next_needed[child];
                    let size = chunk_size(image_size, spec.chunk, cc);
                    let dep = rx[p][cc].max(ready_floor[child]);
                    let t = fabric
                        .send(
                            node_ids[tree.assignments()[p]],
                            node_ids[tree.assignments()[child]],
                            LinkClass::HighSpeed,
                            size,
                            dep,
                        )
                        .expect("nodes on fabric");
                    rx[child][cc] = t;
                    next_needed[child] = cc + 1;
                    p2p_bytes += size.as_u64();
                    chunks_sent += 1;
                    progressed = true;
                }
            }
        }
        progressed
    };

    for c in 0..chunks {
        sweep(
            c,
            &mut parent,
            &mut children,
            &mut alive,
            &mut next_needed,
            &mut ready_floor,
            &mut rx,
            true,
        );
    }
    // Drain: nodes re-attached late in the last rounds finish catching up.
    // Each pass pushes every behind node at least one chunk further down
    // its (topologically ordered) ancestor chain, so this terminates.
    while sweep(
        chunks - 1,
        &mut parent,
        &mut children,
        &mut alive,
        &mut next_needed,
        &mut ready_floor,
        &mut rx,
        false,
    ) {}

    let mut per_node_done = vec![SimTime::ZERO; n];
    for p in 0..n {
        assert_eq!(next_needed[p], chunks, "node at position {p} converged");
        per_node_done[tree.assignments()[p]] = rx[p][chunks - 1];
    }
    let all_done = per_node_done.iter().copied().max().unwrap_or(start);

    metrics.add("p2p.tree.chunks_sent", chunks_sent);
    metrics.add("p2p.tree.bytes", p2p_bytes);
    metrics.add("p2p.tree.repairs", repairs);
    metrics.observe("p2p.tree.depth", u64::from(tree.max_depth()));
    tracer.end(root_span, all_done);

    TreeBroadcastReport {
        per_node_done,
        all_done,
        shared_fs_bytes: Bytes::ZERO,
        p2p_bytes: Bytes::new(p2p_bytes),
        depth: tree.max_depth(),
        repairs,
        chunks_sent,
    }
}

/// Number of `chunk`-sized pieces covering `image_size` (≥ 1).
pub fn chunk_count(image_size: Bytes, chunk: Bytes) -> usize {
    (image_size.as_u64().div_ceil(chunk.as_u64()).max(1)) as usize
}

/// Size of chunk `c` (the last chunk may be short).
pub fn chunk_size(image_size: Bytes, chunk: Bytes, c: usize) -> Bytes {
    let off = c as u64 * chunk.as_u64();
    Bytes::new(chunk.as_u64().min(image_size.as_u64().saturating_sub(off)))
}

/// Replicate the broadcast payload into every receiving node's local blob
/// store — what the transfer delivers. Content addressing makes the
/// result byte-identical to a direct per-node pull of the same blobs,
/// which `tests/integration_storm.rs` pins.
pub fn replicate_to_stores(stores: &[Arc<BlobStore>], blobs: &[(Digest, Arc<Vec<u8>>)]) {
    for store in stores {
        for (digest, data) in blobs {
            store.insert(*digest, Arc::clone(data));
        }
    }
}

/// A rough analytic check: binary-tree broadcast depth.
pub fn ideal_p2p_rounds(nodes: usize, seeds: usize) -> u32 {
    let mut have = seeds.max(1);
    let mut rounds = 0;
    while have < nodes {
        have *= 2;
        rounds += 1;
    }
    rounds
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::shared_fs::SharedFs;

    fn setup(nodes: usize) -> (SharedFs, Fabric, Vec<NodeId>) {
        let ids: Vec<NodeId> = (0..nodes as u32).map(NodeId).collect();
        (
            SharedFs::with_defaults(),
            Fabric::with_defaults(ids.iter().copied()),
            ids,
        )
    }

    #[test]
    fn p2p_beats_shared_fs_at_scale() {
        let image = Bytes::gib(2);
        let (shared_a, _, _) = setup(0);
        let base = broadcast_via_shared_fs(&shared_a, image, 256, SimTime::ZERO);
        let (shared_b, fabric, ids) = setup(256);
        let p2p = broadcast_p2p(&shared_b, &fabric, image, &ids, 4, SimTime::ZERO);
        assert!(
            p2p.all_done < base.all_done,
            "p2p {:?} should beat shared-fs {:?} at 256 nodes",
            p2p.all_done,
            base.all_done
        );
        // And it offloads the shared filesystem dramatically.
        assert_eq!(p2p.shared_fs_bytes, Bytes::gib(8));
        assert_eq!(base.shared_fs_bytes, Bytes::gib(512));
    }

    #[test]
    fn all_nodes_receive_the_image() {
        let image = Bytes::mib(512);
        let (shared, fabric, ids) = setup(33);
        let report = broadcast_p2p(&shared, &fabric, image, &ids, 2, SimTime::ZERO);
        assert_eq!(report.per_node_done.len(), 33);
        assert!(report.per_node_done.iter().all(|t| *t > SimTime::ZERO));
        // 31 non-seed nodes each moved one image copy over p2p.
        assert_eq!(report.p2p_bytes, Bytes::new(512 * (1 << 20) * 31));
    }

    #[test]
    fn completion_grows_logarithmically() {
        let image = Bytes::gib(1);
        let t64 = {
            let (shared, fabric, ids) = setup(64);
            broadcast_p2p(&shared, &fabric, image, &ids, 1, SimTime::ZERO).all_done
        };
        let t512 = {
            let (shared, fabric, ids) = setup(512);
            broadcast_p2p(&shared, &fabric, image, &ids, 1, SimTime::ZERO).all_done
        };
        let ratio =
            t512.since(SimTime::ZERO).as_secs_f64() / t64.since(SimTime::ZERO).as_secs_f64();
        // 8x the nodes should cost ~log2(8)=3 extra doubling rounds, far
        // below linear 8x.
        assert!(ratio < 2.5, "expected sub-linear growth, got {ratio}");
        assert_eq!(ideal_p2p_rounds(64, 1), 6);
        assert_eq!(ideal_p2p_rounds(512, 1), 9);
    }

    #[test]
    fn broadcast_completes_despite_seed_churn() {
        use hpcc_sim::{FaultRule, SimSpan};
        let image = Bytes::mib(256);
        let (shared, fabric, ids) = setup(64);
        // Aggressive churn: every holder asked to serve in the first 10
        // minutes departs (unless it is the last one standing).
        let inj = FaultInjector::new(
            17,
            vec![FaultRule::sticky(
                FaultKind::PeerChurn,
                SimTime::ZERO,
                SimTime::ZERO + SimSpan::secs(600),
            )],
        );
        let report =
            broadcast_p2p_with_faults(&shared, &fabric, image, &ids, 4, SimTime::ZERO, &inj);
        assert_eq!(report.per_node_done.len(), 64);
        assert!(report.per_node_done.iter().all(|t| *t > SimTime::ZERO));
        assert!(inj.metrics().get("faults.injected.peer_churn") > 0);
        // Churn costs time against the fault-free swarm.
        let (shared2, fabric2, ids2) = setup(64);
        let clean = broadcast_p2p(&shared2, &fabric2, image, &ids2, 4, SimTime::ZERO);
        assert!(report.all_done >= clean.all_done);
    }

    #[test]
    fn more_seeds_speed_up_the_swarm() {
        let image = Bytes::gib(1);
        let t1 = {
            let (shared, fabric, ids) = setup(128);
            broadcast_p2p(&shared, &fabric, image, &ids, 1, SimTime::ZERO).all_done
        };
        let t8 = {
            let (shared, fabric, ids) = setup(128);
            broadcast_p2p(&shared, &fabric, image, &ids, 8, SimTime::ZERO).all_done
        };
        assert!(t8 <= t1);
    }

    #[test]
    fn single_node_is_just_a_seed_pull() {
        let image = Bytes::mib(64);
        let (shared, fabric, ids) = setup(1);
        let report = broadcast_p2p(&shared, &fabric, image, &ids, 1, SimTime::ZERO);
        assert_eq!(report.p2p_bytes, Bytes::ZERO);
        assert_eq!(report.per_node_done.len(), 1);
    }

    // ------------------------------------------------ distribution trees

    #[test]
    fn tree_positions_form_a_permutation_with_bounded_depth() {
        for nodes in [1usize, 2, 7, 16, 64, 257] {
            let spec = TreeSpec {
                seeds: 3,
                ..TreeSpec::default()
            };
            let tree = DistributionTree::build(nodes, spec);
            let mut seen = tree.assignments().to_vec();
            seen.sort_unstable();
            assert_eq!(seen, (0..nodes).collect::<Vec<_>>(), "{nodes} nodes");
            assert!(
                tree.max_depth() <= tree_depth_bound(nodes, spec.fanout),
                "{nodes} nodes: depth {} over bound {}",
                tree.max_depth(),
                tree_depth_bound(nodes, spec.fanout)
            );
        }
    }

    #[test]
    fn tree_broadcast_reaches_every_node() {
        let image = Bytes::gib(2);
        let (shared, fabric, ids) = setup(100);
        let report = broadcast_tree(
            &shared,
            &fabric,
            image,
            &ids,
            TreeSpec::default(),
            SimTime::ZERO,
        );
        assert_eq!(report.per_node_done.len(), 100);
        assert!(report.per_node_done.iter().all(|t| *t > SimTime::ZERO));
        assert_eq!(report.repairs, 0);
        // 98 non-seed nodes each received the full image over the fabric.
        assert_eq!(report.p2p_bytes, Bytes::new(image.as_u64() * 98));
        assert_eq!(report.shared_fs_bytes, Bytes::new(image.as_u64() * 2));
    }

    #[test]
    fn tree_pipelining_beats_whole_image_swarm_at_scale() {
        let image = Bytes::gib(2);
        let (shared_a, fabric_a, ids_a) = setup(512);
        let swarm = broadcast_p2p(&shared_a, &fabric_a, image, &ids_a, 4, SimTime::ZERO);
        let (shared_b, fabric_b, ids_b) = setup(512);
        let spec = TreeSpec {
            seeds: 4,
            ..TreeSpec::default()
        };
        let tree = broadcast_tree(&shared_b, &fabric_b, image, &ids_b, spec, SimTime::ZERO);
        assert!(
            tree.all_done < swarm.all_done,
            "pipelined tree {:?} should beat whole-image swarm {:?}",
            tree.all_done,
            swarm.all_done
        );
    }

    #[test]
    fn tree_broadcast_converges_despite_interior_churn() {
        use hpcc_sim::{FaultRule, SimSpan};
        let image = Bytes::mib(512);
        let (shared, fabric, ids) = setup(128);
        let inj = FaultInjector::new(
            23,
            vec![FaultRule::sticky(
                FaultKind::PeerChurn,
                SimTime::ZERO,
                SimTime::ZERO + SimSpan::secs(600),
            )],
        );
        let tracer = Tracer::disabled();
        let metrics = MetricsRegistry::new();
        let churned = broadcast_tree_observed(
            &shared,
            &fabric,
            image,
            &ids,
            TreeSpec::default(),
            SimTime::ZERO,
            &inj,
            &tracer,
            &metrics,
        );
        assert_eq!(churned.per_node_done.len(), 128);
        assert!(churned.per_node_done.iter().all(|t| *t > SimTime::ZERO));
        assert!(churned.repairs > 0, "aggressive churn window never fired");
        assert_eq!(metrics.get("p2p.tree.repairs"), churned.repairs);
        let (shared2, fabric2, ids2) = setup(128);
        let clean = broadcast_tree(
            &shared2,
            &fabric2,
            image,
            &ids2,
            TreeSpec::default(),
            SimTime::ZERO,
        );
        assert!(
            churned.all_done >= clean.all_done,
            "repair should not be free"
        );
    }

    #[test]
    fn chunk_arithmetic_covers_the_image_exactly() {
        let image = Bytes::new(5 * (1 << 20) + 17);
        let chunk = Bytes::mib(2);
        let n = chunk_count(image, chunk);
        let total: u64 = (0..n).map(|c| chunk_size(image, chunk, c).as_u64()).sum();
        assert_eq!(total, image.as_u64());
        assert!(chunk_size(image, chunk, n - 1).as_u64() > 0);
    }

    /// Forest state (parent / children / alive) lifted straight off a
    /// freshly built tree, for repair tests.
    fn forest_of(tree: &DistributionTree) -> (Vec<Option<usize>>, Vec<Vec<usize>>, Vec<bool>) {
        let n = tree.node_count();
        (
            (0..n).map(|p| tree.parent(p)).collect(),
            (0..n).map(|p| tree.children(p)).collect(),
            vec![true; n],
        )
    }

    #[test]
    fn repair_forest_reparents_whole_subtrees_and_protects_roots() {
        let tree = DistributionTree::build(64, TreeSpec::default());
        let (mut parent, mut children, mut alive) = forest_of(&tree);
        // Kill positions 1 and 2 (children of the segment-0 root) plus the
        // root itself, which must be protected.
        let stats = repair_forest(&mut parent, &mut children, &mut alive, &[0, 1, 2]);
        assert_eq!(stats.dead, 2, "root 0 is protected");
        assert!(alive[0] && !alive[1] && !alive[2]);
        // The orphaned subtree roots (positions 5..=12, children of 1 and
        // 2) hang off the segment root now; their own subtrees moved as
        // units — internal edges untouched.
        assert_eq!(stats.rewired_edges, 8);
        for o in 5..=12 {
            assert_eq!(parent[o], Some(0));
            assert!(children[0].contains(&o));
            assert_eq!(
                children[o],
                tree.children(o),
                "subtree interior moved as a unit"
            );
        }
        // Every live non-root still has a live parent that lists it.
        for p in 0..64 {
            if !alive[p] {
                continue;
            }
            if let Some(pp) = parent[p] {
                assert!(alive[pp], "live node {p} hangs off dead parent {pp}");
                assert!(children[pp].contains(&p));
            }
        }
    }

    #[test]
    fn repair_forest_skips_dead_interior_chains() {
        let tree = DistributionTree::build(64, TreeSpec::default());
        let (mut parent, mut children, mut alive) = forest_of(&tree);
        // Position 5 is a child of 1; kill both so orphans of 5 must climb
        // through the dead chain 5 → 1 up to the live root 0.
        let stats = repair_forest(&mut parent, &mut children, &mut alive, &[1, 5]);
        assert_eq!(stats.dead, 2);
        for o in tree.children(5) {
            assert_eq!(parent[o], Some(0), "orphan {o} climbs past the dead chain");
        }
        // 5 itself is dead, so it is not counted as a rewired edge of 1.
        let orphans_of_1 = tree.children(1).len() - 1;
        assert_eq!(stats.rewired_edges, orphans_of_1 + tree.children(5).len());
    }

    #[test]
    fn gated_broadcast_converges_and_gates_dead_nodes_on_heal() {
        let image = Bytes::mib(256);
        let (_, fabric, ids) = setup(64);
        let tree = DistributionTree::build(64, TreeSpec::default());
        let chunks = chunk_count(image, tree.spec().chunk);
        let seed_clock: Vec<SimTime> = (0..chunks)
            .map(|c| SimTime::ZERO + hpcc_sim::SimSpan::millis(c as u64 + 1))
            .collect();
        let seed_done = vec![seed_clock; tree.spec().seeds];
        let tracer = Tracer::disabled();
        let metrics = MetricsRegistry::new();
        let dead = [1usize, 2, 5];
        let heal = SimTime::ZERO + hpcc_sim::SimSpan::secs(3);
        let report = broadcast_tree_from_seeds_gated(
            &fabric,
            image,
            &ids,
            &tree,
            &seed_done,
            SimTime::ZERO,
            &FaultInjector::disabled(),
            &tracer,
            &metrics,
            Some((&dead, heal)),
        );
        assert_eq!(report.repairs, 3);
        assert!(report.per_node_done.iter().all(|t| *t > SimTime::ZERO));
        let floor = heal + TREE_REPAIR_LATENCY;
        for d in dead {
            let node = tree.assignments()[d];
            assert!(
                report.per_node_done[node] >= floor,
                "dead position {d} finished before its domain healed"
            );
        }
        // Orphans: 3 live children of 1 (5 is dead too), 4 of 2, 4 of 5.
        assert_eq!(metrics.get("p2p.tree.outage_rewired"), 11);

        // `None` is byte-for-byte the ungated broadcast.
        let (_, fabric2, ids2) = setup(64);
        let gated_none = broadcast_tree_from_seeds_gated(
            &fabric2,
            image,
            &ids2,
            &tree,
            &seed_done,
            SimTime::ZERO,
            &FaultInjector::disabled(),
            &tracer,
            &MetricsRegistry::new(),
            None,
        );
        let (_, fabric3, ids3) = setup(64);
        let plain = broadcast_tree_from_seeds(
            &fabric3,
            image,
            &ids3,
            &tree,
            &seed_done,
            SimTime::ZERO,
            &FaultInjector::disabled(),
            &tracer,
            &MetricsRegistry::new(),
        );
        assert_eq!(gated_none.per_node_done, plain.per_node_done);
        assert_eq!(gated_none.p2p_bytes, plain.p2p_bytes);
        assert_eq!(gated_none.chunks_sent, plain.chunks_sent);
        assert_eq!(gated_none.repairs, plain.repairs);
    }
}

#[cfg(test)]
mod repair_props {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        /// Losing the same block of tree positions costs the same number
        /// of rewired edges at 256 nodes as at 4096: repair touches the
        /// lost subtree and its boundary, never the fleet.
        #[test]
        fn repair_cost_is_o_lost_subtree_not_o_fleet(start in 1usize..20, len in 1usize..8) {
            let spec = TreeSpec::default();
            // Dead locals stay ≤ 26, so every child index (≤ 4·26+4) sits
            // inside segment 0 of even the 256-node tree — the lost
            // boundary is structurally identical across fleet sizes.
            let dead: Vec<usize> = (start..start + len).collect();
            let mut stats = Vec::new();
            for n in [256usize, 4096] {
                let tree = DistributionTree::build(n, spec);
                let mut parent: Vec<Option<usize>> = (0..n).map(|p| tree.parent(p)).collect();
                let mut children: Vec<Vec<usize>> = (0..n).map(|p| tree.children(p)).collect();
                let mut alive = vec![true; n];
                let s = repair_forest(&mut parent, &mut children, &mut alive, &dead);
                // Bounded by the lost-subtree boundary, not the fleet.
                prop_assert!(s.rewired_edges <= s.dead * spec.fanout);
                // The forest stays consistent: every live non-root hangs
                // off a live parent that lists it exactly once.
                for p in 0..n {
                    if !alive[p] {
                        continue;
                    }
                    if let Some(pp) = parent[p] {
                        prop_assert!(alive[pp]);
                        let listed = children[pp].iter().filter(|c| **c == p).count();
                        prop_assert!(listed == 1);
                    }
                }
                stats.push(s);
            }
            prop_assert!(stats[0] == stats[1]);
        }
    }
}

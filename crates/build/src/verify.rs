//! Pull-side verification: the consumer half of sign-on-push.
//!
//! A verifying puller holds a *trusted tree head* (obtained out of band —
//! gossip, TUF root, site config) and, given the provenance a
//! [`SignedImage`](crate::publish::SignedImage) carries, checks three
//! independent things before trusting a pulled image:
//!
//! 1. **Signature** — the WOTS signature verifies over the manifest
//!    digest under the embedded public key.
//! 2. **Log inclusion** — the signature's log entry proves inclusion
//!    against the trusted head. A proof minted before later appends has
//!    `tree_size != head.size` and is rejected as *stale* (split-view /
//!    rollback defense).
//! 3. **Content** — every pulled blob re-hashes to the digest its signed
//!    manifest descriptor claims; any mismatch is a tampered blob.
//!
//! All failures are typed — a hostile registry must never panic a node.

use hpcc_crypto::sha256::{sha256, Digest};
use hpcc_crypto::translog::{verify_inclusion, InclusionProof, TreeHead};
use hpcc_crypto::wots::{self, PublicKey, Signature};
use hpcc_engine::engine::{Engine, EngineError, PulledImage};
use hpcc_oci::image::Manifest;
use hpcc_registry::registry::{Registry, RegistryError};
use hpcc_sim::SimClock;

/// WOTS public keys serialize to exactly 33 bytes (tag + root).
const PUBKEY_BYTES: usize = 33;

/// Typed verification failures (acceptance: no panic on hostile input).
#[derive(Debug)]
pub enum VerifyError {
    /// The registry has no signature artifact for the manifest.
    MissingSignature(Digest),
    /// Signature bytes don't parse as `pubkey ++ wots signature`.
    MalformedSignature,
    /// The WOTS signature does not verify over the manifest digest.
    BadSignature(Digest),
    /// The inclusion proof was minted against an older tree than the
    /// trusted head — stale provenance, possible rollback.
    StaleProof {
        proof_size: u64,
        head_size: u64,
    },
    /// The entry does not prove inclusion under the trusted head.
    NotInLog(Digest),
    /// A pulled blob's bytes hash to something other than the signed
    /// manifest's descriptor says.
    TamperedBlob {
        claimed: Digest,
        actual: Digest,
    },
    /// The pulled manifest is not the one the tag was signed for.
    ManifestMismatch {
        signed: Digest,
        pulled: Digest,
    },
    Registry(RegistryError),
    Engine(EngineError),
}

impl From<RegistryError> for VerifyError {
    fn from(e: RegistryError) -> VerifyError {
        VerifyError::Registry(e)
    }
}

impl std::fmt::Display for VerifyError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            VerifyError::MissingSignature(d) => write!(f, "no signature attached to {d}"),
            VerifyError::MalformedSignature => f.write_str("signature artifact malformed"),
            VerifyError::BadSignature(d) => write!(f, "signature does not verify over {d}"),
            VerifyError::StaleProof {
                proof_size,
                head_size,
            } => write!(
                f,
                "stale inclusion proof: minted at tree size {proof_size}, trusted head is {head_size}"
            ),
            VerifyError::NotInLog(d) => write!(f, "entry for {d} not proven in log"),
            VerifyError::TamperedBlob { claimed, actual } => {
                write!(f, "blob claims {claimed} but hashes to {actual}")
            }
            VerifyError::ManifestMismatch { signed, pulled } => {
                write!(f, "tag resolves to {pulled}, signature covers {signed}")
            }
            VerifyError::Registry(e) => write!(f, "registry: {e}"),
            VerifyError::Engine(e) => write!(f, "pull: {e}"),
        }
    }
}

impl std::error::Error for VerifyError {}

/// Check a signature artifact + log provenance against `trusted_head`.
/// `signature` is the artifact as attached (`pubkey ++ sig`); the log
/// entry is reconstructed as `manifest_digest ++ signature`.
pub fn verify_provenance(
    manifest_digest: Digest,
    signature: &[u8],
    proof: &InclusionProof,
    trusted_head: &TreeHead,
) -> Result<(), VerifyError> {
    if signature.len() <= PUBKEY_BYTES {
        return Err(VerifyError::MalformedSignature);
    }
    let public =
        PublicKey::from_bytes(&signature[..PUBKEY_BYTES]).ok_or(VerifyError::MalformedSignature)?;
    let sig =
        Signature::from_bytes(&signature[PUBKEY_BYTES..]).ok_or(VerifyError::MalformedSignature)?;
    if !wots::verify(&public, &manifest_digest, &sig) {
        return Err(VerifyError::BadSignature(manifest_digest));
    }
    // Staleness first: a proof from an older tree is a distinct, more
    // actionable failure than a generic path mismatch.
    if proof.tree_size != trusted_head.size {
        return Err(VerifyError::StaleProof {
            proof_size: proof.tree_size,
            head_size: trusted_head.size,
        });
    }
    let mut entry = manifest_digest.0.to_vec();
    entry.extend_from_slice(signature);
    if !verify_inclusion(trusted_head, &entry, proof) {
        return Err(VerifyError::NotInLog(manifest_digest));
    }
    Ok(())
}

/// Re-hash every part of a pulled image against its (already verified)
/// manifest. Catches tampered registries/mirrors that substitute bytes.
pub fn verify_pulled_content(manifest: &Manifest, pulled: &PulledImage) -> Result<(), VerifyError> {
    let config_actual = sha256(&pulled.config.to_bytes());
    if config_actual != manifest.config.digest {
        return Err(VerifyError::TamperedBlob {
            claimed: manifest.config.digest,
            actual: config_actual,
        });
    }
    for (desc, layer) in manifest.layers.iter().zip(pulled.layers.iter()) {
        let actual = sha256(&layer.to_bytes());
        if actual != desc.digest {
            return Err(VerifyError::TamperedBlob {
                claimed: desc.digest,
                actual,
            });
        }
    }
    Ok(())
}

/// Pull `repo:tag` through the normal engine path, then verify signature,
/// log inclusion against `trusted_head`, and blob content before handing
/// the image back.
pub fn verified_pull(
    engine: &Engine,
    registry: &Registry,
    repo: &str,
    tag: &str,
    proof: &InclusionProof,
    trusted_head: &TreeHead,
    clock: &SimClock,
) -> Result<PulledImage, VerifyError> {
    let signed_digest = registry.resolve_tag(repo, tag)?;
    let sigs = registry.signatures_of(&signed_digest)?;
    let sig_desc = sigs
        .first()
        .ok_or(VerifyError::MissingSignature(signed_digest))?;
    let (signature, done) = registry
        .pull_blob(&sig_desc.digest, clock.now())
        .map_err(VerifyError::Registry)?;
    clock.advance_to(done);

    let pulled = engine
        .pull(registry, repo, tag, clock)
        .map_err(VerifyError::Engine)?;
    let pulled_digest = pulled.manifest.digest();
    if pulled_digest != signed_digest {
        return Err(VerifyError::ManifestMismatch {
            signed: signed_digest,
            pulled: pulled_digest,
        });
    }
    verify_provenance(signed_digest, &signature, proof, trusted_head)?;
    verify_pulled_content(&pulled.manifest, &pulled)?;
    Ok(pulled)
}

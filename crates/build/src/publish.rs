//! Sign-on-push: WOTS signature, transparency-log inclusion, journalled
//! multi-tenant registry push.
//!
//! The publish path is the durability-critical half of the build plane,
//! so it follows the engine's intent-journal discipline: every blob the
//! push uploads is first staged under one `build.push` intent (WAL record
//! then pinned store insert), named crash points bracket each externally
//! visible action, and the crash matrix kills the process at every one of
//! them to prove recovery leaves no orphaned staged blobs and that a
//! resumed push converges — registry uploads are content-addressed, so
//! the retry dedups against whatever the first attempt landed.

use crate::service::BuildOutput;
use hpcc_crypto::sha256::{sha256, Digest};
use hpcc_crypto::translog::{InclusionProof, TransparencyLog, TreeHead};
use hpcc_crypto::wots::Keypair;
use hpcc_engine::engine::{Engine, EngineError};
use hpcc_oci::cas::Cas;
use hpcc_registry::registry::{Registry, RegistryError};
use hpcc_sim::faults::{FaultInjector, RetryCause, RetryPolicy};
use hpcc_sim::obs::Stage;
use hpcc_sim::resilience::CircuitBreaker;
use hpcc_sim::sym;
use hpcc_sim::{CrashInjector, Crashed, SimClock, SimSpan};
use hpcc_storage::journal::JournaledStore;
use std::sync::Arc;

/// WOTS signing cost (hash-chain walks dominate).
pub const SIGN_COST: SimSpan = SimSpan(2_000_000); // 2 ms
/// Transparency-log append + proof mint round trip.
pub const LOG_APPEND_COST: SimSpan = SimSpan(500_000); // 0.5 ms
/// Per-blob upload round-trip floor (HEAD + POST handshake).
pub const PUSH_RTT: SimSpan = SimSpan(400_000); // 0.4 ms
/// Upload bandwidth toward the registry.
pub const PUSH_BPS: u64 = 128 << 20;

/// Everything a verifier needs: the signed manifest plus its log
/// provenance, as minted at push time.
#[derive(Debug, Clone)]
pub struct SignedImage {
    pub repo: String,
    pub tag: String,
    pub manifest_digest: Digest,
    /// Signature artifact as attached to the registry:
    /// `pubkey (33 bytes) ++ signature`.
    pub signature: Vec<u8>,
    /// The transparency-log entry: `manifest digest ++ signature bytes`.
    pub log_entry: Vec<u8>,
    pub log_index: u64,
    /// Inclusion proof minted at append time. Valid against
    /// [`Self::head`] — and *only* that head: later appends make it
    /// stale, which is exactly what pull-side verification checks.
    pub proof: InclusionProof,
    /// The tree head the proof was minted against.
    pub head: TreeHead,
}

/// Errors out of sign-and-push.
#[derive(Debug)]
pub enum PublishError {
    /// Signing failed (engine lacks a signing cap, or the WOTS key ran
    /// out of one-time leaves).
    Sign(EngineError),
    /// The built blob vanished from the local image store.
    MissingLocalBlob(Digest),
    Registry(RegistryError),
    /// An armed crash point fired mid-push; the intent stays open for
    /// recovery.
    Crash(Crashed),
}

impl From<Crashed> for PublishError {
    fn from(c: Crashed) -> PublishError {
        PublishError::Crash(c)
    }
}

impl From<RegistryError> for PublishError {
    fn from(e: RegistryError) -> PublishError {
        PublishError::Registry(e)
    }
}

impl std::fmt::Display for PublishError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PublishError::Sign(e) => write!(f, "sign: {e}"),
            PublishError::MissingLocalBlob(d) => write!(f, "local blob missing: {d}"),
            PublishError::Registry(e) => write!(f, "registry: {e}"),
            PublishError::Crash(c) => write!(f, "{c}"),
        }
    }
}

impl std::error::Error for PublishError {}

/// Sign `output`'s manifest, append to the transparency log, and push the
/// image to `registry` under its tenant namespace. Blob uploads are
/// staged under a journalled `build.push` intent read back from `cas`
/// (the builder-local image store).
///
/// Idempotent on resume: content-addressed blob uploads dedup, the
/// manifest push re-tags the same digest, and an already-attached
/// signature artifact is detected and skipped (each resume does append a
/// fresh log entry — the log is append-only by design — and the returned
/// provenance always references the newest entry).
#[allow(clippy::too_many_arguments)]
pub fn sign_and_push(
    engine: &Engine,
    key: &mut Keypair,
    log: &mut TransparencyLog,
    registry: &Registry,
    output: &BuildOutput,
    cas: &Cas,
    journal: &JournaledStore,
    crash: &CrashInjector,
    clock: &SimClock,
) -> Result<SignedImage, PublishError> {
    let tracer = engine.tracer();
    let manifest = &output.image.manifest;
    let manifest_digest = manifest.digest();

    // ---- sign + log ------------------------------------------------
    let sign_span = tracer.begin(sym!("build.sign"), Stage::Request, clock.now());
    tracer.attr(
        sign_span,
        sym!("image"),
        format_args!("{}:{}", output.repo, output.tag),
    );
    let signature = engine
        .sign_manifest(manifest, key)
        .map_err(PublishError::Sign)?;
    clock.advance(SIGN_COST);
    let mut log_entry = manifest_digest.0.to_vec();
    log_entry.extend_from_slice(&signature);
    let log_index = log.append(&log_entry);
    let proof = log
        .prove_inclusion(log_index)
        .expect("just-appended entry proves");
    let head = log.head();
    clock.advance(LOG_APPEND_COST);
    tracer.attr(sign_span, sym!("log_index"), log_index);
    tracer.end(sign_span, clock.now());

    // ---- journalled push -------------------------------------------
    let push_span = tracer.begin(sym!("build.push"), Stage::Request, clock.now());
    tracer.attr(push_span, sym!("repo"), &output.repo);
    let result = push_locked(
        registry,
        output,
        cas,
        journal,
        crash,
        clock,
        &signature,
        manifest_digest,
    );
    match &result {
        Ok(()) => {}
        Err(e) => tracer.attr(push_span, sym!("error"), e),
    }
    if !matches!(result, Err(PublishError::Crash(_))) {
        // A crash never closes its span — the process is dead.
        tracer.end(push_span, clock.now());
    }
    result?;

    Ok(SignedImage {
        repo: output.repo.clone(),
        tag: output.tag.clone(),
        manifest_digest,
        signature,
        log_entry,
        log_index,
        proof,
        head,
    })
}

/// [`sign_and_push`] hardened for origin brownouts: the push is gated on
/// a per-registry [`CircuitBreaker`] and transient registry failures
/// (rate limits, 5xx, timeouts) are retried under `policy` with backoff
/// charged to the clock.
///
/// The breaker short-circuits with `Unavailable { status: 503 }` while
/// open, so a browned-out origin costs one probe per cooldown instead of
/// a full retry ladder per build. Only transient registry errors feed the
/// breaker; signing failures, missing local blobs, and armed crash points
/// propagate immediately without tripping it. Each retry attempt re-runs
/// the full sign-and-push, so (as with crash-recovery resumes) every
/// attempt appends a fresh transparency-log entry and the returned
/// provenance references the newest one — blob uploads dedup
/// content-addressed as usual.
#[allow(clippy::too_many_arguments)]
pub fn sign_and_push_resilient(
    engine: &Engine,
    key: &mut Keypair,
    log: &mut TransparencyLog,
    registry: &Registry,
    output: &BuildOutput,
    cas: &Cas,
    journal: &JournaledStore,
    crash: &CrashInjector,
    clock: &SimClock,
    faults: &FaultInjector,
    breaker: &CircuitBreaker,
    policy: &RetryPolicy,
) -> Result<SignedImage, PublishError> {
    if !breaker.allow(faults, crash, clock.now())? {
        faults
            .metrics()
            .incr(&format!("breaker.{}.push_rejected", breaker.name()));
        return Err(PublishError::Registry(RegistryError::Unavailable {
            status: 503,
        }));
    }
    let transient = |e: &PublishError| matches!(e, PublishError::Registry(r) if r.is_transient());
    let run = policy.run_clocked(
        faults,
        "build.push",
        Stage::Request,
        clock,
        transient,
        |_| {
            sign_and_push(
                engine, key, log, registry, output, cas, journal, crash, clock,
            )
        },
    );
    match run {
        Ok(ok) => {
            breaker.on_success(faults, clock.now());
            Ok(ok.value)
        }
        Err(err) => {
            if err.gave_up {
                breaker.on_failure(faults, clock.now());
            }
            match err.cause {
                RetryCause::Op(e) => Err(e),
                RetryCause::StageTimeout { limit, .. } => {
                    Err(PublishError::Registry(RegistryError::Timeout {
                        after: limit,
                    }))
                }
            }
        }
    }
}

#[allow(clippy::too_many_arguments)]
fn push_locked(
    registry: &Registry,
    output: &BuildOutput,
    cas: &Cas,
    journal: &JournaledStore,
    crash: &CrashInjector,
    clock: &SimClock,
    signature: &[u8],
    manifest_digest: Digest,
) -> Result<(), PublishError> {
    let manifest = &output.image.manifest;
    let intent = journal.begin(
        "build.push",
        &format!("{}:{}", output.repo, output.tag),
        clock.now(),
    )?;

    // Upload config + layers; abort the intent on registry rejection
    // (quota, unsupported artifact) so no staged blobs leak.
    let upload = (|| -> Result<(), PublishError> {
        for desc in std::iter::once(&manifest.config).chain(manifest.layers.iter()) {
            crash.crash_point("build.push.blob.pre", clock.now())?;
            let data = cas
                .get(&desc.digest)
                .map_err(|_| PublishError::MissingLocalBlob(desc.digest))?;
            journal.stage(
                intent,
                desc.digest,
                Arc::new(data.as_ref().clone()),
                clock.now(),
            )?;
            registry.admit_push(clock.now())?;
            if registry.has_blob(&desc.digest) {
                // Layer-dedup HEAD check: pay only the handshake.
                clock.advance(PUSH_RTT);
            } else {
                registry.push_blob(desc.media_type, desc.digest, data.as_ref().clone())?;
                clock.advance(
                    PUSH_RTT + SimSpan(desc.size.saturating_mul(1_000_000_000) / PUSH_BPS),
                );
            }
        }
        crash.crash_point("build.push.manifest.pre", clock.now())?;
        registry.admit_push(clock.now())?;
        registry.push_manifest(&output.repo, &output.tag, manifest)?;
        clock.advance(PUSH_RTT);

        // Attach the signature artifact unless a resume already did.
        let sig_digest = sha256(signature);
        let attached = registry
            .signatures_of(&manifest_digest)?
            .iter()
            .any(|d| d.digest == sig_digest);
        if !attached {
            registry.admit_push(clock.now())?;
            registry.attach_signature(manifest_digest, signature.to_vec())?;
            clock.advance(PUSH_RTT);
        }
        Ok(())
    })();

    match upload {
        Ok(()) => {
            crash.crash_point("build.push.commit.pre", clock.now())?;
            journal.commit(intent, clock.now())?;
            Ok(())
        }
        Err(PublishError::Crash(c)) => Err(PublishError::Crash(c)),
        Err(e) => {
            // Runtime failure (not a crash): roll the intent back so its
            // staged blobs are collected now.
            journal.abort(intent, clock.now())?;
            Err(e)
        }
    }
}

//! `hpcc-build` — the container-as-code build plane.
//!
//! Closes the survey's lifecycle loop: until now the repo only modelled
//! the *consume* side (images existed by fiat and were pulled). This
//! crate adds the produce side, in the shape SNIPPETS.md Snippet 1
//! (hpctainers' Dagger-style graphs) and the Sarus Suite describe:
//!
//! - [`spec`] — declarative [`BuildSpec`]s: base image + ordered
//!   fingerprintable steps (`run`/`copy`/`env`/`entrypoint` plus the
//!   HPC-specific `mpi_base`/`gpu_hook`).
//! - [`cache`] — a content-addressed [`BuildCache`] keyed by the
//!   (parent state, step fingerprint) hash chain, with layer bytes in
//!   the shared [`hpcc_storage::BlobStore`]: unchanged prefixes replay
//!   at metadata speed, identical steps dedup across tenants.
//! - [`service`] — [`build_fleet`] lowers N tenants × M specs onto one
//!   deterministic bounded-worker [`hpcc_sim::TaskGraph`] run.
//! - [`publish`] — [`sign_and_push`]: WOTS signature, transparency-log
//!   inclusion proof, journalled (crash-safe) push to the multi-tenant
//!   registry under namespace quota.
//! - [`verify`] — [`verified_pull`]: pull through the normal engine
//!   path, then reject bad signatures, stale log proofs and tampered
//!   blobs with typed errors.

pub mod cache;
pub mod publish;
pub mod service;
pub mod spec;
pub mod verify;

pub use cache::{BuildCache, BuildCacheStats};
pub use publish::{sign_and_push, sign_and_push_resilient, PublishError, SignedImage};
pub use service::{build_fleet, BuildError, BuildOutput, BuildRequest};
pub use spec::{BuildSpec, BuildStep, MpiFamily};
pub use verify::{verified_pull, verify_provenance, verify_pulled_content, VerifyError};

#[cfg(test)]
mod tests {
    use super::*;
    use hpcc_engine::engine::{Host, RunOptions};
    use hpcc_engine::engines;
    use hpcc_oci::cas::Cas;
    use hpcc_oci::layer;
    use hpcc_registry::registry::{Registry, RegistryCaps};
    use hpcc_sim::obs::Tracer;
    use hpcc_sim::{CrashInjector, SimClock};
    use hpcc_storage::journal::JournaledStore;
    use hpcc_storage::BlobStore;
    use hpcc_vfs::path::VPath;

    struct Stack {
        registry: Registry,
        engine: hpcc_engine::engine::Engine,
        cache: std::sync::Arc<BuildCache>,
        cas: Cas,
        journal: std::sync::Arc<JournaledStore>,
        crash: std::sync::Arc<CrashInjector>,
        log: hpcc_crypto::translog::TransparencyLog,
        key: hpcc_crypto::wots::Keypair,
        tracer: std::sync::Arc<Tracer>,
        clock: SimClock,
    }

    fn stack() -> Stack {
        let registry = Registry::new("site", RegistryCaps::open());
        registry.create_namespace("acme", None).unwrap();
        let engine = engines::podman_hpc();
        let tracer = Tracer::new();
        engine.set_tracer(std::sync::Arc::clone(&tracer));
        let store = BlobStore::node_local();
        let journal = JournaledStore::new(std::sync::Arc::clone(&store));
        let crash = CrashInjector::disabled();
        journal.set_crash_injector(std::sync::Arc::clone(&crash));
        Stack {
            registry,
            engine,
            cache: BuildCache::node_local(),
            cas: Cas::new(),
            journal,
            crash,
            log: hpcc_crypto::translog::TransparencyLog::new(),
            key: hpcc_crypto::wots::Keypair::generate(b"round-trip", 3),
            tracer,
            clock: SimClock::new(),
        }
    }

    fn app_spec() -> BuildSpec {
        BuildSpec::from_scratch("app")
            .run("base", &[("/usr/lib/libc.so", &[0xB0; 8192][..])])
            .mpi_base(MpiFamily::Mpich)
            .copy("/opt/app/run", b"#!py solver".to_vec())
            .env("OMP_NUM_THREADS", "8")
            .entrypoint(&["/opt/app/run"])
    }

    #[test]
    fn full_loop_build_sign_push_pull_run_byte_identical() {
        let mut s = stack();
        let reqs = vec![BuildRequest::new("acme", "solver", "v1", app_spec())];
        let outs = build_fleet(&reqs, 4, &s.cache, &s.cas, &s.tracer, &s.clock).unwrap();
        let out = &outs[0];

        let signed = sign_and_push(
            &s.engine,
            &mut s.key,
            &mut s.log,
            &s.registry,
            out,
            &s.cas,
            &s.journal,
            &s.crash,
            &s.clock,
        )
        .unwrap();
        assert!(s.journal.open_intents().is_empty(), "push intent committed");

        let pulled = verified_pull(
            &s.engine,
            &s.registry,
            "acme/solver",
            "v1",
            &signed.proof,
            &s.log.head(),
            &s.clock,
        )
        .unwrap();

        // Byte identity: the pulled layer stack flattens to the exact
        // tree the build produced.
        let root = layer::flatten(&pulled.layers).unwrap();
        assert_eq!(
            root.tree_digest(&VPath::parse("/")).unwrap(),
            out.root_digest,
            "pulled image is byte-identical to the build output"
        );

        // …and it runs through the normal engine path.
        let host = Host::compute_node();
        let prepared = s
            .engine
            .prepare(&pulled, 1000, &host, true, &s.clock)
            .unwrap();
        let report = s
            .engine
            .run(prepared, 1000, &host, RunOptions::default(), &s.clock)
            .unwrap();
        assert_eq!(report.container.exit_code, Some(0));
    }

    #[test]
    fn stale_proof_rejected_after_later_appends() {
        let mut s = stack();
        let reqs = vec![BuildRequest::new("acme", "solver", "v1", app_spec())];
        let outs = build_fleet(&reqs, 4, &s.cache, &s.cas, &s.tracer, &s.clock).unwrap();
        let signed = sign_and_push(
            &s.engine,
            &mut s.key,
            &mut s.log,
            &s.registry,
            &outs[0],
            &s.cas,
            &s.journal,
            &s.crash,
            &s.clock,
        )
        .unwrap();

        // The log moves on (another tenant publishes).
        s.log.append(b"later entry");
        let err = verified_pull(
            &s.engine,
            &s.registry,
            "acme/solver",
            "v1",
            &signed.proof,
            &s.log.head(),
            &s.clock,
        )
        .unwrap_err();
        match err {
            VerifyError::StaleProof {
                proof_size,
                head_size,
            } => {
                assert_eq!(proof_size, 1);
                assert_eq!(head_size, 2);
            }
            other => panic!("expected StaleProof, got {other}"),
        }
    }

    #[test]
    fn tampered_blob_rejected_with_typed_error() {
        let mut s = stack();
        let reqs = vec![BuildRequest::new("acme", "solver", "v1", app_spec())];
        let outs = build_fleet(&reqs, 4, &s.cache, &s.cas, &s.tracer, &s.clock).unwrap();
        let signed = sign_and_push(
            &s.engine,
            &mut s.key,
            &mut s.log,
            &s.registry,
            &outs[0],
            &s.cas,
            &s.journal,
            &s.crash,
            &s.clock,
        )
        .unwrap();

        let mut pulled = verified_pull(
            &s.engine,
            &s.registry,
            "acme/solver",
            "v1",
            &signed.proof,
            &s.log.head(),
            &s.clock,
        )
        .unwrap();
        // A hostile mirror swaps one layer's bytes post-transit.
        pulled.layers[0].push(hpcc_codec::archive::Entry::file("evil", b"p0wned".to_vec()));
        let err = verify_pulled_content(&pulled.manifest, &pulled).unwrap_err();
        assert!(
            matches!(err, VerifyError::TamperedBlob { .. }),
            "expected TamperedBlob, got {err}"
        );
    }

    #[test]
    fn wrong_key_signature_rejected() {
        let mut s = stack();
        let reqs = vec![BuildRequest::new("acme", "solver", "v1", app_spec())];
        let outs = build_fleet(&reqs, 4, &s.cache, &s.cas, &s.tracer, &s.clock).unwrap();
        let signed = sign_and_push(
            &s.engine,
            &mut s.key,
            &mut s.log,
            &s.registry,
            &outs[0],
            &s.cas,
            &s.journal,
            &s.crash,
            &s.clock,
        )
        .unwrap();

        // Splice a different key's public part onto the signature.
        let mallory = hpcc_crypto::wots::Keypair::generate(b"mallory", 3);
        let mut forged = mallory.public().to_bytes();
        forged.extend_from_slice(&signed.signature[33..]);
        let err = verify_provenance(
            signed.manifest_digest,
            &forged,
            &signed.proof,
            &s.log.head(),
        )
        .unwrap_err();
        assert!(matches!(err, VerifyError::BadSignature(_)), "got {err}");
    }

    #[test]
    fn push_respects_namespace_quota() {
        let mut s = stack();
        s.registry.create_namespace("tiny", Some(64)).unwrap();
        let reqs = vec![BuildRequest::new("tiny", "solver", "v1", app_spec())];
        let outs = build_fleet(&reqs, 4, &s.cache, &s.cas, &s.tracer, &s.clock).unwrap();
        let err = sign_and_push(
            &s.engine,
            &mut s.key,
            &mut s.log,
            &s.registry,
            &outs[0],
            &s.cas,
            &s.journal,
            &s.crash,
            &s.clock,
        )
        .unwrap_err();
        assert!(
            matches!(
                err,
                PublishError::Registry(
                    hpcc_registry::registry::RegistryError::QuotaExceeded { .. }
                )
            ),
            "got {err}"
        );
        assert!(
            s.journal.open_intents().is_empty(),
            "quota rejection rolls the intent back"
        );
        assert!(s.journal.orphaned_staged().is_empty());
    }

    /// Origin brownout: the registry frontend rejects uploads during
    /// `[ZERO, until)` with 503s.
    fn brownout_injector(until: hpcc_sim::SimSpan) -> std::sync::Arc<hpcc_sim::FaultInjector> {
        use hpcc_sim::{FaultKind, FaultRule, SimTime};
        std::sync::Arc::new(hpcc_sim::FaultInjector::new(
            7,
            vec![FaultRule::sticky(
                FaultKind::RegistryUnavailable,
                SimTime::ZERO,
                SimTime::ZERO + until,
            )],
        ))
    }

    #[test]
    fn brownout_push_fails_plain_but_recovers_with_resilience() {
        use hpcc_registry::registry::RegistryError;
        use hpcc_sim::resilience::{BreakerConfig, BreakerState, CircuitBreaker};
        use hpcc_sim::RetryPolicy;
        let mut s = stack();
        let reqs = vec![BuildRequest::new("acme", "solver", "v1", app_spec())];
        let outs = build_fleet(&reqs, 4, &s.cache, &s.cas, &s.tracer, &s.clock).unwrap();
        let faults = brownout_injector(hpcc_sim::SimSpan::secs(1));
        s.registry
            .set_fault_injector(std::sync::Arc::clone(&faults));

        // Without resilience the brownout kills the push outright (and
        // rolls its intent back).
        let err = sign_and_push(
            &s.engine,
            &mut s.key,
            &mut s.log,
            &s.registry,
            &outs[0],
            &s.cas,
            &s.journal,
            &s.crash,
            &s.clock,
        )
        .unwrap_err();
        assert!(
            matches!(
                err,
                PublishError::Registry(RegistryError::Unavailable { status: 503 })
            ),
            "got {err}"
        );
        assert!(s.journal.open_intents().is_empty());

        // The resilient path walks its backoff ladder past the brownout
        // window and lands the push without tripping the breaker.
        let breaker = CircuitBreaker::new("origin-push", BreakerConfig::default());
        let signed = sign_and_push_resilient(
            &s.engine,
            &mut s.key,
            &mut s.log,
            &s.registry,
            &outs[0],
            &s.cas,
            &s.journal,
            &s.crash,
            &s.clock,
            &faults,
            &breaker,
            &RetryPolicy::default(),
        )
        .unwrap();
        assert_eq!(
            s.registry.resolve_tag("acme/solver", "v1").unwrap(),
            signed.manifest_digest
        );
        assert!(s.journal.open_intents().is_empty());
        assert_eq!(breaker.state(), BreakerState::Closed);
        let m = faults.metrics();
        assert!(
            m.get("retry.build.push.recovered") >= 1,
            "must have retried"
        );
        assert!(m.get("retry.build.push.attempts") >= 2);
    }

    #[test]
    fn persistent_brownout_trips_breaker_then_probe_recovers() {
        use hpcc_registry::registry::RegistryError;
        use hpcc_sim::resilience::{BreakerConfig, BreakerState, CircuitBreaker};
        use hpcc_sim::{RetryPolicy, SimSpan};
        let mut s = stack();
        let reqs = vec![BuildRequest::new("acme", "solver", "v1", app_spec())];
        let outs = build_fleet(&reqs, 4, &s.cache, &s.cas, &s.tracer, &s.clock).unwrap();
        // Brownout outlives the whole (short) retry ladder.
        let faults = brownout_injector(SimSpan::secs(2));
        s.registry
            .set_fault_injector(std::sync::Arc::clone(&faults));
        let breaker = CircuitBreaker::new(
            "origin-push",
            BreakerConfig {
                failure_threshold: 1,
                ..BreakerConfig::default()
            },
        );
        let policy = RetryPolicy {
            max_attempts: 2,
            ..RetryPolicy::default()
        };
        let push = |s: &mut Stack| {
            sign_and_push_resilient(
                &s.engine,
                &mut s.key,
                &mut s.log,
                &s.registry,
                &outs[0],
                &s.cas,
                &s.journal,
                &s.crash,
                &s.clock,
                &faults,
                &breaker,
                &policy,
            )
        };

        // Exhausting the ladder feeds the breaker, which opens.
        let err = push(&mut s).unwrap_err();
        assert!(matches!(
            err,
            PublishError::Registry(RegistryError::Unavailable { .. })
        ));
        assert!(matches!(breaker.state(), BreakerState::Open { .. }));

        // While open, pushes short-circuit before touching the registry.
        let pushes_before = s.registry.stats().pushes;
        let attempts_before = faults.metrics().get("retry.build.push.attempts");
        let err = push(&mut s).unwrap_err();
        assert!(matches!(
            err,
            PublishError::Registry(RegistryError::Unavailable { status: 503 })
        ));
        assert_eq!(s.registry.stats().pushes, pushes_before);
        assert_eq!(
            faults.metrics().get("retry.build.push.attempts"),
            attempts_before,
            "short-circuit must not burn retry attempts"
        );
        assert_eq!(faults.metrics().get("breaker.origin-push.push_rejected"), 1);

        // After the cooldown (and the brownout healing) the half-open
        // probe lands the push and closes the breaker.
        s.clock.advance(SimSpan::secs(8));
        let signed = push(&mut s).expect("probe push succeeds after heal");
        assert_eq!(
            s.registry.resolve_tag("acme/solver", "v1").unwrap(),
            signed.manifest_digest
        );
        assert_eq!(breaker.state(), BreakerState::Closed);
    }
}

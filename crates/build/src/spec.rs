//! Declarative build specifications.
//!
//! A [`BuildSpec`] is the container-as-code frontend (SNIPPETS.md
//! Snippet 1, hpctainers' Dagger-style graphs): a base image plus an
//! ordered list of [`BuildStep`]s. Unlike [`hpcc_oci::builder::ImageBuilder`],
//! whose steps are opaque closures, every step here is plain data — which
//! is what makes it *fingerprintable*, and fingerprints are what the
//! content-addressed build cache keys on.
//!
//! Cache identity is a hash chain: `state[0]` seeds from the base image's
//! layer digests, and `state[i] = H(state[i-1] || fingerprint(step_i))`.
//! Two tenants that write the same bytes through the same step prefix
//! therefore share every prefix state digest — the cross-tenant dedup the
//! bench gates on — while any edit busts exactly the suffix after it.

use hpcc_codec::archive::Archive;
use hpcc_crypto::sha256::{sha256, Digest};
use hpcc_oci::builder::BuiltImage;
use hpcc_oci::image::ImageConfig;

/// MPI families a base step can target (Shifter's hook is MPICH-only —
/// the §4.1.6 axis the engines already model).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MpiFamily {
    Mpich,
    OpenMpi,
}

impl MpiFamily {
    pub fn name(self) -> &'static str {
        match self {
            MpiFamily::Mpich => "mpich",
            MpiFamily::OpenMpi => "openmpi",
        }
    }
}

/// One build step. `Run`/`Copy` and the HPC steps produce a filesystem
/// layer; `Env`/`Entrypoint` only mutate the image config (no layer, but
/// they still advance the cache chain, because step order matters to the
/// image identity exactly as it does in a Dockerfile).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BuildStep {
    /// A modelled command: `label` names it, `writes` is the (path,
    /// bytes) set the command deposits. Cost scales with bytes written.
    Run {
        label: String,
        writes: Vec<(String, Vec<u8>)>,
    },
    /// Copy one file from the build context into the image.
    Copy { dest: String, data: Vec<u8> },
    /// Set an environment variable (config-only).
    Env { key: String, value: String },
    /// Set the entrypoint argv (config-only).
    Entrypoint { argv: Vec<String> },
    /// Install the canonical MPI base for `family`: stub libmpi plus
    /// loader config, and export `MPI_HOME` (the ABI-compat replace
    /// mechanism every surveyed engine hooks).
    MpiBase { family: MpiFamily },
    /// Install the OCI GPU hook script and mark the image as GPU-ready.
    GpuHook,
}

impl BuildStep {
    /// Does this step produce a filesystem layer?
    pub fn produces_layer(&self) -> bool {
        !matches!(self, BuildStep::Env { .. } | BuildStep::Entrypoint { .. })
    }

    /// Short label for spans and task names.
    pub fn label(&self) -> String {
        match self {
            BuildStep::Run { label, .. } => format!("run:{label}"),
            BuildStep::Copy { dest, .. } => format!("copy:{dest}"),
            BuildStep::Env { key, .. } => format!("env:{key}"),
            BuildStep::Entrypoint { .. } => "entrypoint".to_string(),
            BuildStep::MpiBase { family } => format!("mpi_base:{}", family.name()),
            BuildStep::GpuHook => "gpu_hook".to_string(),
        }
    }

    /// The file writes this step performs, in deterministic order.
    /// Config-only steps write nothing.
    pub fn writes(&self) -> Vec<(String, Vec<u8>)> {
        match self {
            BuildStep::Run { writes, .. } => writes.clone(),
            BuildStep::Copy { dest, data } => vec![(dest.clone(), data.clone())],
            BuildStep::Env { .. } | BuildStep::Entrypoint { .. } => Vec::new(),
            BuildStep::MpiBase { family } => {
                let name = family.name();
                vec![
                    (
                        format!("/opt/mpi/{name}/lib/libmpi.so.12"),
                        vec![0xAB; 256 << 10],
                    ),
                    (
                        "/etc/ld.so.conf.d/mpi.conf".to_string(),
                        format!("/opt/mpi/{name}/lib\n").into_bytes(),
                    ),
                ]
            }
            BuildStep::GpuHook => vec![(
                "/opt/hooks/gpu/hook.sh".to_string(),
                b"#!/bin/sh\nexec ldconfig /usr/local/cuda/lib64\n".to_vec(),
            )],
        }
    }

    /// Mutate the image config the way this step's Dockerfile analogue
    /// would. Layer steps may also set config (e.g. `MpiBase` exports
    /// `MPI_HOME`).
    pub fn apply_config(&self, cfg: &mut ImageConfig) {
        match self {
            BuildStep::Env { key, value } => cfg.env.push(format!("{key}={value}")),
            BuildStep::Entrypoint { argv } => cfg.entrypoint = argv.clone(),
            BuildStep::MpiBase { family } => {
                cfg.env.push(format!("MPI_HOME=/opt/mpi/{}", family.name()));
            }
            BuildStep::GpuHook => {
                cfg.env.push("HPCC_GPU_HOOK=1".to_string());
                cfg.labels
                    .insert("org.hpcc.gpu".to_string(), "hook".to_string());
            }
            BuildStep::Run { .. } | BuildStep::Copy { .. } => {}
        }
    }

    /// Content fingerprint: a stable serialization of everything that
    /// affects the step's output. File contents hash individually so huge
    /// payloads don't force one giant buffer.
    pub fn fingerprint(&self) -> Digest {
        let mut buf: Vec<u8> = Vec::new();
        let put_str = |buf: &mut Vec<u8>, s: &str| {
            buf.extend_from_slice(&(s.len() as u64).to_le_bytes());
            buf.extend_from_slice(s.as_bytes());
        };
        match self {
            BuildStep::Run { label, writes } => {
                buf.push(1);
                put_str(&mut buf, label);
                buf.extend_from_slice(&(writes.len() as u64).to_le_bytes());
                for (path, data) in writes {
                    put_str(&mut buf, path);
                    buf.extend_from_slice(&sha256(data).0);
                }
            }
            BuildStep::Copy { dest, data } => {
                buf.push(2);
                put_str(&mut buf, dest);
                buf.extend_from_slice(&sha256(data).0);
            }
            BuildStep::Env { key, value } => {
                buf.push(3);
                put_str(&mut buf, key);
                put_str(&mut buf, value);
            }
            BuildStep::Entrypoint { argv } => {
                buf.push(4);
                buf.extend_from_slice(&(argv.len() as u64).to_le_bytes());
                for a in argv {
                    put_str(&mut buf, a);
                }
            }
            BuildStep::MpiBase { family } => {
                buf.push(5);
                put_str(&mut buf, family.name());
            }
            BuildStep::GpuHook => buf.push(6),
        }
        sha256(&buf)
    }
}

/// A named build: base image + ordered steps, fluent like the Snippet 1
/// container-as-code API.
#[derive(Debug, Clone)]
pub struct BuildSpec {
    pub name: String,
    pub(crate) base_layers: Vec<Archive>,
    pub(crate) base_config: ImageConfig,
    /// Chain seed: hashes the base layer digests so different bases never
    /// collide in the cache.
    pub(crate) base_id: Digest,
    pub steps: Vec<BuildStep>,
}

impl BuildSpec {
    /// Start from an empty root (`FROM scratch`).
    pub fn from_scratch(name: &str) -> BuildSpec {
        BuildSpec {
            name: name.to_string(),
            base_layers: Vec::new(),
            base_config: ImageConfig::default(),
            base_id: sha256(b"hpcc-build:scratch"),
            steps: Vec::new(),
        }
    }

    /// Start from an existing image (`FROM base`).
    pub fn from_image(name: &str, base: &BuiltImage) -> BuildSpec {
        let mut buf: Vec<u8> = b"hpcc-build:base".to_vec();
        for l in &base.layers {
            buf.extend_from_slice(&l.digest().0);
        }
        BuildSpec {
            name: name.to_string(),
            base_layers: base.layers.clone(),
            base_config: base.config.clone(),
            base_id: sha256(&buf),
            steps: Vec::new(),
        }
    }

    /// Add a modelled command writing `writes`.
    pub fn run(mut self, label: &str, writes: &[(&str, &[u8])]) -> Self {
        self.steps.push(BuildStep::Run {
            label: label.to_string(),
            writes: writes
                .iter()
                .map(|(p, d)| (p.to_string(), d.to_vec()))
                .collect(),
        });
        self
    }

    /// Copy one file into the image.
    pub fn copy(mut self, dest: &str, data: impl Into<Vec<u8>>) -> Self {
        self.steps.push(BuildStep::Copy {
            dest: dest.to_string(),
            data: data.into(),
        });
        self
    }

    /// Set an environment variable.
    pub fn env(mut self, key: &str, value: &str) -> Self {
        self.steps.push(BuildStep::Env {
            key: key.to_string(),
            value: value.to_string(),
        });
        self
    }

    /// Set the entrypoint argv.
    pub fn entrypoint(mut self, argv: &[&str]) -> Self {
        self.steps.push(BuildStep::Entrypoint {
            argv: argv.iter().map(|s| s.to_string()).collect(),
        });
        self
    }

    /// Install the canonical MPI base layer for `family`.
    pub fn mpi_base(mut self, family: MpiFamily) -> Self {
        self.steps.push(BuildStep::MpiBase { family });
        self
    }

    /// Install the GPU hook.
    pub fn gpu_hook(mut self) -> Self {
        self.steps.push(BuildStep::GpuHook);
        self
    }

    /// The cache-chain state digest after each step:
    /// `state[i] = H(state[i-1] || fingerprint(step_i))`, seeded by
    /// [`base_id`](Self::from_image).
    pub fn state_chain(&self) -> Vec<Digest> {
        let mut states = Vec::with_capacity(self.steps.len());
        let mut prev = self.base_id;
        for step in &self.steps {
            let mut buf = Vec::with_capacity(64);
            buf.extend_from_slice(&prev.0);
            buf.extend_from_slice(&step.fingerprint().0);
            prev = sha256(&buf);
            states.push(prev);
        }
        states
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fingerprints_differ_by_content() {
        let a = BuildStep::Run {
            label: "x".into(),
            writes: vec![("/a".into(), vec![1, 2, 3])],
        };
        let b = BuildStep::Run {
            label: "x".into(),
            writes: vec![("/a".into(), vec![1, 2, 4])],
        };
        assert_ne!(a.fingerprint(), b.fingerprint());
        assert_eq!(a.fingerprint(), a.clone().fingerprint());
    }

    #[test]
    fn chain_shares_prefix_busts_suffix() {
        let base = BuildSpec::from_scratch("a")
            .run("one", &[("/one", b"1")])
            .run("two", &[("/two", b"2")]);
        let edited = BuildSpec::from_scratch("b")
            .run("one", &[("/one", b"1")])
            .run("two", &[("/two", b"CHANGED")]);
        let sa = base.state_chain();
        let sb = edited.state_chain();
        assert_eq!(sa[0], sb[0], "identical prefix shares state");
        assert_ne!(sa[1], sb[1], "edit busts the suffix");
    }

    #[test]
    fn config_steps_advance_the_chain() {
        let a = BuildSpec::from_scratch("a")
            .env("A", "1")
            .run("one", &[("/one", b"1")]);
        let b = BuildSpec::from_scratch("b")
            .env("A", "2")
            .run("one", &[("/one", b"1")]);
        assert_ne!(
            a.state_chain()[1],
            b.state_chain()[1],
            "an env change upstream must bust downstream layer cache"
        );
    }
}

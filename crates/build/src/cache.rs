//! The content-addressed build cache.
//!
//! Keys are the [`BuildSpec::state_chain`](crate::spec::BuildSpec::state_chain)
//! digests — (parent state, step fingerprint) folded into one hash — and
//! values name the layer archive the step produced (or record that the
//! step was a filesystem no-op). Layer bytes themselves live in a shared
//! [`BlobStore`], which is exactly the dedup/refcount machinery the
//! pull path already uses: identical steps across tenants resolve to the
//! same blob, and eviction is the store's LRU problem, not ours. If the
//! store evicted a layer out from under an index entry, the lookup
//! degrades to a miss and the step simply re-runs.

use hpcc_codec::archive::Archive;
use hpcc_crypto::sha256::Digest;
use hpcc_storage::BlobStore;
use parking_lot::Mutex;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// What the cache remembers about one completed step.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum CachedStep {
    /// The step produced this layer blob (archive bytes in the store).
    Layer(Digest),
    /// The step ran but changed nothing (no layer).
    NoOp,
}

/// Counters for the bench gates and `build.cache` metrics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct BuildCacheStats {
    /// Lookups that returned a usable cached step.
    pub hits: u64,
    /// Lookups that missed (including index hits whose blob was evicted).
    pub misses: u64,
    /// Index entries currently held.
    pub entries: u64,
}

/// A build cache over a shared blob store. Cheap to clone the `Arc`;
/// share one instance across every tenant of a site to get cross-tenant
/// step dedup.
pub struct BuildCache {
    store: Arc<BlobStore>,
    index: Mutex<HashMap<Digest, CachedStep>>,
    hits: AtomicU64,
    misses: AtomicU64,
}

/// A cache lookup that hit.
#[derive(Debug, Clone)]
pub enum CachedLayer {
    /// The reconstructed layer archive, ready to apply.
    Layer(Archive),
    /// Cached knowledge that the step writes nothing.
    NoOp,
}

impl BuildCache {
    /// A cache over an existing (possibly shared) blob store.
    pub fn new(store: Arc<BlobStore>) -> Arc<BuildCache> {
        Arc::new(BuildCache {
            store,
            index: Mutex::new(HashMap::new()),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
        })
    }

    /// A cache over a fresh node-local store (tests, single-node builds).
    pub fn node_local() -> Arc<BuildCache> {
        BuildCache::new(BlobStore::node_local())
    }

    /// The backing store (shared with the pull path in full stacks).
    pub fn store(&self) -> &Arc<BlobStore> {
        &self.store
    }

    /// Look up the step keyed by chain `state`. `Some` is a hit — either
    /// the layer archive (fetched back out of the blob store) or the
    /// knowledge that the step is a no-op. `None` is a miss; the caller
    /// runs the step and [`insert`](Self::insert)s.
    pub fn lookup(&self, state: &Digest) -> Option<CachedLayer> {
        let cached = { self.index.lock().get(state).copied() };
        let out = match cached {
            Some(CachedStep::NoOp) => Some(CachedLayer::NoOp),
            Some(CachedStep::Layer(layer)) => match self.store.get(&layer) {
                Some(bytes) => Archive::from_bytes(&bytes).ok().map(CachedLayer::Layer),
                None => {
                    // Evicted under us: drop the dangling index entry.
                    self.index.lock().remove(state);
                    None
                }
            },
            None => None,
        };
        match &out {
            Some(_) => self.hits.fetch_add(1, Ordering::Relaxed),
            None => self.misses.fetch_add(1, Ordering::Relaxed),
        };
        out
    }

    /// Record a completed step. Layer bytes go into the shared store
    /// (insert pins, release immediately — resident as evictable cache),
    /// the index remembers which blob the state maps to.
    pub fn insert(&self, state: Digest, layer: Option<&Archive>) {
        let cached = match layer {
            Some(archive) => {
                let bytes = archive.to_bytes();
                let digest = archive.digest();
                self.store.insert(digest, Arc::new(bytes));
                self.store.release(&digest);
                CachedStep::Layer(digest)
            }
            None => CachedStep::NoOp,
        };
        self.index.lock().insert(state, cached);
    }

    pub fn stats(&self) -> BuildCacheStats {
        BuildCacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            entries: self.index.lock().len() as u64,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hpcc_codec::archive::Entry;
    use hpcc_crypto::sha256::sha256;

    fn layer() -> Archive {
        let mut a = Archive::new();
        a.push(Entry::file("x", vec![7u8; 64]));
        a
    }

    #[test]
    fn roundtrip_hit_and_stats() {
        let cache = BuildCache::node_local();
        let state = sha256(b"state");
        assert!(cache.lookup(&state).is_none());
        cache.insert(state, Some(&layer()));
        match cache.lookup(&state) {
            Some(CachedLayer::Layer(a)) => assert_eq!(a.digest(), layer().digest()),
            other => panic!("expected layer hit, got {other:?}"),
        }
        let stats = cache.stats();
        assert_eq!((stats.hits, stats.misses, stats.entries), (1, 1, 1));
    }

    #[test]
    fn noop_steps_cache_too() {
        let cache = BuildCache::node_local();
        let state = sha256(b"noop");
        cache.insert(state, None);
        assert!(matches!(cache.lookup(&state), Some(CachedLayer::NoOp)));
    }

    #[test]
    fn eviction_degrades_to_miss() {
        let cache = BuildCache::node_local();
        let state = sha256(b"evict");
        let l = layer();
        cache.insert(state, Some(&l));
        // Simulate LRU eviction of the backing blob.
        assert!(cache.store().remove_unpinned(&l.digest()));
        assert!(cache.lookup(&state).is_none(), "dangling entry is a miss");
        assert_eq!(cache.stats().entries, 0, "dangling entry dropped");
    }
}

//! Lowering build specs onto the bounded-worker DAG executor.
//!
//! Every [`BuildRequest`] becomes a linear chain of `build.step` tasks in
//! one shared [`TaskGraph`] — a fleet of N tenants × M builds is one
//! deterministic `Executor::run` over logical time, exactly the machinery
//! the pull→convert pipeline already rides. Each task probes the shared
//! [`BuildCache`] first: a hit replays the cached layer at metadata speed
//! (`CACHE_HIT_COST`), a miss executes the step (latency + bytes/bandwidth)
//! and populates the cache, so unchanged prefixes rebuild in ~zero logical
//! time and identical steps dedup across tenants.

use crate::cache::{BuildCache, CachedLayer};
use crate::spec::BuildSpec;
use hpcc_crypto::sha256::Digest;
use hpcc_oci::builder::BuiltImage;
use hpcc_oci::cas::Cas;
use hpcc_oci::image::{Descriptor, Manifest, MediaType};
use hpcc_oci::layer;
use hpcc_sim::obs::{Stage, Tracer};
use hpcc_sim::sym;
use hpcc_sim::{Executor, SimClock, SimSpan, SimTime, TaskFinish, TaskGraph};
use hpcc_vfs::fs::{FsError, MemFs};
use hpcc_vfs::path::VPath;
use parking_lot::Mutex;
use std::collections::BTreeMap;
use std::sync::Arc;

/// Fixed per-step process overhead of a cache miss (spawn, snapshot).
pub const STEP_LATENCY: SimSpan = SimSpan(2_000_000); // 2 ms
/// Write bandwidth a cold step's payload pays.
pub const STEP_WRITE_BPS: u64 = 256 << 20;
/// Probing the cache index (either outcome pays this).
pub const CACHE_PROBE_COST: SimSpan = SimSpan(10_000); // 10 µs
/// Replaying a cached layer: metadata-speed, the incremental-rebuild win.
pub const CACHE_HIT_COST: SimSpan = SimSpan(20_000); // 20 µs
/// Config-only steps (env/entrypoint) are bookkeeping.
pub const CONFIG_STEP_COST: SimSpan = SimSpan(5_000); // 5 µs

/// One tenant's build order: where the image goes once built.
#[derive(Debug, Clone)]
pub struct BuildRequest {
    /// Tenant name == registry namespace the push is charged to.
    pub tenant: String,
    /// Repository (must live under the tenant namespace, `tenant/name`).
    pub repo: String,
    pub tag: String,
    pub spec: BuildSpec,
}

impl BuildRequest {
    pub fn new(tenant: &str, name: &str, tag: &str, spec: BuildSpec) -> BuildRequest {
        BuildRequest {
            tenant: tenant.to_string(),
            repo: format!("{tenant}/{name}"),
            tag: tag.to_string(),
            spec,
        }
    }
}

/// A finished build, ready to sign and push.
#[derive(Debug)]
pub struct BuildOutput {
    pub tenant: String,
    pub repo: String,
    pub tag: String,
    pub image: BuiltImage,
    /// Tree digest of the flattened root — the byte-identity the
    /// round-trip test compares against the pulled image.
    pub root_digest: Digest,
    pub cache_hits: u64,
    pub cache_misses: u64,
    pub started: SimTime,
    pub finished: SimTime,
}

/// Errors out of the build plane.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BuildError {
    /// A step's filesystem effect failed (bad path, write over dir, …).
    Step {
        step: String,
        reason: String,
    },
    Fs(FsError),
}

impl From<FsError> for BuildError {
    fn from(e: FsError) -> BuildError {
        BuildError::Fs(e)
    }
}

impl std::fmt::Display for BuildError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            BuildError::Step { step, reason } => write!(f, "build step {step} failed: {reason}"),
            BuildError::Fs(e) => write!(f, "build filesystem: {e}"),
        }
    }
}

impl std::error::Error for BuildError {}

/// Mutable state threaded down one request's task chain.
struct ChainState {
    fs: MemFs,
    layers: Vec<hpcc_codec::archive::Archive>,
    config: hpcc_oci::image::ImageConfig,
    hits: u64,
    misses: u64,
}

fn span_nanos_for_bytes(bytes: u64, bps: u64) -> SimSpan {
    SimSpan(bytes.saturating_mul(1_000_000_000) / bps.max(1))
}

/// Build a whole fleet of requests on `workers` bounded workers, sharing
/// `cache` for cross-tenant step dedup. Finished images' blobs land in
/// `cas` (the builder-local image store the push stage reads from).
///
/// The executor's schedule — and therefore every span and cache hit/miss
/// count — is deterministic: ties break on (earliest-start, lowest task
/// id), and task bodies run in schedule order.
pub fn build_fleet(
    requests: &[BuildRequest],
    workers: usize,
    cache: &Arc<BuildCache>,
    cas: &Cas,
    tracer: &Arc<Tracer>,
    clock: &SimClock,
) -> Result<Vec<BuildOutput>, BuildError> {
    let start = clock.now();
    let mut graph: TaskGraph<'_, BuildError> = TaskGraph::new();
    let mut chains: Vec<Arc<Mutex<ChainState>>> = Vec::with_capacity(requests.len());
    let mut task_ranges: Vec<Vec<hpcc_sim::TaskId>> = Vec::with_capacity(requests.len());

    for req in requests {
        let base_fs = layer::flatten(&req.spec.base_layers)?;
        let chain = Arc::new(Mutex::new(ChainState {
            fs: base_fs,
            layers: req.spec.base_layers.clone(),
            config: req.spec.base_config.clone(),
            hits: 0,
            misses: 0,
        }));
        chains.push(Arc::clone(&chain));

        let states = req.spec.state_chain();
        let mut tids = Vec::with_capacity(req.spec.steps.len());
        for (i, step) in req.spec.steps.iter().enumerate() {
            let deps: Vec<hpcc_sim::TaskId> = tids.last().copied().into_iter().collect();
            let chain = Arc::clone(&chain);
            let cache = Arc::clone(cache);
            let tracer = Arc::clone(tracer);
            let step = step.clone();
            let state = states[i];
            let label = step.label();
            let tid = graph.add(sym!("build.step"), Stage::Convert, &deps, move |at| {
                let mut st = chain.lock();
                step.apply_config(&mut st.config);
                if !step.produces_layer() {
                    return Ok(TaskFinish::at(at + CONFIG_STEP_COST)
                        .attr("step", &label)
                        .attr("cache", "config"));
                }
                let probe_done = at + CACHE_PROBE_COST;
                match cache.lookup(&state) {
                    Some(cached) => {
                        let done = probe_done + CACHE_HIT_COST;
                        if let CachedLayer::Layer(archive) = cached {
                            layer::apply(&mut st.fs, &archive)?;
                            st.layers.push(archive);
                        }
                        st.hits += 1;
                        tracer.metrics().incr("build.cache.hit");
                        tracer.record(
                            sym!("build.cache"),
                            Stage::Cache,
                            at,
                            probe_done,
                            &[("result", "hit".into()), ("step", label.clone())],
                        );
                        Ok(TaskFinish::at(done)
                            .attr("step", &label)
                            .attr("cache", "hit"))
                    }
                    None => {
                        st.misses += 1;
                        tracer.metrics().incr("build.cache.miss");
                        tracer.record(
                            sym!("build.cache"),
                            Stage::Cache,
                            at,
                            probe_done,
                            &[("result", "miss".into()), ("step", label.clone())],
                        );
                        let before = st.fs.clone();
                        let mut bytes = 0u64;
                        for (path, data) in step.writes() {
                            bytes += data.len() as u64;
                            st.fs.write_p(&VPath::parse(&path), data).map_err(|e| {
                                BuildError::Step {
                                    step: label.clone(),
                                    reason: e.to_string(),
                                }
                            })?;
                        }
                        let delta = layer::diff(&before, &st.fs)?;
                        if delta.is_empty() {
                            cache.insert(state, None);
                        } else {
                            cache.insert(state, Some(&delta));
                            st.layers.push(delta);
                        }
                        let done =
                            probe_done + STEP_LATENCY + span_nanos_for_bytes(bytes, STEP_WRITE_BPS);
                        Ok(TaskFinish::at(done)
                            .attr("step", &label)
                            .attr("cache", "miss")
                            .attr("bytes", bytes))
                    }
                }
            });
            tids.push(tid);
        }
        task_ranges.push(tids);
    }

    let report = Executor::new(workers)
        .run(graph, start, tracer)
        .map_err(|e| e.error)?;
    clock.advance_to(report.end);

    let mut outputs = Vec::with_capacity(requests.len());
    for ((req, chain), tids) in requests.iter().zip(chains).zip(task_ranges) {
        let st = chain.lock();
        let root_digest = st.fs.tree_digest(&VPath::parse("/"))?;
        let image = assemble_image(&st.layers, st.config.clone(), cas);
        let (started, finished) = match (tids.first(), tids.last()) {
            (Some(a), Some(b)) => (report.started[a.0], report.finished[b.0]),
            _ => (start, start),
        };
        outputs.push(BuildOutput {
            tenant: req.tenant.clone(),
            repo: req.repo.clone(),
            tag: req.tag.clone(),
            image,
            root_digest,
            cache_hits: st.hits,
            cache_misses: st.misses,
            started,
            finished,
        });
    }
    Ok(outputs)
}

/// Store layers/config/manifest in `cas` and assemble the [`BuiltImage`]
/// (mirrors `ImageBuilder::build`'s tail, but over already-made layers).
fn assemble_image(
    layers: &[hpcc_codec::archive::Archive],
    config: hpcc_oci::image::ImageConfig,
    cas: &Cas,
) -> BuiltImage {
    for l in layers {
        cas.put(MediaType::Layer, l.to_bytes());
    }
    let config_desc = cas.put(MediaType::Config, config.to_bytes());
    let manifest = Manifest {
        config: config_desc,
        layers: layers
            .iter()
            .map(|l| {
                let bytes = l.to_bytes();
                Descriptor {
                    media_type: MediaType::Layer,
                    digest: l.digest(),
                    size: bytes.len() as u64,
                }
            })
            .collect(),
        annotations: BTreeMap::new(),
    };
    cas.put(MediaType::Manifest, manifest.to_bytes());
    BuiltImage {
        manifest,
        config,
        layers: layers.to_vec(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::MpiFamily;

    fn spec(tag: &str) -> BuildSpec {
        BuildSpec::from_scratch("app")
            .run("base", &[("/usr/lib/libc.so", &[0xB0; 4096][..])])
            .mpi_base(MpiFamily::Mpich)
            .copy("/opt/app/run", format!("binary-{tag}").into_bytes())
            .env("APP_MODE", "prod")
            .entrypoint(&["/opt/app/run"])
    }

    #[test]
    fn cold_then_warm_rebuild_hits_every_layer() {
        let cache = BuildCache::node_local();
        let cas = Cas::new();
        let tracer = Tracer::new();
        let clock = SimClock::new();
        let reqs = vec![BuildRequest::new("acme", "app", "v1", spec("a"))];

        let t0 = clock.now();
        let cold = build_fleet(&reqs, 4, &cache, &cas, &tracer, &clock).unwrap();
        let cold_span = clock.now().since(t0);
        assert_eq!(cold[0].cache_hits, 0);
        assert_eq!(cold[0].cache_misses, 3, "three layer steps miss cold");

        let t1 = clock.now();
        let warm = build_fleet(&reqs, 4, &cache, &cas, &tracer, &clock).unwrap();
        let warm_span = clock.now().since(t1);
        assert_eq!(warm[0].cache_misses, 0);
        assert_eq!(warm[0].cache_hits, 3, "every layer step replays warm");
        assert_eq!(
            warm[0].root_digest, cold[0].root_digest,
            "cache replay reproduces the exact root"
        );
        assert_eq!(
            warm[0].image.manifest.digest(),
            cold[0].image.manifest.digest()
        );
        assert!(
            warm_span.as_nanos() * 10 < cold_span.as_nanos(),
            "warm rebuild must be structurally faster: warm={warm_span:?} cold={cold_span:?}"
        );
    }

    #[test]
    fn shared_base_dedups_across_tenants() {
        let cache = BuildCache::node_local();
        let cas = Cas::new();
        let tracer = Tracer::new();
        let clock = SimClock::new();
        let reqs: Vec<BuildRequest> = (0..4)
            .map(|i| {
                let spec = BuildSpec::from_scratch("app")
                    .run("base", &[("/usr/lib/libc.so", &[0xB0; 4096][..])])
                    .mpi_base(MpiFamily::Mpich)
                    .copy("/opt/app/run", format!("tenant-{i}").into_bytes());
                BuildRequest::new(&format!("tenant{i}"), "app", "v1", spec)
            })
            .collect();
        let outs = build_fleet(&reqs, 8, &cache, &cas, &tracer, &clock).unwrap();
        let total_misses: u64 = outs.iter().map(|o| o.cache_misses).sum();
        // 2 shared base steps execute once; only the per-tenant leaf
        // misses everywhere.
        assert_eq!(total_misses, 2 + 4, "shared prefix executes once");
        // Distinct layer blobs: 2 shared + 4 leaves.
        let distinct: std::collections::BTreeSet<_> = outs
            .iter()
            .flat_map(|o| o.image.manifest.layers.iter().map(|d| d.digest))
            .collect();
        assert_eq!(distinct.len(), 6);
    }

    #[test]
    fn editing_a_step_busts_only_the_suffix() {
        let cache = BuildCache::node_local();
        let cas = Cas::new();
        let tracer = Tracer::new();
        let clock = SimClock::new();
        let v1 = vec![BuildRequest::new("acme", "app", "v1", spec("a"))];
        build_fleet(&v1, 4, &cache, &cas, &tracer, &clock).unwrap();
        // Same base+mpi prefix, new app binary.
        let v2 = vec![BuildRequest::new("acme", "app", "v2", spec("b"))];
        let outs = build_fleet(&v2, 4, &cache, &cas, &tracer, &clock).unwrap();
        assert_eq!(outs[0].cache_hits, 2, "unchanged prefix replays");
        assert_eq!(outs[0].cache_misses, 1, "edited leaf re-runs");
    }

    #[test]
    fn determinism_two_fleets_identical() {
        let run = || {
            let cache = BuildCache::node_local();
            let cas = Cas::new();
            let tracer = Tracer::new();
            let clock = SimClock::new();
            let reqs: Vec<BuildRequest> = (0..3)
                .map(|i| BuildRequest::new(&format!("t{i}"), "app", "v1", spec("x")))
                .collect();
            let outs = build_fleet(&reqs, 2, &cache, &cas, &tracer, &clock).unwrap();
            (
                clock.now(),
                outs.iter().map(|o| o.root_digest).collect::<Vec<_>>(),
                outs.iter()
                    .map(|o| (o.cache_hits, o.cache_misses))
                    .collect::<Vec<_>>(),
            )
        };
        assert_eq!(run(), run(), "double run is byte-identical");
    }
}

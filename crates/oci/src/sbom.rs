//! Software bill of materials and image scanning.
//!
//! §4.1.1 notes SBOMs as a differentiating (SingularityPro) feature and
//! §4.1.5 that sigstore/cosign can carry them; §3.2 concedes that even on
//! HPC systems "there are attack scenarios which may require scanning
//! images as due diligence". This module provides both: an SPDX-like
//! file-level SBOM generated from an image's flattened tree, and a
//! scanner matching component digests against an advisory database.

use crate::image::{Descriptor, MediaType};
use hpcc_codec::wire::{put_str, put_varint, Reader, WireError};
use hpcc_crypto::sha256::{sha256, Digest};
use hpcc_vfs::fs::{FileType, FsError, MemFs};
use hpcc_vfs::path::VPath;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// One component (file-level, SPDX style).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Component {
    /// Image-relative path.
    pub path: String,
    /// Content digest.
    pub digest: Digest,
    pub size: u64,
}

/// The bill of materials of one image.
#[derive(Debug, Clone, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct Sbom {
    /// Manifest digest of the image described.
    pub subject: Option<Digest>,
    pub components: Vec<Component>,
}

const MAGIC: &[u8; 4] = b"HSBM";

impl Sbom {
    /// Generate from a flattened image tree.
    pub fn generate(fs: &MemFs, subject: Option<Digest>) -> Result<Sbom, FsError> {
        let root = VPath::root();
        let mut components = Vec::new();
        for p in fs.walk(&root)? {
            let st = fs.lstat(&p)?;
            if st.kind != FileType::File {
                continue;
            }
            let data = fs.read(&p)?;
            components.push(Component {
                path: p.to_string().trim_start_matches('/').to_string(),
                digest: sha256(&data),
                size: data.len() as u64,
            });
        }
        Ok(Sbom {
            subject,
            components,
        })
    }

    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::new();
        out.extend_from_slice(MAGIC);
        match &self.subject {
            Some(d) => {
                out.push(1);
                out.extend_from_slice(&d.0);
            }
            None => out.push(0),
        }
        put_varint(&mut out, self.components.len() as u64);
        for c in &self.components {
            put_str(&mut out, &c.path);
            out.extend_from_slice(&c.digest.0);
            put_varint(&mut out, c.size);
        }
        out
    }

    pub fn from_bytes(data: &[u8]) -> Result<Sbom, WireError> {
        let mut r = Reader::new(data);
        if r.take(4)? != MAGIC {
            return Err(WireError::Truncated);
        }
        let subject = if r.u8()? == 1 {
            let mut d = [0u8; 32];
            d.copy_from_slice(r.take(32)?);
            Some(Digest(d))
        } else {
            None
        };
        let n = r.varint()? as usize;
        let mut components = Vec::with_capacity(n.min(65536));
        for _ in 0..n {
            let path = r.str()?.to_string();
            let mut d = [0u8; 32];
            d.copy_from_slice(r.take(32)?);
            components.push(Component {
                path,
                digest: Digest(d),
                size: r.varint()?,
            });
        }
        Ok(Sbom {
            subject,
            components,
        })
    }

    /// Its descriptor (for registry attachment).
    pub fn descriptor(&self) -> Descriptor {
        let bytes = self.to_bytes();
        Descriptor {
            media_type: MediaType::Sbom,
            digest: sha256(&bytes),
            size: bytes.len() as u64,
        }
    }

    /// Verify a tree against the SBOM: returns paths that changed,
    /// disappeared or appeared. Empty = exact match.
    pub fn audit(&self, fs: &MemFs) -> Result<Vec<String>, FsError> {
        let current = Sbom::generate(fs, None)?;
        let mut findings = Vec::new();
        let recorded: BTreeMap<&str, &Component> = self
            .components
            .iter()
            .map(|c| (c.path.as_str(), c))
            .collect();
        let present: BTreeMap<&str, &Component> = current
            .components
            .iter()
            .map(|c| (c.path.as_str(), c))
            .collect();
        for (path, c) in &recorded {
            match present.get(path) {
                Some(now) if now.digest == c.digest => {}
                Some(_) => findings.push(format!("modified: {path}")),
                None => findings.push(format!("removed: {path}")),
            }
        }
        for path in present.keys() {
            if !recorded.contains_key(path) {
                findings.push(format!("added: {path}"));
            }
        }
        findings.sort();
        Ok(findings)
    }
}

/// An advisory: a known-bad component digest.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Advisory {
    pub id: String,
    pub severity: Severity,
    pub affected: Digest,
    pub summary: String,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Serialize, Deserialize)]
pub enum Severity {
    Low,
    Medium,
    High,
    Critical,
}

/// The advisory database the scanner matches against.
#[derive(Debug, Clone, Default)]
pub struct VulnDb {
    by_digest: BTreeMap<Digest, Vec<Advisory>>,
}

impl VulnDb {
    pub fn new() -> VulnDb {
        VulnDb::default()
    }

    pub fn add(&mut self, advisory: Advisory) {
        self.by_digest
            .entry(advisory.affected)
            .or_default()
            .push(advisory);
    }

    pub fn len(&self) -> usize {
        self.by_digest.values().map(Vec::len).sum()
    }

    pub fn is_empty(&self) -> bool {
        self.by_digest.is_empty()
    }
}

/// A scan finding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    pub component: String,
    pub advisory: Advisory,
}

/// Scan an SBOM against the database; findings sorted most severe first.
pub fn scan(sbom: &Sbom, db: &VulnDb) -> Vec<Finding> {
    let mut findings = Vec::new();
    for c in &sbom.components {
        if let Some(advisories) = db.by_digest.get(&c.digest) {
            for a in advisories {
                findings.push(Finding {
                    component: c.path.clone(),
                    advisory: a.clone(),
                });
            }
        }
    }
    findings.sort_by(|a, b| {
        b.advisory
            .severity
            .cmp(&a.advisory.severity)
            .then(a.component.cmp(&b.component))
    });
    findings
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::samples;
    use crate::cas::Cas;

    fn image_fs() -> (MemFs, Digest) {
        let cas = Cas::new();
        let img = samples::base_os(&cas);
        (img.flatten().unwrap(), img.manifest.digest())
    }

    #[test]
    fn generate_lists_every_file() {
        let (fs, subject) = image_fs();
        let sbom = Sbom::generate(&fs, Some(subject)).unwrap();
        assert_eq!(sbom.components.len(), fs.file_count(&VPath::root()));
        assert!(sbom
            .components
            .iter()
            .any(|c| c.path == "usr/lib/libc.so.6"));
        assert_eq!(sbom.subject, Some(subject));
    }

    #[test]
    fn serialization_roundtrip() {
        let (fs, subject) = image_fs();
        let sbom = Sbom::generate(&fs, Some(subject)).unwrap();
        let parsed = Sbom::from_bytes(&sbom.to_bytes()).unwrap();
        assert_eq!(parsed, sbom);
        assert_eq!(parsed.descriptor().media_type, MediaType::Sbom);
    }

    #[test]
    fn audit_flags_drift() {
        let (mut fs, _) = image_fs();
        let sbom = Sbom::generate(&fs, None).unwrap();
        assert!(sbom.audit(&fs).unwrap().is_empty(), "pristine tree matches");
        fs.write_p(&VPath::parse("/usr/lib/libc.so.6"), b"trojaned".to_vec())
            .unwrap();
        fs.write_p(&VPath::parse("/tmp/implant"), vec![0xBD])
            .unwrap();
        fs.unlink(&VPath::parse("/etc/nsswitch.conf")).unwrap();
        let findings = sbom.audit(&fs).unwrap();
        assert_eq!(
            findings,
            vec![
                "added: tmp/implant",
                "modified: usr/lib/libc.so.6",
                "removed: etc/nsswitch.conf"
            ]
        );
    }

    #[test]
    fn scan_matches_known_bad_digests() {
        let (fs, _) = image_fs();
        let sbom = Sbom::generate(&fs, None).unwrap();
        let libc_digest = sbom
            .components
            .iter()
            .find(|c| c.path == "usr/lib/libc.so.6")
            .unwrap()
            .digest;
        let mut db = VulnDb::new();
        db.add(Advisory {
            id: "HPCC-2023-0001".into(),
            severity: Severity::Critical,
            affected: libc_digest,
            summary: "libc buffer overflow".into(),
        });
        db.add(Advisory {
            id: "HPCC-2023-0002".into(),
            severity: Severity::Low,
            affected: sha256(b"unrelated"),
            summary: "not present".into(),
        });
        let findings = scan(&sbom, &db);
        assert_eq!(findings.len(), 1);
        assert_eq!(findings[0].component, "usr/lib/libc.so.6");
        assert_eq!(findings[0].advisory.severity, Severity::Critical);
        assert_eq!(db.len(), 2);
    }

    #[test]
    fn findings_sorted_by_severity() {
        let (fs, _) = image_fs();
        let sbom = Sbom::generate(&fs, None).unwrap();
        let mut db = VulnDb::new();
        for (i, c) in sbom.components.iter().take(3).enumerate() {
            db.add(Advisory {
                id: format!("A-{i}"),
                severity: [Severity::Low, Severity::Critical, Severity::Medium][i],
                affected: c.digest,
                summary: String::new(),
            });
        }
        let findings = scan(&sbom, &db);
        assert_eq!(findings[0].advisory.severity, Severity::Critical);
        assert!(findings
            .windows(2)
            .all(|w| w[0].advisory.severity >= w[1].advisory.severity));
    }

    #[test]
    fn sbom_stores_content_addressed() {
        let (fs, subject) = image_fs();
        let sbom = Sbom::generate(&fs, Some(subject)).unwrap();
        let cas = Cas::new();
        let desc = cas.put(MediaType::Sbom, sbom.to_bytes());
        assert_eq!(desc.digest, sbom.descriptor().digest);
    }
}

//! Encrypted OCI layers — the ocicrypt direction of §7.
//!
//! "Registry-supported solutions for both [encryption and signing] are
//! being introduced in the cloud compute ecosystem via the Notary,
//! sigstore and ocicrypt projects." This module implements the ocicrypt
//! model: each layer blob is sealed with an AEAD (nonce derived from the
//! plaintext digest; the plaintext digest is the associated data, so a
//! ciphertext cannot be re-bound to another layer). The encrypted
//! manifest carries `enc.digest/<i>` annotations mapping encrypted layers
//! back to their plaintext digests for post-decryption verification.

use crate::cas::{Cas, CasError};
use crate::image::{Descriptor, Manifest, MediaType};
use hpcc_crypto::aead::{open, seal, AeadKey, Sealed};
use hpcc_crypto::sha256::{sha256, Digest};

/// Annotation prefix recording the plaintext digest of encrypted layer i.
pub const ENC_ANNOTATION: &str = "org.hpcc.enc.digest";
/// Annotation marking an encrypted manifest.
pub const ENC_MARKER: &str = "org.hpcc.encrypted";

/// Errors from layer encryption.
#[derive(Debug)]
pub enum EncError {
    Cas(CasError),
    /// The manifest is not marked encrypted / missing annotations.
    NotEncrypted,
    /// Already encrypted.
    AlreadyEncrypted,
    /// AEAD open failed (wrong key or tampered ciphertext).
    DecryptFailed(usize),
    /// Decrypted plaintext does not match the recorded digest.
    DigestMismatch(usize),
    /// Malformed sealed blob.
    Corrupt(usize),
}

impl From<CasError> for EncError {
    fn from(e: CasError) -> Self {
        EncError::Cas(e)
    }
}

impl std::fmt::Display for EncError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EncError::Cas(e) => write!(f, "cas: {e}"),
            EncError::NotEncrypted => f.write_str("manifest is not encrypted"),
            EncError::AlreadyEncrypted => f.write_str("manifest is already encrypted"),
            EncError::DecryptFailed(i) => write!(f, "layer {i}: decryption failed"),
            EncError::DigestMismatch(i) => write!(f, "layer {i}: plaintext digest mismatch"),
            EncError::Corrupt(i) => write!(f, "layer {i}: malformed sealed blob"),
        }
    }
}

impl std::error::Error for EncError {}

/// True if a manifest's layers are encrypted.
pub fn is_encrypted(manifest: &Manifest) -> bool {
    manifest.annotations.get(ENC_MARKER).map(String::as_str) == Some("true")
}

fn nonce_for(digest: &Digest) -> [u8; 12] {
    let mut nonce = [0u8; 12];
    nonce.copy_from_slice(&digest.0[..12]);
    nonce
}

/// Encrypt every layer of `manifest` (blobs read from and written to
/// `cas`), returning the encrypted manifest.
pub fn encrypt_layers(manifest: &Manifest, cas: &Cas, key: &AeadKey) -> Result<Manifest, EncError> {
    if is_encrypted(manifest) {
        return Err(EncError::AlreadyEncrypted);
    }
    let mut out = manifest.clone();
    out.annotations
        .insert(ENC_MARKER.to_string(), "true".to_string());
    for (i, layer) in manifest.layers.iter().enumerate() {
        let plain = cas.get(&layer.digest)?;
        let sealed = seal(
            key,
            nonce_for(&layer.digest),
            layer.digest.oci().as_bytes(),
            &plain,
        );
        let desc = cas.put(MediaType::Layer, sealed.to_bytes());
        out.layers[i] = Descriptor {
            media_type: MediaType::Layer,
            digest: desc.digest,
            size: desc.size,
        };
        out.annotations
            .insert(format!("{ENC_ANNOTATION}/{i}"), layer.digest.oci());
    }
    Ok(out)
}

/// Decrypt an encrypted manifest's layers, verifying each plaintext
/// against the recorded digest. Returns the restored plaintext manifest.
pub fn decrypt_layers(manifest: &Manifest, cas: &Cas, key: &AeadKey) -> Result<Manifest, EncError> {
    if !is_encrypted(manifest) {
        return Err(EncError::NotEncrypted);
    }
    let mut out = manifest.clone();
    out.annotations.remove(ENC_MARKER);
    for (i, layer) in manifest.layers.iter().enumerate() {
        let orig_oci = manifest
            .annotations
            .get(&format!("{ENC_ANNOTATION}/{i}"))
            .ok_or(EncError::NotEncrypted)?;
        let orig_digest = Digest::parse_oci(orig_oci).ok_or(EncError::Corrupt(i))?;
        let sealed_bytes = cas.get(&layer.digest)?;
        let sealed = Sealed::from_bytes(&sealed_bytes).ok_or(EncError::Corrupt(i))?;
        let plain =
            open(key, orig_oci.as_bytes(), &sealed).map_err(|_| EncError::DecryptFailed(i))?;
        if sha256(&plain) != orig_digest {
            return Err(EncError::DigestMismatch(i));
        }
        let size = plain.len() as u64;
        cas.put(MediaType::Layer, plain);
        out.layers[i] = Descriptor {
            media_type: MediaType::Layer,
            digest: orig_digest,
            size,
        };
        out.annotations.remove(&format!("{ENC_ANNOTATION}/{i}"));
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::samples;

    fn setup() -> (Cas, Manifest, AeadKey) {
        let cas = Cas::new();
        let img = samples::base_os(&cas);
        (cas, img.manifest, AeadKey::derive(b"layer-key"))
    }

    #[test]
    fn encrypt_decrypt_roundtrip_restores_manifest() {
        let (cas, manifest, key) = setup();
        let enc = encrypt_layers(&manifest, &cas, &key).unwrap();
        assert!(is_encrypted(&enc));
        assert_ne!(enc.layers[0].digest, manifest.layers[0].digest);
        let dec = decrypt_layers(&enc, &cas, &key).unwrap();
        assert_eq!(dec, manifest, "decryption restores the exact manifest");
    }

    #[test]
    fn wrong_key_fails() {
        let (cas, manifest, key) = setup();
        let enc = encrypt_layers(&manifest, &cas, &key).unwrap();
        let err = decrypt_layers(&enc, &cas, &AeadKey::derive(b"other")).unwrap_err();
        assert!(matches!(err, EncError::DecryptFailed(0)));
    }

    #[test]
    fn ciphertext_cannot_be_swapped_between_layers() {
        // AAD binding: moving layer 1's ciphertext into layer 0's slot
        // must fail even with the right key.
        let cas = Cas::new();
        let img = samples::mpi_solver(&cas); // 3 layers
        let key = AeadKey::derive(b"k");
        let enc = encrypt_layers(&img.manifest, &cas, &key).unwrap();
        let mut swapped = enc.clone();
        swapped.layers[0] = enc.layers[1];
        let err = decrypt_layers(&swapped, &cas, &key).unwrap_err();
        assert!(matches!(err, EncError::DecryptFailed(0)));
    }

    #[test]
    fn double_encrypt_and_plain_decrypt_rejected() {
        let (cas, manifest, key) = setup();
        let enc = encrypt_layers(&manifest, &cas, &key).unwrap();
        assert!(matches!(
            encrypt_layers(&enc, &cas, &key),
            Err(EncError::AlreadyEncrypted)
        ));
        assert!(matches!(
            decrypt_layers(&manifest, &cas, &key),
            Err(EncError::NotEncrypted)
        ));
    }

    #[test]
    fn encrypted_blobs_are_unreadable_archives() {
        let (cas, manifest, key) = setup();
        let enc = encrypt_layers(&manifest, &cas, &key).unwrap();
        let blob = cas.get(&enc.layers[0].digest).unwrap();
        assert!(hpcc_codec::archive::Archive::from_bytes(&blob).is_err());
    }

    #[test]
    fn config_stays_plaintext_like_ocicrypt() {
        // ocicrypt encrypts layers, not the config.
        let (cas, manifest, key) = setup();
        let enc = encrypt_layers(&manifest, &cas, &key).unwrap();
        assert_eq!(enc.config, manifest.config);
    }
}

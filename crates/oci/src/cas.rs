//! Content-addressable blob store.
//!
//! "Layer deduplication can be employed in registries and locally based on
//! equal hashes (content-addressable storage)" — Section 3.1. Every blob
//! (layer, config, manifest, squash image, SIF, signature) lives in a CAS
//! keyed by its SHA-256; putting the same bytes twice stores them once.
//! The dedup experiment (Q6) reads the logical-vs-stored accounting here.

use crate::image::{Descriptor, MediaType};
use hpcc_crypto::sha256::{sha256, Digest};
use parking_lot::RwLock;
use std::collections::HashMap;
use std::sync::Arc;

/// Statistics of a CAS.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CasStats {
    /// Distinct blobs stored.
    pub blobs: u64,
    /// Bytes actually stored (deduplicated).
    pub stored_bytes: u64,
    /// Bytes callers have pushed (counting duplicates).
    pub logical_bytes: u64,
    /// Number of put operations that hit an existing blob.
    pub dedup_hits: u64,
}

impl CasStats {
    /// Space saved by deduplication, as a fraction of logical bytes.
    pub fn savings(&self) -> f64 {
        if self.logical_bytes == 0 {
            0.0
        } else {
            1.0 - self.stored_bytes as f64 / self.logical_bytes as f64
        }
    }
}

/// Errors from CAS operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CasError {
    NotFound(Digest),
    /// The caller claimed a digest that does not match the bytes.
    DigestMismatch {
        claimed: Digest,
        actual: Digest,
    },
}

impl std::fmt::Display for CasError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CasError::NotFound(d) => write!(f, "blob {} not found", d.short()),
            CasError::DigestMismatch { claimed, actual } => write!(
                f,
                "digest mismatch: claimed {} actual {}",
                claimed.short(),
                actual.short()
            ),
        }
    }
}

impl std::error::Error for CasError {}

#[derive(Default)]
struct CasState {
    blobs: HashMap<Digest, (MediaType, Arc<Vec<u8>>)>,
    stats: CasStats,
}

/// Thread-safe content-addressable store.
#[derive(Default)]
pub struct Cas {
    state: RwLock<CasState>,
}

impl Cas {
    pub fn new() -> Cas {
        Cas::default()
    }

    /// Store bytes, returning their descriptor. Duplicate content is
    /// detected by digest and stored once.
    pub fn put(&self, media_type: MediaType, data: impl Into<Vec<u8>>) -> Descriptor {
        let data = data.into();
        let digest = sha256(&data);
        let size = data.len() as u64;
        let mut st = self.state.write();
        st.stats.logical_bytes += size;
        if let std::collections::hash_map::Entry::Vacant(e) = st.blobs.entry(digest) {
            e.insert((media_type, Arc::new(data)));
            st.stats.blobs += 1;
            st.stats.stored_bytes += size;
        } else {
            st.stats.dedup_hits += 1;
        }
        Descriptor {
            media_type,
            digest,
            size,
        }
    }

    /// Store bytes under a digest the caller claims; verified before
    /// acceptance (registries must never trust client digests).
    pub fn put_verified(
        &self,
        media_type: MediaType,
        claimed: Digest,
        data: impl Into<Vec<u8>>,
    ) -> Result<Descriptor, CasError> {
        let data = data.into();
        let actual = sha256(&data);
        if actual != claimed {
            return Err(CasError::DigestMismatch { claimed, actual });
        }
        Ok(self.put(media_type, data))
    }

    /// Fetch a blob.
    pub fn get(&self, digest: &Digest) -> Result<Arc<Vec<u8>>, CasError> {
        self.state
            .read()
            .blobs
            .get(digest)
            .map(|(_, d)| Arc::clone(d))
            .ok_or(CasError::NotFound(*digest))
    }

    /// Fetch a blob and its media type.
    pub fn get_with_type(&self, digest: &Digest) -> Result<(MediaType, Arc<Vec<u8>>), CasError> {
        self.state
            .read()
            .blobs
            .get(digest)
            .map(|(mt, d)| (*mt, Arc::clone(d)))
            .ok_or(CasError::NotFound(*digest))
    }

    /// True if the blob exists (registry HEAD requests).
    pub fn has(&self, digest: &Digest) -> bool {
        self.state.read().blobs.contains_key(digest)
    }

    /// Remove a blob (garbage collection).
    pub fn remove(&self, digest: &Digest) -> bool {
        let mut st = self.state.write();
        if let Some((_, data)) = st.blobs.remove(digest) {
            st.stats.blobs -= 1;
            st.stats.stored_bytes -= data.len() as u64;
            true
        } else {
            false
        }
    }

    /// Keep only blobs named in `live`; return the number collected.
    pub fn gc(&self, live: &dyn Fn(&Digest) -> bool) -> usize {
        let mut st = self.state.write();
        let dead: Vec<Digest> = st.blobs.keys().filter(|d| !live(d)).copied().collect();
        for d in &dead {
            if let Some((_, data)) = st.blobs.remove(d) {
                st.stats.blobs -= 1;
                st.stats.stored_bytes -= data.len() as u64;
            }
        }
        dead.len()
    }

    /// Current statistics snapshot.
    pub fn stats(&self) -> CasStats {
        self.state.read().stats
    }

    /// All digests currently stored (sorted for determinism).
    pub fn digests(&self) -> Vec<Digest> {
        let mut v: Vec<Digest> = self.state.read().blobs.keys().copied().collect();
        v.sort();
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn put_get_roundtrip() {
        let cas = Cas::new();
        let d = cas.put(MediaType::Layer, b"layer-bytes".to_vec());
        assert_eq!(&**cas.get(&d.digest).unwrap(), b"layer-bytes");
        assert_eq!(d.size, 11);
        assert!(cas.has(&d.digest));
    }

    #[test]
    fn duplicate_content_stored_once() {
        let cas = Cas::new();
        let a = cas.put(MediaType::Layer, vec![7u8; 1000]);
        let b = cas.put(MediaType::Layer, vec![7u8; 1000]);
        assert_eq!(a.digest, b.digest);
        let s = cas.stats();
        assert_eq!(s.blobs, 1);
        assert_eq!(s.stored_bytes, 1000);
        assert_eq!(s.logical_bytes, 2000);
        assert_eq!(s.dedup_hits, 1);
        assert!((s.savings() - 0.5).abs() < 1e-9);
    }

    #[test]
    fn verified_put_rejects_wrong_digest() {
        let cas = Cas::new();
        let wrong = sha256(b"something else");
        let err = cas
            .put_verified(MediaType::Layer, wrong, b"real bytes".to_vec())
            .unwrap_err();
        assert!(matches!(err, CasError::DigestMismatch { .. }));
        assert_eq!(cas.stats().blobs, 0);
    }

    #[test]
    fn verified_put_accepts_right_digest() {
        let cas = Cas::new();
        let d = sha256(b"real bytes");
        let desc = cas
            .put_verified(MediaType::Layer, d, b"real bytes".to_vec())
            .unwrap();
        assert_eq!(desc.digest, d);
    }

    #[test]
    fn missing_blob_errors() {
        let cas = Cas::new();
        let d = sha256(b"missing");
        assert!(matches!(cas.get(&d), Err(CasError::NotFound(_))));
        assert!(!cas.has(&d));
    }

    #[test]
    fn media_type_preserved() {
        let cas = Cas::new();
        let d = cas.put(MediaType::Sif, b"sif".to_vec());
        let (mt, _) = cas.get_with_type(&d.digest).unwrap();
        assert_eq!(mt, MediaType::Sif);
    }

    #[test]
    fn remove_and_gc() {
        let cas = Cas::new();
        let keep = cas.put(MediaType::Layer, b"keep".to_vec());
        let drop1 = cas.put(MediaType::Layer, b"drop1".to_vec());
        let drop2 = cas.put(MediaType::Layer, b"drop2".to_vec());
        assert!(cas.remove(&drop1.digest));
        assert!(!cas.remove(&drop1.digest), "second remove is a no-op");
        let collected = cas.gc(&|d| *d == keep.digest);
        assert_eq!(collected, 1);
        assert!(cas.has(&keep.digest));
        assert!(!cas.has(&drop2.digest));
        assert_eq!(cas.stats().blobs, 1);
    }

    #[test]
    fn digests_sorted() {
        let cas = Cas::new();
        cas.put(MediaType::Layer, b"a".to_vec());
        cas.put(MediaType::Layer, b"b".to_vec());
        cas.put(MediaType::Layer, b"c".to_vec());
        let ds = cas.digests();
        assert_eq!(ds.len(), 3);
        assert!(ds.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn concurrent_puts_dedup() {
        let cas = Arc::new(Cas::new());
        let threads: Vec<_> = (0..8)
            .map(|_| {
                let cas = Arc::clone(&cas);
                std::thread::spawn(move || {
                    for i in 0..100u32 {
                        cas.put(MediaType::Layer, i.to_be_bytes().to_vec());
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        let s = cas.stats();
        assert_eq!(s.blobs, 100);
        assert_eq!(s.logical_bytes, 8 * 100 * 4);
        assert_eq!(s.stored_bytes, 100 * 4);
    }
}

//! # hpcc-oci
//!
//! The OCI image model the whole testbed shares:
//!
//! * [`mod@reference`] — `registry/repo:tag@digest` parsing with Docker-style
//!   defaulting.
//! * [`image`] — descriptors, manifests and image configs with
//!   deterministic, content-addressable serialization.
//! * [`cas`] — the content-addressable blob store with dedup accounting
//!   (Section 3.1's layer deduplication).
//! * [`layer`] — filesystem diffing into changesets and changeset
//!   application with OCI whiteout/opaque semantics.
//! * [`builder`] — the Dockerfile analogue: base image + mutation steps →
//!   layers, plus the sample image family the experiments use.
//! * [`spec`] — the runtime spec (namespaces, id mappings, mounts,
//!   resources, hook references) consumed by `hpcc-runtime`.
//! * [`hooks`] — executable OCI lifecycle hooks (§4.1.3), the extension
//!   point engines use for GPU/library/WLM integration.

pub mod builder;
pub mod cas;
pub mod encryption;
pub mod hooks;
pub mod image;
pub mod layer;
pub mod reference;
pub mod sbom;
pub mod spec;

pub use builder::{BuildError, BuiltImage, ImageBuilder};
pub use cas::{Cas, CasError, CasStats};
pub use encryption::{decrypt_layers, encrypt_layers, is_encrypted, EncError};
pub use hooks::{HookContext, HookError, HookRegistry};
pub use image::{Descriptor, ImageConfig, Manifest, MediaType};
pub use reference::{ImageRef, RefError, DEFAULT_REGISTRY, DEFAULT_TAG};
pub use sbom::{scan, Advisory, Component, Finding, Sbom, Severity, VulnDb};
pub use spec::{
    HookRef, HookStage, IdMapping, Mount, MountKind, Namespace, ProcessSpec, Resources, RuntimeSpec,
};

//! OCI image structures: descriptors, manifests and image configs.
//!
//! Serialization is deterministic (our wire format with sorted maps), so
//! manifests are content-addressable exactly like real OCI JSON manifests
//! are — the digests drive registry storage, signing and caching.

use hpcc_codec::wire::{put_str, put_varint, Reader, WireError};
use hpcc_crypto::sha256::{sha256, Digest};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Media types of blobs a registry can hold.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum MediaType {
    /// Image manifest.
    Manifest,
    /// Image config (env/entrypoint/...).
    Config,
    /// Filesystem layer (archive, possibly compressed).
    Layer,
    /// Flattened single-file image (SquashFS analogue; the eStargz/EroFS
    /// discussion of Section 7 lands here too).
    SquashImage,
    /// Singularity SIF image.
    Sif,
    /// Detached signature (cosign-style).
    Signature,
    /// Software bill of materials.
    Sbom,
    /// Helm-chart-like structured artifact.
    HelmChart,
    /// Arbitrary user-defined OCI artifact.
    UserDefined,
}

impl MediaType {
    pub fn id(self) -> u8 {
        match self {
            MediaType::Manifest => 0,
            MediaType::Config => 1,
            MediaType::Layer => 2,
            MediaType::SquashImage => 3,
            MediaType::Sif => 4,
            MediaType::Signature => 5,
            MediaType::Sbom => 6,
            MediaType::HelmChart => 7,
            MediaType::UserDefined => 8,
        }
    }

    pub fn from_id(id: u8) -> Option<MediaType> {
        Some(match id {
            0 => MediaType::Manifest,
            1 => MediaType::Config,
            2 => MediaType::Layer,
            3 => MediaType::SquashImage,
            4 => MediaType::Sif,
            5 => MediaType::Signature,
            6 => MediaType::Sbom,
            7 => MediaType::HelmChart,
            8 => MediaType::UserDefined,
            _ => return None,
        })
    }
}

/// A content descriptor: type + digest + size.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Descriptor {
    pub media_type: MediaType,
    pub digest: Digest,
    pub size: u64,
}

/// Errors from manifest/config decoding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ImageError {
    Wire(WireError),
    BadMagic,
    BadMediaType(u8),
}

impl From<WireError> for ImageError {
    fn from(e: WireError) -> ImageError {
        ImageError::Wire(e)
    }
}

impl std::fmt::Display for ImageError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ImageError::Wire(e) => write!(f, "wire: {e}"),
            ImageError::BadMagic => f.write_str("not a manifest/config"),
            ImageError::BadMediaType(t) => write!(f, "unknown media type {t}"),
        }
    }
}

impl std::error::Error for ImageError {}

fn put_descriptor(buf: &mut Vec<u8>, d: &Descriptor) {
    buf.push(d.media_type.id());
    buf.extend_from_slice(&d.digest.0);
    put_varint(buf, d.size);
}

fn read_descriptor(r: &mut Reader<'_>) -> Result<Descriptor, ImageError> {
    let mt = r.u8()?;
    let media_type = MediaType::from_id(mt).ok_or(ImageError::BadMediaType(mt))?;
    let mut digest = [0u8; 32];
    digest.copy_from_slice(r.take(32)?);
    let size = r.varint()?;
    Ok(Descriptor {
        media_type,
        digest: Digest(digest),
        size,
    })
}

/// An image manifest: config + ordered layers + annotations.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Manifest {
    pub config: Descriptor,
    /// Layers bottom-first (base layer first), like OCI.
    pub layers: Vec<Descriptor>,
    pub annotations: BTreeMap<String, String>,
}

const MANIFEST_MAGIC: &[u8; 4] = b"HMAN";

impl Manifest {
    /// Deterministic serialization.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::new();
        out.extend_from_slice(MANIFEST_MAGIC);
        put_descriptor(&mut out, &self.config);
        put_varint(&mut out, self.layers.len() as u64);
        for l in &self.layers {
            put_descriptor(&mut out, l);
        }
        put_varint(&mut out, self.annotations.len() as u64);
        for (k, v) in &self.annotations {
            put_str(&mut out, k);
            put_str(&mut out, v);
        }
        out
    }

    pub fn from_bytes(data: &[u8]) -> Result<Manifest, ImageError> {
        let mut r = Reader::new(data);
        if r.take(4)? != MANIFEST_MAGIC {
            return Err(ImageError::BadMagic);
        }
        let config = read_descriptor(&mut r)?;
        let n = r.varint()? as usize;
        let mut layers = Vec::with_capacity(n.min(1024));
        for _ in 0..n {
            layers.push(read_descriptor(&mut r)?);
        }
        let na = r.varint()? as usize;
        let mut annotations = BTreeMap::new();
        for _ in 0..na {
            let k = r.str()?.to_string();
            let v = r.str()?.to_string();
            annotations.insert(k, v);
        }
        Ok(Manifest {
            config,
            layers,
            annotations,
        })
    }

    /// The manifest's own digest (what tags point at).
    pub fn digest(&self) -> Digest {
        sha256(&self.to_bytes())
    }

    /// Its descriptor.
    pub fn descriptor(&self) -> Descriptor {
        let bytes = self.to_bytes();
        Descriptor {
            media_type: MediaType::Manifest,
            digest: sha256(&bytes),
            size: bytes.len() as u64,
        }
    }

    /// Total compressed size of all layers.
    pub fn total_layer_size(&self) -> u64 {
        self.layers.iter().map(|l| l.size).sum()
    }
}

/// The runnable configuration of an image.
#[derive(Debug, Clone, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct ImageConfig {
    /// Environment as KEY=VALUE pairs.
    pub env: Vec<String>,
    /// Entrypoint argv prefix.
    pub entrypoint: Vec<String>,
    /// Default command argv.
    pub cmd: Vec<String>,
    /// Working directory.
    pub working_dir: String,
    /// User the process expects to run as ("" = root).
    pub user: String,
    /// Ports the containerized service binds (HPC engines without a
    /// network namespace can't isolate these — a Table 1 OCI-compat item).
    pub exposed_ports: Vec<u16>,
    /// Target architecture the image was built for (the §3.2
    /// "optimized for a target architecture" portability concern).
    pub architecture: String,
    /// Free-form labels.
    pub labels: BTreeMap<String, String>,
}

const CONFIG_MAGIC: &[u8; 4] = b"HCFG";

impl ImageConfig {
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::new();
        out.extend_from_slice(CONFIG_MAGIC);
        let put_list = |out: &mut Vec<u8>, items: &[String]| {
            put_varint(out, items.len() as u64);
            for s in items {
                put_str(out, s);
            }
        };
        put_list(&mut out, &self.env);
        put_list(&mut out, &self.entrypoint);
        put_list(&mut out, &self.cmd);
        put_str(&mut out, &self.working_dir);
        put_str(&mut out, &self.user);
        put_varint(&mut out, self.exposed_ports.len() as u64);
        for p in &self.exposed_ports {
            put_varint(&mut out, *p as u64);
        }
        put_str(&mut out, &self.architecture);
        put_varint(&mut out, self.labels.len() as u64);
        for (k, v) in &self.labels {
            put_str(&mut out, k);
            put_str(&mut out, v);
        }
        out
    }

    pub fn from_bytes(data: &[u8]) -> Result<ImageConfig, ImageError> {
        let mut r = Reader::new(data);
        if r.take(4)? != CONFIG_MAGIC {
            return Err(ImageError::BadMagic);
        }
        let read_list = |r: &mut Reader<'_>| -> Result<Vec<String>, ImageError> {
            let n = r.varint()? as usize;
            let mut out = Vec::with_capacity(n.min(256));
            for _ in 0..n {
                out.push(r.str()?.to_string());
            }
            Ok(out)
        };
        let env = read_list(&mut r)?;
        let entrypoint = read_list(&mut r)?;
        let cmd = read_list(&mut r)?;
        let working_dir = r.str()?.to_string();
        let user = r.str()?.to_string();
        let np = r.varint()? as usize;
        let mut exposed_ports = Vec::with_capacity(np.min(64));
        for _ in 0..np {
            exposed_ports.push(r.varint()? as u16);
        }
        let architecture = r.str()?.to_string();
        let nl = r.varint()? as usize;
        let mut labels = BTreeMap::new();
        for _ in 0..nl {
            let k = r.str()?.to_string();
            let v = r.str()?.to_string();
            labels.insert(k, v);
        }
        Ok(ImageConfig {
            env,
            entrypoint,
            cmd,
            working_dir,
            user,
            exposed_ports,
            architecture,
            labels,
        })
    }

    pub fn descriptor(&self) -> Descriptor {
        let bytes = self.to_bytes();
        Descriptor {
            media_type: MediaType::Config,
            digest: sha256(&bytes),
            size: bytes.len() as u64,
        }
    }

    /// The full argv: entrypoint ++ cmd.
    pub fn argv(&self) -> Vec<String> {
        self.entrypoint
            .iter()
            .chain(self.cmd.iter())
            .cloned()
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn desc(tag: u8, mt: MediaType) -> Descriptor {
        Descriptor {
            media_type: mt,
            digest: sha256(&[tag]),
            size: tag as u64 * 100,
        }
    }

    fn manifest() -> Manifest {
        Manifest {
            config: desc(0, MediaType::Config),
            layers: vec![desc(1, MediaType::Layer), desc(2, MediaType::Layer)],
            annotations: [("org.opencontainers.ref".to_string(), "x".to_string())]
                .into_iter()
                .collect(),
        }
    }

    #[test]
    fn manifest_roundtrip() {
        let m = manifest();
        assert_eq!(Manifest::from_bytes(&m.to_bytes()).unwrap(), m);
    }

    #[test]
    fn manifest_digest_stable_and_sensitive() {
        let m = manifest();
        assert_eq!(m.digest(), manifest().digest());
        let mut m2 = manifest();
        m2.layers.pop();
        assert_ne!(m.digest(), m2.digest());
        assert_eq!(m.descriptor().media_type, MediaType::Manifest);
    }

    #[test]
    fn layer_size_totalled() {
        assert_eq!(manifest().total_layer_size(), 300);
    }

    #[test]
    fn config_roundtrip() {
        let c = ImageConfig {
            env: vec!["PATH=/usr/bin".into(), "LANG=C".into()],
            entrypoint: vec!["/opt/app/run".into()],
            cmd: vec!["--help".into()],
            working_dir: "/work".into(),
            user: "1000:100".into(),
            exposed_ports: vec![8080, 9090],
            architecture: "x86_64-v3".into(),
            labels: [("a".to_string(), "b".to_string())].into_iter().collect(),
        };
        let back = ImageConfig::from_bytes(&c.to_bytes()).unwrap();
        assert_eq!(back, c);
        assert_eq!(back.argv(), vec!["/opt/app/run", "--help"]);
    }

    #[test]
    fn default_config_is_empty() {
        let c = ImageConfig::default();
        assert!(c.argv().is_empty());
        assert_eq!(ImageConfig::from_bytes(&c.to_bytes()).unwrap(), c);
    }

    #[test]
    fn bad_magic_rejected() {
        assert_eq!(Manifest::from_bytes(b"XXXXrest"), Err(ImageError::BadMagic));
        assert_eq!(
            ImageConfig::from_bytes(b"XXXXrest"),
            Err(ImageError::BadMagic)
        );
    }

    #[test]
    fn bad_media_type_rejected() {
        let m = manifest();
        let mut bytes = m.to_bytes();
        bytes[4] = 99; // config descriptor's media type byte
        assert_eq!(
            Manifest::from_bytes(&bytes),
            Err(ImageError::BadMediaType(99))
        );
    }

    #[test]
    fn media_type_id_roundtrip() {
        for id in 0..=8u8 {
            let mt = MediaType::from_id(id).unwrap();
            assert_eq!(mt.id(), id);
        }
        assert_eq!(MediaType::from_id(9), None);
    }
}

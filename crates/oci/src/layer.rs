//! Layer semantics: diffing filesystems into changesets and applying
//! changesets with OCI whiteout rules.
//!
//! "A layer captures changes in the filesystem compared to the previous
//! layer, and is identified by a hash calculated from the data in that
//! layer" — Section 3.1. A layer here is a [`hpcc_codec::Archive`] whose
//! whiteout/opaque entries are first-class (no `.wh.` string matching).

use hpcc_codec::archive::{Archive, Entry, EntryKind};
use hpcc_vfs::fs::{FileType, FsError, MemFs, Meta};
use hpcc_vfs::path::VPath;

/// Compute the changeset that turns `base` into `target` (both full
/// filesystem trees): additions, modifications, and whiteouts for
/// removals. Entries are emitted in sorted path order so the layer digest
/// is deterministic.
pub fn diff(base: &MemFs, target: &MemFs) -> Result<Archive, FsError> {
    let root = VPath::root();
    let mut layer = Archive::new();

    let base_paths = base.walk(&root)?;
    let target_paths = target.walk(&root)?;

    // Removals → whiteouts. A removed directory produces one whiteout for
    // the directory itself (covering its subtree), so skip descendants of
    // already-whited-out paths.
    let mut whiteouts: Vec<VPath> = Vec::new();
    for p in &base_paths {
        if target.lstat(p).is_ok() {
            continue;
        }
        if whiteouts.iter().any(|w| p.starts_with(w) && p != w) {
            continue;
        }
        whiteouts.push(p.clone());
    }
    // Additions / modifications.
    let mut changes: Vec<&VPath> = Vec::new();
    for p in &target_paths {
        let t = target.lstat(p)?;
        match base.lstat(p) {
            Ok(b) => {
                let changed = match (b.kind, t.kind) {
                    (FileType::File, FileType::File) => {
                        b.meta != t.meta || base.read(p)? != target.read(p)?
                    }
                    (FileType::Dir, FileType::Dir) => b.meta != t.meta,
                    (FileType::Symlink, FileType::Symlink) => {
                        base.readlink(p)? != target.readlink(p)?
                    }
                    _ => true, // type change
                };
                if changed {
                    // A type change needs the old entry removed first.
                    if b.kind != t.kind {
                        whiteouts.push(p.clone());
                    }
                    changes.push(p);
                }
            }
            Err(_) => changes.push(p),
        }
    }

    // Emit whiteouts first (apply order matters), sorted.
    whiteouts.sort();
    for w in &whiteouts {
        let rel = rel_str(w);
        layer.push(Entry::whiteout(&rel));
    }
    for p in changes {
        let st = target.lstat(p)?;
        let rel = rel_str(p);
        let kind = match st.kind {
            FileType::File => EntryKind::File(target.read(p)?.as_ref().clone()),
            FileType::Dir => EntryKind::Dir,
            FileType::Symlink => EntryKind::Symlink(target.readlink(p)?),
        };
        layer.push(Entry {
            path: rel,
            kind,
            mode: st.meta.mode,
            uid: st.meta.uid,
            gid: st.meta.gid,
        });
    }
    Ok(layer)
}

fn rel_str(p: &VPath) -> String {
    p.to_string().trim_start_matches('/').to_string()
}

/// Apply a layer changeset onto a filesystem in place, honoring whiteouts
/// and opaque directories.
pub fn apply(fs: &mut MemFs, layer: &Archive) -> Result<(), FsError> {
    for e in &layer.entries {
        let at = VPath::root().join(&e.path);
        match &e.kind {
            EntryKind::Whiteout => {
                if fs.exists(&at) || fs.lstat(&at).is_ok() {
                    fs.remove_all(&at)?;
                }
            }
            EntryKind::OpaqueDir => {
                // Clear the directory's current contents; the layer then
                // re-populates it.
                if fs.lstat(&at).is_ok() {
                    fs.remove_all(&at)?;
                }
                fs.mkdir_p(&at)?;
            }
            EntryKind::Dir => {
                if let Ok(st) = fs.lstat(&at) {
                    if st.kind != FileType::Dir {
                        fs.remove_all(&at)?;
                        fs.mkdir_p(&at)?;
                    }
                    fs.chmod(&at, e.mode)?;
                    fs.chown(&at, e.uid, e.gid)?;
                } else {
                    if let Some(parent) = at.parent() {
                        fs.mkdir_p(&parent)?;
                    }
                    fs.mkdir(
                        &at,
                        Meta {
                            mode: e.mode,
                            uid: e.uid,
                            gid: e.gid,
                        },
                    )?;
                }
            }
            EntryKind::File(data) => {
                if let Ok(st) = fs.lstat(&at) {
                    if st.kind != FileType::File {
                        fs.remove_all(&at)?;
                    }
                }
                if let Some(parent) = at.parent() {
                    fs.mkdir_p(&parent)?;
                }
                fs.write(
                    &at,
                    data.clone(),
                    Meta {
                        mode: e.mode,
                        uid: e.uid,
                        gid: e.gid,
                    },
                )?;
            }
            EntryKind::Symlink(target) => {
                if fs.lstat(&at).is_ok() {
                    fs.remove_all(&at)?;
                }
                if let Some(parent) = at.parent() {
                    fs.mkdir_p(&parent)?;
                }
                fs.symlink(&at, target)?;
            }
        }
    }
    Ok(())
}

/// Apply a stack of layers (bottom-first) onto an empty filesystem and
/// return the result — the "flatten the OCI bundle" operation the HPC
/// engines perform before packing a squash image.
pub fn flatten(layers: &[Archive]) -> Result<MemFs, FsError> {
    let mut fs = MemFs::new();
    for layer in layers {
        apply(&mut fs, layer)?;
    }
    Ok(fs)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(s: &str) -> VPath {
        VPath::parse(s)
    }

    fn base() -> MemFs {
        let mut fs = MemFs::new();
        fs.write_p(&p("/etc/conf"), b"v1".to_vec()).unwrap();
        fs.write_p(&p("/usr/lib/libc.so"), b"libc".to_vec())
            .unwrap();
        fs.write_p(&p("/tmp/scratch"), b"junk".to_vec()).unwrap();
        fs
    }

    #[test]
    fn diff_empty_to_tree_is_full_tree() {
        let empty = MemFs::new();
        let target = base();
        let layer = diff(&empty, &target).unwrap();
        let rebuilt = flatten(&[layer]).unwrap();
        assert_eq!(
            rebuilt.tree_digest(&VPath::root()).unwrap(),
            target.tree_digest(&VPath::root()).unwrap()
        );
    }

    #[test]
    fn diff_identical_trees_is_empty() {
        let a = base();
        let b = base();
        assert!(diff(&a, &b).unwrap().is_empty());
    }

    #[test]
    fn modification_and_removal_roundtrip() {
        let a = base();
        let mut b = base();
        b.write_p(&p("/etc/conf"), b"v2".to_vec()).unwrap();
        b.remove_all(&p("/tmp")).unwrap();
        b.write_p(&p("/opt/new"), b"n".to_vec()).unwrap();

        let layer = diff(&a, &b).unwrap();
        let mut rebuilt = base();
        apply(&mut rebuilt, &layer).unwrap();
        assert_eq!(
            rebuilt.tree_digest(&VPath::root()).unwrap(),
            b.tree_digest(&VPath::root()).unwrap()
        );
        // A single whiteout covers the removed dir, not one per child.
        let wh: Vec<&str> = layer
            .entries
            .iter()
            .filter(|e| e.kind == EntryKind::Whiteout)
            .map(|e| e.path.as_str())
            .collect();
        assert_eq!(wh, vec!["tmp"]);
    }

    #[test]
    fn mode_only_change_is_captured() {
        let a = base();
        let mut b = base();
        b.chmod(&p("/etc/conf"), 0o600).unwrap();
        let layer = diff(&a, &b).unwrap();
        assert_eq!(layer.len(), 1);
        let mut rebuilt = base();
        apply(&mut rebuilt, &layer).unwrap();
        assert_eq!(rebuilt.stat(&p("/etc/conf")).unwrap().meta.mode, 0o600);
    }

    #[test]
    fn type_change_file_to_symlink() {
        let a = base();
        let mut b = base();
        b.unlink(&p("/etc/conf")).unwrap();
        b.symlink(&p("/etc/conf"), "conf.d/real").unwrap();
        let layer = diff(&a, &b).unwrap();
        let mut rebuilt = base();
        apply(&mut rebuilt, &layer).unwrap();
        assert_eq!(rebuilt.readlink(&p("/etc/conf")).unwrap(), "conf.d/real");
    }

    #[test]
    fn type_change_file_to_dir() {
        let a = base();
        let mut b = base();
        b.unlink(&p("/etc/conf")).unwrap();
        b.mkdir_p(&p("/etc/conf")).unwrap();
        b.write_p(&p("/etc/conf/inner"), b"x".to_vec()).unwrap();
        let layer = diff(&a, &b).unwrap();
        let mut rebuilt = base();
        apply(&mut rebuilt, &layer).unwrap();
        assert_eq!(&**rebuilt.read(&p("/etc/conf/inner")).unwrap(), b"x");
    }

    #[test]
    fn opaque_dir_clears_contents() {
        let mut layer = Archive::new();
        layer.push(Entry {
            path: "tmp".into(),
            kind: EntryKind::OpaqueDir,
            mode: 0o755,
            uid: 0,
            gid: 0,
        });
        layer.push(Entry::file("tmp/only", b"fresh".to_vec()));
        let mut fs = base();
        apply(&mut fs, &layer).unwrap();
        assert!(!fs.exists(&p("/tmp/scratch")));
        assert_eq!(&**fs.read(&p("/tmp/only")).unwrap(), b"fresh");
    }

    #[test]
    fn three_layer_flatten_matches_sequential_apply() {
        let l1 = diff(&MemFs::new(), &base()).unwrap();
        let mut v2 = base();
        v2.write_p(&p("/etc/conf"), b"v2".to_vec()).unwrap();
        let l2 = diff(&base(), &v2).unwrap();
        let mut v3 = v2.clone();
        v3.remove_all(&p("/usr")).unwrap();
        let l3 = diff(&v2, &v3).unwrap();

        let flat = flatten(&[l1, l2, l3]).unwrap();
        assert_eq!(
            flat.tree_digest(&VPath::root()).unwrap(),
            v3.tree_digest(&VPath::root()).unwrap()
        );
    }

    #[test]
    fn layer_digest_is_deterministic() {
        let a = diff(&MemFs::new(), &base()).unwrap();
        let b = diff(&MemFs::new(), &base()).unwrap();
        assert_eq!(a.digest(), b.digest());
    }

    #[test]
    fn whiteout_of_missing_path_is_harmless() {
        let mut layer = Archive::new();
        layer.push(Entry::whiteout("does/not/exist"));
        let mut fs = base();
        apply(&mut fs, &layer).unwrap();
    }
}

//! Executable OCI hooks.
//!
//! "The OCI hooks specification ... provides a vendor-independent way of
//! installing and running such hooks at defined points in the lifetime of
//! a container without the need to modify the runtime itself" (§4.1.3).
//!
//! A [`HookRegistry`] maps hook names to Rust closures; the runtime invokes
//! them at each [`HookStage`] with a mutable [`HookContext`] exposing the
//! container's root filesystem, spec and annotations. GPU enablement,
//! host-library hookup and WLM integration in `hpcc-engine` are all
//! implemented as hooks registered here — exactly the extension mechanism
//! the survey describes.

use crate::spec::{HookStage, RuntimeSpec};
use hpcc_vfs::fs::MemFs;
use std::collections::BTreeMap;
use std::collections::HashMap;
use std::sync::Arc;

/// State a hook can inspect and mutate.
pub struct HookContext<'a> {
    /// The container's root filesystem (hooks may inject libraries,
    /// device nodes, configuration).
    pub rootfs: &'a mut MemFs,
    /// The runtime spec (hooks may add env vars or mounts for later
    /// stages; the spec is consumed progressively).
    pub spec: &'a mut RuntimeSpec,
    /// The *host* filesystem view, read-only — hooks copy host libraries
    /// from here (bind-mount modelling).
    pub host: &'a MemFs,
    /// Free-form state shared between hooks of one container run.
    pub state: &'a mut BTreeMap<String, String>,
}

/// Hook outcome.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum HookError {
    /// The hook decided the container must not start.
    Rejected(String),
    /// The hook is not registered.
    Unknown(String),
    /// Internal failure.
    Failed(String),
}

impl std::fmt::Display for HookError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            HookError::Rejected(r) => write!(f, "hook rejected container: {r}"),
            HookError::Unknown(n) => write!(f, "hook {n:?} not registered"),
            HookError::Failed(r) => write!(f, "hook failed: {r}"),
        }
    }
}

impl std::error::Error for HookError {}

type HookFn = Arc<dyn Fn(&mut HookContext<'_>) -> Result<(), HookError> + Send + Sync>;

/// Registry of named hooks.
#[derive(Clone, Default)]
pub struct HookRegistry {
    hooks: HashMap<String, HookFn>,
}

impl std::fmt::Debug for HookRegistry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let mut names: Vec<&str> = self.hooks.keys().map(String::as_str).collect();
        names.sort_unstable();
        write!(f, "HookRegistry({names:?})")
    }
}

impl HookRegistry {
    pub fn new() -> HookRegistry {
        HookRegistry::default()
    }

    /// Register a hook under `name` (replacing any previous registration).
    pub fn register(
        &mut self,
        name: &str,
        f: impl Fn(&mut HookContext<'_>) -> Result<(), HookError> + Send + Sync + 'static,
    ) {
        self.hooks.insert(name.to_string(), Arc::new(f));
    }

    /// True if a hook name is registered.
    pub fn contains(&self, name: &str) -> bool {
        self.hooks.contains_key(name)
    }

    /// Run all hooks the spec requests for `stage`, in order. Returns the
    /// names executed.
    pub fn run_stage(
        &self,
        stage: HookStage,
        rootfs: &mut MemFs,
        spec: &mut RuntimeSpec,
        host: &MemFs,
        state: &mut BTreeMap<String, String>,
    ) -> Result<Vec<String>, HookError> {
        let names: Vec<String> = spec.hooks_at(stage).map(|h| h.name.clone()).collect();
        let mut ran = Vec::with_capacity(names.len());
        for name in names {
            let hook = self
                .hooks
                .get(&name)
                .ok_or_else(|| HookError::Unknown(name.clone()))?
                .clone();
            let mut ctx = HookContext {
                rootfs,
                spec,
                host,
                state,
            };
            hook(&mut ctx)?;
            ran.push(name);
        }
        Ok(ran)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::HookRef;
    use hpcc_vfs::path::VPath;

    fn p(s: &str) -> VPath {
        VPath::parse(s)
    }

    fn spec_with(hooks: &[(HookStage, &str)]) -> RuntimeSpec {
        RuntimeSpec {
            hooks: hooks
                .iter()
                .map(|(stage, name)| HookRef {
                    stage: *stage,
                    name: name.to_string(),
                })
                .collect(),
            ..RuntimeSpec::default()
        }
    }

    #[test]
    fn hooks_run_in_spec_order_and_mutate_rootfs() {
        let mut reg = HookRegistry::new();
        reg.register("first", |ctx| {
            ctx.rootfs
                .write_p(&p("/order"), b"1".to_vec())
                .map_err(|e| HookError::Failed(e.to_string()))
        });
        reg.register("second", |ctx| {
            let cur = ctx
                .rootfs
                .read(&p("/order"))
                .map_err(|e| HookError::Failed(e.to_string()))?;
            let mut v = cur.as_ref().clone();
            v.push(b'2');
            ctx.rootfs
                .write_p(&p("/order"), v)
                .map_err(|e| HookError::Failed(e.to_string()))
        });
        let mut spec = spec_with(&[
            (HookStage::Prestart, "first"),
            (HookStage::Prestart, "second"),
        ]);
        let mut rootfs = MemFs::new();
        let host = MemFs::new();
        let mut state = BTreeMap::new();
        let ran = reg
            .run_stage(
                HookStage::Prestart,
                &mut rootfs,
                &mut spec,
                &host,
                &mut state,
            )
            .unwrap();
        assert_eq!(ran, vec!["first", "second"]);
        assert_eq!(&**rootfs.read(&p("/order")).unwrap(), b"12");
    }

    #[test]
    fn unknown_hook_is_an_error() {
        let reg = HookRegistry::new();
        let mut spec = spec_with(&[(HookStage::Prestart, "ghost")]);
        let mut rootfs = MemFs::new();
        let host = MemFs::new();
        let mut state = BTreeMap::new();
        let err = reg
            .run_stage(
                HookStage::Prestart,
                &mut rootfs,
                &mut spec,
                &host,
                &mut state,
            )
            .unwrap_err();
        assert_eq!(err, HookError::Unknown("ghost".into()));
    }

    #[test]
    fn hooks_only_run_for_their_stage() {
        let mut reg = HookRegistry::new();
        reg.register("poststop-only", |ctx| {
            ctx.state.insert("ran".into(), "yes".into());
            Ok(())
        });
        let mut spec = spec_with(&[(HookStage::Poststop, "poststop-only")]);
        let mut rootfs = MemFs::new();
        let host = MemFs::new();
        let mut state = BTreeMap::new();
        let ran = reg
            .run_stage(
                HookStage::Prestart,
                &mut rootfs,
                &mut spec,
                &host,
                &mut state,
            )
            .unwrap();
        assert!(ran.is_empty());
        assert!(!state.contains_key("ran"));
    }

    #[test]
    fn rejection_stops_the_stage() {
        let mut reg = HookRegistry::new();
        reg.register("abi-check", |_| {
            Err(HookError::Rejected("glibc too old in container".into()))
        });
        reg.register("after", |ctx| {
            ctx.state.insert("after".into(), "ran".into());
            Ok(())
        });
        let mut spec = spec_with(&[
            (HookStage::CreateRuntime, "abi-check"),
            (HookStage::CreateRuntime, "after"),
        ]);
        let mut rootfs = MemFs::new();
        let host = MemFs::new();
        let mut state = BTreeMap::new();
        let err = reg
            .run_stage(
                HookStage::CreateRuntime,
                &mut rootfs,
                &mut spec,
                &host,
                &mut state,
            )
            .unwrap_err();
        assert!(matches!(err, HookError::Rejected(_)));
        assert!(!state.contains_key("after"), "later hooks skipped");
    }

    #[test]
    fn hooks_can_copy_host_libraries() {
        // The host-library-hookup pattern used by the engines.
        let mut host = MemFs::new();
        host.write_p(&p("/usr/lib64/libcuda.so"), vec![0xCD; 128])
            .unwrap();
        let mut reg = HookRegistry::new();
        reg.register("nvidia", |ctx| {
            let lib = ctx
                .host
                .read(&p("/usr/lib64/libcuda.so"))
                .map_err(|e| HookError::Failed(e.to_string()))?;
            ctx.rootfs
                .write_p(&p("/usr/lib64/libcuda.so"), lib.as_ref().clone())
                .map_err(|e| HookError::Failed(e.to_string()))?;
            ctx.spec
                .process
                .env
                .push("NVIDIA_VISIBLE_DEVICES=all".into());
            Ok(())
        });
        let mut spec = spec_with(&[(HookStage::CreateRuntime, "nvidia")]);
        let mut rootfs = MemFs::new();
        let mut state = BTreeMap::new();
        reg.run_stage(
            HookStage::CreateRuntime,
            &mut rootfs,
            &mut spec,
            &host,
            &mut state,
        )
        .unwrap();
        assert!(rootfs.exists(&p("/usr/lib64/libcuda.so")));
        assert!(spec.process.env.iter().any(|e| e.starts_with("NVIDIA_")));
    }

    #[test]
    fn registry_debug_lists_names() {
        let mut reg = HookRegistry::new();
        reg.register("b", |_| Ok(()));
        reg.register("a", |_| Ok(()));
        assert_eq!(format!("{reg:?}"), r#"HookRegistry(["a", "b"])"#);
        assert!(reg.contains("a"));
        assert!(!reg.contains("c"));
    }
}

//! OCI runtime specification analogue (the `config.json` a low-level
//! runtime like runc/crun consumes).
//!
//! Engines assemble a `RuntimeSpec` describing the process, the root
//! filesystem, the bind mounts (host library hookup!), the namespaces to
//! create and the uid/gid mappings. The `hpcc-runtime` crate consumes it.
//! Tables 1–3 differences (which namespaces, suid vs userns, hook support)
//! are all visible in the specs the engines emit.

use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Linux namespace kinds (§3.2's isolation interface).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum Namespace {
    User,
    Mount,
    Pid,
    Network,
    Ipc,
    Uts,
    Cgroup,
}

impl Namespace {
    /// The full isolation set cloud runtimes configure by default.
    pub fn full_set() -> Vec<Namespace> {
        vec![
            Namespace::User,
            Namespace::Mount,
            Namespace::Pid,
            Namespace::Network,
            Namespace::Ipc,
            Namespace::Uts,
            Namespace::Cgroup,
        ]
    }

    /// The weakened HPC set: "Unused isolations such as network or IPC
    /// namespaces are not set up" (§3.2).
    pub fn hpc_set() -> Vec<Namespace> {
        vec![Namespace::User, Namespace::Mount]
    }
}

/// One uid/gid range mapping inside a user namespace.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct IdMapping {
    /// First id inside the namespace.
    pub inside: u32,
    /// First id outside (on the host).
    pub outside: u32,
    /// Number of consecutive ids mapped.
    pub count: u32,
}

impl IdMapping {
    /// The single-user mapping HPC engines use: host uid ↔ container uid,
    /// one id ("User namespacing is limited to a single user", §3.2).
    pub fn identity_single(host_id: u32, container_id: u32) -> IdMapping {
        IdMapping {
            inside: container_id,
            outside: host_id,
            count: 1,
        }
    }

    /// Map a container id to the host id through this mapping.
    pub fn to_host(&self, inside: u32) -> Option<u32> {
        if inside >= self.inside && inside < self.inside + self.count {
            Some(self.outside + (inside - self.inside))
        } else {
            None
        }
    }

    /// Map a host id into the namespace.
    pub fn to_container(&self, outside: u32) -> Option<u32> {
        if outside >= self.outside && outside < self.outside + self.count {
            Some(self.inside + (outside - self.outside))
        } else {
            None
        }
    }
}

/// A mount entry: bind mounts are how host libraries, GPU driver stacks
/// and shared filesystems enter the container (§4.1.6).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Mount {
    /// Host path (bind) or device identifier.
    pub source: String,
    /// Path inside the container.
    pub destination: String,
    pub kind: MountKind,
    pub read_only: bool,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum MountKind {
    /// Bind mount from the host.
    Bind,
    /// tmpfs.
    Tmpfs,
    /// Device node exposure (GPUs, interconnect).
    Device,
}

/// The process to run.
#[derive(Debug, Clone, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct ProcessSpec {
    pub argv: Vec<String>,
    pub env: Vec<String>,
    pub cwd: String,
    /// uid/gid *inside* the container.
    pub uid: u32,
    pub gid: u32,
}

/// Lifecycle stages at which OCI hooks run (§4.1.3).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum HookStage {
    /// After the runtime environment exists, before pivot_root.
    CreateRuntime,
    /// After pivot_root, before exec (in the runtime namespace).
    Prestart,
    /// After the container process starts.
    Poststart,
    /// After the container process exits.
    Poststop,
}

impl HookStage {
    pub fn all() -> [HookStage; 4] {
        [
            HookStage::CreateRuntime,
            HookStage::Prestart,
            HookStage::Poststart,
            HookStage::Poststop,
        ]
    }
}

/// A named hook to invoke at a stage. The executable behaviour is
/// registered separately in a [`crate::hooks::HookRegistry`] — the spec
/// carries only the identity, like the `path`+`args` of a real OCI hook.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct HookRef {
    pub stage: HookStage,
    pub name: String,
}

/// The assembled runtime spec.
#[derive(Debug, Clone, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct RuntimeSpec {
    pub process: ProcessSpec,
    /// Namespaces the runtime must create.
    pub namespaces: Vec<Namespace>,
    pub uid_mappings: Vec<IdMapping>,
    pub gid_mappings: Vec<IdMapping>,
    pub mounts: Vec<Mount>,
    pub hooks: Vec<HookRef>,
    /// Root filesystem is read-only.
    pub readonly_rootfs: bool,
    /// Cgroup resource limits.
    pub resources: Resources,
    /// Free-form annotations (engines stash provenance here).
    pub annotations: BTreeMap<String, String>,
}

/// Cgroup resource limits.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct Resources {
    /// CPU cores (micro-units of 1/1000 core; 0 = unlimited).
    pub cpu_millis: u64,
    /// Memory bytes (0 = unlimited).
    pub memory_bytes: u64,
    /// Process count limit (0 = unlimited).
    pub pids: u64,
}

impl RuntimeSpec {
    /// True if the spec creates the given namespace.
    pub fn has_namespace(&self, ns: Namespace) -> bool {
        self.namespaces.contains(&ns)
    }

    /// Hooks registered for one stage, in order.
    pub fn hooks_at(&self, stage: HookStage) -> impl Iterator<Item = &HookRef> {
        self.hooks.iter().filter(move |h| h.stage == stage)
    }

    /// Map a container uid to the host through the uid mappings.
    pub fn uid_to_host(&self, inside: u32) -> Option<u32> {
        self.uid_mappings.iter().find_map(|m| m.to_host(inside))
    }

    /// Map a container gid to the host through the gid mappings.
    pub fn gid_to_host(&self, inside: u32) -> Option<u32> {
        self.gid_mappings.iter().find_map(|m| m.to_host(inside))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn namespace_sets_differ_as_the_paper_says() {
        let full = Namespace::full_set();
        let hpc = Namespace::hpc_set();
        assert!(full.contains(&Namespace::Network));
        assert!(!hpc.contains(&Namespace::Network), "HPC drops netns");
        assert!(!hpc.contains(&Namespace::Ipc), "HPC drops ipcns");
        assert!(hpc.contains(&Namespace::User) && hpc.contains(&Namespace::Mount));
    }

    #[test]
    fn single_user_mapping() {
        let m = IdMapping::identity_single(12345, 0);
        assert_eq!(m.to_host(0), Some(12345));
        assert_eq!(m.to_host(1), None, "only one id mapped");
        assert_eq!(m.to_container(12345), Some(0));
        assert_eq!(m.to_container(12346), None);
    }

    #[test]
    fn range_mapping() {
        let m = IdMapping {
            inside: 0,
            outside: 100_000,
            count: 65536,
        };
        assert_eq!(m.to_host(0), Some(100_000));
        assert_eq!(m.to_host(65535), Some(165_535));
        assert_eq!(m.to_host(65536), None);
        assert_eq!(m.to_container(100_010), Some(10));
    }

    #[test]
    fn spec_queries() {
        let spec = RuntimeSpec {
            namespaces: Namespace::hpc_set(),
            uid_mappings: vec![IdMapping::identity_single(1000, 1000)],
            gid_mappings: vec![IdMapping::identity_single(100, 100)],
            hooks: vec![
                HookRef {
                    stage: HookStage::Prestart,
                    name: "gpu".into(),
                },
                HookRef {
                    stage: HookStage::Poststop,
                    name: "cleanup".into(),
                },
                HookRef {
                    stage: HookStage::Prestart,
                    name: "mpi".into(),
                },
            ],
            ..RuntimeSpec::default()
        };
        assert!(spec.has_namespace(Namespace::User));
        assert!(!spec.has_namespace(Namespace::Pid));
        let prestart: Vec<&str> = spec
            .hooks_at(HookStage::Prestart)
            .map(|h| h.name.as_str())
            .collect();
        assert_eq!(prestart, vec!["gpu", "mpi"], "order preserved");
        assert_eq!(spec.uid_to_host(1000), Some(1000));
        assert_eq!(spec.uid_to_host(0), None, "root not mapped");
        assert_eq!(spec.gid_to_host(100), Some(100));
    }

    #[test]
    fn hook_stages_enumerated() {
        assert_eq!(HookStage::all().len(), 4);
    }
}

//! Image references: `registry/namespace/name:tag@digest` parsing.
//!
//! Follows the Docker/OCI conventions the surveyed engines implement:
//! a missing registry defaults to the configured public hub, a missing tag
//! to `latest`, and a digest pin (`@sha256:...`) makes the reference
//! immutable.

use hpcc_crypto::sha256::Digest;
use serde::{Deserialize, Serialize};
use std::fmt;

/// The default public registry host (DockerHub analogue).
pub const DEFAULT_REGISTRY: &str = "hub.invalid";
/// The default tag.
pub const DEFAULT_TAG: &str = "latest";

/// A parsed image reference.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct ImageRef {
    /// Registry host, e.g. `hub.invalid` or `registry.site.hpc`.
    pub registry: String,
    /// Repository path, e.g. `library/ubuntu` or `bio/samtools`.
    pub repository: String,
    /// Tag (always present after parsing; defaults to `latest`).
    pub tag: String,
    /// Optional digest pin.
    pub digest: Option<Digest>,
}

/// Errors from reference parsing.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RefError {
    Empty,
    BadDigest(String),
    BadCharacter(char),
}

impl fmt::Display for RefError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RefError::Empty => f.write_str("empty image reference"),
            RefError::BadDigest(d) => write!(f, "bad digest {d:?}"),
            RefError::BadCharacter(c) => write!(f, "illegal character {c:?} in reference"),
        }
    }
}

impl std::error::Error for RefError {}

impl ImageRef {
    /// Parse a reference string.
    ///
    /// * `ubuntu:22.04` → registry=default, repo=`library/ubuntu`
    /// * `bio/samtools` → registry=default, repo=`bio/samtools`, tag=latest
    /// * `registry.site/bio/samtools:1.17@sha256:...` → fully qualified
    pub fn parse(s: &str) -> Result<ImageRef, RefError> {
        if s.is_empty() {
            return Err(RefError::Empty);
        }
        if let Some(c) = s.chars().find(|c| {
            !(c.is_ascii_alphanumeric() || matches!(c, '/' | ':' | '@' | '.' | '-' | '_'))
        }) {
            return Err(RefError::BadCharacter(c));
        }

        // Split off the digest pin.
        let (rest, digest) = match s.split_once('@') {
            Some((rest, d)) => {
                let digest =
                    Digest::parse_oci(d).ok_or_else(|| RefError::BadDigest(d.to_string()))?;
                (rest, Some(digest))
            }
            None => (s, None),
        };

        // Registry host: the first component if it contains a dot or port
        // (the Docker heuristic).
        let (registry, path) = match rest.split_once('/') {
            Some((first, more)) if first.contains('.') || first.contains(':') => {
                (first.to_string(), more.to_string())
            }
            _ => (DEFAULT_REGISTRY.to_string(), rest.to_string()),
        };

        // Tag.
        let (repo, tag) = match path.rsplit_once(':') {
            Some((repo, tag)) if !tag.contains('/') => (repo.to_string(), tag.to_string()),
            _ => (path.clone(), DEFAULT_TAG.to_string()),
        };
        if repo.is_empty() {
            return Err(RefError::Empty);
        }

        // Single-component repos on the default registry get the `library/`
        // namespace, like DockerHub.
        let repository = if registry == DEFAULT_REGISTRY && !repo.contains('/') {
            format!("library/{repo}")
        } else {
            repo
        };

        Ok(ImageRef {
            registry,
            repository,
            tag,
            digest,
        })
    }

    /// A fully-qualified reference with explicit parts.
    pub fn new(registry: &str, repository: &str, tag: &str) -> ImageRef {
        ImageRef {
            registry: registry.to_string(),
            repository: repository.to_string(),
            tag: tag.to_string(),
            digest: None,
        }
    }

    /// Pin this reference to a digest.
    pub fn with_digest(mut self, digest: Digest) -> ImageRef {
        self.digest = Some(digest);
        self
    }

    /// `repository:tag` without the registry (cache keys within one
    /// registry).
    pub fn name_tag(&self) -> String {
        format!("{}:{}", self.repository, self.tag)
    }
}

impl fmt::Display for ImageRef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}/{}:{}", self.registry, self.repository, self.tag)?;
        if let Some(d) = &self.digest {
            write!(f, "@{d}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hpcc_crypto::sha256::sha256;

    #[test]
    fn bare_name_gets_defaults() {
        let r = ImageRef::parse("ubuntu").unwrap();
        assert_eq!(r.registry, DEFAULT_REGISTRY);
        assert_eq!(r.repository, "library/ubuntu");
        assert_eq!(r.tag, "latest");
        assert_eq!(r.digest, None);
    }

    #[test]
    fn name_with_tag() {
        let r = ImageRef::parse("ubuntu:22.04").unwrap();
        assert_eq!(r.repository, "library/ubuntu");
        assert_eq!(r.tag, "22.04");
    }

    #[test]
    fn namespaced_repo() {
        let r = ImageRef::parse("bio/samtools:1.17").unwrap();
        assert_eq!(r.registry, DEFAULT_REGISTRY);
        assert_eq!(r.repository, "bio/samtools");
    }

    #[test]
    fn explicit_registry() {
        let r = ImageRef::parse("registry.site.hpc/bio/samtools:1.17").unwrap();
        assert_eq!(r.registry, "registry.site.hpc");
        assert_eq!(r.repository, "bio/samtools");
        assert_eq!(r.tag, "1.17");
    }

    #[test]
    fn registry_with_port() {
        let r = ImageRef::parse("localhost:5000/app").unwrap();
        assert_eq!(r.registry, "localhost:5000");
        assert_eq!(r.repository, "app");
    }

    #[test]
    fn digest_pin_roundtrip() {
        let d = sha256(b"manifest");
        let s = format!("registry.x.y/app:v1@{}", d.oci());
        let r = ImageRef::parse(&s).unwrap();
        assert_eq!(r.digest, Some(d));
        assert_eq!(ImageRef::parse(&r.to_string()).unwrap(), r);
    }

    #[test]
    fn bad_digest_rejected() {
        assert!(matches!(
            ImageRef::parse("app@sha256:zz"),
            Err(RefError::BadDigest(_))
        ));
    }

    #[test]
    fn bad_chars_rejected() {
        assert!(matches!(
            ImageRef::parse("app name"),
            Err(RefError::BadCharacter(' '))
        ));
        assert_eq!(ImageRef::parse(""), Err(RefError::Empty));
    }

    #[test]
    fn display_roundtrip() {
        for s in [
            "ubuntu",
            "ubuntu:22.04",
            "bio/samtools:1.17",
            "registry.site.hpc/a/b:c",
        ] {
            let r = ImageRef::parse(s).unwrap();
            assert_eq!(ImageRef::parse(&r.to_string()).unwrap(), r);
        }
    }

    #[test]
    fn name_tag_key() {
        let r = ImageRef::parse("bio/samtools:1.17").unwrap();
        assert_eq!(r.name_tag(), "bio/samtools:1.17");
    }
}

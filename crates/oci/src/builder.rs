//! Image builder: the Dockerfile / Singularity-definition analogue.
//!
//! Section 2 motivates containers as "a code-based approach to the build
//! environment". The builder expresses exactly that: a base image, a
//! sequence of mutation steps (each producing one layer, like grouped
//! Dockerfile commands — §4.1.4 discusses why grouping matters), config
//! settings, and a `build()` that writes blobs into a CAS and returns the
//! manifest. Building from the same inputs yields identical digests, so
//! layer caching across image families works like the paper describes.

use crate::cas::Cas;
use crate::image::{ImageConfig, Manifest, MediaType};
use crate::layer;
use hpcc_codec::archive::Archive;
use hpcc_vfs::fs::{FsError, MemFs};
use std::collections::BTreeMap;

/// Errors from builds.
#[derive(Debug)]
pub enum BuildError {
    Fs(FsError),
    /// A build step reported failure (the §2 "fail at the linker step"
    /// behaviour).
    StepFailed {
        step: usize,
        reason: String,
    },
}

impl From<FsError> for BuildError {
    fn from(e: FsError) -> BuildError {
        BuildError::Fs(e)
    }
}

impl std::fmt::Display for BuildError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            BuildError::Fs(e) => write!(f, "fs: {e}"),
            BuildError::StepFailed { step, reason } => {
                write!(f, "build step {step} failed: {reason}")
            }
        }
    }
}

impl std::error::Error for BuildError {}

/// A built image: manifest plus its resolved parts, with blobs stored in
/// the CAS the builder was given.
#[derive(Debug, Clone)]
pub struct BuiltImage {
    pub manifest: Manifest,
    pub config: ImageConfig,
    /// The layer changesets, bottom-first (kept for engines that flatten).
    pub layers: Vec<Archive>,
}

impl BuiltImage {
    /// Flatten the layer stack into a root filesystem.
    pub fn flatten(&self) -> Result<MemFs, FsError> {
        layer::flatten(&self.layers)
    }
}

type Step<'a> = Box<dyn FnOnce(&mut MemFs) -> Result<(), String> + 'a>;

/// Builder for layered images.
pub struct ImageBuilder<'a> {
    base_layers: Vec<Archive>,
    steps: Vec<(String, Step<'a>)>,
    config: ImageConfig,
    annotations: BTreeMap<String, String>,
}

impl<'a> Default for ImageBuilder<'a> {
    fn default() -> Self {
        ImageBuilder::from_scratch()
    }
}

impl<'a> ImageBuilder<'a> {
    /// Start from an empty root (like `FROM scratch`).
    pub fn from_scratch() -> ImageBuilder<'a> {
        ImageBuilder {
            base_layers: Vec::new(),
            steps: Vec::new(),
            config: ImageConfig::default(),
            annotations: BTreeMap::new(),
        }
    }

    /// Start from an existing image's layers and config (like `FROM base`).
    pub fn from_image(base: &BuiltImage) -> ImageBuilder<'a> {
        ImageBuilder {
            base_layers: base.layers.clone(),
            steps: Vec::new(),
            config: base.config.clone(),
            annotations: BTreeMap::new(),
        }
    }

    /// Add a build step: `f` mutates the root filesystem; its changes
    /// become one layer. `label` is recorded as a layer annotation.
    pub fn run(
        mut self,
        label: &str,
        f: impl FnOnce(&mut MemFs) -> Result<(), String> + 'a,
    ) -> Self {
        self.steps.push((label.to_string(), Box::new(f)));
        self
    }

    /// Set an environment variable.
    pub fn env(mut self, key: &str, value: &str) -> Self {
        self.config.env.push(format!("{key}={value}"));
        self
    }

    /// Set the entrypoint argv.
    pub fn entrypoint(mut self, argv: &[&str]) -> Self {
        self.config.entrypoint = argv.iter().map(|s| s.to_string()).collect();
        self
    }

    /// Set the default command argv.
    pub fn cmd(mut self, argv: &[&str]) -> Self {
        self.config.cmd = argv.iter().map(|s| s.to_string()).collect();
        self
    }

    /// Set the working directory.
    pub fn workdir(mut self, dir: &str) -> Self {
        self.config.working_dir = dir.to_string();
        self
    }

    /// Set the user.
    pub fn user(mut self, user: &str) -> Self {
        self.config.user = user.to_string();
        self
    }

    /// Declare an exposed port.
    pub fn expose(mut self, port: u16) -> Self {
        self.config.exposed_ports.push(port);
        self
    }

    /// Record the target micro-architecture (the §3.2 portability-vs-
    /// optimization tension).
    pub fn architecture(mut self, arch: &str) -> Self {
        self.config.architecture = arch.to_string();
        self
    }

    /// Add a label.
    pub fn label(mut self, key: &str, value: &str) -> Self {
        self.config
            .labels
            .insert(key.to_string(), value.to_string());
        self
    }

    /// Add a manifest annotation.
    pub fn annotation(mut self, key: &str, value: &str) -> Self {
        self.annotations.insert(key.to_string(), value.to_string());
        self
    }

    /// Execute the steps, store blobs in `cas`, and return the image.
    pub fn build(self, cas: &Cas) -> Result<BuiltImage, BuildError> {
        let mut layers = self.base_layers;
        let mut fs = layer::flatten(&layers)?;
        for (i, (label, step)) in self.steps.into_iter().enumerate() {
            let before = fs.clone();
            step(&mut fs).map_err(|reason| BuildError::StepFailed { step: i, reason })?;
            let mut delta = layer::diff(&before, &fs)?;
            if delta.is_empty() {
                continue; // no-op steps produce no layer
            }
            // Tag the layer with its step label via a synthetic annotation
            // entry is wrong — labels belong on the manifest; keep a map.
            let _ = label;
            delta.entries.sort_by(|a, b| {
                // Whiteouts first, then paths — diff already emits this
                // order; sorting again keeps digests stable if callers
                // construct archives by hand.
                let a_w = matches!(a.kind, hpcc_codec::archive::EntryKind::Whiteout);
                let b_w = matches!(b.kind, hpcc_codec::archive::EntryKind::Whiteout);
                b_w.cmp(&a_w).then_with(|| a.path.cmp(&b.path))
            });
            layers.push(delta);
        }

        // Store blobs.
        for l in &layers {
            cas.put(MediaType::Layer, l.to_bytes());
        }
        let config_desc = {
            let bytes = self.config.to_bytes();
            cas.put(MediaType::Config, bytes)
        };
        let manifest = Manifest {
            config: config_desc,
            layers: layers
                .iter()
                .map(|l| {
                    let bytes = l.to_bytes();
                    crate::image::Descriptor {
                        media_type: MediaType::Layer,
                        digest: l.digest(),
                        size: bytes.len() as u64,
                    }
                })
                .collect(),
            annotations: self.annotations,
        };
        cas.put(MediaType::Manifest, manifest.to_bytes());

        Ok(BuiltImage {
            manifest,
            config: self.config,
            layers,
        })
    }
}

/// Ready-made sample images used across tests, examples and benches.
pub mod samples {
    use super::*;
    use hpcc_vfs::path::VPath;

    fn p(s: &str) -> VPath {
        VPath::parse(s)
    }

    /// A minimal distro base: libc, a shell, /etc plumbing.
    pub fn base_os(cas: &Cas) -> BuiltImage {
        ImageBuilder::from_scratch()
            .run("install-base", |fs| {
                // The libc carries its symbol-version marker, which the
                // Sarus-style ABI check parses (see hpcc-engine::hookup).
                let mut libc = b"GLIBC_PROVIDES=2.31;".to_vec();
                libc.extend_from_slice(&[0xC1; 8192]);
                fs.write_p(&p("/usr/lib/libc.so.6"), libc)
                    .map_err(|e| e.to_string())?;
                fs.write_p(&p("/usr/lib/libpthread.so"), vec![0xC2; 4096])
                    .map_err(|e| e.to_string())?;
                fs.write_p(&p("/bin/sh"), vec![0x5E; 2048])
                    .map_err(|e| e.to_string())?;
                fs.write_p(&p("/etc/nsswitch.conf"), b"passwd: files\n".to_vec())
                    .map_err(|e| e.to_string())?;
                fs.write_p(&p("/etc/ld.so.conf"), b"/usr/lib\n".to_vec())
                    .map_err(|e| e.to_string())?;
                Ok(())
            })
            .env("PATH", "/usr/bin:/bin")
            .architecture("x86_64")
            .build(cas)
            .expect("base image builds")
    }

    /// A Python-like runtime on the base: many small module files — the
    /// §4.1.4 "interpreted languages consist of many small files" case.
    pub fn python_app(cas: &Cas, modules: usize) -> BuiltImage {
        let base = base_os(cas);
        ImageBuilder::from_image(&base)
            .run("install-python", move |fs| {
                fs.write_p(&p("/usr/bin/python3.11"), vec![0x79u8; 6144])
                    .map_err(|e| e.to_string())?;
                for i in 0..modules {
                    let path = format!(
                        "/usr/lib/python3.11/site-packages/pkg{}/mod{}.py",
                        i % 37,
                        i
                    );
                    let body = format!("import os\n# module {i}\ndef run():\n    return {i}\n")
                        .repeat(4)
                        .into_bytes();
                    fs.write_p(&p(&path), body).map_err(|e| e.to_string())?;
                }
                Ok(())
            })
            .entrypoint(&["/usr/bin/python3.11"])
            .cmd(&["-m", "app"])
            .build(cas)
            .expect("python image builds")
    }

    /// An MPI solver app on the base: one big static-ish binary plus
    /// parameter data.
    pub fn mpi_solver(cas: &Cas) -> BuiltImage {
        let base = base_os(cas);
        ImageBuilder::from_image(&base)
            .run("install-mpi", |fs| {
                fs.write_p(&p("/opt/mpi/lib/libmpi.so"), vec![0x11; 65536])
                    .map_err(|e| e.to_string())
            })
            .run("install-solver", |fs| {
                fs.write_p(&p("/opt/solver/bin/solve"), vec![0xA5; 262144])
                    .map_err(|e| e.to_string())?;
                fs.write_p(&p("/opt/solver/data/params.dat"), vec![0x42; 131072])
                    .map_err(|e| e.to_string())?;
                Ok(())
            })
            .entrypoint(&["/opt/solver/bin/solve"])
            .env("OMP_NUM_THREADS", "16")
            .build(cas)
            .expect("solver image builds")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hpcc_vfs::path::VPath;

    fn p(s: &str) -> VPath {
        VPath::parse(s)
    }

    #[test]
    fn scratch_build_single_layer() {
        let cas = Cas::new();
        let img = ImageBuilder::from_scratch()
            .run("write", |fs| {
                fs.write_p(&p("/hello"), b"world".to_vec())
                    .map_err(|e| e.to_string())
            })
            .build(&cas)
            .unwrap();
        assert_eq!(img.layers.len(), 1);
        let fs = img.flatten().unwrap();
        assert_eq!(&**fs.read(&p("/hello")).unwrap(), b"world");
    }

    #[test]
    fn each_step_is_one_layer() {
        let cas = Cas::new();
        let img = ImageBuilder::from_scratch()
            .run("a", |fs| {
                fs.write_p(&p("/a"), vec![1]).map_err(|e| e.to_string())
            })
            .run("b", |fs| {
                fs.write_p(&p("/b"), vec![2]).map_err(|e| e.to_string())
            })
            .run("noop", |_| Ok(()))
            .build(&cas)
            .unwrap();
        assert_eq!(img.layers.len(), 2, "no-op step produces no layer");
        assert_eq!(img.manifest.layers.len(), 2);
    }

    #[test]
    fn from_image_shares_base_layers() {
        let cas = Cas::new();
        let base = samples::base_os(&cas);
        let child_a = ImageBuilder::from_image(&base)
            .run("a", |fs| {
                fs.write_p(&p("/opt/a"), vec![1]).map_err(|e| e.to_string())
            })
            .build(&cas)
            .unwrap();
        let child_b = ImageBuilder::from_image(&base)
            .run("b", |fs| {
                fs.write_p(&p("/opt/b"), vec![2]).map_err(|e| e.to_string())
            })
            .build(&cas)
            .unwrap();
        // Shared base layer digest.
        assert_eq!(
            child_a.manifest.layers[0].digest,
            child_b.manifest.layers[0].digest
        );
        // CAS deduplicated it.
        assert!(cas.stats().dedup_hits > 0);
    }

    #[test]
    fn deterministic_builds() {
        let cas1 = Cas::new();
        let cas2 = Cas::new();
        let a = samples::base_os(&cas1);
        let b = samples::base_os(&cas2);
        assert_eq!(a.manifest.digest(), b.manifest.digest());
    }

    #[test]
    fn failing_step_reports_error() {
        let cas = Cas::new();
        let err = ImageBuilder::from_scratch()
            .run("ok", |fs| {
                fs.write_p(&p("/x"), vec![1]).map_err(|e| e.to_string())
            })
            .run("linker", |_| Err("undefined symbol: dgemm_".to_string()))
            .build(&cas)
            .unwrap_err();
        match err {
            BuildError::StepFailed { step, reason } => {
                assert_eq!(step, 1);
                assert!(reason.contains("dgemm_"));
            }
            other => panic!("unexpected {other}"),
        }
    }

    #[test]
    fn config_flows_to_image() {
        let cas = Cas::new();
        let img = ImageBuilder::from_scratch()
            .run("w", |fs| {
                fs.write_p(&p("/bin/app"), vec![1])
                    .map_err(|e| e.to_string())
            })
            .entrypoint(&["/bin/app"])
            .cmd(&["--serve"])
            .env("MODE", "fast")
            .workdir("/work")
            .user("1000")
            .expose(8080)
            .architecture("x86_64-v4")
            .label("org.example.team", "hpc")
            .annotation("built-by", "test")
            .build(&cas)
            .unwrap();
        assert_eq!(img.config.argv(), vec!["/bin/app", "--serve"]);
        assert_eq!(img.config.user, "1000");
        assert_eq!(img.config.exposed_ports, vec![8080]);
        assert_eq!(img.manifest.annotations["built-by"], "test");
    }

    #[test]
    fn child_inherits_and_extends_config() {
        let cas = Cas::new();
        let base = samples::base_os(&cas);
        let child = ImageBuilder::from_image(&base)
            .env("EXTRA", "1")
            .run("w", |fs| {
                fs.write_p(&p("/opt/x"), vec![1]).map_err(|e| e.to_string())
            })
            .build(&cas)
            .unwrap();
        assert!(child.config.env.iter().any(|e| e == "PATH=/usr/bin:/bin"));
        assert!(child.config.env.iter().any(|e| e == "EXTRA=1"));
    }

    #[test]
    fn sample_images_have_expected_shape() {
        let cas = Cas::new();
        let py = samples::python_app(&cas, 200);
        let fs = py.flatten().unwrap();
        assert!(fs.file_count(&VPath::root()) > 200);
        let solver = samples::mpi_solver(&cas);
        assert_eq!(solver.manifest.layers.len(), 3);
        assert_eq!(solver.config.argv()[0], "/opt/solver/bin/solve");
    }

    #[test]
    fn manifest_blobs_stored_in_cas() {
        let cas = Cas::new();
        let img = samples::base_os(&cas);
        assert!(cas.has(&img.manifest.digest()));
        assert!(cas.has(&img.manifest.config.digest));
        for l in &img.manifest.layers {
            assert!(cas.has(&l.digest));
        }
    }
}

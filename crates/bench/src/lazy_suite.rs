//! Lazy-vs-eager pull benchmark + the `bench-lazy` CI gate.
//!
//! Measures **time-to-first-exec** (ttfe): the logical time from a cold
//! node deciding to run a container until the entrypoint's working set
//! has been read. Two consume paths per workload shape:
//!
//! * **eager** — the full pipeline a conventional HPC engine runs: pull
//!   every layer, convert to a squash image, mount, then read the
//!   first-exec set locally (`Engine::pull` + `Engine::prepare` at the
//!   goldens' parallelism).
//! * **lazy** — `Engine::pull_lazy` over the seekable indexed format:
//!   fetch only the index, launch, and fault exactly the first-exec
//!   set's chunk ranges in through the FUSE cost model.
//!
//! Lazy should dominate on many-small-files — the conversion-heavy shape
//! where eager cold-start pays for 768 files it never touches — while a
//! full scan (`materialize`) must *lose* to eager, reproducing the §7
//! trade-off. Both directions are gated live, alongside a
//! bytes-to-first-exec gate and a shared-store sibling gate, plus the
//! median-normalized regression gate against
//! `tests/bench/BENCH_lazy_baseline.json` (re-bless with
//! `bench_lazy --bless`).
//!
//! Everything runs on the logical clock: runs are bit-for-bit
//! deterministic and the `bench_lazy` binary double-runs to prove it.

use crate::json::{self, Json};
use crate::suite::{self, Workload, WORKLOADS};
use hpcc_codec::archive::Archive;
use hpcc_engine::engine::{Engine, Host, PullSources};
use hpcc_engine::engines;
use hpcc_engine::lazy::publish_seekable;
use hpcc_oci::cas::Cas;
use hpcc_oci::layer;
use hpcc_registry::registry::{Registry, RegistryCaps};
use hpcc_sim::{FaultInjector, SimClock};
use hpcc_storage::journal::JournaledStore;
use hpcc_storage::BlobStore;
use hpcc_vfs::fs::MemFs;
use hpcc_vfs::path::VPath;
use hpcc_vfs::seekable::DEFAULT_CHUNK_SIZE;
use std::path::PathBuf;
use std::sync::Arc;

/// Cold replicas measured per (shape, path); the first-exec set varies by
/// replica on the many-small-files shape, so p95 is a real spread there.
pub const REPLICAS: usize = 6;

/// Eager pipeline width — the same width the goldens and the pipeline
/// bench run at, so the eager baseline is the tuned pipeline, not a straw
/// man.
pub const EAGER_PARALLELISM: usize = 4;

/// On many-small-files, eager cold-start ttfe must exceed lazy ttfe by at
/// least this factor (strictly greater than 1 would gate on a rounding
/// error; this demands a visible win).
pub const LAZY_WIN_FLOOR: f64 = 1.05;

/// Baseline gate: a metric whose current/baseline ratio exceeds the run's
/// median ratio by more than this fraction is a regression.
pub const REGRESSION_TOLERANCE: f64 = 0.10;

/// Where the current results land (repo root, next to the other BENCH_*).
pub fn results_path() -> PathBuf {
    PathBuf::from(concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/../../BENCH_lazy.json"
    ))
}

/// The checked-in baseline the `--check` gate compares against.
pub fn baseline_path() -> PathBuf {
    PathBuf::from(concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/../../tests/bench/BENCH_lazy_baseline.json"
    ))
}

/// One workload shape's lazy-vs-eager measurement. All times logical ns.
#[derive(Debug, Clone)]
pub struct LazyRow {
    pub workload: &'static str,
    /// Files in the image.
    pub files: usize,
    /// Uncompressed image bytes.
    pub orig_bytes: u64,
    /// Serialized seekable-index bytes (what a lazy launch must move).
    pub index_bytes: u64,
    /// Distinct content-addressed chunks the image references.
    pub distinct_chunks: usize,
    /// Files the entrypoint touches before first exec.
    pub first_exec_files: usize,
    /// Lazy time-to-first-exec across cold replicas.
    pub lazy_ttfe_p50_ns: u64,
    pub lazy_ttfe_p95_ns: u64,
    /// Eager (pull + convert + mount + read) across cold replicas.
    pub eager_ttfe_p50_ns: u64,
    pub eager_ttfe_p95_ns: u64,
    /// Lazy ttfe of a sibling container on the same node (index + chunks
    /// already in the shared blob store).
    pub sibling_ttfe_ns: u64,
    /// Bytes a lazy first exec moved from the registry (index + chunks).
    pub lazy_first_exec_bytes: u64,
    /// Bytes the eager pipeline fetched before anything could run.
    pub eager_pull_bytes: u64,
    /// Touch-everything comparison: lazy `materialize` vs eager pipeline
    /// plus a full local scan. Lazy must lose here.
    pub lazy_full_ns: u64,
    pub eager_full_ns: u64,
}

/// Results of the full sweep.
#[derive(Debug, Clone)]
pub struct LazyResults {
    pub rows: Vec<LazyRow>,
}

// ------------------------------------------------------------ measurement

/// The deterministic set of image-relative paths the entrypoint reads
/// before first exec. Varies per replica on many-small-files (a python
/// interpreter imports a handful of the 768 modules), fixed on the other
/// shapes.
pub fn first_exec_set(workload: Workload, replica: usize) -> Vec<String> {
    match workload {
        Workload::Small => vec!["usr/lib/libc.so.6".into(), "opt/app/run".into()],
        Workload::Large => vec!["opt/data/part0.bin".into()],
        Workload::ManySmallFiles => (0..4)
            .map(|k| {
                format!(
                    "usr/lib/app/pkg{}/mod{}.py",
                    (replica * 3 + k * 5) % 16,
                    (replica * 7 + k * 11) % 48
                )
            })
            .collect(),
    }
}

/// The workload's flattened root tree (what eager conversion produces and
/// what the seekable image is built from).
fn flattened_rootfs(workload: Workload, cas: &Cas) -> (MemFs, usize, u64) {
    let img = workload.build(cas);
    let layers: Vec<Archive> = img
        .manifest
        .layers
        .iter()
        .map(|d| Archive::from_bytes(&cas.get(&d.digest).unwrap()).unwrap())
        .collect();
    let fs = layer::flatten(&layers).unwrap();
    let image_bytes = img.manifest.layers.iter().map(|d| d.size).sum();
    (fs, img.manifest.layers.len(), image_bytes)
}

fn fresh_eager_engine() -> (Engine, Arc<FaultInjector>) {
    let engine = engines::podman_hpc();
    engine.set_parallelism(EAGER_PARALLELISM);
    engine.set_blob_store(BlobStore::new(8, 8 << 30));
    let inj = Arc::new(FaultInjector::new(0, Vec::new()));
    engine.set_fault_injector(Arc::clone(&inj));
    (engine, inj)
}

fn fresh_lazy_engine() -> (Engine, Arc<JournaledStore>, Arc<FaultInjector>) {
    let engine = engines::podman_hpc();
    let store = BlobStore::new(8, 8 << 30);
    let journal = JournaledStore::new(store);
    engine.set_journaled_store(Arc::clone(&journal));
    let inj = Arc::new(FaultInjector::new(0, Vec::new()));
    engine.set_fault_injector(Arc::clone(&inj));
    (engine, journal, inj)
}

/// One eager cold start: pull + prepare + read the first-exec set through
/// the prepared driver. Returns (ttfe ns, fetched bytes).
fn eager_cold_start(registry: &Registry, repo: &str, touch: &[String]) -> (u64, u64) {
    let (engine, inj) = fresh_eager_engine();
    let host = Host::compute_node();
    let clock = SimClock::new();
    let pulled = engine
        .pull(registry, repo, "v1", &clock)
        .expect("bench eager pull succeeds");
    let prepared = engine
        .prepare(&pulled, 1000, &host, true, &clock)
        .expect("bench eager prepare succeeds");
    for p in touch {
        prepared
            .driver
            .read_file(p, &clock)
            .expect("eager read succeeds");
    }
    (
        clock.now().since(hpcc_sim::SimTime::ZERO).0,
        inj.metrics().get("engine.pull.fetched_bytes"),
    )
}

/// Eager pipeline plus a full local scan of every file.
fn eager_full_scan(registry: &Registry, repo: &str) -> u64 {
    let (engine, _inj) = fresh_eager_engine();
    let host = Host::compute_node();
    let clock = SimClock::new();
    let pulled = engine.pull(registry, repo, "v1", &clock).unwrap();
    let prepared = engine.prepare(&pulled, 1000, &host, true, &clock).unwrap();
    for p in prepared.driver.file_paths() {
        prepared.driver.read_file(&p, &clock).unwrap();
    }
    clock.now().since(hpcc_sim::SimTime::ZERO).0
}

fn percentile(sorted: &[u64], p: f64) -> u64 {
    assert!(!sorted.is_empty());
    let idx = ((sorted.len() as f64 - 1.0) * p).round() as usize;
    sorted[idx]
}

/// Measure one workload shape end to end.
pub fn bench_workload(workload: Workload) -> LazyRow {
    let cas = Cas::new();
    let (rootfs, _layers, _image_bytes) = flattened_rootfs(workload, &cas);
    let registry = Registry::new("bench-lazy", RegistryCaps::open());
    registry.create_namespace("bench", None).unwrap();
    let img = workload.build(&cas);
    suite::push_image(&registry, &cas, "bench/app", "v1", &img);
    let (index_digest, index) =
        publish_seekable(&registry, &rootfs, &VPath::root(), DEFAULT_CHUNK_SIZE).unwrap();
    let index_bytes = index.to_bytes().len() as u64;

    // Lazy cold replicas, each on a fresh node.
    let mut lazy_ttfe = Vec::with_capacity(REPLICAS);
    let mut lazy_first_exec_bytes = 0;
    let mut sibling_ttfe_ns = 0;
    for r in 0..REPLICAS {
        let (engine, _journal, inj) = fresh_lazy_engine();
        let clock = SimClock::new();
        let c = engine
            .pull_lazy(PullSources::primary_only(&registry), &index_digest, &clock)
            .expect("bench lazy pull succeeds");
        for p in first_exec_set(workload, r) {
            c.read_file(&p, &clock).expect("lazy read succeeds");
        }
        lazy_ttfe.push(clock.now().since(hpcc_sim::SimTime::ZERO).0);
        if r == 0 {
            lazy_first_exec_bytes = inj.metrics().get("engine.lazy.fetched_bytes");
            // Sibling on the same node: the shared store already holds
            // the index and the first replica's chunks.
            let t0 = clock.now();
            let sib = engine
                .pull_lazy(PullSources::primary_only(&registry), &index_digest, &clock)
                .unwrap();
            for p in first_exec_set(workload, 0) {
                sib.read_file(&p, &clock).unwrap();
            }
            sibling_ttfe_ns = clock.now().since(t0).0;
        }
    }
    lazy_ttfe.sort_unstable();

    // Eager cold replicas.
    let mut eager_ttfe = Vec::with_capacity(REPLICAS);
    let mut eager_pull_bytes = 0;
    for r in 0..REPLICAS {
        let touch = first_exec_set(workload, r);
        let (ns, bytes) = eager_cold_start(&registry, "bench/app", &touch);
        eager_ttfe.push(ns);
        if r == 0 {
            eager_pull_bytes = bytes;
        }
    }
    eager_ttfe.sort_unstable();

    // Touch-everything comparison.
    let lazy_full_ns = {
        let (engine, _journal, _inj) = fresh_lazy_engine();
        let clock = SimClock::new();
        let c = engine
            .pull_lazy(PullSources::primary_only(&registry), &index_digest, &clock)
            .unwrap();
        c.materialize(&clock).unwrap();
        clock.now().since(hpcc_sim::SimTime::ZERO).0
    };
    let eager_full_ns = eager_full_scan(&registry, "bench/app");

    LazyRow {
        workload: workload.name(),
        files: index.file_paths().count(),
        orig_bytes: index.total_orig_bytes(),
        index_bytes,
        distinct_chunks: index.distinct_chunks().len(),
        first_exec_files: first_exec_set(workload, 0).len(),
        lazy_ttfe_p50_ns: percentile(&lazy_ttfe, 0.50),
        lazy_ttfe_p95_ns: percentile(&lazy_ttfe, 0.95),
        eager_ttfe_p50_ns: percentile(&eager_ttfe, 0.50),
        eager_ttfe_p95_ns: percentile(&eager_ttfe, 0.95),
        sibling_ttfe_ns,
        lazy_first_exec_bytes,
        eager_pull_bytes,
        lazy_full_ns,
        eager_full_ns,
    }
}

/// Run all three workload shapes.
pub fn run_all() -> LazyResults {
    LazyResults {
        rows: WORKLOADS.into_iter().map(bench_workload).collect(),
    }
}

// ------------------------------------------------------------- live gate

fn row<'a>(results: &'a LazyResults, workload: &str) -> Option<&'a LazyRow> {
    results.rows.iter().find(|r| r.workload == workload)
}

/// Structural gates that hold regardless of baseline state:
///
/// 1. On many-small-files, lazy ttfe beats eager cold-start by at least
///    [`LAZY_WIN_FLOOR`]× — the headline claim.
/// 2. On many-small-files, lazy moves strictly fewer bytes to first exec.
/// 3. On many-small-files, a full scan *loses* lazily — the trade-off has
///    two sides or the model is broken.
/// 4. On every shape, a sibling on a warmed node launches faster than the
///    cold p50 — the shared store must pay off.
pub fn live_gate(results: &LazyResults) -> Result<Vec<String>, Vec<String>> {
    let mut errors = Vec::new();
    let mut report = Vec::new();

    let Some(msf) = row(results, "many-small-files") else {
        return Err(vec!["no many-small-files row".to_string()]);
    };
    let win = msf.eager_ttfe_p50_ns as f64 / msf.lazy_ttfe_p50_ns.max(1) as f64;
    if win < LAZY_WIN_FLOOR {
        errors.push(format!(
            "many-small-files: lazy ttfe {:.2} ms must beat eager {:.2} ms by ≥{LAZY_WIN_FLOOR}× (got {win:.2}×)",
            msf.lazy_ttfe_p50_ns as f64 / 1e6,
            msf.eager_ttfe_p50_ns as f64 / 1e6,
        ));
    } else {
        report.push(format!(
            "many-small-files: lazy ttfe {:.2} ms vs eager {:.2} ms ({win:.2}× win)",
            msf.lazy_ttfe_p50_ns as f64 / 1e6,
            msf.eager_ttfe_p50_ns as f64 / 1e6,
        ));
    }
    if msf.lazy_first_exec_bytes >= msf.eager_pull_bytes {
        errors.push(format!(
            "many-small-files: lazy moved {} B to first exec, not under eager's {} B",
            msf.lazy_first_exec_bytes, msf.eager_pull_bytes
        ));
    } else {
        report.push(format!(
            "many-small-files: {} B to first exec vs {} B eager ({:.1}× fewer)",
            msf.lazy_first_exec_bytes,
            msf.eager_pull_bytes,
            msf.eager_pull_bytes as f64 / msf.lazy_first_exec_bytes.max(1) as f64
        ));
    }
    if msf.lazy_full_ns <= msf.eager_full_ns {
        errors.push(format!(
            "many-small-files: full scan should favor eager, but lazy {:.2} ms ≤ eager {:.2} ms",
            msf.lazy_full_ns as f64 / 1e6,
            msf.eager_full_ns as f64 / 1e6
        ));
    } else {
        report.push(format!(
            "many-small-files: full scan lazily {:.2} ms vs eager {:.2} ms (eager wins, as it must)",
            msf.lazy_full_ns as f64 / 1e6,
            msf.eager_full_ns as f64 / 1e6
        ));
    }

    for r in &results.rows {
        if r.sibling_ttfe_ns >= r.lazy_ttfe_p50_ns {
            errors.push(format!(
                "{}: sibling ttfe {:.3} ms not under cold p50 {:.3} ms — shared store not paying off",
                r.workload,
                r.sibling_ttfe_ns as f64 / 1e6,
                r.lazy_ttfe_p50_ns as f64 / 1e6
            ));
        } else {
            report.push(format!(
                "{}: sibling ttfe {:.3} ms vs cold {:.3} ms",
                r.workload,
                r.sibling_ttfe_ns as f64 / 1e6,
                r.lazy_ttfe_p50_ns as f64 / 1e6
            ));
        }
    }

    if errors.is_empty() {
        Ok(report)
    } else {
        Err(errors)
    }
}

// ----------------------------------------------------------------- render

fn render_row(r: &LazyRow) -> Json {
    Json::obj([
        ("workload", Json::Str(r.workload.to_string())),
        ("files", Json::Num(r.files as f64)),
        ("orig_bytes", Json::Num(r.orig_bytes as f64)),
        ("index_bytes", Json::Num(r.index_bytes as f64)),
        ("distinct_chunks", Json::Num(r.distinct_chunks as f64)),
        ("first_exec_files", Json::Num(r.first_exec_files as f64)),
        ("lazy_ttfe_p50_ns", Json::Num(r.lazy_ttfe_p50_ns as f64)),
        ("lazy_ttfe_p95_ns", Json::Num(r.lazy_ttfe_p95_ns as f64)),
        ("eager_ttfe_p50_ns", Json::Num(r.eager_ttfe_p50_ns as f64)),
        ("eager_ttfe_p95_ns", Json::Num(r.eager_ttfe_p95_ns as f64)),
        ("sibling_ttfe_ns", Json::Num(r.sibling_ttfe_ns as f64)),
        (
            "lazy_first_exec_bytes",
            Json::Num(r.lazy_first_exec_bytes as f64),
        ),
        ("eager_pull_bytes", Json::Num(r.eager_pull_bytes as f64)),
        ("lazy_full_ns", Json::Num(r.lazy_full_ns as f64)),
        ("eager_full_ns", Json::Num(r.eager_full_ns as f64)),
    ])
}

/// Render results as the BENCH_lazy.json document.
pub fn render(results: &LazyResults) -> Json {
    Json::obj([
        ("schema", Json::Str("hpcc-bench-lazy/v1".to_string())),
        ("replicas", Json::Num(REPLICAS as f64)),
        ("chunk_size", Json::Num(DEFAULT_CHUNK_SIZE as f64)),
        ("eager_parallelism", Json::Num(EAGER_PARALLELISM as f64)),
        (
            "rows",
            Json::Arr(results.rows.iter().map(render_row).collect()),
        ),
    ])
}

// --------------------------------------------------------------- baseline

/// Compare against the checked-in baseline, median-normalized like the
/// storm and core suites: every row's headline metrics contribute a
/// current/baseline ratio, and a metric drifting more than
/// [`REGRESSION_TOLERANCE`] past the median ratio fails. With pure
/// logical time the median is exactly 1.0 unless the timing model moved.
pub fn compare_to_baseline(
    results: &LazyResults,
    baseline: &Json,
) -> Result<Vec<String>, Vec<String>> {
    let mut errors = Vec::new();
    let base_rows = baseline
        .get("rows")
        .and_then(|b| b.as_arr())
        .ok_or_else(|| vec!["baseline has no `rows` array".to_string()])?;
    let base_metric = |workload: &str, key: &str| {
        base_rows
            .iter()
            .find(|b| b.get("workload").and_then(|v| v.as_str()) == Some(workload))
            .and_then(|b| b.get(key))
            .and_then(|v| v.as_f64())
    };

    let mut ratios: Vec<(String, f64, f64, f64)> = Vec::new();
    for r in &results.rows {
        for (key, cur) in [
            ("lazy_ttfe_p50_ns", r.lazy_ttfe_p50_ns),
            ("lazy_ttfe_p95_ns", r.lazy_ttfe_p95_ns),
            ("eager_ttfe_p50_ns", r.eager_ttfe_p50_ns),
            ("sibling_ttfe_ns", r.sibling_ttfe_ns),
            ("lazy_full_ns", r.lazy_full_ns),
            ("eager_full_ns", r.eager_full_ns),
        ] {
            let label = format!("{}.{key}", r.workload);
            let Some(base) = base_metric(r.workload, key) else {
                errors.push(format!(
                    "{label}: no baseline entry (re-bless with `bench_lazy --bless`)"
                ));
                continue;
            };
            if base <= 0.0 {
                errors.push(format!("{label}: baseline value is not positive"));
                continue;
            }
            ratios.push((label, cur as f64, base, cur as f64 / base));
        }
    }
    if !errors.is_empty() {
        return Err(errors);
    }
    if ratios.is_empty() {
        return Err(vec!["no rows to compare".to_string()]);
    }

    let mut sorted: Vec<f64> = ratios.iter().map(|(_, _, _, q)| *q).collect();
    sorted.sort_by(|a, b| a.total_cmp(b));
    let median = sorted[sorted.len() / 2];
    let limit = median * (1.0 + REGRESSION_TOLERANCE);

    let mut report = vec![format!(
        "median current/baseline ratio {median:.3} (timing-model drift factor)"
    )];
    for (label, cur, base, ratio) in &ratios {
        if *ratio > limit {
            errors.push(format!(
                "{label}: {:.2} ms vs baseline {:.2} ms — ratio {ratio:.3} exceeds median {median:.3} by more than {:.0}%",
                cur / 1e6,
                base / 1e6,
                REGRESSION_TOLERANCE * 100.0
            ));
        } else {
            report.push(format!(
                "{label}: {:.2} ms vs {:.2} ms baseline (ratio {ratio:.3})",
                cur / 1e6,
                base / 1e6
            ));
        }
    }
    if errors.is_empty() {
        Ok(report)
    } else {
        Err(errors)
    }
}

/// Load and parse the baseline file.
pub fn load_baseline() -> Result<Json, String> {
    let path = baseline_path();
    let text = std::fs::read_to_string(&path).map_err(|e| {
        format!(
            "cannot read baseline {} ({e}); create it with `bench_lazy --bless`",
            path.display()
        )
    })?;
    json::parse(&text).map_err(|e| format!("baseline {}: {e}", path.display()))
}

/// A markdown time-to-first-exec table for EXPERIMENTS.md.
pub fn render_markdown_table(results: &LazyResults) -> String {
    let mut out = String::from(
        "| shape | files | lazy ttfe p50 | eager ttfe p50 | win | first-exec bytes (lazy/eager) | sibling ttfe | full scan (lazy/eager) |\n\
         |---|---:|---:|---:|---:|---:|---:|---:|\n",
    );
    let ms = |ns: u64| format!("{:.2} ms", ns as f64 / 1e6);
    let kb = |b: u64| format!("{:.0} KiB", b as f64 / 1024.0);
    for r in &results.rows {
        out.push_str(&format!(
            "| {} | {} | {} | {} | {:.2}× | {} / {} | {} | {} / {} |\n",
            r.workload,
            r.files,
            ms(r.lazy_ttfe_p50_ns),
            ms(r.eager_ttfe_p50_ns),
            r.eager_ttfe_p50_ns as f64 / r.lazy_ttfe_p50_ns.max(1) as f64,
            kb(r.lazy_first_exec_bytes),
            kb(r.eager_pull_bytes),
            ms(r.sibling_ttfe_ns),
            ms(r.lazy_full_ns),
            ms(r.eager_full_ns),
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    /// One shape measured end to end satisfies the structural gates and
    /// renders a well-formed row.
    #[test]
    fn many_small_files_row_passes_gates() {
        let row = bench_workload(Workload::ManySmallFiles);
        assert!(
            row.lazy_ttfe_p50_ns < row.eager_ttfe_p50_ns,
            "lazy ttfe {} must beat eager {}",
            row.lazy_ttfe_p50_ns,
            row.eager_ttfe_p50_ns
        );
        assert!(row.lazy_first_exec_bytes < row.eager_pull_bytes);
        assert!(
            row.lazy_full_ns > row.eager_full_ns,
            "full scan favors eager"
        );
        assert!(row.sibling_ttfe_ns < row.lazy_ttfe_p50_ns);
        let json = render(&LazyResults { rows: vec![row] });
        assert!(json.render().contains("many-small-files"));
    }

    /// Two runs of one shape are byte-identical (logical time only).
    #[test]
    fn rows_are_deterministic() {
        let a = render(&LazyResults {
            rows: vec![bench_workload(Workload::Small)],
        });
        let b = render(&LazyResults {
            rows: vec![bench_workload(Workload::Small)],
        });
        assert_eq!(a.render(), b.render());
    }

    #[test]
    fn first_exec_sets_are_within_the_image() {
        let cas = Cas::new();
        for w in WORKLOADS {
            let (rootfs, _, _) = flattened_rootfs(w, &cas);
            for r in 0..REPLICAS {
                for p in first_exec_set(w, r) {
                    assert!(
                        rootfs.exists(&VPath::root().join(&p)),
                        "{} missing {p}",
                        w.name()
                    );
                }
            }
        }
    }
}

//! A minimal JSON document model: enough to write `BENCH_pipeline.json`
//! and read the checked-in baseline back for the regression gate, without
//! pulling a serialization dependency into the workspace.
//!
//! Numbers are stored as `f64`; the bench writes only integers (ns, byte
//! and blob counts) and short floats (hit rates, speedups), both well
//! inside `f64`'s exact range.

use std::collections::BTreeMap;
use std::fmt::Write as _;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    Null,
    Bool(bool),
    Num(f64),
    Str(String),
    Arr(Vec<Json>),
    /// Object keys are sorted (BTreeMap) so rendering is deterministic.
    Obj(BTreeMap<String, Json>),
}

impl Json {
    pub fn obj(pairs: impl IntoIterator<Item = (&'static str, Json)>) -> Json {
        Json::Obj(pairs.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
    }

    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(m) => m.get(key),
            _ => None,
        }
    }

    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    pub fn as_u64(&self) -> Option<u64> {
        self.as_f64().map(|n| n as u64)
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Pretty-print with two-space indentation and a trailing newline.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, 0);
        out.push('\n');
        out
    }

    fn write(&self, out: &mut String, indent: usize) {
        let pad = "  ".repeat(indent + 1);
        let close = "  ".repeat(indent);
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => {
                let _ = write!(out, "{b}");
            }
            Json::Num(n) => {
                if n.fract() == 0.0 && n.abs() < 9.0e15 {
                    let _ = write!(out, "{}", *n as i64);
                } else {
                    let _ = write!(out, "{n}");
                }
            }
            Json::Str(s) => write_escaped(out, s),
            Json::Arr(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('\n');
                    out.push_str(&pad);
                    item.write(out, indent + 1);
                }
                out.push('\n');
                out.push_str(&close);
                out.push(']');
            }
            Json::Obj(map) => {
                if map.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push('{');
                for (i, (k, v)) in map.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('\n');
                    out.push_str(&pad);
                    write_escaped(out, k);
                    out.push_str(": ");
                    v.write(out, indent + 1);
                }
                out.push('\n');
                out.push_str(&close);
                out.push('}');
            }
        }
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Parse a JSON document. Supports the full value grammar the renderer
/// emits (and standard escapes); errors carry a byte offset.
pub fn parse(text: &str) -> Result<Json, String> {
    let bytes = text.as_bytes();
    let mut pos = 0usize;
    let value = parse_value(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(format!("trailing data at byte {pos}"));
    }
    Ok(value)
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(bytes: &[u8], pos: &mut usize, b: u8) -> Result<(), String> {
    if *pos < bytes.len() && bytes[*pos] == b {
        *pos += 1;
        Ok(())
    } else {
        Err(format!("expected '{}' at byte {pos}", b as char))
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        None => Err("unexpected end of input".into()),
        Some(b'{') => {
            *pos += 1;
            let mut map = BTreeMap::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b'}') {
                *pos += 1;
                return Ok(Json::Obj(map));
            }
            loop {
                skip_ws(bytes, pos);
                let key = parse_string(bytes, pos)?;
                skip_ws(bytes, pos);
                expect(bytes, pos, b':')?;
                let value = parse_value(bytes, pos)?;
                map.insert(key, value);
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b'}') => {
                        *pos += 1;
                        return Ok(Json::Obj(map));
                    }
                    _ => return Err(format!("expected ',' or '}}' at byte {pos}")),
                }
            }
        }
        Some(b'[') => {
            *pos += 1;
            let mut items = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b']') {
                *pos += 1;
                return Ok(Json::Arr(items));
            }
            loop {
                items.push(parse_value(bytes, pos)?);
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b']') => {
                        *pos += 1;
                        return Ok(Json::Arr(items));
                    }
                    _ => return Err(format!("expected ',' or ']' at byte {pos}")),
                }
            }
        }
        Some(b'"') => parse_string(bytes, pos).map(Json::Str),
        Some(b't') => parse_lit(bytes, pos, "true", Json::Bool(true)),
        Some(b'f') => parse_lit(bytes, pos, "false", Json::Bool(false)),
        Some(b'n') => parse_lit(bytes, pos, "null", Json::Null),
        Some(_) => parse_number(bytes, pos),
    }
}

fn parse_lit(bytes: &[u8], pos: &mut usize, lit: &str, value: Json) -> Result<Json, String> {
    if bytes[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(value)
    } else {
        Err(format!("bad literal at byte {pos}"))
    }
}

fn parse_number(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    let start = *pos;
    while *pos < bytes.len()
        && matches!(bytes[*pos], b'-' | b'+' | b'.' | b'e' | b'E' | b'0'..=b'9')
    {
        *pos += 1;
    }
    std::str::from_utf8(&bytes[start..*pos])
        .ok()
        .and_then(|s| s.parse::<f64>().ok())
        .map(Json::Num)
        .ok_or_else(|| format!("bad number at byte {start}"))
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, String> {
    expect(bytes, pos, b'"')?;
    let mut out = String::new();
    loop {
        match bytes.get(*pos) {
            None => return Err("unterminated string".into()),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match bytes.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'u') => {
                        let hex = bytes
                            .get(*pos + 1..*pos + 5)
                            .and_then(|h| std::str::from_utf8(h).ok())
                            .and_then(|h| u32::from_str_radix(h, 16).ok())
                            .ok_or_else(|| format!("bad \\u escape at byte {pos}"))?;
                        out.push(char::from_u32(hex).unwrap_or('\u{fffd}'));
                        *pos += 4;
                    }
                    _ => return Err(format!("bad escape at byte {pos}")),
                }
                *pos += 1;
            }
            Some(_) => {
                // Push the full UTF-8 character starting here.
                let rest = std::str::from_utf8(&bytes[*pos..])
                    .map_err(|_| format!("invalid utf-8 at byte {pos}"))?;
                let c = rest.chars().next().unwrap();
                out.push(c);
                *pos += c.len_utf8();
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrips_nested_document() {
        let doc = Json::obj([
            ("name", Json::Str("bench \"pipeline\"\n".into())),
            ("count", Json::Num(42.0)),
            ("rate", Json::Num(0.5)),
            ("ok", Json::Bool(true)),
            ("none", Json::Null),
            (
                "items",
                Json::Arr(vec![Json::Num(1.0), Json::Num(2.0), Json::Arr(vec![])]),
            ),
        ]);
        let text = doc.render();
        assert_eq!(parse(&text).unwrap(), doc);
    }

    #[test]
    fn parses_hand_written_json() {
        let v = parse("  {\"a\": [1, 2.5, -3e2], \"b\": {\"c\": \"\\u0041\"}} ").unwrap();
        assert_eq!(
            v.get("a").unwrap().as_arr().unwrap()[2].as_f64(),
            Some(-300.0)
        );
        assert_eq!(v.get("b").unwrap().get("c").unwrap().as_str(), Some("A"));
    }

    #[test]
    fn rejects_malformed_input() {
        assert!(parse("{\"a\": }").is_err());
        assert!(parse("[1, 2").is_err());
        assert!(parse("{} extra").is_err());
    }

    #[test]
    fn integers_render_without_fraction() {
        let text = Json::Num(123456789.0).render();
        assert_eq!(text.trim(), "123456789");
    }
}

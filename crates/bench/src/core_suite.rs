//! Raw-speed microbenches for the simulator core + the `bench-core` gate.
//!
//! Every other benchmark in this crate measures *logical* time; this suite
//! measures *wall-clock* time of the primitives everything sits on: DES
//! event dispatch (timing wheel vs the retained `BinaryHeap` reference),
//! schedule/cancel/reschedule churn, blobstore get/put, span open/close
//! (interned + batched vs an emulation of the pre-refactor per-event
//! emission), and counter bumps (string-keyed vs batched typed handles).
//!
//! Two gates, designed so the hard one is machine-independent:
//!
//! * **Speedup floor** — the event-dispatch speedup is the ratio of the
//!   legacy path to the current path *measured live in the same run*, so
//!   it compares code, not machines. `--check` fails if it drops below
//!   [`DISPATCH_SPEEDUP_FLOOR`].
//! * **Regression gate** — ns/op against the checked-in baseline
//!   (`tests/bench/BENCH_core_baseline.json`), normalized by the median
//!   current/baseline ratio across all benches. A uniformly faster or
//!   slower machine shifts every ratio equally and passes; one bench
//!   regressing more than [`REGRESSION_TOLERANCE`] past the median fails.
//!   `--bless` re-baselines.
//!
//! All workloads are seeded and deterministic in *what* they execute; only
//! the wall-clock measurement varies run to run, which is why the driver
//! keeps the best of several repeats.

use crate::json::{self, Json};
use hpcc_crypto::sha256::Digest;
use hpcc_sim::des::{DesBackend, Engine};
use hpcc_sim::obs::{Stage, Tracer};
use hpcc_sim::time::{SimSpan, SimTime};
use hpcc_sim::{sym, CounterBatch, MetricsRegistry};
use hpcc_storage::BlobStore;
use std::path::PathBuf;
use std::sync::Arc;
use std::time::Instant;

/// Live gate: current event dispatch must beat the legacy path by at
/// least this factor (events/sec), measured in the same process.
pub const DISPATCH_SPEEDUP_FLOOR: f64 = 5.0;

/// Baseline gate: a bench whose current/baseline ns-per-op ratio exceeds
/// the run's median ratio by more than this fraction is a regression.
pub const REGRESSION_TOLERANCE: f64 = 0.15;

/// Where the current results land (repo root, next to the other BENCH_*).
pub fn results_path() -> PathBuf {
    PathBuf::from(concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/../../BENCH_core.json"
    ))
}

/// The checked-in baseline the `--check` gate compares against.
pub fn baseline_path() -> PathBuf {
    PathBuf::from(concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/../../tests/bench/BENCH_core_baseline.json"
    ))
}

// ------------------------------------------------------------- workloads

/// Deterministic 64-bit LCG (same constants as the engine's lazy layer);
/// benches must not depend on process entropy.
struct Lcg(u64);

impl Lcg {
    fn new(seed: u64) -> Lcg {
        Lcg(seed | 1)
    }

    fn next(&mut self) -> u64 {
        self.0 = self
            .0
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        self.0 >> 11
    }
}

/// Concurrent self-rescheduling chains during dispatch benches. This is the
/// held queue occupancy, and it is what separates the structures: a
/// [`BinaryHeap`] pays O(log n) sifts over a heap array too big for L1/L2
/// while the wheel stays O(1) per event — a sim with per-node timers,
/// heartbeats and in-flight pulls holds thousands of pending events.
const CHAINS: u64 = 65_536;

/// Delay spread for chain rescheduling; with [`CHAINS`] chains this keeps
/// the mean inter-event gap around one tick so wheel slot scans stay
/// amortized and cascades shallow.
const DISPATCH_SPREAD: u64 = 1 << 16;

/// Faithful emulation of the pre-refactor `SpanRecord`: owned `String`
/// name and attrs, built and pushed under the tracer state lock.
#[allow(dead_code)] // fields exist to pay the old allocation/layout costs
struct LegacyRecord {
    id: u64,
    parent: Option<u64>,
    name: String,
    stage: Stage,
    start: SimTime,
    end: SimTime,
    attrs: Vec<(String, String)>,
}

/// Faithful emulation of the pre-refactor `Tracer::record` hot path: take
/// the state lock, allocate the record, and key two registry walks with
/// `format!` strings — the exact per-event costs interning and batching
/// removed.
struct LegacyTracer {
    state: std::sync::Mutex<(u64, Vec<LegacyRecord>)>,
    registry: Arc<MetricsRegistry>,
}

impl LegacyTracer {
    fn new(registry: Arc<MetricsRegistry>) -> LegacyTracer {
        LegacyTracer {
            state: std::sync::Mutex::new((0, Vec::new())),
            registry,
        }
    }

    fn record(&self, name: &str, stage: Stage, start: SimTime, end: SimTime) {
        let mut st = self.state.lock().unwrap();
        st.0 += 1;
        let id = st.0;
        let record = LegacyRecord {
            id,
            parent: None,
            name: name.to_string(),
            stage,
            start,
            end,
            attrs: Vec::new(),
        };
        self.registry.incr(&format!("span.{name}.count"));
        self.registry
            .observe(&format!("span.{name}.ns"), end.0.saturating_sub(start.0));
        st.1.push(record);
    }
}

struct DispatchWorld {
    remaining: u64,
    fired: u64,
    rng: Lcg,
    tracer: Arc<Tracer>,
    legacy: LegacyTracer,
}

impl DispatchWorld {
    fn new(events: u64) -> DispatchWorld {
        DispatchWorld {
            remaining: events.saturating_sub(CHAINS),
            fired: 0,
            rng: Lcg::new(0x5eed_c0de),
            tracer: Tracer::new(),
            legacy: LegacyTracer::new(Arc::new(MetricsRegistry::new())),
        }
    }
}

/// Current hot path: wheel dispatch + interned span name + batched metric
/// emission through the tracer.
fn chain_current(eng: &mut Engine<DispatchWorld>, w: &mut DispatchWorld) {
    let now = eng.now();
    w.tracer.record(
        sym!("core.dispatch"),
        Stage::Other,
        now,
        now + SimSpan::nanos(64),
        &[],
    );
    w.fired += 1;
    if w.remaining > 0 {
        w.remaining -= 1;
        let dt = w.rng.next() % DISPATCH_SPREAD + 1;
        eng.after(SimSpan::nanos(dt), chain_current);
    }
}

/// Pre-refactor emulation: heap dispatch + the per-event span costs the
/// old `Tracer::record` paid (see [`LegacyTracer`]).
fn chain_legacy(eng: &mut Engine<DispatchWorld>, w: &mut DispatchWorld) {
    let now = eng.now();
    w.legacy
        .record("core.dispatch", Stage::Other, now, now + SimSpan::nanos(64));
    w.fired += 1;
    if w.remaining > 0 {
        w.remaining -= 1;
        let dt = w.rng.next() % DISPATCH_SPREAD + 1;
        eng.after(SimSpan::nanos(dt), chain_legacy);
    }
}

fn run_dispatch(
    ops: u64,
    backend: DesBackend,
    chain: fn(&mut Engine<DispatchWorld>, &mut DispatchWorld),
) -> u64 {
    let mut eng = Engine::<DispatchWorld>::with_backend(backend);
    let mut w = DispatchWorld::new(ops);
    for i in 0..CHAINS {
        eng.at(SimTime(i * 31 + 1), chain);
    }
    let start = Instant::now();
    eng.run_to_completion(&mut w, ops + CHAINS + 16);
    w.tracer.flush(); // the sim barrier belongs to the measured path
    let elapsed = start.elapsed().as_nanos() as u64;
    assert!(w.fired >= ops, "dispatch bench fired {} < {ops}", w.fired);
    elapsed
}

fn dispatch_wheel(ops: u64) -> u64 {
    run_dispatch(ops, DesBackend::TimingWheel, chain_current)
}

fn dispatch_legacy(ops: u64) -> u64 {
    run_dispatch(ops, DesBackend::ReferenceHeap, chain_legacy)
}

struct ChurnWorld {
    fired: u64,
}

/// Schedule `ops` events at scattered times, cancel roughly a third,
/// schedule replacements, then drain — the WLM/adapt tick pattern.
fn run_churn(ops: u64, backend: DesBackend) -> u64 {
    let mut eng = Engine::<ChurnWorld>::with_backend(backend);
    let mut w = ChurnWorld { fired: 0 };
    let mut rng = Lcg::new(0xc4a5_7e11);
    let fire = |_: &mut Engine<ChurnWorld>, w: &mut ChurnWorld| w.fired += 1;
    let start = Instant::now();
    let mut ids = Vec::with_capacity(ops as usize);
    for i in 0..ops {
        ids.push(eng.at(SimTime(rng.next() % (1 << 22) + 1), fire));
        if i % 3 == 0 {
            let victim = ids[rng.next() as usize % ids.len()];
            eng.cancel(victim);
            ids.push(eng.at(SimTime(rng.next() % (1 << 22) + 1), fire));
        }
    }
    eng.run_to_completion(&mut w, 2 * ops + 16);
    let elapsed = start.elapsed().as_nanos() as u64;
    assert!(w.fired > 0);
    elapsed
}

fn churn_wheel(ops: u64) -> u64 {
    run_churn(ops, DesBackend::TimingWheel)
}

fn churn_heap(ops: u64) -> u64 {
    run_churn(ops, DesBackend::ReferenceHeap)
}

/// Mixed blobstore traffic: 1 insert per 3 hits over a fixed pool of
/// 4 KiB blobs, the shape of a warm node-local cache.
fn blobstore_get_put(ops: u64) -> u64 {
    const POOL: usize = 512;
    let store = BlobStore::new(8, 1 << 30);
    let mut rng = Lcg::new(0xb10b_5701);
    let blobs: Vec<(Digest, Arc<Vec<u8>>)> = (0..POOL)
        .map(|_| {
            let mut d = [0u8; 32];
            for chunk in d.chunks_mut(8) {
                let b = rng.next().to_le_bytes();
                chunk.copy_from_slice(&b[..chunk.len()]);
            }
            (Digest(d), Arc::new(vec![0xA5u8; 4096]))
        })
        .collect();
    let start = Instant::now();
    for i in 0..ops {
        let (d, data) = &blobs[rng.next() as usize % POOL];
        if i % 4 == 0 {
            store.insert(*d, Arc::clone(data));
        } else {
            std::hint::black_box(store.get(d));
        }
    }
    start.elapsed().as_nanos() as u64
}

/// Current span lifecycle: `sym!`-cached names/keys, batched emission.
fn span_open_close_interned(ops: u64) -> u64 {
    let tr = Tracer::new();
    let start = Instant::now();
    for i in 0..ops {
        let t0 = SimTime(i * 10);
        let id = tr.begin(sym!("core.span"), Stage::Other, t0);
        tr.attr(id, sym!("worker"), i & 7);
        tr.end(id, SimTime(i * 10 + 5));
    }
    tr.flush();
    start.elapsed().as_nanos() as u64
}

/// What the pre-refactor span storage looked like per finished span:
/// owned name plus owned attr pairs.
type LegacySpanRow = (u64, String, Vec<(String, String)>);

/// Pre-refactor span lifecycle emulation: owned `String` name and attr
/// key per span, plus two `format!`-keyed registry walks per end.
fn span_open_close_legacy(ops: u64) -> u64 {
    let registry = MetricsRegistry::new();
    let mut finished: Vec<LegacySpanRow> = Vec::with_capacity(ops as usize);
    let start = Instant::now();
    for i in 0..ops {
        let name = "core.span".to_string();
        let attrs = vec![("worker".to_string(), (i & 7).to_string())];
        registry.incr(&format!("span.{name}.count"));
        registry.observe(&format!("span.{name}.ns"), 5);
        finished.push((i * 10, name, attrs));
    }
    let elapsed = start.elapsed().as_nanos() as u64;
    std::hint::black_box(&finished);
    elapsed
}

/// String-keyed counter bump: one registry lock + `BTreeMap` walk per op.
fn counter_direct(ops: u64) -> u64 {
    let registry = MetricsRegistry::new();
    let start = Instant::now();
    for _ in 0..ops {
        registry.incr("core.counter");
    }
    start.elapsed().as_nanos() as u64
}

/// Batched typed-handle bump: local saturating accumulate, one flush.
fn counter_batched(ops: u64) -> u64 {
    let registry = MetricsRegistry::new();
    let mut batch = CounterBatch::new(registry.typed_counter("core.counter"));
    let start = Instant::now();
    for _ in 0..ops {
        batch.incr();
    }
    batch.flush();
    let elapsed = start.elapsed().as_nanos() as u64;
    assert_eq!(registry.get("core.counter"), ops);
    elapsed
}

// -------------------------------------------------------------- the suite

/// One microbench: a workload sized in ops, returning elapsed wall ns.
pub struct CoreBenchDef {
    pub name: &'static str,
    pub quick_ops: u64,
    pub full_ops: u64,
    pub run: fn(u64) -> u64,
}

pub const CORE_BENCHES: &[CoreBenchDef] = &[
    // The dispatch pair feeds the speedup floor, so quick mode keeps the
    // full workload (its per-op profile is occupancy-shaped and ~0.3 s
    // total); only the repeat count drops.
    CoreBenchDef {
        name: "des.event_dispatch.wheel",
        quick_ops: 200_000,
        full_ops: 200_000,
        run: dispatch_wheel,
    },
    CoreBenchDef {
        name: "des.event_dispatch.legacy_heap",
        quick_ops: 200_000,
        full_ops: 200_000,
        run: dispatch_legacy,
    },
    CoreBenchDef {
        name: "des.sched_churn.wheel",
        quick_ops: 50_000,
        full_ops: 200_000,
        run: churn_wheel,
    },
    CoreBenchDef {
        name: "des.sched_churn.heap",
        quick_ops: 50_000,
        full_ops: 200_000,
        run: churn_heap,
    },
    CoreBenchDef {
        name: "blobstore.get_put",
        quick_ops: 100_000,
        full_ops: 400_000,
        run: blobstore_get_put,
    },
    CoreBenchDef {
        name: "obs.span_open_close.interned",
        quick_ops: 50_000,
        full_ops: 200_000,
        run: span_open_close_interned,
    },
    CoreBenchDef {
        name: "obs.span_open_close.legacy",
        quick_ops: 50_000,
        full_ops: 200_000,
        run: span_open_close_legacy,
    },
    CoreBenchDef {
        name: "metrics.counter_bump.direct",
        quick_ops: 200_000,
        full_ops: 1_000_000,
        run: counter_direct,
    },
    CoreBenchDef {
        name: "metrics.counter_bump.batched",
        quick_ops: 200_000,
        full_ops: 1_000_000,
        run: counter_batched,
    },
];

/// Best-of-repeats measurement of one bench.
#[derive(Debug, Clone)]
pub struct BenchResult {
    pub name: &'static str,
    pub ops: u64,
    pub best_total_ns: u64,
}

impl BenchResult {
    pub fn ns_per_op(&self) -> f64 {
        self.best_total_ns as f64 / self.ops as f64
    }

    pub fn ops_per_sec(&self) -> f64 {
        if self.best_total_ns == 0 {
            0.0
        } else {
            self.ops as f64 * 1e9 / self.best_total_ns as f64
        }
    }
}

/// Run the whole suite. Quick mode shrinks workloads and repeats — used by
/// the `bench-core` ci.sh stage; `--bless` should use full mode.
///
/// Repeats are interleaved in whole-suite rounds (per-bench min across
/// rounds) rather than run back to back: a transient machine-load spike
/// then dents every bench a little instead of landing squarely on one,
/// which is the failure mode the median-normalized gate cannot absorb.
pub fn run_all(quick: bool) -> Vec<BenchResult> {
    let repeats = if quick { 3 } else { 5 };
    let ops: Vec<u64> = CORE_BENCHES
        .iter()
        .map(|def| if quick { def.quick_ops } else { def.full_ops })
        .collect();
    // Warmup round at a fraction of each size.
    for (def, &n) in CORE_BENCHES.iter().zip(&ops) {
        (def.run)(n / 10);
    }
    let mut best = vec![u64::MAX; CORE_BENCHES.len()];
    for _ in 0..repeats {
        for (i, def) in CORE_BENCHES.iter().enumerate() {
            best[i] = best[i].min((def.run)(ops[i]));
        }
    }
    CORE_BENCHES
        .iter()
        .enumerate()
        .map(|(i, def)| BenchResult {
            name: def.name,
            ops: ops[i],
            best_total_ns: best[i].max(1),
        })
        .collect()
}

fn find<'a>(results: &'a [BenchResult], name: &str) -> Option<&'a BenchResult> {
    results.iter().find(|r| r.name == name)
}

/// Live speedups: legacy/new ns-per-op ratios from the same run.
pub fn speedups(results: &[BenchResult]) -> Vec<(&'static str, f64)> {
    let pairs: [(&'static str, &str, &str); 4] = [
        (
            "event_dispatch",
            "des.event_dispatch.legacy_heap",
            "des.event_dispatch.wheel",
        ),
        (
            "sched_churn",
            "des.sched_churn.heap",
            "des.sched_churn.wheel",
        ),
        (
            "span_open_close",
            "obs.span_open_close.legacy",
            "obs.span_open_close.interned",
        ),
        (
            "counter_bump",
            "metrics.counter_bump.direct",
            "metrics.counter_bump.batched",
        ),
    ];
    pairs
        .iter()
        .filter_map(|(label, old, new)| {
            let old = find(results, old)?;
            let new = find(results, new)?;
            (new.ns_per_op() > 0.0).then(|| (*label, old.ns_per_op() / new.ns_per_op()))
        })
        .collect()
}

/// The machine-independent acceptance gate: dispatch speedup measured in
/// this very run must clear [`DISPATCH_SPEEDUP_FLOOR`].
pub fn live_gate(results: &[BenchResult]) -> Result<Vec<String>, Vec<String>> {
    let sp = speedups(results);
    let mut report = Vec::new();
    let mut errors = Vec::new();
    for (label, x) in &sp {
        report.push(format!("{label}: {x:.2}x over legacy path"));
    }
    match sp.iter().find(|(l, _)| *l == "event_dispatch") {
        Some((_, x)) if *x >= DISPATCH_SPEEDUP_FLOOR => {}
        Some((_, x)) => errors.push(format!(
            "event dispatch speedup {x:.2}x below the {DISPATCH_SPEEDUP_FLOOR:.0}x floor"
        )),
        None => errors.push("event dispatch benches missing from run".to_string()),
    }
    if errors.is_empty() {
        Ok(report)
    } else {
        Err(errors)
    }
}

/// Render results (and live speedups) as the BENCH_core.json document.
pub fn render(results: &[BenchResult], quick: bool) -> Json {
    let benches = results
        .iter()
        .map(|r| {
            Json::obj([
                ("name", Json::Str(r.name.to_string())),
                ("ops", Json::Num(r.ops as f64)),
                ("best_total_ns", Json::Num(r.best_total_ns as f64)),
                (
                    "ns_per_op",
                    Json::Num((r.ns_per_op() * 100.0).round() / 100.0),
                ),
            ])
        })
        .collect();
    let sp = speedups(results)
        .into_iter()
        .map(|(label, x)| {
            Json::obj([
                ("name", Json::Str(label.to_string())),
                ("speedup", Json::Num((x * 100.0).round() / 100.0)),
            ])
        })
        .collect();
    Json::obj([
        ("schema", Json::Str("hpcc-bench-core/v1".to_string())),
        (
            "mode",
            Json::Str(if quick { "quick" } else { "full" }.to_string()),
        ),
        ("benches", Json::Arr(benches)),
        ("speedups", Json::Arr(sp)),
    ])
}

/// Render the baseline document: one section per mode, because workload
/// sizes (and therefore per-op profiles) differ between quick and full
/// runs — each mode must compare against its own numbers.
pub fn render_baseline(full: &[BenchResult], quick: &[BenchResult]) -> Json {
    Json::obj([
        ("schema", Json::Str("hpcc-bench-core/v1".to_string())),
        ("full", render(full, false)),
        ("quick", render(quick, true)),
    ])
}

/// Compare against the checked-in baseline (the section matching this
/// run's mode), normalized by the median current/baseline ratio so
/// absolute machine speed cancels out: on a machine uniformly 2x slower
/// every ratio doubles, the median doubles with them, and nothing trips;
/// one structure regressing relative to the rest does.
pub fn compare_to_baseline(
    results: &[BenchResult],
    baseline: &Json,
    quick: bool,
) -> Result<Vec<String>, Vec<String>> {
    let mut errors = Vec::new();
    let mode = if quick { "quick" } else { "full" };
    let base_benches = baseline
        .get(mode)
        .and_then(|m| m.get("benches"))
        .and_then(|b| b.as_arr())
        .ok_or_else(|| vec![format!("baseline has no `{mode}.benches` array")])?;
    let base_ns = |name: &str| {
        base_benches
            .iter()
            .find(|b| b.get("name").and_then(|v| v.as_str()) == Some(name))
            .and_then(|b| b.get("ns_per_op"))
            .and_then(|v| v.as_f64())
    };

    let mut ratios: Vec<(&'static str, f64, f64, f64)> = Vec::new();
    for r in results {
        let Some(base) = base_ns(r.name) else {
            errors.push(format!(
                "{}: no baseline entry (re-bless with `bench_core --bless`)",
                r.name
            ));
            continue;
        };
        if base <= 0.0 {
            errors.push(format!("{}: baseline ns_per_op is not positive", r.name));
            continue;
        }
        ratios.push((r.name, r.ns_per_op(), base, r.ns_per_op() / base));
    }
    if !errors.is_empty() {
        return Err(errors);
    }
    if ratios.is_empty() {
        return Err(vec!["no benches to compare".to_string()]);
    }

    let mut sorted: Vec<f64> = ratios.iter().map(|(_, _, _, q)| *q).collect();
    sorted.sort_by(|a, b| a.total_cmp(b));
    let median = sorted[sorted.len() / 2];
    let limit = median * (1.0 + REGRESSION_TOLERANCE);

    let mut report = vec![format!(
        "median current/baseline ratio {median:.3} (machine speed factor)"
    )];
    for (name, cur, base, ratio) in &ratios {
        if *ratio > limit {
            errors.push(format!(
                "{name}: {cur:.1} ns/op vs baseline {base:.1} — ratio {ratio:.3} \
                 exceeds median {median:.3} by more than {:.0}%",
                REGRESSION_TOLERANCE * 100.0
            ));
        } else {
            report.push(format!(
                "{name}: {cur:.1} ns/op vs {base:.1} baseline (ratio {ratio:.3})"
            ));
        }
    }
    if errors.is_empty() {
        Ok(report)
    } else {
        Err(errors)
    }
}

/// Extra measurement rounds granted to benches the baseline comparison
/// flags, before a failure is believed.
const CHECK_RETRIES: usize = 4;

/// The `--check` driver around [`compare_to_baseline`]: a flagged bench is
/// re-measured (min-merged into its result) up to `CHECK_RETRIES` more
/// rounds before the gate fails. Real regressions reproduce every round;
/// a load spike that dented one bench's original rounds does not — and on
/// shared hardware that spike is otherwise the dominant failure mode.
pub fn check_against_baseline(
    results: &mut [BenchResult],
    baseline: &Json,
    quick: bool,
) -> Result<Vec<String>, Vec<String>> {
    for _ in 0..CHECK_RETRIES {
        let errors = match compare_to_baseline(results, baseline, quick) {
            Ok(report) => return Ok(report),
            Err(errors) => errors,
        };
        let suspects: Vec<usize> = CORE_BENCHES
            .iter()
            .enumerate()
            .filter(|(_, def)| {
                errors.iter().any(|e| {
                    e.starts_with(&format!("{}:", def.name)) && e.contains("exceeds median")
                })
            })
            .map(|(i, _)| i)
            .collect();
        if suspects.is_empty() {
            // Structural errors (missing entries, bad baseline) are not
            // measurement noise; retrying cannot fix them.
            return Err(errors);
        }
        for i in suspects {
            let rerun = (CORE_BENCHES[i].run)(results[i].ops).max(1);
            results[i].best_total_ns = results[i].best_total_ns.min(rerun);
        }
    }
    compare_to_baseline(results, baseline, quick)
}

/// Load and parse the baseline file.
pub fn load_baseline() -> Result<Json, String> {
    let path = baseline_path();
    let text = std::fs::read_to_string(&path).map_err(|e| {
        format!(
            "cannot read baseline {} ({e}); create it with `bench_core --bless`",
            path.display()
        )
    })?;
    json::parse(&text).map_err(|e| format!("baseline {}: {e}", path.display()))
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Tiny workloads: the suite must run end to end and every bench pair
    /// needed by the gates must exist.
    #[test]
    fn suite_runs_and_exposes_gate_pairs() {
        let results: Vec<BenchResult> = CORE_BENCHES
            .iter()
            .map(|def| BenchResult {
                name: def.name,
                ops: 500,
                best_total_ns: (def.run)(500).max(1),
            })
            .collect();
        let sp = speedups(&results);
        assert_eq!(sp.len(), 4, "{sp:?}");
        let doc = render(&results, true);
        assert_eq!(
            doc.get("schema").and_then(|s| s.as_str()),
            Some("hpcc-bench-core/v1")
        );
        assert_eq!(
            doc.get("benches").and_then(|b| b.as_arr()).map(|b| b.len()),
            Some(CORE_BENCHES.len())
        );
    }

    #[test]
    fn normalized_compare_tolerates_uniform_slowdown_but_not_skew() {
        let results = vec![
            BenchResult {
                name: "des.event_dispatch.wheel",
                ops: 1000,
                best_total_ns: 100_000,
            },
            BenchResult {
                name: "des.sched_churn.wheel",
                ops: 1000,
                best_total_ns: 100_000,
            },
            BenchResult {
                name: "blobstore.get_put",
                ops: 1000,
                best_total_ns: 100_000,
            },
        ];
        let mk_baseline = |ns: [f64; 3]| {
            let benches = Json::obj([(
                "benches",
                Json::Arr(
                    results
                        .iter()
                        .zip(ns)
                        .map(|(r, v)| {
                            Json::obj([
                                ("name", Json::Str(r.name.to_string())),
                                ("ns_per_op", Json::Num(v)),
                            ])
                        })
                        .collect(),
                ),
            )]);
            Json::obj([("full", benches)])
        };
        // Uniformly 2x faster baseline machine (we are 2x slower): passes.
        let uniform = mk_baseline([50.0, 50.0, 50.0]);
        assert!(compare_to_baseline(&results, &uniform, false).is_ok());
        // Comparing against a mode the baseline lacks: fails loudly.
        let err = compare_to_baseline(&results, &uniform, true).unwrap_err();
        assert!(err.iter().any(|e| e.contains("quick.benches")), "{err:?}");
        // One bench skewed: we are 2x slower than median on it: fails.
        let skewed = mk_baseline([100.0, 100.0, 50.0]);
        let err = compare_to_baseline(&results, &skewed, false).unwrap_err();
        assert!(
            err.iter().any(|e| e.contains("blobstore.get_put")),
            "{err:?}"
        );
        // Missing entry: fails with a bless hint.
        let missing = Json::obj([("full", Json::obj([("benches", Json::Arr(vec![]))]))]);
        let err = compare_to_baseline(&results, &missing, false).unwrap_err();
        assert!(err.iter().any(|e| e.contains("re-bless")), "{err:?}");
    }
}

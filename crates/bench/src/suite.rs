//! The pipeline benchmark suite behind the `bench_suite` binary and the
//! CI bench stage.
//!
//! For each workload shape (few big layers, one big binary, many small
//! files — the §4.1.4 axis) and each pipeline parallelism in
//! [`PARALLELISM_LEVELS`], the suite drives the full pull→convert
//! pipeline three times against one node-local [`BlobStore`]:
//!
//! 1. **cold** — empty store and conversion cache; pins the overlapped
//!    fetch/convert makespan,
//! 2. **warm** — identical repeat; pins the blob-store + conversion-cache
//!    hit path,
//! 3. **sibling** — a second image sharing every base layer; pins
//!    content-addressed dedup (shared layers served from the store
//!    instead of the registry).
//!
//! Everything runs on the logical clock, so the numbers are makespans of
//! the simulated schedule — exactly reproducible, which is what lets
//! `--check` treat a >10% drift from the checked-in baseline as a hard
//! CI failure rather than noise.

use crate::json::{self, Json};
use hpcc_engine::engine::{Engine, Host};
use hpcc_engine::engines;
use hpcc_oci::builder::{BuiltImage, ImageBuilder};
use hpcc_oci::cas::Cas;
use hpcc_registry::registry::{Registry, RegistryCaps};
use hpcc_sim::obs::Tracer;
use hpcc_sim::{SimClock, SimTime};
use hpcc_storage::BlobStore;
use hpcc_vfs::path::VPath;
use std::collections::BTreeMap;
use std::path::PathBuf;
use std::sync::Arc;

/// Pipeline widths the suite sweeps.
pub const PARALLELISM_LEVELS: [usize; 3] = [1, 4, 16];

/// Regression gate: a makespan more than 10% over baseline fails CI.
pub const REGRESSION_TOLERANCE: f64 = 0.10;

/// Where the current results land (repo root, next to the other BENCH_*).
pub fn results_path() -> PathBuf {
    PathBuf::from(concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/../../BENCH_pipeline.json"
    ))
}

/// The checked-in baseline the `--check` gate compares against.
pub fn baseline_path() -> PathBuf {
    PathBuf::from(concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/../../tests/bench/BENCH_pipeline_baseline.json"
    ))
}

/// The three workload shapes of the §4.1.4 image-layout axis.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Workload {
    /// Two thin layers — the latency-bound floor.
    Small,
    /// Four 8 MiB layers — bandwidth-bound, conversion-heavy.
    Large,
    /// Sixteen layers of small files — request-latency-bound; the shape
    /// where pipeline overlap pays most.
    ManySmallFiles,
}

pub const WORKLOADS: [Workload; 3] = [Workload::Small, Workload::Large, Workload::ManySmallFiles];

impl Workload {
    pub fn name(self) -> &'static str {
        match self {
            Workload::Small => "small",
            Workload::Large => "large",
            Workload::ManySmallFiles => "many-small-files",
        }
    }

    /// Inverse of [`Workload::name`], for the `--filter` flag.
    pub fn from_name(name: &str) -> Option<Workload> {
        WORKLOADS.into_iter().find(|w| w.name() == name)
    }

    /// Build the workload's image in `cas`: deterministic contents, layer
    /// count chosen to exercise the shape. Shared with the lazy-pull
    /// suite, which flattens the same layers into a seekable image.
    pub(crate) fn build(self, cas: &Cas) -> BuiltImage {
        let p = |s: &str| VPath::parse(s);
        match self {
            Workload::Small => ImageBuilder::from_scratch()
                .run("base", move |fs| {
                    fs.write_p(&p("/usr/lib/libc.so.6"), vec![0xB0; 64 << 10])
                        .map_err(|e| e.to_string())
                })
                .run("app", move |fs| {
                    fs.write_p(&p("/opt/app/run"), vec![0xB1; 16 << 10])
                        .map_err(|e| e.to_string())
                })
                .entrypoint(&["/opt/app/run"])
                .build(cas)
                .expect("small image builds"),
            Workload::Large => {
                let mut b = ImageBuilder::from_scratch();
                for i in 0..4usize {
                    b = b.run(&format!("bulk-{i}"), move |fs| {
                        fs.write_p(
                            &VPath::parse(&format!("/opt/data/part{i}.bin")),
                            vec![0xA0u8.wrapping_add(i as u8); 8 << 20],
                        )
                        .map_err(|e| e.to_string())
                    });
                }
                b.entrypoint(&["/opt/data/part0.bin"])
                    .build(cas)
                    .expect("large image builds")
            }
            Workload::ManySmallFiles => {
                let mut b = ImageBuilder::from_scratch();
                for layer in 0..16usize {
                    b = b.run(&format!("pkgs-{layer}"), move |fs| {
                        for f in 0..48usize {
                            let path = format!("/usr/lib/app/pkg{layer}/mod{f}.py");
                            let body =
                                format!("# pkg {layer} mod {f}\ndef run():\n    return {f}\n")
                                    .repeat(32)
                                    .into_bytes();
                            fs.write_p(&VPath::parse(&path), body)
                                .map_err(|e| e.to_string())?;
                        }
                        Ok(())
                    });
                }
                b.entrypoint(&["/usr/bin/python3"])
                    .build(cas)
                    .expect("many-small-files image builds")
            }
        }
    }
}

/// One (workload × parallelism) measurement.
#[derive(Debug, Clone)]
pub struct PipelineRun {
    pub workload: &'static str,
    pub parallelism: usize,
    pub layers: usize,
    pub image_bytes: u64,
    /// Cold pull + convert makespan (empty caches), logical ns.
    pub cold_makespan_ns: u64,
    /// Identical repeat: blob store + conversion cache hits, logical ns.
    pub warm_makespan_ns: u64,
    /// Pull of a sibling image sharing every base layer, logical ns.
    pub sibling_makespan_ns: u64,
    /// Blob-store hit rate of the warm repeat (lookups hitting / total).
    pub warm_hit_rate: f64,
    /// Bytes the sibling pull served from the store instead of the
    /// registry — the content-addressed dedup payoff.
    pub deduped_bytes: u64,
    /// Cold-window span breakdown: span name → (count, summed ns).
    pub stages: BTreeMap<String, (u64, u64)>,
}

pub(crate) fn push_image(registry: &Registry, cas: &Cas, repo: &str, tag: &str, img: &BuiltImage) {
    for d in std::iter::once(&img.manifest.config).chain(img.manifest.layers.iter()) {
        let data = cas.get(&d.digest).unwrap();
        registry
            .push_blob(d.media_type, d.digest, data.as_ref().clone())
            .unwrap();
    }
    registry.push_manifest(repo, tag, &img.manifest).unwrap();
}

fn pull_and_prepare(engine: &Engine, registry: &Registry, repo: &str, clock: &SimClock) {
    let host = Host::compute_node();
    let pulled = engine
        .pull(registry, repo, "v1", clock)
        .expect("bench pull succeeds");
    engine
        .prepare(&pulled, 1000, &host, true, clock)
        .expect("bench prepare succeeds");
}

/// Sum span durations by name over `[from, to)` (by span start time).
fn stage_breakdown(
    spans: &[hpcc_sim::obs::SpanRecord],
    from: SimTime,
    to: SimTime,
) -> BTreeMap<String, (u64, u64)> {
    let mut out: BTreeMap<String, (u64, u64)> = BTreeMap::new();
    for s in spans {
        if s.start >= from && s.start < to {
            // Resolve the symbol: the map must stay lexicographically
            // keyed so rendering is independent of interning order.
            let e = out.entry(s.name.as_str().to_string()).or_insert((0, 0));
            e.0 += 1;
            e.1 += s.duration().0;
        }
    }
    out
}

/// Run one (workload × parallelism) configuration from scratch.
pub fn run_config(workload: Workload, parallelism: usize) -> PipelineRun {
    let cas = Cas::new();
    let image = workload.build(&cas);
    // The sibling shares every layer of `image` and adds one thin one:
    // its pull should fetch only the new layer + config.
    let sibling = ImageBuilder::from_image(&image)
        .run("extra", |fs| {
            fs.write_p(&VPath::parse("/etc/extra.conf"), vec![0x5A; 2048])
                .map_err(|e| e.to_string())
        })
        .build(&cas)
        .expect("sibling image builds");

    let registry = Registry::new("bench-site", RegistryCaps::open());
    registry.create_namespace("bench", None).unwrap();
    push_image(&registry, &cas, "bench/app", "v1", &image);
    push_image(&registry, &cas, "bench/app-next", "v1", &sibling);

    let tracer = Tracer::new();
    registry.set_tracer(Arc::clone(&tracer));
    let engine = engines::podman_hpc();
    engine.set_tracer(Arc::clone(&tracer));
    engine.set_parallelism(parallelism);
    let store = BlobStore::node_local();
    engine.set_blob_store(Arc::clone(&store));

    let clock = SimClock::new();
    let t0 = clock.now();
    pull_and_prepare(&engine, &registry, "bench/app", &clock);
    let t1 = clock.now();
    let cold_stats = store.stats();

    pull_and_prepare(&engine, &registry, "bench/app", &clock);
    let t2 = clock.now();
    let warm_stats = store.stats();

    pull_and_prepare(&engine, &registry, "bench/app-next", &clock);
    let t3 = clock.now();
    let sibling_stats = store.stats();

    let warm_lookups =
        (warm_stats.hits - cold_stats.hits) + (warm_stats.misses - cold_stats.misses);
    let warm_hit_rate = if warm_lookups == 0 {
        0.0
    } else {
        (warm_stats.hits - cold_stats.hits) as f64 / warm_lookups as f64
    };

    PipelineRun {
        workload: workload.name(),
        parallelism,
        layers: image.manifest.layers.len(),
        image_bytes: image.manifest.layers.iter().map(|d| d.size).sum(),
        cold_makespan_ns: t1.since(t0).0,
        warm_makespan_ns: t2.since(t1).0,
        sibling_makespan_ns: t3.since(t2).0,
        warm_hit_rate,
        deduped_bytes: sibling_stats.hit_bytes - warm_stats.hit_bytes,
        stages: stage_breakdown(&tracer.finished(), t0, t1),
    }
}

/// Run the full sweep: every workload at every parallelism level.
pub fn run_suite() -> Vec<PipelineRun> {
    run_suite_filtered(None)
}

/// Run the sweep restricted to one workload shape (`None` = all). The
/// structural and baseline checks operate on whatever subset is present,
/// so a filtered sweep still gates its own runs.
pub fn run_suite_filtered(filter: Option<Workload>) -> Vec<PipelineRun> {
    let mut runs = Vec::new();
    for workload in WORKLOADS {
        if filter.is_some_and(|f| f != workload) {
            continue;
        }
        for parallelism in PARALLELISM_LEVELS {
            runs.push(run_config(workload, parallelism));
        }
    }
    runs
}

/// Render a sweep as the JSON document written to `BENCH_pipeline.json`
/// (and, blessed, to the baseline file).
pub fn render(runs: &[PipelineRun]) -> Json {
    let run_objs: Vec<Json> = runs
        .iter()
        .map(|r| {
            let stages: BTreeMap<String, Json> = r
                .stages
                .iter()
                .map(|(name, (count, total_ns))| {
                    (
                        name.clone(),
                        Json::obj([
                            ("count", Json::Num(*count as f64)),
                            ("total_ns", Json::Num(*total_ns as f64)),
                        ]),
                    )
                })
                .collect();
            Json::obj([
                ("workload", Json::Str(r.workload.into())),
                ("parallelism", Json::Num(r.parallelism as f64)),
                ("layers", Json::Num(r.layers as f64)),
                ("image_bytes", Json::Num(r.image_bytes as f64)),
                ("cold_makespan_ns", Json::Num(r.cold_makespan_ns as f64)),
                ("warm_makespan_ns", Json::Num(r.warm_makespan_ns as f64)),
                (
                    "sibling_makespan_ns",
                    Json::Num(r.sibling_makespan_ns as f64),
                ),
                (
                    "warm_hit_rate",
                    Json::Num((r.warm_hit_rate * 1e6).round() / 1e6),
                ),
                ("deduped_bytes", Json::Num(r.deduped_bytes as f64)),
                ("stages", Json::Obj(stages)),
            ])
        })
        .collect();
    let summary: BTreeMap<String, Json> = WORKLOADS
        .iter()
        .map(|w| {
            let at = |p: usize| {
                runs.iter()
                    .find(|r| r.workload == w.name() && r.parallelism == p)
                    .map(|r| r.cold_makespan_ns)
                    .unwrap_or(0)
            };
            let (p1, p16) = (at(1), at(16));
            let speedup = if p16 == 0 {
                0.0
            } else {
                p1 as f64 / p16 as f64
            };
            (
                w.name().to_string(),
                Json::obj([
                    ("cold_p1_ns", Json::Num(p1 as f64)),
                    ("cold_p16_ns", Json::Num(p16 as f64)),
                    (
                        "cold_speedup_p16_over_p1",
                        Json::Num((speedup * 1e3).round() / 1e3),
                    ),
                ]),
            )
        })
        .collect();
    Json::obj([
        ("schema", Json::Str("hpcc-pipeline-bench/v1".into())),
        ("engine", Json::Str("Podman-HPC".into())),
        (
            "parallelism_levels",
            Json::Arr(
                PARALLELISM_LEVELS
                    .iter()
                    .map(|p| Json::Num(*p as f64))
                    .collect(),
            ),
        ),
        ("runs", Json::Arr(run_objs)),
        ("summary", Json::Obj(summary)),
    ])
}

/// Structural sanity of a fresh sweep, independent of any baseline. These
/// are the acceptance properties of the parallel pipeline itself.
///
/// Pairwise claims (p1 vs p16 scaling) are only checked when both runs
/// are present, so a `--filter`ed sweep gates exactly what it ran instead
/// of panicking on the absent cells.
pub fn structural_check(runs: &[PipelineRun]) -> Result<(), Vec<String>> {
    let mut errors = Vec::new();
    let find = |w: &str, p: usize| runs.iter().find(|r| r.workload == w && r.parallelism == p);
    for w in WORKLOADS {
        let (Some(p1), Some(p16)) = (find(w.name(), 1), find(w.name(), 16)) else {
            continue;
        };
        if p16.cold_makespan_ns > p1.cold_makespan_ns {
            errors.push(format!(
                "{}: cold makespan grew with parallelism (p16 {} ns > p1 {} ns)",
                w.name(),
                p16.cold_makespan_ns,
                p1.cold_makespan_ns
            ));
        }
        if w == Workload::ManySmallFiles && p16.cold_makespan_ns >= p1.cold_makespan_ns {
            errors.push(format!(
                "many-small-files: parallelism 16 must be strictly faster than 1 ({} ns vs {} ns)",
                p16.cold_makespan_ns, p1.cold_makespan_ns
            ));
        }
    }
    for r in runs {
        if r.warm_hit_rate <= 0.0 {
            errors.push(format!(
                "{}@{}: repeated pull never hit the blob store",
                r.workload, r.parallelism
            ));
        }
        if r.deduped_bytes == 0 {
            errors.push(format!(
                "{}@{}: sibling pull deduplicated no bytes",
                r.workload, r.parallelism
            ));
        }
        if r.warm_makespan_ns >= r.cold_makespan_ns {
            errors.push(format!(
                "{}@{}: warm pull ({} ns) not faster than cold ({} ns)",
                r.workload, r.parallelism, r.warm_makespan_ns, r.cold_makespan_ns
            ));
        }
    }
    if errors.is_empty() {
        Ok(())
    } else {
        Err(errors)
    }
}

/// Compare a fresh sweep against the parsed baseline document. Any
/// makespan more than [`REGRESSION_TOLERANCE`] over its baseline value —
/// and any run missing from the baseline — is an error.
pub fn compare_to_baseline(
    runs: &[PipelineRun],
    baseline: &Json,
) -> Result<Vec<String>, Vec<String>> {
    let mut errors = Vec::new();
    let mut report = Vec::new();
    let base_runs = baseline
        .get("runs")
        .and_then(|r| r.as_arr())
        .ok_or_else(|| vec!["baseline has no `runs` array".to_string()])?;
    let lookup = |w: &str, p: usize| {
        base_runs.iter().find(|b| {
            b.get("workload").and_then(|v| v.as_str()) == Some(w)
                && b.get("parallelism").and_then(|v| v.as_u64()) == Some(p as u64)
        })
    };
    for r in runs {
        let Some(base) = lookup(r.workload, r.parallelism) else {
            errors.push(format!(
                "{}@{}: no baseline entry (re-bless with `bench_suite --bless`)",
                r.workload, r.parallelism
            ));
            continue;
        };
        for (metric, current) in [
            ("cold_makespan_ns", r.cold_makespan_ns),
            ("warm_makespan_ns", r.warm_makespan_ns),
            ("sibling_makespan_ns", r.sibling_makespan_ns),
        ] {
            let Some(expected) = base.get(metric).and_then(|v| v.as_u64()) else {
                errors.push(format!(
                    "{}@{}: baseline lacks {metric}",
                    r.workload, r.parallelism
                ));
                continue;
            };
            let limit = expected as f64 * (1.0 + REGRESSION_TOLERANCE);
            let ratio = if expected == 0 {
                1.0
            } else {
                current as f64 / expected as f64
            };
            if current as f64 > limit {
                errors.push(format!(
                    "{}@{}: {metric} regressed {:.1}% ({} ns vs baseline {} ns)",
                    r.workload,
                    r.parallelism,
                    (ratio - 1.0) * 100.0,
                    current,
                    expected
                ));
            } else {
                report.push(format!(
                    "{}@{} {metric}: {} ns vs {} ns baseline ({:+.1}%)",
                    r.workload,
                    r.parallelism,
                    current,
                    expected,
                    (ratio - 1.0) * 100.0
                ));
            }
        }
    }
    if errors.is_empty() {
        Ok(report)
    } else {
        Err(errors)
    }
}

/// Load and parse the baseline file.
pub fn load_baseline() -> Result<Json, String> {
    let path = baseline_path();
    let text = std::fs::read_to_string(&path).map_err(|e| {
        format!(
            "cannot read baseline {} ({e}); create it with `bench_suite --bless`",
            path.display()
        )
    })?;
    json::parse(&text).map_err(|e| format!("baseline {}: {e}", path.display()))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_workload_sweep_is_deterministic_and_structurally_sound() {
        let a = run_config(Workload::Small, 1);
        let b = run_config(Workload::Small, 1);
        assert_eq!(a.cold_makespan_ns, b.cold_makespan_ns);
        assert_eq!(a.warm_makespan_ns, b.warm_makespan_ns);
        assert_eq!(a.stages, b.stages);
        assert!(a.warm_hit_rate > 0.0);
        assert!(a.deduped_bytes > 0);
        assert!(a.warm_makespan_ns < a.cold_makespan_ns);
    }

    #[test]
    fn many_small_files_overlap_pays() {
        let p1 = run_config(Workload::ManySmallFiles, 1);
        let p16 = run_config(Workload::ManySmallFiles, 16);
        assert!(
            p16.cold_makespan_ns < p1.cold_makespan_ns,
            "p16 {} ns should beat p1 {} ns",
            p16.cold_makespan_ns,
            p1.cold_makespan_ns
        );
        // Identical downstream state regardless of parallelism.
        assert_eq!(p1.image_bytes, p16.image_bytes);
        assert_eq!(p1.layers, p16.layers);
    }

    #[test]
    fn render_and_compare_roundtrip() {
        let runs = vec![
            run_config(Workload::Small, 1),
            run_config(Workload::Small, 16),
        ];
        let doc = render(&runs);
        let parsed = json::parse(&doc.render()).unwrap();
        // A sweep compared against itself passes the gate.
        assert!(compare_to_baseline(&runs, &parsed).is_ok());
        // A 20% faster baseline trips it.
        let mut slow = runs.clone();
        slow[0].cold_makespan_ns = (slow[0].cold_makespan_ns as f64 * 1.2) as u64;
        assert!(compare_to_baseline(&slow, &parsed).is_err());
    }
}

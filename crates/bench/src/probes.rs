//! Live feature probes: run each engine/registry through the behaviours
//! the survey tables compare, deriving cell values from what actually
//! happened.

use crate::workloads::site_registry_with_samples;
use hpcc_crypto::aead::AeadKey;
use hpcc_crypto::wots::Keypair;
use hpcc_engine::caps::MonitorModel;
use hpcc_engine::engine::{Engine, EngineError, Host, MpiFlavor, RunOptions};
use hpcc_engine::shpc;
use hpcc_engine::sif::SifImage;
use hpcc_oci::image::MediaType;
use hpcc_oci::spec::Namespace;
use hpcc_registry::products::RegistryProduct;
use hpcc_registry::proxy::{mirror_sync, ProxyRegistry};
use hpcc_registry::registry::{Protocol, Registry, RegistryCaps};
use hpcc_sim::{SimClock, SimTime};
use hpcc_vfs::fs::MemFs;
use hpcc_vfs::path::VPath;
use std::sync::Arc;

/// Observed behaviour of one engine.
#[derive(Debug, Clone)]
pub struct EngineProbe {
    pub name: &'static str,
    /// Deploys as an unprivileged user with no daemons running.
    pub rootless_ok: bool,
    /// Needs dockerd.
    pub needs_daemon: bool,
    /// The root filesystem mechanism observed (`prepare().root_kind`).
    pub root_kind: &'static str,
    /// Converts OCI→native without an explicit step.
    pub transparent_conversion: Option<bool>,
    /// Second prepare hits the conversion cache.
    pub caching: Option<bool>,
    /// Cache hit across different users.
    pub sharing: Option<bool>,
    /// Network namespace present at execution (full isolation marker).
    pub netns_on_exec: bool,
    /// Detached OCI-manifest signing worked.
    pub oci_signing: bool,
    /// SIF signing worked.
    pub sif_signing: bool,
    /// SIF encryption worked.
    pub encryption: bool,
    /// GPU-enabled deploy succeeded (driver stack visible in container).
    pub gpu: bool,
    /// MPICH hookup succeeded.
    pub mpi_mpich: bool,
    /// OpenMPI hookup succeeded.
    pub mpi_openmpi: bool,
    /// shpc module generation worked.
    pub module_system: bool,
    /// Monitor processes observed.
    pub monitor: MonitorModel,
}

/// Run every probe against one engine.
pub fn probe_engine(engine: &Engine) -> EngineProbe {
    let (registry, _) = site_registry_with_samples(60);
    let host = Host::compute_node();
    let daemon_host = Host::compute_node().with_daemon("dockerd");
    let user = 1000;

    // Rootless deploy without daemons.
    let rootless_ok = {
        let clock = SimClock::new();
        engine
            .deploy(
                &registry,
                "hpc/solver",
                "v1",
                user,
                &host,
                RunOptions::default(),
                &clock,
            )
            .is_ok()
    };
    let needs_daemon = {
        let clock = SimClock::new();
        matches!(
            engine.deploy(
                &registry,
                "hpc/solver",
                "v1",
                user,
                &host,
                RunOptions::default(),
                &clock
            ),
            Err(EngineError::DaemonNotRunning(_))
        )
    };
    let active_host = if needs_daemon { &daemon_host } else { &host };

    // Prepare-path observations.
    let clock = SimClock::new();
    let pulled = engine
        .pull(&registry, "hpc/solver", "v1", &clock)
        .expect("pull succeeds");
    let prepared = engine
        .prepare(&pulled, user, active_host, true, &clock)
        .expect("prepare succeeds");
    let root_kind = prepared.root_kind;

    let native = matches!(
        engine.caps.native_format,
        hpcc_engine::caps::NativeFormat::OciLayers
    );
    let transparent_conversion = if native {
        None // no conversion involved at all
    } else {
        Some(
            engine
                .prepare(&pulled, user, active_host, false, &clock)
                .is_ok(),
        )
    };
    let caching = if native {
        None
    } else {
        Some(
            engine
                .prepare(&pulled, user, active_host, true, &clock)
                .map(|p| p.cache_hit)
                .unwrap_or(false),
        )
    };
    let sharing = if native {
        None
    } else {
        Some(
            engine
                .prepare(&pulled, 4321, active_host, true, &clock)
                .map(|p| p.cache_hit)
                .unwrap_or(false),
        )
    };

    // Execution namespacing.
    let netns_on_exec = {
        let clock = SimClock::new();
        engine
            .deploy(
                &registry,
                "hpc/solver",
                "v1",
                user,
                active_host,
                RunOptions::default(),
                &clock,
            )
            .map(|(r, _)| r.container.namespaces.contains(&Namespace::Network))
            .unwrap_or(false)
    };

    // Signing and encryption.
    let mut key = Keypair::generate(b"probe-key", 4);
    let oci_signing = engine.sign_manifest(&pulled.manifest, &mut key).is_ok();
    let mut rootfs = MemFs::new();
    rootfs.write_p(&VPath::parse("/bin/x"), vec![1]).unwrap();
    let sif_signing = {
        let mut sif = SifImage::build("From: probe", &rootfs).unwrap();
        engine.sign_sif(&mut sif, &mut key).is_ok()
    };
    let encryption = {
        let mut sif = SifImage::build("From: probe", &rootfs).unwrap();
        engine
            .encrypt_sif(&mut sif, &AeadKey::derive(b"probe"))
            .is_ok()
    };

    // GPU / MPI enablement.
    let deploy_with = |opts: RunOptions| {
        let clock = SimClock::new();
        engine
            .deploy(
                &registry,
                "hpc/solver",
                "v1",
                user,
                active_host,
                opts,
                &clock,
            )
            .is_ok()
    };
    let gpu = deploy_with(RunOptions {
        gpu: true,
        ..RunOptions::default()
    });
    let mpi_mpich = deploy_with(RunOptions {
        mpi: Some(MpiFlavor::Mpich),
        ..RunOptions::default()
    });
    let mpi_openmpi = deploy_with(RunOptions {
        mpi: Some(MpiFlavor::OpenMpi),
        ..RunOptions::default()
    });

    let module_system = shpc::generate_module(engine, "hpc/solver", "v1", &["solve"]).is_ok();

    EngineProbe {
        name: engine.info.name,
        rootless_ok,
        needs_daemon,
        root_kind,
        transparent_conversion,
        caching,
        sharing,
        netns_on_exec,
        oci_signing,
        sif_signing,
        encryption,
        gpu,
        mpi_mpich,
        mpi_openmpi,
        module_system,
        monitor: engine.caps.monitor,
    }
}

/// Observed behaviour of one registry product.
#[derive(Debug, Clone)]
pub struct RegistryProbe {
    pub name: &'static str,
    /// Protocols that answered.
    pub oci: bool,
    pub library_api: bool,
    /// Artifact types accepted on push.
    pub helm: bool,
    pub cosign_artifacts: bool,
    pub user_defined: bool,
    /// Proxy pull-through worked.
    pub proxying: bool,
    /// Mirror sync into this registry worked.
    pub mirroring: bool,
    /// Namespace creation worked.
    pub multi_tenancy: bool,
    /// Quota enforcement observed.
    pub quota_enforced: bool,
    /// Signature attachment + retrieval worked.
    pub signing: bool,
    /// Squash-on-demand produced a runnable image.
    pub squashing: bool,
}

fn push_probe_image(reg: &Registry, repo: &str) -> Option<hpcc_oci::image::Manifest> {
    let cas = hpcc_oci::cas::Cas::new();
    let img = hpcc_oci::builder::samples::base_os(&cas);
    for d in std::iter::once(&img.manifest.config).chain(img.manifest.layers.iter()) {
        let data = cas.get(&d.digest).unwrap();
        reg.push_blob(d.media_type, d.digest, data.as_ref().clone())
            .ok()?;
    }
    reg.push_manifest(repo, "v1", &img.manifest).ok()?;
    Some(img.manifest)
}

/// Run every probe against one registry product.
pub fn probe_registry(product: &RegistryProduct) -> RegistryProbe {
    let reg = &product.registry;

    // Multi-tenancy first (repos below live in this namespace when it
    // exists).
    let multi_tenancy = reg.create_namespace("probe", None).is_ok();
    let repo = if multi_tenancy { "probe/app" } else { "app" };

    let oci_manifest = push_probe_image(reg, repo);
    let oci = oci_manifest.is_some();

    let library_api = reg
        .library_push("probe/collection/app", "v1", b"SIF".to_vec())
        .is_ok();

    let push_artifact = |mt: MediaType, payload: &[u8]| {
        let d = hpcc_crypto::sha256::sha256(payload);
        reg.push_blob(mt, d, payload.to_vec()).is_ok()
    };
    let helm = push_artifact(MediaType::HelmChart, b"helm-chart");
    let cosign_artifacts = push_artifact(MediaType::Signature, b"cosign-sig");
    let user_defined = push_artifact(MediaType::UserDefined, b"custom-artifact");

    // Proxying: can this product act as a pull-through cache?
    let proxying = {
        let upstream = Registry::new("upstream", RegistryCaps::open());
        upstream.create_namespace("lib", None).unwrap();
        push_probe_image(&upstream, "lib/base");
        // Build a fresh instance of the same product as the local cache.
        let fresh = fresh_product(product.info.name);
        match ProxyRegistry::new(Arc::new(fresh), Arc::new(upstream)) {
            Ok(proxy) => proxy.pull_manifest("lib/base", "v1", SimTime::ZERO).is_ok(),
            Err(_) => false,
        }
    };

    // Mirroring: sync a repo from a source into this product.
    let mirroring = {
        let src = Registry::new("src", RegistryCaps::open());
        src.create_namespace("lib", None).unwrap();
        push_probe_image(&src, "lib/base");
        let dst = fresh_product(product.info.name);
        mirror_sync(&src, &dst, &["lib/base"]).is_ok()
    };

    // Quota: a tiny namespace must reject a push.
    let quota_enforced = {
        let fresh = fresh_product(product.info.name);
        match fresh.create_namespace("tiny", Some(16)) {
            Ok(()) => push_probe_image(&fresh, "tiny/app").is_none(),
            Err(_) => false,
        }
    };

    let signing = match &oci_manifest {
        Some(m) => {
            reg.attach_signature(m.digest(), b"sig".to_vec()).is_ok()
                && reg
                    .signatures_of(&m.digest())
                    .map(|v| !v.is_empty())
                    .unwrap_or(false)
        }
        None => false,
    };

    let squashing = oci && reg.squash_on_demand(repo, "v1").is_ok();

    RegistryProbe {
        name: product.info.name,
        oci: oci
            || reg
                .caps()
                .protocols
                .iter()
                .any(|p| matches!(p, Protocol::OciV1 | Protocol::OciV2)),
        library_api,
        helm,
        cosign_artifacts,
        user_defined,
        proxying,
        mirroring,
        multi_tenancy,
        quota_enforced,
        signing,
        squashing,
    }
}

/// A fresh instance of a product by name (probes that need clean state).
fn fresh_product(name: &str) -> Registry {
    use hpcc_registry::products;
    let product = match name {
        "Quay" => products::quay(),
        "Harbor" => products::harbor(),
        "GitLab" => products::gitlab(),
        "Gitea" => products::gitea(),
        "shpc" => products::shpc(),
        "Hinkskalle" => products::hinkskalle(),
        "zot" => products::zot(),
        other => panic!("unknown product {other}"),
    };
    product.registry
}

#[cfg(test)]
mod tests {
    use super::*;
    use hpcc_engine::engines;
    use hpcc_registry::products;

    #[test]
    fn podman_probe_matches_table_rows() {
        let p = probe_engine(&engines::podman());
        assert!(p.rootless_ok);
        assert!(!p.needs_daemon);
        assert_eq!(p.root_kind, "overlay-fuse");
        assert!(p.netns_on_exec, "full isolation");
        assert!(p.oci_signing);
        assert!(!p.sif_signing);
        assert!(p.gpu && p.mpi_mpich && p.mpi_openmpi);
        assert!(p.module_system);
    }

    #[test]
    fn shifter_probe_matches_table_rows() {
        let p = probe_engine(&engines::shifter());
        assert!(p.rootless_ok);
        assert_eq!(p.root_kind, "squash-kernel");
        assert_eq!(p.transparent_conversion, Some(true));
        assert_eq!(p.caching, Some(true));
        assert_eq!(p.sharing, Some(false));
        assert!(!p.netns_on_exec);
        assert!(!p.oci_signing && !p.sif_signing && !p.encryption);
        assert!(!p.gpu);
        assert!(p.mpi_mpich && !p.mpi_openmpi, "MPICH only");
        assert!(!p.module_system);
    }

    #[test]
    fn apptainer_probe_matches_table_rows() {
        let p = probe_engine(&engines::apptainer());
        assert_eq!(p.root_kind, "sif-kernel");
        assert_eq!(p.sharing, Some(true));
        assert!(p.sif_signing && !p.oci_signing);
        assert!(p.encryption);
        assert!(p.gpu);
    }

    #[test]
    fn docker_probe_needs_daemon() {
        let p = probe_engine(&engines::docker());
        assert!(!p.rootless_ok);
        assert!(p.needs_daemon);
        assert_eq!(p.root_kind, "overlay-kernel");
    }

    #[test]
    fn registry_probes_match_table_rows() {
        let quay = probe_registry(&products::quay());
        assert!(quay.oci && !quay.library_api);
        assert!(quay.proxying && quay.mirroring);
        assert!(quay.multi_tenancy && quay.quota_enforced);
        assert!(quay.squashing, "Quay squashes on demand");

        let gitea = probe_registry(&products::gitea());
        assert!(!gitea.proxying && !gitea.mirroring);
        assert!(!gitea.multi_tenancy && !gitea.signing);
        assert!(gitea.helm);

        let shpc = probe_registry(&products::shpc());
        assert!(shpc.library_api);
        assert!(!shpc.user_defined);

        let hink = probe_registry(&products::hinkskalle());
        assert!(hink.library_api && hink.oci);
    }
}

//! Game-day chaos sweep + CI resilience gate.
//!
//! * `bench_chaos`           — run the scenario × mode sweep (rack
//!   power loss, row partition, origin overload × no-resilience,
//!   breakers, breakers+hedging at 1024 nodes) plus the mid-broadcast
//!   tree-repair cell, write `BENCH_chaos.json`, print the table.
//! * `bench_chaos --check`   — additionally enforce the gates: the
//!   `none` rows must bleed, the resilient rows must complete every
//!   admitted pull and recover within the post-heal ceiling, the tree
//!   repair must be rack-scale, and the median-normalized >10%
//!   regression gate against `tests/bench/BENCH_chaos_baseline.json`
//!   must hold. Exit 1 on violation.
//! * `bench_chaos --bless`   — overwrite the baseline with this run.
//! * `bench_chaos --markdown` — additionally print the EXPERIMENTS.md
//!   game-day recovery table.
//!
//! Every number is logical DES time, so the whole document is
//! deterministic; the driver runs the sweep twice and refuses to proceed
//! unless both renders are byte-identical (the de-flake guard).

use hpcc_bench::chaos_suite as chaos;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let check = args.iter().any(|a| a == "--check");
    let bless = args.iter().any(|a| a == "--bless");
    let markdown = args.iter().any(|a| a == "--markdown");
    if let Some(bad) = args
        .iter()
        .find(|a| !matches!(a.as_str(), "--check" | "--bless" | "--markdown"))
    {
        eprintln!("bench_chaos: unknown argument `{bad}` (expected --check, --bless, --markdown)");
        std::process::exit(2);
    }

    let (results, doc) =
        hpcc_bench::guard::deterministic_runs("bench_chaos", chaos::run_all, chaos::render);

    println!(
        "{:<16} {:<17} {:>6} {:>6} {:>7} {:>6} {:>7} {:>7} {:>11} {:>11} {:>10}",
        "scenario",
        "mode",
        "pulls",
        "failed",
        "gave-up",
        "shed",
        "mirror",
        "hedges",
        "p50",
        "p95",
        "recovery"
    );
    let ms = |ns: u64| format!("{:.1} ms", ns as f64 / 1e6);
    for r in &results.cells {
        println!(
            "{:<16} {:<17} {:>6} {:>6} {:>7} {:>6} {:>7} {:>7} {:>11} {:>11} {:>9.2}s",
            r.scenario,
            r.mode,
            r.pulls,
            r.failed,
            r.gave_up,
            r.shed,
            r.mirror_fallbacks,
            r.hedges,
            ms(r.p50_ns),
            ms(r.p95_ns),
            r.recovery_ns as f64 / 1e9
        );
    }
    let t = &results.tree;
    println!(
        "\ntree repair: {} dead, {} repairs, {} edges rewired, re-attached served {:.2} s after heal",
        t.dead,
        t.repairs,
        t.rewired_edges,
        (t.reattach_done_ns - t.heal_ns) as f64 / 1e9
    );

    if markdown {
        println!("\n{}", chaos::render_markdown_table(&results));
    }

    let out = chaos::results_path();
    std::fs::write(&out, doc.render()).expect("write BENCH_chaos.json");
    println!("wrote {}", out.display());

    if bless {
        let path = chaos::baseline_path();
        std::fs::create_dir_all(path.parent().unwrap()).expect("create tests/bench");
        std::fs::write(&path, doc.render()).expect("write baseline");
        println!("blessed baseline {}", path.display());
    }

    if check {
        match chaos::live_gate(&results) {
            Ok(report) => {
                println!("\nresilience gates passed:");
                for line in &report {
                    println!("  {line}");
                }
            }
            Err(errors) => {
                eprintln!("\nresilience gates FAILED:");
                for e in &errors {
                    eprintln!("  - {e}");
                }
                std::process::exit(1);
            }
        }
        let baseline = match chaos::load_baseline() {
            Ok(b) => b,
            Err(e) => {
                eprintln!("bench_chaos --check: {e}");
                std::process::exit(1);
            }
        };
        match chaos::compare_to_baseline(&results, &baseline) {
            Ok(report) => {
                println!("\nbaseline comparison passed:");
                for line in report.iter().take(5) {
                    println!("  {line}");
                }
                if report.len() > 5 {
                    println!(
                        "  ... {} more cells, all within tolerance",
                        report.len() - 5
                    );
                }
            }
            Err(errors) => {
                eprintln!("\nbaseline comparison FAILED:");
                for e in &errors {
                    eprintln!("  - {e}");
                }
                std::process::exit(1);
            }
        }
    }
}

//! Q2 (§3.2/§4.1.4): cold-starting a many-small-files image from the
//! shared filesystem vs staging one squash image, as node count grows.
//!
//! Paper claim: many small files "put strain on the cluster filesystem,
//! slowing down startup"; single-file images trade CPU (decompression)
//! for IO and win at scale.

use hpcc_codec::compress::Codec;
use hpcc_sim::{Bytes, SimTime};
use hpcc_storage::local::{stage_image_to_nodes, NodeLocalDisk};
use hpcc_storage::shared_fs::SharedFs;
use hpcc_vfs::fs::MemFs;
use hpcc_vfs::path::VPath;
use hpcc_vfs::squash::SquashImage;
use std::sync::Arc;

fn python_like_tree(files: usize) -> MemFs {
    let mut fs = MemFs::new();
    for i in 0..files {
        let body = format!("import os\n# module {i}\n").repeat(30).into_bytes();
        fs.write_p(
            &VPath::parse(&format!("/site-packages/pkg{}/m{i}.py", i % 41)),
            body,
        )
        .unwrap();
    }
    fs
}

fn main() {
    println!("Q2 — container cold start: 10k small files on shared FS vs one squash image\n");
    let files = 10_000;
    let tree = python_like_tree(files);
    let image = SquashImage::build(&tree, &VPath::root(), Codec::Lz).unwrap();
    println!(
        "tree: {files} files, {} logical; image: {} ({}x compression)\n",
        Bytes::new(tree.total_file_bytes(&VPath::root())),
        Bytes::new(image.len_bytes()),
        tree.total_file_bytes(&VPath::root()) / image.len_bytes().max(1)
    );

    println!(
        "{:>6} {:>16} {:>16} {:>9}",
        "nodes", "small-files", "squash-staged", "speedup"
    );
    for nodes in [1u32, 4, 16, 64, 256] {
        // Small files: every node opens+reads every file from shared FS.
        let shared = SharedFs::with_defaults();
        shared
            .populate(|fs| {
                for p in tree.walk(&VPath::root()).unwrap() {
                    if let Ok(data) = tree.read(&p) {
                        fs.write_p(&p, data.as_ref().clone())?;
                    } else {
                        fs.mkdir_p(&p)?;
                    }
                }
                Ok(())
            })
            .unwrap();
        let mut small_done = SimTime::ZERO;
        let paths: Vec<VPath> = tree
            .walk(&VPath::root())
            .unwrap()
            .into_iter()
            .filter(|p| tree.read(p).is_ok())
            .collect();
        for _node in 0..nodes {
            // Each node reads sequentially; nodes contend on the MDS.
            let mut t = SimTime::ZERO;
            for p in &paths {
                let (_, done) = shared.read_file(p, t).unwrap();
                t = done;
            }
            small_done = small_done.max(t);
        }

        // Squash: stage the image once per node, then local reads.
        let shared2 = SharedFs::with_defaults();
        let disks: Vec<Arc<NodeLocalDisk>> =
            (0..nodes).map(|_| Arc::new(NodeLocalDisk::new())).collect();
        let report = stage_image_to_nodes(&shared2, &image, &disks, SimTime::ZERO).unwrap();
        let squash_done = report.all_done;

        let a = small_done.since(SimTime::ZERO).as_secs_f64();
        let b = squash_done.since(SimTime::ZERO).as_secs_f64();
        println!("{:>6} {:>14.2}s {:>14.2}s {:>8.1}x", nodes, a, b, a / b);
    }

    println!("\nablation: metadata-server service time sweep (64 nodes, small files)");
    println!("{:>16} {:>16}", "mds service", "cold start");
    for us in [30u64, 60, 120, 240, 480] {
        let cfg = hpcc_storage::shared_fs::SharedFsConfig {
            mds_service: hpcc_sim::SimSpan::micros(us),
            ..Default::default()
        };
        let shared = SharedFs::new(cfg);
        shared
            .populate(|fs| {
                for i in 0..1000usize {
                    fs.write_p(&VPath::parse(&format!("/pkg/m{i}.py")), vec![7u8; 600])?;
                }
                Ok(())
            })
            .unwrap();
        let mut worst = SimTime::ZERO;
        for _node in 0..64 {
            let mut t = SimTime::ZERO;
            for i in 0..1000usize {
                let (_, done) = shared
                    .read_file(&VPath::parse(&format!("/pkg/m{i}.py")), t)
                    .unwrap();
                t = done;
            }
            worst = worst.max(t);
        }
        println!(
            "{:>13} us {:>14.2}s",
            us,
            worst.since(SimTime::ZERO).as_secs_f64()
        );
    }
}

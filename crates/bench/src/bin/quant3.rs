//! Q3 (§4.1.2): fakeroot mechanisms — user namespaces vs LD_PRELOAD vs
//! ptrace, including the documented failure modes.

use hpcc_runtime::caps::{CapSet, Capability};
use hpcc_runtime::fakeroot::{run, FakerootCosts, FakerootMode, HostConfig, SyscallWorkload};
use hpcc_sim::{SimClock, SimSpan};

fn main() {
    println!("Q3 — fakeroot mechanism overheads (§4.1.2)\n");
    let workloads = [
        (
            "build (syscall-heavy)",
            SyscallWorkload {
                intercepted_syscalls: 400_000,
                other_syscalls: 1_600_000,
                compute: SimSpan::millis(200),
                static_binary: false,
            },
        ),
        (
            "compute-bound",
            SyscallWorkload {
                intercepted_syscalls: 5_000,
                other_syscalls: 20_000,
                compute: SimSpan::secs(2),
                static_binary: false,
            },
        ),
        (
            "static binary",
            SyscallWorkload {
                intercepted_syscalls: 100_000,
                other_syscalls: 400_000,
                compute: SimSpan::millis(50),
                static_binary: true,
            },
        ),
    ];

    let ptrace_caps = CapSet::empty().with(Capability::SysPtrace);
    println!(
        "{:<22} {:>12} {:>12} {:>12}",
        "workload", "UserNS", "LD_PRELOAD", "ptrace"
    );
    for (name, wl) in workloads {
        let mut cells = Vec::new();
        for (mode, caps) in [
            (FakerootMode::UserNs, CapSet::empty()),
            (FakerootMode::LdPreload, CapSet::empty()),
            (FakerootMode::Ptrace, ptrace_caps.clone()),
        ] {
            let clock = SimClock::new();
            match run(
                mode,
                wl,
                &caps,
                HostConfig::default(),
                FakerootCosts::default(),
                &clock,
            ) {
                Ok(span) => cells.push(format!("{span}")),
                Err(e) => cells.push(format!("FAILS ({e})")),
            }
        }
        println!(
            "{:<22} {:>12} {:>12} {:>12}",
            name, cells[0], cells[1], cells[2]
        );
    }

    println!("\nptrace without CAP_SYS_PTRACE:");
    let clock = SimClock::new();
    match run(
        FakerootMode::Ptrace,
        workloads[0].1,
        &CapSet::empty(),
        HostConfig::default(),
        FakerootCosts::default(),
        &clock,
    ) {
        Err(e) => println!("  refused as expected: {e}"),
        Ok(_) => println!("  UNEXPECTEDLY SUCCEEDED"),
    }
    println!("\nuser namespaces disabled on host:");
    let clock = SimClock::new();
    match run(
        FakerootMode::UserNs,
        workloads[0].1,
        &CapSet::empty(),
        HostConfig {
            userns_enabled: false,
        },
        FakerootCosts::default(),
        &clock,
    ) {
        Err(e) => println!("  refused as expected: {e}"),
        Ok(_) => println!("  UNEXPECTEDLY SUCCEEDED"),
    }
}

//! Build-plane benchmark + CI regression gate.
//!
//! * `bench_build`           — sweep N tenants × M builds through the
//!   cold / warm / shared-base scenarios, write `BENCH_build.json`,
//!   print the table.
//! * `bench_build --check`   — additionally enforce the gates: warm
//!   rebuilds replay entirely from cache and beat cold builds, the
//!   shared base builds and uploads exactly once across tenants (origin
//!   blob count flat), and the median-normalized >10% regression gate
//!   against `tests/bench/BENCH_build_baseline.json`. Exit 1 on
//!   violation.
//! * `bench_build --bless`   — overwrite the baseline with this run.
//!
//! Every number is logical DES time, so the whole document is
//! deterministic; the shared de-flake guard double-runs the sweep and
//! refuses to proceed unless both renders are byte-identical.

use hpcc_bench::build_suite as build;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let check = args.iter().any(|a| a == "--check");
    let bless = args.iter().any(|a| a == "--bless");
    if let Some(bad) = args
        .iter()
        .find(|a| !matches!(a.as_str(), "--check" | "--bless"))
    {
        eprintln!("bench_build: unknown argument `{bad}` (expected --check, --bless)");
        std::process::exit(2);
    }

    let (results, doc) =
        hpcc_bench::guard::deterministic_runs("bench_build", build::run_all, build::render);

    println!(
        "{:<12} {:>14} {:>10} {:>8} {:>12} {:>12} {:>18}",
        "scenario", "tenants×builds", "hits", "misses", "build", "push", "origin blobs"
    );
    let ms = |ns: u64| {
        if ns == 0 {
            "—".to_string()
        } else {
            format!("{:.2} ms", ns as f64 / 1e6)
        }
    };
    for r in &results.rows {
        let origin = if r.origin_blobs == 0 {
            "—".to_string()
        } else {
            format!(
                "{} (+{}/+{})",
                r.origin_blobs, r.origin_added_first_tenant, r.origin_added_per_extra_tenant
            )
        };
        println!(
            "{:<12} {:>11} × {} {:>10} {:>8} {:>12} {:>12} {:>18}",
            r.scenario,
            r.tenants,
            r.builds_per_tenant,
            r.cache_hits,
            r.cache_misses,
            ms(r.build_ns),
            ms(r.push_ns),
            origin,
        );
    }

    let out = build::results_path();
    std::fs::write(&out, doc.render()).expect("write BENCH_build.json");
    println!("wrote {}", out.display());

    if bless {
        let path = build::baseline_path();
        std::fs::create_dir_all(path.parent().unwrap()).expect("create tests/bench");
        std::fs::write(&path, doc.render()).expect("write baseline");
        println!("blessed baseline {}", path.display());
    }

    if check {
        match build::live_gate(&results) {
            Ok(report) => {
                println!("\nstructural gates passed:");
                for line in &report {
                    println!("  {line}");
                }
            }
            Err(errors) => {
                eprintln!("\nstructural gates FAILED:");
                for e in &errors {
                    eprintln!("  - {e}");
                }
                std::process::exit(1);
            }
        }
        let baseline = match build::load_baseline() {
            Ok(b) => b,
            Err(e) => {
                eprintln!("bench_build --check: {e}");
                std::process::exit(1);
            }
        };
        match build::compare_to_baseline(&results, &baseline) {
            Ok(report) => {
                println!("\nbaseline comparison passed:");
                for line in report.iter().take(5) {
                    println!("  {line}");
                }
                if report.len() > 5 {
                    println!("  ... {} more rows, all within tolerance", report.len() - 5);
                }
            }
            Err(errors) => {
                eprintln!("\nbaseline comparison FAILED:");
                for e in &errors {
                    eprintln!("  - {e}");
                }
                std::process::exit(1);
            }
        }
    }
}

//! Q6 (§3.1): content-addressable storage — layer deduplication across an
//! image family sharing base layers.

use hpcc_oci::builder::{samples, ImageBuilder};
use hpcc_oci::cas::Cas;
use hpcc_vfs::path::VPath;

fn main() {
    println!("Q6 — layer deduplication in content-addressable storage (§3.1)\n");
    println!(
        "{:>10} {:>14} {:>14} {:>10} {:>8}",
        "variants", "logical", "stored", "dedup", "blobs"
    );
    for variants in [1usize, 4, 16, 64] {
        let cas = Cas::new();
        let base = samples::base_os(&cas);
        for v in 0..variants {
            ImageBuilder::from_image(&base)
                .run("variant", move |fs| {
                    fs.write_p(
                        &VPath::parse(&format!("/opt/tool-{v}/bin/run")),
                        vec![v as u8; 4096],
                    )
                    .map_err(|e| e.to_string())
                })
                .build(&cas)
                .unwrap();
        }
        let s = cas.stats();
        println!(
            "{:>10} {:>14} {:>14} {:>9.1}% {:>8}",
            variants,
            s.logical_bytes,
            s.stored_bytes,
            s.savings() * 100.0,
            s.blobs
        );
    }

    println!("\nwithout a shared base (worst case — nothing dedups):");
    let cas = Cas::new();
    for v in 0..16usize {
        ImageBuilder::from_scratch()
            .run("all", move |fs| {
                fs.write_p(&VPath::parse("/opt/bin/run"), vec![v as u8; 8192])
                    .map_err(|e| e.to_string())
            })
            .build(&cas)
            .unwrap();
    }
    let s = cas.stats();
    println!(
        "  16 unrelated images: logical {} stored {} savings {:.1}%",
        s.logical_bytes,
        s.stored_bytes,
        s.savings() * 100.0
    );
}

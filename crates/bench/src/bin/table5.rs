//! Regenerate Table 5: registry squashing, image formats, multi-tenancy,
//! quotas, signing, deployment and build integration.

use hpcc_bench::probes::probe_registry;
use hpcc_bench::tables::{render_table, yn};
use hpcc_registry::products;

fn main() {
    println!("Table 5 — Registries: squashing, tenancy, quota, signing, deployment");
    println!("(technical cells probed live; Deployment/Build survey-reported)\n");

    let mut rows = vec![vec![
        "Registry".to_string(),
        "Squashing (probed)".to_string(),
        "Formats*".to_string(),
        "Multi-Tenancy".to_string(),
        "Quota Enforced".to_string(),
        "Signing".to_string(),
        "Deployment*".to_string(),
        "Build Integration*".to_string(),
    ]];

    for product in products::all() {
        let probe = probe_registry(&product);
        rows.push(vec![
            product.info.name.to_string(),
            if probe.squashing {
                "on-demand".to_string()
            } else {
                "no".to_string()
            },
            product.info.image_formats.to_string(),
            yn(probe.multi_tenancy),
            yn(probe.quota_enforced),
            yn(probe.signing),
            product.info.deployment.to_string(),
            product.info.build_integration.to_string(),
        ]);
    }
    print!("{}", render_table(&rows));
    println!("\n* = survey-reported metadata.");
}
